// Lexer unit tests: token classes, time literals, C blocks, operators.
#include <gtest/gtest.h>

#include "lexer/lexer.hpp"

namespace ceu {
namespace {

std::vector<Token> lex_ok(const std::string& text) {
    Diagnostics diags;
    SourceFile src("<test>", text);
    auto toks = lex(src, diags);
    EXPECT_TRUE(diags.ok()) << diags.str();
    return toks;
}

TEST(Lexer, EmptyInputYieldsEof) {
    auto t = lex_ok("");
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].kind, Tok::Eof);
}

TEST(Lexer, IdentifierClasses) {
    auto t = lex_ok("Restart changed _printf");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].kind, Tok::IdExt);
    EXPECT_EQ(t[0].text, "Restart");
    EXPECT_EQ(t[1].kind, Tok::IdInt);
    EXPECT_EQ(t[1].text, "changed");
    EXPECT_EQ(t[2].kind, Tok::IdC);
    EXPECT_EQ(t[2].text, "printf");  // underscore stripped (paper §2.4)
}

TEST(Lexer, Keywords) {
    auto t = lex_ok("input do end par with loop break await emit if then else "
                    "forever async return pure deterministic nothing sizeof null");
    std::vector<Tok> kinds;
    for (const auto& tok : t) kinds.push_back(tok.kind);
    EXPECT_EQ(kinds[0], Tok::KwInput);
    EXPECT_EQ(kinds[1], Tok::KwDo);
    EXPECT_EQ(kinds[2], Tok::KwEnd);
    EXPECT_EQ(kinds[3], Tok::KwPar);
    EXPECT_EQ(kinds[4], Tok::KwWith);
    EXPECT_EQ(kinds[5], Tok::KwLoop);
    EXPECT_EQ(kinds[6], Tok::KwBreak);
    EXPECT_EQ(kinds[7], Tok::KwAwait);
    EXPECT_EQ(kinds[8], Tok::KwEmit);
    EXPECT_EQ(kinds[9], Tok::KwIf);
    EXPECT_EQ(kinds[10], Tok::KwThen);
    EXPECT_EQ(kinds[11], Tok::KwElse);
    EXPECT_EQ(kinds[12], Tok::KwForever);
    EXPECT_EQ(kinds[13], Tok::KwAsync);
    EXPECT_EQ(kinds[14], Tok::KwReturn);
    EXPECT_EQ(kinds[15], Tok::KwPure);
    EXPECT_EQ(kinds[16], Tok::KwDeterministic);
    EXPECT_EQ(kinds[17], Tok::KwNothing);
    EXPECT_EQ(kinds[18], Tok::KwSizeof);
    EXPECT_EQ(kinds[19], Tok::KwNull);
}

TEST(Lexer, ParSlashVariants) {
    auto t = lex_ok("par par/or par/and");
    EXPECT_EQ(t[0].kind, Tok::KwPar);
    EXPECT_EQ(t[1].kind, Tok::KwParOr);
    EXPECT_EQ(t[2].kind, Tok::KwParAnd);
}

TEST(Lexer, ParFollowedByDivisionIsNotAKeyword) {
    auto t = lex_ok("par / x");
    EXPECT_EQ(t[0].kind, Tok::KwPar);
    EXPECT_EQ(t[1].kind, Tok::Slash);
    EXPECT_EQ(t[2].kind, Tok::IdInt);
}

TEST(Lexer, Numbers) {
    auto t = lex_ok("0 42 1000000");
    EXPECT_EQ(t[0].num, 0);
    EXPECT_EQ(t[1].num, 42);
    EXPECT_EQ(t[2].num, 1000000);
}

TEST(Lexer, HexNumbers) {
    auto t = lex_ok("0x10 0xff");
    EXPECT_EQ(t[0].num, 16);
    EXPECT_EQ(t[1].num, 255);
}

TEST(Lexer, CharLiterals) {
    auto t = lex_ok("'#' '\\n' 'A'");
    EXPECT_EQ(t[0].num, '#');
    EXPECT_EQ(t[1].num, '\n');
    EXPECT_EQ(t[2].num, 'A');
}

struct TimeCase {
    const char* text;
    Micros expected;
};

class LexerTimeLiterals : public ::testing::TestWithParam<TimeCase> {};

TEST_P(LexerTimeLiterals, ParsesToMicroseconds) {
    auto t = lex_ok(GetParam().text);
    ASSERT_EQ(t[0].kind, Tok::Time) << GetParam().text;
    EXPECT_EQ(t[0].num, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllUnits, LexerTimeLiterals,
    ::testing::Values(TimeCase{"10us", 10}, TimeCase{"1ms", 1000},
                      TimeCase{"500ms", 500 * kMs}, TimeCase{"1s", kSec},
                      TimeCase{"10min", 10 * kMin}, TimeCase{"1h", kHour},
                      TimeCase{"1h35min", kHour + 35 * kMin},
                      TimeCase{"1h35min30s", kHour + 35 * kMin + 30 * kSec},
                      TimeCase{"2s500ms", 2 * kSec + 500 * kMs},
                      TimeCase{"1min1s1ms1us", kMin + kSec + kMs + 1}));

TEST(Lexer, MalformedTimeLiteralIsAnError) {
    Diagnostics diags;
    SourceFile src("<test>", "10xyz");
    (void)lex(src, diags);
    EXPECT_FALSE(diags.ok());
    EXPECT_TRUE(diags.contains("malformed numeric or time literal"));
}

TEST(Lexer, Strings) {
    auto t = lex_ok("\"v = %d\\n\"");
    ASSERT_EQ(t[0].kind, Tok::Str);
    EXPECT_EQ(t[0].text, "v = %d\n");
}

TEST(Lexer, UnterminatedStringIsAnError) {
    Diagnostics diags;
    SourceFile src("<test>", "\"oops");
    (void)lex(src, diags);
    EXPECT_FALSE(diags.ok());
}

TEST(Lexer, Operators) {
    auto t = lex_ok("|| && | ^ & != == <= >= < > << >> + - * / % . -> ! ~ = ( ) [ ] , ;");
    std::vector<Tok> expect = {
        Tok::OrOr, Tok::AndAnd, Tok::Or,  Tok::Xor,    Tok::And,    Tok::Ne,
        Tok::EqEq, Tok::Le,     Tok::Ge,  Tok::Lt,     Tok::Gt,     Tok::Shl,
        Tok::Shr,  Tok::Plus,   Tok::Minus, Tok::Star, Tok::Slash,  Tok::Percent,
        Tok::Dot,  Tok::Arrow,  Tok::Not, Tok::Tilde,  Tok::Assign, Tok::LParen,
        Tok::RParen, Tok::LBrack, Tok::RBrack, Tok::Comma, Tok::Semi};
    ASSERT_GE(t.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(t[i].kind, expect[i]) << i;
}

TEST(Lexer, LineAndBlockComments) {
    auto t = lex_ok("a // comment\n b /* multi\nline */ c");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].text, "a");
    EXPECT_EQ(t[1].text, "b");
    EXPECT_EQ(t[2].text, "c");
}

TEST(Lexer, CBlockCapturesRawText) {
    auto t = lex_ok("C do\n  #include <assert.h>\n  int I = 0;\nend x");
    ASSERT_EQ(t[0].kind, Tok::CBlock);
    EXPECT_NE(t[0].text.find("#include <assert.h>"), std::string::npos);
    EXPECT_NE(t[0].text.find("int I = 0;"), std::string::npos);
    EXPECT_EQ(t[1].kind, Tok::IdInt);
    EXPECT_EQ(t[1].text, "x");
}

TEST(Lexer, CBlockDoesNotStopAtEmbeddedEndWord) {
    // `bend` must not terminate the block: `end` requires word boundaries.
    auto t = lex_ok("C do int bend = 1; end");
    ASSERT_EQ(t[0].kind, Tok::CBlock);
    EXPECT_NE(t[0].text.find("bend"), std::string::npos);
}

TEST(Lexer, PlainCIdentifierIsExternal) {
    auto t = lex_ok("C x");
    EXPECT_EQ(t[0].kind, Tok::IdExt);
    EXPECT_EQ(t[0].text, "C");
}

TEST(Lexer, SourceLocationsTrackLinesAndColumns) {
    auto t = lex_ok("a\n  b");
    EXPECT_EQ(t[0].loc.line, 1u);
    EXPECT_EQ(t[0].loc.col, 1u);
    EXPECT_EQ(t[1].loc.line, 2u);
    EXPECT_EQ(t[1].loc.col, 3u);
}

TEST(TimeVal, FormatMicrosRoundTrips) {
    EXPECT_EQ(format_micros(0), "0us");
    EXPECT_EQ(format_micros(kHour + 35 * kMin), "1h35min");
    EXPECT_EQ(format_micros(500 * kMs), "500ms");
    EXPECT_EQ(format_micros(-kSec), "-1s");
    Micros us = 0;
    ASSERT_TRUE(parse_time_literal("1h35min", &us));
    EXPECT_EQ(us, kHour + 35 * kMin);
    EXPECT_FALSE(parse_time_literal("", &us));
    EXPECT_FALSE(parse_time_literal("10xy", &us));
}

}  // namespace
}  // namespace ceu
