// The AOT backend (src/aot/ + host::Instance's compiled path): fleet images
// built from re-entrant cgen TUs and dlopen'd back into the process, every
// toolchain/loader failure path degrading with a structured "aot: ..."
// report, and the facade contract — byte-identical traces, snapshot
// round-trips gated to the same backend and fingerprint, host-commanded
// power-cycles at the fleet instant. Every test that actually compiles
// self-skips when the host has no working C compiler (CI images without
// one run the failure-path tests only).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "aot/aot.hpp"
#include "codegen/flatten.hpp"
#include "host/instance.hpp"
#include "reactor/reactor.hpp"
#include "runtime/snapshot.hpp"

namespace {

using namespace ceu;

std::shared_ptr<const flat::CompiledProgram> compile_shared(const char* src) {
    return std::make_shared<const flat::CompiledProgram>(flat::compile(src));
}

#define SKIP_WITHOUT_CC()                                        \
    if (!aot::toolchain_available()) {                           \
        GTEST_SKIP() << "no host C compiler on this machine";    \
    }

/// Accumulates injected values, tracing each delivery.
constexpr const char* kCounter = R"(
    input int ADD;
    input void STOP;
    int total = 0;
    int v = 0;
    par do
       loop do
          v = await ADD;
          total = total + v;
          _printf("add %d total %d\n", v, total);
       end
    with
       await STOP;
       return total;
    end
)";

/// Timers + async in flight: the states a snapshot must carry.
constexpr const char* kBusy = R"(
    input void STOP;
    int n = 0;
    int r = 0;
    par do
       loop do
          await 10ms;
          n = n + 1;
          _printf("tick %d\n", n);
       end
    with
       r = async do
          int acc = 0;
          int i = 0;
          loop do
             i = i + 1;
             acc = acc + i;
             if i == 50 then break; end
          end
          return acc;
       end;
       _printf("sum %d\n", r);
    with
       await STOP;
       return n;
    end
)";

/// Faults deterministically on ADD 0 — the compiled-backend crash lever
/// (kFragile's division by zero is a trapped interpreter error but UB in
/// the compiled C, so supervision tests for compiled members trip instead).
constexpr const char* kTrip = R"(
    input int ADD;
    input void STOP;
    int total = 0;
    int v = 0;
    par do
       loop do
          v = await ADD;
          if v == 0 then
             _ceu_trip();
          end;
          total = total + v;
          _printf("total %d\n", total);
       end
    with
       await STOP;
       return total;
    end
)";

// -- toolchain + image failure paths (no compiler needed) ---------------------

TEST(AotToolchain, MissingCompilerIsDetected) {
    aot::BuildOptions opt;
    opt.cc = "/nonexistent/ceu-aot-cc";
    EXPECT_FALSE(aot::toolchain_available(opt));
}

TEST(AotToolchain, BrokenCompilerReportsAStructuredError) {
    aot::BuildOptions opt;
    opt.cc = "/nonexistent/ceu-aot-cc";
    std::string err;
    aot::ProgramHandle h =
        aot::FleetImage::build_one(compile_shared(kCounter), opt, &err);
    EXPECT_FALSE(h);
    EXPECT_EQ(err.rfind("aot: ", 0), 0u) << err;
}

TEST(AotToolchain, DlopenFailureReportsAStructuredError) {
    auto cp = compile_shared(kCounter);
    std::string err;
    std::shared_ptr<const aot::FleetImage> img =
        aot::FleetImage::load("/nonexistent/fleet.so", {&cp, 1}, &err);
    EXPECT_EQ(img, nullptr);
    EXPECT_NE(err.find("aot: dlopen failed"), std::string::npos) << err;
}

TEST(AotToolchain, FingerprintMismatchIsRejectedAtLoad) {
    SKIP_WITHOUT_CC();
    auto a = compile_shared(kCounter);
    auto b = compile_shared(kBusy);
    aot::BuildOptions opt;
    opt.keep_artifacts = true;  // keep the .so alive for the re-load
    std::string err;
    std::shared_ptr<const aot::FleetImage> img =
        aot::FleetImage::build({&a, 1}, opt, &err);
    ASSERT_NE(img, nullptr) << err;

    std::shared_ptr<const aot::FleetImage> wrong =
        aot::FleetImage::load(img->so_path(), {&b, 1}, &err);
    EXPECT_EQ(wrong, nullptr);
    EXPECT_NE(err.find("fingerprint mismatch"), std::string::npos) << err;

    // A program-count mismatch dies on the missing descriptor symbol.
    std::vector<std::shared_ptr<const flat::CompiledProgram>> two = {a, b};
    std::shared_ptr<const aot::FleetImage> overlong =
        aot::FleetImage::load(img->so_path(), two, &err);
    EXPECT_EQ(overlong, nullptr);
    EXPECT_NE(err.find("missing descriptor symbol"), std::string::npos) << err;
}

// -- image building -----------------------------------------------------------

TEST(AotImage, BatchesAFleetIntoOneSharedObject) {
    SKIP_WITHOUT_CC();
    std::vector<std::shared_ptr<const flat::CompiledProgram>> programs = {
        compile_shared(kCounter), compile_shared(kBusy), compile_shared(kTrip)};
    std::string err;
    std::shared_ptr<const aot::FleetImage> img =
        aot::FleetImage::build(programs, {}, &err);
    ASSERT_NE(img, nullptr) << err;
    ASSERT_EQ(img->size(), 3u);
    for (size_t i = 0; i < img->size(); ++i) {
        const ceu_aot_program_t* d = img->descriptor(i);
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->abi_version, cgen::kAotAbiVersion);
        EXPECT_GT(d->ctx_size, 0u);
        EXPECT_TRUE(img->program(i));
    }
}

TEST(AotImage, SmallProgramsKeepSmallContexts) {
    SKIP_WITHOUT_CC();
    // The per-instance steady-state cost of a compiled member is one
    // calloc'd context whose queue capacities are derived from the program
    // (gates/pars/escapes), not fixed worst cases: a trivial program stays
    // under the 256 B fleet budget and a real two-trail member under 512 B
    // — code lives once in the shared .so either way.
    std::string err;
    aot::ProgramHandle tiny =
        aot::FleetImage::build_one(compile_shared("return 42;"), {}, &err);
    ASSERT_TRUE(tiny) << err;
    EXPECT_LT(tiny.desc->ctx_size, 256u);

    aot::ProgramHandle counter =
        aot::FleetImage::build_one(compile_shared(kCounter), {}, &err);
    ASSERT_TRUE(counter) << err;
    EXPECT_LT(counter.desc->ctx_size, 512u);
}

// -- the Instance facade over a compiled context ------------------------------

env::Script make_script(const std::string& text) {
    env::Script s;
    Diagnostics diags;
    EXPECT_TRUE(env::Script::parse(text, &s, diags)) << diags.str();
    return s;
}

TEST(AotInstance, TracesMatchTheInterpreterByteForByte) {
    SKIP_WITHOUT_CC();
    auto cp = compile_shared(kBusy);
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    ASSERT_TRUE(h) << err;

    env::Script script = make_script("T 35000\nA\nT 10000\nE STOP 0\n");

    host::Instance interp(cp);
    Diagnostics d1;
    interp.run(script, d1);

    host::Config cfg;
    cfg.aot = h;
    host::Instance compiled(cp, cfg);
    Diagnostics d2;
    compiled.run(script, d2);

    EXPECT_TRUE(compiled.is_compiled());
    EXPECT_FALSE(interp.is_compiled());
    EXPECT_EQ(interp.trace(), compiled.trace());
    EXPECT_EQ(interp.status(), compiled.status());
    EXPECT_EQ(interp.result().as_int(), compiled.result().as_int());
    EXPECT_EQ(interp.now(), compiled.now());
    EXPECT_EQ(interp.reactions(), compiled.reactions());
}

TEST(AotInstance, RejectsBindingsAndForeignHandles) {
    SKIP_WITHOUT_CC();
    auto cp = compile_shared(kCounter);
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    ASSERT_TRUE(h) << err;

    rt::CBindings extras;
    host::Config with_bindings;
    with_bindings.aot = h;
    with_bindings.bindings = &extras;
    EXPECT_THROW(host::Instance(cp, with_bindings), std::invalid_argument);

    auto other = compile_shared(kBusy);
    host::Config wrong_program;
    wrong_program.aot = h;
    EXPECT_THROW(host::Instance(other, wrong_program), std::invalid_argument);
}

TEST(AotInstance, EngineIntrospectionThrowsOnCompiledBackend) {
    SKIP_WITHOUT_CC();
    auto cp = compile_shared(kCounter);
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    ASSERT_TRUE(h) << err;
    host::Config cfg;
    cfg.aot = h;
    host::Instance inst(cp, cfg);
    EXPECT_THROW(inst.engine(), std::logic_error);
}

TEST(AotInstance, TripFaultsTheCompiledContext) {
    SKIP_WITHOUT_CC();
    auto cp = compile_shared(kTrip);
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    ASSERT_TRUE(h) << err;
    host::Config cfg;
    cfg.aot = h;
    host::Instance inst(cp, cfg);
    inst.boot();
    inst.inject("ADD", rt::Value::integer(5));
    EXPECT_EQ(inst.status(), rt::Engine::Status::Running);
    inst.inject("ADD", rt::Value::integer(0));
    EXPECT_EQ(inst.status(), rt::Engine::Status::Faulted);
}

TEST(AotInstance, SnapshotRoundTripsWithinTheProcess) {
    SKIP_WITHOUT_CC();
    auto cp = compile_shared(kBusy);
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    ASSERT_TRUE(h) << err;
    host::Config cfg;
    cfg.aot = h;

    // Uninterrupted reference run.
    host::Instance ref(cp, cfg);
    ref.boot();
    ref.advance(35 * kMs);
    ref.settle();
    ref.advance(10 * kMs);
    ref.inject("STOP");

    // Same inputs with a save/load seam mid-run.
    host::Instance a(cp, cfg);
    a.boot();
    a.advance(35 * kMs);
    std::vector<uint8_t> blob = a.save();

    host::Instance b(cp, cfg);
    b.load(blob);
    b.settle();
    b.advance(10 * kMs);
    b.inject("STOP");

    EXPECT_EQ(b.status(), ref.status());
    EXPECT_EQ(b.result().as_int(), ref.result().as_int());
    EXPECT_EQ(b.now(), ref.now());
    // The resumed instance replays only the tail of the trace.
    ASSERT_LE(b.trace().size(), ref.trace().size());
    size_t skip = ref.trace().size() - b.trace().size();
    for (size_t i = 0; i < b.trace().size(); ++i) {
        EXPECT_EQ(b.trace()[i], ref.trace()[skip + i]);
    }
}

TEST(AotInstance, RejectsCrossBackendSnapshots) {
    SKIP_WITHOUT_CC();
    auto cp = compile_shared(kCounter);
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    ASSERT_TRUE(h) << err;

    host::Instance interp(cp);
    interp.boot();
    std::vector<uint8_t> interp_blob = interp.save();

    host::Config cfg;
    cfg.aot = h;
    host::Instance compiled(cp, cfg);
    compiled.boot();
    std::vector<uint8_t> aot_blob = compiled.save();

    EXPECT_THROW(compiled.load(interp_blob), rt::snap::SnapshotError);
    EXPECT_THROW(interp.load(aot_blob), rt::snap::SnapshotError);

    // Same backend, different program: the fingerprint gate.
    auto other = compile_shared(kBusy);
    aot::ProgramHandle oh = aot::FleetImage::build_one(other, {}, &err);
    ASSERT_TRUE(oh) << err;
    host::Config ocfg;
    ocfg.aot = oh;
    host::Instance compiled_other(other, ocfg);
    compiled_other.boot();
    EXPECT_THROW(compiled_other.load(aot_blob), rt::snap::SnapshotError);
}

// -- host-commanded restart at the fleet instant ------------------------------

TEST(AotReactor, RestartPowerCyclesACompiledMember) {
    SKIP_WITHOUT_CC();
    auto cp = compile_shared(kCounter);
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    ASSERT_TRUE(h) << err;

    reactor::ReactorConfig rc;
    rc.collect_traces = true;
    reactor::Reactor r(rc);
    host::Config cfg;
    cfg.aot = h;
    reactor::InstanceId id = r.add_instance(cp, cfg);
    r.boot();
    r.inject(id, "ADD", rt::Value::integer(7));
    r.drain();

    r.restart(id);  // state is lost, the crash is traced
    r.inject(id, "ADD", rt::Value::integer(2));
    r.inject(id, "STOP");
    r.drain();

    EXPECT_EQ(r.instance(id).result().as_int(), 2);
    std::string t = r.instance(id).trace_text();
    EXPECT_NE(t.find("[crash] engine power-cycled"), std::string::npos) << t;
    EXPECT_NE(t.find("add 7 total 7"), std::string::npos) << t;
    EXPECT_NE(t.find("add 2 total 2"), std::string::npos) << t;
}

}  // namespace
