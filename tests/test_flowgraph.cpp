// Flow-graph and DFA-structure tests (the paper's two compiler artifacts).
#include <gtest/gtest.h>

#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "flow/flowgraph.hpp"

namespace ceu {
namespace {

TEST(FlowGraph, GuidingExampleShape) {
    flat::CompiledProgram cp = flat::compile(R"(
        input int A, B, C;
        int ret;
        loop do
           par/or do
              int a = await A;
              int b = await B;
              ret = a + b;
              break;
           with
              par/and do
                 await C;
              with
                 await A;
              end
           end
        end
    )");
    flow::FlowGraph g = flow::build_flow_graph(cp);
    EXPECT_EQ(g.nodes.size(), cp.flat.code.size());

    size_t awaits = 0, rejoins = 0;
    for (const auto& n : g.nodes) {
        awaits += n.is_await ? 1 : 0;
        rejoins += n.is_rejoin ? 1 : 0;
    }
    EXPECT_EQ(awaits, 4u);   // the paper's figure has 4 awaits
    EXPECT_EQ(rejoins, 3u);  // par/and, par/or, loop escape

    // Rejoin priorities: inner constructs print larger (run earlier).
    std::vector<int> prios;
    for (const auto& n : g.nodes) {
        if (n.is_rejoin) prios.push_back(n.priority);
    }
    std::sort(prios.begin(), prios.end());
    EXPECT_EQ(prios, (std::vector<int>{1, 2, 3}));
}

TEST(FlowGraph, EdgesReferenceValidNodes) {
    flat::CompiledProgram cp = flat::compile(demos::kRing);
    flow::FlowGraph g = flow::build_flow_graph(cp);
    for (const auto& e : g.edges) {
        EXPECT_GE(e.from, 0);
        EXPECT_LT(static_cast<size_t>(e.from), g.nodes.size());
        EXPECT_GE(e.to, 0);
        EXPECT_LT(static_cast<size_t>(e.to), g.nodes.size());
    }
}

TEST(FlowGraph, AwaitEdgesCarryEventLabels) {
    flat::CompiledProgram cp =
        flat::compile("input void Alpha; loop do await Alpha; await 3s; end");
    flow::FlowGraph g = flow::build_flow_graph(cp);
    bool alpha = false, time3s = false;
    for (const auto& e : g.edges) {
        if (e.label == "Alpha") alpha = true;
        if (e.label == "3s") time3s = true;
    }
    EXPECT_TRUE(alpha);
    EXPECT_TRUE(time3s);
}

TEST(FlowGraph, DotOutputIsWellFormed) {
    flat::CompiledProgram cp = flat::compile(demos::kQuickstart);
    std::string dot = flow::build_flow_graph(cp).to_dot("quickstart");
    EXPECT_EQ(dot.find("digraph"), 0u);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
    // Quotes in labels must be escaped.
    flat::CompiledProgram cp2 = flat::compile(R"(_printf("hi \"there\"\n");)");
    std::string dot2 = flow::build_flow_graph(cp2).to_dot();
    EXPECT_NE(dot2.find("\\\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// DFA structure extras
// ---------------------------------------------------------------------------

TEST(DfaStructure, TransitionsTargetExistingStates) {
    flat::CompiledProgram cp = flat::compile(demos::kRing);
    dfa::Dfa d = dfa::Dfa::build(cp);
    for (const auto& s : d.states()) {
        for (const auto& t : s.out) {
            EXPECT_GE(t.target, 0);
            EXPECT_LT(static_cast<size_t>(t.target), d.state_count());
            EXPECT_FALSE(t.label.empty());
        }
    }
}

TEST(DfaStructure, StopAtFirstConflictShortCircuits) {
    const char* kBig = R"(
        input void A;
        int v;
        par do
           loop do await A; v = 1; end
        with
           loop do await A; v = 2; end
        with
           loop do await A; await A; await A; await A; await A; end
        end
    )";
    flat::CompiledProgram cp = flat::compile(kBig);
    dfa::DfaOptions opt;
    opt.stop_at_first_conflict = true;
    dfa::Dfa d = dfa::Dfa::build(cp, opt);
    EXPECT_FALSE(d.deterministic());
    EXPECT_FALSE(d.complete());  // it stopped early

    // The convenience wrapper reports the same verdict.
    EXPECT_FALSE(dfa::temporal_analysis(cp).empty());
}

TEST(DfaStructure, ConflictReportsAreDeduplicated) {
    flat::CompiledProgram cp = flat::compile(R"(
        input void A;
        int v;
        par do
           loop do await A; v = 1; end
        with
           loop do await A; v = 2; end
        end
    )");
    dfa::Dfa d = dfa::Dfa::build(cp);
    // One unique (pair, trigger) even though the state recurs forever.
    EXPECT_EQ(d.conflicts().size(), 1u);
}

TEST(DfaStructure, MachineStateKeyDistinguishesTimers) {
    dfa::MachineState a, b;
    a.gates = {1, 0};
    b.gates = {1, 0};
    a.timers = {{0, 100}};
    b.timers = {{0, 200}};
    EXPECT_NE(a.key(), b.key());
    b.timers = {{0, 100}};
    EXPECT_EQ(a.key(), b.key());
}

TEST(DfaStructure, ParAndCountersArePartOfTheState) {
    // A par/and with one branch done is a different state from none done.
    flat::CompiledProgram cp = flat::compile(R"(
        input void A, B;
        par/and do
           await A;
        with
           await B;
        end
        _led();
        await forever;
    )");
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_TRUE(d.deterministic()) << d.report();
    // boot, after-A, after-B, after-both (merged via gates+counters), ...
    EXPECT_GE(d.state_count(), 3u);
}

}  // namespace
}  // namespace ceu
