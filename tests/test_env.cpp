// Environment-module tests: printf formatting, standard bindings, binding
// composition, the driver's virtual clock, and the timer wheel.
#include <gtest/gtest.h>

#include "codegen/flatten.hpp"
#include "env/driver.hpp"
#include "runtime/timerwheel.hpp"

namespace ceu {
namespace {

using env::format_printf;
using rt::TimerWheel;
using rt::Value;

// ---------------------------------------------------------------------------
// format_printf
// ---------------------------------------------------------------------------

TEST(FormatPrintf, BasicDirectives) {
    Value args[] = {Value::integer(42)};
    EXPECT_EQ(format_printf("v = %d", args), "v = 42");
    EXPECT_EQ(format_printf("%d%%", args), "42%");
    Value c[] = {Value::integer('x')};
    EXPECT_EQ(format_printf("char %c", c), "char x");
    Value hex[] = {Value::integer(255)};
    EXPECT_EQ(format_printf("%x", hex), "ff");
}

TEST(FormatPrintf, LengthModifiersAreAccepted) {
    Value args[] = {Value::integer(-7)};
    EXPECT_EQ(format_printf("%ld %lld", std::span<const Value>(args, 1)), "-7 0");
}

TEST(FormatPrintf, StringArguments) {
    Value args[] = {Value::str("hello")};
    EXPECT_EQ(format_printf("say %s", args), "say hello");
}

TEST(FormatPrintf, MissingArgumentsBecomeZero) {
    EXPECT_EQ(format_printf("%d %d", {}), "0 0");
}

// ---------------------------------------------------------------------------
// Standard bindings
// ---------------------------------------------------------------------------

TEST(StandardBindings, PrngIsSeedPure) {
    // Two engines seeded identically must see identical _rand() streams —
    // the property the Mario replay relies on.
    auto run = [] {
        flat::CompiledProgram cp = flat::compile(R"(
            _srand(123);
            int i = 0;
            loop do
               _trace(_rand() % 1000);
               i = i + 1;
               if i == 5 then break; else await 1ms; end
            end
            return 0;
        )");
        env::Driver d(cp);
        d.run(env::Script().advance(10 * kMs));
        return d.trace();
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 5u);
    // And not constant.
    EXPECT_NE(a[0], a[1]);
}

TEST(StandardBindings, AssertThrowsOnFailure) {
    flat::CompiledProgram cp = flat::compile("_assert(1 == 2);");
    env::Driver d(cp);
    EXPECT_THROW(d.boot(), rt::RuntimeError);
}

TEST(StandardBindings, AbsWorks) {
    flat::CompiledProgram cp = flat::compile("return _abs(0 - 17);");
    env::Driver d(cp);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 17);
}

TEST(Bindings, MergePrefersTheOverlay) {
    rt::CBindings base;
    base.constant("X", 1);
    base.fn("f", [](rt::Engine&, std::span<const Value>) { return Value::integer(1); });
    rt::CBindings overlay;
    overlay.constant("X", 2);
    base.merge(overlay);
    Value v;
    ASSERT_TRUE(base.get_constant("X", &v));
    EXPECT_EQ(v.as_int(), 2);
    EXPECT_NE(base.find_fn("f"), nullptr);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

TEST(Driver, AdvanceAccumulatesTheVirtualClock) {
    flat::CompiledProgram cp = flat::compile("loop do await 1s; _trace(1); end");
    env::Driver d(cp);
    d.run(env::Script().advance(500 * kMs).advance(500 * kMs).advance(kSec));
    EXPECT_EQ(d.clock(), 2 * kSec);
    EXPECT_EQ(d.trace().size(), 2u);
}

TEST(Driver, UnknownScriptEventThrows) {
    flat::CompiledProgram cp = flat::compile("input void A; await A;");
    env::Driver d(cp);
    d.boot();
    EXPECT_THROW(
        d.feed({env::ScriptItem::Kind::Event, "Nope", Value::integer(0), 0}),
        rt::RuntimeError);
}

TEST(Driver, SettleCapThrowsOnRunawayAsync) {
    flat::CompiledProgram cp = flat::compile(R"(
        int r = 0;
        par/or do
           r = async do
              int i = 0;
              loop do i = i + 1; end   // never breaks
              return i;
           end;
        with
           await 1h;
        end
        return r;
    )");
    env::Driver d(cp);
    d.boot();
    EXPECT_THROW(d.settle_asyncs(/*max_slices=*/100), rt::RuntimeError);
}

// ---------------------------------------------------------------------------
// TimerWheel
// ---------------------------------------------------------------------------

TEST(TimerWheelUnit, PopsEqualDeadlinesTogetherInGateOrder) {
    TimerWheel tw;
    tw.arm(5, 100);
    tw.arm(2, 100);
    tw.arm(7, 200);
    Micros fired = 0;
    auto gates = tw.pop_expired(150, &fired);
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(gates, (std::vector<int>{2, 5}));
    EXPECT_EQ(tw.size(), 1u);
    EXPECT_TRUE(tw.pop_expired(150, &fired).empty());
    gates = tw.pop_expired(250, &fired);
    EXPECT_EQ(gates, (std::vector<int>{7}));
    EXPECT_TRUE(tw.empty());
}

TEST(TimerWheelUnit, NothingExpiresBeforeItsDeadline) {
    TimerWheel tw;
    tw.arm(1, 1000);
    Micros fired = 0;
    EXPECT_TRUE(tw.pop_expired(999, &fired).empty());
    EXPECT_EQ(tw.next_deadline(), 1000);
}

TEST(TimerWheelUnit, DisarmRangeRemovesOnlyThatRange) {
    TimerWheel tw;
    tw.arm(1, 10);
    tw.arm(5, 10);
    tw.arm(9, 10);
    tw.disarm_range(4, 8);  // removes gate 5 only
    Micros fired = 0;
    auto gates = tw.pop_expired(10, &fired);
    EXPECT_EQ(gates, (std::vector<int>{1, 9}));
}

TEST(TimerWheelUnit, ClearEmptiesEverything) {
    TimerWheel tw;
    tw.arm(1, 10);
    tw.clear();
    EXPECT_TRUE(tw.empty());
}

}  // namespace
}  // namespace ceu
