// C-emitter integration tests: for a corpus of programs, emit C (paper
// §4.4), compile it with the host C compiler, run it against a script, and
// require the output to match the interpreter's trace line for line.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "cgen/cgen.hpp"
#include "env/driver.hpp"

namespace ceu {
namespace {

struct CRun {
    std::vector<std::string> lines;
    int exit_code = 0;
};

/// Compiles `c_source` and runs it with `script_text` on stdin.
CRun compile_and_run(const std::string& c_source, const std::string& script_text) {
    static int counter = 0;
    std::string base = ::testing::TempDir() + "ceu_cgen_" + std::to_string(getpid()) +
                       "_" + std::to_string(counter++);
    std::string c_path = base + ".c";
    std::string bin_path = base + ".bin";
    std::string in_path = base + ".in";
    std::string out_path = base + ".out";
    {
        std::ofstream f(c_path);
        f << c_source;
    }
    {
        std::ofstream f(in_path);
        f << script_text;
    }
    std::string cc = "cc -std=c11 -O1 -o " + bin_path + " " + c_path + " 2>" + base + ".cc.err";
    int rc = std::system(cc.c_str());
    EXPECT_EQ(rc, 0) << "C compilation failed; see " << base << ".cc.err";
    CRun out;
    if (rc != 0) return out;
    std::string run = bin_path + " < " + in_path + " > " + out_path;
    out.exit_code = std::system(run.c_str());
    std::ifstream f(out_path);
    std::string line;
    while (std::getline(f, line)) out.lines.push_back(line);
    return out;
}

/// Runs `source` through both backends with equivalent scripts and expects
/// identical observable output.
void expect_parity(const std::string& source, const env::Script& script) {
    // Interpreter side.
    flat::CompiledProgram cp = flat::compile(source);
    env::Driver d(cp);
    d.run(script);

    // C side: translate the script to the harness protocol.
    std::string text;
    for (const auto& item : script.items()) {
        switch (item.kind) {
            case env::ScriptItem::Kind::Event:
                text += "E " + item.event + " " + std::to_string(item.value.as_int()) + "\n";
                break;
            case env::ScriptItem::Kind::Advance:
                text += "T " + std::to_string(item.us) + "\n";
                break;
            case env::ScriptItem::Kind::AsyncIdle:
                text += "A\n";
                break;
            case env::ScriptItem::Kind::Crash:
                text += "C\n";
                break;
        }
    }
    cgen::CgenOptions opt;
    std::string c_source = cgen::emit_c(cp, opt);
    CRun c = compile_and_run(c_source, text);
    EXPECT_EQ(c.lines, d.trace()) << "C translation diverged from the interpreter";
}

TEST(Cgen, EmitsTheFourEntryApi) {
    flat::CompiledProgram cp = flat::compile("input void A; loop do await A; end");
    std::string c = cgen::emit_c(cp);
    EXPECT_NE(c.find("void ceu_go_init(void)"), std::string::npos);
    EXPECT_NE(c.find("void ceu_go_event(int evt, int64_t val)"), std::string::npos);
    EXPECT_NE(c.find("void ceu_go_time(int64_t now)"), std::string::npos);
    EXPECT_NE(c.find("int ceu_go_async(void)"), std::string::npos);
    // Gates + static data vector, as the paper's scheme prescribes.
    EXPECT_NE(c.find("static uint8_t GATES"), std::string::npos);
    EXPECT_NE(c.find("static int64_t DATA"), std::string::npos);
}

TEST(Cgen, UserCBlocksAreRepassedVerbatim) {
    flat::CompiledProgram cp = flat::compile(
        "C do\nstatic int my_global = 41;\nend\n"
        "_printf(\"%d\\n\", _my_global + 1);\nreturn 0;");
    std::string c = cgen::emit_c(cp);
    EXPECT_NE(c.find("static int my_global = 41;"), std::string::npos);
    CRun r = compile_and_run(c, "");
    EXPECT_EQ(r.lines, (std::vector<std::string>{"42"}));
}

TEST(CgenParity, QuickstartCounter) {
    expect_parity(R"(
        input int Restart;
        internal void changed;
        int v = 0;
        par do
           loop do await 1s; v = v + 1; emit changed; end
        with
           loop do v = await Restart; emit changed; end
        with
           loop do await changed; _printf("v = %d\n", v); end
        end
    )",
                  env::Script().advance(kSec).advance(kSec).event("Restart", 10).advance(kSec));
}

TEST(CgenParity, InternalEventStack) {
    expect_parity(R"(
        int v1, v2, v3;
        internal void v1_evt, v2_evt, v3_evt;
        par do
           loop do await v1_evt; v2 = v1 + 1; _printf("v2=%d\n", v2); emit v2_evt; end
        with
           loop do await v2_evt; v3 = v2 * 2; _printf("v3=%d\n", v3); emit v3_evt; end
        with
           v1 = 10; emit v1_evt;
           v1 = 15; emit v1_evt;
           await forever;
        end
    )",
                  env::Script());
}

TEST(CgenParity, ResidualDeltas) {
    expect_parity(R"(
        int v;
        await 10ms;
        v = 1;
        _printf("a %d\n", v);
        await 1ms;
        v = 2;
        _printf("b %d\n", v);
        return v;
    )",
                  env::Script().advance(15 * kMs));
}

TEST(CgenParity, WatchdogAndBreak) {
    expect_parity(R"(
        input void A, B;
        loop do
           par/or do
              await A;
              await B;
              _printf("done\n");
              break;
           with
              await 100ms;
              _printf("timeout\n");
           end
        end
        return 0;
    )",
                  env::Script().advance(250 * kMs).event("A").event("B"));
}

TEST(CgenParity, ValueParReturns) {
    expect_parity(R"(
        input void Key;
        internal void collision;
        par do
           loop do
              int v =
                 par do
                    await Key;
                    return 1;
                 with
                    await collision;
                    return 0;
                 end;
              _printf("v=%d\n", v);
           end
        with
           await forever;
        end
    )",
                  env::Script().event("Key").event("Key"));
}

TEST(CgenParity, GuidingExample) {
    expect_parity(R"(
        input int A, B, C;
        int ret;
        loop do
           par/or do
              int a = await A;
              int b = await B;
              ret = a + b;
              break;
           with
              par/and do
                 await C;
              with
                 await A;
              end
           end
        end
        _printf("ret=%d\n", ret);
        return ret;
    )",
                  env::Script().event("A", 3).event("B", 4));
}

TEST(CgenParity, AsyncSumWithWatchdog) {
    expect_parity(R"(
        int ret;
        par/or do
           ret = async do
              int sum = 0;
              int i = 1;
              loop do
                 sum = sum + i;
                 if i == 100 then break; else i = i + 1; end
              end
              return sum;
           end;
        with
           await 10ms;
           ret = 0;
        end
        _printf("ret=%d\n", ret);
        return ret;
    )",
                  env::Script().settle_asyncs());
}

TEST(CgenParity, SimulationInTheLanguage) {
    expect_parity(R"(
        input int Start;
        par/or do
           do
              int v = await Start;
              par/or do
                 loop do
                    await 10min;
                    v = v + 1;
                 end
              with
                 await 1h35min;
                 _printf("v=%d\n", v);
              end
           end
        with
           async do
              emit Start = 10;
              emit 1h35min;
           end
           _printf("unreachable\n");
        end
    )",
                  env::Script().settle_asyncs());
}

TEST(CgenParity, ArraysAndArithmetic) {
    expect_parity(R"(
        int[5] a;
        int i = 0;
        loop do
           a[i] = i * i;
           i = i + 1;
           if i == 5 then break; else await 1ms; end
        end
        _printf("sum=%d\n", a[0] + a[1] + a[2] + a[3] + a[4]);
        return 0;
    )",
                  env::Script().advance(10 * kMs));
}

TEST(CgenParity, ApplicationSwitch) {
    expect_parity(R"(
        input int Switch;
        int cur_app = 1;
        loop do
           par/or do
              cur_app = await Switch;
           with
              if cur_app == 1 then _printf("app1\n"); end
              if cur_app == 2 then _printf("app2\n"); end
              await forever;
           end
        end
    )",
                  env::Script().event("Switch", 2).event("Switch", 1));
}

TEST(CgenParity, DynamicTimers) {
    expect_parity(R"(
        int dt = 300;
        int steps = 0;
        loop do
           await (dt * 1000);
           steps = steps + 1;
           _printf("step %d\n", steps);
           dt = dt - 100;
           if dt == 0 then break; end
        end
        return steps;
    )",
                  env::Script().advance(kSec));
}

TEST(CgenParity, NestedParOrKills) {
    expect_parity(R"(
        input void A, B, C;
        loop do
           par/or do
              await A;
              _printf("a\n");
           with
              par/and do
                 await B;
                 _printf("b\n");
              with
                 await C;
                 _printf("c\n");
              end
              _printf("bc\n");
              break;
           end
        end
        _printf("out\n");
        return 0;
    )",
                  env::Script().event("B").event("A").event("C").event("B").event("C"));
}

TEST(Cgen, OutputEventsCallTheHook) {
    flat::CompiledProgram cp = flat::compile(R"(
        output int Led;
        int i = 0;
        loop do
           await 100ms;
           i = i + 1;
           emit Led = i;
           if i == 3 then break; end
        end
        return 0;
    )");
    std::string c = cgen::emit_c(cp);
    CRun r = compile_and_run(c, "T 1000000\n");
    // The weak default handler prints each emission.
    EXPECT_EQ(r.lines, (std::vector<std::string>{"output Led = 1", "output Led = 2",
                                                 "output Led = 3"}));
}

}  // namespace
}  // namespace ceu
