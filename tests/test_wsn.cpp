// WSN substrate tests: the discrete-event network, the TinyOS-style Céu
// binding, the nesC-style event-driven baseline, and the MantisOS-style
// preemptive kernel used by the Table 2 / blink experiments.
#include <gtest/gtest.h>

#include "wsn/mantis_runtime.hpp"
#include "wsn/nesc_runtime.hpp"
#include "wsn/tinyos_binding.hpp"

namespace ceu::wsn {
namespace {

// A trivial recording mote for network-level tests.
class ProbeMote final : public Mote {
  public:
    explicit ProbeMote(int id) : Mote(id) {}
    void boot(Network&) override {}
    void deliver(Network& net, const Packet& p) override {
        received.push_back({net.now(), p});
        ++rx_count;
    }
    std::vector<std::pair<Micros, Packet>> received;
};

TEST(Network, DeliversWithLinkLatency) {
    RadioModel radio;
    radio.link(0, 1, 3 * kMs);
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    auto& probe = static_cast<ProbeMote&>(net.add(std::make_unique<ProbeMote>(1)));
    net.start();
    Packet p;
    p.payload[0] = 42;
    EXPECT_TRUE(net.send(0, 1, p));
    net.run_until(10 * kMs);
    ASSERT_EQ(probe.received.size(), 1u);
    EXPECT_EQ(probe.received[0].first, 3 * kMs);
    EXPECT_EQ(probe.received[0].second.payload[0], 42);
}

TEST(Network, NoLinkMeansDrop) {
    RadioModel radio;  // no links
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    net.add(std::make_unique<ProbeMote>(1));
    net.start();
    EXPECT_FALSE(net.send(0, 1, {}));
    // Routing failure, not channel loss: the accounting keeps them apart.
    EXPECT_EQ(net.packets_unroutable, 1u);
    EXPECT_EQ(net.packets_dropped, 0u);
}

TEST(Network, RunWhileFalsePredicateRunsNothing) {
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    net.add(std::make_unique<ProbeMote>(1));
    net.start();
    net.send(0, 1, {});  // a delivery is pending...
    Micros t = net.run_while(kSec, [] { return false; });
    EXPECT_EQ(t, 0);  // ...but a false predicate leaves the clock untouched
    EXPECT_EQ(net.packets_delivered, 0u);
}

TEST(Network, RunWhileDeadlineEqualToNowIsANoop) {
    RadioModel radio;
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    net.start();
    net.run_until(5 * kMs);
    int polls = 0;
    Micros t = net.run_while(5 * kMs, [&] {
        ++polls;
        return true;
    });
    EXPECT_EQ(t, 5 * kMs);
    EXPECT_EQ(polls, 0);  // now == deadline: the loop never entered
}

TEST(Network, RunWhileEmptyQueueJumpsToDeadline) {
    RadioModel radio;
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));  // never schedules a wakeup
    net.start();
    Micros t = net.run_while(2 * kSec, [] { return true; });
    EXPECT_EQ(t, 2 * kSec);  // nothing scheduled: clock jumps to the deadline
    EXPECT_EQ(net.now(), 2 * kSec);
}

TEST(Network, RadioDownDropsAndRestores) {
    RadioModel radio;
    radio.bidi_link(0, 1);
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    auto& probe = static_cast<ProbeMote&>(net.add(std::make_unique<ProbeMote>(1)));
    net.start();
    net.radio().set_down(1, true);
    EXPECT_FALSE(net.send(0, 1, {}));
    net.radio().set_down(1, false);
    EXPECT_TRUE(net.send(0, 1, {}));
    net.run_until(10 * kMs);
    EXPECT_EQ(probe.received.size(), 1u);
}

TEST(Network, DeterministicLossInjection) {
    RadioModel radio;
    radio.bidi_link(0, 1);
    radio.set_loss_period(3);  // every 3rd send vanishes
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    auto& probe = static_cast<ProbeMote&>(net.add(std::make_unique<ProbeMote>(1)));
    net.start();
    for (int i = 0; i < 9; ++i) net.send(0, 1, {});
    net.run_until(kSec);
    EXPECT_EQ(probe.received.size(), 6u);
    EXPECT_EQ(net.packets_dropped, 3u);
}

// -- CeuMote (TinyOS binding) --------------------------------------------------

TEST(CeuMote, RunsTimersOnTheVirtualClock) {
    RadioModel radio;
    Network net(radio);
    CeuMoteConfig cfg;
    cfg.source = R"(
        int n = 0;
        loop do
           await 100ms;
           n = n + 1;
           _Leds_set(n);
        end
    )";
    auto& m = static_cast<CeuMote&>(net.add(std::make_unique<CeuMote>(0, cfg)));
    net.start();
    net.run_until(550 * kMs);
    EXPECT_EQ(m.leds(), 5);
    EXPECT_EQ(m.led_history().size(), 5u);
}

TEST(CeuMote, ReceivesAndForwardsMessages) {
    // A 2-mote echo: mote 1 receives, increments, sends back to mote 0.
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    Network net(radio);

    CeuMoteConfig sender;
    sender.source = R"(
        input int Radio_receive;
        _message_t msg;
        int* cnt = _Radio_getPayload(&msg);
        *cnt = 1;
        _Radio_send(1, &msg);
        loop do
           _message_t* m = await Radio_receive;
           int* v = _Radio_getPayload(m);
           _Leds_set(*v);
        end
    )";
    CeuMoteConfig echo;
    echo.source = R"(
        input int Radio_receive;
        loop do
           _message_t* m = await Radio_receive;
           int* v = _Radio_getPayload(m);
           *v = *v + 1;
           _Radio_send(0, m);
        end
    )";
    auto& m0 = static_cast<CeuMote&>(net.add(std::make_unique<CeuMote>(0, sender)));
    net.add(std::make_unique<CeuMote>(1, echo));
    net.start();
    net.run_until(100 * kMs);
    EXPECT_EQ(m0.leds(), 2);  // 1 incremented once by the echo mote
    EXPECT_EQ(net.packets_delivered, 2u);
}

TEST(CeuMote, AsyncsRunOnlyWhenIdleAndInputsTakePriority) {
    RadioModel radio;
    radio.link(1, 0, kMs);
    Network net(radio);
    CeuMoteConfig cfg;
    cfg.source = R"(
        input int Radio_receive;
        int got = 0;
        par do
           loop do
              await Radio_receive;
              got = got + 1;
              _Leds_set(got);
           end
        with
           int r = async do
              int i = 0;
              loop do
                 i = i + 1;
                 if i == 1000000 then break; end
              end
              return i;
           end;
           await forever;
        end
    )";
    auto& rx = static_cast<CeuMote&>(net.add(std::make_unique<CeuMote>(0, cfg)));

    CeuMoteConfig tx;
    tx.source = R"(
        int n = 0;
        loop do
           await 10ms;
           _message_t msg;
           int* v = _Radio_getPayload(&msg);
           *v = n;
           _Radio_send(0, &msg);
           n = n + 1;
           if n == 20 then await forever; end
        end
    )";
    net.add(std::make_unique<CeuMote>(1, tx));
    net.start();
    net.run_until(2 * kSec);
    // All 20 messages handled despite the infinite computation in parallel.
    EXPECT_EQ(rx.leds(), 20);
    EXPECT_EQ(rx.rx_dropped, 0u);
}

TEST(CeuMote, RxQueueOverflowCountsDrops) {
    // Arrivals faster than the mote can service overflow the bounded
    // receive queue; the loss accounting backs the Table 2 protocol.
    RadioModel radio;
    radio.link(1, 0, 100);
    Network net(radio);
    CeuMoteConfig cfg;
    cfg.source = R"(
        input int Radio_receive;
        loop do
           await Radio_receive;
        end
    )";
    cfg.reaction_cost = 50 * kMs;  // very slow receiver
    cfg.rx_queue_capacity = 1;
    auto& rx = static_cast<CeuMote&>(net.add(std::make_unique<CeuMote>(0, cfg)));
    net.add(std::make_unique<ProbeMote>(1));
    net.start();
    for (int i = 0; i < 10; ++i) {
        net.run_until(net.now() + kMs);
        net.send(1, 0, {});
    }
    net.run_until(2 * kSec);
    EXPECT_GT(rx.rx_dropped, 0u);
    EXPECT_GT(rx.rx_count, 0u);
    EXPECT_EQ(rx.rx_count + rx.rx_dropped, 10u);
}

// -- nesC baseline ----------------------------------------------------------------

TEST(Nesc, BlinkTogglesPeriodically) {
    RadioModel radio;
    Network net(radio);
    auto& m = static_cast<NescMote&>(
        net.add(std::make_unique<NescMote>(0, std::make_unique<NescBlinkApp>())));
    net.start();
    net.run_until(kSec);
    EXPECT_EQ(m.led_history().size(), 4u);  // toggles at 250/500/750/1000ms
}

TEST(Nesc, ClientServerExchangeWithAcks) {
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    Network net(radio);
    auto& server = static_cast<NescMote&>(
        net.add(std::make_unique<NescMote>(0, std::make_unique<NescServerApp>())));
    auto& client = static_cast<NescMote&>(
        net.add(std::make_unique<NescMote>(1, std::make_unique<NescClientApp>())));
    net.start();
    net.run_until(10 * kSec);
    // 4 samples per second => ~10 batches acked in 10s.
    EXPECT_GE(server.rx_count, 8u);
    EXPECT_GE(client.rx_count, 8u);  // acks received
    EXPECT_GT(server.ram_model_bytes(), 0u);
}

TEST(Nesc, ClientRetriesWithoutAcks) {
    RadioModel radio;
    radio.link(1, 0, kMs);  // client->server only: acks never return
    Network net(radio);
    auto& server = static_cast<NescMote&>(
        net.add(std::make_unique<NescMote>(0, std::make_unique<NescServerApp>())));
    net.add(std::make_unique<NescMote>(1, std::make_unique<NescClientApp>()));
    net.start();
    net.run_until(5 * kSec);
    // The same batch keeps being retried via the 1s watchdog.
    EXPECT_GE(server.rx_count, 3u);
}

// -- MantisOS baseline --------------------------------------------------------------

TEST(Mantis, ReceiverBlocksAndProcessesMessages) {
    MantisKernel k;
    k.add(std::make_unique<MantisReceiverThread>(7 * kMs));
    k.boot(0);
    Packet p;
    k.msg_arrival(p, kMs);
    k.msg_arrival(p, 2 * kMs);
    // Drive the kernel manually.
    for (int i = 0; i < 20; ++i) {
        Micros e = k.next_event();
        if (e < 0) break;
        k.advance(e);
    }
    EXPECT_EQ(k.messages_handled, 2u);
    EXPECT_EQ(k.messages_dropped, 0u);
}

TEST(Mantis, HighPriorityReceiverPreemptsLoops) {
    MantisConfig cfg;
    Network net{RadioModel{}};
    auto mote = std::make_unique<MantisMote>(0, cfg);
    auto* recv = new MantisReceiverThread(7 * kMs);
    recv->priority = 10;  // the paper raised the receiver's priority
    mote->kernel().add(std::unique_ptr<MantisThread>(recv));
    for (int i = 0; i < 5; ++i) {
        mote->kernel().add(std::make_unique<MantisLoopThread>());
    }
    auto& m = net.add(std::move(mote));
    net.start();
    // Inject messages straight at the mote every 10ms for 1 second.
    for (int i = 1; i <= 100; ++i) {
        net.run_until(i * 10 * kMs);
        m.deliver(net, {});
    }
    net.run_until(2 * kSec);
    auto& k = static_cast<MantisMote&>(m).kernel();
    EXPECT_EQ(k.messages_handled, 100u);
    EXPECT_EQ(k.messages_dropped, 0u);
}

TEST(Mantis, EqualPrioritySlicingDelaysTheReceiver) {
    // Without the priority fix, 5 compute loops time-slice with the
    // receiver: with a 10ms quantum a message can wait ~50ms.
    MantisConfig cfg;
    Network net{RadioModel{}};
    auto mote = std::make_unique<MantisMote>(0, cfg);
    auto* recv = new MantisReceiverThread(kMs);
    recv->priority = 1;  // same as the loops
    mote->kernel().add(std::unique_ptr<MantisThread>(recv));
    for (int i = 0; i < 5; ++i) {
        mote->kernel().add(std::make_unique<MantisLoopThread>());
    }
    auto& m = net.add(std::move(mote));
    net.start();
    net.run_until(5 * kMs);
    m.deliver(net, {});
    // Not processed instantly...
    EXPECT_EQ(recv->processed, 0u);
    net.run_until(200 * kMs);
    // ...but processed once the slice rotation reaches the receiver.
    EXPECT_EQ(recv->processed, 1u);
}

TEST(Mantis, NaiveBlinkDriftsUnderLoad) {
    MantisConfig cfg;
    MantisKernel k(cfg);
    auto* blink = new MantisBlinkThread(400 * kMs);
    k.add(std::unique_ptr<MantisThread>(blink));
    k.add(std::make_unique<MantisLoopThread>());
    k.boot(0);
    for (uint64_t guard = 0; guard < 500000; ++guard) {
        Micros e = k.next_event();
        if (e < 0 || e > 60 * kSec) break;
        k.advance(e);
    }
    ASSERT_GE(blink->toggles.size(), 20u);
    // The k-th toggle should be at k*400ms; the naive relative re-arm plus
    // scheduling latency accumulates drift.
    Micros last = blink->toggles.back().first;
    // The first toggle lands right after boot, so toggle k ideally fires at
    // (k-1)*400ms.
    Micros ideal = static_cast<Micros>(blink->toggles.size() - 1) * 400 * kMs;
    EXPECT_GT(last - ideal, 10 * kMs) << "expected accumulated drift";
}

TEST(Mantis, SenderEmitsAtInterval) {
    RadioModel radio;
    radio.link(1, 0, kMs);
    Network net(radio);
    auto& probe = static_cast<ProbeMote&>(net.add(std::make_unique<ProbeMote>(0)));
    auto mote = std::make_unique<MantisMote>(1);
    mote->kernel().add(std::make_unique<MantisSenderThread>(0, 10 * kMs, 25));
    net.add(std::move(mote));
    net.start();
    net.run_until(2 * kSec);
    EXPECT_EQ(probe.received.size(), 25u);
}

}  // namespace
}  // namespace ceu::wsn
