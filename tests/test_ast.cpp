// AST-layer tests: the generic walkers (used by sema and the temporal
// analysis) and the block pretty-printer.
#include <gtest/gtest.h>

#include "ast/print.hpp"
#include "parser/parser.hpp"

namespace ceu {
namespace {

using namespace ast;

Program parse_ok(const std::string& text) {
    Diagnostics diags;
    Program p = parse_source(text, diags);
    EXPECT_TRUE(diags.ok()) << diags.str();
    return p;
}

TEST(AstWalk, VisitsNestedStatements) {
    Program p = parse_ok(R"(
        input void A;
        int v;
        par do
           loop do
              await A;
              if v then
                 v = 1;
              else
                 v = 2;
              end
           end
        with
           int w = do
              return 3;
           end;
        end
    )");
    int awaits = 0, assigns = 0, returns = 0, total = 0;
    walk_stmts(p.body, [&](const Stmt& s) {
        ++total;
        switch (s.kind) {
            case StmtKind::AwaitExt: ++awaits; break;
            case StmtKind::Assign: ++assigns; break;
            case StmtKind::Return: ++returns; break;
            default: break;
        }
        return true;
    });
    EXPECT_EQ(awaits, 1);
    EXPECT_EQ(assigns, 2);   // v = 1 and v = 2
    EXPECT_EQ(returns, 1);   // inside the value do-block
    EXPECT_GT(total, 8);
}

TEST(AstWalk, ReturningFalsePrunesTheSubtree) {
    Program p = parse_ok("loop do await 1s; loop do await 2s; end end");
    int loops = 0, awaits = 0;
    walk_stmts(p.body, [&](const Stmt& s) {
        if (s.kind == StmtKind::Loop) {
            ++loops;
            return loops == 1;  // descend only into the first loop
        }
        if (s.kind == StmtKind::AwaitTime) ++awaits;
        return true;
    });
    EXPECT_EQ(loops, 2);
    EXPECT_EQ(awaits, 1);  // the inner loop's await was pruned
}

TEST(AstWalk, VisitsEverySubexpression) {
    Program p = parse_ok("int a, b; a = _f(a + b, b[2]) * -a;");
    const auto& assign = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    int vars = 0, calls = 0, nums = 0;
    walk_exprs(*assign.rhs_expr, [&](const Expr& e) {
        if (e.kind == ExprKind::Var) ++vars;
        if (e.kind == ExprKind::Call) ++calls;
        if (e.kind == ExprKind::Num) ++nums;
    });
    EXPECT_EQ(vars, 4);  // a, b, b, a
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(nums, 1);  // the index 2
}

TEST(AstPrint, BlockPrinterRoundTripsStructure) {
    Program p = parse_ok(R"(
        input void A;
        par/or do
           loop do
              await A;
           end
        with
           if 1 then
              nothing;
           else
              await 1s;
           end
        end
    )");
    std::string printed = print_block(p.body);
    // The printed form re-parses to the same structure.
    Program again = parse_ok(printed);
    EXPECT_EQ(print_block(again.body), printed);
    EXPECT_NE(printed.find("par/or do"), std::string::npos);
    EXPECT_NE(printed.find("await A"), std::string::npos);
    EXPECT_NE(printed.find("else"), std::string::npos);
}

TEST(AstPrint, SummariesForAllDeclarationForms) {
    Program p = parse_ok(
        "input int A; output void O; internal void e; int[4] xs; pure _f;\n"
        "deterministic _g, _h; C do int q; end");
    std::vector<std::string> summaries;
    for (const auto& s : p.body.stmts) summaries.push_back(summarize_stmt(*s));
    EXPECT_EQ(summaries[0], "input int A");
    EXPECT_EQ(summaries[1], "output void O");
    EXPECT_EQ(summaries[2], "internal void e");
    EXPECT_EQ(summaries[3], "int xs[4]");
    EXPECT_EQ(summaries[4], "pure _f");
    EXPECT_EQ(summaries[5], "deterministic _g, _h");
    EXPECT_EQ(summaries[6], "C do ... end");
}

}  // namespace
}  // namespace ceu
