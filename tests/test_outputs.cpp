// Output events — the extension the paper sketches as future work
// ("Multiple processes", §7): `output int O` lets a program notify its
// environment with `emit O = v`, the dual of input events. Covers sema
// rules, runtime dispatch, temporal analysis, and the C backend hook.
#include <gtest/gtest.h>

#include "cgen/cgen.hpp"
#include "dfa/dfa.hpp"
#include "env/driver.hpp"

namespace ceu {
namespace {

using env::Driver;
using env::Script;
using rt::CBindings;
using rt::Engine;
using rt::Value;

TEST(Outputs, EmitInvokesTheRegisteredHandler) {
    flat::CompiledProgram cp = flat::compile(R"(
        output int Led;
        input void A;
        int n = 0;
        loop do
           await A;
           n = n + 1;
           emit Led = n;
        end
    )");
    std::vector<int64_t> led;
    CBindings extra;
    extra.output("Led", [&led](Engine&, Value v) { led.push_back(v.as_int()); });
    Driver d(cp, &extra);
    d.boot();
    d.feed({env::ScriptItem::Kind::Event, "A", Value::integer(0), 0});
    d.feed({env::ScriptItem::Kind::Event, "A", Value::integer(0), 0});
    EXPECT_EQ(led, (std::vector<int64_t>{1, 2}));
}

TEST(Outputs, UnhandledOutputIsTraced) {
    flat::CompiledProgram cp = flat::compile("output int O; emit O = 9; return 0;");
    Driver d(cp);
    d.run({});
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"output O = 9"}));
}

TEST(Outputs, VoidOutputsCarryNoValue) {
    flat::CompiledProgram cp = flat::compile("output void Ping; emit Ping; return 0;");
    int pings = 0;
    CBindings extra;
    extra.output("Ping", [&pings](Engine&, Value) { ++pings; });
    Driver d(cp, &extra);
    d.run({});
    EXPECT_EQ(pings, 1);

    Diagnostics diags;
    flat::CompiledProgram bad;
    EXPECT_FALSE(flat::compile_checked("output void P; emit P = 1;", &bad, diags));
    EXPECT_TRUE(diags.contains("void but an emit value was given"));
}

TEST(Outputs, AsyncsCannotEmitOutputs) {
    Diagnostics diags;
    flat::CompiledProgram cp;
    EXPECT_FALSE(flat::compile_checked(
        "output int O; int r; r = async do emit O = 1; return 1; end;", &cp, diags));
    EXPECT_TRUE(diags.contains("async blocks cannot emit output events"));
}

TEST(Outputs, RedeclarationAgainstInputsIsRefused) {
    Diagnostics diags;
    flat::CompiledProgram cp;
    EXPECT_FALSE(flat::compile_checked("input int E; output int E;", &cp, diags));
    EXPECT_TRUE(diags.contains("redeclared"));
}

TEST(Outputs, SequentialEmitsAreDeterministic) {
    flat::CompiledProgram cp = flat::compile(R"(
        output int O;
        input void A, B;
        par do
           loop do await A; emit O = 1; end
        with
           loop do await B; emit O = 2; end
        end
    )");
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_TRUE(d.deterministic()) << d.report();
}

TEST(Outputs, ConcurrentEmitsOfOneOutputAreRefused) {
    // Two trails awakened by the same event emit the same output: the order
    // seen by the environment is unspecified -> refused, like C calls.
    flat::CompiledProgram cp = flat::compile(R"(
        output int O;
        input void A;
        par do
           loop do await A; emit O = 1; end
        with
           loop do await A; emit O = 2; end
        end
    )");
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_FALSE(d.deterministic());
    bool found = false;
    for (const auto& c : d.conflicts()) {
        if (c.kind == dfa::Conflict::Kind::CCall &&
            c.what.find("O") != std::string::npos) {
            found = true;
        }
    }
    EXPECT_TRUE(found) << d.report();
}

TEST(Outputs, DeterministicAnnotationAllowsConcurrentEmits) {
    // Outputs share the C-call annotation registry under the event's name:
    // declaring the emission order irrelevant admits the program.
    flat::CompiledProgram cp = flat::compile(R"(
        output int O;
        deterministic _O, _O;
        input void A;
        par do
           loop do await A; emit O = 1; end
        with
           loop do await A; emit O = 2; end
        end
    )");
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_TRUE(d.deterministic()) << d.report();
}

TEST(Outputs, CgenEmitsTheHook) {
    flat::CompiledProgram cp = flat::compile("output int Led; emit Led = 3; return 0;");
    std::string c = cgen::emit_c(cp);
    EXPECT_NE(c.find("void ceu_output_Led(int64_t v)"), std::string::npos);
    EXPECT_NE(c.find("ceu_output_Led(INT64_C(3))"), std::string::npos);
}

TEST(Outputs, BlinkTwoLedsViaOutputs) {
    // The §6 blink experiment expressed with the extension: outputs instead
    // of raw C calls. Both outputs fire in the same reaction at the 2s
    // joints (emissions within one reaction are causally ordered by trail
    // structure, so no annotation is needed here — different outputs).
    flat::CompiledProgram cp = flat::compile(R"(
        output void Led0, Led1;
        par do
           loop do emit Led0; await 400ms; end
        with
           loop do emit Led1; await 1000ms; end
        end
    )");
    std::vector<std::pair<char, Micros>> toggles;
    CBindings extra;
    extra.output("Led0", [&toggles](Engine& e, Value) {
        toggles.emplace_back('0', e.logical_now());
    });
    extra.output("Led1", [&toggles](Engine& e, Value) {
        toggles.emplace_back('1', e.logical_now());
    });
    Driver d(cp, &extra);
    d.run(Script().advance(4 * kSec));
    // At t=2s and t=4s both leds toggle at the same logical instant.
    int joint = 0;
    for (size_t i = 0; i + 1 < toggles.size(); ++i) {
        if (toggles[i].second == toggles[i + 1].second &&
            toggles[i].first != toggles[i + 1].first) {
            ++joint;
        }
    }
    EXPECT_GE(joint, 3);  // t=0, 2s, 4s
}

}  // namespace
}  // namespace ceu
