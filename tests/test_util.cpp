// Utility-layer tests: diagnostics, source locations, the slot allocator.
#include <gtest/gtest.h>

#include "codegen/layout.hpp"
#include "runtime/value.hpp"
#include "util/diag.hpp"

namespace ceu {
namespace {

TEST(Diagnostics, CollectsAndCounts) {
    Diagnostics d;
    EXPECT_TRUE(d.ok());
    d.warning({1, 2}, "just a warning");
    EXPECT_TRUE(d.ok());
    d.error({3, 4}, "an error");
    d.note({}, "a note");
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error_count(), 1u);
    EXPECT_EQ(d.all().size(), 3u);
    EXPECT_TRUE(d.contains("an error"));
    EXPECT_FALSE(d.contains("missing"));
    EXPECT_NE(d.str().find("3:4: error: an error"), std::string::npos);
    // Notes without a location omit the position prefix.
    EXPECT_NE(d.str().find("note: a note"), std::string::npos);
    d.clear();
    EXPECT_TRUE(d.ok());
    EXPECT_TRUE(d.all().empty());
}

TEST(SourceLoc, ValidityAndFormatting) {
    SourceLoc none;
    EXPECT_FALSE(none.valid());
    SourceLoc at{12, 7};
    EXPECT_TRUE(at.valid());
    EXPECT_EQ(at.str(), "12:7");
    EXPECT_EQ(at, (SourceLoc{12, 7}));
}

TEST(SlotAllocator, SequentialReuseAndPeak) {
    flat::SlotAllocator a;
    int x = a.alloc(2);
    EXPECT_EQ(x, 0);
    int mark = a.save();
    int y = a.alloc(3);
    EXPECT_EQ(y, 2);
    a.restore(mark);
    int z = a.alloc(1);
    EXPECT_EQ(z, 2);  // reuses y's space
    EXPECT_EQ(a.peak(), 5);
}

TEST(SlotAllocator, ParallelStackingViaLocalPeaks) {
    flat::SlotAllocator a;
    (void)a.alloc(1);  // enclosing scope
    int base = a.save();
    int running = base;
    // Branch 1 needs 3 slots (with internal reuse of 2 of them).
    a.restore(running);
    running = a.with_local_peak([&] {
        int m = a.save();
        (void)a.alloc(2);
        a.restore(m);
        (void)a.alloc(1);
    });
    EXPECT_EQ(running, base + 2);  // local peak, not the sum
    // Branch 2 starts above branch 1's peak: coexistence.
    a.restore(running);
    int b2 = a.alloc(1);
    EXPECT_EQ(b2, base + 2);
    EXPECT_EQ(a.peak(), base + 3);
}

TEST(Value, Conversions) {
    rt::Value i = rt::Value::integer(-5);
    EXPECT_TRUE(i.is_int());
    EXPECT_EQ(i.as_int(), -5);
    EXPECT_TRUE(i.truthy());
    EXPECT_FALSE(rt::Value::integer(0).truthy());

    int64_t cell = 9;
    rt::Value p = rt::Value::pointer(&cell);
    EXPECT_TRUE(p.is_ptr());
    EXPECT_TRUE(p.truthy());
    EXPECT_FALSE(rt::Value::pointer(nullptr).truthy());
    EXPECT_EQ(*p.p, 9);

    rt::Value s = rt::Value::str("hi");
    EXPECT_EQ(s.str_repr(), "\"hi\"");
    EXPECT_EQ(i.str_repr(), "-5");
    EXPECT_EQ(rt::Value::pointer(nullptr).str_repr(), "null");

    EXPECT_TRUE(rt::Value::integer(4) == rt::Value::integer(4));
    EXPECT_FALSE(rt::Value::integer(4) == rt::Value::integer(5));
}

}  // namespace
}  // namespace ceu
