// Semantic analysis tests: name resolution, declaration rules, async
// restrictions (§2.7), and the bounded-execution check (§2.5) — including
// every accept/reject example printed in the paper.
#include <gtest/gtest.h>

#include "parser/parser.hpp"
#include "sema/sema.hpp"

namespace ceu {
namespace {

SemaInfo sema_ok(const std::string& text) {
    Diagnostics diags;
    ast::Program p = parse_source(text, diags);
    EXPECT_TRUE(diags.ok()) << diags.str();
    SemaInfo info = analyze(p, diags);
    EXPECT_TRUE(diags.ok()) << diags.str();
    return info;
}

void sema_err(const std::string& text, const std::string& needle) {
    Diagnostics diags;
    ast::Program p = parse_source(text, diags);
    ASSERT_TRUE(diags.ok()) << diags.str();
    (void)analyze(p, diags);
    EXPECT_FALSE(diags.ok()) << "expected error for:\n" << text;
    EXPECT_TRUE(diags.contains(needle)) << diags.str();
}

TEST(Sema, ResolvesEventsAndVariables) {
    SemaInfo info = sema_ok(
        "input int Restart; internal void changed; int v = 0;\n"
        "par do loop do await 1s; v = v + 1; emit changed; end\n"
        "with loop do v = await Restart; emit changed; end\n"
        "with loop do await changed; _printf(\"v\"); end end");
    EXPECT_EQ(info.inputs.size(), 1u);
    EXPECT_EQ(info.internals.size(), 1u);
    EXPECT_EQ(info.input_id("Restart"), 0);
    EXPECT_EQ(info.internal_id("changed"), 0);
    ASSERT_EQ(info.vars.size(), 1u);
    EXPECT_EQ(info.vars[0].name, "v");
}

TEST(Sema, UndeclaredVariable) { sema_err("v = 1;", "undeclared variable 'v'"); }

TEST(Sema, UndeclaredInputEvent) {
    sema_err("await A;", "undeclared input event 'A'");
}

TEST(Sema, UndeclaredInternalEvent) {
    sema_err("await e;", "undeclared internal event 'e'");
}

TEST(Sema, RedeclaredInputEvent) {
    sema_err("input void A; input int A;", "redeclared");
}

TEST(Sema, EventUsedAsValue) {
    sema_err("internal void e; int v; v = e;", "used as a value");
}

TEST(Sema, ShadowingInNestedScopesIsAllowed) {
    sema_ok("int v = 1; do int v = 2; end");
}

TEST(Sema, ScopeEndsWithBlock) {
    sema_err("do int v = 2; end v = 3;", "undeclared variable 'v'");
}

TEST(Sema, EmitValueOnVoidEventIsAnError) {
    sema_err("internal void e; emit e = 5;", "notify-only");
}

TEST(Sema, AwaitVoidEventAsValueIsAnError) {
    sema_err("input void A; int v = await A;", "cannot produce a value");
}

// -- async restrictions (paper §2.7) ----------------------------------------

TEST(SemaAsync, CannotAwaitInputEvents) {
    sema_err("input void A; int r; r = async do await A; return 1; end;",
             "cannot await");
}

TEST(SemaAsync, CannotContainParallels) {
    sema_err("int r; r = async do par do nothing; with nothing; end return 1; end;",
             "cannot contain parallel blocks");
}

TEST(SemaAsync, CannotManipulateInternalEvents) {
    sema_err("internal void e; int r; r = async do emit e; return 1; end;",
             "cannot manipulate internal events");
}

TEST(SemaAsync, CannotAssignToOuterVariables) {
    sema_err("int v; int r; r = async do v = 1; return 1; end;",
             "cannot assign to variable 'v' defined in an outer block");
}

TEST(SemaAsync, LocalAssignmentsAreFine) {
    sema_ok("int r; r = async do int sum = 0; sum = sum + 1; return sum; end;");
}

TEST(SemaAsync, CanReadOuterVariables) {
    sema_ok("int n = 10; int r; r = async do int s = n + 1; return s; end;");
}

TEST(SemaAsync, CannotNest) {
    sema_err("int r; r = async do int q = 1; async do return 1; end return q; end;",
             "cannot nest");
}

TEST(SemaAsync, EmitInputOnlyInsideAsync) {
    sema_err("input void A; emit A;", "can only be emitted from async blocks");
    sema_err("emit 10ms;", "can only be emitted from async blocks");
    sema_ok("input void A; par do await A; with async do emit A; emit 10ms; end end");
}

TEST(Sema, BreakOutsideLoop) { sema_err("break;", "'break' outside of a loop"); }

// -- bounded execution (paper §2.5) ------------------------------------------
// Examples 1-5 verbatim from the paper.

TEST(Bounded, Example1TightLoopRefused) {
    sema_err("int v; loop do v = v + 1; end", "unbounded loop");
}

TEST(Bounded, Example2IfWithoutElseAwaitRefused) {
    sema_err("input void A; int v; loop do if v then await A; end end",
             "unbounded loop");
}

TEST(Bounded, Example3ParOrWithInstantBranchRefused) {
    sema_err(
        "input void A; int v;\n"
        "loop do par/or do await A; with v = 1; end end",
        "unbounded loop");
}

TEST(Bounded, Example4SimpleAwaitAccepted) {
    sema_ok("input void A; loop do await A; end");
}

TEST(Bounded, Example5ParAndAccepted) {
    sema_ok("input void A; int v; loop do par/and do await A; with v = 1; end end");
}

TEST(Bounded, BreakSatisfiesTheLoop) {
    sema_ok("int v; loop do if v then break; else await 1s; end end");
}

TEST(Bounded, BreakAloneSatisfies) { sema_ok("loop do break; end"); }

TEST(Bounded, IfBothBranchesAwaitAccepted) {
    sema_ok("input void A, B; int v; loop do if v then await A; else await B; end end");
}

TEST(Bounded, NestedLoopThatBreaksInstantlyDoesNotBoundTheOuter) {
    // The inner loop is fine (break), but its break path completes the
    // inner loop without awaiting -> the outer loop has an instantaneous
    // path -> refused.
    sema_err("loop do loop do break; end end", "unbounded loop");
}

TEST(Bounded, NestedLoopWithAwaitBeforeBreakBoundsTheOuter) {
    sema_ok("input void A; loop do loop do await A; break; end end");
}

TEST(Bounded, PlainParNeverRejoinsSoItBounds) {
    sema_ok("input void A; int v;\n"
            "loop do par do await A; with v = 1; await A; end end");
}

TEST(Bounded, ReturnBoundsTheLoop) {
    sema_ok("int v; loop do return v; end");
}

TEST(Bounded, AwaitValueAssignmentCounts) {
    sema_ok("input int A; int v; loop do v = await A; end");
}

TEST(Bounded, ValueParOrWithInstantBranchRefused) {
    sema_err(
        "input void A; int v;\n"
        "loop do\n"
        "  int x = par/or do await A; return 1; with v = 1; end;\n"
        "  v = x;\n"
        "end",
        "unbounded loop");
}

TEST(Bounded, AsyncLoopsAreExempt) {
    sema_ok(
        "int ret;\n"
        "ret = async do\n"
        "   int sum = 0; int i = 1;\n"
        "   loop do sum = sum + i;\n"
        "      if i == 100 then break; else i = i + 1; end\n"
        "   end\n"
        "   return sum;\n"
        "end;");
}

TEST(Bounded, AwaitingAnAsyncBoundsTheLoop) {
    sema_ok("int r; loop do r = async do return 1; end; end");
}

TEST(Sema, PureAndDeterministicPolicies) {
    SemaInfo info = sema_ok(
        "pure _abs;\n"
        "deterministic _led1On, _led2On;\n"
        "deterministic _led1Off, _led2Off;");
    EXPECT_TRUE(info.ccalls.is_pure("abs"));
    EXPECT_TRUE(info.ccalls.allowed("abs", "led1On"));
    EXPECT_TRUE(info.ccalls.allowed("led1On", "led2On"));
    EXPECT_TRUE(info.ccalls.allowed("led1Off", "led2Off"));
    EXPECT_FALSE(info.ccalls.allowed("led1On", "led2Off"));
    // A group covers all pairs drawn from it, including a function with a
    // concurrent instance of itself; un-annotated self-pairs stay refused.
    EXPECT_TRUE(info.ccalls.allowed("led1On", "led1On"));
    EXPECT_FALSE(info.ccalls.allowed("unannotated", "unannotated"));
    EXPECT_FALSE(info.ccalls.allowed("unannotated", "led1On"));
}

TEST(Sema, CBlocksAreCollectedInOrder) {
    SemaInfo info = sema_ok("C do int A; end C do int B; end");
    ASSERT_EQ(info.c_blocks.size(), 2u);
    EXPECT_NE(info.c_blocks[0].find("int A;"), std::string::npos);
    EXPECT_NE(info.c_blocks[1].find("int B;"), std::string::npos);
}

}  // namespace
}  // namespace ceu
