// Runtime semantics tests: the execution model of §2, exercised through the
// paper's own example programs. Each test encodes the behavior the paper
// narrates (reaction boundaries, event discarding, the internal-event stack
// walkthrough, residual timer deltas, async scheduling, ...).
#include <gtest/gtest.h>

#include "codegen/flatten.hpp"
#include "env/driver.hpp"

namespace ceu {
namespace {

using env::Driver;
using env::Script;
using flat::CompiledProgram;
using rt::Engine;
using rt::Value;

TEST(Runtime, StraightLineProgramTerminatesWithResult) {
    CompiledProgram cp = flat::compile("int v = 40; v = v + 2; return v;");
    Driver d(cp);
    d.run({});
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    EXPECT_EQ(d.engine().result().as_int(), 42);
}

TEST(Runtime, QuickstartCounterExample) {
    // The three-trail example from §2.
    CompiledProgram cp = flat::compile(R"(
        input int Restart;
        internal void changed;
        int v = 0;
        par do
           loop do
              await 1s;
              v = v + 1;
              emit changed;
           end
        with
           loop do
              v = await Restart;
              emit changed;
           end
        with
           loop do
              await changed;
              _printf("v = %d\n", v);
           end
        end
    )");
    Driver d(cp);
    d.run(Script().advance(kSec).advance(kSec).event("Restart", 10).advance(kSec));
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"v = 1", "v = 2", "v = 10", "v = 11"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Running);
}

TEST(Runtime, AwaitInLoopNeverMissesAnOccurrence) {
    auto trace = env::run_and_trace(
        "input void A; loop do await A; _trace(1); end",
        Script().event("A").event("A").event("A"));
    EXPECT_EQ(trace.size(), 3u);
}

TEST(Runtime, InterveningTimeAwaitCanMissOccurrences) {
    // §2's two-variation example: with `await 1us` between awaits, an A
    // arriving during that microsecond is simply discarded.
    CompiledProgram cp = flat::compile(
        "input void A; loop do await A; await 1us; _trace(1); end");
    Driver d(cp);
    d.run(Script().event("A").event("A").advance(kMs));
    EXPECT_EQ(d.trace().size(), 1u);  // the 2nd A fell into the 1us window
    d.feed({env::ScriptItem::Kind::Event, "A", Value::integer(0), 0});
    d.feed({env::ScriptItem::Kind::Advance, "", Value::integer(0), kMs});
    EXPECT_EQ(d.trace().size(), 2u);
}

TEST(Runtime, Figure1ReactionChains) {
    // Figure 1: boot splits into three trails; A wakes trails 1 and 3; a
    // second A finds nobody awaiting (discarded); B wakes trail 2 and the
    // continuation of trail 3; then no trail awaits -> program over. The
    // enqueued C is never reacted to.
    CompiledProgram cp = flat::compile(R"(
        input void A, B, C;
        par do
           await A; _trace("t1");
        with
           await B; _trace("t2");
        with
           await A; _trace("t3a");
           await B; _trace("t3b");
        end
    )");
    Driver d(cp);
    d.boot();
    auto ev = [&](const char* name) {
        d.feed({env::ScriptItem::Kind::Event, name, Value::integer(0), 0});
    };
    ev("A");
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"t1", "t3a"}));
    ev("A");  // discarded
    EXPECT_EQ(d.trace().size(), 2u);
    EXPECT_EQ(d.engine().status(), Engine::Status::Running);
    ev("B");
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"t1", "t3a", "t2", "t3b"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    ev("C");  // no effect after termination
    EXPECT_EQ(d.trace().size(), 4u);
}

TEST(Runtime, InternalEventStackWalkthrough) {
    // §2.2's numbered step list, traced: v1=10 propagates v2=11, v3=22
    // within the same reaction; then v1=15 propagates v2=16, v3=32.
    CompiledProgram cp = flat::compile(R"(
        int v1, v2, v3;
        internal void v1_evt, v2_evt, v3_evt;
        par do
           loop do
              await v1_evt;
              v2 = v1 + 1;
              _trace("v2", v2);
              emit v2_evt;
           end
        with
           loop do
              await v2_evt;
              v3 = v2 * 2;
              _trace("v3", v3);
              emit v3_evt;
           end
        with
           v1 = 10;
           emit v1_evt;
           v1 = 15;
           emit v1_evt;
           await forever;
        end
    )");
    Driver d(cp);
    d.boot();
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"v2 11", "v3 22", "v2 16", "v3 32"}));
    // All of it happened inside the single boot reaction chain.
    EXPECT_EQ(d.engine().reactions(), 1u);
}

TEST(Runtime, MutualDependencyHasNoRuntimeCycle) {
    // §2.2 Celsius/Fahrenheit: emitting tc_evt updates tf and emits tf_evt;
    // the first trail is halted (not yet re-awaiting), so no cycle occurs.
    CompiledProgram cp = flat::compile(R"(
        int tc, tf;
        internal void tc_evt, tf_evt;
        par do
           loop do
              await tc_evt;
              tf = 9 * tc / 5 + 32;
              emit tf_evt;
           end
        with
           loop do
              await tf_evt;
              tc = 5 * (tf - 32) / 9;
              emit tc_evt;
           end
        with
           tc = 100;
           emit tc_evt;
           _trace("tc", tc, "tf", tf);
           tf = 32;
           emit tf_evt;
           _trace("tc", tc, "tf", tf);
           await forever;
        end
    )");
    Driver d(cp);
    d.boot();
    EXPECT_EQ(d.trace(),
              (std::vector<std::string>{"tc 100 tf 212", "tc 0 tf 32"}));
}

TEST(Runtime, ResidualDeltaCompensation) {
    // §2.3: a 10ms timer served 5ms late leaves delta=5ms; the following
    // 1ms await has already expired and fires in the same go_time call.
    CompiledProgram cp = flat::compile(R"(
        int v;
        await 10ms;
        v = 1;
        await 1ms;
        v = 2;
        return v;
    )");
    Driver d(cp);
    d.boot();
    d.engine().go_time(15 * kMs);
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    EXPECT_EQ(d.engine().result().as_int(), 2);
    // boot + one reaction per deadline (10ms, 11ms)
    EXPECT_EQ(d.engine().reactions(), 3u);
}

TEST(Runtime, SequentialTimersDoNotAccumulateDrift) {
    // 10 iterations of `await 10ms` under a jittery clock still complete at
    // logical 100ms: deltas never accumulate.
    CompiledProgram cp = flat::compile(
        "int n = 0; loop do await 10ms; n = n + 1; if n == 10 then break; end end\n"
        "return n;");
    Driver d(cp);
    d.boot();
    // Serve the timers in two very late batches.
    d.engine().go_time(57 * kMs);   // fires 10..50ms deadlines
    EXPECT_EQ(d.engine().status(), Engine::Status::Running);
    d.engine().go_time(103 * kMs);  // fires 60..100ms deadlines
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    EXPECT_EQ(d.engine().result().as_int(), 10);
}

TEST(Runtime, TimeIsAPhysicalQuantity5049Before100) {
    // §2.3: 50ms+49ms terminates strictly before 100ms.
    CompiledProgram cp = flat::compile(R"(
        int v;
        par/or do
            await 50ms;
            await 49ms;
            v = 1;
        with
            await 100ms;
            v = 2;
        end
        return v;
    )");
    Driver d(cp);
    d.run(Script().advance(200 * kMs));
    EXPECT_EQ(d.engine().result().as_int(), 1);
}

TEST(Runtime, EqualDeadlinesExpireInTheSameReaction) {
    CompiledProgram cp = flat::compile(R"(
        par/and do
            await 50ms;
            await 50ms;
            _trace("a");
        with
            await 100ms;
            _trace("b");
        end
        return 0;
    )");
    Driver d(cp);
    d.boot();
    uint64_t before = d.engine().reactions();
    d.engine().go_time(100 * kMs);
    // 50ms fires alone; 100ms group fires both trails together.
    EXPECT_EQ(d.engine().reactions() - before, 2u);
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
}

TEST(Runtime, ParAndRejoinsAfterAllBranches) {
    CompiledProgram cp = flat::compile(R"(
        input void A, B;
        par/and do
            await A;
        with
            await B;
        end
        _trace("joined");
        return 1;
    )");
    Driver d(cp);
    d.boot();
    d.feed({env::ScriptItem::Kind::Event, "A", Value::integer(0), 0});
    EXPECT_TRUE(d.trace().empty());
    d.feed({env::ScriptItem::Kind::Event, "B", Value::integer(0), 0});
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"joined"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
}

TEST(Runtime, ParOrKillsSiblingTrails) {
    CompiledProgram cp = flat::compile(R"(
        input void A, B;
        par/or do
            await A; _trace("a");
        with
            await B; _trace("b");
        end
        _trace("after");
        return 0;
    )");
    Driver d(cp);
    d.boot();
    d.feed({env::ScriptItem::Kind::Event, "A", Value::integer(0), 0});
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"a", "after"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
}

TEST(Runtime, WatchdogArchetype) {
    // §2.1's watchdog: restart a computation that overruns 100ms.
    CompiledProgram cp = flat::compile(R"(
        input void A, B;
        loop do
           par/or do
              await A;
              await B;
              _trace("done");
              break;
           with
              await 100ms;
              _trace("timeout");
           end
        end
        return 0;
    )");
    Driver d(cp);
    d.boot();
    d.feed({env::ScriptItem::Kind::Advance, "", Value::integer(0), 150 * kMs});
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"timeout"}));
    d.feed({env::ScriptItem::Kind::Event, "A", Value::integer(0), 0});
    d.feed({env::ScriptItem::Kind::Event, "B", Value::integer(0), 0});
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"timeout", "done"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
}

TEST(Runtime, SamplingArchetypeRunsAtMinimumPeriod) {
    CompiledProgram cp = flat::compile(R"(
        loop do
           par/and do
              _trace("sample");
           with
              await 100ms;
           end
        end
    )");
    Driver d(cp);
    d.boot();
    EXPECT_EQ(d.trace().size(), 1u);  // immediate first sample
    d.engine().go_time(350 * kMs);
    EXPECT_EQ(d.trace().size(), 4u);  // + samples at 100,200,300ms
}

TEST(Runtime, ValueParReturnsFromEitherTrail) {
    CompiledProgram cp = flat::compile(R"(
        input void Key;
        internal void collision;
        par do
           loop do
              int v =
                 par do
                    await Key;
                    return 1;
                 with
                    await collision;
                    return 0;
                 end;
              _trace("v", v);
           end
        with
           await Key;   // same occurrence also reaches the inner par
           await forever;
        end
    )");
    Driver d(cp);
    d.boot();
    d.feed({env::ScriptItem::Kind::Event, "Key", Value::integer(0), 0});
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"v 1"}));
}

TEST(Runtime, BreakEscapesFromAParallelTrail) {
    // §2.1: loops with nested parallels may escape from different trails.
    CompiledProgram cp = flat::compile(R"(
        input void A, B;
        loop do
           par do
              await A; _trace("a"); break;
           with
              loop do await B; _trace("b"); end
           end
        end
        _trace("out");
        return 0;
    )");
    Driver d(cp);
    d.boot();
    auto ev = [&](const char* name) {
        d.feed({env::ScriptItem::Kind::Event, name, Value::integer(0), 0});
    };
    ev("B");
    ev("B");
    ev("A");
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"b", "b", "a", "out"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    ev("B");
    EXPECT_EQ(d.trace().size(), 4u);
}

TEST(Runtime, GuidingExampleFromSection4) {
    CompiledProgram cp = flat::compile(R"(
        input int A, B, C;
        int ret;
        loop do
           par/or do
              int a = await A;
              int b = await B;
              ret = a + b;
              break;
           with
              par/and do
                 await C;
              with
                 await A;
              end
           end
        end
        return ret;
    )");
    Driver d(cp);
    d.boot();
    d.feed({env::ScriptItem::Kind::Event, "A", Value::integer(3), 0});
    EXPECT_EQ(d.engine().status(), Engine::Status::Running);
    d.feed({env::ScriptItem::Kind::Event, "B", Value::integer(4), 0});
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    EXPECT_EQ(d.engine().result().as_int(), 7);
}

TEST(Runtime, AsyncArithmeticProgressionWithWatchdog) {
    const char* kSource = R"(
        int ret;
        par/or do
           ret = async do
              int sum = 0;
              int i = 1;
              loop do
                 sum = sum + i;
                 if i == 100 then
                    break;
                 else
                    i = i + 1;
                 end
              end
              return sum;
           end;
        with
           await 10ms;
           ret = 0;
        end
        return ret;
    )";
    {
        // Asyncs get to run: the sum completes.
        CompiledProgram cp = flat::compile(kSource);
        Driver d(cp);
        d.run({});
        EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
        EXPECT_EQ(d.engine().result().as_int(), 5050);
    }
    {
        // The watchdog fires before the async is ever scheduled.
        CompiledProgram cp = flat::compile(kSource);
        Driver d(cp);
        d.boot();
        d.engine().go_time(10 * kMs);
        EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
        EXPECT_EQ(d.engine().result().as_int(), 0);
    }
}

TEST(Runtime, AsyncsRunRoundRobin) {
    CompiledProgram cp = flat::compile(R"(
        int r1, r2;
        par/and do
           r1 = async do
              int i = 0;
              loop do
                 _trace("a");
                 i = i + 1;
                 if i == 3 then break; end
              end
              return i;
           end;
        with
           r2 = async do
              int j = 0;
              loop do
                 _trace("b");
                 j = j + 1;
                 if j == 3 then break; end
              end
              return j;
           end;
        end
        return r1 + r2;
    )");
    Driver d(cp);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 6);
    // Round-robin: slices alternate a/b deterministically.
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

TEST(Runtime, SimulationExampleFromSection28) {
    // The paper's §2.8 walkthrough: Start=10, then 1h35min of virtual time;
    // the loop iterates 9 times (v: 10 -> 19); _assert(v==19) passes and
    // both par/ors terminate before the `_assert(0)` line is reached.
    CompiledProgram cp = flat::compile(R"(
        input int Start;
        par/or do
           do
              int v = await Start;
              par/or do
                 loop do
                    await 10min;
                    v = v + 1;
                 end
              with
                 await 1h35min;
                 _assert(v == 19);
                 _trace("ok");
              end
           end
        with
           async do
              emit Start = 10;
              emit 1h35min;
           end
           _assert(0);
        end
    )");
    Driver d(cp);
    EXPECT_NO_THROW(d.run({}));
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"ok"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
}

TEST(Runtime, ApplicationSwitchPattern) {
    // §3.1's app-switch composition: a Switch occurrence kills the running
    // application and restarts as the requested one.
    CompiledProgram cp = flat::compile(R"(
        input int Switch;
        int cur_app = 1;
        loop do
           par/or do
              cur_app = await Switch;
           with
              if cur_app == 1 then
                 _trace("app1");
              end
              if cur_app == 2 then
                 _trace("app2");
              end
              await forever;
           end
        end
    )");
    Driver d(cp);
    d.boot();
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"app1"}));
    d.feed({env::ScriptItem::Kind::Event, "Switch", Value::integer(2), 0});
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"app1", "app2"}));
    d.feed({env::ScriptItem::Kind::Event, "Switch", Value::integer(1), 0});
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"app1", "app2", "app1"}));
}

TEST(Runtime, EmitWithNoAwaitersIsDiscardedInline) {
    CompiledProgram cp = flat::compile(R"(
        internal void e;
        emit e;
        _trace("still here");
        return 7;
    )");
    Driver d(cp);
    d.boot();
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"still here"}));
    EXPECT_EQ(d.engine().result().as_int(), 7);
}

TEST(Runtime, UnboundCSymbolRaisesRuntimeError) {
    CompiledProgram cp = flat::compile("_no_such_function();");
    Driver d(cp);
    EXPECT_THROW(d.boot(), rt::RuntimeError);
}

TEST(Runtime, DivisionByZeroRaisesRuntimeError) {
    CompiledProgram cp = flat::compile("int v = 0; int w = 1 / v; return w;");
    Driver d(cp);
    EXPECT_THROW(d.boot(), rt::RuntimeError);
}

TEST(Runtime, ArrayIndexOutOfBoundsRaises) {
    CompiledProgram cp = flat::compile("int[4] a; a[4] = 1; return 0;");
    Driver d(cp);
    EXPECT_THROW(d.boot(), rt::RuntimeError);
}

TEST(Runtime, ArraysAndIndexing) {
    CompiledProgram cp = flat::compile(R"(
        int[5] a;
        int i = 0;
        loop do
           a[i] = i * i;
           i = i + 1;
           if i == 5 then break; else await 1ms; end
        end
        return a[0] + a[1] + a[2] + a[3] + a[4];
    )");
    Driver d(cp);
    d.run(Script().advance(10 * kMs));
    EXPECT_EQ(d.engine().result().as_int(), 0 + 1 + 4 + 9 + 16);
}

TEST(Runtime, PointersIntoSlots) {
    CompiledProgram cp = flat::compile(R"(
        int v = 5;
        int* p = &v;
        *p = *p + 10;
        return v;
    )");
    Driver d(cp);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 15);
}

TEST(Runtime, DeterministicReplay) {
    // The reactive premise (§2.8): identical input sequences produce
    // identical traces.
    const char* kSource = R"(
        input int Restart;
        internal void changed;
        int v = 0;
        par do
           loop do await 1s; v = v + 1; emit changed; end
        with
           loop do v = await Restart; emit changed; end
        with
           loop do await changed; _trace(v); end
        end
    )";
    Script script;
    script.advance(kSec).event("Restart", 5).advance(2 * kSec).event("Restart", 0);
    auto t1 = env::run_and_trace(kSource, script);
    auto t2 = env::run_and_trace(kSource, script);
    EXPECT_EQ(t1, t2);
    EXPECT_FALSE(t1.empty());
}

TEST(Runtime, VarInspectionAndRamModel) {
    CompiledProgram cp = flat::compile("int v = 3; await forever;");
    Driver d(cp);
    d.boot();
    auto v = d.engine().var("v");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->as_int(), 3);
    EXPECT_GT(d.engine().ram_model_bytes(), 0u);
    EXPECT_EQ(d.engine().active_gate_count(), 1);
}

}  // namespace
}  // namespace ceu
