// Temporal-analysis tests: every accept/reject program from §2.6, plus the
// wall-clock cases, annotations, the GALS example of §2.9, and structural
// checks on the DFA itself (Figure 2).
#include <gtest/gtest.h>

#include "dfa/dfa.hpp"

namespace ceu {
namespace {

using dfa::Conflict;
using dfa::Dfa;
using dfa::DfaOptions;

Dfa build(const std::string& source, DfaOptions opt = {}) {
    flat::CompiledProgram cp = flat::compile(source);
    return Dfa::build(cp, opt);
}

void expect_deterministic(const std::string& source) {
    Dfa d = build(source);
    EXPECT_TRUE(d.deterministic()) << d.report();
    EXPECT_TRUE(d.complete());
}

Dfa expect_nondeterministic(const std::string& source, Conflict::Kind kind,
                            const std::string& what) {
    Dfa d = build(source);
    EXPECT_FALSE(d.deterministic()) << "expected a conflict in:\n" << source;
    bool found = false;
    for (const Conflict& c : d.conflicts()) {
        if (c.kind == kind && c.what.find(what) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "conflicts found instead:\n" << d.report();
    return d;
}

// -- §2.1 / §2.6 basic variable conflicts -------------------------------------

TEST(Dfa, ConcurrentWritesAtBootAreRefused) {
    expect_nondeterministic(R"(
        int v;
        par/and do
            v = 1;
        with
            v = 2;
        end
        return v;
    )", Conflict::Kind::Variable, "v");
}

TEST(Dfa, WriteReadConflictIsAlsoRefused) {
    expect_nondeterministic(R"(
        int v, w;
        par/and do
            v = 1;
        with
            w = v;
        end
        return w;
    )", Conflict::Kind::Variable, "v");
}

TEST(Dfa, FalsePositiveSameValueWritesAreStillRefused) {
    // §2.6: "programs that access the same variables concurrently are
    // always detected as nondeterministic, regardless of the values".
    expect_nondeterministic(R"(
        int v;
        par/and do
            v = 1;
        with
            v = 1;
        end
        return v;
    )", Conflict::Kind::Variable, "v");
}

TEST(Dfa, DifferentExternalEventsCannotBeSimultaneous) {
    // §2.6: A and B are external, so the assignments can never run in the
    // same reaction chain.
    expect_deterministic(R"(
        input void A, B;
        int v;
        par/and do
            await A;
            v = 1;
        with
            await B;
            v = 2;
        end
        return v;
    )");
}

TEST(Dfa, Figure2TwoVersusThreeAwaits) {
    // The paper's Figure 2 program: trails of period 2 and 3 over the same
    // event collide on the 6th occurrence of A.
    flat::CompiledProgram cp = flat::compile(R"(
        input void A;
        int v;
        par do
           loop do
              await A;
              await A;
              v = 1;
           end
        with
           loop do
              await A;
              await A;
              await A;
              v = 2;
           end
        end
    )");
    Dfa d = Dfa::build(cp);
    EXPECT_FALSE(d.deterministic());
    ASSERT_FALSE(d.conflicts().empty());
    const Conflict& c = d.conflicts().front();
    EXPECT_EQ(c.kind, Conflict::Kind::Variable);
    EXPECT_EQ(c.what, "v");
    EXPECT_EQ(c.trigger, "A");
    // Positions cycle with period lcm(2,3)=6: the reachable state count is
    // small and the automaton is complete (paper Fig. 2 draws 8 states).
    EXPECT_TRUE(d.complete());
    EXPECT_GE(d.state_count(), 6u);
    EXPECT_LE(d.state_count(), 9u);
    // Some state must be marked as conflicting, and the DOT must flag it.
    bool any = false;
    for (const auto& s : d.states()) any = any || s.has_conflict;
    EXPECT_TRUE(any);
    std::string dot = d.to_dot();
    EXPECT_NE(dot.find("DFA #"), std::string::npos);
    EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(Dfa, SameEventDifferentVariablesIsFine) {
    expect_deterministic(R"(
        input void A;
        int v, w;
        par do
           loop do await A; v = 1; end
        with
           loop do await A; w = 2; end
        end
    )");
}

// -- wall-clock time (§2.6) ----------------------------------------------------

TEST(Dfa, TimeArithmetic5049Versus100IsDeterministic) {
    expect_deterministic(R"(
        int v;
        par/or do
            await 50ms;
            await 49ms;
            v = 1;
        with
            await 100ms;
            v = 2;
        end
        return v;
    )");
}

TEST(Dfa, TimerLoop10msVersus100msIsNondeterministic) {
    // §2.6: the 10ms loop's accumulated deadline meets 100ms every ten
    // iterations.
    expect_nondeterministic(R"(
        int v;
        par/or do
            loop do
                await 10ms;
                v = 1;
            end
        with
            await 100ms;
            v = 2;
        end
        return v;
    )", Conflict::Kind::Variable, "v");
}

TEST(Dfa, NonDivisorPeriodsAreDeterministic) {
    // 30ms accumulates 30,60,90,120... and 100 is never hit; the remainder
    // algebra must terminate and accept.
    expect_deterministic(R"(
        int v;
        par/or do
            loop do
                await 30ms;
                v = 1;
            end
        with
            await 100ms;
        end
        return v;
    )");
}

TEST(Dfa, EqualTimersConflict) {
    expect_nondeterministic(R"(
        int v;
        par/and do
            await 100ms;
            v = 1;
        with
            await 100ms;
            v = 2;
        end
        return v;
    )", Conflict::Kind::Variable, "v");
}

TEST(Dfa, UnknownDurationTimersMayCoincide) {
    expect_nondeterministic(R"(
        int dt = 5;
        int v;
        par/and do
            await (dt * 1000);
            v = 1;
        with
            await 100ms;
            v = 2;
        end
        return v;
    )", Conflict::Kind::Variable, "v");
}

// -- internal events (§2.6) -----------------------------------------------------

TEST(Dfa, ConcurrentEmitsOfTheSameEventAreRefused) {
    expect_nondeterministic(R"(
        input void A;
        internal void e;
        par do
           loop do await A; emit e; end
        with
           loop do await A; emit e; end
        with
           loop do await e; end
        end
    )", Conflict::Kind::InternalEvent, "e");
}

TEST(Dfa, EmitConcurrentWithAwaitArrivalIsRefused) {
    // One trail emits e while a concurrent trail *reaches* `await e` in the
    // same reaction: whether the awaiting trail catches the emission
    // depends on scheduling order.
    expect_nondeterministic(R"(
        input void A;
        internal void e;
        par do
           loop do await A; emit e; end
        with
           loop do await A; await e; end
        end
    )", Conflict::Kind::InternalEvent, "e");
}

TEST(Dfa, DataflowChainIsCausallyOrderedAndAccepted) {
    // §2.2's dependency chain: the emitter is stacked while dependents
    // react, so everything is ordered — no conflicts.
    expect_deterministic(R"(
        input int V1;
        int v1, v2, v3;
        internal void v1_evt, v2_evt, v3_evt;
        par do
           loop do
              await v1_evt;
              v2 = v1 + 1;
              emit v2_evt;
           end
        with
           loop do
              await v2_evt;
              v3 = v2 * 2;
              emit v3_evt;
           end
        with
           loop do
              v1 = await V1;
              emit v1_evt;
           end
        end
    )");
}

TEST(Dfa, TemperatureMutualDependencyIsAccepted) {
    expect_deterministic(R"(
        input int TC;
        int tc, tf;
        internal void tc_evt, tf_evt;
        par do
           loop do
              await tc_evt;
              tf = 9 * tc / 5 + 32;
              emit tf_evt;
           end
        with
           loop do
              await tf_evt;
              tc = 5 * (tf - 32) / 9;
              emit tc_evt;
           end
        with
           loop do
              tc = await TC;
              emit tc_evt;
           end
        end
    )");
}

// -- C calls (§2.6) ---------------------------------------------------------------

TEST(Dfa, ConcurrentCCallsAreRefusedByDefault) {
    expect_nondeterministic(R"(
        par/and do
           _led1On();
        with
           _led2On();
        end
    )", Conflict::Kind::CCall, "led1On");
}

TEST(Dfa, DeterministicAnnotationAllowsThePair) {
    expect_deterministic(R"(
        deterministic _led1On, _led2On;
        par/and do
           _led1On();
        with
           _led2On();
        end
    )");
}

TEST(Dfa, PureFunctionsMayRunWithAnything) {
    expect_deterministic(R"(
        pure _abs;
        par/and do
           _abs(1);
        with
           _led2On();
        end
    )");
    expect_nondeterministic(R"(
        pure _abs;
        par/and do
           _led1On();
        with
           _led2On();
        end
    )", Conflict::Kind::CCall, "led");
}

TEST(Dfa, SequentialCCallsNeedNoAnnotations) {
    expect_deterministic("_led1On(); _led2On();");
}

// -- GALS (§2.9) --------------------------------------------------------------------

TEST(Dfa, AsyncRaceIsLocallyDeterministic) {
    // The async may finish before or after the 1s timer, but the two
    // assignments can never share a reaction chain: accepted.
    expect_deterministic(R"(
        int ret;
        par/or do
            int r = async do
               return 1;
            end;
            ret = 1;
        with
            await 1s;
            ret = 2;
        end
        return ret;
    )");
}

// -- structure / bookkeeping -----------------------------------------------------------

TEST(Dfa, AsyncCompletionIsItsOwnTrigger) {
    // The async may finish at any point relative to other inputs; its
    // completion appears as a distinct trigger in the automaton.
    Dfa d = build(R"(
        int ret;
        par/or do
            ret = async do return 1; end;
        with
            await 1s;
            ret = 2;
        end
        return ret;
    )");
    bool has_async = false, has_time = false;
    for (const auto& s : d.states()) {
        for (const auto& t : s.out) {
            if (t.label.rfind("async#", 0) == 0) has_async = true;
            if (t.label.rfind("TIME", 0) == 0) has_time = true;
        }
    }
    EXPECT_TRUE(has_async);
    EXPECT_TRUE(has_time);
    EXPECT_TRUE(d.deterministic()) << d.report();
}

TEST(Dfa, UnknownDurationAloneDoesNotConflictWithDisjointVars) {
    expect_deterministic(R"(
        int dt = 7;
        int v, w;
        par/and do
            await (dt * 1000);
            v = 1;
        with
            await 100ms;
            w = 2;
        end
        return v + w;
    )");
}

TEST(Dfa, TerminalStateIsMarked) {
    Dfa d = build("input void A; await A; return 1;");
    bool has_terminal = false;
    for (const auto& s : d.states()) has_terminal = has_terminal || s.terminal;
    EXPECT_TRUE(has_terminal);
}

TEST(Dfa, StateCapMakesAnalysisIncomplete) {
    DfaOptions opt;
    opt.max_states = 1;
    Dfa d = build(R"(
        input void A;
        int v;
        par do
           loop do await A; await A; v = 1; end
        with
           loop do await A; await A; await A; v = 2; end
        end
    )", opt);
    EXPECT_FALSE(d.complete());
}

TEST(Dfa, ExecutedStatementsAppearInStateLabels) {
    Dfa d = build("input void A; int v; loop do await A; v = v + 1; end");
    bool found = false;
    for (const auto& s : d.states()) {
        for (const auto& line : s.executed) {
            if (line.find("v = ") != std::string::npos) found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Dfa, RingMonitoringPatternNeedsNoAnnotations) {
    // §3.1: two trails await Radio_receive concurrently, but only one of
    // them touches state; the other merely re-arms the watchdog.
    expect_deterministic(R"(
        input int Radio_receive;
        internal void retry;
        par do
           loop do
              int msg = await Radio_receive;
              await 1s;
           end
        with
           loop do
              par/or do
                 await 5s;
                 par do
                    loop do
                       emit retry;
                       await 10s;
                    end
                 with
                    loop do
                       await 500ms;
                    end
                 end
              with
                 await Radio_receive;
              end
           end
        end
    )");
}

TEST(Dfa, ParOrBothBranchesTerminatingSameReactionIsHandled) {
    // Two trails of one par/or complete on the same event; the rejoin runs
    // once and the continuation's write is ordered after both.
    expect_deterministic(R"(
        input void A;
        int v;
        loop do
           par/or do
              await A;
           with
              await A;
           end
           v = v + 1;
        end
    )");
}

// -- Escape conflicts (beyond the paper's three sources) ----------------------
//
// Concurrent exits of the same block are a fourth nondeterminism source the
// differential conformance harness surfaced (tests/corpus/): the escape that
// runs first kills its sibling's queued track, so the surviving value/effect
// depends on tie-break order.

TEST(Dfa, ValueParBothBranchesReturningOnSameTriggerIsRefused) {
    expect_nondeterministic(R"(
        input void A;
        int v;
        v =
           par do
              await A;
              return 1;
           with
              await A;
              return 2;
           end;
        return v;
    )", Conflict::Kind::Escape, "return");
}

TEST(Dfa, ValueParBranchesReturningOnDifferentTriggersIsAccepted) {
    expect_deterministic(R"(
        input void A, B;
        int v;
        v =
           par do
              await A;
              return 1;
           with
              await B;
              return 2;
           end;
        return v;
    )");
}

TEST(Dfa, ConcurrentProgramReturnsAreRefused) {
    expect_nondeterministic(R"(
        input void A;
        par do
           await A;
           return 1;
        with
           await A;
           return 2;
        end
    )", Conflict::Kind::Escape, "return");
}

TEST(Dfa, ConcurrentBreaksOfTheSameLoopAreRefused) {
    expect_nondeterministic(R"(
        input void A;
        int v;
        loop do
           par/and do
              await A;
              v = 1;
              break;
           with
              await A;
              v = 2;
              break;
           end
        end
        return v;
    )", Conflict::Kind::Escape, "break");
}

TEST(Dfa, BreakRacingAnEffectfulSiblingTrailIsRefused) {
    // The break kills the par; whether the sibling's increment lands first
    // depends on scheduling order.
    expect_nondeterministic(R"(
        input void A;
        int v;
        loop do
           par/or do
              await A;
              break;
           with
              await A;
              v = v + 1;
           end
        end
        return v;
    )", Conflict::Kind::Escape, "break");
}

}  // namespace
}  // namespace ceu
