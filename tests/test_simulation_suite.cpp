// In-language simulation suite — the testing style the paper describes in
// §2.8: each case is a self-contained Céu program whose async trail feeds
// the synchronous side its inputs and whose assertions run *inside the
// program* (`_assert`). A case passes when the program terminates with
// `return 1` and no assertion fires. This mirrors how the real Céu
// implementation was tested ("hundreds of programs and test cases").
#include <gtest/gtest.h>

#include "codegen/flatten.hpp"
#include "env/driver.hpp"

namespace ceu {
namespace {

struct SimCase {
    const char* name;
    const char* source;
};

const SimCase kCases[] = {
    {"await_then_terminate", R"(
        input int Go;
        par/or do
           int v = await Go;
           _assert(v == 7);
           return 1;
        with
           async do
              emit Go = 7;
           end
           _assert(0);
        end
    )"},

    {"sequencing_of_emitted_time", R"(
        input void Go;
        par/or do
           await Go;
           int n = 0;
           par/or do
              loop do
                 await 10ms;
                 n = n + 1;
              end
           with
              await 95ms;
              _assert(n == 9);
           end
           return 1;
        with
           async do
              emit Go;
              emit 95ms;
           end
           _assert(0);
        end
    )"},

    {"queued_events_arrive_in_order", R"(
        input int E;
        par/or do
           int a = await E;
           int b = await E;
           int c = await E;
           _assert(a == 1 && b == 2 && c == 3);
           return 1;
        with
           async do
              emit E = 1;
              emit E = 2;
              emit E = 3;
           end
           _assert(0);
        end
    )"},

    {"paror_kills_the_slower_timer", R"(
        input void Go;
        par/or do
           await Go;
           int winner = 0;
           par/or do
              await 50ms;
              await 49ms;
              winner = 1;
           with
              await 100ms;
              winner = 2;
           end
           _assert(winner == 1);
           return 1;
        with
           async do
              emit Go;
              emit 1s;
           end
           _assert(0);
        end
    )"},

    {"parand_requires_both", R"(
        input int A, B;
        par/or do
           int got_a = 0, got_b = 0;
           par/and do
              got_a = await A;
           with
              got_b = await B;
           end
           _assert(got_a == 10 && got_b == 20);
           return 1;
        with
           async do
              emit A = 10;
              emit B = 20;
           end
           _assert(0);
        end
    )"},

    {"internal_chain_within_one_reaction", R"(
        input void Go;
        internal void e1, e2;
        int depth = 0;
        par/or do
           loop do
              await e1;
              depth = depth + 1;
              emit e2;
           end
        with
           loop do
              await e2;
              depth = depth + 1;
           end
        with
           await Go;
           emit e1;
           _assert(depth == 2);
           return 1;
        with
           async do
              emit Go;
           end
           _assert(0);
        end
    )"},

    {"watchdog_restarts_computation", R"(
        input int Data;
        par/or do
           int tries = 0;
           int got = 0;
           loop do
              par/or do
                 got = await Data;
                 break;
              with
                 await 100ms;
                 tries = tries + 1;
              end
           end
           _assert(tries == 3 && got == 5);
           return 1;
        with
           async do
              emit 350ms;
              emit Data = 5;
           end
           _assert(0);
        end
    )"},

    {"loop_break_from_parallel_trail", R"(
        input void Tick, Stop;
        par/or do
           int ticks = 0;
           loop do
              par do
                 await Stop;
                 break;
              with
                 loop do
                    await Tick;
                    ticks = ticks + 1;
                 end
              end
           end
           _assert(ticks == 2);
           return 1;
        with
           async do
              emit Tick;
              emit Tick;
              emit Stop;
           end
           _assert(0);
        end
    )"},

    {"value_par_first_return_wins", R"(
        input void X;
        par/or do
           int v = par do
              await X;
              return 1;
           with
              await 10ms;
              return 2;
           end;
           _assert(v == 2);
           return 1;
        with
           async do
              emit 10ms;   // the timer beats the never-emitted X
           end
           _assert(0);
        end
    )"},

    {"residual_delta_cascade", R"(
        input void Go;
        par/or do
           await Go;
           int order = 0;
           par/and do
              await 10ms;
              await 1ms;   // expired by the time the 10ms is served late
              order = order * 10 + 1;
           with
              await 12ms;
              order = order * 10 + 2;
           end
           _assert(order == 12);
           return 1;
        with
           async do
              emit Go;
              emit 20ms;   // serve everything in one late batch
           end
           _assert(0);
        end
    )"},

    {"async_computation_with_result", R"(
        int sum = async do
           int acc = 0;
           int i = 1;
           loop do
              acc = acc + i;
              if i == 10 then break; else i = i + 1; end
           end
           return acc;
        end;
        _assert(sum == 55);
        return 1;
    )"},

    {"application_switch", R"(
        input int Switch;
        par/or do
           int cur = 1;
           int boots1 = 0, boots2 = 0;
           loop do
              par/or do
                 cur = await Switch;
              with
                 if cur == 1 then
                    boots1 = boots1 + 1;
                 else
                    boots2 = boots2 + 1;
                 end
                 if boots1 == 2 && boots2 == 1 then
                    return 1;
                 end
                 await forever;
              end
           end
        with
           async do
              emit Switch = 2;
              emit Switch = 1;
           end
           _assert(0);
        end
    )"},

    {"event_discarded_when_nobody_awaits", R"(
        input void A;
        input int Check;
        par/or do
           int woke = 0;
           par do
              await A;
              woke = woke + 1;
              await forever;
           with
              loop do
                 int expect = await Check;
                 _assert(woke == expect);
              end
           with
              await 1h;   // keep the program alive
           end
        with
           async do
              emit A;          // wakes the trail (woke = 1)
              emit A;          // nobody awaits: discarded
              emit Check = 1;  // woke must still be 1
           end
           return 1;
        end
    )"},

    {"dataflow_constraint_network", R"(
        input int SetV1;
        int v1, v2, v3;
        internal void v1_evt, v2_evt;
        par/or do
           loop do
              await v1_evt;
              v2 = v1 + 1;
              emit v2_evt;
           end
        with
           loop do
              await v2_evt;
              v3 = v2 * 2;
           end
        with
           loop do
              v1 = await SetV1;
              emit v1_evt;
              _assert(v2 == v1 + 1 && v3 == v2 * 2);
              if v1 == 15 then
                 return 1;
              end
           end
        with
           async do
              emit SetV1 = 10;
              emit SetV1 = 15;
           end
           _assert(0);
        end
    )"},

    {"outputs_in_simulation", R"(
        output int Done;
        input void Go;
        par/or do
           await Go;
           emit Done = 42;   // handled (or traced) by the environment
           return 1;
        with
           async do
              emit Go;
           end
           _assert(0);
        end
    )"},
};

class SimulationSuite : public ::testing::TestWithParam<size_t> {};

TEST_P(SimulationSuite, ProgramValidatesItself) {
    const SimCase& c = kCases[GetParam()];
    flat::CompiledProgram cp = flat::compile(c.source, c.name);
    env::Driver d(cp);
    // The program is entirely self-driving: boot, then let the async
    // environment-generator run to completion.
    ASSERT_NO_THROW(d.run({})) << c.name;
    EXPECT_EQ(d.engine().status(), rt::Engine::Status::Terminated) << c.name;
    EXPECT_EQ(d.engine().result().as_int(), 1) << c.name;
}

INSTANTIATE_TEST_SUITE_P(InLanguage, SimulationSuite,
                         ::testing::Range<size_t>(0, std::size(kCases)),
                         [](const auto& info) {
                             return std::string(kCases[info.param].name);
                         });

TEST(SimulationSuite, ReplayingACaseIsIdempotent) {
    // §2.8: "simulation can be repeated many times, yielding the exact same
    // behavior."
    for (int round = 0; round < 3; ++round) {
        flat::CompiledProgram cp = flat::compile(kCases[1].source);
        env::Driver d(cp);
        d.run({});
        EXPECT_EQ(d.engine().result().as_int(), 1);
    }
}

}  // namespace
}  // namespace ceu
