// Fleet supervision and checkpoint/restore (src/reactor/supervise.*,
// Engine::save/load, host::Instance::save/load/resume): the headline
// contract is that a restored instance is indistinguishable from one that
// never stopped — byte-identical subsequent traces, identical stats — and
// that every supervision decision (backoff, jitter, quarantine) is a pure
// function of (policy, seed, id, fault ordinal, fleet instant), so
// supervised fleets stay deterministic at any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aot/aot.hpp"
#include "codegen/flatten.hpp"
#include "host/instance.hpp"
#include "reactor/reactor.hpp"
#include "reactor/supervise.hpp"
#include "runtime/snapshot.hpp"
#include "testgen/generator.hpp"

namespace {

using namespace ceu;

std::shared_ptr<const flat::CompiledProgram> compile_shared(const char* src) {
    return std::make_shared<const flat::CompiledProgram>(flat::compile(src));
}

/// Accumulates injected values; ADD 0 divides by zero (a trapped dynamic
/// error under the fleet's default trap_faults) — the standard crash lever
/// for the supervision tests.
constexpr const char* kFragile = R"(
    input int ADD;
    input void STOP;
    int total = 0;
    int v = 0;
    par do
       loop do
          v = await ADD;
          total = total + 100 / v;
          _printf("total %d\n", total);
       end
    with
       await STOP;
       return total;
    end
)";

/// Timers + async in flight: the states a snapshot must carry.
constexpr const char* kBusy = R"(
    input void STOP;
    int n = 0;
    int r = 0;
    par do
       loop do
          await 10ms;
          n = n + 1;
          _printf("tick %d\n", n);
       end
    with
       r = async do
          int acc = 0;
          int i = 0;
          loop do
             i = i + 1;
             acc = acc + i;
             if i == 50 then break; end
          end
          return acc;
       end;
       _printf("sum %d\n", r);
    with
       await STOP;
       return n;
    end
)";

// -- supervise.hpp unit surface -----------------------------------------------

TEST(Backoff, DoublesPerFaultAndClampsAtMax) {
    reactor::SupervisorPolicy p;
    p.backoff_initial_ticks = 2;
    p.backoff_max_ticks = 16;
    const Micros tick = 1000;
    EXPECT_EQ(reactor::backoff_delay_us(p, 0, 7, 1, tick), 2000);
    EXPECT_EQ(reactor::backoff_delay_us(p, 0, 7, 2, tick), 4000);
    EXPECT_EQ(reactor::backoff_delay_us(p, 0, 7, 3, tick), 8000);
    EXPECT_EQ(reactor::backoff_delay_us(p, 0, 7, 4, tick), 16'000);
    EXPECT_EQ(reactor::backoff_delay_us(p, 0, 7, 5, tick), 16'000);  // clamped
    EXPECT_EQ(reactor::backoff_delay_us(p, 0, 7, 64, tick), 16'000);  // no wrap
}

TEST(Backoff, JitterIsBoundedAndSeedDeterministic) {
    reactor::SupervisorPolicy p;
    p.backoff_initial_ticks = 8;
    p.backoff_max_ticks = 8;
    p.backoff_jitter_permille = 250;
    const Micros base = 8 * 1024;
    for (reactor::InstanceId id = 0; id < 64; ++id) {
        Micros d = reactor::backoff_delay_us(p, 42, id, 1, 1024);
        EXPECT_GE(d, base - base / 4) << "instance " << id;
        EXPECT_LE(d, base + base / 4) << "instance " << id;
        // Pure function of (seed, id, ordinal): replays identically.
        EXPECT_EQ(d, reactor::backoff_delay_us(p, 42, id, 1, 1024));
    }
    // A different seed moves at least one member's delay (not a constant).
    bool moved = false;
    for (reactor::InstanceId id = 0; id < 64 && !moved; ++id) {
        moved = reactor::backoff_delay_us(p, 42, id, 1, 1024) !=
                reactor::backoff_delay_us(p, 43, id, 1, 1024);
    }
    EXPECT_TRUE(moved);
}

TEST(Backoff, NoteFaultTickPrunesTheRollingWindow) {
    reactor::MemberState m;
    reactor::SupervisorPolicy p;
    p.fault_window_ticks = 100;
    EXPECT_EQ(reactor::note_fault_tick(m, p, 10), 1u);
    EXPECT_EQ(reactor::note_fault_tick(m, p, 50), 2u);
    EXPECT_EQ(reactor::note_fault_tick(m, p, 120), 2u);  // 10 aged out, 50 inside
    EXPECT_EQ(reactor::note_fault_tick(m, p, 400), 1u);  // everything aged out
    EXPECT_EQ(m.faults, 4u);  // lifetime counter never prunes
}

// -- instance checkpoint / restore --------------------------------------------

/// Restores `blob` into an instance built from a *fresh compile* of `src`
/// — the fresh-process case: nothing shared with the saving instance but
/// the source text.
struct FreshProcess {
    flat::CompiledProgram cp;
    host::Instance inst;
    explicit FreshProcess(const char* src, host::Config cfg = host::Config())
        : cp(flat::compile(src)), inst(cp, cfg) {}
};

TEST(Checkpoint, RoundTripsIntoAFreshProcessByteIdentically) {
    host::Instance a((std::string(kFragile)));
    a.observe_stats();
    a.boot();
    a.inject("ADD", rt::Value::integer(4));   // total 25
    a.inject("ADD", rt::Value::integer(10));  // total 35
    std::vector<uint8_t> blob = a.save();

    FreshProcess b(kFragile);
    b.inst.observe_stats();
    b.inst.load(blob);

    // Same suffix of inputs -> byte-identical suffix of behavior.
    a.inject("ADD", rt::Value::integer(2));
    b.inst.inject("ADD", rt::Value::integer(2));
    a.inject("STOP");
    b.inst.inject("STOP");
    ASSERT_EQ(a.status(), rt::Engine::Status::Terminated);
    ASSERT_EQ(b.inst.status(), rt::Engine::Status::Terminated);
    EXPECT_EQ(a.result().as_int(), b.inst.result().as_int());
    EXPECT_EQ(a.result().as_int(), 85);

    // The restored trace is exactly the post-checkpoint lines.
    ASSERT_EQ(a.trace().size(), 3u);
    ASSERT_EQ(b.inst.trace().size(), 1u);
    EXPECT_EQ(b.inst.trace()[0], a.trace()[2]);

    // Recorder rollback: the restored run's counters match the
    // uninterrupted run's, as if the process never died.
    obs::ProcessStats sa = a.snapshot();
    obs::ProcessStats sb = b.inst.snapshot();
    sa.clear_measured();
    sb.clear_measured();
    EXPECT_EQ(sa.to_json(), sb.to_json());
}

TEST(Checkpoint, CarriesArmedTimersAndLiveAsyncs) {
    host::Instance a((std::string(kBusy)));
    a.boot();
    a.advance(25 * kMs);  // two ticks in; 5ms residual on the third
    a.step_async();       // async mid-computation
    a.step_async();
    std::vector<uint8_t> blob = a.save();

    FreshProcess b(kBusy);
    b.inst.load(blob);
    EXPECT_EQ(b.inst.clock(), a.clock());
    EXPECT_EQ(b.inst.engine().next_timer_deadline(),
              a.engine().next_timer_deadline());

    a.advance(20 * kMs);  // residual delta must match: ticks at 30,40ms
    b.inst.advance(20 * kMs);
    a.settle();
    b.inst.settle();
    a.inject("STOP");
    b.inst.inject("STOP");
    EXPECT_EQ(a.result().as_int(), b.inst.result().as_int());
    EXPECT_EQ(b.inst.trace(),
              std::vector<std::string>(a.trace().begin() + 2, a.trace().end()));
}

TEST(Checkpoint, RejectsBlobsFromAnotherProgram) {
    host::Instance a((std::string(kFragile)));
    a.boot();
    std::vector<uint8_t> blob = a.save();

    FreshProcess b(kBusy);
    b.inst.boot();
    b.inst.advance(10 * kMs);
    size_t traced = b.inst.trace().size();
    EXPECT_THROW(b.inst.load(blob), rt::snap::SnapshotError);
    // The failed load left the target untouched (parse-then-commit).
    EXPECT_EQ(b.inst.trace().size(), traced);
    EXPECT_EQ(b.inst.status(), rt::Engine::Status::Running);
    b.inst.advance(10 * kMs);
    EXPECT_EQ(b.inst.trace().size(), traced + 1);
}

TEST(Checkpoint, RejectsTruncatedAndCorruptedBlobs) {
    host::Instance a((std::string(kBusy)));
    a.boot();
    a.advance(15 * kMs);
    std::vector<uint8_t> blob = a.save();

    FreshProcess b(kBusy);
    for (size_t cut : {size_t{0}, size_t{4}, blob.size() / 2, blob.size() - 1}) {
        std::vector<uint8_t> trunc(blob.begin(),
                                   blob.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_THROW(b.inst.load(trunc), rt::snap::SnapshotError) << "cut " << cut;
    }
    std::vector<uint8_t> grown = blob;
    grown.push_back(0);  // trailing garbage is corruption, not slack
    EXPECT_THROW(b.inst.load(grown), rt::snap::SnapshotError);

    // A still-valid prefix with a flipped magic is rejected up front.
    std::vector<uint8_t> bad = blob;
    bad[0] ^= 0xff;
    EXPECT_THROW(b.inst.load(bad), rt::snap::SnapshotError);
}

// Conformance-harness round trips: for seeded generated programs, snapshot
// at every k-th script item, restore into a fresh process, replay the
// remaining suffix, and require the remaining trace byte-identical to the
// uninterrupted run's.
TEST(Checkpoint, SeededProgramsRestoreAtEveryBoundary) {
    constexpr uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13};
    constexpr size_t kEvery = 3;
    size_t boundaries = 0;
    for (uint64_t seed : kSeeds) {
        testgen::GenCase gc = testgen::generate(seed);
        const auto& items = gc.script.items();

        flat::CompiledProgram ref_cp = flat::compile(gc.source);
        host::Instance ref(ref_cp);
        ref.boot();
        for (const auto& it : items) ref.feed(it);
        ref.settle();

        for (size_t k = kEvery; k < items.size(); k += kEvery) {
            flat::CompiledProgram drv_cp = flat::compile(gc.source);
            host::Instance drv(drv_cp);
            drv.boot();
            for (size_t i = 0; i < k; ++i) drv.feed(items[i]);
            std::vector<uint8_t> blob = drv.save();

            FreshProcess rst(gc.source.c_str());
            rst.inst.load(blob);
            for (size_t i = k; i < items.size(); ++i) rst.inst.feed(items[i]);
            rst.inst.settle();

            ASSERT_LE(drv.trace().size(), ref.trace().size())
                << "seed " << seed << " k " << k;
            EXPECT_EQ(rst.inst.trace(),
                      std::vector<std::string>(
                          ref.trace().begin() +
                              static_cast<std::ptrdiff_t>(drv.trace().size()),
                          ref.trace().end()))
                << "seed " << seed << " k " << k;
            EXPECT_EQ(rst.inst.status(), ref.status()) << "seed " << seed;
            ++boundaries;
        }
    }
    EXPECT_GE(boundaries, 20u);  // the loop really exercised the matrix
}

// -- backpressure and retirement ----------------------------------------------

TEST(Backpressure, OverCapacityInjectsAreShedWithTickets) {
    reactor::ReactorConfig rc;
    rc.inbox_capacity = 2;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kFragile);
    reactor::InstanceId id = r.add_instance(cp);
    r.boot();

    auto a1 = r.inject(id, "ADD", rt::Value::integer(1));
    auto a2 = r.inject(id, "ADD", rt::Value::integer(1));
    auto s1 = r.inject(id, "ADD", rt::Value::integer(1));
    auto s2 = r.inject(id, "ADD", rt::Value::integer(1));
    EXPECT_TRUE(a1.accepted());
    EXPECT_TRUE(a2.accepted());
    EXPECT_EQ(s1.status, reactor::InjectResult::Status::Shed);
    EXPECT_EQ(s2.status, reactor::InjectResult::Status::Shed);
    // Shed occurrences still consumed their ticket: the accepted sequence
    // stays totally ordered with no reuse.
    EXPECT_LT(a1.ticket, a2.ticket);
    EXPECT_LT(a2.ticket, s1.ticket);
    EXPECT_LT(s1.ticket, s2.ticket);

    r.run_round();  // delivers the two accepted envelopes, freeing the inbox
    EXPECT_TRUE(r.inject(id, "ADD", rt::Value::integer(1)).accepted());
    r.inject(id, "STOP");
    r.drain();
    EXPECT_EQ(r.instance(id).result().as_int(), 300);  // exactly 3 ADDs landed

    obs::ProcessStats st = r.fleet_stats();
    EXPECT_EQ(st.sheds, 2u);
    EXPECT_EQ(st.faults, 0u);
}

TEST(Backpressure, RetiredMembersRejectAndDropQueuedInput) {
    reactor::ReactorConfig rc;
    rc.collect_traces = true;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kFragile);
    reactor::InstanceId a = r.add_instance(cp);
    reactor::InstanceId b = r.add_instance(cp);
    r.boot();

    EXPECT_TRUE(r.inject(a, "ADD", rt::Value::integer(1)).accepted());
    r.retire(a);  // the queued envelope is dropped at delivery time
    EXPECT_EQ(r.inject(a, "ADD", rt::Value::integer(1)).status,
              reactor::InjectResult::Status::Retired);
    EXPECT_TRUE(r.retired(a));
    EXPECT_TRUE(r.inject(b, "ADD", rt::Value::integer(2)).accepted());
    r.drain();

    EXPECT_EQ(r.instance(a).trace().size(), 0u);  // never saw the ADD
    r.inject(b, "STOP");
    r.drain();
    EXPECT_EQ(r.instance(b).result().as_int(), 50);
}

TEST(Backpressure, InjectRacesAddInstanceAndRetireSafely) {
    reactor::ReactorConfig rc;
    rc.workers = 2;
    rc.inbox_capacity = 64;
    rc.collect_traces = true;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kFragile);
    constexpr size_t kInitial = 8;
    for (size_t i = 0; i < kInitial; ++i) r.add_instance(cp);
    r.boot();

    // Producers hammer the initial members while the control thread grows
    // the table past several chunk-internal publications and retires some
    // members — the pointer-stable table makes this race well-defined.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> accepted{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
        producers.emplace_back([&, t] {
            uint64_t n = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                auto res = r.inject(
                    static_cast<reactor::InstanceId>((t + n) % kInitial),
                    EventId{0}, rt::Value::integer(1));
                if (res.accepted()) ++n;
            }
            accepted.fetch_add(n, std::memory_order_relaxed);
        });
    }
    for (int growth = 0; growth < 256; ++growth) {
        reactor::InstanceId id = r.add_instance(cp);
        if (growth % 16 == 0) r.retire(id);
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& p : producers) p.join();

    r.boot();
    r.drain();
    EXPECT_EQ(r.size(), kInitial + 256);
    uint64_t landed = 0;
    for (size_t i = 0; i < kInitial; ++i) {
        landed += static_cast<uint64_t>(
            r.instance(static_cast<reactor::InstanceId>(i)).trace().size());
    }
    EXPECT_EQ(landed, accepted.load());
}

// -- supervision policies -----------------------------------------------------

TEST(Supervision, ParkedMembersStayDownLikeBefore) {
    reactor::Reactor r;  // default policy: Park
    auto cp = compile_shared(kFragile);
    reactor::InstanceId id = r.add_instance(cp);
    r.boot();
    r.inject(id, "ADD", rt::Value::integer(0));
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);
    EXPECT_EQ(r.next_restart_due(), -1);
    r.advance(10 * kSec);
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);
    obs::ProcessStats st = r.fleet_stats();
    EXPECT_EQ(st.faults, 1u);
    EXPECT_EQ(st.supervised_restarts, 0u);
}

TEST(Supervision, RebootRestartsAfterTheBackoffFromScratch) {
    reactor::ReactorConfig rc;
    rc.supervise.restart = reactor::SupervisorPolicy::Restart::Reboot;
    rc.supervise.backoff_initial_ticks = 4;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kFragile);
    reactor::InstanceId id = r.add_instance(cp);
    r.boot();
    r.inject(id, "ADD", rt::Value::integer(5));  // total 20 (lost on reboot)
    r.inject(id, "ADD", rt::Value::integer(0));  // fault
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);

    Micros due = r.next_restart_due();
    ASSERT_GE(due, 0);
    EXPECT_EQ(due, r.now() + 4 * rc.timer_granularity);

    // The backoff has not expired: rounds at the current instant leave the
    // member down. drain() must not spin on the future restart.
    r.run_round();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);

    r.advance(due - r.now());
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Running);
    EXPECT_EQ(r.next_restart_due(), -1);

    r.inject(id, "ADD", rt::Value::integer(4));
    r.inject(id, "STOP");
    r.drain();
    EXPECT_EQ(r.instance(id).result().as_int(), 25);  // rebooted: total reset

    const reactor::MemberState& m = r.supervision(id);
    EXPECT_EQ(m.faults, 1u);
    EXPECT_EQ(m.supervised_restarts, 1u);
    EXPECT_EQ(m.restores, 0u);
    obs::ProcessStats st = r.fleet_stats();
    EXPECT_EQ(st.faults, 1u);
    EXPECT_EQ(st.supervised_restarts, 1u);
    EXPECT_EQ(st.restores, 0u);
}

TEST(Supervision, RestoreResumesFromTheLatestCheckpoint) {
    reactor::ReactorConfig rc;
    rc.supervise.restart = reactor::SupervisorPolicy::Restart::Restore;
    rc.supervise.backoff_initial_ticks = 1;
    rc.supervise.checkpoint_every = 1;  // snapshot at every reaction boundary
    reactor::Reactor r(rc);
    auto cp = compile_shared(kFragile);
    reactor::InstanceId id = r.add_instance(cp);
    r.boot();
    r.inject(id, "ADD", rt::Value::integer(5));  // total 20, checkpointed
    r.drain();
    r.inject(id, "ADD", rt::Value::integer(0));  // fault
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);

    r.advance(r.next_restart_due() - r.now());
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Running);

    r.inject(id, "ADD", rt::Value::integer(4));  // 20 survived: 20+25
    r.inject(id, "STOP");
    r.drain();
    EXPECT_EQ(r.instance(id).result().as_int(), 45);

    const reactor::MemberState& m = r.supervision(id);
    EXPECT_EQ(m.restores, 1u);
    EXPECT_EQ(m.supervised_restarts, 1u);
    EXPECT_GE(m.checkpoints, 1u);
    obs::ProcessStats st = r.fleet_stats();
    EXPECT_EQ(st.restores, 1u);
    EXPECT_GE(st.checkpoints, 1u);
}

TEST(Supervision, RestoreFallsBackToRebootBeforeAnyCheckpoint) {
    reactor::ReactorConfig rc;
    rc.supervise.restart = reactor::SupervisorPolicy::Restart::Restore;
    rc.supervise.backoff_initial_ticks = 1;
    rc.supervise.checkpoint_every = 0;  // never snapshots: nothing to restore
    reactor::Reactor r(rc);
    auto cp = compile_shared(kFragile);
    reactor::InstanceId id = r.add_instance(cp);
    r.boot();
    r.inject(id, "ADD", rt::Value::integer(5));
    r.inject(id, "ADD", rt::Value::integer(0));
    r.drain();
    r.advance(r.next_restart_due() - r.now());
    r.inject(id, "ADD", rt::Value::integer(4));
    r.inject(id, "STOP");
    r.drain();
    EXPECT_EQ(r.instance(id).result().as_int(), 25);  // fresh boot, state lost
    EXPECT_EQ(r.supervision(id).restores, 0u);
    EXPECT_EQ(r.supervision(id).supervised_restarts, 1u);
}

/// Faults deterministically on ADD 0: kFragile's division by zero is a
/// trapped interpreter error but UB in compiled C, so the compiled-member
/// supervision matrix trips the dedicated fault lever instead.
constexpr const char* kTripping = R"(
    input int ADD;
    input void STOP;
    int total = 0;
    int v = 0;
    par do
       loop do
          v = await ADD;
          if v == 0 then
             _ceu_trip();
          end;
          total = total + v;
          _printf("total %d\n", total);
       end
    with
       await STOP;
       return total;
    end
)";

aot::ProgramHandle build_aot(const std::shared_ptr<const flat::CompiledProgram>& cp) {
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    EXPECT_TRUE(h) << err;
    return h;
}

TEST(Supervision, RebootRestartsACompiledMemberFromScratch) {
    if (!aot::toolchain_available()) GTEST_SKIP() << "no host C compiler";
    reactor::ReactorConfig rc;
    rc.supervise.restart = reactor::SupervisorPolicy::Restart::Reboot;
    rc.supervise.backoff_initial_ticks = 4;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kTripping);
    host::Config hc;
    hc.aot = build_aot(cp);
    reactor::InstanceId id = r.add_instance(cp, hc);
    r.boot();
    r.inject(id, "ADD", rt::Value::integer(5));  // total 5 (lost on reboot)
    r.inject(id, "ADD", rt::Value::integer(0));  // trip -> Faulted
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);

    Micros due = r.next_restart_due();
    ASSERT_GE(due, 0);
    // The backoff has not expired: the compiled member stays down, exactly
    // like an interpreted one.
    r.run_round();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);

    r.advance(due - r.now());
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Running);

    r.inject(id, "ADD", rt::Value::integer(4));
    r.inject(id, "STOP");
    r.drain();
    EXPECT_EQ(r.instance(id).result().as_int(), 4);  // fresh boot: total reset

    const reactor::MemberState& m = r.supervision(id);
    EXPECT_EQ(m.faults, 1u);
    EXPECT_EQ(m.supervised_restarts, 1u);
    EXPECT_EQ(m.restores, 0u);
}

TEST(Supervision, RestoreResumesACompiledMemberFromItsCheckpoint) {
    if (!aot::toolchain_available()) GTEST_SKIP() << "no host C compiler";
    // Compiled contexts snapshot as CEUAOT01 blobs (same-process images):
    // the Restore policy round-trips them just like interpreter snapshots,
    // so the member resumes with its accumulated state.
    reactor::ReactorConfig rc;
    rc.supervise.restart = reactor::SupervisorPolicy::Restart::Restore;
    rc.supervise.backoff_initial_ticks = 1;
    rc.supervise.checkpoint_every = 1;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kTripping);
    host::Config hc;
    hc.aot = build_aot(cp);
    reactor::InstanceId id = r.add_instance(cp, hc);
    r.boot();
    r.inject(id, "ADD", rt::Value::integer(5));  // total 5, checkpointed
    r.drain();
    r.inject(id, "ADD", rt::Value::integer(0));  // trip -> Faulted
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);

    r.advance(r.next_restart_due() - r.now());
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Running);

    r.inject(id, "ADD", rt::Value::integer(4));  // 5 survived: 5+4
    r.inject(id, "STOP");
    r.drain();
    EXPECT_EQ(r.instance(id).result().as_int(), 9);

    const reactor::MemberState& m = r.supervision(id);
    EXPECT_EQ(m.restores, 1u);
    EXPECT_EQ(m.supervised_restarts, 1u);
    EXPECT_GE(m.checkpoints, 1u);
}

TEST(Supervision, QuarantinesAfterRepeatedFaultsInTheWindow) {
    reactor::ReactorConfig rc;
    rc.supervise.restart = reactor::SupervisorPolicy::Restart::Reboot;
    rc.supervise.backoff_initial_ticks = 1;
    rc.supervise.quarantine_after = 2;
    rc.supervise.fault_window_ticks = 1'000'000;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kFragile);
    reactor::InstanceId id = r.add_instance(cp);
    r.boot();

    r.inject(id, "ADD", rt::Value::integer(0));  // fault 1: restarts
    r.drain();
    r.advance(r.next_restart_due() - r.now());
    ASSERT_EQ(r.instance(id).status(), rt::Engine::Status::Running);

    r.inject(id, "ADD", rt::Value::integer(0));  // fault 2: quarantined
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);
    EXPECT_EQ(r.next_restart_due(), -1);  // no further restart scheduled
    r.advance(10 * kSec);
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Faulted);

    const reactor::MemberState& m = r.supervision(id);
    EXPECT_TRUE(m.quarantined);
    EXPECT_EQ(m.faults, 2u);
    EXPECT_EQ(m.supervised_restarts, 1u);
    obs::ProcessStats st = r.fleet_stats();
    EXPECT_EQ(st.quarantines, 1u);
    EXPECT_EQ(st.faults, 2u);
    EXPECT_EQ(st.supervised_restarts, 1u);
}

// -- supervised-fleet determinism across worker counts ------------------------

struct SupervisedRun {
    std::vector<std::string> traces;
    std::string stats_json;
};

SupervisedRun run_supervised_fleet(size_t workers) {
    reactor::ReactorConfig rc;
    rc.workers = workers;
    rc.seed = 99;
    rc.collect_traces = true;
    rc.inbox_capacity = 8;
    rc.supervise.restart = reactor::SupervisorPolicy::Restart::Restore;
    rc.supervise.backoff_initial_ticks = 2;
    rc.supervise.backoff_jitter_permille = 250;
    rc.supervise.checkpoint_every = 2;
    rc.supervise.quarantine_after = 3;
    rc.supervise.fault_window_ticks = 64;
    reactor::Reactor r(rc);

    auto cp = compile_shared(kFragile);
    constexpr size_t kFleet = 24;
    for (size_t i = 0; i < kFleet; ++i) r.add_instance(cp);
    r.boot();

    for (int wave = 0; wave < 4; ++wave) {
        for (size_t i = 0; i < kFleet; ++i) {
            // Every third member faults on waves 1 and 3; member 0 faults
            // every wave and ends up quarantined.
            int64_t v = (i % 3 == 0 && wave % 2 == 1) || i == 0
                            ? 0
                            : static_cast<int64_t>(i + wave + 1);
            r.inject(static_cast<reactor::InstanceId>(i), "ADD",
                     rt::Value::integer(v));
        }
        r.drain();
        // Let every pending backoff expire — the restart instants are a
        // pure function of (seed, id, ordinal), so this advance sequence
        // is identical for every worker count.
        for (Micros due = r.next_restart_due(); due >= 0;
             due = r.next_restart_due()) {
            r.advance(due - r.now());
            r.drain();
        }
    }
    for (size_t i = 0; i < kFleet; ++i) {
        r.inject(static_cast<reactor::InstanceId>(i), "STOP");
    }
    r.drain();

    SupervisedRun out;
    out.traces.reserve(kFleet);
    for (size_t i = 0; i < kFleet; ++i) {
        out.traces.push_back(
            r.instance(static_cast<reactor::InstanceId>(i)).trace_text());
    }
    obs::ProcessStats st = r.fleet_stats();
    st.clear_measured();
    out.stats_json = st.to_json();
    return out;
}

TEST(Supervision, SupervisedFleetIsIdenticalAt1_2_8Workers) {
    SupervisedRun w1 = run_supervised_fleet(1);
    SupervisedRun w2 = run_supervised_fleet(2);
    SupervisedRun w8 = run_supervised_fleet(8);
    ASSERT_EQ(w1.traces.size(), w2.traces.size());
    ASSERT_EQ(w1.traces.size(), w8.traces.size());
    for (size_t i = 0; i < w1.traces.size(); ++i) {
        EXPECT_EQ(w1.traces[i], w2.traces[i]) << "instance " << i << " (2 workers)";
        EXPECT_EQ(w1.traces[i], w8.traces[i]) << "instance " << i << " (8 workers)";
    }
    EXPECT_EQ(w1.stats_json, w2.stats_json);
    EXPECT_EQ(w1.stats_json, w8.stats_json);
    // The run really exercised supervision: restarts and a quarantine are
    // visible in the merged stats (stable sorted JSON keys).
    EXPECT_NE(w1.stats_json.find("\"supervised_restarts\""), std::string::npos);
    EXPECT_NE(w1.stats_json.find("\"quarantines\":1"), std::string::npos);
    EXPECT_NE(w1.traces[0].find("[supervisor]"), std::string::npos);
}

}  // namespace
