// The sharded multi-instance reactor (src/reactor/): determinism across
// worker counts is the headline contract — per-instance traces must be
// byte-identical and the aggregated fleet stats identical whether the
// fleet runs inline (1 worker) or sharded over a pool (2, 8 workers).
// Also covers the fleet timer wheel, the lock-free mailbox under
// concurrent producers, fault containment, and the shared-program paths
// (host::Instance fleet ctor, CeuMoteConfig::program).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aot/aot.hpp"
#include "codegen/flatten.hpp"
#include "reactor/fleet_wheel.hpp"
#include "reactor/mailbox.hpp"
#include "reactor/reactor.hpp"
#include "reactor/steal.hpp"
#include "wsn/network.hpp"
#include "wsn/tinyos_binding.hpp"

namespace {

using namespace ceu;

std::shared_ptr<const flat::CompiledProgram> compile_shared(const char* src) {
    return std::make_shared<const flat::CompiledProgram>(flat::compile(src));
}

/// Accumulates injected values, tracing each delivery.
constexpr const char* kCounter = R"(
    input int ADD;
    input void STOP;
    int total = 0;
    int v = 0;
    par do
       loop do
          v = await ADD;
          total = total + v;
          _printf("add %d total %d\n", v, total);
       end
    with
       await STOP;
       return total;
    end
)";

/// Ticks every 10ms, tracing the count.
constexpr const char* kTicker = R"(
    input void STOP;
    int n = 0;
    par do
       loop do
          await 10ms;
          n = n + 1;
          _printf("tick %d\n", n);
       end
    with
       await STOP;
       return n;
    end
)";

/// Pure async computation: sums 1..100 in the background.
constexpr const char* kAsyncSum = R"(
    int r = 0;
    r = async do
       int acc = 0;
       int i = 0;
       loop do
          i = i + 1;
          acc = acc + i;
          if i == 100 then break; end
       end
       return acc;
    end;
    _printf("sum %d\n", r);
    return r;
)";

// -- FleetTimerWheel ----------------------------------------------------------

TEST(FleetWheel, CollectsDueSortedByDeadlineThenInstance) {
    reactor::FleetTimerWheel w(1024);
    w.schedule(3, 5000);
    w.schedule(1, 5000);
    w.schedule(2, 200);
    w.schedule(9, 70'000'000);  // lands in a coarser level
    EXPECT_EQ(w.size(), 4u);
    EXPECT_EQ(w.next_deadline(), 200);

    std::vector<reactor::FleetTimerWheel::Due> due;
    EXPECT_EQ(w.collect_due(100, due), 0u);  // before the minimum: O(1) no-op
    EXPECT_EQ(w.collect_due(5000, due), 3u);
    ASSERT_EQ(due.size(), 3u);
    EXPECT_EQ(due[0].instance, 2u);
    EXPECT_EQ(due[1].instance, 1u);  // equal deadlines tie-break by instance
    EXPECT_EQ(due[2].instance, 3u);
    EXPECT_EQ(w.size(), 1u);
    EXPECT_EQ(w.next_deadline(), 70'000'000);

    due.clear();
    EXPECT_EQ(w.collect_due(70'000'000, due), 1u);
    EXPECT_EQ(due[0].instance, 9u);
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.next_deadline(), -1);
}

TEST(FleetWheel, SurvivesManyInstancesAndLargeJumps) {
    reactor::FleetTimerWheel w(1024);
    for (uint32_t i = 0; i < 10'000; ++i) {
        w.schedule(i, static_cast<Micros>(1 + (i % 97) * 1000));
    }
    std::vector<reactor::FleetTimerWheel::Due> due;
    w.collect_due(1'000'000'000, due);  // one giant jump collects everything
    EXPECT_EQ(due.size(), 10'000u);
    EXPECT_TRUE(w.empty());
    for (size_t i = 1; i < due.size(); ++i) {
        bool ordered = due[i - 1].deadline < due[i].deadline ||
                       (due[i - 1].deadline == due[i].deadline &&
                        due[i - 1].instance < due[i].instance);
        ASSERT_TRUE(ordered) << "unsorted at " << i;
    }
}

TEST(FleetWheel, RebasesEpochSoLateDeadlinesStaySpread) {
    // A long-running fleet: the clock walks far past the 64^2-tick rebase
    // window many times over, scheduling as it goes. Expiry must stay
    // exact — every deadline collected at its own instant, never early,
    // never lost — across rebases.
    reactor::FleetTimerWheel w(1024);
    constexpr Micros kStep = 10 * kMs;
    Micros now = 0;
    std::vector<reactor::FleetTimerWheel::Due> due;
    for (uint32_t round = 0; round < 2'000; ++round) {
        // Two fresh deadlines per round: one due next step, one far out.
        w.schedule(round, now + kStep);
        w.schedule(100'000 + round, now + 100 * kStep);
        now += kStep;
        due.clear();
        w.collect_due(now, due);
        for (const auto& d : due) ASSERT_LE(d.deadline, now);
        ASSERT_TRUE(w.next_deadline() < 0 || w.next_deadline() > now);
    }
    // Drain the tail: exactly the far-out stragglers remain, none dropped.
    due.clear();
    w.collect_due(now + 200 * kStep, due);
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(due.size(), 99u);  // the last 99 far-out deadlines, still pending
}

// -- Mailbox ------------------------------------------------------------------

TEST(Mailbox, DrainRestoresTicketOrder) {
    reactor::Mailbox mb;
    for (uint64_t t = 0; t < 5; ++t) {
        auto* e = new reactor::Envelope;
        e->ticket = t;
        mb.push(e);
    }
    std::vector<reactor::Envelope*> out;
    EXPECT_EQ(mb.drain_into(out), 5u);
    EXPECT_TRUE(mb.empty());
    for (uint64_t t = 0; t < 5; ++t) EXPECT_EQ(out[t]->ticket, t);
    for (auto* e : out) delete e;
}

TEST(Mailbox, ConcurrentProducersLoseNothing) {
    reactor::Mailbox mb;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    std::atomic<uint64_t> ticket{0};
    std::vector<std::thread> producers;
    producers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&mb, &ticket, t] {
            for (int i = 0; i < kPerThread; ++i) {
                auto* e = new reactor::Envelope;
                e->instance = static_cast<reactor::InstanceId>(t);
                e->ticket = ticket.fetch_add(1);
                mb.push(e);
            }
        });
    }
    for (auto& p : producers) p.join();
    std::vector<reactor::Envelope*> out;
    EXPECT_EQ(mb.drain_into(out), static_cast<size_t>(kThreads * kPerThread));
    for (size_t i = 1; i < out.size(); ++i) {
        ASSERT_LT(out[i - 1]->ticket, out[i]->ticket);
    }
    for (auto* e : out) delete e;
}

// -- Reactor basics -----------------------------------------------------------

TEST(Reactor, SingleInstanceRunsToTermination) {
    reactor::ReactorConfig rc;
    rc.collect_traces = true;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kCounter);
    reactor::InstanceId id = r.add_instance(cp);
    r.boot();
    EXPECT_TRUE(r.inject(id, "ADD", rt::Value::integer(4)).accepted());
    EXPECT_TRUE(r.inject(id, "ADD", rt::Value::integer(2)).accepted());
    EXPECT_EQ(r.inject(id, "NOT_AN_INPUT").status,
              reactor::InjectResult::Status::UnknownEvent);
    r.run_round();
    EXPECT_TRUE(r.inject(id, "STOP").accepted());
    r.run_round();
    r.drain();
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Terminated);
    EXPECT_EQ(r.instance(id).result().as_int(), 6);
    EXPECT_EQ(r.instance(id).trace(),
              (std::vector<std::string>{"add 4 total 4", "add 2 total 6"}));
}

TEST(Reactor, TimersFireAtFleetInstants) {
    reactor::Reactor r;
    auto cp = compile_shared(kTicker);
    reactor::InstanceId a = r.add_instance(cp);
    reactor::InstanceId b = r.add_instance(cp);
    r.boot();
    for (int i = 0; i < 5; ++i) r.advance(10 * kMs);
    r.inject(a, "STOP");
    r.run_round();
    EXPECT_EQ(r.instance(a).result().as_int(), 5);
    r.advance(20 * kMs);  // b keeps ticking after a terminated
    r.inject(b, "STOP");
    r.run_round();
    EXPECT_EQ(r.instance(b).result().as_int(), 7);
}

TEST(Reactor, AsyncWorkSettlesAcrossRounds) {
    reactor::Reactor r;
    auto cp = compile_shared(kAsyncSum);
    reactor::InstanceId id = r.add_instance(cp);
    r.boot();
    size_t rounds = r.drain();
    EXPECT_GT(rounds, 0u);
    EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Terminated);
    EXPECT_EQ(r.instance(id).result().as_int(), 5050);
}

TEST(Reactor, LateJoinersBootAtTheFleetInstant) {
    reactor::Reactor r;
    auto cp = compile_shared(kTicker);
    reactor::InstanceId a = r.add_instance(cp);
    r.boot();
    r.advance(30 * kMs);
    reactor::InstanceId b = r.add_instance(cp);
    r.boot();  // only b boots; its 10ms periods are relative to now
    r.advance(10 * kMs);
    r.inject(a, "STOP");
    r.inject(b, "STOP");
    r.run_round();
    EXPECT_EQ(r.instance(a).result().as_int(), 4);
    EXPECT_EQ(r.instance(b).result().as_int(), 1);
}

TEST(Reactor, FaultedMemberDoesNotStopTheFleet) {
    reactor::Reactor r;
    auto bad = compile_shared(R"(
        input void GO;
        await GO;
        _no_such_function();
    )");
    auto good = compile_shared(kCounter);
    reactor::InstanceId f = r.add_instance(bad);
    reactor::InstanceId g = r.add_instance(good);
    r.boot();
    r.inject(f, "GO");
    r.inject(g, "ADD", rt::Value::integer(1));
    r.run_round();
    // Default fleet policy traps the dynamic error: the member parks
    // Faulted, the shard (and the rest of the fleet) carries on.
    EXPECT_EQ(r.instance(f).status(), rt::Engine::Status::Faulted);
    EXPECT_TRUE(r.error(f).empty());
    r.inject(g, "STOP");
    r.run_round();
    EXPECT_EQ(r.instance(g).result().as_int(), 1);
}

TEST(Reactor, SharedProgramIsCoOwnedNotCopied) {
    auto cp = compile_shared(kCounter);
    reactor::Reactor r;
    for (int i = 0; i < 50; ++i) r.add_instance(cp);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(&r.instance(static_cast<reactor::InstanceId>(i)).program(),
                  cp.get());
    }
}

// -- determinism across worker counts ----------------------------------------

struct FleetRun {
    std::vector<std::string> traces;
    std::string stats_json;
};

/// When `img` is non-null every odd member runs the AOT-compiled backend
/// (program i%3 from the image) interleaved with interpreted members of
/// the same three programs — the schedule below cannot tell them apart.
FleetRun run_mixed_fleet(size_t workers,
                         std::shared_ptr<const aot::FleetImage> img = nullptr) {
    reactor::ReactorConfig rc;
    rc.workers = workers;
    rc.seed = 42;
    rc.collect_traces = true;
    reactor::Reactor r(rc);

    auto counter = compile_shared(kCounter);
    auto ticker = compile_shared(kTicker);
    auto asum = compile_shared(kAsyncSum);
    constexpr size_t kFleet = 60;
    for (size_t i = 0; i < kFleet; ++i) {
        host::Config hc;
        if (img && i % 2 == 1) hc.aot = img->program(i % 3);
        auto cp = i % 3 == 0 ? counter : (i % 3 == 1 ? ticker : asum);
        r.add_instance(cp, hc);
    }
    r.boot();
    r.drain();

    for (int step = 0; step < 6; ++step) {
        for (size_t i = 0; i < kFleet; i += 3) {
            r.inject(static_cast<reactor::InstanceId>(i), "ADD",
                     rt::Value::integer(static_cast<int64_t>(step * 100 + i)));
        }
        r.advance(10 * kMs);
        r.drain();
    }
    for (size_t i = 0; i < kFleet; ++i) {
        r.inject(static_cast<reactor::InstanceId>(i), "STOP");
    }
    r.run_round();
    r.drain();

    FleetRun out;
    out.traces.reserve(kFleet);
    for (size_t i = 0; i < kFleet; ++i) {
        out.traces.push_back(r.instance(static_cast<reactor::InstanceId>(i)).trace_text());
    }
    obs::ProcessStats st = r.fleet_stats();
    st.clear_measured();  // wall-clock fields are the only nondeterminism
    out.stats_json = st.to_json();
    return out;
}

TEST(Reactor, TracesAndStatsAreIdenticalAt1_2_8Workers) {
    FleetRun w1 = run_mixed_fleet(1);
    FleetRun w2 = run_mixed_fleet(2);
    FleetRun w8 = run_mixed_fleet(8);
    ASSERT_EQ(w1.traces.size(), w2.traces.size());
    ASSERT_EQ(w1.traces.size(), w8.traces.size());
    for (size_t i = 0; i < w1.traces.size(); ++i) {
        EXPECT_EQ(w1.traces[i], w2.traces[i]) << "instance " << i << " (2 workers)";
        EXPECT_EQ(w1.traces[i], w8.traces[i]) << "instance " << i << " (8 workers)";
    }
    EXPECT_EQ(w1.stats_json, w2.stats_json);
    EXPECT_EQ(w1.stats_json, w8.stats_json);
    EXPECT_FALSE(w1.traces[0].empty());
}

std::shared_ptr<const aot::FleetImage> build_fleet_image() {
    std::vector<std::shared_ptr<const flat::CompiledProgram>> programs = {
        compile_shared(kCounter), compile_shared(kTicker), compile_shared(kAsyncSum)};
    std::string err;
    auto img = aot::FleetImage::build(programs, {}, &err);
    EXPECT_NE(img, nullptr) << err;
    return img;
}

TEST(Reactor, CompiledMembersAreTraceIdenticalToInterpretedOnes) {
    if (!aot::toolchain_available()) GTEST_SKIP() << "no host C compiler";
    // The strongest cross-backend claim: a fleet with every odd member
    // AOT-compiled produces, member for member, the same trace bytes and
    // results as the all-interpreted fleet under the same schedule.
    FleetRun interp = run_mixed_fleet(1);
    FleetRun mixed = run_mixed_fleet(1, build_fleet_image());
    ASSERT_EQ(interp.traces.size(), mixed.traces.size());
    for (size_t i = 0; i < interp.traces.size(); ++i) {
        EXPECT_EQ(interp.traces[i], mixed.traces[i]) << "instance " << i;
    }
}

TEST(Reactor, MixedBackendFleetIsIdenticalAt1_2_8Workers) {
    if (!aot::toolchain_available()) GTEST_SKIP() << "no host C compiler";
    std::shared_ptr<const aot::FleetImage> img = build_fleet_image();
    FleetRun w1 = run_mixed_fleet(1, img);
    FleetRun w2 = run_mixed_fleet(2, img);
    FleetRun w8 = run_mixed_fleet(8, img);
    ASSERT_EQ(w1.traces.size(), w2.traces.size());
    ASSERT_EQ(w1.traces.size(), w8.traces.size());
    for (size_t i = 0; i < w1.traces.size(); ++i) {
        EXPECT_EQ(w1.traces[i], w2.traces[i]) << "instance " << i << " (2 workers)";
        EXPECT_EQ(w1.traces[i], w8.traces[i]) << "instance " << i << " (8 workers)";
    }
    EXPECT_EQ(w1.stats_json, w2.stats_json);
    EXPECT_EQ(w1.stats_json, w8.stats_json);
    EXPECT_FALSE(w1.traces[1].empty());
}

TEST(Reactor, ConcurrentInjectAndRetireRaceCompiledMembersSafely) {
    if (!aot::toolchain_available()) GTEST_SKIP() << "no host C compiler";
    // The TSan gate for the compiled path: producer threads hammer inject
    // while the control thread runs rounds and retires a member mid-storm.
    auto cp = compile_shared(kCounter);
    std::string err;
    aot::ProgramHandle h = aot::FleetImage::build_one(cp, {}, &err);
    ASSERT_TRUE(h) << err;

    reactor::ReactorConfig rc;
    rc.workers = 2;
    reactor::Reactor r(rc);
    constexpr size_t kFleet = 8;
    host::Config hc;
    hc.aot = h;
    for (size_t i = 0; i < kFleet; ++i) r.add_instance(cp, hc);
    r.boot();

    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::thread> producers;
    producers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&r, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // Member 7 is retired mid-storm; its inject results are
                // allowed to be Retired, never a torn delivery.
                r.inject(static_cast<reactor::InstanceId>((t * 31 + i) % kFleet),
                         EventId{0} /* ADD */, rt::Value::integer(1));
            }
        });
    }
    for (int round = 0; round < 50; ++round) r.run_round();
    r.retire(static_cast<reactor::InstanceId>(7));
    for (auto& p : producers) p.join();
    r.drain();
    for (size_t i = 0; i + 1 < kFleet; ++i) {
        r.inject(static_cast<reactor::InstanceId>(i), "STOP");
    }
    r.run_round();

    // Every delivered ADD summed exactly once across surviving members.
    int64_t total = 0;
    for (size_t i = 0; i + 1 < kFleet; ++i) {
        total += r.instance(static_cast<reactor::InstanceId>(i)).result().as_int();
    }
    EXPECT_GT(total, 0);
    EXPECT_LE(total, kThreads * kPerThread);
}

TEST(Reactor, RunsAreReproducibleForAFixedSeed) {
    FleetRun a = run_mixed_fleet(2);
    FleetRun b = run_mixed_fleet(2);
    EXPECT_EQ(a.traces, b.traces);
    EXPECT_EQ(a.stats_json, b.stats_json);
}

TEST(Reactor, ConcurrentInjectorsDeliverEverything) {
    reactor::ReactorConfig rc;
    rc.workers = 2;
    reactor::Reactor r(rc);
    auto cp = compile_shared(kCounter);
    constexpr size_t kFleet = 8;
    for (size_t i = 0; i < kFleet; ++i) r.add_instance(cp);
    r.boot();

    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::thread> producers;
    producers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&r, t] {
            for (int i = 0; i < kPerThread; ++i) {
                r.inject(static_cast<reactor::InstanceId>((t * 31 + i) % kFleet),
                         EventId{0} /* ADD */, rt::Value::integer(1));
            }
        });
    }
    for (auto& p : producers) p.join();
    r.drain();
    for (size_t i = 0; i < kFleet; ++i) {
        r.inject(static_cast<reactor::InstanceId>(i), "STOP");
    }
    r.run_round();

    int64_t total = 0;
    for (size_t i = 0; i < kFleet; ++i) {
        total += r.instance(static_cast<reactor::InstanceId>(i)).result().as_int();
    }
    EXPECT_EQ(total, kThreads * kPerThread);
}

// -- the WSN fleet path -------------------------------------------------------

TEST(Reactor, CeuMoteFleetsShareOneCompiledProgram) {
    auto firmware = compile_shared(R"(
        int n = 0;
        loop do
           await 100ms;
           n = n + 1;
           _Leds_set(n);
        end
    )");
    wsn::RadioModel radio;
    wsn::Network net(radio);
    std::vector<wsn::CeuMote*> motes;
    for (int i = 0; i < 4; ++i) {
        wsn::CeuMoteConfig cfg;
        cfg.program = firmware;  // no per-mote compile
        motes.push_back(static_cast<wsn::CeuMote*>(
            &net.add(std::make_unique<wsn::CeuMote>(i, cfg))));
    }
    net.start();
    net.run_until(550 * kMs);
    for (wsn::CeuMote* m : motes) {
        EXPECT_EQ(&m->instance().program(), firmware.get());
        EXPECT_EQ(m->leds(), 5);
    }
}

// -- work stealing ------------------------------------------------------------

TEST(StealDeque, ConcurrentTakeAndStealClaimEachItemExactlyOnce) {
    // The round protocol under real contention: the owner publishes a
    // batch and pops from the bottom while three thieves hammer the top.
    // Every published index must be claimed by exactly one thread. Batch
    // sizes vary to force ring growth mid-life (the retired-ring path),
    // and thieves keep probing across publishes so a stale ring pointer is
    // actually exercised. Runs under the reactor TSan job.
    reactor::StealDeque dq;
    constexpr int kRounds = 40;
    constexpr uint32_t kMaxItems = 300;
    std::vector<std::atomic<uint32_t>> claims(kMaxItems);
    std::atomic<int64_t> remaining{0};
    std::atomic<bool> stop{false};

    auto thief = [&] {
        while (!stop.load(std::memory_order_acquire)) {
            if (remaining.load(std::memory_order_acquire) <= 0) {
                std::this_thread::yield();
                continue;
            }
            int64_t it = dq.steal();
            if (it >= 0) {
                claims[static_cast<size_t>(it)].fetch_add(1,
                                                          std::memory_order_relaxed);
                remaining.fetch_sub(1, std::memory_order_acq_rel);
            }
        }
    };
    std::vector<std::thread> thieves;
    thieves.reserve(3);
    for (int i = 0; i < 3; ++i) thieves.emplace_back(thief);

    for (int round = 0; round < kRounds; ++round) {
        uint32_t n = 1 + static_cast<uint32_t>(round) * 37 % kMaxItems;
        for (uint32_t i = 0; i < n; ++i) {
            claims[i].store(0, std::memory_order_relaxed);
        }
        dq.reserve(n);
        remaining.store(n, std::memory_order_release);
        dq.publish(n);
        while (remaining.load(std::memory_order_acquire) > 0) {
            int64_t it = dq.take();
            if (it >= 0) {
                claims[static_cast<size_t>(it)].fetch_add(1,
                                                          std::memory_order_relaxed);
                remaining.fetch_sub(1, std::memory_order_acq_rel);
            } else {
                std::this_thread::yield();  // thieves hold the stragglers
            }
        }
        for (uint32_t i = 0; i < n; ++i) {
            ASSERT_EQ(claims[i].load(std::memory_order_relaxed), 1u)
                << "round " << round << " item " << i;
        }
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : thieves) t.join();
}

/// 90%+ of the event load lands on members congruent 0 mod 8 — the same
/// shard at 1, 2, and 8 workers — so multi-worker runs are forced through
/// the steal path (idle shards poaching the loaded shard's round) while
/// the trace/stats contract must hold bit for bit.
FleetRun run_skewed_fleet(size_t workers) {
    reactor::ReactorConfig rc;
    rc.workers = workers;
    rc.seed = 7;
    rc.collect_traces = true;
    reactor::Reactor r(rc);

    auto counter = compile_shared(kCounter);
    constexpr size_t kFleet = 80;
    for (size_t i = 0; i < kFleet; ++i) r.add_instance(counter);
    r.boot();
    r.drain();

    for (int step = 0; step < 5; ++step) {
        for (size_t i = 0; i < kFleet; ++i) {
            int shots = i % 8 == 0 ? 9 : (i % 3 == 1 ? 1 : 0);
            for (int s = 0; s < shots; ++s) {
                r.inject(static_cast<reactor::InstanceId>(i), "ADD",
                         rt::Value::integer(static_cast<int64_t>(
                             step * 1000 + static_cast<int>(i) * 10 + s)));
            }
        }
        r.drain();
    }
    for (size_t i = 0; i < kFleet; ++i) {
        r.inject(static_cast<reactor::InstanceId>(i), "STOP");
    }
    r.drain();

    FleetRun out;
    out.traces.reserve(kFleet);
    for (size_t i = 0; i < kFleet; ++i) {
        out.traces.push_back(
            r.instance(static_cast<reactor::InstanceId>(i)).trace_text());
    }
    obs::ProcessStats st = r.fleet_stats();
    st.clear_measured();
    out.stats_json = st.to_json();
    return out;
}

TEST(Reactor, SkewedFleetIsIdenticalAt1_2_8Workers) {
    FleetRun w1 = run_skewed_fleet(1);
    FleetRun w2 = run_skewed_fleet(2);
    FleetRun w8 = run_skewed_fleet(8);
    ASSERT_EQ(w1.traces.size(), w2.traces.size());
    ASSERT_EQ(w1.traces.size(), w8.traces.size());
    for (size_t i = 0; i < w1.traces.size(); ++i) {
        EXPECT_EQ(w1.traces[i], w2.traces[i]) << "instance " << i << " (2 workers)";
        EXPECT_EQ(w1.traces[i], w8.traces[i]) << "instance " << i << " (8 workers)";
    }
    EXPECT_EQ(w1.stats_json, w2.stats_json);
    EXPECT_EQ(w1.stats_json, w8.stats_json);
    EXPECT_FALSE(w1.traces[0].empty());
}

// -- per-shard arenas ---------------------------------------------------------

TEST(Reactor, ArenaReservationStabilizesAfterWarmup) {
    // A warmed fleet's steady state must stop demanding memory: envelope
    // cells recycle through the pool's free list and the timer wheel's
    // bucket buffers recycle through its spare list, so the exact
    // reserved-bytes gauge goes flat while rounds keep running.
    auto counter = compile_shared(kCounter);
    auto ticker = compile_shared(kTicker);
    reactor::Reactor r;
    constexpr size_t kFleet = 300;
    for (size_t i = 0; i < kFleet; ++i) {
        r.add_instance(i % 2 == 0 ? counter : ticker);
    }
    r.boot();
    r.drain();

    auto one_round = [&] {
        for (size_t i = 0; i < kFleet; i += 2) {
            r.inject(static_cast<reactor::InstanceId>(i), "ADD",
                     rt::Value::integer(1));
        }
        r.advance(10 * kMs);
        r.drain();
    };
    for (int i = 0; i < 8; ++i) one_round();
    uint64_t warmed = r.fleet_stats().arena_bytes;
    EXPECT_GT(warmed, 0u);
    for (int i = 0; i < 40; ++i) one_round();
    EXPECT_EQ(r.fleet_stats().arena_bytes, warmed)
        << "steady-state rounds reserved new arena memory";
}

TEST(Reactor, FleetStatsCarrySchedulerSeries) {
    auto counter = compile_shared(kCounter);
    reactor::Reactor r;
    r.add_instance(counter);
    r.boot();
    r.inject(0, "ADD", rt::Value::integer(1));
    r.drain();

    obs::ProcessStats st = r.fleet_stats();
    EXPECT_GT(st.arena_bytes, 0u);
    std::string js = st.to_json();
    for (const char* key : {"\"steals\":", "\"steal_failures\":",
                            "\"arena_bytes\":", "\"phase_ns\":"}) {
        EXPECT_NE(js.find(key), std::string::npos) << key;
    }
    // The scheduler series are measurement, not semantics: the determinism
    // contract compares stats after clear_measured(), so they must zero.
    st.clear_measured();
    std::string cleared = st.to_json();
    EXPECT_NE(cleared.find("\"steals\":0,"), std::string::npos);
    EXPECT_NE(cleared.find("\"steal_failures\":0,"), std::string::npos);
    EXPECT_NE(cleared.find("\"arena_bytes\":0,"), std::string::npos);
    EXPECT_NE(cleared.find("\"phase_ns\":{\"restarts\":0,\"events\":0,"
                           "\"timers\":0,\"asyncs\":0}"),
              std::string::npos);
}

}  // namespace
