// Trace-schema conformance: (a) golden Chrome trace_event files for the
// paper demos — the exporter's byte format is a public schema, frozen in
// tests/golden_traces/; (b) interpreter-vs-cgen byte compatibility on fixed
// generator seeds — the compiled C's weak ceu_obs_* writer must render the
// exact same bytes as obs::ChromeTraceSink for every verdict-OK program.
//
// Regenerate goldens after an intentional schema change with:
//   CEU_UPDATE_GOLDEN=1 ./tests/ceu_conformance_tests --gtest_filter='GoldenTrace*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "arduino/binding.hpp"
#include "codegen/flatten.hpp"
#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "env/script.hpp"
#include "host/instance.hpp"
#include "obs/obs.hpp"
#include "testgen/differ.hpp"
#include "testgen/generator.hpp"

namespace {

using namespace ceu;

std::string golden_path(const std::string& name) {
    return std::string(CEU_SOURCE_DIR) + "/tests/golden_traces/" + name +
           ".trace.json";
}

void check_golden(const std::string& name, const std::string& trace) {
    std::string path = golden_path(name);
    if (std::getenv("CEU_UPDATE_GOLDEN") != nullptr) {
        std::ofstream f(path, std::ios::binary);
        ASSERT_TRUE(f.good()) << "cannot write " << path;
        f << trace;
        GTEST_SKIP() << "golden updated: " << path;
    }
    std::ifstream f(path, std::ios::binary);
    ASSERT_TRUE(f.good()) << "missing golden " << path
                          << " (regenerate with CEU_UPDATE_GOLDEN=1)";
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(trace, ss.str())
        << "trace schema drifted from " << path
        << " — if intentional, regenerate with CEU_UPDATE_GOLDEN=1";
}

TEST(GoldenTrace, Quickstart) {
    host::Instance inst(demos::kQuickstart);
    obs::ChromeTraceSink sink;
    inst.add_sink(&sink);
    inst.run(env::Script()
                 .advance(kSec)
                 .advance(kSec)
                 .event("Restart", 10)
                 .advance(kSec)
                 .advance(kSec));
    inst.finish_observation();
    check_golden("quickstart", sink.text());
}

TEST(GoldenTrace, Temperature) {
    host::Instance inst(demos::kTemperature);
    obs::ChromeTraceSink sink;
    inst.add_sink(&sink);
    inst.run(env::Script()
                 .event("SetCelsius", 0)
                 .event("SetCelsius", 100)
                 .event("SetFahrenheit", 212)
                 .event("SetFahrenheit", -40)
                 .event("SetCelsius", 37));
    inst.finish_observation();
    check_golden("temperature", sink.text());
}

TEST(GoldenTrace, ShipGame) {
    arduino::Board board;
    arduino::Lcd lcd;
    demos::ShipWorld world(lcd);
    rt::CBindings bindings = demos::make_ship_bindings(world, lcd, board);
    board.set_analog_source(
        0, arduino::Board::combine(
               {arduino::Board::keypad_press(arduino::kRawUp, 120 * kMs, 400 * kMs),
                arduino::Board::keypad_press(arduino::kRawDown, 1000 * kMs,
                                             1300 * kMs)}));

    flat::CompiledProgram cp = flat::compile(demos::kShip, "ship.ceu");
    host::Config cfg;
    cfg.bindings = &bindings;
    host::Instance inst(cp, cfg);
    obs::ChromeTraceSink sink;
    inst.add_sink(&sink);
    inst.boot();
    // 2 seconds in keypad-sampling ticks: game start, one steer, a few
    // steps — enough to cover timer, event and async reaction kinds.
    for (int tick = 0; tick < 40; ++tick) {
        inst.advance(50 * kMs);
        inst.settle();
    }
    inst.finish_observation();
    check_golden("ship_game", sink.text());
}

// ---------------------------------------------------------------------------
// Interpreter vs cgen byte compatibility on fixed seeds.
// ---------------------------------------------------------------------------

/// Body shared by the legacy-globals and re-entrant-wrapper entry points:
/// scan generator seeds, byte-compare interpreter and compiled traces on
/// every verdict-OK case.
void check_interp_cgen_parity(const testgen::DiffOptions& opt, int kWanted,
                              uint64_t kMaxSeed) {
    int checked = 0;
    uint64_t seed = 1;
    for (; seed <= kMaxSeed && checked < kWanted; ++seed) {
        testgen::GenCase gc = testgen::generate(seed);

        flat::CompiledProgram cp;
        Diagnostics diags;
        ASSERT_TRUE(flat::compile_checked(gc.source, &cp, diags, "<gen>"))
            << "seed " << seed << ": " << diags.str();

        // Only verdict-OK programs promise scheduler-independent behavior;
        // refused/unknown ones may legitimately diverge between backends.
        dfa::Dfa d = dfa::Dfa::build(cp);
        if (!(d.deterministic() && d.complete())) continue;

        env::Script script;
        ASSERT_TRUE(env::Script::parse(gc.script_text, &script, diags))
            << "seed " << seed << ": " << diags.str();

        testgen::TraceRun interp = testgen::interp_chrome_trace(gc.source, script);
        ASSERT_TRUE(interp.ok) << "seed " << seed << ": interp: " << interp.error;
        testgen::TraceRun cgen = testgen::cgen_chrome_trace(gc.source, script, opt);
        ASSERT_TRUE(cgen.ok) << "seed " << seed << ": cgen: " << cgen.error;

        EXPECT_EQ(interp.trace, cgen.trace) << "seed " << seed;
        ++checked;
    }
    ASSERT_EQ(checked, kWanted)
        << "only " << checked << " verdict-OK seeds in 1.." << (seed - 1);
}

TEST(TraceCompat, InterpAndCgenTracesAreByteIdenticalOnFixedSeeds) {
    check_interp_cgen_parity(testgen::DiffOptions(), /*kWanted=*/20,
                             /*kMaxSeed=*/200);
}

TEST(TraceCompat, ReentrantEntryPointKeepsTheSameTraceBytes) {
    // The deprecated single-instance wrappers (re-entrant emission with
    // with_main) are the second supported entry point: same program, same
    // script, same bytes. Fewer seeds — each case costs a cc invocation
    // and the wrapper glue is entry-point plumbing, not per-program logic.
    testgen::DiffOptions opt;
    opt.cgen_reentrant = true;
    check_interp_cgen_parity(opt, /*kWanted=*/8, /*kMaxSeed=*/200);
}

}  // namespace
