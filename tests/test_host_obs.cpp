// The observability layer (src/obs/) and the ceu::host::Instance embedding
// facade: span assembly, the deterministic Chrome-trace byte format, the
// binary ring buffer, stats fusion, the engine's reset-after-fault
// contract, and the off-by-default overhead budget.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "codegen/flatten.hpp"
#include "host/instance.hpp"
#include "obs/obs.hpp"
#include "obs/trace_format.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace ceu;

/// Captures every finished span verbatim.
struct CollectSink final : obs::Sink {
    std::vector<obs::ReactionSpan> spans;
    bool finished = false;
    void on_reaction(const obs::ReactionSpan& s) override { spans.push_back(s); }
    void finish(const obs::ProcessStats&) override { finished = true; }
};

constexpr const char* kEmitter = R"(
    input int I;
    input void STOP;
    internal void e;
    int v = 0;
    par do
       loop do
          v = await I;
          emit e;
       end
    with
       loop do
          await e;
          v = v + 1;
       end
    with
       await STOP;
       return v;
    end
)";

TEST(Obs, RecorderAssemblesSpansWithWakesAndEmits) {
    host::Instance inst(kEmitter);
    CollectSink sink;
    inst.add_sink(&sink);
    inst.boot();
    inst.inject("I", rt::Value::integer(5));
    inst.inject("STOP");
    inst.finish_observation();

    ASSERT_EQ(sink.spans.size(), 3u);
    EXPECT_TRUE(sink.finished);

    const obs::ReactionSpan& boot = sink.spans[0];
    EXPECT_EQ(boot.kind, obs::ReactionKind::Boot);
    EXPECT_EQ(boot.seq, 0u);
    EXPECT_EQ(boot.end_status, static_cast<int>(obs::EndStatus::Running));

    const obs::ReactionSpan& ev = sink.spans[1];
    EXPECT_EQ(ev.kind, obs::ReactionKind::Event);
    EXPECT_EQ(ev.name, "I");
    EXPECT_EQ(ev.seq, 1u);
    EXPECT_EQ(ev.emits(), 1u);     // emit e
    EXPECT_GE(ev.wakes(), 2u);     // trail 1 on I, trail 2 on e
    EXPECT_EQ(ev.max_emit_depth, 1);
    EXPECT_GT(ev.instructions, 0u);

    const obs::ReactionSpan& stop = sink.spans[2];
    EXPECT_EQ(stop.name, "STOP");
    EXPECT_EQ(stop.end_status, static_cast<int>(obs::EndStatus::Terminated));
    EXPECT_EQ(stop.result, 6);  // v = 5, then +1 by the e-awaiting trail
}

TEST(Obs, ChromeTraceSinkProducesTheExactByteFormat) {
    host::Instance inst(R"(
        input int GO;
        await GO;
        return 7;
    )");
    obs::ChromeTraceSink sink;
    inst.add_sink(&sink);
    inst.boot();
    inst.advance(250);  // no timers armed: no reaction, no trace bytes
    inst.inject("GO", rt::Value::integer(1));
    inst.finish_observation();

    // One boot chain, one event chain; the formats come from
    // trace_format.hpp, shared verbatim with the cgen-emitted C writer.
    std::string expected =
        "[\n"
        "{\"name\":\"reaction\",\"cat\":\"ceu\",\"ph\":\"B\",\"pid\":1,\"tid\":1,"
        "\"ts\":0,\"args\":{\"kind\":\"boot\",\"id\":0,\"name\":\"\",\"seq\":0}},\n"
        "{\"name\":\"reaction\",\"cat\":\"ceu\",\"ph\":\"E\",\"pid\":1,\"tid\":1,"
        "\"ts\":0,\"args\":{\"status\":1}},\n"
        "{\"name\":\"reaction\",\"cat\":\"ceu\",\"ph\":\"B\",\"pid\":1,\"tid\":1,"
        "\"ts\":250,\"args\":{\"kind\":\"event\",\"id\":0,\"name\":\"GO\",\"seq\":1}},\n"
        "{\"name\":\"wake\",\"cat\":\"ceu\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
        "\"tid\":1,\"ts\":250,\"args\":{\"gate\":0}},\n"
        "{\"name\":\"reaction\",\"cat\":\"ceu\",\"ph\":\"E\",\"pid\":1,\"tid\":1,"
        "\"ts\":250,\"args\":{\"status\":2,\"result\":7}}\n"
        "]\n";
    EXPECT_EQ(sink.text(), expected);

    // finish() is idempotent: a second finish adds no bytes.
    inst.finish_observation();
    EXPECT_EQ(sink.text(), expected);
}

TEST(Obs, EmptyTraceIsAnEmptyJsonArray) {
    host::Instance inst("input void X; await X;");
    obs::ChromeTraceSink sink;
    inst.add_sink(&sink);
    // Never booted: no reactions at all.
    inst.finish_observation();
    EXPECT_EQ(sink.text(), std::string(obs::kTraceHeader) + obs::kTraceFooter);
}

TEST(Obs, RingBufferKeepsTheNewestRecordsAtConstantMemory) {
    host::Instance inst(kEmitter);
    obs::RingBufferSink ring(8);
    inst.add_sink(&ring);
    inst.boot();
    for (int i = 0; i < 20; ++i) inst.inject("I", rt::Value::integer(i));

    EXPECT_EQ(ring.capacity(), 8u);
    std::vector<obs::RingBufferSink::Record> recs = ring.snapshot();
    ASSERT_EQ(recs.size(), 8u);
    EXPECT_GT(ring.dropped(), 0u);
    // The newest record is the latest chain's End.
    EXPECT_EQ(recs.back().type, obs::RingBufferSink::Record::Type::End);
    EXPECT_EQ(static_cast<obs::EndStatus>(recs.back().kind), obs::EndStatus::Running);
}

TEST(Obs, ProcessStatsJsonIsStableAndComplete) {
    host::Instance inst(kEmitter);
    inst.observe_stats();
    inst.boot();
    inst.inject("I", rt::Value::integer(1));
    inst.inject("I", rt::Value::integer(2));
    inst.note_fault_injection();

    obs::ProcessStats s = inst.snapshot();
    EXPECT_EQ(s.reactions, 3u);
    EXPECT_EQ(s.reactions_by_kind[0], 1u);  // boot
    EXPECT_EQ(s.reactions_by_kind[1], 2u);  // events
    EXPECT_EQ(s.emits, 2u);
    EXPECT_EQ(s.fault_injections, 1u);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GE(s.queue_peak, 1u);

    std::string j = s.to_json();
    for (const char* key :
         {"\"reactions\":", "\"wakes\":", "\"emits\":", "\"timer_fires\":",
          "\"queue_peak\":", "\"timers_peak\":", "\"fault_injections\":",
          "\"instructions\":", "\"max_emit_depth\":", "\"reactions_per_sec\":"}) {
        EXPECT_NE(j.find(key), std::string::npos) << "missing " << key << " in " << j;
    }
    // Stable rendering: two snapshots of the same state are byte-identical.
    EXPECT_EQ(j, inst.snapshot().to_json());
}

TEST(Obs, SnapshotFusesEngineGaugesWhenArmedLate) {
    host::Instance inst(kEmitter);
    inst.boot();
    inst.inject("I", rt::Value::integer(1));
    // Observation armed only now: the recorder saw nothing, but the
    // engine-derived fields still report the true lifetime counts.
    inst.observe_stats();
    obs::ProcessStats s = inst.snapshot();
    EXPECT_EQ(s.reactions, 2u);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GE(s.queue_peak, 1u);
}

TEST(HostInstance, InjectUnknownEventThrowsAndTryInjectReturnsFalse) {
    host::Instance inst(kEmitter);
    inst.boot();
    EXPECT_THROW(inst.inject("NoSuchEvent"), rt::RuntimeError);
    EXPECT_FALSE(inst.try_inject("NoSuchEvent"));
    EXPECT_TRUE(inst.try_inject("I", rt::Value::integer(1)));
    EXPECT_EQ(inst.status(), rt::Engine::Status::Running);
}

TEST(HostInstance, AdvanceAccumulatesAndAdvanceToNeverRewinds) {
    host::Instance inst(kEmitter);
    inst.boot();
    inst.advance(300);
    inst.advance(200);
    EXPECT_EQ(inst.clock(), 500);
    inst.advance_to(400);  // backwards: no-op
    EXPECT_EQ(inst.clock(), 500);
    inst.advance_to(900);
    EXPECT_EQ(inst.clock(), 900);
}

TEST(HostInstance, PowerCycleResetsStateAndKeepsTheClock) {
    host::Instance inst(kEmitter);
    inst.boot();
    inst.inject("I", rt::Value::integer(3));
    inst.advance(1000);
    inst.power_cycle();
    EXPECT_EQ(inst.status(), rt::Engine::Status::Running);  // re-booted
    EXPECT_EQ(inst.clock(), 1000);                          // time persists
    bool noted = false;
    for (const std::string& line : inst.trace()) {
        noted = noted || line.find("power-cycled") != std::string::npos;
    }
    EXPECT_TRUE(noted);
}

TEST(HostInstance, TraceLinesStreamAndCollect) {
    host::Instance inst(R"(
        input void GO;
        await GO;
        _trace("hello");
        await GO;
    )");
    std::vector<std::string> streamed;
    inst.on_trace_line = [&](const std::string& l) { streamed.push_back(l); };
    inst.boot();
    inst.inject("GO");
    ASSERT_EQ(streamed.size(), 1u);
    EXPECT_EQ(streamed[0], "hello");
    EXPECT_EQ(inst.trace(), streamed);
}

// ---------------------------------------------------------------------------
// Engine::reset() after a fault (the armed-TimerWheel leak regression).
// ---------------------------------------------------------------------------

constexpr const char* kFaulty = R"(
    input int Tick;
    par do
       loop do
          await 1s;
       end
    with
       loop do
          int v = await Tick;
          v = 1 / v;
       end
    end
)";

TEST(EngineReset, AfterUntrappedFaultClearsArmedTimers) {
    host::Instance inst(kFaulty);
    inst.boot();
    ASSERT_GE(inst.engine().next_timer_deadline(), 0);  // 1s trail armed
    // trap_faults is off: the division by zero unwinds out of the reaction.
    EXPECT_THROW(inst.inject("Tick", rt::Value::integer(0)), rt::RuntimeError);

    // Regression: the unwound reaction used to leave the engine marked
    // in-reaction, so reset() threw and the armed timer entry leaked with
    // no way to clear it. reset() must always restore a bootable engine.
    EXPECT_NO_THROW(inst.reset());
    EXPECT_EQ(inst.engine().next_timer_deadline(), -1);
    EXPECT_EQ(inst.status(), rt::Engine::Status::Loaded);

    inst.boot();
    EXPECT_EQ(inst.status(), rt::Engine::Status::Running);
    ASSERT_GE(inst.engine().next_timer_deadline(), 0);
    inst.advance(2 * kSec);  // the fresh timer trail reacts normally
    EXPECT_EQ(inst.status(), rt::Engine::Status::Running);
    inst.inject("Tick", rt::Value::integer(5));  // nonzero: no fault
    EXPECT_EQ(inst.status(), rt::Engine::Status::Running);
}

TEST(EngineReset, AfterTrappedFaultClearsArmedTimers) {
    host::Config cfg;
    cfg.engine.trap_faults = true;
    flat::CompiledProgram cp = flat::compile(kFaulty);
    host::Instance inst(cp, cfg);
    inst.boot();
    inst.inject("Tick", rt::Value::integer(0));
    EXPECT_EQ(inst.status(), rt::Engine::Status::Faulted);

    EXPECT_NO_THROW(inst.reset());
    EXPECT_EQ(inst.engine().next_timer_deadline(), -1);
    inst.boot();
    inst.advance(3 * kSec);
    EXPECT_EQ(inst.status(), rt::Engine::Status::Running);
}

// ---------------------------------------------------------------------------
// The off-by-default overhead budget (fig1-style reaction workload).
// ---------------------------------------------------------------------------

TEST(ObsOverhead, OffByDefaultStaysWithinBudget) {
    flat::CompiledProgram cp = flat::compile(kEmitter);
    constexpr int kEvents = 60'000;
    constexpr int kRounds = 9;

    // Wall time of kEvents reaction chains. Min-of-N is stable against
    // scheduler noise; each round uses a fresh instance.
    auto measure = [&](auto prepare) {
        uint64_t best = ~0ull;
        for (int r = 0; r < kRounds; ++r) {
            host::Instance inst(cp);
            prepare(inst);
            inst.boot();
            auto t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kEvents; ++i) {
                inst.inject(0, rt::Value::integer(i));
            }
            auto t1 = std::chrono::steady_clock::now();
            uint64_t ns = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
            best = std::min(best, ns);
        }
        return best;
    };

    uint64_t off = measure([](host::Instance&) {});  // default: recorder null
    uint64_t counters = measure([](host::Instance& i) { i.observe_stats(); });
    obs::ChromeTraceSink sink;  // reused; bytes just accumulate
    uint64_t traced = measure([&](host::Instance& i) { i.add_sink(&sink); });

    // The "<1% when off" budget: with sinks disabled the default path must
    // not cost more than the armed counters-only path plus 1% — the off
    // path does strictly less work (one predicted null test per hook), so
    // a violation means the hooks regressed into doing work while off.
    EXPECT_LE(static_cast<double>(off), static_cast<double>(counters) * 1.01)
        << "off=" << off << "ns counters=" << counters << "ns";
    // And full span tracing (JSON rendering per record) must cost more
    // than off — if it doesn't, the sink path is silently not running.
    EXPECT_LT(off, traced) << "off=" << off << "ns traced=" << traced << "ns";
}

}  // namespace
