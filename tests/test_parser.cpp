// Parser unit tests over the Appendix-A grammar, including every statement
// form the paper's examples use.
#include <gtest/gtest.h>

#include "ast/print.hpp"
#include "parser/parser.hpp"

namespace ceu {
namespace {

using namespace ast;

Program parse_ok(const std::string& text) {
    Diagnostics diags;
    Program p = parse_source(text, diags);
    EXPECT_TRUE(diags.ok()) << diags.str();
    return p;
}

void parse_err(const std::string& text, const std::string& needle) {
    Diagnostics diags;
    (void)parse_source(text, diags);
    EXPECT_FALSE(diags.ok()) << "expected an error for: " << text;
    EXPECT_TRUE(diags.contains(needle)) << diags.str();
}

const Stmt& only_stmt(const Program& p) {
    EXPECT_EQ(p.body.stmts.size(), 1u);
    return *p.body.stmts[0];
}

TEST(Parser, InputDeclaration) {
    Program p = parse_ok("input int Restart, Other;");
    const auto& d = static_cast<const DeclInputStmt&>(only_stmt(p));
    ASSERT_EQ(d.kind, StmtKind::DeclInput);
    EXPECT_EQ(d.type.name, "int");
    ASSERT_EQ(d.names.size(), 2u);
    EXPECT_EQ(d.names[0], "Restart");
    EXPECT_EQ(d.names[1], "Other");
}

TEST(Parser, InternalDeclaration) {
    Program p = parse_ok("internal void changed;");
    const auto& d = static_cast<const DeclInternalStmt&>(only_stmt(p));
    ASSERT_EQ(d.kind, StmtKind::DeclInternal);
    EXPECT_TRUE(d.type.is_void());
    EXPECT_EQ(d.names[0], "changed");
}

TEST(Parser, VarDeclarationWithInit) {
    Program p = parse_ok("int v = 0, w;");
    const auto& d = static_cast<const DeclVarStmt&>(only_stmt(p));
    ASSERT_EQ(d.vars.size(), 2u);
    EXPECT_EQ(d.vars[0].name, "v");
    ASSERT_NE(d.vars[0].init, nullptr);
    EXPECT_EQ(d.vars[1].name, "w");
    EXPECT_EQ(d.vars[1].init, nullptr);
}

TEST(Parser, ArrayDeclaration) {
    Program p = parse_ok("int[10] keys;");
    const auto& d = static_cast<const DeclVarStmt&>(only_stmt(p));
    EXPECT_EQ(d.vars[0].array_size, 10);
}

TEST(Parser, PointerDeclaration) {
    Program p = parse_ok("_message_t* msg;");
    const auto& d = static_cast<const DeclVarStmt&>(only_stmt(p));
    EXPECT_EQ(d.type.name, "message_t");
    EXPECT_TRUE(d.type.is_c);
    EXPECT_EQ(d.type.pointer_depth, 1);
}

TEST(Parser, DeclarationWithAwaitInitializer) {
    Program p = parse_ok("input int Start; int v = await Start;");
    const auto& d = static_cast<const DeclVarStmt&>(*p.body.stmts[1]);
    ASSERT_NE(d.vars[0].init_stmt, nullptr);
    EXPECT_EQ(d.vars[0].init_stmt->kind, StmtKind::AwaitExt);
}

TEST(Parser, AwaitForms) {
    Program p = parse_ok(
        "input void A; internal void e;\n"
        "await A; await e; await 1s; await (10); await forever;");
    EXPECT_EQ(p.body.stmts[2]->kind, StmtKind::AwaitExt);
    EXPECT_EQ(p.body.stmts[3]->kind, StmtKind::AwaitInt);
    EXPECT_EQ(p.body.stmts[4]->kind, StmtKind::AwaitTime);
    EXPECT_EQ(static_cast<const AwaitTimeStmt&>(*p.body.stmts[4]).us, kSec);
    EXPECT_EQ(p.body.stmts[5]->kind, StmtKind::AwaitDyn);
    EXPECT_EQ(p.body.stmts[6]->kind, StmtKind::AwaitForever);
}

TEST(Parser, EmitForms) {
    Program p = parse_ok(
        "input int E; internal int e;\n"
        "emit e; emit e = 5; async do emit E = 1; emit 10ms; end");
    EXPECT_EQ(p.body.stmts[2]->kind, StmtKind::EmitInt);
    const auto& e2 = static_cast<const EmitIntStmt&>(*p.body.stmts[3]);
    ASSERT_NE(e2.value, nullptr);
    const auto& as = static_cast<const AsyncStmt&>(*p.body.stmts[4]);
    EXPECT_EQ(as.body.stmts[0]->kind, StmtKind::EmitExt);
    EXPECT_EQ(as.body.stmts[1]->kind, StmtKind::EmitTime);
}

TEST(Parser, ParVariants) {
    Program p = parse_ok(
        "par do nothing; with nothing; end\n"
        "par/or do nothing; with nothing; with nothing; end\n"
        "par/and do nothing; with nothing; end");
    EXPECT_EQ(static_cast<const ParStmt&>(*p.body.stmts[0]).par_kind, ParKind::Par);
    const auto& po = static_cast<const ParStmt&>(*p.body.stmts[1]);
    EXPECT_EQ(po.par_kind, ParKind::ParOr);
    EXPECT_EQ(po.branches.size(), 3u);
    EXPECT_EQ(static_cast<const ParStmt&>(*p.body.stmts[2]).par_kind, ParKind::ParAnd);
}

TEST(Parser, ParRequiresTwoBranches) {
    parse_err("par do nothing; end", "at least two branches");
}

TEST(Parser, IfThenElse) {
    Program p = parse_ok("int v; if v then v = 1; else v = 2; end");
    const auto& n = static_cast<const IfStmt&>(*p.body.stmts[1]);
    EXPECT_TRUE(n.has_else);
    EXPECT_EQ(n.then_body.stmts.size(), 1u);
    EXPECT_EQ(n.else_body.stmts.size(), 1u);
}

TEST(Parser, LoopWithBreak) {
    Program p = parse_ok("loop do break; end");
    const auto& n = static_cast<const LoopStmt&>(only_stmt(p));
    EXPECT_EQ(n.body.stmts[0]->kind, StmtKind::Break);
}

TEST(Parser, AssignFromParBlock) {
    Program p = parse_ok(
        "input void Key; internal void collision;\n"
        "int v = par do await Key; return 1; with await collision; return 0; end;");
    const auto& d = static_cast<const DeclVarStmt&>(*p.body.stmts[2]);
    ASSERT_NE(d.vars[0].init_stmt, nullptr);
    EXPECT_EQ(d.vars[0].init_stmt->kind, StmtKind::Par);
}

TEST(Parser, AssignFromAsync) {
    Program p = parse_ok("int ret; ret = async do return 5; end;");
    const auto& a = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    ASSERT_NE(a.rhs_stmt, nullptr);
    EXPECT_EQ(a.rhs_stmt->kind, StmtKind::Async);
}

TEST(Parser, DerefAssignment) {
    Program p = parse_ok("int* cnt; *cnt = *cnt + 1;");
    const auto& a = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    EXPECT_EQ(a.lhs->kind, ExprKind::Unop);
}

TEST(Parser, CCallStatementAndExpressions) {
    Program p = parse_ok("_Leds_set((_TOS_NODE_ID + 1) % 3);");
    const auto& e = static_cast<const ExprStmtStmt&>(only_stmt(p));
    EXPECT_EQ(e.expr->kind, ExprKind::Call);
    EXPECT_EQ(ast::print_expr(*e.expr), "_Leds_set(((_TOS_NODE_ID + 1) % 3))");
}

TEST(Parser, DottedMethodCall) {
    Program p = parse_ok("int ship; _lcd.setCursor(0, ship);");
    const auto& e = static_cast<const ExprStmtStmt&>(*p.body.stmts[1]);
    const auto& call = static_cast<const CallExpr&>(*e.expr);
    EXPECT_EQ(call.fn->kind, ExprKind::Field);
}

TEST(Parser, PureAndDeterministicAnnotations) {
    Program p = parse_ok("pure _abs; deterministic _led1On, _led2On;");
    const auto& pu = static_cast<const PureStmt&>(*p.body.stmts[0]);
    EXPECT_EQ(pu.names[0], "abs");
    const auto& de = static_cast<const DeterministicStmt&>(*p.body.stmts[1]);
    ASSERT_EQ(de.names.size(), 2u);
    EXPECT_EQ(de.names[1], "led2On");
}

TEST(Parser, OperatorPrecedenceMatchesC) {
    Program p = parse_ok("int a, b, c; a = a + b * c;");
    const auto& s = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    EXPECT_EQ(print_expr(*s.rhs_expr), "(a + (b * c))");
}

TEST(Parser, ComparisonAndLogicalPrecedence) {
    Program p = parse_ok("int a, b; a = a == 1 && b != 2 || a < b;");
    const auto& s = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    EXPECT_EQ(print_expr(*s.rhs_expr), "(((a == 1) && (b != 2)) || (a < b))");
}

TEST(Parser, CastExpression) {
    Program p = parse_ok("int a; a = <int> 5;");
    const auto& s = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    EXPECT_EQ(s.rhs_expr->kind, ExprKind::Cast);
}

TEST(Parser, LessThanIsNotMistakenForCast) {
    Program p = parse_ok("int a, b; a = a < b;");
    const auto& s = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    EXPECT_EQ(print_expr(*s.rhs_expr), "(a < b)");
}

TEST(Parser, SizeofType) {
    Program p = parse_ok("int a; a = sizeof<int>;");
    const auto& s = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    EXPECT_EQ(s.rhs_expr->kind, ExprKind::SizeOf);
}

TEST(Parser, IndexingChains) {
    Program p = parse_ok("int ship, step, v; v = _MAP[ship][step];");
    const auto& s = static_cast<const AssignStmt&>(*p.body.stmts[1]);
    EXPECT_EQ(print_expr(*s.rhs_expr), "_MAP[ship][step]");
}

TEST(Parser, SemicolonsAreOptionalAfterEnd) {
    Program p = parse_ok("loop do await 1s; end\nloop do await 1s; end");
    EXPECT_EQ(p.body.stmts.size(), 2u);
}

TEST(Parser, CBlockStatement) {
    Program p = parse_ok("C do int I = 0; end");
    const auto& c = static_cast<const CBlockStmt&>(only_stmt(p));
    EXPECT_NE(c.code.find("int I = 0;"), std::string::npos);
}

TEST(Parser, OutputEventDeclaration) {
    // Extension: the paper's future-work output events.
    Program p = parse_ok("output int Led, Buzzer;");
    const auto& d = static_cast<const DeclOutputStmt&>(only_stmt(p));
    ASSERT_EQ(d.kind, StmtKind::DeclOutput);
    EXPECT_EQ(d.type.name, "int");
    ASSERT_EQ(d.names.size(), 2u);
    EXPECT_EQ(d.names[0], "Led");
    EXPECT_EQ(d.names[1], "Buzzer");
}

TEST(Parser, MissingEndIsAnError) {
    parse_err("loop do await 1s;", "expected 'end'");
}

TEST(Parser, GuidingExampleFromSection4Parses) {
    // The paper's §4 guiding example, verbatim (modulo declarations).
    Program p = parse_ok(R"(
        input int A, B, C;
        int ret;
        loop do
           par/or do
              int a = await A;
              int b = await B;
              ret = a + b;
              break;
           with
              par/and do
                 await C;
              with
                 await A;
              end
           end
        end
    )");
    EXPECT_EQ(p.body.stmts.size(), 3u);
}

}  // namespace
}  // namespace ceu
