// End-to-end tests of the paper's three demo applications (§3), running on
// the simulated substrates, plus their temporal-analysis verdicts.
#include <gtest/gtest.h>

#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "env/driver.hpp"
#include "wsn/tinyos_binding.hpp"

namespace ceu {
namespace {

using env::Driver;
using env::Script;

// ---------------------------------------------------------------------------
// Ring (§3.1)
// ---------------------------------------------------------------------------

wsn::Network make_ring_network() {
    wsn::RadioModel radio;
    radio.link(0, 1, 2 * kMs);
    radio.link(1, 2, 2 * kMs);
    radio.link(2, 0, 2 * kMs);
    wsn::Network net(radio);
    for (int id = 0; id < 3; ++id) {
        wsn::CeuMoteConfig cfg;
        cfg.source = demos::kRing;
        net.add(std::make_unique<wsn::CeuMote>(id, cfg));
    }
    return net;
}

std::vector<int64_t> led_values(const wsn::CeuMote& m) {
    std::vector<int64_t> v;
    for (const auto& [at, val] : m.led_history()) v.push_back(val);
    return v;
}

TEST(RingDemo, CounterTraversesTheRingForever) {
    wsn::Network net = make_ring_network();
    net.start();
    net.run_until(10 * kSec);
    auto& m0 = static_cast<wsn::CeuMote&>(net.mote(0));
    auto& m1 = static_cast<wsn::CeuMote&>(net.mote(1));
    auto& m2 = static_cast<wsn::CeuMote&>(net.mote(2));
    // Each mote sees the counter grow by 3 per lap: 1,4,7,... on mote 1.
    auto v1 = led_values(m1);
    ASSERT_GE(v1.size(), 3u);
    EXPECT_EQ(v1[0], 1);
    EXPECT_EQ(v1[1], 4);
    EXPECT_EQ(v1[2], 7);
    auto v2 = led_values(m2);
    ASSERT_GE(v2.size(), 2u);
    EXPECT_EQ(v2[0], 2);
    EXPECT_EQ(v2[1], 5);
    auto v0 = led_values(m0);
    ASSERT_GE(v0.size(), 2u);
    EXPECT_EQ(v0[0], 3);
}

TEST(RingDemo, NetworkDownTriggersBlinkAndRetryRestoresIt) {
    wsn::Network net = make_ring_network();
    net.start();
    net.run_until(6 * kSec);  // healthy for a while
    auto& m1 = static_cast<wsn::CeuMote&>(net.mote(1));
    size_t healthy_events = m1.led_history().size();

    // Mote 2 dies: the ring is broken (messages into and out of it drop).
    net.radio().set_down(2, true);
    net.run_until(20 * kSec);
    // Mote 1 must have detected the silence (>5s) and blinked led0 at 2Hz.
    size_t down_events = m1.led_history().size();
    EXPECT_GT(down_events, healthy_events + 10u);

    // Mote 2 comes back; mote 0's 10s retry re-seeds the ring.
    net.radio().set_down(2, false);
    net.run_until(45 * kSec);
    auto& m2 = static_cast<wsn::CeuMote&>(net.mote(2));
    // Mote 2 received a fresh message after recovery.
    ASSERT_FALSE(m2.led_history().empty());
    EXPECT_GT(m2.led_history().back().first, 20 * kSec);
}

TEST(RingDemo, TemporalAnalysisAcceptsTheRing) {
    flat::CompiledProgram cp = flat::compile(demos::kRing);
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_TRUE(d.deterministic()) << d.report();
    EXPECT_TRUE(d.complete());
}

TEST(MultihopDemo, ReadingsReachTheSinkWithHopCounts) {
    struct Reading {
        int64_t origin, value, hops;
    };
    std::vector<Reading> collected;
    constexpr int kMotes = 4;
    wsn::RadioModel radio;
    for (int id = 1; id < kMotes; ++id) radio.link(id, id - 1, 2 * kMs);
    wsn::Network net(radio);
    for (int id = 0; id < kMotes; ++id) {
        wsn::CeuMoteConfig cfg;
        cfg.source = demos::kMultihop;
        cfg.customize = [&collected](rt::CBindings& c, int mote_id) {
            c.fn("Read_sensor", [mote_id](rt::Engine&, std::span<const rt::Value>) {
                return rt::Value::integer(100 + mote_id);
            });
            c.fn("collect",
                 [&collected](rt::Engine&, std::span<const rt::Value> args) {
                     collected.push_back(
                         {args[0].as_int(), args[1].as_int(), args[2].as_int()});
                     return rt::Value::integer(0);
                 });
        };
        net.add(std::make_unique<wsn::CeuMote>(id, cfg));
    }
    net.start();
    net.run_until(10 * kSec);

    // Every source sampled at 2,4,6,8,10s => ~4-5 readings each in 10s.
    int per_origin[kMotes] = {};
    for (const Reading& r : collected) {
        ASSERT_GE(r.origin, 1);
        ASSERT_LT(r.origin, kMotes);
        EXPECT_EQ(r.hops, r.origin - 1);       // one hop per intermediate mote
        EXPECT_EQ(r.value, 100 + r.origin);    // payload intact end to end
        ++per_origin[r.origin];
    }
    for (int id = 1; id < kMotes; ++id) {
        EXPECT_GE(per_origin[id], 3) << "origin " << id;
    }
}

TEST(MultihopDemo, TemporalAnalysisAcceptsTheProtocol) {
    flat::CompiledProgram cp = flat::compile(demos::kMultihop);
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_TRUE(d.deterministic()) << d.report();
    EXPECT_TRUE(d.complete());
}

// ---------------------------------------------------------------------------
// Ship (§3.2)
// ---------------------------------------------------------------------------

struct ShipRig {
    arduino::Board board;
    arduino::Lcd lcd;
    demos::ShipWorld world{lcd};
    rt::CBindings bindings = demos::make_ship_bindings(world, lcd, board);
};

/// The generator samples every 50ms and asyncs deliver the key events, so
/// the script interleaves time with async settling.
Script ship_script(int ticks) {
    Script s;
    for (int i = 0; i < ticks; ++i) {
        s.advance(50 * kMs);
        s.settle_asyncs();
    }
    return s;
}

TEST(ShipDemo, KeyStartsTheGameAndStepsAdvance) {
    ShipRig rig;
    // Hold KEY_UP during [120ms, 400ms]: two consistent reads 50ms apart.
    rig.board.set_analog_source(
        0, arduino::Board::keypad_press(arduino::kRawUp, 120 * kMs, 400 * kMs, 0));
    flat::CompiledProgram cp = flat::compile(demos::kShip);
    Driver d(cp, &rig.bindings);
    d.run(ship_script(100));  // 5 seconds
    // The game started (initial redraw + step redraws at 500ms/step).
    EXPECT_GE(rig.world.redraws(), 5u);
    EXPECT_FALSE(rig.lcd.frames().empty());
    // The ship is drawn in row 0, column 0.
    EXPECT_EQ(rig.lcd.frames().back().screen[0], '>');
}

TEST(ShipDemo, DeterministicReplayOfTheWholeGame) {
    auto run_once = [] {
        ShipRig rig;
        rig.board.set_analog_source(
            0, arduino::Board::combine(
                   {arduino::Board::keypad_press(arduino::kRawUp, 120 * kMs, 400 * kMs, 0),
                    arduino::Board::keypad_press(arduino::kRawDown, 900 * kMs,
                                                 1300 * kMs, 0)}));
        flat::CompiledProgram cp = flat::compile(demos::kShip);
        Driver d(cp, &rig.bindings);
        d.run(ship_script(200));
        std::vector<std::string> frames;
        for (const auto& f : rig.lcd.frames()) frames.push_back(f.screen);
        return frames;
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(ShipDemo, KeyDownMovesTheShipToRowOne) {
    ShipRig rig;
    rig.board.set_analog_source(
        0, arduino::Board::combine(
               {arduino::Board::keypad_press(arduino::kRawUp, 120 * kMs, 400 * kMs, 0),
                arduino::Board::keypad_press(arduino::kRawDown, 900 * kMs, 1300 * kMs,
                                             0)}));
    flat::CompiledProgram cp = flat::compile(demos::kShip);
    Driver d(cp, &rig.bindings);
    d.run(ship_script(60));  // 3s: started at ~170ms, moved down at ~950ms
    bool ship_on_row1 = false;
    for (const auto& f : rig.lcd.frames()) {
        // Row 1 starts after the newline.
        size_t row1 = f.screen.find('\n') + 1;
        if (f.screen[row1] == '>') ship_on_row1 = true;
    }
    EXPECT_TRUE(ship_on_row1);
}

TEST(ShipDemo, TemporalAnalysisAcceptsWithAnnotations) {
    flat::CompiledProgram cp = flat::compile(demos::kShip);
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_TRUE(d.deterministic()) << d.report();
}

TEST(ShipDemo, WithoutAnnotationsTheAnalysisRefusesTheGame) {
    // Strip the annotation lines: the concurrent C calls resurface — the
    // exact behavior §3.2 describes.
    std::string source = demos::kShip;
    size_t pos;
    while ((pos = source.find("pure _")) != std::string::npos ||
           (pos = source.find("deterministic _")) != std::string::npos) {
        source.erase(pos, source.find(';', pos) - pos + 1);
    }
    flat::CompiledProgram cp = flat::compile(source);
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_FALSE(d.deterministic());
    bool ccall = false;
    for (const auto& c : d.conflicts()) {
        if (c.kind == dfa::Conflict::Kind::CCall) ccall = true;
    }
    EXPECT_TRUE(ccall) << d.report();
}

// ---------------------------------------------------------------------------
// Mario (§3.3)
// ---------------------------------------------------------------------------

TEST(MarioDemo, LiveSessionRunsTenSecondsOfSteps) {
    display::Display disp;
    disp.push_key();
    disp.push_key();
    rt::CBindings bindings = demos::make_mario_bindings(disp);
    flat::CompiledProgram cp = flat::compile(demos::kMarioLive);
    Driver d(cp, &bindings);
    d.run(Script().settle_asyncs());
    // Initial scene + one redraw per Step.
    EXPECT_GE(disp.frames().size(), 1000u);
    EXPECT_EQ(disp.pending(), 0u);  // keys were consumed
}

TEST(MarioDemo, ReplayReproducesTheRecordingExactly) {
    display::Display disp;
    disp.push_key();
    disp.push_key();
    disp.push_key();
    rt::CBindings bindings = demos::make_mario_bindings(disp);
    flat::CompiledProgram cp = flat::compile(demos::kMarioReplay);
    Driver d(cp, &bindings);
    d.run(Script().settle_asyncs());

    const auto& frames = disp.frames();
    // Record: initial + 1000 steps; each of 2 replays likewise.
    ASSERT_EQ(frames.size(), 3 * 1001u);
    std::vector<display::Display::Scene> rec(frames.begin(), frames.begin() + 1001);
    std::vector<display::Display::Scene> rep1(frames.begin() + 1001,
                                              frames.begin() + 2002);
    std::vector<display::Display::Scene> rep2(frames.begin() + 2002, frames.end());
    EXPECT_EQ(rec, rep1);  // same inputs => same behavior (paper §2.8)
    EXPECT_EQ(rec, rep2);
    // And something actually happened: Mario moved.
    EXPECT_NE(frames.front().mario_x, frames[1000].mario_x);
}

TEST(MarioDemo, BackwardsReplayShowsEarlierAndEarlierScenes) {
    display::Display disp;
    rt::CBindings bindings = demos::make_mario_bindings(disp);
    flat::CompiledProgram cp = flat::compile(demos::kMarioBackwards);
    Driver d(cp, &bindings);
    d.run(Script().settle_asyncs());

    // Record phase: initial + 200 live frames; backwards phase: exactly one
    // marked frame per step_ref in {200, 190, ..., 10}.
    const auto& frames = disp.frames();
    ASSERT_EQ(frames.size(), 201u + 20u);
    // The marked frames replay the recording backwards: frame for step_ref
    // s must equal the recorded frame at step s.
    for (int k = 0; k < 20; ++k) {
        int step_ref = 200 - 10 * k;
        const auto& marked = frames[201u + static_cast<size_t>(k)];
        const auto& recorded = frames[static_cast<size_t>(step_ref)];
        EXPECT_EQ(marked, recorded) << "step_ref=" << step_ref;
    }
}

TEST(MarioDemo, TemporalAnalysisAcceptsTheGame) {
    flat::CompiledProgram cp = flat::compile(demos::kMarioLive);
    dfa::Dfa d = dfa::Dfa::build(cp);
    EXPECT_TRUE(d.deterministic()) << d.report();
}

// ---------------------------------------------------------------------------
// Temperature dataflow (§2.2)
// ---------------------------------------------------------------------------

TEST(TemperatureDemo, BothDirectionsConvergeWithoutCycles) {
    flat::CompiledProgram cp = flat::compile(demos::kTemperature);
    Driver d(cp);
    d.run(Script().event("SetCelsius", 100).event("SetFahrenheit", 32));
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"set tc: tc=100 tf=212",
                                                   "set tf: tc=0 tf=32"}));
}

}  // namespace
}  // namespace ceu
