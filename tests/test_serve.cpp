// Reactor-as-a-service suite (`ctest -L serve`).
//
// Three layers, matching the serve stack:
//   1. CEUWIRE1 codec — golden round-trips for every frame type, and the
//      reject paths: truncation, trailing garbage, unknown type, corrupt
//      magic, hostile length. A malformed frame must throw, never decode
//      into a subtly wrong op.
//   2. SessionMap under concurrency — open/lookup/close races (the TSan CI
//      job runs this binary).
//   3. The server itself over loopback: handshake accept/reject, the
//      create-on-connect session lifecycle, the shared reactor::Verdict on
//      the wire, span/status streaming, and the two PR headline gates —
//      a recorded script replayed at 1/2/8 workers produces byte-identical
//      per-session traces, and a drained server restarted from its
//      checkpoint directory resumes sessions byte-identical-thereafter.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "reactor/verdict.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"

namespace {

using namespace ceu;
using namespace ceu::serve;

// ---------------------------------------------------------------------------
// 1. Wire codec
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode(const Frame& f) {
    std::vector<uint8_t> bytes;
    encode_frame(f, bytes);
    return bytes;
}

/// Strips the u32 length prefix.
std::vector<uint8_t> payload_of(const std::vector<uint8_t>& bytes) {
    EXPECT_GE(bytes.size(), 4u);
    return {bytes.begin() + 4, bytes.end()};
}

Frame round_trip(const Frame& f) {
    std::vector<uint8_t> p = payload_of(encode(f));
    return decode_frame(p.data(), p.size());
}

TEST(WireCodec, HelloRoundTrip) {
    Frame f;
    f.type = FrameType::Hello;
    f.version = kWireVersion;
    f.flags = 1;
    f.text = "quickstart";
    f.fingerprint = 0xfeedfacecafebeefull;
    Frame g = round_trip(f);
    EXPECT_EQ(g.type, FrameType::Hello);
    EXPECT_EQ(g.version, kWireVersion);
    EXPECT_EQ(g.flags, 1);
    EXPECT_EQ(g.text, "quickstart");
    EXPECT_EQ(g.fingerprint, 0xfeedfacecafebeefull);
}

TEST(WireCodec, InjectRoundTrip) {
    Frame f;
    f.type = FrameType::Inject;
    f.session = 42;
    f.text = "Restart";
    f.value = -7;
    Frame g = round_trip(f);
    EXPECT_EQ(g.type, FrameType::Inject);
    EXPECT_EQ(g.session, 42u);
    EXPECT_EQ(g.text, "Restart");
    EXPECT_EQ(g.value, -7);
}

TEST(WireCodec, InjectReplyCarriesVerdictAndTicket) {
    Frame f;
    f.type = FrameType::InjectReply;
    f.session = 3;
    f.verdict = static_cast<uint8_t>(reactor::Verdict::Shed);
    f.ticket = 991;
    Frame g = round_trip(f);
    EXPECT_EQ(g.verdict, static_cast<uint8_t>(reactor::Verdict::Shed));
    EXPECT_EQ(g.ticket, 991u);
}

TEST(WireCodec, BlobFramesRoundTrip) {
    std::vector<uint8_t> blob(4096);
    for (size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<uint8_t>(i);
    for (FrameType t : {FrameType::Detached, FrameType::Resume}) {
        Frame f;
        f.type = t;
        f.session = 9;
        f.blob = blob;
        if (t == FrameType::Resume) f.text = "prog";
        Frame g = round_trip(f);
        EXPECT_EQ(g.type, t);
        EXPECT_EQ(g.session, 9u);
        EXPECT_EQ(g.blob, blob);
    }
}

TEST(WireCodec, EveryTypeRoundTripsItsFields) {
    // One representative frame per type; fields not in the type's schema
    // must come back at their defaults (they are not on the wire at all).
    for (uint8_t raw = 1; raw <= 76; ++raw) {
        bool known = (raw >= 1 && raw <= 9) || (raw >= 65 && raw <= 76);
        if (!known) continue;
        Frame f;
        f.type = static_cast<FrameType>(raw);
        f.version = kWireVersion;
        f.flags = 1;
        f.verdict = 2;
        f.session = 7;
        f.ticket = 8;
        f.fingerprint = 9;
        f.value = -10;
        f.a = 11;
        f.b = 12;
        f.text = "t";
        f.blob = {1, 2, 3};
        Frame g = round_trip(f);
        EXPECT_EQ(g.type, f.type) << "type " << int(raw);
        // Re-encoding the decode must be byte-identical (golden property:
        // the codec is its own inverse on the schema'd fields).
        EXPECT_EQ(encode(g), encode(round_trip(g))) << "type " << int(raw);
    }
}

TEST(WireCodec, TruncatedPayloadRejected) {
    Frame f;
    f.type = FrameType::Inject;
    f.session = 1;
    f.text = "event";
    f.value = 5;
    std::vector<uint8_t> p = payload_of(encode(f));
    for (size_t n = 0; n < p.size(); ++n) {
        EXPECT_THROW(decode_frame(p.data(), n), WireError) << "len " << n;
    }
}

TEST(WireCodec, TrailingGarbageRejected) {
    Frame f;
    f.type = FrameType::Ping;
    f.ticket = 4;
    std::vector<uint8_t> p = payload_of(encode(f));
    p.push_back(0);
    EXPECT_THROW(decode_frame(p.data(), p.size()), WireError);
}

TEST(WireCodec, UnknownTypeRejected) {
    for (uint8_t raw : {0, 10, 42, 64, 77, 255}) {
        uint8_t p[1] = {raw};
        EXPECT_THROW(decode_frame(p, 1), WireError) << "type " << int(raw);
    }
}

TEST(WireCodec, CorruptMagicRejected) {
    Frame f;
    f.type = FrameType::Hello;
    f.version = kWireVersion;
    std::vector<uint8_t> p = payload_of(encode(f));
    p[1] ^= 0x20;  // 'E' -> 'e' in the magic
    EXPECT_THROW(decode_frame(p.data(), p.size()), WireError);
}

TEST(WireCodec, HostileLengthRejectedBeforeBuffering) {
    FrameReader r;
    uint32_t huge = kMaxPayload + 1;
    uint8_t prefix[4];
    std::memcpy(prefix, &huge, 4);
    EXPECT_THROW(r.feed(prefix, 4), WireError);
}

TEST(WireCodec, ReaderReassemblesByteByByte) {
    Frame a;
    a.type = FrameType::Output;
    a.session = 5;
    a.text = "v = 7";
    Frame b;
    b.type = FrameType::Pong;
    b.ticket = 17;
    std::vector<uint8_t> stream = encode(a);
    std::vector<uint8_t> bb = encode(b);
    stream.insert(stream.end(), bb.begin(), bb.end());

    FrameReader r;
    std::vector<Frame> got;
    Frame out;
    for (uint8_t byte : stream) {
        r.feed(&byte, 1);
        while (r.next(out)) got.push_back(out);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].type, FrameType::Output);
    EXPECT_EQ(got[0].text, "v = 7");
    EXPECT_EQ(got[1].type, FrameType::Pong);
    EXPECT_EQ(got[1].ticket, 17u);
    EXPECT_EQ(r.buffered(), 0u);
}

// The wire reply byte IS the reactor verdict — one vocabulary, no mapping
// layer to drift. These values are protocol; the test pins them.
TEST(WireCodec, VerdictValuesArePinned) {
    EXPECT_EQ(static_cast<uint8_t>(reactor::Verdict::Accepted), 0);
    EXPECT_EQ(static_cast<uint8_t>(reactor::Verdict::Shed), 1);
    EXPECT_EQ(static_cast<uint8_t>(reactor::Verdict::Retired), 2);
    EXPECT_EQ(static_cast<uint8_t>(reactor::Verdict::UnknownEvent), 3);
    EXPECT_STREQ(reactor::verdict_name(reactor::Verdict::Accepted), "accepted");
    EXPECT_STREQ(reactor::verdict_name(reactor::Verdict::Shed), "shed");
    EXPECT_STREQ(reactor::verdict_name(reactor::Verdict::Retired), "retired");
    EXPECT_STREQ(reactor::verdict_name(reactor::Verdict::UnknownEvent),
                 "unknown-event");
    EXPECT_TRUE(reactor::verdict_valid(3));
    EXPECT_FALSE(reactor::verdict_valid(4));
}

// ---------------------------------------------------------------------------
// 2. SessionMap concurrency (TSan target)
// ---------------------------------------------------------------------------

TEST(SessionMap, OpenLookupCloseRace) {
    SessionMap map;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> hits{0};

    // Io-thread role: resolve injects against whatever exists right now.
    // Each reader does a final full pass after the opener finishes, so the
    // hit count is nonzero even if the opener's burst outruns the spin-up.
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            auto pass = [&] {
                for (SessionId id : map.ids()) {
                    reactor::InstanceId member = 0;
                    if (map.lookup(id, member)) {
                        hits.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            };
            while (!stop.load()) pass();
            // The guaranteed pass: stop is set only after the opener's
            // burst, so the map is populated here even if every racing
            // pass above ran before the first open (single-core boxes).
            pass();
        });
    }
    // Control-thread role: open and close sessions.
    std::thread opener([&] {
        for (int i = 0; i < 2000; ++i) {
            auto st = std::make_unique<SessionState>();
            st->member = static_cast<reactor::InstanceId>(i);
            SessionId id = map.open(std::move(st));
            if (i % 3 == 0) map.close(id);
        }
        stop.store(true);
    });
    opener.join();
    for (auto& th : readers) th.join();
    EXPECT_GT(hits.load(), 0u);
    EXPECT_EQ(map.size(), 2000u - 667u);
}

TEST(SessionMap, OpenWithIdPreservesAndCollides) {
    SessionMap map;
    auto a = std::make_unique<SessionState>();
    EXPECT_TRUE(map.open_with_id(41, std::move(a)));
    auto b = std::make_unique<SessionState>();
    EXPECT_FALSE(map.open_with_id(41, std::move(b)));  // taken
    // Fresh assignment never collides with a reserved id.
    EXPECT_EQ(map.open(std::make_unique<SessionState>()), 42u);
}

// ---------------------------------------------------------------------------
// 3. Loopback server
// ---------------------------------------------------------------------------

const char* const kCounter = R"(
    input int Restart;
    internal void changed;
    int v = 0;
    par do
       loop do
          await 1s;
          v = v + 1;
          emit changed;
       end
    with
       loop do
          v = await Restart;
          emit changed;
       end
    with
       loop do
          await changed;
          _printf("v = %d\n", v);
       end
    end
)";

const char* const kOneShot = R"(
    input int Go;
    int v = await Go;
    _printf("done %d\n", v);
    escape v;
)";

Registry make_registry() {
    Registry reg;
    reg.add("counter", kCounter);
    reg.add("oneshot", kOneShot);
    return reg;
}

struct ServerGuard {
    explicit ServerGuard(ServerConfig cfg, Registry reg = make_registry())
        : server(std::move(reg), cfg) {
        server.start();
    }
    ~ServerGuard() {
        server.request_stop();
        server.wait();
    }
    Server server;
};

TEST(Serve, HandshakeAndWelcomeFingerprint) {
    ServerGuard g({});
    Client c;
    c.connect(g.server.port(), "counter");
    EXPECT_NE(c.fingerprint(), 0u);
    // Pinning the correct fingerprint succeeds.
    Client c2;
    c2.connect(g.server.port(), "counter", false, c.fingerprint());
    c.bye();
    c2.bye();
}

TEST(Serve, HandshakeRejectsWrongVersion) {
    ServerGuard g({});
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(g.server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    Frame hello;
    hello.type = FrameType::Hello;
    hello.version = 99;
    std::vector<uint8_t> bytes = encode(hello);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    // The server must answer Error (mentioning versions) and close.
    FrameReader reader;
    Frame f;
    bool got_error = false;
    uint8_t buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        reader.feed(buf, static_cast<size_t>(n));
        while (reader.next(f)) {
            if (f.type == FrameType::Error) {
                got_error = true;
                EXPECT_NE(f.text.find("version"), std::string::npos) << f.text;
            }
        }
    }
    ::close(fd);
    EXPECT_TRUE(got_error);
}

TEST(Serve, HandshakeRejectsUnknownProgramAndBadFingerprint) {
    ServerGuard g({});
    Client c;
    EXPECT_THROW(c.connect(g.server.port(), "no-such-program"), ClientError);
    Client c2;
    EXPECT_THROW(c2.connect(g.server.port(), "counter", false, 0xdeadbeefull),
                 ClientError);
}

TEST(Serve, OpenInjectAdvanceStreamsOutputs) {
    ServerConfig cfg;
    cfg.workers = 2;
    ServerGuard g(cfg);
    Client c;
    c.connect(g.server.port(), "counter");
    uint64_t s = c.open();
    Frame r = c.inject(s, "Restart", 7);
    EXPECT_EQ(r.verdict, static_cast<uint8_t>(reactor::Verdict::Accepted));
    Frame r2 = c.inject(s, "Restart", 7);
    EXPECT_GT(r2.ticket, r.ticket);  // tickets are the global injection order
    c.advance(2'000'000);  // two timer periods
    c.ping();
    EXPECT_EQ(c.trace_text(s), "v = 7\nv = 7\nv = 8\nv = 9\n");
    c.bye();
}

TEST(Serve, SharedVerdictVocabularyOnTheWire) {
    ServerGuard g({});
    Client c;
    c.connect(g.server.port(), "counter");
    uint64_t s = c.open();
    // Unknown event: the reactor's verdict, unchanged, on the wire.
    Frame r = c.inject(s, "NoSuchEvent", 1);
    EXPECT_EQ(r.verdict, static_cast<uint8_t>(reactor::Verdict::UnknownEvent));
    // Unknown session: Retired (id space says "gone", not "never was").
    Frame r2 = c.inject(777, "Restart", 1);
    EXPECT_EQ(r2.verdict, static_cast<uint8_t>(reactor::Verdict::Retired));
    c.bye();
}

TEST(Serve, SessionStatusTransitionsStream) {
    ServerGuard g({});
    Client c;
    c.connect(g.server.port(), "oneshot");
    uint64_t s = c.open();
    c.inject(s, "Go", 5);
    c.ping();
    EXPECT_EQ(c.trace_text(s), "done 5\n");
    const std::vector<uint8_t>& st = c.statuses(s);
    ASSERT_FALSE(st.empty());
    EXPECT_EQ(st.back(), static_cast<uint8_t>(rt::Engine::Status::Terminated));
    c.bye();
}

TEST(Serve, SpanStreamingOptIn) {
    ServerGuard g({});
    Client c;
    c.connect(g.server.port(), "counter", /*want_spans=*/true);
    uint64_t s = c.open();
    c.inject(s, "Restart", 1);
    c.ping();
    ASSERT_FALSE(c.spans(s).empty());
    // Some reaction (the Restart wake) emitted the internal `changed`; the
    // first span is typically the boot reaction, which emits nothing.
    bool saw_emit = false;
    for (const Frame& span : c.spans(s)) saw_emit = saw_emit || span.b >= 1;
    EXPECT_TRUE(saw_emit);
    // And the no-spans default stays silent.
    Client quiet;
    quiet.connect(g.server.port(), "counter");
    uint64_t q = quiet.open();
    quiet.inject(q, "Restart", 1);
    quiet.ping();
    EXPECT_TRUE(quiet.spans(q).empty());
    c.bye();
    quiet.bye();
}

/// Replays the recorded script through one connection against a fresh
/// server with `workers` shards; returns per-session traces.
std::vector<std::string> replay(size_t workers, size_t sessions) {
    ServerConfig cfg;
    cfg.workers = workers;
    ServerGuard g(cfg);
    Client c;
    c.connect(g.server.port(), "counter");
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < sessions; ++i) ids.push_back(c.open());
    // The recorded script: staggered injects + time, interleaved across
    // sessions — the shape a real fan-in produces.
    for (int step = 0; step < 5; ++step) {
        for (size_t i = 0; i < ids.size(); ++i) {
            c.inject(ids[i], "Restart", static_cast<int64_t>(100 * step + i));
        }
        c.advance(500'000);
    }
    c.ping();
    std::vector<std::string> traces;
    for (uint64_t id : ids) traces.push_back(c.trace_text(id));
    c.bye();
    return traces;
}

TEST(Serve, ReplayDeterminismAcrossWorkerCounts) {
    std::vector<std::string> w1 = replay(1, 6);
    std::vector<std::string> w2 = replay(2, 6);
    std::vector<std::string> w8 = replay(8, 6);
    ASSERT_EQ(w1.size(), w2.size());
    ASSERT_EQ(w1.size(), w8.size());
    for (size_t i = 0; i < w1.size(); ++i) {
        EXPECT_EQ(w1[i], w2[i]) << "session " << i << " diverged at 2 workers";
        EXPECT_EQ(w1[i], w8[i]) << "session " << i << " diverged at 8 workers";
        EXPECT_FALSE(w1[i].empty());
    }
}

TEST(Serve, DetachResumeMigratesAcrossServers) {
    // Control: one uninterrupted session.
    ServerGuard control({});
    Client cc;
    cc.connect(control.server.port(), "counter");
    uint64_t cs = cc.open();
    cc.inject(cs, "Restart", 10);
    cc.advance(1'000'000);
    cc.inject(cs, "Restart", 50);
    cc.advance(1'000'000);
    cc.ping();
    std::string expect = cc.trace_text(cs);
    cc.bye();

    // Migrated: same script, but the session changes servers halfway.
    ServerGuard a({});
    ServerGuard b({});
    Client ca;
    ca.connect(a.server.port(), "counter");
    uint64_t s1 = ca.open();
    ca.inject(s1, "Restart", 10);
    ca.advance(1'000'000);
    ca.ping();
    std::string first_half = ca.trace_text(s1);
    std::vector<uint8_t> blob = ca.detach(s1);
    ASSERT_FALSE(blob.empty());
    ca.bye();

    Client cb;
    cb.connect(b.server.port(), "counter");
    uint64_t s2 = cb.resume(0, blob);
    cb.inject(s2, "Restart", 50);
    cb.advance(1'000'000);
    cb.ping();
    std::string second_half = cb.trace_text(s2);
    cb.bye();

    EXPECT_EQ(first_half + second_half, expect);
}

TEST(Serve, DrainCheckpointsAndRestartResumesByteIdentical) {
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "ceu_serve_drain_test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    // Control: uninterrupted run.
    ServerGuard control({});
    Client cc;
    cc.connect(control.server.port(), "counter");
    uint64_t cs = cc.open();
    cc.inject(cs, "Restart", 3);
    cc.advance(1'000'000);
    cc.inject(cs, "Restart", 30);
    cc.advance(1'000'000);
    cc.ping();
    std::string expect = cc.trace_text(cs);
    cc.bye();

    uint64_t drained_id = 0;
    std::string first_half;
    {
        ServerConfig cfg;
        cfg.drain_dir = dir.string();
        ServerGuard g(cfg);
        Client c;
        c.connect(g.server.port(), "counter");
        drained_id = c.open();
        c.inject(drained_id, "Restart", 3);
        c.advance(1'000'000);
        c.ping();
        first_half = c.trace_text(drained_id);
        // SIGTERM path: request_stop drains live sessions to disk. The
        // client just vanishes (no Close) — the session must be drained.
        c.disconnect();
    }  // ~ServerGuard: request_stop + wait
    ASSERT_TRUE(fs::exists(dir / "MANIFEST"));

    // Restart from the drain directory; resume the pre-drain id.
    ServerConfig cfg2;
    cfg2.resume_dir = dir.string();
    ServerGuard g2(cfg2);
    Client c2;
    c2.connect(g2.server.port(), "counter");
    uint64_t rid = c2.resume(drained_id);
    EXPECT_EQ(rid, drained_id);  // id preserved so traces line up
    c2.inject(rid, "Restart", 30);
    c2.advance(1'000'000);
    c2.ping();
    std::string second_half = c2.trace_text(rid);
    c2.bye();

    EXPECT_EQ(first_half + second_half, expect);
    fs::remove_all(dir);
}

TEST(Serve, ConnectionDeathOrphansThenReattachResumes) {
    ServerGuard g({});
    uint64_t id = 0;
    {
        Client c;
        c.connect(g.server.port(), "counter");
        id = c.open();
        c.inject(id, "Restart", 4);
        c.ping();
        EXPECT_EQ(c.trace_text(id), "v = 4\n");
        c.disconnect();  // abrupt: no Bye, no Close
    }
    // The session survives, orphaned, and keeps reacting; outputs buffer.
    Client c2;
    c2.connect(g.server.port(), "counter");
    c2.advance(1'000'000);  // fires the orphan's timer: "v = 5" buffered
    uint64_t back = c2.resume(id);  // live reattach
    EXPECT_EQ(back, id);
    c2.ping();
    EXPECT_EQ(c2.trace_text(id), "v = 5\n");
    // Still the same session: state carried across the reattach.
    c2.inject(id, "Restart", 9);
    c2.ping();
    EXPECT_EQ(c2.trace_text(id), "v = 5\nv = 9\n");
    c2.bye();
}

TEST(Serve, IoThreadsPreserveSemantics) {
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.io_threads = 2;
    ServerGuard g(cfg);
    Client c;
    c.connect(g.server.port(), "counter");
    uint64_t s = c.open();
    c.inject(s, "Restart", 7);
    c.advance(1'000'000);
    c.ping();
    EXPECT_EQ(c.trace_text(s), "v = 7\nv = 8\n");
    c.bye();
}

TEST(Serve, ShutdownAnnouncesToConnectedClients) {
    auto g = std::make_unique<ServerGuard>(ServerConfig{});
    Client c;
    c.connect(g->server.port(), "counter");
    uint64_t s = c.open();
    c.inject(s, "Restart", 1);
    c.ping();
    g->server.request_stop();
    g->server.wait();
    // The Shutdown frame is flushed before the server closes its side.
    c.bye();  // drains to EOF
    EXPECT_TRUE(c.server_shutdown());
    g.reset();
}

}  // namespace
