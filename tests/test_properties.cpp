// Property tests tying the three pillars of the paper together:
//
//  1. *Soundness of the temporal analysis*: a program the DFA accepts must
//     produce the same observable trace under every legal scheduler
//     serialization (we check FIFO vs LIFO tie-breaking among
//     equal-priority tracks) and for every input script.
//  2. *Meaningfulness of the analysis*: programs the DFA refuses really do
//     diverge under different serializations.
//  3. *The stack policy for internal events* (§2.2) is load-bearing: the
//     queue-policy ablation loses updates (glitches) and re-introduces
//     dataflow cycles on mutual dependencies.
//  4. *Bounded reactions* (§2.5): every reaction chain executes a number of
//     instructions bounded by a static function of the program.
#include <gtest/gtest.h>

#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "env/driver.hpp"

namespace ceu {
namespace {

using env::Script;
using env::ScriptItem;
using rt::Engine;
using rt::EngineOptions;
using rt::Value;

struct RunResult {
    std::vector<std::string> trace;
    Value result = Value::integer(0);
    Engine::Status status = Engine::Status::Loaded;
    uint64_t max_reaction = 0;
};

RunResult run_with(const flat::CompiledProgram& cp, const Script& script,
                   EngineOptions opt) {
    rt::CBindings bindings = env::make_standard_bindings();
    Engine eng(cp, bindings, opt);
    RunResult r;
    eng.on_trace = [&r](const std::string& line) { r.trace.push_back(line); };
    eng.go_init();
    Micros clock = 0;
    for (const ScriptItem& item : script.items()) {
        if (eng.status() != Engine::Status::Running) break;
        switch (item.kind) {
            case ScriptItem::Kind::Event:
                eng.go_event_by_name(item.event, item.value);
                break;
            case ScriptItem::Kind::Advance:
                clock += item.us;
                eng.go_time(clock);
                break;
            case ScriptItem::Kind::AsyncIdle:
                for (int i = 0; i < 10'000'000 && eng.go_async(); ++i) {}
                break;
            case ScriptItem::Kind::Crash:
                eng.reset();
                eng.go_init();
                break;
        }
    }
    while (eng.status() == Engine::Status::Running && eng.go_async()) {}
    r.result = eng.result();
    r.status = eng.status();
    r.max_reaction = eng.max_reaction_instructions();
    return r;
}

// ---------------------------------------------------------------------------
// 1. DFA-accepted programs are serialization-invariant.
// ---------------------------------------------------------------------------

struct Corpus {
    const char* name;
    const char* source;
    Script script;
};

std::vector<Corpus> corpus() {
    std::vector<Corpus> out;
    out.push_back({"quickstart", demos::kQuickstart,
                   Script().advance(kSec).event("Restart", 7).advance(2 * kSec)});
    out.push_back({"temperature", demos::kTemperature,
                   Script().event("SetCelsius", 100).event("SetFahrenheit", -40)});
    out.push_back({"fanin", R"(
        input void A;
        internal void e, e2;
        int v = 0;
        par do
           loop do await A; emit e; end
        with
           loop do await e; v = v + 1; emit e2; end
        with
           loop do await e2; _trace("obs", v); end
        end
    )",
                   Script().event("A").event("A").event("A")});
    out.push_back({"watchdog", R"(
        input void A, B;
        loop do
           par/or do
              await A; await B; _trace("done"); break;
           with
              await 100ms; _trace("timeout");
           end
        end
        return 0;
    )",
                   Script().advance(350 * kMs).event("A").event("B")});
    out.push_back({"same-event-disjoint", R"(
        input void A, Show;
        int v, w;
        par do
           loop do await A; v = v + 1; end
        with
           loop do await A; w = w + 2; end
        with
           loop do await Show; _trace("v", v, "w", w); end
        end
    )",
                   Script().event("A").event("A").event("Show")});
    out.push_back({"equal-timers-disjoint", R"(
        int v, w;
        par/and do
           await 100ms; v = 1;
        with
           await 100ms; w = 2;
        end
        _trace("v+w", v + w);
        return v + w;
    )",
                   Script().advance(kSec)});
    return out;
}

class SerializationInvariance : public ::testing::TestWithParam<size_t> {};

TEST_P(SerializationInvariance, FifoAndLifoTracesAgree) {
    Corpus c = corpus()[GetParam()];
    flat::CompiledProgram cp = flat::compile(c.source, c.name);

    // Precondition: the temporal analysis accepts the program.
    dfa::Dfa d = dfa::Dfa::build(cp);
    ASSERT_TRUE(d.deterministic()) << c.name << ":\n" << d.report();

    EngineOptions fifo;
    EngineOptions lifo;
    lifo.tie_break = EngineOptions::TieBreak::Lifo;
    RunResult a = run_with(cp, c.script, fifo);
    RunResult b = run_with(cp, c.script, lifo);
    EXPECT_EQ(a.trace, b.trace) << c.name;
    EXPECT_EQ(a.result.as_int(), b.result.as_int()) << c.name;
    EXPECT_EQ(a.status, b.status) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, SerializationInvariance,
                         ::testing::Range<size_t>(0, corpus().size()),
                         [](const auto& info) {
                             std::string n = corpus()[info.param].name;
                             for (char& ch : n) {
                                 if (ch == '-') ch = '_';
                             }
                             return n;
                         });

// ---------------------------------------------------------------------------
// 2. Refused programs genuinely diverge.
// ---------------------------------------------------------------------------

TEST(Meaningfulness, RefusedProgramDivergesUnderTieBreak) {
    const char* kRace = R"(
        int v;
        par/and do
            v = 1;
        with
            v = 2;
        end
        return v;
    )";
    flat::CompiledProgram cp = flat::compile(kRace);
    ASSERT_FALSE(dfa::Dfa::build(cp).deterministic());

    EngineOptions fifo;
    EngineOptions lifo;
    lifo.tie_break = EngineOptions::TieBreak::Lifo;
    RunResult a = run_with(cp, {}, fifo);
    RunResult b = run_with(cp, {}, lifo);
    // FIFO runs branch 1 then branch 2 (v = 2); LIFO the other way round.
    EXPECT_EQ(a.result.as_int(), 2);
    EXPECT_EQ(b.result.as_int(), 1);
}

TEST(Meaningfulness, RefusedEmitRaceChangesObservations) {
    const char* kEmitRace = R"(
        input void A;
        internal void e;
        int seen = 0;
        par do
           loop do await A; emit e; end
        with
           loop do await A; await e; seen = seen + 1; end
        with
           loop do await e; _trace(seen); end
        end
    )";
    flat::CompiledProgram cp = flat::compile(kEmitRace);
    ASSERT_FALSE(dfa::Dfa::build(cp).deterministic());
    // Whether the second trail's `await e` catches the first trail's emit
    // depends on the serialization; under FIFO trail 1 emits before trail 2
    // reaches its await, so `seen` stays 0 on the first A.
    Script s = Script().event("A").event("A").event("A");
    EngineOptions fifo;
    EngineOptions lifo;
    lifo.tie_break = EngineOptions::TieBreak::Lifo;
    RunResult a = run_with(cp, s, fifo);
    RunResult b = run_with(cp, s, lifo);
    EXPECT_NE(a.trace, b.trace);
}

// ---------------------------------------------------------------------------
// 3. The stack policy is load-bearing (§2.2 ablation).
// ---------------------------------------------------------------------------

TEST(StackPolicyAblation, QueuePolicyLosesSequentialUpdates) {
    const char* kChain = R"(
        int v1, v2;
        internal void v1_evt;
        par do
           loop do
              await v1_evt;
              v2 = v1 + 1;
              _trace(v2);
           end
        with
           v1 = 10;
           emit v1_evt;
           v1 = 15;
           emit v1_evt;
           await forever;
        end
    )";
    flat::CompiledProgram cp = flat::compile(kChain);

    RunResult stack = run_with(cp, {}, EngineOptions{});
    // Paper semantics: each emit fully propagates -> 11 then 16.
    EXPECT_EQ(stack.trace, (std::vector<std::string>{"11", "16"}));

    EngineOptions q;
    q.internal_events = EngineOptions::InternalEvents::Queue;
    RunResult queued = run_with(cp, {}, q);
    // Broadcast-and-continue: the dependent runs after BOTH assignments;
    // the second emit finds the gate already consumed. One update is lost
    // and the intermediate value 11 is never observed — a glitch.
    EXPECT_EQ(queued.trace, (std::vector<std::string>{"16"}));
}

TEST(StackPolicyAblation, QueuePolicyReintroducesDataflowCycles) {
    const char* kMutual = R"(
        int tc, tf;
        internal void tc_evt, tf_evt;
        par do
           loop do
              await tc_evt;
              tf = 9 * tc / 5 + 32;
              emit tf_evt;
           end
        with
           loop do
              await tf_evt;
              tc = 5 * (tf - 32) / 9;
              emit tc_evt;
           end
        with
           tc = 100;
           emit tc_evt;
           await forever;
        end
    )";
    flat::CompiledProgram cp = flat::compile(kMutual);

    // Paper semantics: converges within one reaction (no cycle).
    RunResult stack = run_with(cp, {}, EngineOptions{});
    EXPECT_EQ(stack.status, Engine::Status::Running);

    // Queue ablation: tc_evt and tf_evt ping-pong forever inside the boot
    // reaction; the engine's budget turns the hang into an error.
    EngineOptions q;
    q.internal_events = EngineOptions::InternalEvents::Queue;
    q.reaction_budget = 100'000;
    rt::CBindings bindings = env::make_standard_bindings();
    Engine eng(cp, bindings, q);
    EXPECT_THROW(eng.go_init(), rt::RuntimeError);
}

// ---------------------------------------------------------------------------
// 4. Bounded reactions (§2.5), measured.
// ---------------------------------------------------------------------------

class BoundedReactions : public ::testing::TestWithParam<size_t> {};

TEST_P(BoundedReactions, ReactionInstructionsStayUnderStaticBound) {
    Corpus c = corpus()[GetParam()];
    flat::CompiledProgram cp = flat::compile(c.source, c.name);
    RunResult r = run_with(cp, c.script, EngineOptions{});
    // A reaction can execute each instruction at most once per trail
    // activation; gates+1 bounds simultaneous activations, and the emit
    // chain re-runs at most once per emit site. A loose static bound:
    uint64_t bound =
        cp.flat.code.size() * (cp.flat.gates.size() + 2) + cp.flat.code.size();
    EXPECT_LE(r.max_reaction, bound) << c.name;
    EXPECT_GT(r.max_reaction, 0u);
}

INSTANTIATE_TEST_SUITE_P(Corpus, BoundedReactions,
                         ::testing::Range<size_t>(0, corpus().size()));

// ---------------------------------------------------------------------------
// 5. Pseudo-random input scripts: determinism end to end.
// ---------------------------------------------------------------------------

class RandomScripts : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomScripts, QuickstartIsAPureFunctionOfItsInputs) {
    uint32_t seed = GetParam();
    // xorshift-driven script over {advance, Restart} — the reactive premise
    // says the timings are irrelevant, only the order matters (§2.8).
    auto next = [state = seed]() mutable {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        return state;
    };
    Script s;
    for (int i = 0; i < 40; ++i) {
        uint32_t r = next();
        if (r % 3 == 0) {
            s.event("Restart", static_cast<int64_t>(r % 100));
        } else {
            s.advance((r % 2000) * kMs);
        }
    }
    flat::CompiledProgram cp = flat::compile(demos::kQuickstart);
    EngineOptions fifo;
    EngineOptions lifo;
    lifo.tie_break = EngineOptions::TieBreak::Lifo;
    RunResult a = run_with(cp, s, fifo);
    RunResult b = run_with(cp, s, fifo);
    RunResult c = run_with(cp, s, lifo);
    EXPECT_EQ(a.trace, b.trace);  // replay
    EXPECT_EQ(a.trace, c.trace);  // serialization invariance
    EXPECT_FALSE(a.trace.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScripts,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u, 0xdeadbeefu));

}  // namespace
}  // namespace ceu
