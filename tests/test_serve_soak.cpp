// Serve soak: a session fleet under a seeded kill/reconnect storm.
//
// One server, a fan of client connections, CEU_SERVE_SOAK_SESSIONS sessions
// (default 400 for the tier-1 run; the nightly CI job sets 10000). A seeded
// RNG repeatedly kills whole connections abruptly — no Bye, no Close — which
// orphans every session they carried. Orphans must keep reacting (injects
// addressed to them from surviving connections buffer their outputs), and a
// reconnect + Resume must reattach every single one: the gate is 100%
// resume, with the buffered outputs delivered intact and the session fully
// live afterwards.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace ceu::serve;

const char* const kEcho = R"(
    input int Set;
    int v = 0;
    loop do
       v = await Set;
       _printf("v = %d\n", v);
    end
)";

size_t soak_sessions() {
    if (const char* env = std::getenv("CEU_SERVE_SOAK_SESSIONS")) {
        long n = std::atol(env);
        if (n > 0) return static_cast<size_t>(n);
    }
    return 400;
}

TEST(ServeSoak, KillReconnectStormResumesEverySession) {
    const size_t kSessions = soak_sessions();
    const size_t kConns = 8;
    const int kRounds = 5;

    Registry reg;
    reg.add("echo", kEcho);
    ServerConfig cfg;
    cfg.workers = 4;
    Server server(std::move(reg), cfg);
    server.start();

    // The driver connection survives every storm round; it addresses
    // injects at orphaned sessions to prove they stay live while detached.
    Client driver;
    driver.connect(server.port(), "echo");

    std::vector<std::unique_ptr<Client>> conns(kConns);
    std::vector<std::vector<uint64_t>> by_conn(kConns);
    for (size_t i = 0; i < kConns; ++i) {
        conns[i] = std::make_unique<Client>();
        conns[i]->connect(server.port(), "echo");
    }
    for (size_t s = 0; s < kSessions; ++s) {
        size_t c = s % kConns;
        by_conn[c].push_back(conns[c]->open());
    }
    ASSERT_EQ(server.live_sessions(), kSessions);

    std::mt19937_64 rng(0x5eedu);
    size_t resumed_total = 0;
    for (int round = 0; round < kRounds; ++round) {
        // Pick victims: roughly half the connections die this round.
        std::vector<size_t> victims;
        for (size_t c = 0; c < kConns; ++c) {
            if (rng() % 2 == 0) victims.push_back(c);
        }
        if (victims.empty()) victims.push_back(rng() % kConns);

        for (size_t c : victims) conns[c]->disconnect();  // abrupt

        // Orphans keep working: inject into each from the driver. The
        // output lands in the orphan's buffer, owed to whoever reattaches.
        for (size_t c : victims) {
            for (uint64_t id : by_conn[c]) {
                int64_t v = round * 1'000'000 + static_cast<int64_t>(id);
                Frame r = driver.inject(id, "Set", v);
                ASSERT_EQ(r.verdict,
                          static_cast<uint8_t>(ceu::reactor::Verdict::Accepted))
                    << "round " << round << " session " << id;
            }
        }
        driver.ping();  // everything injected has reacted (and buffered)

        // Reconnect + resume: every orphan must come back, with the
        // buffered output delivered.
        for (size_t c : victims) {
            conns[c] = std::make_unique<Client>();
            conns[c]->connect(server.port(), "echo");
            for (uint64_t id : by_conn[c]) {
                uint64_t back = conns[c]->resume(id);
                ASSERT_EQ(back, id);
                ++resumed_total;
            }
            conns[c]->ping();
            for (uint64_t id : by_conn[c]) {
                int64_t v = round * 1'000'000 + static_cast<int64_t>(id);
                EXPECT_EQ(conns[c]->trace_text(id),
                          "v = " + std::to_string(v) + "\n")
                    << "round " << round << " session " << id;
            }
        }
    }

    // 100% resume: nothing was lost to the storm.
    EXPECT_GT(resumed_total, 0u);
    EXPECT_EQ(server.counters().sessions_resumed.load(), resumed_total);
    EXPECT_EQ(server.live_sessions(), kSessions);

    for (auto& c : conns) c->bye();
    driver.bye();
    server.request_stop();
    server.wait();
}

}  // namespace
