// Conformance suite: the seeded generator + differential harness
// (src/testgen/) run as a fixed-seed ctest target. Eight 25-seed shards
// give the required >= 200 generated programs; gtest_discover_tests
// registers each shard as its own ctest entry, so `ctest -L conformance
// -j` runs them in parallel.
//
// The contract under test (paper §2.6): whenever the DFA reports OK and
// complete, the interpreter under FIFO and LIFO tie-breaking and the
// compiled cgen output must produce identical observable traces, results
// and statuses. DFA-refused programs are never claimed deterministic.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/lint.hpp"
#include "codegen/flatten.hpp"
#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "env/driver.hpp"
#include "parser/parser.hpp"
#include "testgen/differ.hpp"
#include "testgen/fuzz.hpp"
#include "testgen/generator.hpp"
#include "testgen/shrink.hpp"

namespace ceu {
namespace {

using testgen::DiffResult;

int count_lines(const std::string& s) {
    int n = 0;
    for (char c : s) n += (c == '\n');
    return n;
}

std::string describe_failures(const testgen::FuzzReport& rep) {
    std::ostringstream os;
    for (const auto& f : rep.failed) {
        os << "seed " << f.seed << " [" << DiffResult::kind_name(f.kind) << "] "
           << f.detail << "\n--- shrunk program ---\n"
           << f.source << "--- script ---\n"
           << f.script_text << "\n";
    }
    return os.str();
}

/// One 25-seed shard of the 200-program fixed-seed conformance run.
void run_shard(uint64_t first_seed) {
    testgen::FuzzOptions opt;
    opt.seed = first_seed;
    opt.count = 25;
    testgen::FuzzReport rep = testgen::run_fuzz(opt);
    EXPECT_EQ(rep.failures, 0) << describe_failures(rep);
    EXPECT_EQ(rep.total, 25);
    // Every failing case must have been shrunk to a small reproducer
    // (acceptance bar: <= 25 lines of program).
    for (const auto& f : rep.failed) {
        EXPECT_LE(count_lines(f.source), 25)
            << "shrinker left a big reproducer for seed " << f.seed;
    }
}

TEST(ConformanceShard, Seeds000) { run_shard(0); }
TEST(ConformanceShard, Seeds025) { run_shard(25); }
TEST(ConformanceShard, Seeds050) { run_shard(50); }
TEST(ConformanceShard, Seeds075) { run_shard(75); }
TEST(ConformanceShard, Seeds100) { run_shard(100); }
TEST(ConformanceShard, Seeds125) { run_shard(125); }
TEST(ConformanceShard, Seeds150) { run_shard(150); }
TEST(ConformanceShard, Seeds175) { run_shard(175); }

// ---------------------------------------------------------------------------
// Generator properties.
// ---------------------------------------------------------------------------

TEST(Generator, SameSeedIsByteIdentical) {
    for (uint64_t seed : {0ULL, 1ULL, 42ULL, 9999ULL}) {
        testgen::GenCase a = testgen::generate(seed);
        testgen::GenCase b = testgen::generate(seed);
        EXPECT_EQ(a.source, b.source) << "seed " << seed;
        EXPECT_EQ(a.script_text, b.script_text) << "seed " << seed;
    }
}

TEST(Generator, DifferentSeedsDiffer) {
    EXPECT_NE(testgen::generate(1).source, testgen::generate(2).source);
}

TEST(Generator, ProgramsAreWellFormedByConstruction) {
    // A wide band of seeds all pass the frontend, including the §2.5
    // bounded-execution check (every loop body awaits).
    for (uint64_t seed = 5000; seed < 5100; ++seed) {
        testgen::GenCase gc = testgen::generate(seed);
        flat::CompiledProgram cp;
        Diagnostics diags;
        EXPECT_TRUE(flat::compile_checked(gc.source, &cp, diags, "<gen>"))
            << "seed " << seed << ":\n"
            << diags.str() << "\n"
            << gc.source;
    }
}

TEST(Generator, RenderedSourceRoundTrips) {
    // print -> parse -> print is a fixpoint (the shrinker depends on it).
    for (uint64_t seed = 0; seed < 40; ++seed) {
        testgen::GenCase gc = testgen::generate(seed);
        Diagnostics diags;
        ast::Program reparsed = parse_source(gc.source, diags, "<roundtrip>");
        ASSERT_TRUE(diags.ok()) << "seed " << seed << "\n" << gc.source;
        EXPECT_EQ(testgen::render(reparsed), gc.source) << "seed " << seed;
    }
}

TEST(Generator, ConflictBiasProducesBothVerdicts) {
    // The DFA must see both accepted and refused programs, or the harness
    // only ever exercises half the contract.
    int ok = 0;
    int refused = 0;
    for (uint64_t seed = 0; seed < 100; ++seed) {
        testgen::GenCase gc = testgen::generate(seed);
        flat::CompiledProgram cp;
        Diagnostics diags;
        ASSERT_TRUE(flat::compile_checked(gc.source, &cp, diags, "<gen>")) << gc.source;
        dfa::Dfa d = dfa::Dfa::build(cp);
        // Refusals come from the deliberate resource-sharing bias OR from
        // honest timer collisions (same-deadline block exits and returns
        // race; see Conflict::Kind::Escape) — both verdicts must occur.
        if (!d.deterministic()) {
            ++refused;
        } else {
            ++ok;
        }
    }
    EXPECT_GT(ok, 50);
    EXPECT_GT(refused, 5);
}

// ---------------------------------------------------------------------------
// Shrinker.
// ---------------------------------------------------------------------------

TEST(Shrink, MinimizesWhilePreservingTheVerdict) {
    // Find a refused seed, then shrink with "still refused" as the oracle:
    // the result must be smaller (or equal) and still refused. This
    // exercises the exact machinery a cgen divergence would go through.
    for (uint64_t seed = 0; seed < 200; ++seed) {
        testgen::GenCase gc = testgen::generate(seed);
        testgen::DiffOptions dopt;
        dopt.run_cgen = false;  // DFA + tie-break only: shrinking is O(attempts)
        DiffResult r = testgen::run_differential(gc.source, gc.script, dopt);
        if (r.kind != DiffResult::Kind::DfaRefused) continue;

        testgen::ShrinkOptions sopt;
        sopt.diff = dopt;
        testgen::ShrinkResult s =
            testgen::shrink(gc.source, gc.script, DiffResult::Kind::DfaRefused, sopt);
        EXPECT_LE(s.source.size(), gc.source.size());
        EXPECT_GT(s.removed_stmts + s.removed_items, 0)
            << "nothing shrank for seed " << seed;
        DiffResult after = testgen::run_differential(s.source, s.script, dopt);
        EXPECT_EQ(after.kind, DiffResult::Kind::DfaRefused)
            << "shrinking changed the verdict for seed " << seed << "\n"
            << s.source;
        return;  // one refused seed is enough
    }
    FAIL() << "no DFA-refused seed found in [0, 200)";
}

TEST(Shrink, RejectsNonReproducingInput) {
    // An agreeing pair "shrunk" against a failure kind comes back unshrunk.
    testgen::GenCase gc = testgen::generate(3);
    testgen::ShrinkOptions sopt;
    sopt.diff.run_cgen = false;
    testgen::ShrinkResult s =
        testgen::shrink(gc.source, gc.script, DiffResult::Kind::TieBreakDiverged, sopt);
    EXPECT_EQ(s.source, gc.source);
    EXPECT_EQ(s.removed_stmts, 0);
    EXPECT_EQ(s.attempts, 1);
}

// ---------------------------------------------------------------------------
// Corpus: the format, the checked-in reproducers, and the demo programs.
// ---------------------------------------------------------------------------

TEST(Corpus, FormatRoundTrips) {
    testgen::CorpusCase c;
    c.source = "input void A;\nawait A;\nreturn 1;\n";
    c.script_text = "E A 0\n";
    c.kind = "cgen-diverged";
    c.seed = 1234;
    testgen::CorpusCase back;
    ASSERT_TRUE(testgen::corpus_parse(testgen::corpus_format(c), &back));
    EXPECT_EQ(back.source, c.source);
    EXPECT_EQ(back.script_text, c.script_text);
    EXPECT_EQ(back.kind, c.kind);
    EXPECT_EQ(back.seed, c.seed);
}

/// Every corpus file is a once-diverging pair that must now conform: after
/// the bug it witnessed was fixed, the differ may report Agree or a DFA
/// verdict, but never a failure again. One test instance per file.
std::vector<std::string> corpus_files() {
    std::vector<std::string> out;
    std::filesystem::path dir = std::filesystem::path(CEU_SOURCE_DIR) / "tests" / "corpus";
    if (std::filesystem::exists(dir)) {
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            if (entry.path().extension() == ".ceu") out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, StaysFixed) {
    std::ifstream f(GetParam());
    ASSERT_TRUE(f.is_open()) << GetParam();
    std::stringstream ss;
    ss << f.rdbuf();
    testgen::CorpusCase c;
    ASSERT_TRUE(testgen::corpus_parse(ss.str(), &c)) << GetParam();
    Diagnostics diags;
    env::Script script;
    ASSERT_TRUE(env::Script::parse(c.script_text, &script, diags)) << GetParam();
    DiffResult r = testgen::run_differential(c.source, script);
    EXPECT_FALSE(r.failure())
        << GetParam() << " regressed: " << DiffResult::kind_name(r.kind) << " " << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplay, ::testing::ValuesIn(corpus_files()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                             std::string n = std::filesystem::path(info.param).stem();
                             for (char& ch : n) {
                                 if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                             }
                             return n;
                         });

TEST(Corpus, DirectoryIsNotEmpty) { EXPECT_FALSE(corpus_files().empty()); }

/// Satellite: the hand-written demo corpus through the full differ. The
/// `_trace`-based demos skip the cgen leg (the C harness has no `_trace`
/// binding); tie-break parity and the DFA verdict still apply.
TEST(Corpus, DemoProgramsConform) {
    struct Demo {
        const char* name;
        std::string source;
        env::Script script;
    };
    std::vector<Demo> demos = {
        {"quickstart", demos::kQuickstart,
         env::Script().advance(kSec).event("Restart", 7).advance(2 * kSec)},
        {"temperature", demos::kTemperature,
         env::Script().event("SetCelsius", 100).event("SetFahrenheit", -40)},
        {"watchdog", R"(
            input void A, B;
            loop do
               par/or do
                  await A; await B; _printf("done\n"); break;
               with
                  await 100ms; _printf("timeout\n");
               end
            end
            return 0;
         )",
         env::Script().advance(350 * kMs).event("A").event("B")},
        {"fanin", R"(
            input void A;
            internal void e, e2;
            int v = 0;
            par do
               loop do await A; emit e; end
            with
               loop do await e; v = v + 1; emit e2; end
            with
               loop do await e2; _printf("obs %ld\n", v); end
            end
         )",
         env::Script().event("A").event("A").event("A")},
    };
    for (const auto& d : demos) {
        testgen::DiffOptions opt;
        opt.run_cgen = d.source.find("_trace") == std::string::npos;
        DiffResult r = testgen::run_differential(d.source, d.script, opt);
        EXPECT_EQ(r.kind, DiffResult::Kind::Agree)
            << d.name << ": " << DiffResult::kind_name(r.kind) << " " << r.detail;
    }
}

// ---------------------------------------------------------------------------
// Satellite: rt::TimerWheel residual-delta compensation (§2.4), driven by
// generated timing chains instead of hand-picked demos.
// ---------------------------------------------------------------------------

struct InterpOutcome {
    std::vector<std::string> trace;
    rt::Engine::Status status = rt::Engine::Status::Loaded;
    int64_t result = 0;
};

InterpOutcome run_interp(const std::string& source, const env::Script& script) {
    flat::CompiledProgram cp = flat::compile(source);
    env::Driver d(cp);
    InterpOutcome out;
    out.status = d.run(script);
    out.trace = d.trace();
    out.result = d.engine().result().as_int();
    return out;
}

TEST(TimerResidual, FiftyPlusFortyNineTerminatesAtNinetyNine) {
    // The paper's own example: sequential 50ms+49ms awaits complete before
    // a concurrent 100ms — i.e. after exactly 99ms, not 100ms.
    const std::string src = "await 50ms; await 49ms; return 1;";
    EXPECT_EQ(run_interp(src, env::Script().advance(98 * kMs)).status,
              rt::Engine::Status::Running);
    EXPECT_EQ(run_interp(src, env::Script().advance(99 * kMs)).status,
              rt::Engine::Status::Terminated);
}

TEST(TimerResidual, GeneratedChainsTerminateExactlyAtTotal) {
    for (uint64_t seed = 0; seed < 15; ++seed) {
        testgen::TimingChain chain = testgen::timing_chain(seed);
        ASSERT_GT(chain.total, 0) << "seed " << seed;
        // One microsecond short: the final await is still pending.
        InterpOutcome just_short =
            run_interp(chain.source, env::Script().advance(chain.total - 1));
        EXPECT_EQ(just_short.status, rt::Engine::Status::Running)
            << "seed " << seed << " terminated early\n"
            << chain.source;
        // Exactly at the total: terminated, one line per segment, the
        // result is the segment count.
        InterpOutcome exact = run_interp(chain.source, env::Script().advance(chain.total));
        EXPECT_EQ(exact.status, rt::Engine::Status::Terminated)
            << "seed " << seed << "\n"
            << chain.source;
        EXPECT_EQ(exact.trace.size(), chain.durations.size()) << "seed " << seed;
        EXPECT_EQ(exact.result, static_cast<int64_t>(chain.durations.size()))
            << "seed " << seed;
    }
}

TEST(TimerResidual, ChainsAreAdvanceGranularityInvariant) {
    // Feeding time in awkward 7ms slices must land on exactly the same
    // observable behaviour as one big advance — the residual delta of each
    // expiry carries over (§2.4).
    for (uint64_t seed = 0; seed < 8; ++seed) {
        testgen::TimingChain chain = testgen::timing_chain(seed);
        env::Script sliced;
        for (Micros fed = 0; fed < chain.total; fed += 7 * kMs) {
            sliced.advance(std::min<Micros>(7 * kMs, chain.total - fed));
        }
        InterpOutcome a = run_interp(chain.source, sliced);
        InterpOutcome b = run_interp(chain.source, env::Script().advance(chain.total));
        EXPECT_EQ(a.status, rt::Engine::Status::Terminated) << "seed " << seed;
        EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
        EXPECT_EQ(a.result, b.result) << "seed " << seed;
    }
}

TEST(TimerResidual, ChainsAgreeWithCompiledC) {
    // The cgen runtime implements the same residual compensation: full
    // differential check on a few generated chains, sliced awkwardly.
    for (uint64_t seed = 0; seed < 3; ++seed) {
        testgen::TimingChain chain = testgen::timing_chain(seed);
        env::Script script;
        for (Micros fed = 0; fed < chain.total; fed += 13 * kMs) {
            script.advance(std::min<Micros>(13 * kMs, chain.total - fed));
        }
        DiffResult r = testgen::run_differential(chain.source, script);
        EXPECT_EQ(r.kind, DiffResult::Kind::Agree)
            << "seed " << seed << ": " << DiffResult::kind_name(r.kind) << " " << r.detail
            << "\n"
            << chain.source;
    }
}

// ---------------------------------------------------------------------------
// Satellite: the lint passes over machine-generated programs (they had
// only ever seen hand-written ones). No crashes, no false uninit-reads.
// ---------------------------------------------------------------------------

TEST(LintRobustness, GeneratedCorpusLintsCleanly) {
    for (uint64_t seed = 0; seed < 80; ++seed) {
        testgen::GenCase gc = testgen::generate(seed);
        flat::CompiledProgram cp;
        Diagnostics diags;
        ASSERT_TRUE(flat::compile_checked(gc.source, &cp, diags, "<gen>")) << gc.source;
        std::vector<analysis::Finding> findings = analysis::run_lints(cp);
        // Every generated variable is initialized at its declaration, so
        // any uninit-read finding is a false positive by construction.
        for (const analysis::Finding& f : findings) {
            EXPECT_NE(f.pass, "uninit-read")
                << "seed " << seed << ": false positive: " << f.message << "\n"
                << gc.source;
        }
    }
}

// ---------------------------------------------------------------------------
// Fuzz-loop bookkeeping.
// ---------------------------------------------------------------------------

TEST(FuzzLoop, ReportAccountsForEveryCase) {
    testgen::FuzzOptions opt;
    opt.count = 40;
    opt.seed = 300;
    opt.diff.run_cgen = false;
    testgen::FuzzReport rep = testgen::run_fuzz(opt);
    EXPECT_EQ(rep.total, 40);
    EXPECT_EQ(rep.agree + rep.refused + rep.unknown + rep.failures, rep.total);
    EXPECT_GE(rep.refused, rep.refused_diverged);
    EXPECT_GT(rep.seconds, 0.0);
    EXPECT_FALSE(rep.summary().empty());
}

}  // namespace
}  // namespace ceu
