// The modular, incremental temporal analysis: partitioning at the top-level
// plain par, interface-based interference grouping, composed-vs-monolithic
// equivalence (the differential correctness gate), the persistent
// signature-keyed DFA cache (round trips, corruption rejection, line
// rebasing, hit/miss accounting), content-hash stability under reformatting
// and under edits to other modules, and the `ceuc --analysis.modular /
// --cache-dir` CLI surface.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cache.hpp"
#include "analysis/explore.hpp"
#include "analysis/modular.hpp"
#include "ast/print.hpp"
#include "codegen/flatten.hpp"
#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "testgen/differ.hpp"
#include "testgen/fuzz.hpp"
#include "testgen/generator.hpp"

namespace ceu {
namespace {

using analysis::ModularOptions;
using analysis::ModularOutcome;
using analysis::Partition;

// Three arms over three distinct inputs with distinct periods: no shared
// state, so the composed analysis explores 3 + 4 + 2 states where the
// monolithic product space has 3 * 4 * 2.
const char* kIndependent3 = R"(
    input void A, B, C;
    par do
       loop do
          await A; await A; await A;
       end
    with
       loop do
          await B; await B; await B; await B;
       end
    with
       loop do
          await C; await C;
       end
    end
)";

// The paper's Figure 2 program: both arms write `v` — one group.
const char* kFigure2 = R"(
    input void A;
    deterministic _printf;
    int v;
    par do
       loop do
          await A;
          await A;
          v = 1;
          _printf("w2\n");
       end
    with
       loop do
          await A;
          await A;
          await A;
          v = 2;
          _printf("w3\n");
       end
    end
)";

// The conflict lives entirely inside arm 0 (a nested par over a variable
// local to that arm); arm 1 is independent. The partition isolates the
// refusal to group {0} and its witness must replay whole-program.
const char* kModuleConflict = R"(
    input void A, B;
    deterministic _printf;
    par do
       int v;
       par do
          loop do
             await A;
             await A;
             v = 1;
             _printf("w2\n");
          end
       with
          loop do
             await A;
             await A;
             await A;
             v = 2;
             _printf("w3\n");
          end
       end
    with
       loop do
          await B;
          _printf("b\n");
       end
    end
)";

std::string verdict_key(const dfa::Conflict& c) {
    auto loc = [](const SourceLoc& l) {
        return std::to_string(l.line) + ":" + std::to_string(l.col);
    };
    std::string a = loc(c.loc_a), b = loc(c.loc_b);
    if (b < a) std::swap(a, b);
    return std::to_string(static_cast<int>(c.kind)) + "|" + c.what + "|" + a + "|" + b;
}

std::set<std::string> key_set(const std::vector<dfa::Conflict>& cs) {
    std::set<std::string> out;
    for (const dfa::Conflict& c : cs) out.insert(verdict_key(c));
    return out;
}

/// The correctness gate, as a reusable assertion: composed verdict ==
/// monolithic verdict (same conflict identities, same completeness — a
/// composition may only be *more* complete, never less).
void expect_equivalent(const flat::CompiledProgram& cp, const std::string& tag,
                       size_t max_states = 20000) {
    dfa::DfaOptions dopt;
    dopt.max_states = max_states;
    dfa::Dfa d = dfa::Dfa::build(cp, dopt);
    ModularOptions mopt;
    mopt.explore.max_states = max_states;
    ModularOutcome mo = analysis::explore_modular(cp, mopt);
    if (d.complete()) {
        EXPECT_TRUE(mo.complete) << tag << ": composition lost completeness";
        EXPECT_EQ(key_set(d.conflicts()), key_set(mo.conflicts)) << tag;
    }
    // Monolithic incomplete: no verdict to compare; the composed one may
    // legitimately be stronger (that is the point of composing).
}

// ---------------------------------------------------------------------------
// Partitioning

TEST(Partition, IndependentArmsBecomeSingletonGroups) {
    flat::CompiledProgram cp = flat::compile(kIndependent3);
    Partition part = analysis::partition_program(cp);
    ASSERT_TRUE(part.partitioned) << part.reason;
    ASSERT_EQ(part.modules.size(), 3u);
    EXPECT_TRUE(part.edges.empty());
    ASSERT_EQ(part.groups.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(part.groups[i], std::vector<int>{static_cast<int>(i)});
        EXPECT_GE(part.modules[i].entry, 0);
        EXPECT_FALSE(part.modules[i].has_timers);
        EXPECT_FALSE(part.modules[i].escapes_out);
    }
}

TEST(Partition, SharedVariableGroupsArms) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    Partition part = analysis::partition_program(cp);
    ASSERT_TRUE(part.partitioned) << part.reason;
    ASSERT_EQ(part.modules.size(), 2u);
    ASSERT_EQ(part.edges.size(), 1u);
    EXPECT_NE(part.edges[0].reason.find("shared variable 'v'"), std::string::npos)
        << part.edges[0].reason;
    ASSERT_EQ(part.groups.size(), 1u);
    EXPECT_EQ(part.groups[0], (std::vector<int>{0, 1}));
}

TEST(Partition, InternalEventCouplesEmitterAndAwaiter) {
    flat::CompiledProgram cp = flat::compile(R"(
        input void A;
        internal void e;
        par do
           loop do await A; emit e; end
        with
           loop do await e; end
        end
    )");
    Partition part = analysis::partition_program(cp);
    ASSERT_TRUE(part.partitioned) << part.reason;
    ASSERT_EQ(part.groups.size(), 1u);
    ASSERT_EQ(part.edges.size(), 1u);
    EXPECT_NE(part.edges[0].reason.find("internal event 'e'"), std::string::npos)
        << part.edges[0].reason;
}

TEST(Partition, TimersInBothArmsCouple) {
    flat::CompiledProgram cp = flat::compile(R"(
        par do
           loop do await 10ms; end
        with
           loop do await 7ms; end
        end
    )");
    Partition part = analysis::partition_program(cp);
    ASSERT_TRUE(part.partitioned) << part.reason;
    ASSERT_EQ(part.groups.size(), 1u);
    ASSERT_FALSE(part.edges.empty());
    EXPECT_NE(part.edges[0].reason.find("timers"), std::string::npos)
        << part.edges[0].reason;
}

TEST(Partition, ProgramReturnCouplesEveryArm) {
    flat::CompiledProgram cp = flat::compile(R"(
        input void A, B, C;
        par do
           await A;
           return 1;
        with
           loop do await B; end
        with
           loop do await C; end
        end
    )");
    Partition part = analysis::partition_program(cp);
    ASSERT_TRUE(part.partitioned) << part.reason;
    EXPECT_TRUE(part.modules[0].escapes_out);
    ASSERT_EQ(part.groups.size(), 1u) << "a program return terminates every arm";
}

TEST(Partition, ParOrFallsBackWholeProgram) {
    flat::CompiledProgram cp = flat::compile(R"(
        input void A, B;
        par/or do
           await A;
        with
           await B;
        end
    )");
    Partition part = analysis::partition_program(cp);
    EXPECT_FALSE(part.partitioned);
    EXPECT_NE(part.reason.find("par/and or par/or"), std::string::npos) << part.reason;
    ASSERT_EQ(part.modules.size(), 1u);
    EXPECT_EQ(part.modules[0].entry, -1);
    ASSERT_EQ(part.groups.size(), 1u);
}

TEST(Partition, NoTopLevelParFallsBackWholeProgram) {
    flat::CompiledProgram cp = flat::compile("input void A; await A;");
    Partition part = analysis::partition_program(cp);
    EXPECT_FALSE(part.partitioned);
    EXPECT_FALSE(part.reason.empty());
    ASSERT_EQ(part.modules.size(), 1u);
    EXPECT_EQ(part.modules[0].pc_begin, 0);
    EXPECT_EQ(part.modules[0].pc_end, static_cast<flat::Pc>(cp.flat.code.size()));
}

// ---------------------------------------------------------------------------
// Composition

TEST(Compose, SumNotProductOnIndependentArms) {
    flat::CompiledProgram cp = flat::compile(kIndependent3);
    dfa::Dfa d = dfa::Dfa::build(cp, {});
    ModularOutcome mo = analysis::explore_modular(cp);
    EXPECT_TRUE(mo.composed);
    EXPECT_TRUE(mo.complete);
    EXPECT_TRUE(mo.conflicts.empty());
    // 3 + 4 + 2 composed states vs the 3 * 4 * 2 product.
    EXPECT_EQ(mo.states_total, 9u);
    EXPECT_EQ(d.state_count(), 24u);
}

TEST(Compose, InterferingArmsMatchMonolithicExactly) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    dfa::Dfa d = dfa::Dfa::build(cp, {});
    ModularOutcome mo = analysis::explore_modular(cp);
    EXPECT_FALSE(mo.composed);  // one joint group: nothing was composed
    ASSERT_EQ(mo.groups.size(), 1u);
    EXPECT_NE(mo.groups[0].fallback_reason.find("shared variable"),
              std::string::npos);
    EXPECT_EQ(key_set(d.conflicts()), key_set(mo.conflicts));
    // Same joint exploration: occurrence counts agree too, not just keys.
    ASSERT_EQ(mo.conflicts.size(), d.conflicts().size());
    EXPECT_EQ(mo.conflicts[0].occurrences, d.conflicts()[0].occurrences);
}

TEST(Compose, ConflictIsolatedToItsModule) {
    flat::CompiledProgram cp = flat::compile(kModuleConflict);
    ModularOutcome mo = analysis::explore_modular(cp);
    EXPECT_TRUE(mo.composed);
    ASSERT_EQ(mo.groups.size(), 2u);
    ASSERT_FALSE(mo.conflicts.empty());
    expect_equivalent(cp, "kModuleConflict");
}

TEST(Compose, IncompleteModuleMakesComposedVerdictIncomplete) {
    flat::CompiledProgram cp = flat::compile(kIndependent3);
    ModularOptions mopt;
    mopt.explore.max_states = 2;  // below the 4-state arm's need
    ModularOutcome mo = analysis::explore_modular(cp, mopt);
    EXPECT_FALSE(mo.complete) << "a truncated module must not report a full cover";
}

TEST(Compose, OccurrenceCountsSumAcrossModules) {
    dfa::Conflict a;
    a.kind = dfa::Conflict::Kind::Variable;
    a.what = "v";
    a.loc_a = {3, 7};
    a.loc_b = {9, 7};
    a.trigger = "A";
    a.occurrences = 2;
    a.witness = {{dfa::WitnessStep::Kind::Boot}, {dfa::WitnessStep::Kind::Event, "A"}};
    dfa::Conflict b = a;
    b.loc_a = a.loc_b;  // (b,a) order must normalize onto the same key
    b.loc_b = a.loc_a;
    b.occurrences = 3;
    b.witness = {{dfa::WitnessStep::Kind::Boot}};
    dfa::ConflictSet set;
    set.add(a);
    set.add(b);
    std::vector<dfa::Conflict> merged = set.take();
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].occurrences, 5);
    EXPECT_EQ(merged[0].witness.size(), 1u) << "merge keeps the shortest witness";
}

// ---------------------------------------------------------------------------
// Differential gate: composed == monolithic over demos, corpus, seeds.

TEST(Equivalence, AllDemos) {
    const std::pair<const char*, const char*> demos[] = {
        {"quickstart", demos::kQuickstart}, {"temperature", demos::kTemperature},
        {"ring", demos::kRing},             {"multihop", demos::kMultihop},
        {"ship", demos::kShip},             {"mario-live", demos::kMarioLive},
        {"mario-replay", demos::kMarioReplay},
        {"mario-backwards", demos::kMarioBackwards},
    };
    for (const auto& [name, src] : demos) {
        flat::CompiledProgram cp = flat::compile(src);
        expect_equivalent(cp, name);
    }
}

TEST(Equivalence, CorpusWitnesses) {
    std::filesystem::path dir =
        std::filesystem::path(CEU_SOURCE_DIR) / "tests" / "corpus";
    int seen = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".ceu") continue;
        std::ifstream f(entry.path());
        std::ostringstream ss;
        ss << f.rdbuf();
        testgen::CorpusCase c;
        ASSERT_TRUE(testgen::corpus_parse(ss.str(), &c)) << entry.path();
        flat::CompiledProgram cp = flat::compile(c.source);
        expect_equivalent(cp, entry.path().filename().string());
        ++seen;
    }
    EXPECT_GT(seen, 0);
}

TEST(Equivalence, TwoHundredSeededPrograms) {
    for (uint64_t seed = 1; seed <= 220; ++seed) {
        testgen::GenCase gc = testgen::generate(seed);
        flat::CompiledProgram cp;
        Diagnostics diags;
        ASSERT_TRUE(flat::compile_checked(gc.source, &cp, diags, "<gen>"))
            << "seed " << seed << ": " << diags.str();
        expect_equivalent(cp, "seed " + std::to_string(seed));
    }
}

TEST(Equivalence, DifferRunsTheModularOracle) {
    // The conformance harness itself cross-checks composed vs monolithic on
    // every case (DiffOptions::check_modular defaults on); a refusal must
    // come back as dfa-refused, never modular-diverged.
    ASSERT_TRUE(testgen::DiffOptions{}.check_modular);
    env::Script script;
    Diagnostics diags;
    ASSERT_TRUE(env::Script::parse("E A\nE A\nE A\nQ\n", &script, diags));
    testgen::DiffOptions opt;
    opt.run_cgen = false;
    testgen::DiffResult res = testgen::run_differential(kFigure2, script, opt);
    EXPECT_EQ(res.kind, testgen::DiffResult::Kind::DfaRefused)
        << testgen::DiffResult::kind_name(res.kind) << ": " << res.detail;
}

// ---------------------------------------------------------------------------
// Content hashes: stable under reformatting and under edits elsewhere.

TEST(ModuleHash, StableUnderReformatting) {
    flat::CompiledProgram a = flat::compile(kFigure2);
    // Same program, violently reformatted (and with a line shift).
    flat::CompiledProgram b = flat::compile(
        "\n\n  input void A;\n  deterministic _printf;\n  int v;\n"
        "  par do\n  loop do\nawait A;\n   await A;\n     v = 1;\n"
        " _printf(\"w2\\n\");\n  end\nwith\n loop do\n await A;\n await A;\n"
        " await A;\n v = 2;\n _printf(\"w3\\n\");\n end\n end\n");
    Partition pa = analysis::partition_program(a);
    Partition pb = analysis::partition_program(b);
    ASSERT_TRUE(pa.partitioned && pb.partitioned);
    ASSERT_EQ(pa.modules.size(), pb.modules.size());
    for (size_t i = 0; i < pa.modules.size(); ++i) {
        EXPECT_EQ(pa.modules[i].hash, pb.modules[i].hash) << "module " << i;
    }
}

TEST(ModuleHash, StableUnderRenderParseRoundTrip) {
    flat::CompiledProgram a = flat::compile(kModuleConflict);
    flat::CompiledProgram b = flat::compile(ast::print_block(a.ast.body));
    Partition pa = analysis::partition_program(a);
    Partition pb = analysis::partition_program(b);
    ASSERT_TRUE(pa.partitioned && pb.partitioned);
    ASSERT_EQ(pa.modules.size(), pb.modules.size());
    for (size_t i = 0; i < pa.modules.size(); ++i) {
        EXPECT_EQ(pa.modules[i].hash, pb.modules[i].hash) << "module " << i;
    }
    EXPECT_EQ(analysis::program_hash(a), analysis::program_hash(b));
}

TEST(ModuleHash, EditingOneArmLeavesOtherHashesAlone) {
    flat::CompiledProgram a = flat::compile(kIndependent3);
    std::string edited(kIndependent3);
    size_t pos = edited.find("await C; await C;");
    ASSERT_NE(pos, std::string::npos);
    edited.replace(pos, 17, "await C;");
    flat::CompiledProgram b = flat::compile(edited);
    Partition pa = analysis::partition_program(a);
    Partition pb = analysis::partition_program(b);
    ASSERT_TRUE(pa.partitioned && pb.partitioned);
    EXPECT_EQ(pa.modules[0].hash, pb.modules[0].hash);
    EXPECT_EQ(pa.modules[1].hash, pb.modules[1].hash);
    EXPECT_NE(pa.modules[2].hash, pb.modules[2].hash);
}

TEST(ModuleHash, ScopedSignatureStableUnderOtherArmEdits) {
    // Arm 0 (the conflict module) explored alone must produce the same
    // scoped sub-signature when arm 1 changes and all lines shift.
    auto arm0_sig = [](const char* src) {
        flat::CompiledProgram cp = flat::compile(src);
        Partition part = analysis::partition_program(cp);
        EXPECT_TRUE(part.partitioned) << part.reason;
        const std::vector<int>& members = part.groups[0];
        EXPECT_EQ(members, std::vector<int>{0});
        analysis::ExploreOptions eo;
        eo.boot_pcs.push_back(part.modules[0].entry);
        dfa::Dfa d = analysis::explore(cp, eo);
        return d.signature(analysis::group_scope(cp, part, members));
    };
    std::string shifted = "\n\n\n" + std::string(kModuleConflict);
    size_t pos = shifted.find("_printf(\"b\\n\");");
    ASSERT_NE(pos, std::string::npos);
    shifted.replace(pos, 15, "_printf(\"bb\\n\");\n          await B;");
    EXPECT_EQ(arm0_sig(kModuleConflict), arm0_sig(shifted.c_str()));
}

// ---------------------------------------------------------------------------
// Persistent cache

analysis::cache::Entry sample_entry() {
    analysis::cache::Entry e;
    e.members.push_back({0xabcdef01u, 10, 20, 10});
    e.max_states = 1000;
    e.stop_at_first_conflict = false;
    e.state_count = 42;
    e.complete = true;
    e.sub_signature = 0x1122334455667788ULL;
    dfa::Conflict c;
    c.kind = dfa::Conflict::Kind::Variable;
    c.what = "v";
    c.loc_a = {12, 7};
    c.loc_b = {15, 9};
    c.trigger = "A";
    c.occurrences = 4;
    c.witness = {{dfa::WitnessStep::Kind::Boot},
                 {dfa::WitnessStep::Kind::Event, "A"},
                 {dfa::WitnessStep::Kind::Time, "", 500}};
    e.conflicts.push_back(c);
    return e;
}

std::string fresh_cache_dir(const char* tag) {
    std::string dir = ::testing::TempDir() + "ceulint_" + tag + "_" +
                      std::to_string(getpid());
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(Cache, RoundTripsAnEntry) {
    analysis::cache::DfaCache cache(fresh_cache_dir("rt"));
    analysis::cache::Entry e = sample_entry();
    uint64_t key = analysis::cache::entry_key({e.members[0].hash}, e.max_states,
                                              e.stop_at_first_conflict);
    cache.store(key, e);
    EXPECT_EQ(cache.stats().stores, 1u);
    analysis::cache::Entry got;
    ASSERT_TRUE(cache.load(key, e, &got));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(got.state_count, 42u);
    EXPECT_TRUE(got.complete);
    EXPECT_EQ(got.sub_signature, e.sub_signature);
    ASSERT_EQ(got.conflicts.size(), 1u);
    EXPECT_EQ(got.conflicts[0].what, "v");
    EXPECT_EQ(got.conflicts[0].loc_a.line, 12u);
    EXPECT_EQ(got.conflicts[0].occurrences, 4);
    ASSERT_EQ(got.conflicts[0].witness.size(), 3u);
    EXPECT_EQ(got.conflicts[0].witness[2].advance, 500);
}

TEST(Cache, RebasesConflictLinesWhenTheModuleMoves) {
    analysis::cache::DfaCache cache(fresh_cache_dir("rebase"));
    analysis::cache::Entry e = sample_entry();
    uint64_t key = analysis::cache::entry_key({e.members[0].hash}, e.max_states,
                                              e.stop_at_first_conflict);
    cache.store(key, e);
    analysis::cache::Entry expect = e;  // same content, module moved +25 lines
    expect.members[0] = {e.members[0].hash, 35, 45, 35};
    analysis::cache::Entry got;
    ASSERT_TRUE(cache.load(key, expect, &got));
    EXPECT_EQ(got.conflicts[0].loc_a.line, 37u);  // 12 - 10 + 35
    EXPECT_EQ(got.conflicts[0].loc_b.line, 40u);
    EXPECT_EQ(got.conflicts[0].loc_a.col, 7u);
}

TEST(Cache, RejectsCorruptTruncatedAndStaleEntries) {
    std::string dir = fresh_cache_dir("rej");
    analysis::cache::DfaCache cache(dir);
    analysis::cache::Entry e = sample_entry();
    uint64_t key = analysis::cache::entry_key({e.members[0].hash}, e.max_states,
                                              e.stop_at_first_conflict);
    cache.store(key, e);
    std::string path = cache.path_for(key);
    auto slurp = [&] {
        std::ifstream f(path, std::ios::binary);
        std::ostringstream os;
        os << f.rdbuf();
        return os.str();
    };
    std::string blob = slurp();
    analysis::cache::Entry got;

    // Truncated: parse-then-commit refuses, never half-applies.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << blob.substr(0, blob.size() / 2);
    }
    EXPECT_FALSE(cache.load(key, e, &got));
    // Wrong version magic.
    {
        std::string bad = blob;
        bad[7] = '9';  // CEULINT1 -> CEULINT9
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << bad;
    }
    EXPECT_FALSE(cache.load(key, e, &got));
    // Trailing garbage.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << blob << "xx";
    }
    EXPECT_FALSE(cache.load(key, e, &got));
    EXPECT_EQ(cache.stats().rejected, 3u);

    // Stale identity: a valid file whose member hash no longer matches.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << blob;
    }
    analysis::cache::Entry other = e;
    other.members[0].hash ^= 1;
    EXPECT_FALSE(cache.load(key, other, &got));
    EXPECT_EQ(cache.stats().rejected, 4u);
    // The pristine file still loads (rejection never destroys it).
    EXPECT_TRUE(cache.load(key, e, &got));
}

TEST(Cache, WarmRunReexploresOnlyTheChangedModule) {
    std::string dir = fresh_cache_dir("incr");
    ModularOptions mopt;
    mopt.cache_dir = dir;

    flat::CompiledProgram cp = flat::compile(kIndependent3);
    ModularOutcome cold = analysis::explore_modular(cp, mopt);
    EXPECT_EQ(cold.cache.hits, 0u);
    EXPECT_EQ(cold.cache.misses, 3u);
    EXPECT_EQ(cold.cache.stores, 3u);
    EXPECT_EQ(cold.states_explored, cold.states_total);

    // Unchanged program: every group comes from the cache.
    ModularOutcome warm = analysis::explore_modular(cp, mopt);
    EXPECT_EQ(warm.cache.hits, 3u);
    EXPECT_EQ(warm.cache.misses, 0u);
    EXPECT_EQ(warm.states_explored, 0u);
    EXPECT_EQ(warm.states_total, cold.states_total);
    EXPECT_EQ(key_set(warm.conflicts), key_set(cold.conflicts));

    // Edit arm 2 only: arms 0 and 1 must hit, arm 2 must re-explore.
    std::string edited(kIndependent3);
    size_t pos = edited.find("await C; await C;");
    ASSERT_NE(pos, std::string::npos);
    edited.replace(pos, 17, "await C;");
    flat::CompiledProgram cp2 = flat::compile(edited);
    ModularOutcome incr = analysis::explore_modular(cp2, mopt);
    EXPECT_EQ(incr.cache.hits, 2u);
    EXPECT_EQ(incr.cache.misses, 1u);
    EXPECT_EQ(incr.cache.stores, 1u);
    ASSERT_EQ(incr.groups.size(), 3u);
    size_t reexplored = 0;
    for (const analysis::GroupResult& g : incr.groups) {
        if (!g.from_cache) ++reexplored;
    }
    EXPECT_EQ(reexplored, 1u);
}

TEST(Cache, HitSurvivesLineShiftAndRebasesTheVerdict) {
    std::string dir = fresh_cache_dir("shift");
    ModularOptions mopt;
    mopt.cache_dir = dir;

    flat::CompiledProgram cp = flat::compile(kModuleConflict);
    ModularOutcome cold = analysis::explore_modular(cp, mopt);
    ASSERT_FALSE(cold.conflicts.empty());

    // Shift the whole program down three lines: the pretty-printed text is
    // unchanged, so both groups hit; conflict lines follow the shift.
    std::string shifted = "\n\n\n" + std::string(kModuleConflict);
    flat::CompiledProgram cp2 = flat::compile(shifted);
    ModularOutcome warm = analysis::explore_modular(cp2, mopt);
    EXPECT_EQ(warm.cache.hits, 2u);
    EXPECT_EQ(warm.cache.misses, 0u);
    ASSERT_EQ(warm.conflicts.size(), cold.conflicts.size());
    EXPECT_EQ(warm.conflicts[0].loc_a.line, cold.conflicts[0].loc_a.line + 3);
    EXPECT_EQ(warm.conflicts[0].loc_b.line, cold.conflicts[0].loc_b.line + 3);
    // And it matches what a fresh exploration of the shifted program says.
    expect_equivalent(cp2, "shifted kModuleConflict");
}

// ---------------------------------------------------------------------------
// CLI surface

std::string ceuc_path() { return std::string(CEU_BUILD_DIR) + "/src/ceuc"; }

struct CliResult {
    int exit_code = 0;
    std::string out;
    std::string err;
};

CliResult run_ceuc(const std::string& args, const std::string& program,
                   const std::string& stdin_text = "") {
    static int n = 0;
    std::string base = ::testing::TempDir() + "ceuc_modular_" +
                       std::to_string(getpid()) + "_" + std::to_string(n++);
    {
        std::ofstream f(base + ".ceu");
        f << program;
    }
    {
        std::ofstream f(base + ".in");
        f << stdin_text;
    }
    std::string cmd = ceuc_path() + " " + args + " " + base + ".ceu < " + base +
                      ".in > " + base + ".out 2>" + base + ".err";
    CliResult r;
    int rc = std::system(cmd.c_str());
    r.exit_code = WEXITSTATUS(rc);
    auto slurp = [](const std::string& p) {
        std::ifstream f(p);
        std::ostringstream os;
        os << f.rdbuf();
        return os.str();
    };
    r.out = slurp(base + ".out");
    r.err = slurp(base + ".err");
    return r;
}

TEST(CliModular, VerdictMatchesMonolithic) {
    CliResult mono = run_ceuc("", kFigure2);
    CliResult mod = run_ceuc("--analysis.modular", kFigure2);
    EXPECT_EQ(mono.exit_code, 1);
    EXPECT_EQ(mod.exit_code, 1);
    EXPECT_NE(mod.err.find("modular analysis:"), std::string::npos) << mod.err;
    EXPECT_NE(mod.err.find("variable 'v' accessed concurrently"),
              std::string::npos)
        << mod.err;
}

TEST(CliModular, CacheDirColdThenWarm) {
    std::string dir = fresh_cache_dir("cli");
    CliResult cold = run_ceuc("--cache-dir=" + dir, kIndependent3);
    EXPECT_EQ(cold.exit_code, 0) << cold.err;
    EXPECT_NE(cold.err.find("hits=0 misses=3 stores=3"), std::string::npos)
        << cold.err;
    CliResult warm = run_ceuc("--cache-dir=" + dir, kIndependent3);
    EXPECT_EQ(warm.exit_code, 0) << warm.err;
    EXPECT_NE(warm.err.find("3 cached, 0 explored"), std::string::npos) << warm.err;
    EXPECT_NE(warm.err.find("hits=3 misses=0 stores=0"), std::string::npos)
        << warm.err;
}

TEST(CliModular, JsonModeEmitsCacheStats) {
    std::string dir = fresh_cache_dir("clij");
    CliResult r = run_ceuc("--diag-format=json --analysis.cache-dir=" + dir,
                           kIndependent3);
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("\"pass\":\"analysis-cache\""), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("\"cache_misses\":3"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("\"partitioned\":true"), std::string::npos) << r.out;
}

TEST(CliModular, StrictRefusesComposedIncompleteVerdict) {
    CliResult r = run_ceuc("--analysis.modular --analysis.strict --max-states 2",
                           kIndependent3);
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("--strict"), std::string::npos) << r.err;
    // Without --strict the incomplete composition warns but passes.
    CliResult soft = run_ceuc("--analysis.modular --max-states 2", kIndependent3);
    EXPECT_EQ(soft.exit_code, 0) << soft.err;
    EXPECT_NE(soft.out.find("INCOMPLETE"), std::string::npos)
        << "check-mode summary must not claim OK: " << soft.out << soft.err;
}

TEST(CliModular, ExplainWitnessReplaysAcrossTheModuleBoundary) {
    CliResult explain = run_ceuc("--explain --analysis.modular", kModuleConflict);
    EXPECT_EQ(explain.exit_code, 1);
    EXPECT_NE(explain.err.find("witness:"), std::string::npos) << explain.err;
    ASSERT_NE(explain.out.find("# replay script"), std::string::npos) << explain.out;
    // The composed witness is a whole-program input script: replay it and
    // observe the conflicting writers actually firing.
    CliResult run = run_ceuc("--run --no-analysis", kModuleConflict, explain.out);
    EXPECT_EQ(run.exit_code, 0) << run.err;
    EXPECT_NE(run.out.find("w2"), std::string::npos) << run.out;
    EXPECT_NE(run.out.find("w3"), std::string::npos) << run.out;
}

}  // namespace
}  // namespace ceu
