// The analysis subsystem: parallel DFA exploration (serial/parallel
// equivalence), witness traces (replayable conflict scripts), the lint-pass
// framework (golden diagnostics per pass), and the `ceuc --lint/--explain`
// CLI surface.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/explore.hpp"
#include "analysis/lint.hpp"
#include "analysis/witness.hpp"
#include "codegen/flatten.hpp"
#include "demos/demos.hpp"
#include "dfa/dfa.hpp"
#include "env/driver.hpp"

namespace ceu {
namespace {

using analysis::ExploreOptions;
using analysis::Finding;

// The paper's Figure 2 program: trails of period 2 and 3 over the same
// event collide on the 6th occurrence of A. Each writer announces itself
// so witness replays are observable through the trace.
const char* kFigure2 = R"(
    input void A;
    deterministic _printf;
    int v;
    par do
       loop do
          await A;
          await A;
          v = 1;
          _printf("w2\n");
       end
    with
       loop do
          await A;
          await A;
          await A;
          v = 2;
          _printf("w3\n");
       end
    end
)";

// A wide-frontier synthetic: k independent trails over k *distinct* input
// events, with coprime-ish periods. The reachable state space is the
// product of the per-trail positions and every state has k outgoing
// triggers, so a parallel exploration actually has work to share.
std::string wide_program(int k) {
    std::ostringstream os;
    os << "    input void";
    for (int i = 0; i < k; ++i) os << (i ? "," : "") << " E" << i;
    os << ";\n    par do\n";
    for (int i = 0; i < k; ++i) {
        if (i) os << "    with\n";
        os << "       loop do\n";
        for (int j = 0; j < 3 + i; ++j) os << "          await E" << i << ";\n";
        os << "       end\n";
    }
    os << "    end\n";
    return os.str();
}

std::vector<Finding> lint(const std::string& src, const analysis::LintOptions& opt = {}) {
    flat::CompiledProgram cp = flat::compile(src);
    return analysis::run_lints(cp, opt);
}

std::vector<std::string> finding_strs(const std::vector<Finding>& fs) {
    std::vector<std::string> out;
    out.reserve(fs.size());
    for (const Finding& f : fs) out.push_back(f.str());
    return out;
}

// ---------------------------------------------------------------------------
// Serial vs parallel exploration equivalence.

TEST(Explore, SerialAndParallelAgreeOnDemos) {
    const char* corpus[] = {demos::kQuickstart, demos::kTemperature, demos::kRing,
                            demos::kShip, demos::kMarioLive};
    for (const char* src : corpus) {
        flat::CompiledProgram cp = flat::compile(src);
        ExploreOptions serial;
        ExploreOptions par4;
        par4.jobs = 4;
        dfa::Dfa a = analysis::explore(cp, serial);
        dfa::Dfa b = analysis::explore(cp, par4);
        EXPECT_EQ(a.state_count(), b.state_count());
        EXPECT_EQ(a.conflicts().size(), b.conflicts().size());
        EXPECT_EQ(a.complete(), b.complete());
        EXPECT_EQ(a.signature(), b.signature());
    }
}

TEST(Explore, SerialAndParallelAgreeOnWideFrontier) {
    flat::CompiledProgram cp = flat::compile(wide_program(5));
    ExploreOptions serial;
    dfa::Dfa a = analysis::explore(cp, serial);
    // Positions multiply: 3*4*5*6*7 = 2520 distinct states.
    EXPECT_EQ(a.state_count(), 2520u);
    EXPECT_TRUE(a.complete());
    EXPECT_TRUE(a.deterministic());
    for (int jobs : {2, 4, 8}) {
        ExploreOptions p;
        p.jobs = jobs;
        dfa::Dfa b = analysis::explore(cp, p);
        EXPECT_EQ(b.signature(), a.signature()) << "jobs=" << jobs;
    }
}

TEST(Explore, ParallelIsDeterministicRunToRun) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    ExploreOptions p;
    p.jobs = 4;
    std::string first = analysis::explore(cp, p).signature();
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(analysis::explore(cp, p).signature(), first);
    }
}

TEST(Explore, MaxStatesBudgetMarksIncomplete) {
    flat::CompiledProgram cp = flat::compile(wide_program(5));
    for (int jobs : {1, 4}) {
        ExploreOptions opt;
        opt.max_states = 100;
        opt.jobs = jobs;
        dfa::Dfa d = analysis::explore(cp, opt);
        EXPECT_FALSE(d.complete()) << "jobs=" << jobs;
        EXPECT_LE(d.state_count(), 100u + 8u) << "jobs=" << jobs;
    }
}

TEST(Explore, StopAtFirstConflictStillFindsOne) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    for (int jobs : {1, 4}) {
        ExploreOptions opt;
        opt.stop_at_first_conflict = true;
        opt.jobs = jobs;
        dfa::Dfa d = analysis::explore(cp, opt);
        EXPECT_FALSE(d.deterministic()) << "jobs=" << jobs;
        ASSERT_FALSE(d.conflicts().empty()) << "jobs=" << jobs;
        EXPECT_EQ(d.conflicts().front().what, "v");
    }
}

// ---------------------------------------------------------------------------
// Conflict deduplication.

TEST(Conflicts, SymmetricPairsAreDedupedWithOccurrences) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    dfa::Dfa d = dfa::Dfa::build(cp);
    // The v=1/v=2 collision recurs around the 6-cycle, but there is only
    // one (loc_a, loc_b) pair: exactly one report, counting occurrences.
    ASSERT_EQ(d.conflicts().size(), 1u);
    const dfa::Conflict& c = d.conflicts().front();
    EXPECT_EQ(c.kind, dfa::Conflict::Kind::Variable);
    EXPECT_EQ(c.what, "v");
    EXPECT_GE(c.occurrences, 2);
    EXPECT_NE(c.str().find("[x"), std::string::npos);
    // Normalized order: loc_a is the earlier source location.
    EXPECT_LE(c.loc_a.line, c.loc_b.line);
}

TEST(Conflicts, DedupKeyNormalizesLocationOrder) {
    dfa::Conflict a;
    a.kind = dfa::Conflict::Kind::Variable;
    a.what = "v";
    a.loc_a = {7, 3};
    a.loc_b = {12, 5};
    dfa::Conflict b = a;
    std::swap(b.loc_a, b.loc_b);
    EXPECT_EQ(dfa::ConflictSet::key(a), dfa::ConflictSet::key(b));

    dfa::ConflictSet set;
    set.add(a);
    set.add(b);
    std::vector<dfa::Conflict> out = set.take();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.front().occurrences, 2);
}

// ---------------------------------------------------------------------------
// Witness traces.

TEST(Witness, Figure2ConflictIsReachedAfterSixAs) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    dfa::Dfa d = dfa::Dfa::build(cp);
    ASSERT_FALSE(d.conflicts().empty());
    const auto& w = d.conflicts().front().witness;
    ASSERT_EQ(w.size(), 7u);  // boot + 6 occurrences of A
    EXPECT_EQ(w[0].kind, dfa::WitnessStep::Kind::Boot);
    for (size_t i = 1; i < w.size(); ++i) {
        EXPECT_EQ(w[i].kind, dfa::WitnessStep::Kind::Event);
        EXPECT_EQ(w[i].event, "A");
    }
    EXPECT_EQ(analysis::witness_chain(w), "boot -> A -> A -> A -> A -> A -> A");
}

TEST(Witness, SerialAndParallelProduceTheSameWitness) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    ExploreOptions p;
    p.jobs = 4;
    dfa::Dfa a = analysis::explore(cp, ExploreOptions{});
    dfa::Dfa b = analysis::explore(cp, p);
    ASSERT_FALSE(a.conflicts().empty());
    ASSERT_FALSE(b.conflicts().empty());
    EXPECT_EQ(analysis::witness_chain(a.conflicts().front().witness),
              analysis::witness_chain(b.conflicts().front().witness));
}

TEST(Witness, ScriptTextIsTheRunProtocol) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    dfa::Dfa d = dfa::Dfa::build(cp);
    ASSERT_FALSE(d.conflicts().empty());
    std::string text = analysis::witness_script_text(d.conflicts().front().witness);
    EXPECT_EQ(text, "# boot (implicit)\nE A\nE A\nE A\nE A\nE A\nE A\n");
    // The emitted text must parse back under the --run protocol.
    env::Script parsed;
    Diagnostics diags;
    ASSERT_TRUE(env::Script::parse(text, &parsed, diags)) << diags.str();
    EXPECT_EQ(parsed.items().size(), 6u);
}

TEST(Witness, ReplayDrivesTheRuntimeIntoTheConflictingReaction) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    dfa::Dfa d = dfa::Dfa::build(cp);
    ASSERT_FALSE(d.conflicts().empty());
    env::Script script = analysis::witness_script(d.conflicts().front().witness);

    env::Driver driver(cp);
    driver.boot();
    ASSERT_FALSE(script.items().empty());
    // Feed everything but the last input, then observe what the final
    // (conflicting) reaction executes.
    for (size_t i = 0; i + 1 < script.items().size(); ++i) {
        driver.feed(script.items()[i]);
    }
    size_t before = driver.trace().size();
    driver.feed(script.items().back());
    std::vector<std::string> last(driver.trace().begin() + before, driver.trace().end());
    // Both writers ran in the same reaction: that is the conflict.
    ASSERT_EQ(last.size(), 2u);
    EXPECT_NE(std::find(last.begin(), last.end(), "w2"), last.end());
    EXPECT_NE(std::find(last.begin(), last.end(), "w3"), last.end());
}

TEST(Witness, TimerConflictWitnessUsesTimeSteps) {
    flat::CompiledProgram cp = flat::compile(R"(
        int v;
        par do
           await 10ms;
           v = 1;
        with
           await 10ms;
           v = 2;
        end
    )");
    dfa::Dfa d = dfa::Dfa::build(cp);
    ASSERT_FALSE(d.conflicts().empty());
    const auto& w = d.conflicts().front().witness;
    ASSERT_GE(w.size(), 2u);
    EXPECT_EQ(w.back().kind, dfa::WitnessStep::Kind::Time);
    EXPECT_EQ(w.back().advance, 10000);
    std::string text = analysis::witness_script_text(w);
    EXPECT_NE(text.find("T 10000\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lint passes (golden diagnostics).

TEST(Lint, UninitReadGolden) {
    analysis::LintOptions only;
    only.only = {"uninit-read"};
    std::vector<std::string> got = finding_strs(lint(R"(
        input void A;
        int x;
        int y;
        await A;
        x = y + 1;
        return x;
    )",
                                                     only));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0],
              "6:13: warning: [uninit-read] variable 'y' may be read before "
              "initialization");
}

TEST(Lint, UninitReadRespectsDominatingWrites) {
    analysis::LintOptions only;
    only.only = {"uninit-read"};
    // y is written on every path before the read: no finding.
    EXPECT_TRUE(lint(R"(
        input int A;
        int x;
        int y;
        x = await A;
        if x then y = 1; else y = 2; end
        return y;
    )",
                     only)
                    .empty());
    // ...but a write on only one branch still leaves an uninitialized path.
    std::vector<std::string> got = finding_strs(lint(R"(
        input int A;
        int x;
        int y;
        x = await A;
        if x then y = 1; end
        return y;
    )",
                                                     only));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_NE(got[0].find("variable 'y' may be read"), std::string::npos);
}

TEST(Lint, UnusedGolden) {
    analysis::LintOptions only;
    only.only = {"unused"};
    std::vector<std::string> got = finding_strs(lint(R"(
        input void A;
        internal void never;
        int dead;
        int sink;
        sink = 1;
        await A;
    )",
                                                     only));
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], "3:9: warning: [unused] internal event 'never' is never used");
    EXPECT_EQ(got[1], "4:13: warning: [unused] variable 'dead' is never used");
    EXPECT_EQ(got[2],
              "5:13: warning: [unused] variable 'sink' is written but never read");
}

TEST(Lint, UnreachableTrailGolden) {
    analysis::LintOptions only;
    only.only = {"unreachable-trail"};
    std::vector<std::string> got = finding_strs(lint(R"(
        input void A;
        int x;
        par/or do
           await A;
           x = 1;
        with
           x = 2;
        end
        return x;
    )",
                                                     only));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0],
              "5:12: warning: [unreachable-trail] code after this await never runs: "
              "a sibling branch of the `par/or` at line 4 always terminates in the "
              "reaction it starts, killing this trail before it can resume");
}

TEST(Lint, UnreachableTrailSilentWhenSiblingsAwait) {
    analysis::LintOptions only;
    only.only = {"unreachable-trail"};
    EXPECT_TRUE(lint(R"(
        input void A, B;
        par/or do
           await A;
        with
           await B;
        end
    )",
                     only)
                    .empty());
}

TEST(Lint, EmitNoAwaiterGolden) {
    analysis::LintOptions only;
    only.only = {"emit-no-awaiter"};
    std::vector<std::string> got = finding_strs(lint(R"(
        input void A;
        internal void ping;
        await A;
        emit ping;
    )",
                                                     only));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0],
              "5:9: warning: [emit-no-awaiter] emit on internal event 'ping' that "
              "no trail ever awaits (the emission is a no-op)");
    // With an awaiting trail the emission is meaningful: silent.
    EXPECT_TRUE(lint(R"(
        input void A;
        internal void ping;
        par do
           await A;
           emit ping;
        with
           loop do await ping; end
        end
    )",
                     only)
                    .empty());
}

TEST(Lint, OnlyAndDisableFilterPasses) {
    const char* src = R"(
        input void A;
        internal void never;
        int dead;
        await A;
    )";
    EXPECT_FALSE(lint(src).empty());
    analysis::LintOptions disable_all;
    disable_all.disable = {"uninit-read", "unused", "unreachable-trail",
                           "emit-no-awaiter"};
    EXPECT_TRUE(lint(src, disable_all).empty());
    analysis::LintOptions only;
    only.only = {"uninit-read"};
    EXPECT_TRUE(lint(src, only).empty());  // nothing uninit here
}

TEST(Lint, RegistryExposesAllPasses) {
    const analysis::PassRegistry& reg = analysis::default_registry();
    ASSERT_EQ(reg.passes().size(), 4u);
    for (const char* id : {"uninit-read", "unused", "unreachable-trail",
                           "emit-no-awaiter"}) {
        const analysis::Pass* p = reg.find(id);
        ASSERT_NE(p, nullptr) << id;
        EXPECT_EQ(p->id(), id);
        EXPECT_FALSE(p->description().empty());
    }
    EXPECT_EQ(reg.find("no-such-pass"), nullptr);
}

TEST(Lint, JsonFindingIsWellFormed) {
    flat::CompiledProgram cp = flat::compile(kFigure2);
    dfa::Dfa d = dfa::Dfa::build(cp);
    ASSERT_FALSE(d.conflicts().empty());
    Finding f = analysis::conflict_finding(d.conflicts().front());
    std::string j = f.json("fig2.ceu");
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
    EXPECT_NE(j.find("\"pass\":\"temporal\""), std::string::npos);
    EXPECT_NE(j.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(j.find("\"file\":\"fig2.ceu\""), std::string::npos);
    EXPECT_NE(j.find("\"witness\":[\"boot\",\"A\",\"A\",\"A\",\"A\",\"A\",\"A\"]"),
              std::string::npos);
}

TEST(Lint, JsonEscapesSpecialCharacters) {
    Finding f;
    f.pass = "unused";
    f.message = "quote \" backslash \\ newline \n tab \t";
    std::string j = f.json("dir/a\"b.ceu");
    EXPECT_NE(j.find("quote \\\" backslash \\\\ newline \\n tab \\t"),
              std::string::npos);
    EXPECT_NE(j.find("\"file\":\"dir/a\\\"b.ceu\""), std::string::npos);
}

TEST(Lint, IncompleteFindingNamesTheBudget) {
    Finding f = analysis::incomplete_finding(128, 100);
    EXPECT_EQ(f.pass, "temporal");
    EXPECT_EQ(f.severity, Severity::Warning);
    EXPECT_NE(f.message.find("128 states explored"), std::string::npos);
    EXPECT_NE(f.message.find("--analysis.max-states=100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI integration: the ceuc analysis surface, driven as a subprocess.

std::string ceuc_path() { return std::string(CEU_BUILD_DIR) + "/src/ceuc"; }

struct CliResult {
    int exit_code = 0;
    std::string out;
    std::string err;
};

CliResult run_ceuc(const std::string& args, const std::string& program,
                   const std::string& stdin_text = "") {
    static int n = 0;
    std::string base = ::testing::TempDir() + "ceuc_analysis_" +
                       std::to_string(getpid()) + "_" + std::to_string(n++);
    {
        std::ofstream f(base + ".ceu");
        f << program;
    }
    {
        std::ofstream f(base + ".in");
        f << stdin_text;
    }
    std::string cmd = ceuc_path() + " " + args + " " + base + ".ceu < " + base +
                      ".in > " + base + ".out 2>" + base + ".err";
    CliResult r;
    int rc = std::system(cmd.c_str());
    r.exit_code = WEXITSTATUS(rc);
    auto slurp = [](const std::string& p) {
        std::ifstream f(p);
        std::ostringstream os;
        os << f.rdbuf();
        return os.str();
    };
    r.out = slurp(base + ".out");
    r.err = slurp(base + ".err");
    return r;
}

TEST(CliAnalysis, IncompleteAnalysisWarnsAndStaysHonest) {
    CliResult r = run_ceuc("--max-states 4", kFigure2);
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.err.find("warning: temporal analysis incomplete (state budget "
                         "exhausted"),
              std::string::npos)
        << r.err;
    EXPECT_NE(r.out.find("INCOMPLETE"), std::string::npos) << r.out;
    EXPECT_EQ(r.out.find("OK"), std::string::npos) << r.out;
}

TEST(CliAnalysis, StrictTurnsIncompleteIntoFailure) {
    CliResult r = run_ceuc("--strict --max-states 4", kFigure2);
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("--strict"), std::string::npos) << r.err;
    // A complete analysis is unaffected by --strict.
    CliResult ok = run_ceuc("--strict", "input void A; await A;");
    EXPECT_EQ(ok.exit_code, 0) << ok.err;
}

TEST(CliAnalysis, AnalysisJobsMatchesSerialVerdict) {
    CliResult serial = run_ceuc("", kFigure2);
    CliResult par = run_ceuc("--analysis.jobs 4", kFigure2);
    EXPECT_EQ(serial.exit_code, 1);
    EXPECT_EQ(par.exit_code, 1);
    EXPECT_EQ(serial.err, par.err);
}

TEST(CliAnalysis, LegacyFlagWarnsButStillWorks) {
    // Un-dotted spellings stay accepted, but each one points at its dotted
    // replacement exactly once on stderr; the verdict is unaffected.
    CliResult legacy = run_ceuc("--analysis-jobs 4", kFigure2);
    EXPECT_EQ(legacy.exit_code, 1);
    EXPECT_NE(legacy.err.find("--analysis-jobs is deprecated"), std::string::npos)
        << legacy.err;
    EXPECT_NE(legacy.err.find("--analysis.jobs"), std::string::npos) << legacy.err;
    CliResult dotted = run_ceuc("--analysis.jobs 4", kFigure2);
    EXPECT_EQ(dotted.err.find("deprecated"), std::string::npos) << dotted.err;
}

TEST(CliAnalysis, LintEmitsJsonPerDiagnostic) {
    CliResult r = run_ceuc("--lint --diag-format=json", kFigure2);
    EXPECT_EQ(r.exit_code, 1);  // the temporal conflict is an error
    std::istringstream is(r.out);
    std::string line;
    int objects = 0;
    bool temporal = false;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        ++objects;
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        temporal = temporal || line.find("\"pass\":\"temporal\"") != std::string::npos;
    }
    EXPECT_GE(objects, 1);
    EXPECT_TRUE(temporal) << r.out;
}

TEST(CliAnalysis, ModularCacheCountersProveIncrementality) {
    std::string dir = ::testing::TempDir() + "ceuc_analysis_cache_" +
                      std::to_string(getpid());
    std::string prog = "input void A, B;\npar do\n   loop do await A; end\n"
                       "with\n   loop do await B; end\nend\n";
    CliResult cold = run_ceuc("--analysis.cache-dir=" + dir, prog);
    EXPECT_EQ(cold.exit_code, 0) << cold.err;
    EXPECT_NE(cold.err.find("cache hits=0 misses=2 stores=2"), std::string::npos)
        << cold.err;
    CliResult warm = run_ceuc("--analysis.cache-dir=" + dir, prog);
    EXPECT_EQ(warm.exit_code, 0) << warm.err;
    EXPECT_NE(warm.err.find("cache hits=2 misses=0 stores=0"), std::string::npos)
        << warm.err;
}

TEST(CliAnalysis, ExplainScriptReplaysIntoTheConflict) {
    CliResult explain = run_ceuc("--explain", kFigure2);
    EXPECT_EQ(explain.exit_code, 1);
    EXPECT_NE(explain.err.find("witness: boot -> A"), std::string::npos)
        << explain.err;
    // The stdout is a complete --run script; feed it back to the runtime.
    CliResult run = run_ceuc("--run --no-analysis", kFigure2, explain.out);
    EXPECT_EQ(run.exit_code, 0) << run.err;
    // 6 As: w2 fires at #2,#4,#6 and w3 at #3,#6 — the last reaction runs both.
    EXPECT_EQ(run.out, "w2\nw3\nw2\nw2\nw3\n");
}

}  // namespace
}  // namespace ceu
