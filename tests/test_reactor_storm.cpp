// Reactor crash-storm soak: a seeded fault plan kills ~10% of a 10k fleet
// mid-run; supervision must bring every non-quarantined member back (100%
// recovery), the fleet must drain to quiescence with no stalled shard, and
// the final merged stats must be identical at 1/2/8 workers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "reactor/reactor.hpp"

namespace {

using namespace ceu;

/// ADD 0 divides by zero — the kill signal for the storm.
constexpr const char* kFragile = R"(
    input int ADD;
    input void STOP;
    int total = 0;
    int v = 0;
    par do
       loop do
          v = await ADD;
          total = total + 100 / v;
       end
    with
       await STOP;
       return total;
    end
)";

uint64_t splitmix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr size_t kFleet = 10'000;
constexpr uint64_t kStormSeed = 2026;

/// The seeded fault plan: ~10% of the fleet, chosen by hash, never by
/// position in a shard.
bool killed(reactor::InstanceId id) {
    return splitmix64(kStormSeed ^ id) % 10 == 0;
}

struct StormRun {
    std::string stats_json;
    std::vector<int64_t> results;
    size_t rounds = 0;          // total rounds run by the drains
    size_t restart_waits = 0;   // advance iterations to flush the backoffs
};

StormRun run_storm(size_t workers) {
    reactor::ReactorConfig rc;
    rc.workers = workers;
    rc.seed = kStormSeed;
    rc.supervise.restart = reactor::SupervisorPolicy::Restart::Reboot;
    rc.supervise.backoff_initial_ticks = 1;
    rc.supervise.backoff_max_ticks = 32;
    rc.supervise.backoff_jitter_permille = 250;
    reactor::Reactor r(rc);

    auto cp = std::make_shared<const flat::CompiledProgram>(flat::compile(kFragile));
    for (size_t i = 0; i < kFleet; ++i) r.add_instance(cp);
    // Even members restore their latest checkpoint, odd members reboot
    // from scratch — both recovery paths under storm load.
    for (size_t i = 0; i < kFleet; i += 2) {
        reactor::SupervisorPolicy p = rc.supervise;
        p.restart = reactor::SupervisorPolicy::Restart::Restore;
        p.checkpoint_every = 1;
        r.set_policy(static_cast<reactor::InstanceId>(i), p);
    }
    r.boot();

    StormRun out;

    // Wave 0: healthy traffic (and the checkpoints the restorers rely on).
    for (size_t i = 0; i < kFleet; ++i) {
        r.inject(static_cast<reactor::InstanceId>(i), "ADD",
                 rt::Value::integer(static_cast<int64_t>(i % 7 + 1)));
    }
    out.rounds += r.drain();

    // Wave 1: the storm. ~10% of the fleet takes the kill event mid-run,
    // interleaved with healthy traffic for everyone else.
    size_t kills = 0;
    for (size_t i = 0; i < kFleet; ++i) {
        auto id = static_cast<reactor::InstanceId>(i);
        if (killed(id)) {
            r.inject(id, "ADD", rt::Value::integer(0));
            ++kills;
        } else {
            r.inject(id, "ADD", rt::Value::integer(1));
        }
    }
    out.rounds += r.drain();

    // Flush every pending supervised restart. Each iteration jumps the
    // fleet clock to the earliest due backoff; the loop must terminate
    // (every restart executes, none reschedules — bounded by the kill
    // count plus jitter collisions).
    for (Micros due = r.next_restart_due(); due >= 0; due = r.next_restart_due()) {
        r.advance(due - r.now());
        out.rounds += r.drain();
        ++out.restart_waits;
        if (out.restart_waits > kills + 8) {
            ADD_FAILURE() << "restart agenda not draining";
            break;
        }
    }

    // 100% recovery: every killed member is running again (quarantine is
    // off, so nothing may stay down), and takes traffic.
    for (size_t i = 0; i < kFleet; ++i) {
        auto id = static_cast<reactor::InstanceId>(i);
        EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Running)
            << "instance " << i << (killed(id) ? " (killed)" : " (healthy)");
        r.inject(id, "ADD", rt::Value::integer(2));
    }
    out.rounds += r.drain();
    for (size_t i = 0; i < kFleet; ++i) {
        r.inject(static_cast<reactor::InstanceId>(i), "STOP");
    }
    out.rounds += r.drain();

    out.results.reserve(kFleet);
    for (size_t i = 0; i < kFleet; ++i) {
        auto id = static_cast<reactor::InstanceId>(i);
        EXPECT_EQ(r.instance(id).status(), rt::Engine::Status::Terminated)
            << "instance " << i;
        out.results.push_back(r.instance(id).result().as_int());
    }

    obs::ProcessStats st = r.fleet_stats();
    EXPECT_EQ(st.faults, kills);
    EXPECT_EQ(st.supervised_restarts, kills);
    EXPECT_EQ(st.quarantines, 0u);
    st.clear_measured();
    out.stats_json = st.to_json();
    return out;
}

TEST(ReactorStorm, TenPercentOfTenThousandRecoverDeterministically) {
    StormRun w1 = run_storm(1);
    StormRun w8 = run_storm(8);
    EXPECT_EQ(w1.stats_json, w8.stats_json);
    ASSERT_EQ(w1.results.size(), w8.results.size());
    EXPECT_EQ(w1.results, w8.results);

    // Spot-check the recovery semantics: a killed restorer kept its wave-0
    // state (checkpointed before the kill), a killed rebooter lost it.
    bool saw_restore = false, saw_reboot = false;
    for (size_t i = 0; i < kFleet && !(saw_restore && saw_reboot); ++i) {
        if (!killed(static_cast<reactor::InstanceId>(i))) continue;
        int64_t wave0 = 100 / static_cast<int64_t>(i % 7 + 1);
        if (i % 2 == 0) {
            EXPECT_EQ(w1.results[i], wave0 + 50) << "restorer " << i;
            saw_restore = true;
        } else {
            EXPECT_EQ(w1.results[i], 50) << "rebooter " << i;
            saw_reboot = true;
        }
    }
    EXPECT_TRUE(saw_restore);
    EXPECT_TRUE(saw_reboot);

    // No stalled shard: every drain converged in a few rounds, not at the
    // runaway bound.
    EXPECT_LT(w1.rounds, 10'000u);
    EXPECT_LT(w8.rounds, 10'000u);
}

TEST(ReactorStorm, StormIsReproducibleAtTwoWorkers) {
    StormRun a = run_storm(2);
    StormRun b = run_storm(2);
    EXPECT_EQ(a.stats_json, b.stats_json);
    EXPECT_EQ(a.results, b.results);
}

}  // namespace
