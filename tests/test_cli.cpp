// Integration tests of the `ceuc` compiler driver (built alongside the
// tests; invoked as a subprocess).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "aot/aot.hpp"

namespace ceu {
namespace {

std::string ceuc_path() {
    // tests/ and src/ are sibling build directories.
    return std::string(CEU_BUILD_DIR) + "/src/ceuc";
}

struct CliResult {
    int exit_code = 0;
    std::string out;
};

CliResult run_cli(const std::string& args, const std::string& program,
                  const std::string& stdin_text = "") {
    static int n = 0;
    std::string base = ::testing::TempDir() + "ceuc_test_" + std::to_string(getpid()) +
                       "_" + std::to_string(n++);
    {
        std::ofstream f(base + ".ceu");
        f << program;
    }
    {
        std::ofstream f(base + ".in");
        f << stdin_text;
    }
    std::string cmd = ceuc_path() + " " + args + " " + base + ".ceu < " + base +
                      ".in > " + base + ".out 2>" + base + ".err";
    CliResult r;
    int rc = std::system(cmd.c_str());
    r.exit_code = WEXITSTATUS(rc);
    std::ifstream f(base + ".out");
    std::ostringstream os;
    os << f.rdbuf();
    r.out = os.str();
    return r;
}

const char* kCounter = R"(
    input int Restart;
    internal void changed;
    int v = 0;
    par do
       loop do await 1s; v = v + 1; emit changed; end
    with
       loop do v = await Restart; emit changed; end
    with
       loop do await changed; _printf("v = %d\n", v); end
    end
)";

TEST(Cli, CheckReportsStats) {
    CliResult r = run_cli("", kCounter);
    EXPECT_EQ(r.exit_code, 0) << r.out;
    EXPECT_NE(r.out.find("OK"), std::string::npos);
    EXPECT_NE(r.out.find("DFA states"), std::string::npos);
}

TEST(Cli, RunExecutesAScript) {
    CliResult r = run_cli("--run", kCounter, "T 1000000\nE Restart 5\nT 1000000\n");
    EXPECT_EQ(r.out, "v = 1\nv = 5\nv = 6\n");
}

TEST(Cli, RefusesNondeterministicPrograms) {
    CliResult r = run_cli("", "int v; par/and do v = 1; with v = 2; end return v;");
    EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, NoAnalysisSkipsTheRefusal) {
    CliResult r = run_cli("--no-analysis",
                          "int v; par/and do v = 1; with v = 2; end return v;");
    EXPECT_EQ(r.exit_code, 0);
}

TEST(Cli, EmitCPrintsTheTranslation) {
    CliResult r = run_cli("--emit-c", kCounter);
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("void ceu_go_init(void)"), std::string::npos);
}

TEST(Cli, DisasmAndDots) {
    EXPECT_NE(run_cli("--disasm", kCounter).out.find("par_spawn"), std::string::npos);
    EXPECT_NE(run_cli("--flow-dot", kCounter).out.find("digraph"), std::string::npos);
    EXPECT_NE(run_cli("--dfa-dot", kCounter).out.find("DFA #"), std::string::npos);
}

TEST(Cli, CompileErrorsGoToStderrWithNonZeroExit) {
    CliResult r = run_cli("", "loop do v = 1; end");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_TRUE(r.out.empty());
}

// -- the --run exit contract: 0 ran clean / 1 faulted / 2 usage ---------------

TEST(Cli, RunExitsZeroWhateverTheProgramReturns) {
    // Historically --run exited with the program's result, which aliased
    // `return 1` with "engine faulted". The result goes to stderr now.
    CliResult r = run_cli("--run", "input void GO; await GO; return 7;", "E GO\n");
    EXPECT_EQ(r.exit_code, 0);
    r = run_cli("--run", "input void GO; await GO; return 1;", "E GO\n");
    EXPECT_EQ(r.exit_code, 0);
}

TEST(Cli, RunExitsOneOnAFault) {
    CliResult r = run_cli("--run", "input int Tick; int v = await Tick; v = 1 / v;",
                          "E Tick 0\n");
    EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, FaultsAreStructuredUnderJsonDiagFormat) {
    CliResult r = run_cli("--run --diag-format=json",
                          "input int Tick; int v = await Tick; v = 1 / v;",
                          "E Tick 0\n");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.out.find("\"pass\":\"fault\""), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(r.out.find("\"at_reaction\":"), std::string::npos);
    EXPECT_NE(r.out.find("\"line\":"), std::string::npos);
}

TEST(Cli, UsageErrorsExitTwo) {
    EXPECT_EQ(run_cli("--no-such-flag", kCounter).exit_code, 2);
    EXPECT_EQ(run_cli("--checkpoint=", kCounter).exit_code, 2);
}

TEST(Cli, BackendAotRunsTheSameScript) {
    if (!aot::toolchain_available()) GTEST_SKIP() << "no host C compiler";
    CliResult r = run_cli("--run --backend=aot", kCounter,
                          "T 1000000\nE Restart 5\nT 1000000\n");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.out, "v = 1\nv = 5\nv = 6\n");
}

TEST(Cli, BackendAotFallsBackToInterpWithAStructuredDiagnostic) {
    // A missing compiler degrades to the interpreter: the run still
    // happens (same output, exit 0) and a "pass":"aot" diagnostic says
    // why, so CI can tell a fallback from a clean aot run.
    CliResult r = run_cli(
        "--run --backend=aot --aot-cc=/nonexistent/ceu-cc --diag-format=json",
        kCounter, "T 1000000\nE Restart 5\nT 1000000\n");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("\"pass\":\"aot\""), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("v = 6"), std::string::npos) << r.out;
}

TEST(Cli, BackendAotReportsABrokenCompilerToo) {
    // The compiler exists but rejects everything: same degradation path,
    // different error text (cc failed rather than not found).
    CliResult r = run_cli("--run --backend=aot --aot-cc=/bin/false "
                          "--diag-format=json",
                          kCounter, "T 1000000\n");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.out.find("\"pass\":\"aot\""), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("v = 1"), std::string::npos) << r.out;
}

TEST(Cli, BackendMixedFallsBackQuietly) {
    // mixed means "aot when available": no toolchain is not a reportable
    // condition, the run just uses the interpreter.
    CliResult r = run_cli(
        "--run --backend=mixed --aot-cc=/nonexistent/ceu-cc --diag-format=json",
        kCounter, "T 1000000\n");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.out.find("\"pass\":\"aot\""), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("v = 1"), std::string::npos) << r.out;
}

TEST(Cli, BackendRejectsUnknownValues) {
    CliResult r = run_cli("--run --backend=jit", kCounter, "");
    EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, CheckpointRestoreRoundTripsAcrossProcesses) {
    std::string snap = ::testing::TempDir() + "ceuc_snap_" +
                       std::to_string(getpid()) + ".ceusnap";
    // First process: two seconds in, checkpoint and exit.
    CliResult a = run_cli("--run --checkpoint=" + snap, kCounter,
                          "T 1s\nE Restart 5\nQ\n");
    EXPECT_EQ(a.exit_code, 0);
    EXPECT_EQ(a.out, "v = 1\nv = 5\n");
    // Second process: restore and play the remaining script. Output is
    // exactly the suffix the uninterrupted RunExecutesAScript run printed
    // after this point.
    CliResult b = run_cli("--run --restore=" + snap, kCounter, "T 1s\nQ\n");
    EXPECT_EQ(b.exit_code, 0);
    EXPECT_EQ(b.out, "v = 6\n");
    // Restoring into a different program is refused, not misexecuted.
    CliResult c = run_cli("--run --restore=" + snap,
                          "input void GO; await GO; return 0;", "Q\n");
    EXPECT_EQ(c.exit_code, 1);
    std::remove(snap.c_str());
}

}  // namespace
}  // namespace ceu
