// Flattener tests: the static memory layout (§4.2 — sequential reuse,
// parallel coexistence), gate allocation (§4.3 — contiguous ranges per
// region), rejoin priorities (§4.1), and structural invariants of the flat
// program, checked over a corpus.
#include <gtest/gtest.h>

#include "codegen/flatten.hpp"
#include "demos/demos.hpp"

namespace ceu {
namespace {

using flat::CompiledProgram;
using flat::FlatProgram;
using flat::IOp;

int slot_of(const CompiledProgram& cp, const std::string& var) {
    for (size_t d = 0; d < cp.sema.vars.size(); ++d) {
        if (cp.sema.vars[d].name == var) return cp.flat.var_slot[d];
    }
    return -1;
}

// ---------------------------------------------------------------------------
// Memory layout (§4.2)
// ---------------------------------------------------------------------------

TEST(Layout, SequentialBlocksReuseSlots) {
    // `a` and `b` live in disjoint do-blocks: same slot.
    CompiledProgram cp = flat::compile(R"(
        do int a = 1; _trace(a); end
        do int b = 2; _trace(b); end
    )");
    EXPECT_EQ(slot_of(cp, "a"), slot_of(cp, "b"));
}

TEST(Layout, ParallelBranchesCoexist) {
    CompiledProgram cp = flat::compile(R"(
        input void E;
        par do
           int a = 1; await E; _trace(a);
        with
           int b = 2; await E; _trace(b);
        end
    )");
    EXPECT_NE(slot_of(cp, "a"), slot_of(cp, "b"));
}

TEST(Layout, CodeAfterTheLoopReusesLoopMemory) {
    // The paper's §4.2 example: "the code following the loop reuses all
    // memory from the loop."
    CompiledProgram cp = flat::compile(R"(
        input int A, B;
        loop do
           int a = await A;
           if a then break; end
        end
        int after = 1;
        _trace(after);
    )");
    // `after` must land at or below the loop's storage (which also holds
    // the loop's hidden scheduling flag), i.e. the space is reclaimed.
    EXPECT_LE(slot_of(cp, "after"), slot_of(cp, "a"));
}

TEST(Layout, ArraysOccupyConsecutiveSlots) {
    CompiledProgram cp = flat::compile("int[8] arr; int tail = 0; _trace(arr[0] + tail);");
    int a = slot_of(cp, "arr");
    int t = slot_of(cp, "tail");
    EXPECT_EQ(t, a + 8);
}

TEST(Layout, DataSizeIsTheMaxOverParallelNotTheSum) {
    // Two sequential pars of 2 slots each need 2 slots, not 4 (+hidden).
    CompiledProgram seq = flat::compile(R"(
        input void E;
        par/and do int a = 1; await E; _trace(a); with int b = 2; await E; _trace(b); end
        par/and do int c = 3; await E; _trace(c); with int d = 4; await E; _trace(d); end
    )");
    CompiledProgram par = flat::compile(R"(
        input void E;
        par/and do
           par/and do int a = 1; await E; _trace(a); with int b = 2; await E; _trace(b); end
        with
           par/and do int c = 3; await E; _trace(c); with int d = 4; await E; _trace(d); end
        end
    )");
    EXPECT_LT(seq.flat.data_size, par.flat.data_size);
    EXPECT_EQ(slot_of(seq, "a"), slot_of(seq, "c"));  // reuse across pars
    EXPECT_NE(slot_of(par, "a"), slot_of(par, "c"));  // coexistence
}

// ---------------------------------------------------------------------------
// Gate allocation (§4.3)
// ---------------------------------------------------------------------------

struct CorpusCase {
    const char* name;
    const char* source;
};

std::vector<CorpusCase> corpus() {
    return {
        {"quickstart", demos::kQuickstart},
        {"temperature", demos::kTemperature},
        {"ring", demos::kRing},
        {"ship", demos::kShip},
        {"mario", demos::kMarioReplay},
    };
}

class FlatInvariants : public ::testing::TestWithParam<size_t> {};

TEST_P(FlatInvariants, RegionsHaveWellFormedRanges) {
    CorpusCase c = corpus()[GetParam()];
    CompiledProgram cp = flat::compile(c.source, c.name);
    const FlatProgram& fp = cp.flat;
    for (const auto& r : fp.regions) {
        EXPECT_LE(r.pc_begin, r.pc_end) << c.name;
        EXPECT_GE(r.pc_begin, 0) << c.name;
        EXPECT_LE(static_cast<size_t>(r.pc_end), fp.code.size()) << c.name;
        EXPECT_LE(r.gate_begin, r.gate_end) << c.name;
        EXPECT_LE(static_cast<size_t>(r.gate_end), fp.gates.size()) << c.name;
    }
}

TEST_P(FlatInvariants, GatesOfARegionLieInsideItsPcRange) {
    // A region's gates belong to awaits within its pc range — the property
    // that makes range-kill (memset) correct.
    CorpusCase c = corpus()[GetParam()];
    CompiledProgram cp = flat::compile(c.source, c.name);
    const FlatProgram& fp = cp.flat;
    for (const auto& r : fp.regions) {
        for (size_t pc = 0; pc < fp.code.size(); ++pc) {
            const auto& i = fp.code[pc];
            int gate = -1;
            switch (i.op) {
                case IOp::AwaitExt:
                case IOp::AwaitInt:
                case IOp::AwaitTime:
                case IOp::AwaitDyn:
                case IOp::AwaitForever:
                    gate = i.b;
                    break;
                default:
                    continue;
            }
            bool pc_inside = static_cast<int>(pc) >= r.pc_begin &&
                             static_cast<int>(pc) < r.pc_end;
            bool gate_inside = gate >= r.gate_begin && gate < r.gate_end;
            if (pc_inside) {
                EXPECT_TRUE(gate_inside)
                    << c.name << ": await at pc " << pc << " gate " << gate
                    << " outside its region's gate range";
            }
        }
    }
}

TEST_P(FlatInvariants, EveryGateHasAValidContinuation) {
    CorpusCase c = corpus()[GetParam()];
    CompiledProgram cp = flat::compile(c.source, c.name);
    for (const auto& g : cp.flat.gates) {
        EXPECT_GE(g.cont, 0) << c.name;
        EXPECT_LT(static_cast<size_t>(g.cont), cp.flat.code.size()) << c.name;
    }
}

TEST_P(FlatInvariants, JumpTargetsAreInBounds) {
    CorpusCase c = corpus()[GetParam()];
    CompiledProgram cp = flat::compile(c.source, c.name);
    const FlatProgram& fp = cp.flat;
    for (const auto& i : fp.code) {
        if (i.op == IOp::Jump || i.op == IOp::IfNot) {
            ASSERT_GE(i.a, 0) << c.name;
            ASSERT_LT(static_cast<size_t>(i.a), fp.code.size()) << c.name;
        }
    }
}

TEST_P(FlatInvariants, RejoinPrioritiesAreBelowNormal) {
    CorpusCase c = corpus()[GetParam()];
    CompiledProgram cp = flat::compile(c.source, c.name);
    for (const auto& p : cp.flat.pars) {
        EXPECT_LT(p.prio, flat::kNormalPrio) << c.name;
        EXPECT_GE(p.prio, 0) << c.name;
    }
    for (const auto& e : cp.flat.escapes) {
        EXPECT_LT(e.prio, flat::kNormalPrio) << c.name;
    }
}

TEST_P(FlatInvariants, ExternalGateListsMatchGateTable) {
    CorpusCase c = corpus()[GetParam()];
    CompiledProgram cp = flat::compile(c.source, c.name);
    const FlatProgram& fp = cp.flat;
    size_t listed = 0;
    for (size_t e = 0; e < fp.ext_gates.size(); ++e) {
        for (int g : fp.ext_gates[e]) {
            EXPECT_EQ(fp.gates[static_cast<size_t>(g)].kind,
                      flat::GateInfo::Kind::Ext);
            EXPECT_EQ(fp.gates[static_cast<size_t>(g)].event, static_cast<int>(e));
            ++listed;
        }
    }
    size_t ext_gates = 0;
    for (const auto& g : fp.gates) {
        if (g.kind == flat::GateInfo::Kind::Ext) ++ext_gates;
    }
    EXPECT_EQ(listed, ext_gates) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, FlatInvariants,
                         ::testing::Range<size_t>(0, corpus().size()),
                         [](const auto& info) { return corpus()[info.param].name; });

// ---------------------------------------------------------------------------
// Nesting depth / priorities
// ---------------------------------------------------------------------------

TEST(Flatten, InnerRejoinsGetHigherPriorityThanOuter) {
    CompiledProgram cp = flat::compile(R"(
        input void A, B;
        par/or do
           par/and do
              await A;
           with
              await B;
           end
        with
           await 1s;
        end
    )");
    ASSERT_EQ(cp.flat.pars.size(), 2u);
    // pars are created in source order: outer par/or first, inner par/and
    // second; the inner one must carry the larger (earlier) priority.
    EXPECT_GT(cp.flat.pars[1].prio, cp.flat.pars[0].prio);
    EXPECT_EQ(cp.flat.max_depth, 2);
}

TEST(Flatten, DisassemblerMentionsEveryOpcode) {
    CompiledProgram cp = flat::compile(demos::kMarioReplay);
    std::string dis = flat::disassemble(cp.flat);
    for (const char* needle :
         {"par_spawn", "branch_end", "await_ext", "await_time", "emit_int",
          "kill_region", "async_run", "jump", "assign"}) {
        EXPECT_NE(dis.find(needle), std::string::npos) << needle;
    }
}

TEST(Flatten, RomFootprintIsPositive) {
    CompiledProgram cp = flat::compile(demos::kQuickstart);
    EXPECT_GT(cp.flat.rom_footprint(), 0u);
}

TEST(Flatten, CompileThrowsOnAnyPhaseError) {
    EXPECT_THROW(flat::compile("loop do v = 1; end"), CompileError);   // sema
    EXPECT_THROW(flat::compile("par do nothing; end"), CompileError);  // parse
    EXPECT_THROW(flat::compile("int 5abc;"), CompileError);            // lex
}

}  // namespace
}  // namespace ceu
