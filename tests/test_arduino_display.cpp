// Arduino and display substrate tests: LCD geometry, keypad debouncing
// (the ship demo's 50ms double-read), analog source composition, and the
// SDL-ish display's poll/redraw/mark-frame machinery.
#include <gtest/gtest.h>

#include "arduino/binding.hpp"
#include "codegen/flatten.hpp"
#include "display/binding.hpp"
#include "env/driver.hpp"

namespace ceu {
namespace {

using arduino::Board;
using arduino::Lcd;

TEST(LcdUnit, WriteAdvancesAndWraps) {
    Lcd lcd;
    lcd.set_cursor(14, 0);
    lcd.print("abc");  // wraps from (0,14) to (1,0)
    EXPECT_EQ(lcd.at(0, 14), 'a');
    EXPECT_EQ(lcd.at(0, 15), 'b');
    EXPECT_EQ(lcd.at(1, 0), 'c');
    EXPECT_EQ(lcd.writes, 3u);
}

TEST(LcdUnit, ClearResetsEverything) {
    Lcd lcd;
    lcd.print("xyz");
    lcd.clear();
    EXPECT_EQ(lcd.render(), std::string(16, ' ') + "\n" + std::string(16, ' '));
}

TEST(LcdUnit, CursorClamping) {
    Lcd lcd;
    lcd.set_cursor(99, 99);
    lcd.write('z');
    EXPECT_EQ(lcd.at(1, 15), 'z');
}

TEST(BoardUnit, KeypadPressWindows) {
    auto src = Board::keypad_press(arduino::kRawUp, 100 * kMs, 200 * kMs, /*bounce=*/0);
    EXPECT_EQ(src(50 * kMs), 1023);
    EXPECT_EQ(src(150 * kMs), arduino::kRawUp);
    EXPECT_EQ(src(250 * kMs), 1023);
}

TEST(BoardUnit, BounceAlternatesNearEdges) {
    auto src = Board::keypad_press(arduino::kRawUp, 100 * kMs, 300 * kMs,
                                   /*bounce=*/5 * kMs);
    // Within the bounce window values flip between idle and the key level.
    bool saw_idle = false, saw_key = false;
    for (Micros t = 100 * kMs; t < 105 * kMs; t += 500) {
        int64_t v = src(t);
        saw_idle = saw_idle || v == 1023;
        saw_key = saw_key || v == arduino::kRawUp;
    }
    EXPECT_TRUE(saw_idle);
    EXPECT_TRUE(saw_key);
    // Mid-press is stable.
    EXPECT_EQ(src(200 * kMs), arduino::kRawUp);
}

TEST(BoardUnit, CombineLastNonIdleWins) {
    auto src = Board::combine({Board::keypad_press(arduino::kRawUp, 0, 100 * kMs, 0),
                               Board::keypad_press(arduino::kRawDown, 50 * kMs,
                                                   150 * kMs, 0)});
    EXPECT_EQ(src(25 * kMs), arduino::kRawUp);
    EXPECT_EQ(src(75 * kMs), arduino::kRawDown);  // overlap: later source wins
    EXPECT_EQ(src(125 * kMs), arduino::kRawDown);
    EXPECT_EQ(src(200 * kMs), 1023);
}

TEST(ArduinoBindings, AnalogToKeyMapping) {
    Board board;
    Lcd lcd;
    rt::CBindings c = arduino::make_arduino_bindings(board, lcd);
    flat::CompiledProgram cp = flat::compile(R"(
        int up = _analog2key(100);
        int down = _analog2key(300);
        int none = _analog2key(1023);
        return up * 100 + down * 10 + none;
    )");
    env::Driver d(cp, &c);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(),
              arduino::kKeyUp * 100 + arduino::kKeyDown * 10 + arduino::kKeyNone);
}

TEST(ArduinoBindings, DigitalWritesAreRecorded) {
    Board board;
    Lcd lcd;
    rt::CBindings c = arduino::make_arduino_bindings(board, lcd);
    flat::CompiledProgram cp = flat::compile(R"(
        _pinMode(13, 1);
        _digitalWrite(13, _HIGH);
        await 100ms;
        _digitalWrite(13, _LOW);
        return 0;
    )");
    env::Driver d(cp, &c);
    d.run(env::Script().advance(kSec));
    ASSERT_EQ(board.digital_history().size(), 2u);
    EXPECT_EQ(board.digital_history()[0].pin, 13);
    EXPECT_TRUE(board.digital_history()[0].level);
    EXPECT_EQ(board.digital_history()[1].at, 100 * kMs);
    EXPECT_FALSE(board.digital_read(13));
}

TEST(ArduinoBindings, DebouncePatternFiltersBounce) {
    // The ship demo's generator: two reads 50ms apart must agree. A bouncy
    // edge is filtered; a held key is reported once.
    Board board;
    Lcd lcd;
    rt::CBindings c = arduino::make_arduino_bindings(board, lcd);
    board.set_analog_source(0, Board::keypad_press(arduino::kRawUp, 100 * kMs,
                                                   400 * kMs, /*bounce=*/3 * kMs));
    flat::CompiledProgram cp = flat::compile(R"(
        int key = _KEY_NONE;
        int presses = 0;
        par/or do
           loop do
              int read1 = _analog2key(_analogRead(0));
              await 50ms;
              int read2 = _analog2key(_analogRead(0));
              if read1 == read2 && key != read1 then
                 key = read1;
                 if key != _KEY_NONE then
                    presses = presses + 1;
                 end
              end
           end
        with
           await 1s;
        end
        return presses;
    )");
    env::Driver d(cp, &c);
    d.boot();
    d.engine().go_time(kSec);
    EXPECT_EQ(d.engine().result().as_int(), 1);  // one press, despite bounce
}

// ---------------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------------

TEST(DisplayUnit, PollDrainsKeysFifo) {
    display::Display disp;
    disp.push_key();
    disp.push_key();
    EXPECT_EQ(disp.pending(), 2u);
    EXPECT_EQ(disp.poll_event(), display::kEventKeyDown);
    EXPECT_EQ(disp.poll_event(), display::kEventKeyDown);
    EXPECT_EQ(disp.poll_event(), display::kEventNone);
}

TEST(DisplayUnit, RedrawToggleAndMarkFrame) {
    display::Display disp;
    disp.redraw({1, 0, 0, 0});
    disp.set_redraw(false);
    disp.redraw({2, 0, 0, 0});
    disp.redraw({3, 0, 0, 0});
    EXPECT_EQ(disp.frames().size(), 1u);
    EXPECT_EQ(disp.redraw_calls(), 3u);
    disp.mark_frame();  // surfaces the last hidden scene
    ASSERT_EQ(disp.frames().size(), 2u);
    EXPECT_EQ(disp.frames()[1].mario_x, 3);
}

TEST(SdlBindings, PollEventWritesThroughThePointer) {
    display::Display disp;
    disp.push_key();
    rt::CBindings c = display::make_sdl_bindings(disp);
    flat::CompiledProgram cp = flat::compile(R"(
        _SDL_Event event;
        int got = 0;
        if _SDL_PollEvent(&event) then
           if event.type == _SDL_KEYDOWN then
              got = 1;
           end
        end
        int empty = _SDL_PollEvent(&event);
        _SDL_Delay(10);
        return got * 10 + empty;
    )");
    env::Driver d(cp, &c);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 10);  // got=1, then queue empty
    EXPECT_EQ(disp.total_delay(), 10 * kMs);
}

}  // namespace
}  // namespace ceu
