// Deeper runtime-semantics tests: concurrent par/or terminations (the
// once-guard), kills reaching suspended emitters and running asyncs, value
// do-blocks, C bindings (globals, arrays, fields), and engine lifecycle
// edge cases.
#include <gtest/gtest.h>

#include "codegen/flatten.hpp"
#include "env/driver.hpp"

namespace ceu {
namespace {

using env::Driver;
using env::Script;
using env::ScriptItem;
using flat::CompiledProgram;
using rt::CBindings;
using rt::Engine;
using rt::Value;

void ev(Driver& d, const char* name, int64_t v = 0) {
    d.feed({ScriptItem::Kind::Event, name, Value::integer(v), 0});
}

TEST(RuntimeMore, BothParOrTrailsTerminatingSameReactionRunOnce) {
    // Both branches complete on the same A; the continuation must execute
    // exactly once (paper §2.1: "the program proceeds ... only after all of
    // them execute").
    CompiledProgram cp = flat::compile(R"(
        input void A;
        int n = 0;
        loop do
           par/or do
              await A;
              _trace("b1");
           with
              await A;
              _trace("b2");
           end
           n = n + 1;
           _trace("joined", n);
        end
    )");
    Driver d(cp);
    d.boot();
    ev(d, "A");
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"b1", "b2", "joined 1"}));
    ev(d, "A");
    EXPECT_EQ(d.trace().back(), "joined 2");
}

TEST(RuntimeMore, ValueParWithConcurrentReturnAssignsOnce) {
    CompiledProgram cp = flat::compile(R"(
        input void A;
        int n = 0;
        loop do
           int v = par/or do
              await A;
              return 1;
           with
              await A;
              return 2;
           end;
           n = n + 1;
           _trace("v", v, "n", n);
        end
    )");
    Driver d(cp);
    d.boot();
    ev(d, "A");
    // First escape wins; the continuation (and assignment) runs once.
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"v 1 n 1"}));
}

TEST(RuntimeMore, ParOrKillCancelsSuspendedEmitter) {
    // Trail B emits an internal event; the awakened trail terminates the
    // par/or, killing trail B while it is suspended on the emit stack — it
    // must never resume.
    CompiledProgram cp = flat::compile(R"(
        input void A;
        internal void e;
        par/or do
           await A;
           emit e;
           _trace("emitter resumed?");
        with
           await e;
           _trace("waiter");
        end
        _trace("after");
        return 0;
    )");
    Driver d(cp);
    d.boot();
    ev(d, "A");
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"waiter", "after"}));
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
}

TEST(RuntimeMore, ParOrKillCancelsRunningAsync) {
    CompiledProgram cp = flat::compile(R"(
        int r = 0;
        par/or do
           r = async do
              int i = 0;
              loop do i = i + 1; if i == 1000000 then break; end end
              return i;
           end;
        with
           await 1ms;
           r = -1;
        end
        return r;
    )");
    Driver d(cp);
    d.boot();
    EXPECT_TRUE(d.engine().has_async_work());
    d.engine().go_time(kMs);  // watchdog fires first
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    EXPECT_EQ(d.engine().result().as_int(), -1);
    // The async context died with its trail.
    EXPECT_FALSE(d.engine().has_async_work());
}

TEST(RuntimeMore, ValueDoBlockReturns) {
    CompiledProgram cp = flat::compile(R"(
        int v = do
           int a = 40;
           return a + 2;
        end;
        return v;
    )");
    Driver d(cp);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 42);
}

TEST(RuntimeMore, ValueDoBlockWithAwait) {
    CompiledProgram cp = flat::compile(R"(
        input int A;
        int v = do
           int a = await A;
           return a * 2;
        end;
        return v;
    )");
    Driver d(cp);
    d.boot();
    ev(d, "A", 21);
    EXPECT_EQ(d.engine().result().as_int(), 42);
}

TEST(RuntimeMore, NestedLoopsWithBreaks) {
    CompiledProgram cp = flat::compile(R"(
        input void A;
        int outer = 0, inner = 0;
        loop do
           loop do
              await A;
              inner = inner + 1;
              if inner % 3 == 0 then break; end
           end
           outer = outer + 1;
           _trace("outer", outer);
           if outer == 2 then break; end
        end
        return inner;
    )");
    Driver d(cp);
    d.boot();
    for (int i = 0; i < 6; ++i) ev(d, "A");
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    EXPECT_EQ(d.engine().result().as_int(), 6);
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"outer 1", "outer 2"}));
}

TEST(RuntimeMore, CGlobalsAreReadableAndWritable) {
    CompiledProgram cp = flat::compile(R"(
        _counter = _counter + 5;
        return _counter;
    )");
    int64_t counter = 10;
    CBindings extra;
    extra.global("counter", &counter);
    Driver d(cp, &extra);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 15);
    EXPECT_EQ(counter, 15);
}

TEST(RuntimeMore, CArraysReadAndWrite) {
    CompiledProgram cp = flat::compile(R"(
        _GRID[1][2] = 7;
        return _GRID[1][2] + _GRID[0][0];
    )");
    int64_t grid[2][3] = {{3, 0, 0}, {0, 0, 0}};
    CBindings extra;
    extra.array(
        "GRID",
        [&grid](std::span<const int64_t> idx) {
            return Value::integer(grid[idx[0]][idx[1]]);
        },
        [&grid](std::span<const int64_t> idx, Value v) {
            grid[idx[0]][idx[1]] = v.as_int();
        });
    Driver d(cp, &extra);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 10);
    EXPECT_EQ(grid[1][2], 7);
}

TEST(RuntimeMore, ReadOnlyCArrayRejectsWrites) {
    CompiledProgram cp = flat::compile("_RO[0] = 1;");
    CBindings extra;
    extra.array("RO", [](std::span<const int64_t>) { return Value::integer(0); });
    Driver d(cp, &extra);
    EXPECT_THROW(d.boot(), rt::RuntimeError);
}

TEST(RuntimeMore, FieldAccessorOnCTypedVariable) {
    CompiledProgram cp = flat::compile(R"(
        _SDL_Event event;
        _fill(&event);
        if event.type == 2 then
           _trace("keydown");
        end
        return event.type;
    )");
    CBindings extra;
    extra.fn("fill", [](Engine&, std::span<const Value> args) {
        *args[0].p = 2;
        return Value::integer(0);
    });
    extra.fn("SDL_Event.type", [](Engine&, std::span<const Value> args) {
        return Value::integer(*args[0].p);
    });
    Driver d(cp, &extra);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 2);
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"keydown"}));
}

TEST(RuntimeMore, CastAndSizeof) {
    CompiledProgram cp = flat::compile(R"(
        int a = <int> 300;
        int b = sizeof<int>;
        int c = sizeof<int*>;
        return a + b + c;
    )");
    Driver d(cp);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 300 + 4 + 8);
}

TEST(RuntimeMore, ShortCircuitEvaluation) {
    CompiledProgram cp = flat::compile(R"(
        int calls = 0;
        int r1 = 0 && _bump();
        int r2 = 1 || _bump();
        int r3 = 1 && _bump();
        return calls * 100 + r1 * 10 + r2 + r3;
    )");
    CBindings extra;
    // `calls` is a Céu variable; expose a bump through a C global instead.
    int64_t bumps = 0;
    extra.fn("bump", [&bumps](Engine&, std::span<const Value>) {
        ++bumps;
        return Value::integer(1);
    });
    Driver d(cp, &extra);
    d.run({});
    EXPECT_EQ(bumps, 1);  // only the `1 && _bump()` evaluated the call
    EXPECT_EQ(d.engine().result().as_int(), 0 * 100 + 0 * 10 + 1 + 1);
}

TEST(RuntimeMore, EngineRefusesInputAfterTermination) {
    CompiledProgram cp = flat::compile("return 1;");
    Driver d(cp);
    d.boot();
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    d.engine().go_event(0, Value::integer(0));
    d.engine().go_time(kSec);
    EXPECT_FALSE(d.engine().go_async());
    EXPECT_EQ(d.engine().result().as_int(), 1);
}

TEST(RuntimeMore, AwaitTimeAsValueYieldsResidualDelta) {
    // `v = await 10ms` wakes with the residual delta (how late the timer
    // was served) — the quantity §2.3 reasons about.
    CompiledProgram cp = flat::compile(R"(
        int delta = await 10ms;
        return delta;
    )");
    Driver d(cp);
    d.boot();
    d.engine().go_time(15 * kMs);
    EXPECT_EQ(d.engine().result().as_int(), 5 * kMs);
}

TEST(RuntimeMore, ThreeLevelEscapeKillsEverythingInBetween) {
    CompiledProgram cp = flat::compile(R"(
        input void A, B;
        loop do
           par do
              par do
                 await A;
                 _trace("breaking");
                 break;
              with
                 loop do await B; _trace("inner-b"); end
              end
           with
              loop do await B; _trace("outer-b"); end
           end
        end
        _trace("done");
        return 0;
    )");
    Driver d(cp);
    d.boot();
    ev(d, "B");
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"inner-b", "outer-b"}));
    ev(d, "A");
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    EXPECT_EQ(d.trace().back(), "done");
    ev(d, "B");  // everything is dead
    EXPECT_EQ(d.trace().back(), "done");
}

TEST(RuntimeMore, DynamicAwaitDurations) {
    CompiledProgram cp = flat::compile(R"(
        int dt = 500;
        int steps = 0;
        loop do
           await (dt * 1000);
           steps = steps + 1;
           dt = dt - 100;
           if dt == 0 then break; end
        end
        return steps;
    )");
    Driver d(cp);
    d.boot();
    // 500 + 400 + 300 + 200 + 100 ms = 1.5s total.
    d.engine().go_time(1499 * kMs);
    EXPECT_EQ(d.engine().status(), Engine::Status::Running);
    d.engine().go_time(1500 * kMs);
    EXPECT_EQ(d.engine().status(), Engine::Status::Terminated);
    EXPECT_EQ(d.engine().result().as_int(), 5);
}

TEST(RuntimeMore, EmitValueReachesAllAwaitingTrails) {
    CompiledProgram cp = flat::compile(R"(
        input void Go;
        internal int data;
        par do
           loop do
              int a = await data;
              _trace("t1", a);
           end
        with
           loop do
              int b = await data;
              _trace("t2", b);
           end
        with
           loop do
              await Go;
              emit data = 42;
           end
        end
    )");
    Driver d(cp);
    d.boot();
    ev(d, "Go");
    EXPECT_EQ(d.trace(), (std::vector<std::string>{"t1 42", "t2 42"}));
}

TEST(RuntimeMore, ReentrantApiUseIsRefused) {
    // Paper §5: bindings must never interleave the API entry points. A C
    // binding that calls back into go_event mid-reaction is an error.
    CompiledProgram cp = flat::compile(R"(
        input void A;
        par do
           loop do await A; _trace("a"); end
        with
           loop do await 1s; _reenter(); end
        end
    )");
    CBindings extra;
    extra.fn("reenter", [&cp](Engine& eng, std::span<const Value>) {
        eng.go_event(cp.sema.input_id("A"), Value::integer(0));
        return Value::integer(0);
    });
    Driver d(cp, &extra);
    d.boot();
    EXPECT_THROW(d.engine().go_time(kSec), rt::RuntimeError);
}

TEST(RuntimeMore, CBlocksDoNotAffectInterpretation) {
    CompiledProgram cp = flat::compile(R"(
        C do
        int this_is_only_for_the_c_backend = 1;
        end
        return 5;
    )");
    Driver d(cp);
    d.run({});
    EXPECT_EQ(d.engine().result().as_int(), 5);
    ASSERT_EQ(cp.sema.c_blocks.size(), 1u);
}

}  // namespace
}  // namespace ceu
