// Fault-injection soak suite (labelled `soak` in ctest): replays the
// paper's WSN protocols under seeded fault plans and asserts protocol-level
// invariants. The two properties the layer exists for:
//
//   1. Recoverability — a mote crash mid-protocol, a power-cycle of the
//      engine, or a trapped dynamic error leaves the runtime in a bootable
//      state (verified by the §4.3 invariant checker, on every reaction).
//   2. Determinism — the same plan seed produces byte-identical traces;
//      a different seed produces a different fault realization.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "demos/demos.hpp"
#include "env/driver.hpp"
#include "env/script.hpp"
#include "fault/plan.hpp"
#include "fault/prng.hpp"
#include "fault/session.hpp"
#include "runtime/engine.hpp"
#include "wsn/nesc_runtime.hpp"
#include "wsn/tinyos_binding.hpp"

namespace ceu {
namespace {

using env::Driver;
using env::Script;
using rt::Engine;
using rt::EngineOptions;
using wsn::CeuMote;
using wsn::CeuMoteConfig;
using wsn::Mote;
using wsn::Network;
using wsn::Packet;
using wsn::RadioModel;

// A trivial recording mote (network-level scenarios).
class ProbeMote final : public Mote {
  public:
    explicit ProbeMote(int id) : Mote(id) {}
    void boot(Network&) override {}
    void deliver(Network& net, const Packet& p) override {
        received.push_back({net.now(), p});
        ++rx_count;
    }
    std::vector<std::pair<Micros, Packet>> received;
};

// ---------------------------------------------------------------------------
// PRNG: seed-purity and stream independence.
// ---------------------------------------------------------------------------

TEST(FaultPrng, SameSeedSameSequence) {
    fault::Prng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(FaultPrng, DifferentSeedsDiverge) {
    fault::Prng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
    EXPECT_EQ(equal, 0);
}

TEST(FaultPrng, ForkedStreamsAreIndependentOfEachOther) {
    // Drawing from one forked stream must not perturb a sibling: that is
    // what lets a plan enable corruption without shifting drop decisions.
    fault::Prng base(7);
    fault::Prng s1 = base.fork(1);
    fault::Prng s2 = base.fork(2);
    std::vector<uint64_t> lone;
    {
        fault::Prng ref = fault::Prng(7).fork(2);
        for (int i = 0; i < 32; ++i) lone.push_back(ref.next());
    }
    for (int i = 0; i < 32; ++i) {
        (void)s1.next();  // interleave draws on the sibling stream
        EXPECT_EQ(s2.next(), lone[static_cast<size_t>(i)]);
    }
}

TEST(FaultPrng, UniformStaysInRange) {
    fault::Prng p(3);
    for (int i = 0; i < 1000; ++i) {
        double u = p.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) EXPECT_LT(p.below(17), 17u);
}

// ---------------------------------------------------------------------------
// Plan DSL.
// ---------------------------------------------------------------------------

TEST(FaultPlanDsl, ParsesAFullPlan) {
    const char* kPlan = R"(
        # a representative plan exercising every command
        seed 99
        drop 0.1
        drop 1 2 0.5
        corrupt 0.05
        duplicate 0.02
        jitter 3ms
        link down 0 1 @ 100ms until 200ms
        radio down 2 @ 1s
        crash mote 1 @ 300ms reboot @ 400ms
        drift mote 0 ppm 50 jitter 10
        flap 0 2 @ 2s down 100ms period 500ms count 2
        partition 0 1 | 2 @ 5s until 6s
    )";
    fault::FaultPlan plan;
    Diagnostics diags;
    ASSERT_TRUE(fault::parse_plan(kPlan, &plan, diags)) << diags.str();
    EXPECT_EQ(plan.seed(), 99u);
    EXPECT_DOUBLE_EQ(plan.drop_for(0, 1), 0.1);   // global fallback
    EXPECT_DOUBLE_EQ(plan.drop_for(1, 2), 0.5);   // per-link override
    EXPECT_DOUBLE_EQ(plan.corrupt_prob(), 0.05);
    EXPECT_DOUBLE_EQ(plan.duplicate_prob(), 0.02);
    EXPECT_EQ(plan.jitter_max(), 3 * kMs);
    ASSERT_EQ(plan.clocks().size(), 1u);
    EXPECT_EQ(plan.clocks()[0].mote, 0);

    auto sched = plan.schedule();
    ASSERT_FALSE(sched.empty());
    for (size_t i = 1; i < sched.size(); ++i) {
        EXPECT_LE(sched[i - 1].at, sched[i].at) << "schedule must be time-sorted";
    }
    // crash@300ms / reboot@400ms / link window / flaps / partition all land.
    EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlanDsl, RejectsMalformedLines) {
    struct Bad {
        const char* text;
    } cases[] = {
        {"drop"},                       // missing probability
        {"drop 1.5"},                   // out of range
        {"crash mote"},                 // missing id/time
        {"link down 0 @ 100ms"},        // missing endpoint
        {"frobnicate 1 2 3"},           // unknown command
        {"crash mote 1 @ notatime"},    // bad time literal
    };
    for (const Bad& c : cases) {
        fault::FaultPlan plan;
        Diagnostics diags;
        EXPECT_FALSE(fault::parse_plan(c.text, &plan, diags)) << c.text;
        EXPECT_FALSE(diags.ok()) << c.text;
    }
}

TEST(FaultPlanDsl, ScriptAccumulatesFaultLines) {
    const char* kScript =
        "fault seed 5\n"
        "fault drop 0.25\n"
        "T 100ms\n"
        "fault crash mote 1 @ 2s\n";
    Script script;
    Diagnostics diags;
    ASSERT_TRUE(Script::parse(kScript, &script, diags)) << diags.str();
    fault::FaultPlan plan;
    ASSERT_TRUE(fault::parse_plan(script.fault_plan_text(), &plan, diags))
        << diags.str();
    EXPECT_EQ(plan.seed(), 5u);
    EXPECT_DOUBLE_EQ(plan.drop_for(0, 1), 0.25);
    EXPECT_EQ(plan.schedule().size(), 1u);
}

// ---------------------------------------------------------------------------
// Engine hardening: trapped faults, reset, invariants.
// ---------------------------------------------------------------------------

const char* kBoomOnEvent = R"(
    input void Boom;
    _trace("up");
    await Boom;
    _undefined_symbol();
)";

TEST(EngineFaults, UnboundSymbolBecomesTrappableFault) {
    flat::CompiledProgram cp = flat::compile(kBoomOnEvent);
    rt::CBindings bindings = env::make_standard_bindings();
    EngineOptions opt;
    opt.trap_faults = true;
    opt.check_invariants = true;
    Engine eng(cp, bindings, opt);

    std::vector<std::string> hooks;
    eng.on_fault = [&hooks](const Engine::FaultInfo& f) { hooks.push_back(f.message); };

    eng.go_init();
    ASSERT_EQ(eng.status(), Engine::Status::Running);
    eng.go_event_by_name("Boom", rt::Value::integer(0));
    ASSERT_EQ(eng.status(), Engine::Status::Faulted);
    ASSERT_TRUE(eng.fault().has_value());
    EXPECT_NE(eng.fault()->message.find("unbound C function"), std::string::npos);
    ASSERT_EQ(hooks.size(), 1u);
    EXPECT_EQ(hooks[0], eng.fault()->message);

    // The faulted engine satisfies the structural invariants and reboots.
    EXPECT_TRUE(eng.verify_invariants().empty());
    eng.reset();
    EXPECT_EQ(eng.status(), Engine::Status::Loaded);
    EXPECT_FALSE(eng.fault().has_value());
    eng.go_init();
    EXPECT_EQ(eng.status(), Engine::Status::Running);
    EXPECT_TRUE(eng.verify_invariants().empty());
}

TEST(EngineFaults, UntrappedFaultStillThrows) {
    flat::CompiledProgram cp = flat::compile(kBoomOnEvent);
    rt::CBindings bindings = env::make_standard_bindings();
    Engine eng(cp, bindings, EngineOptions{});  // trap_faults off (default)
    eng.go_init();
    EXPECT_THROW(eng.go_event_by_name("Boom", rt::Value::integer(0)),
                 rt::RuntimeError);
}

// The Queue ablation's event ping-pong exhausts the reaction budget; with
// trapping on, the hang becomes a Faulted status instead of an exception.
const char* kMutualQueue = R"(
    int tc, tf;
    internal void tc_evt, tf_evt;
    par do
       loop do
          await tc_evt;
          tf = 9 * tc / 5 + 32;
          emit tf_evt;
       end
    with
       loop do
          await tf_evt;
          tc = 5 * (tf - 32) / 9;
          emit tc_evt;
       end
    with
       tc = 100;
       emit tc_evt;
       await forever;
    end
)";

TEST(EngineFaults, ReactionBudgetTrapsUnderQueueAblation) {
    flat::CompiledProgram cp = flat::compile(kMutualQueue);
    rt::CBindings bindings = env::make_standard_bindings();
    EngineOptions opt;
    opt.internal_events = EngineOptions::InternalEvents::Queue;
    opt.reaction_budget = 100'000;
    opt.trap_faults = true;
    Engine eng(cp, bindings, opt);
    eng.go_init();  // must NOT throw
    ASSERT_EQ(eng.status(), Engine::Status::Faulted);
    ASSERT_TRUE(eng.fault().has_value());
    EXPECT_NE(eng.fault()->message.find("budget"), std::string::npos);
    // Power-cycle back to a bootable state (it will fault again on boot —
    // the program is genuinely divergent — but each cycle is clean).
    eng.reset();
    EXPECT_EQ(eng.status(), Engine::Status::Loaded);
    EXPECT_TRUE(eng.verify_invariants().empty());
}

TEST(EngineFaults, InvariantCheckerStaysQuietOnHealthyPrograms) {
    flat::CompiledProgram cp = flat::compile(demos::kQuickstart);
    rt::CBindings bindings = env::make_standard_bindings();
    EngineOptions opt;
    opt.check_invariants = true;  // throw std::logic_error on violation
    Engine eng(cp, bindings, opt);
    eng.go_init();
    for (int i = 1; i <= 20 && eng.status() == Engine::Status::Running; ++i) {
        eng.go_time(i * 100 * kMs);
        EXPECT_TRUE(eng.verify_invariants().empty());
    }
    eng.reset();
    EXPECT_TRUE(eng.verify_invariants().empty());
}

// ---------------------------------------------------------------------------
// Driver: script-level crash + structured diagnostics (the ceuc path).
// ---------------------------------------------------------------------------

TEST(DriverFaults, ScriptCrashPowerCyclesTheEngine) {
    const char* kProgram = R"(
        input void Tick;
        _trace("boot");
        loop do
           await Tick;
           _trace("tick");
        end
    )";
    flat::CompiledProgram cp = flat::compile(kProgram);
    Driver d(cp);
    Script script;
    script.event("Tick").crash().event("Tick");
    d.run(script);
    EXPECT_EQ(d.trace(),
              (std::vector<std::string>{"boot", "tick", "[crash] engine power-cycled",
                                        "boot", "tick"}));
}

TEST(DriverFaults, RuntimeErrorBecomesStructuredDiagnostic) {
    const char* kProgram = R"(
        _trace("pre");
        _missing_fn(1);
    )";
    flat::CompiledProgram cp = flat::compile(kProgram);
    Driver d(cp);
    Diagnostics diags;
    d.run(Script{}, diags);
    ASSERT_FALSE(diags.ok());
    EXPECT_NE(diags.str().find("unbound C function"), std::string::npos);
    // The diagnostic carries a source location, not just an exception blob.
    EXPECT_NE(diags.str().find(":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Network-level injection: loss/corruption/duplication/jitter, scheduled
// faults, and the unroutable-vs-dropped accounting split.
// ---------------------------------------------------------------------------

// Sends `n` packets 0 -> 1 one per millisecond and returns the network.
struct ProbeRun {
    Network net;
    ProbeMote* rx = nullptr;
    explicit ProbeRun(fault::FaultPlan plan, int n = 200) : net(make_radio()) {
        net.add(std::make_unique<ProbeMote>(0));
        auto& probe = static_cast<ProbeMote&>(net.add(std::make_unique<ProbeMote>(1)));
        rx = &probe;
        net.inject(std::move(plan));
        net.start();
        for (int i = 0; i < n; ++i) {
            net.run_until(net.now() + kMs);
            Packet p;
            p.payload[0] = i;
            net.send(0, 1, p);
        }
        net.run_until(net.now() + kSec);
    }
    static RadioModel make_radio() {
        RadioModel radio;
        radio.bidi_link(0, 1, kMs);
        return radio;
    }
    // Everything observable, rendered to bytes.
    [[nodiscard]] std::string digest() const {
        std::ostringstream os;
        os << net.packets_sent << '/' << net.packets_dropped << '/'
           << net.packets_unroutable << '/' << net.packets_delivered << '/'
           << net.packets_corrupted << '/' << net.packets_duplicated << ';';
        for (const auto& [at, p] : rx->received) os << at << ':' << p.payload[0] << ',';
        return os.str();
    }
};

TEST(FaultInjection, SeededLossIsDeterministicAndSeedSensitive) {
    auto plan = [](uint64_t seed) {
        fault::FaultPlan p(seed);
        p.drop(0.3).corrupt(0.1).duplicate(0.05).jitter(2 * kMs);
        return p;
    };
    ProbeRun a(plan(1)), b(plan(1)), c(plan(2));
    // Loss actually happened, and nothing was a routing failure.
    EXPECT_GT(a.net.packets_dropped, 0u);
    EXPECT_GT(a.net.packets_corrupted, 0u);
    EXPECT_GT(a.net.packets_duplicated, 0u);
    EXPECT_EQ(a.net.packets_unroutable, 0u);
    EXPECT_LT(a.net.packets_dropped, 200u);  // bounded loss, not a blackout
    // Byte-identical under the same seed; different under a different one.
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_NE(a.digest(), c.digest());
}

TEST(FaultInjection, PerLinkDropOverridesGlobal) {
    fault::FaultPlan p(4);
    p.drop(0.0).drop(0, 1, 1.0);  // this link always loses
    ProbeRun r(std::move(p), 50);
    EXPECT_EQ(r.net.packets_dropped, 50u);
    EXPECT_EQ(r.net.packets_delivered, 0u);
}

TEST(FaultInjection, PartitionBlocksOnlyDuringTheWindow) {
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    auto& probe = static_cast<ProbeMote&>(net.add(std::make_unique<ProbeMote>(1)));
    fault::FaultPlan plan(1);
    plan.partition({0}, {1}, 10 * kMs, 50 * kMs);
    net.inject(std::move(plan));
    net.start();

    net.run_until(20 * kMs);
    EXPECT_TRUE(net.send(0, 1, {}) == false);  // inside the window: blocked
    EXPECT_EQ(net.packets_dropped, 1u);
    EXPECT_EQ(net.packets_unroutable, 0u);  // the link exists — it is blocked

    net.run_until(60 * kMs);
    EXPECT_TRUE(net.send(0, 1, {}));  // window over: restored
    net.run_until(100 * kMs);
    ASSERT_EQ(probe.received.size(), 1u);
}

TEST(FaultInjection, LinkFlapTogglesDeterministically) {
    RadioModel radio;
    radio.bidi_link(0, 1, 100);
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    net.add(std::make_unique<ProbeMote>(1));
    fault::FaultPlan plan(1);
    // Down during [10,15) and [30,35) ms.
    plan.flap(0, 1, 10 * kMs, 5 * kMs, 20 * kMs, 2);
    net.inject(std::move(plan));
    net.start();

    auto send_at = [&](Micros t) {
        net.run_until(t);
        return net.send(0, 1, {});
    };
    EXPECT_FALSE(send_at(12 * kMs));
    EXPECT_TRUE(send_at(16 * kMs));
    EXPECT_FALSE(send_at(31 * kMs));
    EXPECT_TRUE(send_at(36 * kMs));
    net.run_until(50 * kMs);  // let the last packet land
    EXPECT_EQ(net.packets_dropped, 2u);
    EXPECT_EQ(net.packets_delivered, 2u);
}

TEST(FaultInjection, CrashedMoteDropsInFlightDeliveries) {
    RadioModel radio;
    radio.bidi_link(0, 1, 5 * kMs);  // slow link: packet still in flight
    Network net(radio);
    net.add(std::make_unique<ProbeMote>(0));
    auto& probe = static_cast<ProbeMote&>(net.add(std::make_unique<ProbeMote>(1)));
    fault::FaultPlan plan(1);
    plan.crash(1, 2 * kMs);  // crash while the packet is airborne
    net.inject(std::move(plan));
    net.start();
    net.send(0, 1, {});
    net.run_until(kSec);
    EXPECT_EQ(probe.received.size(), 0u);
    EXPECT_EQ(net.packets_dropped, 1u);
    EXPECT_EQ(net.motes_crashed, 1u);
}

// ---------------------------------------------------------------------------
// Céu motes under faults: crash/reboot recovery and clock drift.
// ---------------------------------------------------------------------------

// The §3.1 ring on three Céu motes, with the engine invariant checker on.
struct RingRun {
    Network net;
    std::vector<CeuMote*> motes;
    explicit RingRun(fault::FaultPlan plan, Micros horizon = 30 * kSec)
        : net(make_radio()) {
        for (int id = 0; id < 3; ++id) {
            CeuMoteConfig cfg;
            cfg.source = demos::kRing;
            cfg.engine_options.trap_faults = true;
            cfg.engine_options.check_invariants = true;
            motes.push_back(
                &static_cast<CeuMote&>(net.add(std::make_unique<CeuMote>(id, cfg))));
        }
        net.inject(std::move(plan));
        net.start();
        net.run_until(horizon);
    }
    static RadioModel make_radio() {
        RadioModel radio;
        radio.bidi_link(0, 1, kMs);
        radio.bidi_link(1, 2, kMs);
        radio.bidi_link(2, 0, kMs);
        return radio;
    }
    [[nodiscard]] std::string digest() const {
        std::ostringstream os;
        os << net.packets_sent << '/' << net.packets_dropped << '/'
           << net.packets_delivered << '/' << net.motes_crashed << '/'
           << net.motes_rebooted << ';';
        for (const CeuMote* m : motes) {
            os << 'm' << m->boots() << '[';
            for (const auto& [at, v] : m->led_history()) os << at << ':' << v << ',';
            os << ']';
        }
        return os.str();
    }
};

TEST(CeuSoak, RingSurvivesACrashAndReboot) {
    fault::FaultPlan plan(11);
    plan.crash(1, 3 * kSec, 4 * kSec);  // power-cycle mote 1 mid-protocol
    RingRun run(std::move(plan));

    EXPECT_EQ(run.net.motes_crashed, 1u);
    EXPECT_EQ(run.net.motes_rebooted, 1u);
    EXPECT_EQ(run.motes[1]->boots(), 2u);

    // The rebooted engine is alive and structurally sound (the per-reaction
    // checker would have thrown already; assert the final state too).
    for (CeuMote* m : run.motes) {
        EXPECT_EQ(m->engine().status(), Engine::Status::Running);
        EXPECT_TRUE(m->engine().verify_invariants().empty());
    }

    // The ring recovered: mote 0's watchdog re-initiated, and mote 1 saw
    // token traffic after its reboot instant.
    bool mote1_active_after_reboot = false;
    for (const auto& [at, v] : run.motes[1]->led_history()) {
        if (at > 4 * kSec) mote1_active_after_reboot = true;
    }
    EXPECT_TRUE(mote1_active_after_reboot);
    EXPECT_GT(run.net.packets_delivered, 10u);
}

TEST(CeuSoak, RingCrashRunsAreSeedReproducible) {
    auto plan = [](uint64_t seed) {
        fault::FaultPlan p(seed);
        p.drop(0.1).jitter(kMs);
        p.crash(2, 7 * kSec, 9 * kSec);
        return p;
    };
    RingRun a(plan(21)), b(plan(21)), c(plan(22));
    EXPECT_EQ(a.digest(), b.digest());  // same seed: byte-identical
    EXPECT_NE(a.digest(), c.digest());  // different seed: different faults
}

TEST(CeuSoak, ClockDriftShiftsTimerRates) {
    auto count_blinks = [](double ppm) {
        RadioModel radio;
        Network net(radio);
        CeuMoteConfig cfg;
        cfg.source = R"(
            loop do
               await 100ms;
               _Leds_led0Toggle();
            end
        )";
        auto& m = static_cast<CeuMote&>(net.add(std::make_unique<CeuMote>(0, cfg)));
        fault::FaultPlan plan(5);
        plan.clock_drift(0, ppm);
        net.inject(std::move(plan));
        net.start();
        net.run_until(10 * kSec);
        return m.led_history().size();
    };
    size_t fast = count_blinks(100'000);   // +10%: local 100ms ≈ 91ms global
    size_t exact = count_blinks(0);
    size_t slow = count_blinks(-100'000);  // -10%: local 100ms ≈ 110ms global
    EXPECT_EQ(exact, 100u);
    EXPECT_GT(fast, exact);
    EXPECT_LT(slow, exact);
    EXPECT_GE(fast, 105u);
    EXPECT_LE(slow, 95u);
}

// ---------------------------------------------------------------------------
// Protocol invariant: eventual delivery under bounded loss. The nesC
// client retries unacked batches on a 1s watchdog, so a lossy-but-not-dead
// channel must still make progress.
// ---------------------------------------------------------------------------

TEST(ProtocolSoak, ClientServerMakesProgressUnderBoundedLoss) {
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    Network net(radio);
    auto& server = static_cast<wsn::NescMote&>(net.add(
        std::make_unique<wsn::NescMote>(0, std::make_unique<wsn::NescServerApp>())));
    auto& client = static_cast<wsn::NescMote&>(net.add(
        std::make_unique<wsn::NescMote>(1, std::make_unique<wsn::NescClientApp>())));
    fault::FaultPlan plan(31);
    plan.drop(0.25);
    net.inject(std::move(plan));
    net.start();
    net.run_until(30 * kSec);

    // Loss really hit the channel...
    EXPECT_GT(net.packets_dropped, 0u);
    // ...yet the retry protocol kept both directions moving.
    EXPECT_GE(server.rx_count, 8u);
    EXPECT_GE(client.rx_count, 5u);
    EXPECT_GT(net.faults()->injected_drops, 0u);
}

TEST(ProtocolSoak, RunWhileStopsOnProtocolPredicates) {
    // run_while is the soak harness's wait-for-invariant primitive: stop as
    // soon as the server has acked three batches, or give up at the horizon.
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    Network net(radio);
    auto& server = static_cast<wsn::NescMote&>(net.add(
        std::make_unique<wsn::NescMote>(0, std::make_unique<wsn::NescServerApp>())));
    net.add(std::make_unique<wsn::NescMote>(1, std::make_unique<wsn::NescClientApp>()));
    net.start();
    Micros stopped = net.run_while(60 * kSec, [&] { return server.rx_count < 3; });
    EXPECT_GE(server.rx_count, 3u);
    EXPECT_LT(stopped, 60 * kSec);  // reached the goal well before the horizon
}

}  // namespace
}  // namespace ceu
