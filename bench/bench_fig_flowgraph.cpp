// E4 — Figure "nfa" reproduction (paper §4.1): the execution-flow graph of
// the guiding example, with rejoin nodes carrying their lower-than-normal
// priorities (outer rejoins run later). Emits Graphviz DOT.
#include <cstdio>
#include <fstream>

#include "flow/flowgraph.hpp"

int main() {
    using namespace ceu;

    const char* kGuiding = R"(
        input int A, B, C;
        int ret;
        loop do
           par/or do
              int a = await A;
              int b = await B;
              ret = a + b;
              break;
           with
              par/and do
                 await C;
              with
                 await A;
              end
           end
        end
    )";

    flat::CompiledProgram cp = flat::compile(kGuiding, "guiding.ceu");
    flow::FlowGraph g = flow::build_flow_graph(cp);

    std::printf("== Figure 'nfa': flow graph of the guiding example ==\n\n");
    std::printf("nodes: %zu, edges: %zu\n\n", g.nodes.size(), g.edges.size());

    size_t awaits = 0, rejoins = 0;
    for (const auto& n : g.nodes) {
        awaits += n.is_await ? 1 : 0;
        rejoins += n.is_rejoin ? 1 : 0;
    }
    std::printf("await nodes: %zu (paper's example has 4 awaits)\n", awaits);
    std::printf("rejoin nodes: %zu, with priorities (outer = lower):\n", rejoins);
    for (const auto& n : g.nodes) {
        if (n.is_rejoin) {
            std::printf("  pc %d: prio %d  %s\n", n.pc, n.priority, n.label.c_str());
        }
    }

    const char* dot_path = "/tmp/ceu_guiding_flow.dot";
    std::ofstream(dot_path) << g.to_dot("guiding");
    std::printf("\nDOT written to %s (render with: dot -Tpng %s)\n", dot_path, dot_path);
    return 0;
}
