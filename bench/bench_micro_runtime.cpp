// E7 — runtime micro-benchmarks (google-benchmark) backing the paper's
// engineering claims:
//   * §2.1: "the runtime overhead for creating and destroying (rejoining)
//     trails is negligible, promoting a fine-grained use of trails";
//   * §2.2: internal events are handled in a stack within the reaction —
//     cost scales linearly with chain depth;
//   * §4.3: destroying trails is a gate-range clear (memset), so par/or
//     aborts cost O(range), independent of how much the trails "did";
//   * §5: a reaction chain (the API entry points) runs in bounded time.
#include <benchmark/benchmark.h>

#include <sstream>

#include "codegen/flatten.hpp"
#include "env/driver.hpp"

namespace {

using namespace ceu;

/// Program with `n` trails all awaiting the same event.
std::string fanout_program(int n) {
    std::ostringstream os;
    os << "input void A;\nint v;\n";
    if (n > 1) os << "par do\n";
    for (int i = 0; i < n; ++i) {
        if (i) os << "with\n";
        os << "  loop do await A; end\n";
    }
    if (n > 1) os << "end\n";
    return os.str();
}

void BM_ReactionDispatch(benchmark::State& state) {
    flat::CompiledProgram cp = flat::compile(fanout_program(static_cast<int>(state.range(0))));
    rt::CBindings c = env::make_standard_bindings();
    rt::Engine eng(cp, c);
    eng.go_init();
    int evt = cp.sema.input_id("A");
    for (auto _ : state) {
        eng.go_event(evt, rt::Value::integer(0));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["trails"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ReactionDispatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// One reaction spawns and rejoins a par/or of `n` trails (trail churn).
void BM_TrailSpawnAndKill(benchmark::State& state) {
    std::ostringstream os;
    os << "input void A;\nloop do\n  await A;\n  par/or do\n    nothing;\n";
    for (int i = 1; i < state.range(0); ++i) {
        os << "  with\n    await forever;\n";
    }
    os << "  end\nend\n";
    flat::CompiledProgram cp = flat::compile(os.str());
    rt::CBindings c = env::make_standard_bindings();
    rt::Engine eng(cp, c);
    eng.go_init();
    int evt = cp.sema.input_id("A");
    for (auto _ : state) {
        eng.go_event(evt, rt::Value::integer(0));
    }
    state.counters["trails"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TrailSpawnAndKill)->Arg(2)->Arg(8)->Arg(32);

/// Internal-event chain of depth `n` within one reaction (dataflow cost).
void BM_EmitChainDepth(benchmark::State& state) {
    int n = static_cast<int>(state.range(0));
    std::ostringstream os;
    os << "input void A;\n";
    for (int i = 0; i <= n; ++i) os << "internal void e" << i << ";\n";
    os << "par do\n";
    for (int i = 0; i < n; ++i) {
        os << "  loop do await e" << i << "; emit e" << i + 1 << "; end\nwith\n";
    }
    os << "  loop do await A; emit e0; end\nend\n";
    flat::CompiledProgram cp = flat::compile(os.str());
    rt::CBindings c = env::make_standard_bindings();
    rt::Engine eng(cp, c);
    eng.go_init();
    int evt = cp.sema.input_id("A");
    for (auto _ : state) {
        eng.go_event(evt, rt::Value::integer(0));
    }
    state.counters["depth"] = static_cast<double>(n);
}
BENCHMARK(BM_EmitChainDepth)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

/// Timer arm + expiry throughput (the §2.3 machinery).
void BM_TimerWheel(benchmark::State& state) {
    flat::CompiledProgram cp = flat::compile("loop do await 1ms; end");
    rt::CBindings c = env::make_standard_bindings();
    rt::Engine eng(cp, c);
    eng.go_init();
    Micros now = 0;
    for (auto _ : state) {
        now += kMs;
        eng.go_time(now);
    }
}
BENCHMARK(BM_TimerWheel);

/// Whole-pipeline compile cost (lex→parse→sema→flatten) on the ring demo
/// scale (~70 lines), backing "programs compile in a few seconds".
void BM_CompilePipeline(benchmark::State& state) {
    std::string src = fanout_program(8);
    for (auto _ : state) {
        flat::CompiledProgram cp = flat::compile(src);
        benchmark::DoNotOptimize(cp.flat.code.data());
    }
}
BENCHMARK(BM_CompilePipeline);

}  // namespace

BENCHMARK_MAIN();
