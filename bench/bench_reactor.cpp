// E12 — reactor scaling: aggregate throughput and boot memory of the
// sharded multi-instance scheduler (src/reactor/) across a worker x fleet
// matrix ({1,2,4,8} workers x {1k,10k,100k} instances of a mixed
// counter/ticker/async program set).
//
// Two claims are measured:
//   - throughput: aggregate reactions/s across the fleet while injecting a
//     fixed event budget and advancing the fleet clock (timer load rides
//     along); with >= 4 hardware threads, 8 workers must hold >= 0.8x of
//     1 worker (the --check gate — the margin absorbs noisy-neighbor
//     variance on shared runners; the strict 8v1 speedup is reported in
//     the JSON as a metric, and the determinism suite separately asserts
//     the traces are byte-identical);
//   - boot memory: RSS growth per instance while building+booting the
//     fleet — the shared-program handle keeps this to per-instance *state*
//     (slots, gates, queues), not code.
//
// --json[=PATH] writes BENCH_reactor.json; --quick caps the fleet at 10k
// for smoke runs; --pin pins the reactor workers (and this thread) to the
// process's allowed CPUs, cpuset-aware. Threshold gating lives in
// scripts/bench_gate.py, which reads the JSON this binary writes.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#if defined(__linux__)
#include <sched.h>
#endif

#include "aot/aot.hpp"
#include "codegen/flatten.hpp"
#include "host/instance.hpp"
#include "reactor/reactor.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

// -- global-allocator meter ---------------------------------------------------
// Replacing ::operator new/delete lets the bench *prove* the steady-state
// claim (a warmed fleet reacts without touching the global allocator)
// instead of inferring it from RSS deltas, which attribute arena slack,
// allocator caching, and page-cache noise to whatever ran last. Counting
// is two relaxed atomics per call — noise next to malloc itself.
namespace {
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t n) {
    g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    void* p = std::malloc(n);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ceu;

/// Scoped pin of the *calling* thread to the first allowed CPU, restoring
/// the previous mask on destruction. Used for the 1-worker cells (which
/// run inline on this thread); it must not outlive the cell — worker
/// threads inherit the spawning thread's mask, so a process-lifetime pin
/// here would collapse every later multi-worker cell onto one core.
class ScopedPin {
  public:
    explicit ScopedPin(bool enable) {
#if defined(__linux__)
        if (!enable) return;
        CPU_ZERO(&saved_);
        if (sched_getaffinity(0, sizeof saved_, &saved_) != 0) return;
        for (int c = 0; c < CPU_SETSIZE; ++c) {
            if (CPU_ISSET(c, &saved_)) {
                cpu_set_t one;
                CPU_ZERO(&one);
                CPU_SET(c, &one);
                if (sched_setaffinity(0, sizeof one, &one) == 0) active_ = true;
                return;
            }
        }
#else
        (void)enable;
#endif
    }
    ~ScopedPin() {
#if defined(__linux__)
        if (active_) (void)sched_setaffinity(0, sizeof saved_, &saved_);
#endif
    }
    ScopedPin(const ScopedPin&) = delete;
    ScopedPin& operator=(const ScopedPin&) = delete;

  private:
#if defined(__linux__)
    cpu_set_t saved_{};
#endif
    bool active_ = false;
};

constexpr const char* kCounter = R"(
    input int ADD;
    input void STOP;
    int total = 0;
    int v = 0;
    par do
       loop do
          v = await ADD;
          total = total + v;
       end
    with
       await STOP;
       return total;
    end
)";

constexpr const char* kTicker = R"(
    input void STOP;
    int n = 0;
    par do
       loop do
          await 10ms;
          n = n + 1;
       end
    with
       await STOP;
       return n;
    end
)";

constexpr const char* kAsyncStep = R"(
    input void STOP;
    int r = 0;
    par do
       r = async do
          int acc = 0;
          int i = 0;
          loop do
             i = i + 1;
             acc = acc + i;
             if i == 5000 then break; end
          end
          return acc;
       end;
       await STOP;
    with
       await STOP;
       return r;
    end
)";

struct Cell {
    size_t workers = 0;
    size_t instances = 0;
    double boot_ms = 0;
    double bytes_per_instance = 0;   // exact per-member state (engine RAM
                                     // model / compiled ctx), not RSS delta
    uint64_t arena_bytes = 0;        // shard envelope pools (slab-reserved)
    uint64_t steady_alloc_bytes = 0; // ::operator new during measured rounds
    uint64_t steady_alloc_calls = 0;
    uint64_t steals = 0;
    uint64_t steal_failures = 0;
    uint64_t phase_ns[4] = {0, 0, 0, 0};  // restarts/events/timers/asyncs
    uint64_t reactions = 0;
    double ms = 0;
    double reactions_per_sec = 0;
};

/// `img` non-null switches the whole fleet to the AOT-compiled backend:
/// same three programs, every member one calloc'd C context driven through
/// the shared-object descriptors (the `compiled` series).
Cell run_cell(size_t workers, size_t instances,
              const std::shared_ptr<const flat::CompiledProgram>& counter,
              const std::shared_ptr<const flat::CompiledProgram>& ticker,
              const std::shared_ptr<const flat::CompiledProgram>& async_step,
              const std::shared_ptr<const aot::FleetImage>& img = nullptr,
              bool pin = false) {
    Cell cell;
    cell.workers = workers;
    cell.instances = instances;

    // 1-worker rounds run inline on this thread; multi-worker cells leave
    // the control thread free-floating and pin the pool via pin_workers.
    ScopedPin self_pin(pin && workers == 1);

    auto b0 = std::chrono::steady_clock::now();

    reactor::ReactorConfig rc;
    rc.workers = workers;
    rc.seed = 42;
    rc.collect_traces = false;
    rc.observe_stats = true;
    rc.pin_workers = pin;
    reactor::Reactor r(rc);
    for (size_t i = 0; i < instances; ++i) {
        host::Config hc;
        if (img) hc.aot = img->program(i % 3);
        switch (i % 3) {
            case 0: r.add_instance(counter, hc); break;
            case 1: r.add_instance(ticker, hc); break;
            default: r.add_instance(async_step, hc); break;
        }
    }
    r.boot();

    auto b1 = std::chrono::steady_clock::now();
    cell.boot_ms = std::chrono::duration<double, std::milli>(b1 - b0).count();
    // Exact attribution: each member reports its own state footprint (the
    // interpreter's RAM model or the compiled context), so the number is
    // per-instance *state* by construction — no RSS delta to contaminate
    // with arena slack or allocator caching.
    size_t state_total = 0;
    for (size_t i = 0; i < instances; ++i) {
        state_total += r.instance(static_cast<reactor::InstanceId>(i)).state_bytes();
    }
    cell.bytes_per_instance =
        static_cast<double>(state_total) / static_cast<double>(instances);

    // Fixed total event budget so every fleet size does comparable work;
    // each round injects one ADD per counter member, then advances one
    // 10ms period (every ticker fires) and drains (asyncs step).
    size_t rounds = std::max<size_t>(2, 200'000 / std::max<size_t>(1, instances / 3));
    auto one_round = [&] {
        for (size_t i = 0; i < instances; i += 3) {
            r.inject(static_cast<reactor::InstanceId>(i), EventId{0},
                     rt::Value::integer(1));
        }
        r.advance(10 * kMs);
        r.drain();
    };
    // Warmup: grow the envelope pools and round scratch vectors to steady
    // capacity, so the measured loop shows the steady state.
    one_round();
    one_round();

    uint64_t before = r.fleet_stats().reactions;
    uint64_t alloc_bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
    uint64_t alloc_calls0 = g_alloc_calls.load(std::memory_order_relaxed);
    auto t0 = std::chrono::steady_clock::now();
    for (size_t round = 0; round < rounds; ++round) one_round();
    auto t1 = std::chrono::steady_clock::now();
    cell.steady_alloc_bytes =
        g_alloc_bytes.load(std::memory_order_relaxed) - alloc_bytes0;
    cell.steady_alloc_calls =
        g_alloc_calls.load(std::memory_order_relaxed) - alloc_calls0;
    cell.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    obs::ProcessStats after = r.fleet_stats();
    cell.reactions = after.reactions - before;
    cell.arena_bytes = after.arena_bytes;
    cell.steals = after.steals;
    cell.steal_failures = after.steal_failures;
    for (size_t k = 0; k < 4; ++k) cell.phase_ns[k] = after.phase_ns[k];
    cell.reactions_per_sec =
        cell.ms > 0 ? static_cast<double>(cell.reactions) * 1000.0 / cell.ms : 0.0;
    return cell;
}

struct CheckpointMetrics {
    size_t instances = 0;
    double bytes_per_instance = 0;
    double save_us_per_instance = 0;
    double restore_us_per_instance = 0;
};

/// E13 — checkpoint cost: serialize and restore every member of a warmed
/// mixed fleet; reports blob size and save/restore latency per instance.
CheckpointMetrics run_checkpoint_bench(
    size_t instances, const std::shared_ptr<const flat::CompiledProgram>& counter,
    const std::shared_ptr<const flat::CompiledProgram>& ticker,
    const std::shared_ptr<const flat::CompiledProgram>& async_step) {
    CheckpointMetrics m;
    m.instances = instances;

    reactor::ReactorConfig rc;
    rc.seed = 42;
    reactor::Reactor r(rc);
    for (size_t i = 0; i < instances; ++i) {
        switch (i % 3) {
            case 0: r.add_instance(counter); break;
            case 1: r.add_instance(ticker); break;
            default: r.add_instance(async_step); break;
        }
    }
    r.boot();
    // Warm the fleet so snapshots carry real state: armed timers, queued
    // values, asyncs mid-computation.
    for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < instances; i += 3) {
            r.inject(static_cast<reactor::InstanceId>(i), EventId{0},
                     rt::Value::integer(1));
        }
        r.advance(10 * kMs);
        r.run_round();
    }

    std::vector<std::vector<uint8_t>> blobs;
    blobs.reserve(instances);
    size_t total_bytes = 0;
    auto s0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < instances; ++i) {
        blobs.push_back(r.instance(static_cast<reactor::InstanceId>(i)).save());
        total_bytes += blobs.back().size();
    }
    auto s1 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < instances; ++i) {
        r.instance(static_cast<reactor::InstanceId>(i)).load(blobs[i]);
    }
    auto s2 = std::chrono::steady_clock::now();

    double n = static_cast<double>(instances);
    m.bytes_per_instance = static_cast<double>(total_bytes) / n;
    m.save_us_per_instance =
        std::chrono::duration<double, std::micro>(s1 - s0).count() / n;
    m.restore_us_per_instance =
        std::chrono::duration<double, std::micro>(s2 - s1).count() / n;
    return m;
}

struct ServeMetrics {
    size_t sessions = 0;
    double open_sessions_per_sec = 0;
    double injects_per_sec = 0;
    double inject_p50_us = 0;
    double inject_p99_us = 0;
};

/// E16 — the network front door: a loopback CEUWIRE1 server, one client
/// connection. Measures session-open throughput (create-on-connect rate)
/// and the synchronous inject-to-InjectReply round trip (p50/p99 — the
/// latency a remote driver actually observes, socket included).
ServeMetrics run_serve_bench(size_t sessions) {
    ServeMetrics m;
    m.sessions = sessions;

    serve::Registry reg;
    reg.add("counter", kCounter);
    serve::ServerConfig cfg;
    cfg.workers = 2;
    serve::Server server(std::move(reg), cfg);
    server.start();

    serve::Client client;
    client.connect(server.port());

    auto t0 = std::chrono::steady_clock::now();
    std::vector<uint64_t> ids;
    ids.reserve(sessions);
    for (size_t i = 0; i < sessions; ++i) ids.push_back(client.open());
    auto t1 = std::chrono::steady_clock::now();
    double open_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    m.open_sessions_per_sec =
        open_ms > 0 ? static_cast<double>(sessions) * 1000.0 / open_ms : 0.0;

    // Inject latency: individually timed round trips, spread across the
    // fleet so the session map and shard dispatch are exercised, not one
    // hot member.
    const size_t kSamples = 2'000;
    std::vector<double> lat_us;
    lat_us.reserve(kSamples);
    auto i0 = std::chrono::steady_clock::now();
    for (size_t k = 0; k < kSamples; ++k) {
        uint64_t id = ids[k % ids.size()];
        auto s0 = std::chrono::steady_clock::now();
        client.inject(id, "ADD", 1);
        auto s1 = std::chrono::steady_clock::now();
        lat_us.push_back(std::chrono::duration<double, std::micro>(s1 - s0).count());
    }
    auto i1 = std::chrono::steady_clock::now();
    double inject_ms = std::chrono::duration<double, std::milli>(i1 - i0).count();
    m.injects_per_sec =
        inject_ms > 0 ? static_cast<double>(kSamples) * 1000.0 / inject_ms : 0.0;
    std::sort(lat_us.begin(), lat_us.end());
    m.inject_p50_us = lat_us[lat_us.size() / 2];
    m.inject_p99_us = lat_us[lat_us.size() * 99 / 100];

    client.bye();
    server.request_stop();
    server.wait();
    return m;
}

/// One cell as a JSON object (sorted-ish stable key order; schema v5).
void emit_cell(std::ostringstream& js, const Cell& c, bool first) {
    js << (first ? "" : ",") << "{\"workers\":" << c.workers
       << ",\"instances\":" << c.instances << ",\"boot_ms\":" << c.boot_ms
       << ",\"bytes_per_instance\":" << c.bytes_per_instance
       << ",\"arena_bytes\":" << c.arena_bytes
       << ",\"steady_alloc_bytes\":" << c.steady_alloc_bytes
       << ",\"steady_alloc_calls\":" << c.steady_alloc_calls
       << ",\"steals\":" << c.steals
       << ",\"steal_failures\":" << c.steal_failures
       << ",\"phase_ns\":{\"restarts\":" << c.phase_ns[0]
       << ",\"events\":" << c.phase_ns[1] << ",\"timers\":" << c.phase_ns[2]
       << ",\"asyncs\":" << c.phase_ns[3] << "}"
       << ",\"reactions\":" << c.reactions << ",\"ms\":" << c.ms
       << ",\"reactions_per_sec\":" << c.reactions_per_sec << "}";
}

void print_cell(const Cell& c) {
    std::printf("%8zu %10zu %8.0fms %12.0fB %14llu %11.0f/s %9llu\n", c.workers,
                c.instances, c.boot_ms, c.bytes_per_instance,
                static_cast<unsigned long long>(c.reactions), c.reactions_per_sec,
                static_cast<unsigned long long>(c.steals));
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    bool quick = false;
    bool pin = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path = (i + 1 < argc) ? argv[++i] : "BENCH_reactor.json";
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--pin") == 0) {
            pin = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            std::fprintf(stderr,
                         "bench_reactor: --check moved to scripts/bench_gate.py "
                         "(run with --json and gate the artifact)\n");
            return 2;
        } else {
            std::fprintf(stderr, "usage: %s [--json[=PATH]] [--quick] [--pin]\n",
                         argv[0]);
            return 2;
        }
    }

    unsigned hw = std::thread::hardware_concurrency();
    std::printf("== Reactor scaling (sharded multi-instance scheduler) ==\n");
    std::printf("(hardware concurrency: %u threads%s)\n\n", hw,
                pin ? ", pinned" : "");
    std::printf("%8s %10s %10s %14s %14s %14s %9s\n", "workers", "instances",
                "boot", "state/inst", "reactions", "aggregate", "steals");

    auto counter = std::make_shared<const flat::CompiledProgram>(flat::compile(kCounter));
    auto ticker = std::make_shared<const flat::CompiledProgram>(flat::compile(kTicker));
    auto async_step =
        std::make_shared<const flat::CompiledProgram>(flat::compile(kAsyncStep));

    std::vector<size_t> fleet_sizes = {1'000, 10'000, 100'000};
    if (quick) fleet_sizes.pop_back();
    const size_t worker_counts[] = {1, 2, 4, 8};

    std::ostringstream js;
    js << "{\"hw_threads\":" << hw << ",\"pinned\":" << (pin ? "true" : "false")
       << ",\"cells\":[";
    double rps_1w_10k = 0;
    double rps_8w_10k = 0;
    uint64_t steady_alloc_1w_10k = 0;
    bool first = true;
    for (size_t instances : fleet_sizes) {
        for (size_t workers : worker_counts) {
            Cell c = run_cell(workers, instances, counter, ticker, async_step,
                              nullptr, pin);
            print_cell(c);
            emit_cell(js, c, first);
            first = false;
            if (instances == 10'000 && workers == 1) {
                rps_1w_10k = c.reactions_per_sec;
                steady_alloc_1w_10k = c.steady_alloc_bytes;
            }
            if (instances == 10'000 && workers == 8) rps_8w_10k = c.reactions_per_sec;
        }
    }
    double speedup = rps_1w_10k > 0 ? rps_8w_10k / rps_1w_10k : 0.0;

    // The compiled series: the same fleet mix with every member on the
    // AOT backend (one shared object for the three programs). Skipped —
    // with an explicit note in the JSON — when the host has no C compiler.
    std::string aot_err;
    std::shared_ptr<const aot::FleetImage> img;
    if (aot::toolchain_available()) {
        std::vector<std::shared_ptr<const flat::CompiledProgram>> programs = {
            counter, ticker, async_step};
        img = aot::FleetImage::build(programs, {}, &aot_err);
    } else {
        aot_err = "aot: no host C compiler";
    }
    double rps_compiled_1w_10k = 0;
    js << "],\"compiled_cells\":[";
    if (img) {
        std::printf("\n-- compiled (AOT) fleet --\n");
        first = true;
        for (size_t instances : fleet_sizes) {
            for (size_t workers : worker_counts) {
                Cell c = run_cell(workers, instances, counter, ticker, async_step,
                                  img, pin);
                print_cell(c);
                emit_cell(js, c, first);
                first = false;
                if (instances == 10'000 && workers == 1) {
                    rps_compiled_1w_10k = c.reactions_per_sec;
                }
            }
        }
    } else {
        std::fprintf(stderr, "compiled series skipped: %s\n", aot_err.c_str());
    }
    double compiled_vs_interp =
        rps_1w_10k > 0 ? rps_compiled_1w_10k / rps_1w_10k : 0.0;

    CheckpointMetrics ck = run_checkpoint_bench(quick ? 1'000 : 10'000, counter,
                                                ticker, async_step);
    ServeMetrics sv = run_serve_bench(quick ? 1'000 : 5'000);
    js << "],\"speedup_8v1_10k\":" << speedup
       << ",\"compiled_vs_interp_10k\":" << compiled_vs_interp
       << ",\"steady_alloc_bytes_1w_10k\":" << steady_alloc_1w_10k
       << ",\"checkpoint\":{\"instances\":"
       << ck.instances << ",\"bytes_per_instance\":" << ck.bytes_per_instance
       << ",\"save_us_per_instance\":" << ck.save_us_per_instance
       << ",\"restore_us_per_instance\":" << ck.restore_us_per_instance
       << "},\"serve\":{\"sessions\":" << sv.sessions
       << ",\"open_sessions_per_sec\":" << sv.open_sessions_per_sec
       << ",\"injects_per_sec\":" << sv.injects_per_sec
       << ",\"inject_p50_us\":" << sv.inject_p50_us
       << ",\"inject_p99_us\":" << sv.inject_p99_us
       << "},\"schema\":\"ceu-bench-reactor-v5\"}";

    std::printf("\n8-worker vs 1-worker aggregate on the 10k mix: %.2fx\n", speedup);
    std::printf("steady-state global-allocator traffic (1 worker, 10k mix): "
                "%llu bytes\n",
                static_cast<unsigned long long>(steady_alloc_1w_10k));
    if (img) {
        std::printf("compiled vs interpreted (1 worker, 10k mix): %.2fx\n",
                    compiled_vs_interp);
    }
    std::printf(
        "checkpoint (%zu-instance mix): %.0f B/inst, save %.2f us/inst, "
        "restore %.2f us/inst\n",
        ck.instances, ck.bytes_per_instance, ck.save_us_per_instance,
        ck.restore_us_per_instance);
    std::printf(
        "serve (loopback, %zu sessions): open %.0f sessions/s, "
        "inject %.0f/s, inject-to-reply p50 %.1f us p99 %.1f us\n",
        sv.sessions, sv.open_sessions_per_sec, sv.injects_per_sec,
        sv.inject_p50_us, sv.inject_p99_us);

    if (!json_path.empty()) {
        std::ofstream f(json_path, std::ios::binary);
        if (!f.good()) {
            std::fprintf(stderr, "bench_reactor: cannot write %s\n", json_path.c_str());
            return 1;
        }
        f << js.str() << "\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    return 0;
}
