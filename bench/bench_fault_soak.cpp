// E9 — fault-injection soak: the paper's WSN protocols replayed under
// seeded fault plans (loss, corruption, duplication, jitter, link flaps,
// mote crashes, clock drift). Two things are reported per scenario:
//
//   * protocol health — deliveries, injected faults, crashes survived;
//   * determinism     — every scenario runs twice with the same seed and
//                       the two observable digests must be byte-identical
//                       (a third run with seed+1 must differ).
//
// The physical analogue is the paper's micaz testbed, where lossy radios
// and node resets were environmental; here they are part of the replayable
// input, so a failing soak run is a bug report with a seed attached.
#include <cstdio>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "demos/demos.hpp"
#include "fault/plan.hpp"
#include "wsn/nesc_runtime.hpp"
#include "wsn/tinyos_binding.hpp"

namespace {

using namespace ceu;
using wsn::CeuMote;
using wsn::CeuMoteConfig;
using wsn::Network;
using wsn::RadioModel;

struct Outcome {
    std::string digest;     // byte-exact observable summary
    std::string stats;      // human-readable row
};

std::string counters(const Network& net) {
    std::ostringstream os;
    os << "sent=" << net.packets_sent << " dropped=" << net.packets_dropped
       << " unroutable=" << net.packets_unroutable
       << " delivered=" << net.packets_delivered
       << " corrupted=" << net.packets_corrupted
       << " duplicated=" << net.packets_duplicated
       << " crashes=" << net.motes_crashed << "/" << net.motes_rebooted;
    return os.str();
}

// -- Scenario 1: the §3.1 Céu ring under loss + a mid-protocol crash --------

Outcome run_ring(uint64_t seed) {
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    radio.bidi_link(1, 2, kMs);
    radio.bidi_link(2, 0, kMs);
    Network net(radio);
    std::vector<CeuMote*> motes;
    for (int id = 0; id < 3; ++id) {
        CeuMoteConfig cfg;
        cfg.source = demos::kRing;
        cfg.engine_options.trap_faults = true;
        cfg.engine_options.check_invariants = true;  // §4.3 checker, every reaction
        motes.push_back(
            &static_cast<CeuMote&>(net.add(std::make_unique<CeuMote>(id, cfg))));
    }
    fault::FaultPlan plan(seed);
    plan.drop(0.15).jitter(2 * kMs);
    plan.crash(1, 5 * kSec, 7 * kSec);
    plan.flap(2, 0, 12 * kSec, 500 * kMs, 4 * kSec, 3);
    net.inject(std::move(plan));
    net.start();
    net.run_until(60 * kSec);

    Outcome out;
    std::ostringstream digest;
    digest << counters(net) << ';';
    for (const CeuMote* m : motes) {
        digest << 'm' << m->id() << ":boots=" << m->boots() << ",leds=(";
        for (const auto& [at, v] : m->led_history()) digest << at << ':' << v << ',';
        digest << ')';
    }
    out.digest = digest.str();
    std::ostringstream stats;
    stats << counters(net) << " boots=" << motes[0]->boots() << ","
          << motes[1]->boots() << "," << motes[2]->boots();
    out.stats = stats.str();
    return out;
}

// -- Scenario 2: nesC client/server retries through bounded loss ------------

Outcome run_client_server(uint64_t seed) {
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    Network net(radio);
    auto& server = static_cast<wsn::NescMote&>(net.add(
        std::make_unique<wsn::NescMote>(0, std::make_unique<wsn::NescServerApp>())));
    auto& client = static_cast<wsn::NescMote&>(net.add(
        std::make_unique<wsn::NescMote>(1, std::make_unique<wsn::NescClientApp>())));
    fault::FaultPlan plan(seed);
    plan.drop(0.25).duplicate(0.05).corrupt(0.05).jitter(kMs);
    net.inject(std::move(plan));
    net.start();
    net.run_until(60 * kSec);

    Outcome out;
    std::ostringstream digest;
    digest << counters(net) << ";server_rx=" << server.rx_count
           << ";client_rx=" << client.rx_count;
    out.digest = digest.str();
    std::ostringstream stats;
    stats << counters(net) << " server_rx=" << server.rx_count
          << " client_rx=" << client.rx_count;
    out.stats = stats.str();
    return out;
}

// -- Scenario 3: drifting clocks against the ring's watchdogs ---------------

Outcome run_drift_ring(uint64_t seed) {
    RadioModel radio;
    radio.bidi_link(0, 1, kMs);
    radio.bidi_link(1, 2, kMs);
    radio.bidi_link(2, 0, kMs);
    Network net(radio);
    std::vector<CeuMote*> motes;
    for (int id = 0; id < 3; ++id) {
        CeuMoteConfig cfg;
        cfg.source = demos::kRing;
        cfg.engine_options.trap_faults = true;
        motes.push_back(
            &static_cast<CeuMote&>(net.add(std::make_unique<CeuMote>(id, cfg))));
    }
    fault::FaultPlan plan(seed);
    plan.clock_drift(1, 20'000, 200);   // +2% fast, jittery
    plan.clock_drift(2, -20'000, 200);  // -2% slow, jittery
    plan.drop(0.05);
    net.inject(std::move(plan));
    net.start();
    net.run_until(60 * kSec);

    Outcome out;
    std::ostringstream digest;
    digest << counters(net) << ';';
    for (const CeuMote* m : motes) digest << m->led_history().size() << ',';
    out.digest = digest.str();
    std::ostringstream stats;
    stats << counters(net) << " led_updates=" << motes[0]->led_history().size() << ","
          << motes[1]->led_history().size() << "," << motes[2]->led_history().size();
    out.stats = stats.str();
    return out;
}

int run_scenario(const char* name, uint64_t seed,
                 const std::function<Outcome(uint64_t)>& fn) {
    Outcome first = fn(seed);
    Outcome replay = fn(seed);
    Outcome other = fn(seed + 1);
    bool reproducible = first.digest == replay.digest;
    bool seed_sensitive = first.digest != other.digest;
    std::printf("%-14s seed=%llu\n    %s\n    replay: %s   seed+1: %s\n", name,
                static_cast<unsigned long long>(seed), first.stats.c_str(),
                reproducible ? "IDENTICAL" : "DIVERGED!",
                seed_sensitive ? "different (ok)" : "identical (suspicious)");
    return reproducible && seed_sensitive ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
    std::printf("E9: fault-injection soak (60 virtual seconds per scenario)\n\n");
    int failures = 0;
    failures += run_scenario("ring", seed, run_ring);
    failures += run_scenario("client-server", seed, run_client_server);
    failures += run_scenario("drift-ring", seed, run_drift_ring);
    std::printf("\n%s\n", failures == 0
                              ? "all scenarios deterministic and seed-sensitive"
                              : "SOAK FAILURE: see rows above");
    return failures == 0 ? 0 : 1;
}
