// E3 — Figure 2 reproduction: the temporal analysis converts the paper's
// nondeterministic two-trail program into a DFA and flags the concurrent
// access to `v` on the 6th occurrence of A. Emits the Graphviz DOT of the
// automaton (the paper rendered the same artifact with graphviz).
#include <cstdio>
#include <fstream>

#include "dfa/dfa.hpp"

int main() {
    using namespace ceu;

    const char* kFigure2 = R"(
        input void A;
        int v;
        par do
           loop do
              await A;
              await A;
              v = 1;
           end
        with
           loop do
              await A;
              await A;
              await A;
              v = 2;
           end
        end
    )";

    flat::CompiledProgram cp = flat::compile(kFigure2, "figure2.ceu");
    dfa::Dfa d = dfa::Dfa::build(cp);

    std::printf("== Figure 2: DFA of the nondeterministic example ==\n\n");
    std::printf("states: %zu (complete cover: %s)\n", d.state_count(),
                d.complete() ? "yes" : "no");
    std::printf("verdict: %s\n\n",
                d.deterministic() ? "deterministic (UNEXPECTED)" : "NONDETERMINISTIC — refused at compile time");
    std::printf("conflicts:\n%s\n", d.report().c_str());

    std::printf("state -> transitions:\n");
    for (const auto& s : d.states()) {
        std::printf("  DFA #%d%s%s:", s.id, s.has_conflict ? " [CONFLICT]" : "",
                    s.terminal ? " [terminal]" : "");
        for (const auto& t : s.out) std::printf(" --%s--> #%d", t.label.c_str(), t.target);
        std::printf("\n");
        for (const auto& line : s.executed) std::printf("      %s\n", line.c_str());
    }

    const char* dot_path = "/tmp/ceu_figure2_dfa.dot";
    std::ofstream(dot_path) << d.to_dot("figure2");
    std::printf("\nDOT written to %s (render with: dot -Tpng %s)\n", dot_path, dot_path);

    // The paper's trails have periods 2 and 3 over the same event: the
    // conflict must surface on the 6th A (lcm), i.e. within a cycle of 6
    // A-transitions from boot.
    std::printf("\npaper check: conflict trigger is 'A' and the automaton cycles "
                "with period lcm(2,3)=6: %s\n",
                (!d.conflicts().empty() && d.conflicts().front().trigger == "A" &&
                 d.state_count() >= 6)
                    ? "OK"
                    : "MISMATCH");
    return d.deterministic() ? 1 : 0;  // nondeterminism is the expected outcome
}
