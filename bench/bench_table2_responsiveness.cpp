// E2 — Table 2 reproduction: responsiveness of Céu vs a MantisOS-style
// preemptive-thread system, on the discrete-event WSN simulator.
//
// Protocol (paper §5 "Responsiveness"): senders push 3000 radio messages at
// the fastest lossless rate (~7.7ms/message). The receiver optionally runs
// five infinite computation loops in parallel (asyncs in Céu, threads in
// MantisOS, where the receiver thread gets a higher priority, as the paper
// had to configure). We report the virtual time until 3000 messages are
// processed, for {1,2} senders x {no comp, 5 loops}.
//
// CPU model (substituting the micaz testbed): per-message processing costs
// 4.1ms on the lean event-driven stack (TinyOS/Céu) and 6.6ms on the
// threaded stack (scheduling + context-switch overhead) — the service
// rates implied by the paper's own numbers (12.3s and 19.8s / 3000 msgs).
#include <cstdio>
#include <memory>

#include "wsn/mantis_runtime.hpp"
#include "wsn/tinyos_binding.hpp"

namespace {

using namespace ceu;
using namespace ceu::wsn;

constexpr Micros kSendInterval = 7730;   // fastest lossless rate (paper: ~7ms)
constexpr Micros kCeuService = 4100;     // per-message cost, event-driven stack
constexpr Micros kMantisService = 6600;  // per-message cost, threaded stack
constexpr uint64_t kMessages = 3000;

const char* kCeuReceiverNoComp = R"(
    input int Radio_receive;
    int got = 0;
    loop do
       await Radio_receive;
       got = got + 1;
    end
)";

const char* kCeuReceiver5Loops = R"(
    input int Radio_receive;
    int got = 0;
    par do
       loop do
          await Radio_receive;
          got = got + 1;
       end
    with
       int r1 = async do int i = 0; loop do i = i + 1; end return i; end;
       await forever;
    with
       int r2 = async do int i = 0; loop do i = i + 1; end return i; end;
       await forever;
    with
       int r3 = async do int i = 0; loop do i = i + 1; end return i; end;
       await forever;
    with
       int r4 = async do int i = 0; loop do i = i + 1; end return i; end;
       await forever;
    with
       int r5 = async do int i = 0; loop do i = i + 1; end return i; end;
       await forever;
    end
)";

/// Builds a network with `senders` MantisSender motes feeding mote 0.
template <typename MakeReceiver>
double run_experiment(int senders, MakeReceiver&& make_receiver) {
    RadioModel radio;
    for (int s = 1; s <= senders; ++s) radio.link(s, 0, 500);
    Network net(radio);
    Mote& receiver = net.add(make_receiver());
    for (int s = 1; s <= senders; ++s) {
        auto m = std::make_unique<MantisMote>(s);
        // Stagger the two senders by half an interval.
        m->kernel().add(std::make_unique<MantisSenderThread>(
            0, kSendInterval, kMessages + 200));
        net.add(std::move(m));
    }
    net.start();
    net.run_while(10LL * 60 * kSec, [&] { return receiver.rx_count < kMessages; });
    return static_cast<double>(net.now()) / kSec;
}

double run_ceu(int senders, bool loops) {
    return run_experiment(senders, [&] {
        CeuMoteConfig cfg;
        cfg.source = loops ? kCeuReceiver5Loops : kCeuReceiverNoComp;
        cfg.reaction_cost = kCeuService;
        cfg.async_slice_cost = kMs;
        cfg.rx_queue_capacity = 2;
        return std::make_unique<CeuMote>(0, cfg);
    });
}

double run_mantis(int senders, bool loops) {
    return run_experiment(senders, [&] {
        MantisConfig cfg;
        auto m = std::make_unique<MantisMote>(0, cfg);
        auto recv = std::make_unique<MantisReceiverThread>(kMantisService);
        recv->priority = 10;  // the paper raised the receiver's priority
        m->kernel().add(std::move(recv));
        if (loops) {
            for (int i = 0; i < 5; ++i) {
                m->kernel().add(std::make_unique<MantisLoopThread>());
            }
        }
        return m;
    });
}

}  // namespace

int main() {
    std::printf("== Table 2: Ceu vs MantisOS — responsiveness ==\n");
    std::printf("(time to process %llu radio messages, %d-sender rate %.1fms; "
                "virtual seconds)\n\n",
                static_cast<unsigned long long>(kMessages), 1,
                static_cast<double>(kSendInterval) / kMs);
    std::printf("%-12s %-10s %10s %10s\n", "", "", "no comp.", "5 loops");
    for (int senders = 1; senders <= 2; ++senders) {
        double mantis_none = run_mantis(senders, false);
        double mantis_loops = run_mantis(senders, true);
        double ceu_none = run_ceu(senders, false);
        double ceu_loops = run_ceu(senders, true);
        std::printf("%d sender%-3s %-10s %9.1fs %9.1fs\n", senders,
                    senders > 1 ? "s" : "", "MantisOS", mantis_none, mantis_loops);
        std::printf("%-12s %-10s %9.1fs %9.1fs\n", "", "Ceu", ceu_none, ceu_loops);
        std::printf("%-12s %-10s %+8.1f%% %+8.1f%%   (increase due to the loops)\n\n",
                    "", "",
                    100.0 * (mantis_loops - mantis_none) / mantis_none,
                    100.0 * (ceu_loops - ceu_none) / ceu_none);
    }
    std::printf("Paper's claims: (a) with the receiver prioritized, the increase\n"
                "due to five infinite loops is negligible in BOTH systems; (b) with\n"
                "2 senders the lean event-driven stack (Ceu on TinyOS) services\n"
                "messages faster than the threaded one (~12.3s vs ~19.8s).\n");
    return 0;
}
