// E5 — Figure 1 reproduction: the four reaction chains of the §2 walkthrough
// (boot; A wakes trails 1 and 3; a second A is discarded; B wakes trail 2
// and trail 3's continuation, terminating the program; the enqueued C is
// never reacted to). Prints the reaction-by-reaction narrative from the
// actual engine.
#include <cstdio>

#include "codegen/flatten.hpp"
#include "env/driver.hpp"

int main() {
    using namespace ceu;

    const char* kFigure1 = R"(
        input void A, B, C;
        par do
           await A;
           _trace("trail 1 awakes and terminates");
        with
           await B;
           _trace("trail 2 awakes and terminates");
        with
           await A;
           _trace("trail 3 awakes, spawns its continuation");
           await B;
           _trace("trail 4 (continuation) awakes and terminates");
        end
    )";

    flat::CompiledProgram cp = flat::compile(kFigure1, "figure1.ceu");
    env::Driver d(cp);

    auto snapshot = [&](const char* what) {
        std::printf("  -> after %-24s reactions=%llu awaiting-trails=%d status=%s\n",
                    what, static_cast<unsigned long long>(d.engine().reactions()),
                    d.engine().active_gate_count(),
                    d.engine().status() == rt::Engine::Status::Terminated ? "TERMINATED"
                                                                          : "running");
    };

    std::printf("== Figure 1: reaction chains ==\n\n");
    d.boot();
    snapshot("boot");
    size_t printed = 0;
    auto flush = [&] {
        for (; printed < d.trace().size(); ++printed) {
            std::printf("     | %s\n", d.trace()[printed].c_str());
        }
    };
    flush();

    d.feed({env::ScriptItem::Kind::Event, "A", rt::Value::integer(0), 0});
    flush();
    snapshot("A (1st occurrence)");

    d.feed({env::ScriptItem::Kind::Event, "A", rt::Value::integer(0), 0});
    flush();
    snapshot("A (discarded: nobody awaits it)");

    d.feed({env::ScriptItem::Kind::Event, "B", rt::Value::integer(0), 0});
    flush();
    snapshot("B (program terminates)");

    d.feed({env::ScriptItem::Kind::Event, "C", rt::Value::integer(0), 0});
    flush();
    snapshot("C (no reaction: terminated)");

    bool ok = d.engine().status() == rt::Engine::Status::Terminated &&
              d.trace().size() == 4 && d.engine().reactions() == 4;
    std::printf("\npaper check (4 trace lines, 4 reaction chains, termination "
                "before C): %s\n",
                ok ? "OK" : "MISMATCH");
    return ok ? 0 : 1;
}
