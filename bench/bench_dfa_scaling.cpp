// E8 — temporal-analysis cost (paper §7): "the conversion algorithm is
// exponential, and this is a theoretical lower bound... however, it is
// usable in practice, considering the size of applications in the context
// of embedded systems."
//
// Two sweeps demonstrate both halves of the claim:
//   1. k parallel trails cycling over the same event with pairwise-coprime
//     periods -> the product automaton has ~prod(periods) states
//     (exponential in program size);
//   2. the paper's real programs (quickstart, ring, ship, Mario) analyze in
//     milliseconds with small automata.
// Sweep 3 measures the parallel explorer (analysis::explore) against the
// serial one on a wide-frontier program, verifying order-normalized
// equivalence while timing each --analysis-jobs setting.
// Sweep 4 measures the modular partition-and-compose analysis with its
// persistent cache: composed (sum) vs monolithic (product) state counts,
// and cold-vs-warm wall time (a warm cache re-explores nothing).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "analysis/explore.hpp"
#include "analysis/modular.hpp"
#include "demos/demos.hpp"
#include "dfa/dfa.hpp"

namespace {

using namespace ceu;

std::string coprime_program(int k) {
    static const int kPeriods[] = {2, 3, 5, 7, 11, 13};
    std::ostringstream os;
    os << "input void A;\n";
    for (int i = 0; i < k; ++i) os << "int v" << i << ";\n";
    if (k > 1) os << "par do\n";
    for (int i = 0; i < k; ++i) {
        if (i) os << "with\n";
        os << "  loop do\n";
        for (int j = 0; j < kPeriods[i]; ++j) os << "    await A;\n";
        os << "    v" << i << " = 1;\n  end\n";
    }
    if (k > 1) os << "end\n";
    return os.str();
}

// Wide-frontier synthetic for the parallel sweep: k independent trails over
// k *distinct* events. Every state has k outgoing triggers, so the frontier
// is broad enough to shard across workers (the coprime program above has a
// single event and a frontier of width 1 — no parallelism to extract).
std::string wide_program(int k) {
    std::ostringstream os;
    os << "input void";
    for (int i = 0; i < k; ++i) os << (i ? "," : "") << " E" << i;
    os << ";\npar do\n";
    for (int i = 0; i < k; ++i) {
        if (i) os << "with\n";
        os << "  loop do\n";
        for (int j = 0; j < 3 + i; ++j) os << "    await E" << i << ";\n";
        os << "  end\n";
    }
    os << "end\n";
    return os.str();
}

struct Result {
    size_t states;
    double ms;
    bool deterministic;
    bool complete;
};

Result analyze(const std::string& src) {
    flat::CompiledProgram cp = flat::compile(src);
    auto t0 = std::chrono::steady_clock::now();
    dfa::DfaOptions opt;
    opt.max_states = 200000;
    dfa::Dfa d = dfa::Dfa::build(cp, opt);
    auto t1 = std::chrono::steady_clock::now();
    return {d.state_count(),
            std::chrono::duration<double, std::milli>(t1 - t0).count(),
            d.deterministic(), d.complete()};
}

}  // namespace

int main(int argc, char** argv) {
    // --json[=PATH] additionally writes the sweep results as a machine-readable
    // artifact (default BENCH_dfa.json; the nightly CI job uploads it).
    // --pin pins each explorer worker to one of the process's allowed CPUs
    // (cpuset-aware; see ExploreOptions::pin_threads) so migration doesn't
    // smear the parallel sweep.
    std::string json_path;
    bool pin = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path = (i + 1 < argc) ? argv[++i] : "BENCH_dfa.json";
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strcmp(argv[i], "--pin") == 0) {
            pin = true;
        } else {
            std::fprintf(stderr, "usage: %s [--json[=PATH]] [--pin]\n", argv[0]);
            return 2;
        }
    }
    std::ostringstream js;

    std::printf("== Temporal-analysis cost ==\n\n");
    std::printf("sweep 1: k trails with coprime periods over one event "
                "(state explosion)\n");
    std::printf("%4s %12s %10s %14s\n", "k", "DFA states", "time", "product bound");
    long long product = 1;
    static const int kPeriods[] = {2, 3, 5, 7, 11, 13};
    js << "{\"explosion\":[";
    for (int k = 1; k <= 5; ++k) {
        product *= kPeriods[k - 1];
        Result r = analyze(coprime_program(k));
        std::printf("%4d %12zu %8.1fms %14lld%s\n", k, r.states, r.ms, product,
                    r.complete ? "" : "  (capped)");
        js << (k > 1 ? "," : "") << "{\"k\":" << k << ",\"states\":" << r.states
           << ",\"ms\":" << r.ms << ",\"bound\":" << product
           << ",\"complete\":" << (r.complete ? "true" : "false") << "}";
    }
    js << "]";

    std::printf("\nsweep 2: the paper's programs (all 'compile in a few "
                "seconds')\n");
    std::printf("%-12s %12s %10s %15s\n", "program", "DFA states", "time", "verdict");
    struct Named {
        const char* name;
        const char* src;
    };
    const Named programs[] = {
        {"quickstart", demos::kQuickstart},
        {"temperature", demos::kTemperature},
        {"ring", demos::kRing},
        {"ship", demos::kShip},
        {"mario", demos::kMarioLive},
    };
    js << ",\"programs\":[";
    for (size_t i = 0; i < sizeof(programs) / sizeof(programs[0]); ++i) {
        const Named& p = programs[i];
        Result r = analyze(p.src);
        std::printf("%-12s %12zu %8.1fms %15s\n", p.name, r.states, r.ms,
                    r.deterministic ? "deterministic" : "REFUSED");
        js << (i ? "," : "") << "{\"name\":\"" << p.name
           << "\",\"states\":" << r.states << ",\"ms\":" << r.ms
           << ",\"deterministic\":" << (r.deterministic ? "true" : "false")
           << "}";
    }
    js << "]";
    std::printf("\nsweep 3: parallel exploration (--analysis-jobs) on a "
                "wide-frontier program\n");
    std::printf("(hardware concurrency: %u threads)\n",
                std::thread::hardware_concurrency());
    {
        flat::CompiledProgram cp = flat::compile(wide_program(6));
        analysis::ExploreOptions base;
        base.max_states = 200000;
        base.pin_threads = pin;
        auto t0 = std::chrono::steady_clock::now();
        dfa::Dfa serial = analysis::explore(cp, base);
        auto t1 = std::chrono::steady_clock::now();
        double serial_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::string want = serial.signature();
        std::printf("%6s %12s %10s %9s %12s\n", "jobs", "DFA states", "time",
                    "speedup", "signature");
        std::printf("%6d %12zu %8.1fms %8.2fx %12s\n", 1, serial.state_count(),
                    serial_ms, 1.0, "(reference)");
        js << ",\"parallel\":[{\"jobs\":1,\"states\":" << serial.state_count()
           << ",\"ms\":" << serial_ms << ",\"speedup\":1,\"identical\":true}";
        for (int jobs : {2, 4, 8}) {
            analysis::ExploreOptions opt = base;
            opt.jobs = jobs;
            auto p0 = std::chrono::steady_clock::now();
            dfa::Dfa par = analysis::explore(cp, opt);
            auto p1 = std::chrono::steady_clock::now();
            double ms = std::chrono::duration<double, std::milli>(p1 - p0).count();
            std::printf("%6d %12zu %8.1fms %8.2fx %12s\n", jobs, par.state_count(),
                        ms, serial_ms / ms,
                        par.signature() == want ? "identical" : "MISMATCH");
            js << ",{\"jobs\":" << jobs << ",\"states\":" << par.state_count()
               << ",\"ms\":" << ms << ",\"speedup\":" << serial_ms / ms
               << ",\"identical\":" << (par.signature() == want ? "true" : "false")
               << "}";
        }
        js << "]";
    }
    std::printf("\nsweep 4: modular composition + persistent cache on the "
                "wide-frontier family\n");
    std::printf("%4s %12s %12s %10s %10s %9s %9s\n", "k", "monolithic",
                "composed", "cold", "warm", "hit rate", "verdict");
    js << ",\"modular\":[";
    for (int k : {3, 4, 5, 6}) {
        flat::CompiledProgram cp = flat::compile(wide_program(k));
        dfa::DfaOptions mono_opt;
        mono_opt.max_states = 200000;
        auto m0 = std::chrono::steady_clock::now();
        dfa::Dfa mono = dfa::Dfa::build(cp, mono_opt);
        auto m1 = std::chrono::steady_clock::now();
        double mono_ms = std::chrono::duration<double, std::milli>(m1 - m0).count();

        std::string dir = std::filesystem::temp_directory_path() /
                          ("ceu_bench_modular_" + std::to_string(k));
        std::filesystem::remove_all(dir);
        analysis::ModularOptions mopt;
        mopt.explore.max_states = 200000;
        mopt.cache_dir = dir;
        auto c0 = std::chrono::steady_clock::now();
        analysis::ModularOutcome cold = analysis::explore_modular(cp, mopt);
        auto c1 = std::chrono::steady_clock::now();
        double cold_ms = std::chrono::duration<double, std::milli>(c1 - c0).count();
        auto w0 = std::chrono::steady_clock::now();
        analysis::ModularOutcome warm = analysis::explore_modular(cp, mopt);
        auto w1 = std::chrono::steady_clock::now();
        double warm_ms = std::chrono::duration<double, std::milli>(w1 - w0).count();
        std::filesystem::remove_all(dir);

        double hit_rate = warm.groups.empty()
                              ? 0.0
                              : static_cast<double>(warm.cache.hits) /
                                    static_cast<double>(warm.groups.size());
        // The equivalence gate rides along: same verdict, same completeness,
        // and the warm run must re-explore nothing.
        bool equivalent = mono.deterministic() == warm.conflicts.empty() &&
                          mono.complete() == warm.complete &&
                          warm.states_explored == 0;
        std::printf("%4d %12zu %12zu %8.1fms %8.1fms %8.0f%% %9s\n", k,
                    mono.state_count(), cold.states_total, cold_ms, warm_ms,
                    hit_rate * 100.0, equivalent ? "identical" : "MISMATCH");
        js << (k > 3 ? "," : "") << "{\"k\":" << k
           << ",\"mono_states\":" << mono.state_count()
           << ",\"mono_ms\":" << mono_ms
           << ",\"composed_states\":" << cold.states_total
           << ",\"groups\":" << cold.groups.size()
           << ",\"cold_ms\":" << cold_ms << ",\"warm_ms\":" << warm_ms
           << ",\"warm_states_explored\":" << warm.states_explored
           << ",\"hit_rate\":" << hit_rate
           << ",\"equivalent\":" << (equivalent ? "true" : "false") << "}";
    }
    js << "]";

    // The parallel sweep only means something relative to the box it ran
    // on: record the thread count so a 1-core artifact is not mistaken
    // for a scaling regression.
    js << ",\"hw_threads\":" << std::thread::hardware_concurrency();
    js << ",\"pinned\":" << (pin ? "true" : "false");
    js << ",\"schema\":\"ceu-bench-dfa-v3\"}";

    if (!json_path.empty()) {
        std::ofstream f(json_path, std::ios::binary);
        if (!f.good()) {
            std::fprintf(stderr, "bench_dfa_scaling: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        f << js.str() << "\n";
        std::printf("\nwrote %s\n", json_path.c_str());
    }

    std::printf("\npaper check: exponential growth in sweep 1, millisecond-scale\n"
                "analysis of every real demo program in sweep 2, and an\n"
                "order-normalized-identical automaton from every jobs setting in\n"
                "sweep 3 (speedup scales with available cores).\n");
    return 0;
}
