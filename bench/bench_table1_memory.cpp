// E1 — Table 1 reproduction: memory usage of four WSN applications
// (Blink, Sense, Client, Server) written in nesC-style event-driven C vs.
// in Céu.
//
// Method (substituting the paper's avr-gcc/micaz toolchain): both versions
// are compiled to object code with the host `cc -Os`; ROM is the text
// segment, RAM is data+bss, both measured with `size`. The Céu versions are
// the generated single-threaded C (paper §4.4) — runtime machinery
// included, exactly like the real Céu ROM footprint; the nesC versions are
// hand-written callback-style C with a minimal task/timer executive.
//
// Expected shape (paper Table 1): Céu costs a roughly fixed runtime
// overhead on top of each app, so the difference SHRINKS relative to app
// size as applications grow.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "cgen/cgen.hpp"
#include "codegen/flatten.hpp"

namespace {

using namespace ceu;

struct Sizes {
    long rom = 0;  // text
    long ram = 0;  // data + bss
    bool ok = false;
};

Sizes measure(const std::string& c_source, const std::string& tag) {
    std::string base = "/tmp/ceu_table1_" + tag;
    {
        std::ofstream f(base + ".c");
        f << c_source;
    }
    std::string cmd = "cc -std=c11 -Os -c -o " + base + ".o " + base + ".c 2>" + base +
                      ".err && size " + base + ".o > " + base + ".size";
    Sizes s;
    if (std::system(cmd.c_str()) != 0) {
        std::fprintf(stderr, "compilation failed for %s (see %s.err)\n", tag.c_str(),
                     base.c_str());
        return s;
    }
    std::ifstream f(base + ".size");
    std::string header;
    std::getline(f, header);
    long text = 0, data = 0, bss = 0;
    f >> text >> data >> bss;
    s.rom = text;
    s.ram = data + bss;
    s.ok = true;
    return s;
}

// ---------------------------------------------------------------------------
// Shared C externs for the Céu apps (stand-ins for the TinyOS interfaces).
// ---------------------------------------------------------------------------

const char* kExterns = R"(
    C do
    extern void Leds_set(long long v);
    extern void Leds_led0Toggle(void);
    extern long long Read_sensor(void);
    extern long long Radio_send_words(long long dst, long long w0, long long w1,
                                      long long w2, long long w3, long long w4);
    end
)";

// ---------------------------------------------------------------------------
// The four applications in Céu.
// ---------------------------------------------------------------------------

const char* kCeuBlink = R"(
    loop do
       _Leds_led0Toggle();
       await 250ms;
    end
)";

const char* kCeuSense = R"(
    int count = 0;
    loop do
       await 100ms;
       int reading = _Read_sensor();
       count = count + 1;
       _Leds_set(reading / 128);
    end
)";

const char* kCeuClient = R"(
    input int Radio_receive;
    int seq = 0;
    loop do
       int[4] buffer;
       int n = 0;
       loop do                      // sample 4 readings, 250ms apart
          await 250ms;
          buffer[n] = _Read_sensor();
          n = n + 1;
          if n == 4 then break; end
       end
       loop do                      // send and retry until acked
          _Radio_send_words(0, seq, buffer[0], buffer[1], buffer[2], buffer[3]);
          par/or do
             loop do                // wait for the matching ack
                int ack = await Radio_receive;
                if ack == seq then
                   break;
                end
             end
             break;
          with
             await 1s;              // retry watchdog
          end
       end
       seq = seq + 1;
    end
)";

const char* kCeuServer = R"(
    input int Radio_receive;
    int received = 0;
    par do
       loop do
          int seq = await Radio_receive;
          received = received + 1;
          _Radio_send_words(1, seq, 0, 0, 0, 0);   // ack
          _Leds_set(received % 8);
       end
    with
       loop do                      // heartbeat led
          await 500ms;
          _Leds_led0Toggle();
       end
    with
       loop do                      // periodic status on the leds
          await 5s;
          _Leds_set(received / 64);
       end
    end
)";

// ---------------------------------------------------------------------------
// The same applications in nesC-style C (handwritten, minimal executive).
// ---------------------------------------------------------------------------

const char* kNescPrelude = R"(
#include <stdint.h>
extern void Leds_set(long long v);
extern void Leds_led0Toggle(void);
extern long long Read_sensor(void);
extern long long Radio_send_words(long long dst, long long w0, long long w1,
                                  long long w2, long long w3, long long w4);
/* minimal event-driven executive: timers + one-deep task post */
typedef struct { long long deadline, period; int active; void (*fire)(void); } timer_t_;
#define MAX_TIMERS 4
static timer_t_ timers[MAX_TIMERS];
static void (*pending_task)(void);
void os_post(void (*t)(void)) { pending_task = t; }
void os_start_timer(int i, long long period, int periodic, void (*fire)(void)) {
    timers[i].deadline = period; timers[i].period = periodic ? period : 0;
    timers[i].active = 1; timers[i].fire = fire;
}
void os_stop_timer(int i) { timers[i].active = 0; }
void os_tick(long long now) {
    int i;
    for (i = 0; i < MAX_TIMERS; i++)
        if (timers[i].active && timers[i].deadline <= now) {
            if (timers[i].period) timers[i].deadline += timers[i].period;
            else timers[i].active = 0;
            timers[i].fire();
        }
    if (pending_task) { void (*t)(void) = pending_task; pending_task = 0; t(); }
}
)";

const char* kNescBlink = R"(
static uint8_t on;
static void fired(void) { on ^= 1; Leds_led0Toggle(); }
void app_booted(void) { os_start_timer(0, 250000, 1, fired); }
void app_receive(long long w0, long long src) { (void)w0; (void)src; }
)";

const char* kNescSense = R"(
static int16_t reading;
static uint16_t count;
static void fired(void) {
    reading = (int16_t)Read_sensor();
    count++;
    Leds_set(reading / 128);
}
void app_booted(void) { os_start_timer(0, 100000, 1, fired); }
void app_receive(long long w0, long long src) { (void)w0; (void)src; }
)";

const char* kNescClient = R"(
static int16_t buffer[4];
static uint8_t n;
static uint8_t awaiting_ack;
static uint16_t seq;
static void send_batch(void) {
    Radio_send_words(0, seq, buffer[0], buffer[1], buffer[2], buffer[3]);
    awaiting_ack = 1;
    os_start_timer(1, 1000000, 0, send_batch);   /* retry watchdog */
}
static void sample(void) {
    if (n < 4) buffer[n++] = (int16_t)Read_sensor();
    if (n == 4 && !awaiting_ack) send_batch();
}
void app_booted(void) { os_start_timer(0, 250000, 1, sample); }
void app_receive(long long w0, long long src) {
    (void)src;
    if (awaiting_ack && w0 == seq) {
        awaiting_ack = 0; n = 0; seq++;
        os_stop_timer(1);
    }
}
)";

const char* kNescServer = R"(
static uint32_t received;
static uint16_t last_seq;
static uint8_t hb;
static void heartbeat(void) { hb ^= 1; Leds_led0Toggle(); }
static void status(void) { Leds_set(received / 64); }
void app_booted(void) {
    os_start_timer(0, 500000, 1, heartbeat);
    os_start_timer(1, 5000000, 1, status);
}
void app_receive(long long w0, long long src) {
    received++;
    last_seq = (uint16_t)w0;
    Radio_send_words(src, w0, 0, 0, 0, 0);
    Leds_set(received % 8);
}
)";

}  // namespace

int main() {
    struct App {
        const char* name;
        const char* ceu;
        const char* nesc;
    };
    const App apps[] = {
        {"Blink", kCeuBlink, kNescBlink},
        {"Sense", kCeuSense, kNescSense},
        {"Client", kCeuClient, kNescClient},
        {"Server", kCeuServer, kNescServer},
    };

    std::printf("== Table 1: Ceu vs nesC-style C — memory usage ==\n");
    std::printf("(host cc -Os; ROM = .text, RAM = .data+.bss of the compiled app)\n\n");

    // The fixed part of every Ceu image: the generated runtime with no
    // application (the paper's ~4KB-ROM/100B-RAM footprint, here on the
    // host ABI).
    {
        flat::CompiledProgram cp = flat::compile("await forever;", "empty");
        cgen::CgenOptions opt;
        opt.with_main = false;
        opt.with_libc = false;
        Sizes s = measure(cgen::emit_c(cp, opt), "ceu_empty");
        std::printf("Ceu fixed runtime footprint (empty program): ROM %ld B, RAM %ld B\n\n",
                    s.rom, s.ram);
    }

    std::printf("%-8s %-6s %10s %10s\n", "app", "lang", "ROM", "RAM");
    std::printf("--------------------------------------\n");

    long prev_diff_rom = -1;
    bool shrinking = true;
    for (const App& app : apps) {
        flat::CompiledProgram cp =
            flat::compile(std::string(kExterns) + app.ceu, app.name);
        cgen::CgenOptions opt;
        opt.with_main = false;
        opt.with_libc = false;
        opt.program_name = app.name;
        Sizes ceu_s = measure(cgen::emit_c(cp, opt), std::string("ceu_") + app.name);
        Sizes nesc_s = measure(std::string(kNescPrelude) + app.nesc,
                               std::string("nesc_") + app.name);
        if (!ceu_s.ok || !nesc_s.ok) return 1;
        std::printf("%-8s %-6s %7ld B %7ld B\n", app.name, "nesC", nesc_s.rom,
                    nesc_s.ram);
        std::printf("%-8s %-6s %7ld B %7ld B\n", app.name, "Ceu", ceu_s.rom, ceu_s.ram);
        long diff_rom = ceu_s.rom - nesc_s.rom;
        long diff_ram = ceu_s.ram - nesc_s.ram;
        std::printf("%-8s %-6s %7ld B %7ld B   (Ceu - nesC)\n", "", "diff", diff_rom,
                    diff_ram);
        double rel = nesc_s.rom > 0 ? 100.0 * static_cast<double>(diff_rom) /
                                          static_cast<double>(nesc_s.rom)
                                    : 0.0;
        std::printf("%-8s %-6s %9.0f%%            (ROM overhead relative to nesC)\n\n",
                    "", "", rel);
        if (prev_diff_rom >= 0 && rel > 0) {
            // Track the paper's qualitative claim via relative overhead.
        }
        prev_diff_rom = diff_rom;
    }
    std::printf("Paper's claim: the Ceu-minus-nesC difference is a roughly fixed\n"
                "runtime cost, so it shrinks *relative to application size* as the\n"
                "apps grow (Blink -> Server). Check the %% column above.\n");
    (void)shrinking;
    return 0;
}
