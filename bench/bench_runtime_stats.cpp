// E10 — runtime stats exporter: drives the paper's demo programs through
// ceu::host::Instance with the observability recorder armed and writes the
// per-program obs::ProcessStats snapshots as BENCH_runtime.json (the
// regression-gating artifact the nightly CI job uploads; see ROADMAP.md).
//
//   $ ./bench/bench_runtime_stats [OUT.json]     (default: BENCH_runtime.json)
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "demos/demos.hpp"
#include "host/instance.hpp"

namespace {

using namespace ceu;

struct Row {
    std::string name;
    std::string stats_json;
};

Row run_quickstart() {
    host::Instance inst(demos::kQuickstart);
    inst.observe_stats();
    inst.run(env::Script()
                 .advance(kSec)
                 .advance(kSec)
                 .event("Restart", 10)
                 .advance(kSec)
                 .advance(kSec));
    inst.finish_observation();
    return {"quickstart", inst.snapshot().to_json()};
}

Row run_temperature() {
    host::Instance inst(demos::kTemperature);
    inst.observe_stats();
    env::Script script;
    for (int i = 0; i < 200; ++i) {
        script.event("SetCelsius", i).event("SetFahrenheit", 2 * i + 32);
    }
    inst.run(script);
    inst.finish_observation();
    return {"temperature", inst.snapshot().to_json()};
}

Row run_mario() {
    display::Display disp;
    disp.push_key();
    disp.push_key();
    rt::CBindings bindings = demos::make_mario_bindings(disp);
    flat::CompiledProgram cp = flat::compile(demos::kMarioLive, "mario.ceu");
    host::Config cfg;
    cfg.bindings = &bindings;
    host::Instance inst(cp, cfg);
    inst.observe_stats();
    inst.run(env::Script().settle_asyncs());
    inst.finish_observation();
    return {"mario_live", inst.snapshot().to_json()};
}

Row run_ship() {
    arduino::Board board;
    arduino::Lcd lcd;
    demos::ShipWorld world(lcd);
    rt::CBindings bindings = demos::make_ship_bindings(world, lcd, board);
    board.set_analog_source(
        0, arduino::Board::combine(
               {arduino::Board::keypad_press(arduino::kRawUp, 120 * kMs, 400 * kMs),
                arduino::Board::keypad_press(arduino::kRawDown, 2000 * kMs,
                                             2300 * kMs)}));
    flat::CompiledProgram cp = flat::compile(demos::kShip, "ship.ceu");
    host::Config cfg;
    cfg.bindings = &bindings;
    host::Instance inst(cp, cfg);
    inst.observe_stats();
    inst.boot();
    for (int tick = 0; tick < 120; ++tick) {  // 6 seconds of 50ms keypad ticks
        inst.advance(50 * kMs);
        inst.settle();
    }
    inst.finish_observation();
    return {"ship_game", inst.snapshot().to_json()};
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_runtime.json";

    std::vector<Row> rows;
    rows.push_back(run_quickstart());
    rows.push_back(run_temperature());
    rows.push_back(run_mario());
    rows.push_back(run_ship());

    std::string json = "{\"programs\":{";
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i) json += ',';
        json += '"' + rows[i].name + "\":" + rows[i].stats_json;
    }
    json += "},\"schema\":\"ceu-bench-runtime-v1\"}\n";

    std::ofstream f(out_path, std::ios::binary);
    if (!f.good()) {
        std::fprintf(stderr, "bench_runtime_stats: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    f << json;
    std::printf("wrote %s (%zu programs)\n", out_path.c_str(), rows.size());
    for (const Row& r : rows) {
        std::printf("  %-12s %s\n", r.name.c_str(), r.stats_json.c_str());
    }
    return 0;
}
