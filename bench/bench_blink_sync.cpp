// E6 — the §6 blink experiment: two leds at 400ms and 1000ms should light
// together every 2 seconds. The synchronous Céu program stays aligned
// forever (both timers expire in the same reaction chain); the naive
// asynchronous implementations (preemptive RTOS threads, and an
// occam-style channel setup modeled as threads with a timer-server hop)
// lose synchronism as scheduling latency accumulates.
#include <cmath>
#include <cstdio>
#include <vector>

#include "codegen/flatten.hpp"
#include "env/driver.hpp"
#include "wsn/mantis_runtime.hpp"

namespace {

using namespace ceu;

// -- Céu side -----------------------------------------------------------------

const char* kCeuBlink = R"(
    par do
       loop do
          _led0_toggle();
          await 400ms;
       end
    with
       loop do
          _led1_toggle();
          await 1000ms;
       end
    end
)";

struct Toggles {
    std::vector<Micros> led0, led1;
};

Toggles run_ceu(Micros horizon) {
    Toggles t;
    flat::CompiledProgram cp = flat::compile(kCeuBlink, "blink.ceu");
    rt::CBindings extra;
    // The two toggles are concurrent every 2s; they commute.
    extra.fn("led0_toggle", [&t](rt::Engine& e, std::span<const rt::Value>) {
        t.led0.push_back(e.logical_now());
        return rt::Value::integer(0);
    });
    extra.fn("led1_toggle", [&t](rt::Engine& e, std::span<const rt::Value>) {
        t.led1.push_back(e.logical_now());
        return rt::Value::integer(0);
    });
    env::Driver d(cp, &extra);
    d.run(env::Script().advance(horizon));
    return t;
}

// -- asynchronous baselines ------------------------------------------------------

Toggles run_threads(Micros horizon, wsn::MantisConfig cfg) {
    wsn::MantisKernel k(cfg);
    auto* b0 = new wsn::MantisBlinkThread(400 * kMs);
    auto* b1 = new wsn::MantisBlinkThread(1000 * kMs);
    k.add(std::unique_ptr<wsn::MantisThread>(b0));
    k.add(std::unique_ptr<wsn::MantisThread>(b1));
    k.boot(0);
    for (uint64_t guard = 0; guard < 5'000'000; ++guard) {
        Micros e = k.next_event();
        if (e < 0 || e > horizon) break;
        k.advance(e);
    }
    Toggles t;
    for (const auto& [at, on] : b0->toggles) t.led0.push_back(at);
    for (const auto& [at, on] : b1->toggles) t.led1.push_back(at);
    return t;
}

/// Misalignment at each ideal joint instant (multiples of 2s): distance
/// between the nearest led0 toggle and the nearest led1 toggle.
std::vector<double> joint_misalignment(const Toggles& t, Micros horizon) {
    std::vector<double> out;
    auto nearest = [](const std::vector<Micros>& v, Micros x) {
        Micros best = -1;
        for (Micros e : v) {
            if (best < 0 || std::llabs(e - x) < std::llabs(best - x)) best = e;
        }
        return best;
    };
    for (Micros joint = 2 * kSec; joint <= horizon; joint += 2 * kSec) {
        Micros a = nearest(t.led0, joint);
        Micros b = nearest(t.led1, joint);
        if (a < 0 || b < 0) break;
        out.push_back(std::fabs(static_cast<double>(a - b)) / kMs);
    }
    return out;
}

void print_series(const char* name, const std::vector<double>& mis) {
    std::printf("%-22s", name);
    // One sample every 30 joints (every minute), plus the last.
    for (size_t i = 14; i < mis.size(); i += 30) std::printf(" %7.1f", mis[i]);
    double worst = 0;
    for (double m : mis) worst = std::max(worst, m);
    std::printf("   worst=%.1fms\n", worst);
}

}  // namespace

int main() {
    constexpr Micros kHorizon = 10 * kMin;
    std::printf("== Blink synchronism: 400ms + 1000ms leds over 10 minutes ==\n");
    std::printf("(led0/led1 misalignment in ms at the 2s joint instants; one "
                "column per minute)\n\n");

    Toggles ceu_t = run_ceu(kHorizon);
    print_series("Ceu (synchronous)", joint_misalignment(ceu_t, kHorizon));

    wsn::MantisConfig rtos;
    Toggles rtos_t = run_threads(kHorizon, rtos);
    print_series("RTOS threads (naive)", joint_misalignment(rtos_t, kHorizon));

    wsn::MantisConfig occam;  // channel hop through a timer server: slower wakes
    occam.wake_latency = 700;
    occam.ctx_switch = 250;
    Toggles occam_t = run_threads(kHorizon, occam);
    print_series("occam-style (naive)", joint_misalignment(occam_t, kHorizon));

    auto mis = joint_misalignment(ceu_t, kHorizon);
    bool ceu_perfect = true;
    for (double m : mis) ceu_perfect = ceu_perfect && m == 0.0;
    std::printf("\npaper check: the Ceu leds light together at every 2s joint "
                "(drift 0) while the\nasynchronous variants drift apart: %s\n",
                ceu_perfect ? "OK" : "MISMATCH");
    return ceu_perfect ? 0 : 1;
}
