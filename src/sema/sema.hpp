// Semantic analysis for Céu:
//  * scoped name resolution (variables, external/internal events);
//  * declaration rules (declare-before-use, ID-class conventions);
//  * async-block restrictions (paper §2.7: no parallel blocks, no awaiting
//    input events, no internal-event manipulation, no assignment to outer
//    variables);
//  * the `pure` / `deterministic` C-call annotation registry (paper §2.6);
//  * the bounded-execution check (paper §2.5) lives in bounded.cpp and is
//    invoked from here.
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.hpp"
#include "util/diag.hpp"

namespace ceu {

/// Dense interned id of a declared event (external input, internal, or
/// output — each namespace is its own dense range starting at 0). Event
/// names are interned once at load time; everything past the parse/CLI
/// boundary speaks EventId, so no string comparison sits on a reaction
/// path.
using EventId = int;
constexpr EventId kNoEvent = -1;

/// A declared Céu variable. `decl_id` indexes into SemaInfo::vars and is
/// written back into every VarExpr that resolves to it.
struct VarInfo {
    std::string name;
    ast::Type type;
    int64_t array_size = 0;  // 0 = scalar
    SourceLoc loc;
    bool declared_in_async = false;
};

/// A declared event (external input or internal).
struct EventInfo {
    std::string name;
    ast::Type type;  // value carried by occurrences; `void` = notify-only
    SourceLoc loc;
};

/// The annotation registry for concurrent C calls. Two calls `f`, `g` may
/// run concurrently iff either is `pure` or both belong to one
/// `deterministic` group (paper §2.6).
class CCallPolicy {
  public:
    void add_pure(const std::string& f) { pure_.insert(f); }
    void add_group(const std::vector<std::string>& fs) {
        groups_.emplace_back(fs.begin(), fs.end());
    }

    [[nodiscard]] bool is_pure(const std::string& f) const { return pure_.count(f) > 0; }

    /// May `f` and `g` (possibly the same function) run concurrently?
    [[nodiscard]] bool allowed(const std::string& f, const std::string& g) const {
        if (is_pure(f) || is_pure(g)) return true;
        for (const auto& grp : groups_) {
            if (grp.count(f) && grp.count(g)) return true;
        }
        return false;
    }

  private:
    std::set<std::string> pure_;
    std::vector<std::set<std::string>> groups_;
};

/// Results of semantic analysis. Later phases (flattener, DFA, C emitter)
/// consume ids from here and never re-resolve names.
struct SemaInfo {
    std::vector<VarInfo> vars;        // indexed by decl_id
    std::vector<EventInfo> inputs;    // indexed by external event id
    std::vector<EventInfo> internals; // indexed by internal event id
    std::vector<EventInfo> outputs;   // extension: output events
    CCallPolicy ccalls;
    std::vector<std::string> c_blocks;  // raw C bodies, in program order

    /// name -> dense id. Built by analyze() (and rebuildable with
    /// build_event_index() after hand-assembling the vectors); the id
    /// lookups below are O(1) against these maps.
    std::unordered_map<std::string, EventId> input_index;
    std::unordered_map<std::string, EventId> internal_index;
    std::unordered_map<std::string, EventId> output_index;

    /// (Re)derives the three name->id maps from the event vectors.
    void build_event_index();

    [[nodiscard]] EventId input_id(const std::string& name) const {
        return lookup(input_index, inputs, name);
    }
    [[nodiscard]] EventId internal_id(const std::string& name) const {
        return lookup(internal_index, internals, name);
    }
    [[nodiscard]] EventId output_id(const std::string& name) const {
        return lookup(output_index, outputs, name);
    }

  private:
    static EventId lookup(const std::unordered_map<std::string, EventId>& index,
                          const std::vector<EventInfo>& events, const std::string& name) {
        if (index.size() == events.size()) {  // interned (the normal case)
            auto it = index.find(name);
            return it == index.end() ? kNoEvent : it->second;
        }
        // Fallback for a hand-assembled SemaInfo that skipped the interner.
        for (size_t i = 0; i < events.size(); ++i) {
            if (events[i].name == name) return static_cast<EventId>(i);
        }
        return kNoEvent;
    }
};

/// Runs all semantic checks over `prog`, annotating the AST in place.
/// Check `diags.ok()` before trusting the returned SemaInfo.
SemaInfo analyze(ast::Program& prog, Diagnostics& diags);

/// The bounded-execution check (paper §2.5): every possible path through a
/// loop body must contain an await or a break. Exposed separately for
/// focused tests; `analyze` already calls it.
void check_bounded(const ast::Program& prog, Diagnostics& diags);

}  // namespace ceu
