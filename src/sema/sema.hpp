// Semantic analysis for Céu:
//  * scoped name resolution (variables, external/internal events);
//  * declaration rules (declare-before-use, ID-class conventions);
//  * async-block restrictions (paper §2.7: no parallel blocks, no awaiting
//    input events, no internal-event manipulation, no assignment to outer
//    variables);
//  * the `pure` / `deterministic` C-call annotation registry (paper §2.6);
//  * the bounded-execution check (paper §2.5) lives in bounded.cpp and is
//    invoked from here.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "util/diag.hpp"

namespace ceu {

/// A declared Céu variable. `decl_id` indexes into SemaInfo::vars and is
/// written back into every VarExpr that resolves to it.
struct VarInfo {
    std::string name;
    ast::Type type;
    int64_t array_size = 0;  // 0 = scalar
    SourceLoc loc;
    bool declared_in_async = false;
};

/// A declared event (external input or internal).
struct EventInfo {
    std::string name;
    ast::Type type;  // value carried by occurrences; `void` = notify-only
    SourceLoc loc;
};

/// The annotation registry for concurrent C calls. Two calls `f`, `g` may
/// run concurrently iff either is `pure` or both belong to one
/// `deterministic` group (paper §2.6).
class CCallPolicy {
  public:
    void add_pure(const std::string& f) { pure_.insert(f); }
    void add_group(const std::vector<std::string>& fs) {
        groups_.emplace_back(fs.begin(), fs.end());
    }

    [[nodiscard]] bool is_pure(const std::string& f) const { return pure_.count(f) > 0; }

    /// May `f` and `g` (possibly the same function) run concurrently?
    [[nodiscard]] bool allowed(const std::string& f, const std::string& g) const {
        if (is_pure(f) || is_pure(g)) return true;
        for (const auto& grp : groups_) {
            if (grp.count(f) && grp.count(g)) return true;
        }
        return false;
    }

  private:
    std::set<std::string> pure_;
    std::vector<std::set<std::string>> groups_;
};

/// Results of semantic analysis. Later phases (flattener, DFA, C emitter)
/// consume ids from here and never re-resolve names.
struct SemaInfo {
    std::vector<VarInfo> vars;        // indexed by decl_id
    std::vector<EventInfo> inputs;    // indexed by external event id
    std::vector<EventInfo> internals; // indexed by internal event id
    std::vector<EventInfo> outputs;   // extension: output events
    CCallPolicy ccalls;
    std::vector<std::string> c_blocks;  // raw C bodies, in program order

    [[nodiscard]] int input_id(const std::string& name) const {
        for (size_t i = 0; i < inputs.size(); ++i) {
            if (inputs[i].name == name) return static_cast<int>(i);
        }
        return -1;
    }
    [[nodiscard]] int internal_id(const std::string& name) const {
        for (size_t i = 0; i < internals.size(); ++i) {
            if (internals[i].name == name) return static_cast<int>(i);
        }
        return -1;
    }
    [[nodiscard]] int output_id(const std::string& name) const {
        for (size_t i = 0; i < outputs.size(); ++i) {
            if (outputs[i].name == name) return static_cast<int>(i);
        }
        return -1;
    }
};

/// Runs all semantic checks over `prog`, annotating the AST in place.
/// Check `diags.ok()` before trusting the returned SemaInfo.
SemaInfo analyze(ast::Program& prog, Diagnostics& diags);

/// The bounded-execution check (paper §2.5): every possible path through a
/// loop body must contain an await or a break. Exposed separately for
/// focused tests; `analyze` already calls it.
void check_bounded(const ast::Program& prog, Diagnostics& diags);

}  // namespace ceu
