// The bounded-execution check (paper §2.5): a reaction chain must run in
// bounded time, so every possible path through a loop body must contain at
// least one `await` or `break`. C calls are assumed not to loop (the
// programmer's responsibility, per the paper).
//
// The analysis computes, by structural induction, whether a statement (or
// sequence) *may complete instantaneously* — i.e. finish in the same
// reaction without awaiting — and whether it *may break instantaneously*
// out of the enclosing loop. A loop whose body may complete instantaneously
// is a tight loop and is refused.
#include "sema/sema.hpp"

namespace ceu {

using namespace ast;

namespace {

struct Flags {
    bool may_complete_instant = false;  // may fall off the end without awaiting
    bool may_break_instant = false;     // may `break` the nearest loop without awaiting
    bool may_return_instant = false;    // may `return` without awaiting
};

class BoundedChecker {
  public:
    explicit BoundedChecker(Diagnostics& diags) : diags_(diags) {}

    void check_program(const Program& prog) {
        (void)analyze_seq(prog.body, /*instant_entry=*/true);
    }

  private:
    Diagnostics& diags_;

    Flags analyze_stmt(const Stmt& s, bool instant_entry) {
        Flags f;
        switch (s.kind) {
            case StmtKind::AwaitExt:
            case StmtKind::AwaitInt:
            case StmtKind::AwaitTime:
            case StmtKind::AwaitDyn:
            case StmtKind::AwaitForever:
                // Awaiting always ends the instantaneous path.
                f.may_complete_instant = false;
                return f;

            case StmtKind::Break:
                f.may_break_instant = instant_entry;
                return f;

            case StmtKind::Return:
                f.may_return_instant = instant_entry;
                return f;

            case StmtKind::If: {
                const auto& n = static_cast<const IfStmt&>(s);
                Flags a = analyze_seq(n.then_body, instant_entry);
                Flags b = analyze_seq(n.else_body, instant_entry);
                f.may_complete_instant = a.may_complete_instant || b.may_complete_instant;
                f.may_break_instant = a.may_break_instant || b.may_break_instant;
                f.may_return_instant = a.may_return_instant || b.may_return_instant;
                return f;
            }

            case StmtKind::Loop: {
                const auto& n = static_cast<const LoopStmt&>(s);
                Flags body = analyze_seq(n.body, /*instant_entry=*/true);
                if (body.may_complete_instant) {
                    diags_.error(s.loc,
                                 "unbounded loop: a path through the loop body "
                                 "contains no await or break (paper §2.5)");
                }
                // The loop statement completes via a break of its own body;
                // it does so instantaneously only if entry was instantaneous
                // and some break path awaited nothing first.
                f.may_complete_instant = instant_entry && body.may_break_instant;
                f.may_return_instant = instant_entry && body.may_return_instant;
                f.may_break_instant = false;  // inner breaks target this loop
                return f;
            }

            case StmtKind::Par: {
                const auto& n = static_cast<const ParStmt&>(s);
                bool all_complete = true;
                bool any_complete = false;
                for (const auto& b : n.branches) {
                    Flags bf = analyze_seq(b, instant_entry);
                    all_complete = all_complete && bf.may_complete_instant;
                    any_complete = any_complete || bf.may_complete_instant;
                    f.may_break_instant |= bf.may_break_instant;
                    f.may_return_instant |= bf.may_return_instant;
                }
                switch (n.par_kind) {
                    case ParKind::Par:
                        f.may_complete_instant = false;  // never rejoins
                        break;
                    case ParKind::ParAnd:
                        f.may_complete_instant = all_complete;
                        break;
                    case ParKind::ParOr:
                        f.may_complete_instant = any_complete;
                        break;
                }
                return f;
            }

            case StmtKind::Block: {
                return analyze_seq(static_cast<const BlockStmt&>(s).body, instant_entry);
            }

            case StmtKind::Async: {
                const auto& n = static_cast<const AsyncStmt&>(s);
                // An async runs in unbounded time *outside* the synchronous
                // side; loops inside it are exempt. The synchronous side
                // always awaits its completion.
                check_async_body(n.body);
                f.may_complete_instant = false;
                return f;
            }

            case StmtKind::Assign: {
                const auto& n = static_cast<const AssignStmt&>(s);
                if (n.rhs_stmt) {
                    Flags rf = analyze_value_block(*n.rhs_stmt, instant_entry);
                    return rf;
                }
                f.may_complete_instant = instant_entry;
                return f;
            }

            case StmtKind::DeclVar: {
                const auto& n = static_cast<const DeclVarStmt&>(s);
                bool instant = instant_entry;
                Flags acc;
                for (const auto& v : n.vars) {
                    if (v.init_stmt) {
                        Flags rf = analyze_value_block(*v.init_stmt, instant);
                        acc.may_break_instant |= rf.may_break_instant;
                        acc.may_return_instant |= rf.may_return_instant;
                        instant = rf.may_complete_instant;
                    }
                }
                acc.may_complete_instant = instant;
                return acc;
            }

            default:
                // Plain zero-delay statements: declarations, emits, C calls.
                f.may_complete_instant = instant_entry;
                return f;
        }
    }

    /// A value-producing block (`v = par do ... end`): `return` completes
    /// the *block*, so return-instant folds into complete-instant.
    Flags analyze_value_block(const Stmt& s, bool instant_entry) {
        Flags f = analyze_stmt(s, instant_entry);
        f.may_complete_instant = f.may_complete_instant || f.may_return_instant;
        f.may_return_instant = false;
        return f;
    }

    Flags analyze_seq(const BlockBody& body, bool instant_entry) {
        Flags acc;
        bool instant = instant_entry;
        for (const auto& s : body.stmts) {
            Flags sf = analyze_stmt(*s, instant);
            acc.may_break_instant |= sf.may_break_instant;
            acc.may_return_instant |= sf.may_return_instant;
            if (s->kind == StmtKind::Break || s->kind == StmtKind::Return) {
                // Control never falls through; the rest of the sequence is dead.
                acc.may_complete_instant = false;
                return acc;
            }
            instant = sf.may_complete_instant;
        }
        acc.may_complete_instant = instant;
        return acc;
    }

    /// Asyncs may contain unbounded loops, but a loop with *no* break and
    /// no enclosing-iteration budget would starve the whole async queue
    /// only cooperatively — that is allowed (paper: "no warranty that an
    /// async will ever terminate"). Nothing to check structurally; we still
    /// recurse to flag nested loops' own structure errors: none apply.
    void check_async_body(const BlockBody&) {}
};

}  // namespace

void check_bounded(const Program& prog, Diagnostics& diags) {
    BoundedChecker(diags).check_program(prog);
}

}  // namespace ceu
