#include "sema/sema.hpp"

#include <unordered_map>

namespace ceu {

using namespace ast;

namespace {

/// Lexical scope chain mapping names to declaration ids.
class Scope {
  public:
    explicit Scope(Scope* parent = nullptr) : parent_(parent) {}

    void declare(const std::string& name, int decl_id) { table_[name] = decl_id; }

    [[nodiscard]] int lookup(const std::string& name) const {
        auto it = table_.find(name);
        if (it != table_.end()) return it->second;
        return parent_ ? parent_->lookup(name) : -1;
    }

    /// True if `name` resolves in this scope or any ancestor *up to and
    /// including* `stop` (used for the async outer-assignment rule).
    [[nodiscard]] bool declared_within(const std::string& name, const Scope* stop) const {
        for (const Scope* s = this; s != nullptr; s = s->parent_) {
            if (s->table_.count(name)) return true;
            if (s == stop) break;
        }
        return false;
    }

    [[nodiscard]] Scope* parent() const { return parent_; }

  private:
    Scope* parent_;
    std::unordered_map<std::string, int> table_;
};

class Analyzer {
  public:
    Analyzer(Program& prog, Diagnostics& diags) : prog_(prog), diags_(diags) {}

    SemaInfo run() {
        Scope root;
        visit_body(prog_.body, root);
        check_bounded(prog_, diags_);
        info_.build_event_index();
        return std::move(info_);
    }

  private:
    Program& prog_;
    Diagnostics& diags_;
    SemaInfo info_;
    std::unordered_map<std::string, int> input_ids_;
    std::unordered_map<std::string, int> internal_ids_;
    std::unordered_map<std::string, int> output_ids_;
    int loop_depth_ = 0;
    Scope* async_boundary_ = nullptr;  // innermost async scope, if any
    bool in_async_ = false;

    // -- declarations --------------------------------------------------------

    void declare_input(DeclInputStmt& s) {
        for (const auto& name : s.names) {
            if (input_ids_.count(name)) {
                diags_.error(s.loc, "input event '" + name + "' redeclared");
                continue;
            }
            input_ids_[name] = static_cast<int>(info_.inputs.size());
            info_.inputs.push_back({name, s.type, s.loc});
        }
    }

    void declare_output(DeclOutputStmt& s) {
        for (const auto& name : s.names) {
            if (output_ids_.count(name) || input_ids_.count(name)) {
                diags_.error(s.loc, "event '" + name + "' redeclared");
                continue;
            }
            output_ids_[name] = static_cast<int>(info_.outputs.size());
            info_.outputs.push_back({name, s.type, s.loc});
        }
    }

    void declare_internal(DeclInternalStmt& s) {
        for (const auto& name : s.names) {
            if (internal_ids_.count(name)) {
                diags_.error(s.loc, "internal event '" + name + "' redeclared");
                continue;
            }
            internal_ids_[name] = static_cast<int>(info_.internals.size());
            info_.internals.push_back({name, s.type, s.loc});
        }
    }

    int declare_var(const std::string& name, const Type& type, int64_t array_size,
                    SourceLoc loc, Scope& scope) {
        int id = static_cast<int>(info_.vars.size());
        info_.vars.push_back({name, type, array_size, loc, in_async_});
        scope.declare(name, id);
        return id;
    }

    // -- expressions ---------------------------------------------------------

    void visit_expr(Expr& e, Scope& scope) {
        switch (e.kind) {
            case ExprKind::Var: {
                auto& n = static_cast<VarExpr&>(e);
                n.decl_id = scope.lookup(n.name);
                if (n.decl_id < 0) {
                    // internal events are lowercase too, but are not values
                    if (internal_ids_.count(n.name)) {
                        diags_.error(e.loc, "event '" + n.name +
                                                "' used as a value (events carry "
                                                "values only through await)");
                    } else {
                        diags_.error(e.loc, "undeclared variable '" + n.name + "'");
                    }
                }
                break;
            }
            case ExprKind::Unop:
                visit_expr(*static_cast<UnopExpr&>(e).sub, scope);
                break;
            case ExprKind::Binop: {
                auto& n = static_cast<BinopExpr&>(e);
                visit_expr(*n.lhs, scope);
                visit_expr(*n.rhs, scope);
                break;
            }
            case ExprKind::Index: {
                auto& n = static_cast<IndexExpr&>(e);
                visit_expr(*n.base, scope);
                visit_expr(*n.index, scope);
                break;
            }
            case ExprKind::Call: {
                auto& n = static_cast<CallExpr&>(e);
                visit_expr(*n.fn, scope);
                for (auto& a : n.args) visit_expr(*a, scope);
                break;
            }
            case ExprKind::Cast:
                visit_expr(*static_cast<CastExpr&>(e).sub, scope);
                break;
            case ExprKind::Field:
                visit_expr(*static_cast<FieldExpr&>(e).base, scope);
                break;
            default:
                break;  // literals, C symbols, sizeof
        }
    }

    // -- statements ----------------------------------------------------------

    void visit_body(BlockBody& body, Scope& scope) {
        for (auto& s : body.stmts) visit_stmt(*s, scope);
    }

    /// Visits a body in a fresh child scope (do-blocks, branches, loops).
    void visit_child(BlockBody& body, Scope& parent) {
        Scope child(&parent);
        visit_body(body, child);
    }

    void visit_stmt(Stmt& s, Scope& scope) {
        switch (s.kind) {
            case StmtKind::Nothing:
                break;
            case StmtKind::DeclInput:
                declare_input(static_cast<DeclInputStmt&>(s));
                break;
            case StmtKind::DeclInternal:
                declare_internal(static_cast<DeclInternalStmt&>(s));
                break;
            case StmtKind::DeclOutput:
                declare_output(static_cast<DeclOutputStmt&>(s));
                break;
            case StmtKind::DeclVar: {
                auto& n = static_cast<DeclVarStmt&>(s);
                for (auto& v : n.vars) {
                    // Initializers are resolved before the name is visible
                    // (C scoping would allow self-reference; Céu does not).
                    if (v.init) visit_expr(*v.init, scope);
                    if (v.init_stmt) visit_stmt(*v.init_stmt, scope);
                    v.decl_id = declare_var(v.name, n.type, v.array_size, v.loc, scope);
                    if (v.init_stmt) check_value_producer(*v.init_stmt, n.type);
                }
                break;
            }
            case StmtKind::CBlock:
                info_.c_blocks.push_back(static_cast<CBlockStmt&>(s).code);
                break;
            case StmtKind::Pure:
                for (const auto& f : static_cast<PureStmt&>(s).names) {
                    info_.ccalls.add_pure(f);
                }
                break;
            case StmtKind::Deterministic:
                info_.ccalls.add_group(static_cast<DeterministicStmt&>(s).names);
                break;
            case StmtKind::AwaitExt: {
                auto& n = static_cast<AwaitExtStmt&>(s);
                if (in_async_) {
                    diags_.error(s.loc, "async blocks cannot await input events");
                }
                auto it = input_ids_.find(n.event);
                if (it == input_ids_.end()) {
                    diags_.error(s.loc, "undeclared input event '" + n.event + "'");
                } else {
                    n.event_id = it->second;
                }
                break;
            }
            case StmtKind::AwaitInt: {
                auto& n = static_cast<AwaitIntStmt&>(s);
                if (in_async_) {
                    diags_.error(s.loc, "async blocks cannot manipulate internal events");
                }
                auto it = internal_ids_.find(n.event);
                if (it == internal_ids_.end()) {
                    diags_.error(s.loc, "undeclared internal event '" + n.event + "'");
                } else {
                    n.event_id = it->second;
                }
                break;
            }
            case StmtKind::AwaitTime:
            case StmtKind::AwaitForever:
                if (in_async_) {
                    diags_.error(s.loc, "async blocks cannot await");
                }
                break;
            case StmtKind::AwaitDyn:
                if (in_async_) {
                    diags_.error(s.loc, "async blocks cannot await");
                } else {
                    visit_expr(*static_cast<AwaitDynStmt&>(s).us, scope);
                }
                break;
            case StmtKind::EmitInt: {
                auto& n = static_cast<EmitIntStmt&>(s);
                if (in_async_) {
                    diags_.error(s.loc, "async blocks cannot manipulate internal events");
                }
                auto it = internal_ids_.find(n.event);
                if (it == internal_ids_.end()) {
                    diags_.error(s.loc, "undeclared internal event '" + n.event + "'");
                } else {
                    n.event_id = it->second;
                    if (n.value && info_.internals[it->second].type.is_void()) {
                        diags_.error(s.loc, "internal event '" + n.event +
                                                "' is notify-only (void) but an emit "
                                                "value was given");
                    }
                }
                if (n.value) visit_expr(*n.value, scope);
                break;
            }
            case StmtKind::EmitExt: {
                auto& n = static_cast<EmitExtStmt&>(s);
                // Output events (extension) are emitted from synchronous
                // code; input events only from asyncs (simulation, §2.8).
                auto out_it = output_ids_.find(n.event);
                if (out_it != output_ids_.end()) {
                    n.is_output = true;
                    n.event_id = out_it->second;
                    if (in_async_) {
                        diags_.error(s.loc, "async blocks cannot emit output events");
                    }
                    if (n.value && info_.outputs[out_it->second].type.is_void()) {
                        diags_.error(s.loc, "output event '" + n.event +
                                                "' is void but an emit value was given");
                    }
                    if (n.value) visit_expr(*n.value, scope);
                    break;
                }
                if (!in_async_) {
                    diags_.error(s.loc,
                                 "input events can only be emitted from async blocks "
                                 "(simulation, paper §2.8)");
                }
                auto it = input_ids_.find(n.event);
                if (it == input_ids_.end()) {
                    diags_.error(s.loc, "undeclared input event '" + n.event + "'");
                } else {
                    n.event_id = it->second;
                    if (n.value && info_.inputs[it->second].type.is_void()) {
                        diags_.error(s.loc, "input event '" + n.event +
                                                "' is void but an emit value was given");
                    }
                }
                if (n.value) visit_expr(*n.value, scope);
                break;
            }
            case StmtKind::EmitTime:
                if (!in_async_) {
                    diags_.error(s.loc,
                                 "time can only be emitted from async blocks "
                                 "(simulation, paper §2.8)");
                }
                break;
            case StmtKind::If: {
                auto& n = static_cast<IfStmt&>(s);
                visit_expr(*n.cond, scope);
                visit_child(n.then_body, scope);
                visit_child(n.else_body, scope);
                break;
            }
            case StmtKind::Loop: {
                ++loop_depth_;
                visit_child(static_cast<LoopStmt&>(s).body, scope);
                --loop_depth_;
                break;
            }
            case StmtKind::Break:
                if (loop_depth_ == 0) {
                    diags_.error(s.loc, "'break' outside of a loop");
                }
                break;
            case StmtKind::Par: {
                auto& n = static_cast<ParStmt&>(s);
                if (in_async_) {
                    diags_.error(s.loc, "async blocks cannot contain parallel blocks");
                }
                // A `break` may not cross a parallel-composition boundary
                // into a loop outside the par only for plain statements; the
                // paper allows escaping loops from trails, so loop_depth_ is
                // kept as-is across branches.
                for (auto& b : n.branches) visit_child(b, scope);
                break;
            }
            case StmtKind::ExprStmt:
                visit_expr(*static_cast<ExprStmtStmt&>(s).expr, scope);
                break;
            case StmtKind::Assign: {
                auto& n = static_cast<AssignStmt&>(s);
                visit_expr(*n.lhs, scope);
                check_async_assignment(*n.lhs, scope, s.loc);
                if (n.rhs_expr) visit_expr(*n.rhs_expr, scope);
                if (n.rhs_stmt) {
                    visit_stmt(*n.rhs_stmt, scope);
                    Type dummy{"int", 0, false};
                    check_value_producer(*n.rhs_stmt, dummy);
                }
                break;
            }
            case StmtKind::Return: {
                auto& n = static_cast<ReturnStmt&>(s);
                if (n.value) visit_expr(*n.value, scope);
                break;
            }
            case StmtKind::Block:
                visit_child(static_cast<BlockStmt&>(s).body, scope);
                break;
            case StmtKind::Async: {
                auto& n = static_cast<AsyncStmt&>(s);
                if (in_async_) {
                    diags_.error(s.loc, "async blocks cannot nest");
                    break;
                }
                in_async_ = true;
                Scope child(&scope);
                Scope* saved = async_boundary_;
                async_boundary_ = &child;
                int saved_loops = loop_depth_;
                loop_depth_ = 0;  // breaks inside async target async-local loops
                visit_body(n.body, child);
                loop_depth_ = saved_loops;
                async_boundary_ = saved;
                in_async_ = false;
                break;
            }
        }
    }

    /// Paper §2.7: asyncs "cannot assign to variables defined in outer
    /// blocks" — results flow out only through `return`.
    void check_async_assignment(Expr& lhs, Scope& scope, SourceLoc loc) {
        if (!in_async_ || async_boundary_ == nullptr) return;
        const Expr* root = &lhs;
        while (root->kind == ExprKind::Index) {
            root = static_cast<const IndexExpr*>(root)->base.get();
        }
        if (root->kind != ExprKind::Var) return;  // *ptr / C globals: programmer's "C hat"
        const auto& v = static_cast<const VarExpr&>(*root);
        if (v.decl_id < 0) return;
        if (!scope.declared_within(v.name, async_boundary_)) {
            diags_.error(loc, "async blocks cannot assign to variable '" + v.name +
                                  "' defined in an outer block (paper §2.7)");
        }
    }

    /// A SetExp statement must be able to produce a value: an await on a
    /// value-carrying event/time, or a block containing `return`.
    void check_value_producer(Stmt& rhs, const Type&) {
        switch (rhs.kind) {
            case StmtKind::AwaitExt: {
                auto& n = static_cast<AwaitExtStmt&>(rhs);
                if (n.event_id >= 0 && info_.inputs[n.event_id].type.is_void()) {
                    diags_.error(rhs.loc, "await of void event '" + n.event +
                                              "' cannot produce a value");
                }
                break;
            }
            case StmtKind::AwaitInt: {
                auto& n = static_cast<AwaitIntStmt&>(rhs);
                if (n.event_id >= 0 && info_.internals[n.event_id].type.is_void()) {
                    diags_.error(rhs.loc, "await of void event '" + n.event +
                                              "' cannot produce a value");
                }
                break;
            }
            default:
                break;  // par/do/async blocks produce via `return`
        }
    }
};

}  // namespace

void SemaInfo::build_event_index() {
    input_index.clear();
    internal_index.clear();
    output_index.clear();
    input_index.reserve(inputs.size());
    internal_index.reserve(internals.size());
    output_index.reserve(outputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
        input_index.emplace(inputs[i].name, static_cast<EventId>(i));
    }
    for (size_t i = 0; i < internals.size(); ++i) {
        internal_index.emplace(internals[i].name, static_cast<EventId>(i));
    }
    for (size_t i = 0; i < outputs.size(); ++i) {
        output_index.emplace(outputs[i].name, static_cast<EventId>(i));
    }
}

SemaInfo analyze(Program& prog, Diagnostics& diags) {
    return Analyzer(prog, diags).run();
}

}  // namespace ceu
