#include "analysis/modular.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "ast/print.hpp"

namespace ceu::analysis {

namespace {

using flat::FlatProgram;
using flat::Instr;
using flat::IOp;
using flat::Pc;

// ---------------------------------------------------------------------------
// Content hashing (round-trip stable: hashes pretty-printed source, which
// the PR 3 render∘parse fixpoint guarantees is invariant under re-parse)
// ---------------------------------------------------------------------------

/// Declarations with *program-global* effect on the analysis regardless of
/// where they appear: event names (trigger/conflict labels) and the
/// pure/deterministic C-call registry (which admits cross-arm call pairs).
/// They are folded into every module's hash, so editing one conservatively
/// invalidates all cached groups.
std::string globals_text(const ast::Program& prog) {
    std::string out = "-- globals --\n";
    ast::walk_stmts(prog.body, [&](const ast::Stmt& s) {
        switch (s.kind) {
            case ast::StmtKind::DeclInput:
            case ast::StmtKind::DeclInternal:
            case ast::StmtKind::DeclOutput:
            case ast::StmtKind::Pure:
            case ast::StmtKind::Deterministic:
                out += ast::print_stmt(s);
                break;
            default:
                break;
        }
        return true;
    });
    return out;
}

/// The top-level statements before the partition par: shared declarations
/// and prelude initialization every arm can see.
std::string prelude_text(const ast::Program& prog, const ast::Stmt* par_stmt) {
    std::string out = "-- prelude --\n";
    for (const auto& st : prog.body.stmts) {
        if (st.get() == par_stmt) break;
        out += ast::print_stmt(*st);
    }
    return out;
}

/// C-call name extraction, mirroring dfa/abstract.cpp's record_ccall so the
/// interface sees exactly the names the conflict detector will check.
std::string ccall_name(const ast::CallExpr& call) {
    if (call.fn->kind == ast::ExprKind::CSym) {
        return static_cast<const ast::CSymExpr&>(*call.fn).name;
    }
    if (call.fn->kind == ast::ExprKind::Field) {
        const auto& f = static_cast<const ast::FieldExpr&>(*call.fn);
        if (f.base->kind == ast::ExprKind::CSym) {
            return static_cast<const ast::CSymExpr&>(*f.base).name + "." + f.field;
        }
        return f.field;
    }
    return {};
}

void collect_reads(const ast::Expr& e, ModuleInfo& m) {
    ast::walk_exprs(e, [&](const ast::Expr& x) {
        if (x.kind == ast::ExprKind::Var) {
            const auto& v = static_cast<const ast::VarExpr&>(x);
            if (v.decl_id >= 0) m.var_reads.push_back(v.decl_id);
        } else if (x.kind == ast::ExprKind::Call) {
            std::string name = ccall_name(static_cast<const ast::CallExpr&>(x));
            if (!name.empty()) m.ccalls.push_back(name);
        }
    });
}

/// Mirrors dfa/abstract.cpp's record_write: peel indices (index exprs are
/// reads), root Var is the write, `*p = ...` reads the pointer, C-global
/// writes count as a C call named `sym=`.
void collect_write(const ast::Expr& lhs, ModuleInfo& m) {
    const ast::Expr* root = &lhs;
    while (root->kind == ast::ExprKind::Index) {
        const auto& ix = static_cast<const ast::IndexExpr&>(*root);
        collect_reads(*ix.index, m);
        root = ix.base.get();
    }
    if (root->kind == ast::ExprKind::Var) {
        const auto& v = static_cast<const ast::VarExpr&>(*root);
        if (v.decl_id >= 0) m.var_writes.push_back(v.decl_id);
    } else if (root->kind == ast::ExprKind::Unop) {
        collect_reads(*static_cast<const ast::UnopExpr&>(*root).sub, m);
    } else if (root->kind == ast::ExprKind::CSym) {
        m.ccalls.push_back(static_cast<const ast::CSymExpr&>(*root).name + "=");
    }
}

void sort_unique(std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

void sort_unique(std::vector<std::string>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Scans the module's flat slice for its boundary interface. Async bodies
/// are skipped: they run outside the synchronous reaction and the abstract
/// step treats them as opaque (their completion is an input).
void collect_interface(const flat::CompiledProgram& cp, ModuleInfo& m) {
    const FlatProgram& fp = cp.flat;
    std::vector<std::pair<Pc, Pc>> async_ranges;
    for (const flat::AsyncInfo& a : fp.asyncs) {
        if (a.region >= 0) {
            const flat::RegionInfo& r = fp.regions[static_cast<size_t>(a.region)];
            async_ranges.emplace_back(r.pc_begin, r.pc_end);
        }
    }
    auto in_async = [&](Pc pc) {
        for (const auto& [b, e] : async_ranges) {
            if (pc >= b && pc < e) return true;
        }
        return false;
    };

    for (Pc pc = m.pc_begin; pc < m.pc_end; ++pc) {
        if (in_async(pc)) continue;
        const Instr& I = fp.code[static_cast<size_t>(pc)];
        switch (I.op) {
            case IOp::Eval:
            case IOp::IfNot:
                collect_reads(*I.e1, m);
                break;
            case IOp::Assign:
                collect_write(*I.e1, m);
                collect_reads(*I.e2, m);
                break;
            case IOp::AssignWake:
            case IOp::AssignSlot:
                collect_write(*I.e1, m);
                break;
            case IOp::AwaitInt:
                m.evt_awaits.push_back(I.a);
                break;
            case IOp::AwaitTime:
                m.has_timers = true;
                break;
            case IOp::AwaitDyn:
                m.has_timers = true;
                collect_reads(*I.e1, m);
                break;
            case IOp::EmitInt:
                m.evt_emits.push_back(I.a);
                if (I.e1 != nullptr) collect_reads(*I.e1, m);
                break;
            case IOp::EmitOutput:
                // Concurrent output emissions are modeled as C calls named
                // after the event (see abstract.cpp), so the interface
                // treats them identically.
                m.ccalls.push_back(cp.sema.outputs[static_cast<size_t>(I.a)].name);
                if (I.e1 != nullptr) collect_reads(*I.e1, m);
                break;
            case IOp::Escape: {
                if (I.e1 != nullptr) collect_reads(*I.e1, m);
                const flat::EscapeInfo& esc = fp.escapes[static_cast<size_t>(I.a)];
                const flat::RegionInfo& r = fp.regions[static_cast<size_t>(esc.region)];
                if (r.pc_begin < m.pc_begin || r.pc_end > m.pc_end ||
                    esc.cont < m.pc_begin || esc.cont >= m.pc_end) {
                    m.escapes_out = true;
                }
                break;
            }
            case IOp::ProgReturn:
                if (I.e1 != nullptr) collect_reads(*I.e1, m);
                m.escapes_out = true;
                break;
            default:
                break;
        }
    }
    sort_unique(m.var_reads);
    sort_unique(m.var_writes);
    sort_unique(m.evt_emits);
    sort_unique(m.evt_awaits);
    sort_unique(m.ccalls);
}

/// Source-line span of the module: instruction locations plus the AST
/// statement locations of its branch body (covers decl-only lines).
void compute_line_span(const flat::CompiledProgram& cp, ModuleInfo& m,
                       const ast::BlockBody* body) {
    int lo = 0;
    int hi = 0;
    auto fold = [&](uint32_t line) {
        if (line == 0) return;
        int l = static_cast<int>(line);
        if (lo == 0 || l < lo) lo = l;
        if (l > hi) hi = l;
    };
    for (Pc pc = m.pc_begin; pc < m.pc_end; ++pc) {
        fold(cp.flat.code[static_cast<size_t>(pc)].loc.line);
    }
    if (body != nullptr) {
        ast::walk_stmts(*body, [&](const ast::Stmt& s) {
            fold(s.loc.line);
            return true;
        });
    }
    m.line_begin = lo;
    m.line_end = hi;
    m.anchor_line = lo;
}

Partition whole_partition(const flat::CompiledProgram& cp, std::string reason) {
    Partition part;
    part.partitioned = false;
    part.reason = std::move(reason);
    ModuleInfo m;
    m.index = 0;
    m.entry = -1;
    m.pc_begin = 0;
    m.pc_end = static_cast<Pc>(cp.flat.code.size());
    m.gate_begin = 0;
    m.gate_end = static_cast<int>(cp.flat.gates.size());
    m.name = "program";
    m.hash = program_hash(cp);
    compute_line_span(cp, m, &cp.ast.body);
    collect_interface(cp, m);
    part.modules.push_back(std::move(m));
    part.groups.push_back({0});
    return part;
}

const char* op_name(IOp op) {
    switch (op) {
        case IOp::IfNot: return "if";
        case IOp::AwaitExt:
        case IOp::AwaitInt:
        case IOp::AwaitTime:
        case IOp::AwaitDyn:
        case IOp::AwaitForever: return "await";
        case IOp::EmitInt:
        case IOp::EmitOutput: return "emit";
        case IOp::ParSpawn: return "par";
        case IOp::Escape: return "break/return";
        case IOp::ProgReturn: return "return";
        case IOp::AsyncRun: return "async";
        case IOp::Halt: return "end of program";
        default: return "statement";
    }
}

}  // namespace

uint64_t program_hash(const flat::CompiledProgram& cp) {
    uint64_t h = cache::fnv1a("ceulint-program-v1\n");
    h = cache::fnv1a(globals_text(cp.ast), h);
    h = cache::fnv1a(ast::print_block(cp.ast.body), h);
    return h;
}

Partition partition_program(const flat::CompiledProgram& cp) {
    const FlatProgram& fp = cp.flat;
    if (fp.code.empty()) return whole_partition(cp, "empty program");

    // 1. The prelude must be straight-line (no awaits, forks or jumps)
    //    ending at a ParSpawn: then skipping it in a modular boot changes
    //    no machine state, and its effects are ordered before every arm.
    Pc pc = 0;
    while (pc < static_cast<Pc>(fp.code.size())) {
        IOp op = fp.code[static_cast<size_t>(pc)].op;
        if (op == IOp::ParSpawn) break;
        if (op == IOp::Nop || op == IOp::Eval || op == IOp::Assign ||
            op == IOp::ClearSlot) {
            ++pc;
            continue;
        }
        return whole_partition(cp, std::string("top level is not straight-line code "
                                               "into a par (found: ") +
                                       op_name(op) + ")");
    }
    if (pc >= static_cast<Pc>(fp.code.size())) {
        return whole_partition(cp, "no top-level par");
    }

    int par_index = fp.code[static_cast<size_t>(pc)].a;
    const flat::ParInfo& par = fp.pars[static_cast<size_t>(par_index)];
    if (par.kind != ast::ParKind::Par || par.cont != -1) {
        return whole_partition(cp, "top-level par is par/and or par/or "
                                   "(the rejoin couples every arm)");
    }
    if (par.branches.size() < 2) {
        return whole_partition(cp, "top-level par has a single arm");
    }

    // 2. Locate the par in the AST (direct top-level child) — the source of
    //    the round-trip-stable per-arm hash slices.
    const ast::ParStmt* par_stmt = nullptr;
    for (const auto& st : cp.ast.body.stmts) {
        if (st->kind == ast::StmtKind::Par && st->loc == par.loc &&
            static_cast<const ast::ParStmt&>(*st).branches.size() ==
                par.branches.size()) {
            par_stmt = static_cast<const ast::ParStmt*>(st.get());
            break;
        }
    }
    if (par_stmt == nullptr) {
        return whole_partition(cp, "top-level par is nested inside another "
                                   "construct");
    }

    // 3. Assign every gate to the arm whose flat slice contains its
    //    continuation; a gate outside every arm (dead top-level code after
    //    the par, prelude awaits the scan somehow missed) kills the
    //    partition. Flattening order makes each arm's gates contiguous —
    //    verified, not assumed.
    Partition part;
    part.partitioned = true;
    part.par_index = par_index;

    size_t n = par.branches.size();
    std::vector<std::pair<int, int>> gate_span(n, {-1, -1});
    for (size_t g = 0; g < fp.gates.size(); ++g) {
        Pc cont = fp.gates[g].cont;
        int owner = -1;
        for (size_t i = 0; i < n; ++i) {
            const auto& [b, e] = par.branch_ranges[i];
            if (cont >= b && cont < e) {
                owner = static_cast<int>(i);
                break;
            }
        }
        if (owner < 0) {
            return whole_partition(cp, "a gate's continuation lies outside every arm");
        }
        auto& [lo, hi] = gate_span[static_cast<size_t>(owner)];
        if (lo < 0) lo = static_cast<int>(g);
        hi = static_cast<int>(g) + 1;
    }
    for (size_t i = 0; i < n; ++i) {
        const auto& [lo, hi] = gate_span[i];
        if (lo < 0) continue;  // armless of awaits: empty range is fine
        for (int g = lo; g < hi; ++g) {
            Pc cont = fp.gates[static_cast<size_t>(g)].cont;
            const auto& [b, e] = par.branch_ranges[i];
            if (cont < b || cont >= e) {
                return whole_partition(cp, "arm gate ranges are not contiguous");
            }
        }
    }

    // 4. Build the modules.
    std::string globals = globals_text(cp.ast);
    std::string prelude = prelude_text(cp.ast, par_stmt);
    for (size_t i = 0; i < n; ++i) {
        ModuleInfo m;
        m.index = static_cast<int>(i);
        m.entry = par.branches[i];
        m.pc_begin = par.branch_ranges[i].first;
        m.pc_end = par.branch_ranges[i].second;
        if (gate_span[i].first >= 0) {
            m.gate_begin = gate_span[i].first;
            m.gate_end = gate_span[i].second;
        }
        uint64_t h = cache::fnv1a("ceulint-module-v1\n");
        h = cache::fnv1a(globals, h);
        h = cache::fnv1a(prelude, h);
        h = cache::fnv1a(ast::print_block(par_stmt->branches[i]), h);
        m.hash = h;
        compute_line_span(cp, m, &par_stmt->branches[i]);
        m.name = "arm" + std::to_string(i) +
                 (m.anchor_line > 0 ? "@" + std::to_string(m.anchor_line) : "");
        collect_interface(cp, m);
        part.modules.push_back(std::move(m));
    }

    // 5. Interference edges.
    auto var_name = [&](int d) { return cp.sema.vars[static_cast<size_t>(d)].name; };
    auto evt_name = [&](int e) {
        return cp.sema.internals[static_cast<size_t>(e)].name;
    };
    auto intersects = [](const std::vector<int>& a, const std::vector<int>& b,
                         std::vector<int>* hits) {
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(*hits));
    };
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            const ModuleInfo& a = part.modules[i];
            const ModuleInfo& b = part.modules[j];
            std::vector<std::string> reasons;

            std::vector<int> shared;
            intersects(a.var_writes, b.var_writes, &shared);
            intersects(a.var_writes, b.var_reads, &shared);
            intersects(b.var_writes, a.var_reads, &shared);
            sort_unique(shared);
            for (int d : shared) reasons.push_back("shared variable '" + var_name(d) + "'");

            std::vector<int> evts;
            intersects(a.evt_emits, b.evt_emits, &evts);
            intersects(a.evt_emits, b.evt_awaits, &evts);
            intersects(b.evt_emits, a.evt_awaits, &evts);
            sort_unique(evts);
            for (int e : evts) reasons.push_back("internal event '" + evt_name(e) + "'");

            if (a.has_timers && b.has_timers) {
                // A Time trigger advances by the global minimum remainder,
                // so timer-bearing arms share the wall clock.
                reasons.emplace_back("wall-clock timers in both arms");
            }

            for (const std::string& f : a.ccalls) {
                bool found = false;
                for (const std::string& g : b.ccalls) {
                    if (!cp.sema.ccalls.allowed(f, g)) {
                        reasons.push_back("unannotated C calls _" + f + " / _" + g);
                        found = true;
                        break;
                    }
                }
                if (found) break;
            }

            if (!reasons.empty()) {
                std::string joined;
                for (size_t r = 0; r < reasons.size() && r < 3; ++r) {
                    if (r) joined += "; ";
                    joined += reasons[r];
                }
                part.edges.push_back({static_cast<int>(i), static_cast<int>(j),
                                      std::move(joined)});
            }
        }
    }
    for (size_t i = 0; i < n; ++i) {
        if (!part.modules[i].escapes_out) continue;
        // A program return (or cross-arm escape) terminates everyone: its
        // Escape conflicts can involve any arm, so it globally interferes.
        for (size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            part.edges.push_back({static_cast<int>(std::min(i, j)),
                                  static_cast<int>(std::max(i, j)),
                                  "program return/escape crosses the arm boundary"});
        }
    }

    // 6. Connected components (union-find) = exploration groups.
    std::vector<int> parent(n);
    for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
        while (parent[static_cast<size_t>(x)] != x) {
            parent[static_cast<size_t>(x)] =
                parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
            x = parent[static_cast<size_t>(x)];
        }
        return x;
    };
    for (const InterferenceEdge& e : part.edges) {
        int ra = find(e.a);
        int rb = find(e.b);
        if (ra != rb) parent[static_cast<size_t>(ra)] = rb;
    }
    std::map<int, std::vector<int>> comps;
    for (size_t i = 0; i < n; ++i) comps[find(static_cast<int>(i))].push_back(static_cast<int>(i));
    // Deterministic order: by smallest member.
    std::vector<std::vector<int>> groups;
    groups.reserve(comps.size());
    for (auto& [root, members] : comps) {
        std::sort(members.begin(), members.end());
        groups.push_back(std::move(members));
    }
    std::sort(groups.begin(), groups.end());
    part.groups = std::move(groups);
    return part;
}

dfa::SignatureScope group_scope(const flat::CompiledProgram& cp, const Partition& part,
                                const std::vector<int>& members) {
    const FlatProgram& fp = cp.flat;
    dfa::SignatureScope scope;
    std::vector<std::pair<Pc, Pc>> pc_ranges;
    for (size_t ord = 0; ord < members.size(); ++ord) {
        const ModuleInfo& m = part.modules[static_cast<size_t>(members[ord])];
        if (m.gate_end > m.gate_begin) {
            scope.gate_ranges.emplace_back(m.gate_begin, m.gate_end);
        }
        pc_ranges.emplace_back(m.pc_begin, m.pc_end);
        if (m.line_begin > 0) {
            scope.lines.push_back({m.line_begin, m.line_end, m.anchor_line,
                                   static_cast<int>(ord)});
        }
    }
    std::sort(scope.gate_ranges.begin(), scope.gate_ranges.end());
    auto in_ranges = [&](Pc pc) {
        for (const auto& [b, e] : pc_ranges) {
            if (pc >= b && pc < e) return true;
        }
        return false;
    };
    int par_ord = 0;
    for (size_t p = 0; p < fp.pars.size(); ++p) {
        const flat::ParInfo& pi = fp.pars[p];
        if (!pi.branches.empty() && in_ranges(pi.branches.front())) {
            scope.par_remap[static_cast<int>(p)] = par_ord++;
        }
    }
    int async_ord = 0;
    for (size_t a = 0; a < fp.asyncs.size(); ++a) {
        if (in_ranges(fp.asyncs[a].begin)) {
            scope.async_remap[static_cast<int>(a)] = async_ord++;
        }
    }
    return scope;
}

ModularOutcome explore_modular(const flat::CompiledProgram& cp,
                               const ModularOptions& opt) {
    using Clock = std::chrono::steady_clock;
    ModularOutcome out;
    out.partition = partition_program(cp);
    const Partition& part = out.partition;
    size_t ngroups = part.groups.size();
    out.groups.resize(ngroups);

    cache::DfaCache dcache(opt.cache_dir);
    std::mutex cache_mu;

    auto group_reason = [&](const std::vector<int>& members) -> std::string {
        if (members.size() < 2) return {};
        std::set<int> in(members.begin(), members.end());
        std::vector<std::string> reasons;
        for (const InterferenceEdge& e : part.edges) {
            if (in.count(e.a) && in.count(e.b)) reasons.push_back(e.reason);
        }
        sort_unique(reasons);
        std::string joined;
        for (size_t r = 0; r < reasons.size() && r < 3; ++r) {
            if (r) joined += "; ";
            joined += reasons[r];
        }
        return joined;
    };

    auto run_group = [&](size_t gi, int jobs) {
        auto t0 = Clock::now();
        const std::vector<int>& members = part.groups[gi];
        GroupResult& gr = out.groups[gi];
        gr.modules = members;
        gr.fallback_reason = group_reason(members);

        cache::Entry expect;
        expect.max_states = static_cast<uint32_t>(opt.explore.max_states);
        expect.stop_at_first_conflict = opt.explore.stop_at_first_conflict;
        std::vector<uint64_t> hashes;
        for (int mi : members) {
            const ModuleInfo& m = part.modules[static_cast<size_t>(mi)];
            hashes.push_back(m.hash);
            expect.members.push_back({m.hash, m.line_begin, m.line_end, m.anchor_line});
        }
        gr.key = cache::entry_key(hashes, expect.max_states,
                                  expect.stop_at_first_conflict);

        cache::Entry got;
        bool hit;
        {
            std::lock_guard lk(cache_mu);
            hit = dcache.load(gr.key, expect, &got);
        }
        if (hit) {
            gr.from_cache = true;
            gr.state_count = got.state_count;
            gr.complete = got.complete;
            gr.sub_signature = got.sub_signature;
            gr.conflicts = std::move(got.conflicts);
        } else {
            ExploreOptions eopt = opt.explore;
            eopt.jobs = jobs;
            eopt.boot_pcs.clear();
            for (int mi : members) {
                const ModuleInfo& m = part.modules[static_cast<size_t>(mi)];
                if (m.entry >= 0) eopt.boot_pcs.push_back(m.entry);
            }
            dfa::Dfa d = explore(cp, eopt);
            gr.state_count = d.state_count();
            gr.complete = d.complete();
            gr.conflicts = d.conflicts();
            gr.sub_signature =
                cache::fnv1a(d.signature(group_scope(cp, part, members)));

            cache::Entry e = expect;
            e.state_count = gr.state_count;
            e.complete = gr.complete;
            e.sub_signature = gr.sub_signature;
            e.conflicts = gr.conflicts;
            std::lock_guard lk(cache_mu);
            dcache.store(gr.key, e);
        }
        gr.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    };

    int jobs = std::max(1, opt.explore.jobs);
    if (ngroups <= 1 || jobs <= 1) {
        // A single group keeps the full worker budget for its own frontier.
        for (size_t gi = 0; gi < ngroups; ++gi) run_group(gi, jobs);
    } else {
        size_t workers = std::min<size_t>(static_cast<size_t>(jobs), ngroups);
        std::atomic<size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (;;) {
                    size_t gi = next.fetch_add(1, std::memory_order_relaxed);
                    if (gi >= ngroups) break;
                    run_group(gi, 1);
                }
            });
        }
        for (std::thread& t : pool) t.join();
    }

    dfa::ConflictSet cset;
    for (const GroupResult& gr : out.groups) {
        out.states_total += gr.state_count;
        if (!gr.from_cache) out.states_explored += gr.state_count;
        out.complete = out.complete && gr.complete;
        for (const dfa::Conflict& c : gr.conflicts) cset.add(c);
    }
    out.conflicts = cset.take();
    out.composed = part.partitioned && ngroups > 1;
    out.cache = dcache.stats();
    return out;
}

}  // namespace ceu::analysis
