// Modular, incremental temporal analysis (after Gaffé/Ressouche's modular
// compilation of synchronous languages): instead of exploring the whole
// program's product state space, partition it at the top-level plain `par`
// into *modules* (one per arm), compute each module's boundary interface
// (the variables, internal events, timers, escapes and C-call annotations
// that cross the arm boundary), group modules whose interfaces genuinely
// interleave, explore each group to its own sub-automaton in parallel, and
// compose the verdicts: for non-interfering groups the whole-program
// conflict set is exactly the union of the per-group conflict sets, and
// the composed state count is the *sum* (not the product) of the group
// state counts.
//
// Soundness: a plain top-level par never rejoins (cont == -1) and its arms
// own disjoint gate/timer/counter/variable state unless an interface edge
// says otherwise, so every whole-program reaction factors into independent
// per-group reactions — the exact product-automaton conflicts are the
// union of group conflicts (module occurrence counts; product states
// multiply *discoveries* of one conflict, never add new ones). Whenever a
// precondition fails (no top-level plain par, gates outside arms, a shared
// variable/event/timer/escape web linking every arm) the affected modules
// collapse into one group explored whole-program style — correctness never
// depends on the partition being fine-grained. The differential gate
// (testgen/differ.cpp) enforces composed == monolithic on every generated
// program.
//
// The incremental layer (cache.hpp) keys each group's verdict on
// round-trip-stable content hashes of its members' pretty-printed source,
// so `ceuc --lint --cache-dir=D` re-explores only groups whose text (or
// grouping) changed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cache.hpp"
#include "analysis/explore.hpp"
#include "codegen/flatten.hpp"
#include "dfa/dfa.hpp"

namespace ceu::analysis {

/// One analysis module: a top-level par arm (or, in whole-program fallback,
/// the entire program) with its boundary interface.
struct ModuleInfo {
    int index = 0;
    flat::Pc entry = -1;  // arm entry pc; -1 = boot at pc 0 (whole program)
    flat::Pc pc_begin = 0, pc_end = 0;   // [begin, end) flat slice
    int gate_begin = 0, gate_end = 0;    // [begin, end) owned gates
    int line_begin = 0, line_end = 0;    // inclusive source-line span
    int anchor_line = 0;                 // first source line (loc rebasing)
    std::string name;
    uint64_t hash = 0;  // round-trip-stable content hash (see module docs)

    // Boundary interface, used to decide which modules interleave.
    std::vector<int> var_reads, var_writes;    // decl ids
    std::vector<int> evt_emits, evt_awaits;    // internal event ids
    std::vector<std::string> ccalls;           // C functions invoked
    bool has_timers = false;     // wall-clock awaits (Time trigger coupling)
    bool escapes_out = false;    // program return / escape past the arm
};

/// Why two modules must be explored together.
struct InterferenceEdge {
    int a = 0, b = 0;
    std::string reason;
};

struct Partition {
    /// False: the program has no usable top-level plain par; `modules`
    /// holds one whole-program pseudo-module and `reason` says why.
    bool partitioned = false;
    std::string reason;
    int par_index = -1;  // flat par index of the partition point
    std::vector<ModuleInfo> modules;
    std::vector<InterferenceEdge> edges;
    /// Connected components of the interference graph, each sorted; the
    /// unit of exploration and of caching.
    std::vector<std::vector<int>> groups;
};

/// Partitions `cp` at its top-level plain par. Never fails: when the
/// preconditions do not hold the result is a single whole-program module
/// (with `reason` recorded), so callers treat every program uniformly.
Partition partition_program(const flat::CompiledProgram& cp);

/// Round-trip-stable whole-program content hash (the fallback cache key):
/// FNV-1a over the pretty-printed program, so reformatting/re-parsing the
/// same program hashes identically (the PR 3 render∘parse fixpoint).
uint64_t program_hash(const flat::CompiledProgram& cp);

/// The signature scope rebasing a group's exploration into module-local
/// coordinates (gates/pars/asyncs/lines owned by `members`).
dfa::SignatureScope group_scope(const flat::CompiledProgram& cp, const Partition& part,
                                const std::vector<int>& members);

struct ModularOptions {
    ExploreOptions explore;
    /// Persistent cache directory (e.g. ".ceulint-cache"); empty = off.
    std::string cache_dir;
};

/// Verdict of one explored (or cache-loaded) module group.
struct GroupResult {
    std::vector<int> modules;
    uint64_t key = 0;            // cache key
    bool from_cache = false;
    size_t state_count = 0;
    bool complete = true;
    uint64_t sub_signature = 0;  // fnv1a(Dfa::signature(group_scope(...)))
    std::vector<dfa::Conflict> conflicts;
    /// Non-empty for multi-module groups: why these arms interleave.
    std::string fallback_reason;
    double ms = 0.0;
};

struct ModularOutcome {
    Partition partition;
    std::vector<GroupResult> groups;
    /// Composed verdict: the union of group conflict sets, deduplicated
    /// with summed occurrence counts (ConflictSet normalization).
    std::vector<dfa::Conflict> conflicts;
    /// AND over groups — any incomplete module makes the composition
    /// incomplete (never claim a full cover that wasn't computed).
    bool complete = true;
    /// True when composition actually avoided the product space (>1 group).
    bool composed = false;
    size_t states_explored = 0;  // states expanded this run (cache misses)
    size_t states_total = 0;     // sum over all groups incl. cache hits
    cache::CacheStats cache;

    [[nodiscard]] bool deterministic() const { return conflicts.empty(); }
};

/// Runs the modular analysis: partition, per-group exploration (parallel
/// across groups when `opt.explore.jobs` allows), persistent caching, and
/// composition. Group witnesses are whole-program-replayable as-is: module
/// triggers are real program inputs, and arms outside the group ignore
/// them by construction (no interference edge).
ModularOutcome explore_modular(const flat::CompiledProgram& cp,
                               const ModularOptions& opt = {});

}  // namespace ceu::analysis
