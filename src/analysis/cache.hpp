// Persistent analysis cache: one file per explored module group, keyed by
// the content hash of the group's members + exploration options, so
// `ceuc --lint --cache-dir=D` re-explores only groups whose source (or
// whose interference grouping) actually changed.
//
// The format follows the engine-snapshot discipline (runtime/snapshot.hpp):
// versioned magic (`CEULINT1`), explicit little-endian fields, parse-then-
// commit — a corrupt, truncated, stale or wrong-version entry is *rejected*
// (counted, treated as a miss, re-explored and rewritten), never trusted.
//
// What is stored is the group's analysis *verdict*, not the raw automaton:
// state count, completeness, the scope-rebased `Dfa::signature()` hash, and
// the deduplicated conflicts with their replayable witness chains. Conflict
// source locations are stored relative to each member module's anchor line
// (member ordinal + line delta) and rebased on load, so an edit that merely
// shifts an unchanged module down the file still reports correct lines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfa/dfa.hpp"

namespace ceu::analysis::cache {

/// FNV-1a 64-bit — the repo-wide content-hash primitive (snapshots use it
/// for program fingerprints).
uint64_t fnv1a(const std::string& s, uint64_t seed = 14695981039346656037ULL);
uint64_t fnv1a_u64(uint64_t v, uint64_t seed);

struct CacheStats {
    size_t hits = 0;      // groups served from disk
    size_t misses = 0;    // groups with no entry (explored fresh)
    size_t stores = 0;    // entries written
    size_t rejected = 0;  // corrupt/truncated/stale entries discarded
};

/// Inclusive source-line span of one member module plus its anchor (first)
/// line: the coordinate system conflict locations are stored in.
struct MemberSpan {
    uint64_t hash = 0;       // member content hash (identity check)
    int line_begin = 0;      // inclusive
    int line_end = 0;        // inclusive
    int anchor_line = 0;
};

/// The cached verdict of one module group.
struct Entry {
    std::vector<MemberSpan> members;
    uint32_t max_states = 0;
    bool stop_at_first_conflict = false;
    uint64_t state_count = 0;
    bool complete = true;
    uint64_t sub_signature = 0;  // fnv1a of Dfa::signature(scope)
    std::vector<dfa::Conflict> conflicts;  // locations in absolute lines
};

/// The on-disk key of an entry: member hashes + the options that shaped the
/// exploration. Changing --max-states or --fail-fast must miss.
uint64_t entry_key(const std::vector<uint64_t>& member_hashes, uint32_t max_states,
                   bool stop_at_first_conflict);

class DfaCache {
  public:
    /// An empty dir disables the cache (every load misses, stores no-op).
    explicit DfaCache(std::string dir);

    /// Loads the entry for `key` into `out`. The entry is accepted only if
    /// its member hashes/options match `expect` exactly; conflict locations
    /// are rebased from stored (ordinal, line delta) form using the anchor
    /// lines in `expect.members`. Returns false (and bumps misses or
    /// rejected) otherwise.
    bool load(uint64_t key, const Entry& expect, Entry* out);

    /// Serializes `e` (conflict locations encoded against e.members' spans)
    /// and commits it atomically (temp file + rename).
    void store(uint64_t key, const Entry& e);

    [[nodiscard]] const CacheStats& stats() const { return stats_; }
    [[nodiscard]] const std::string& dir() const { return dir_; }
    [[nodiscard]] bool enabled() const { return !dir_.empty(); }

    /// Serialization exposed for tests (corruption/truncation coverage).
    static std::vector<uint8_t> serialize(uint64_t key, const Entry& e);
    static bool deserialize(const std::vector<uint8_t>& blob, uint64_t key, Entry* out);

    [[nodiscard]] std::string path_for(uint64_t key) const;

  private:
    std::string dir_;
    CacheStats stats_;
};

}  // namespace ceu::analysis::cache
