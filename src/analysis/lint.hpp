// Multi-pass lint framework over the AST/flow graph: a registry of
// analysis::Pass instances with per-pass severities and enable/disable,
// producing structured Findings that print as compiler diagnostics or as
// machine-readable JSON (ceuc --lint --diag-format=json) so CI can gate on
// them. Temporal-analysis conflicts flow through the same Finding type so
// one output channel covers everything.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "dfa/dfa.hpp"
#include "util/diag.hpp"

namespace ceu::analysis {

/// One diagnostic produced by a pass (or by the temporal analysis).
struct Finding {
    std::string pass;  // pass id ("uninit-read", "temporal", ...)
    Severity severity = Severity::Warning;
    SourceLoc loc;
    std::string message;
    /// Replayable input chain for temporal findings (empty otherwise).
    std::vector<dfa::WitnessStep> witness;

    /// "file:line:col: warning: [pass] message" (file omitted when empty).
    [[nodiscard]] std::string str(const std::string& file = "") const;
    /// One-line JSON object: {"pass":..,"severity":..,"file":..,"line":..,
    /// "col":..,"message":..,"witness":[..]}.
    [[nodiscard]] std::string json(const std::string& file = "") const;
};

class Pass {
  public:
    virtual ~Pass() = default;
    [[nodiscard]] virtual std::string id() const = 0;
    [[nodiscard]] virtual std::string description() const = 0;
    [[nodiscard]] virtual Severity severity() const { return Severity::Warning; }
    virtual void run(const flat::CompiledProgram& cp, std::vector<Finding>& out) const = 0;
};

/// An ordered set of passes. `default_registry()` holds the built-in ones;
/// embedders may build their own registry and `add` custom passes.
class PassRegistry {
  public:
    void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
    [[nodiscard]] const std::vector<std::unique_ptr<Pass>>& passes() const {
        return passes_;
    }
    [[nodiscard]] const Pass* find(const std::string& id) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/// The built-in passes: uninit-read, unused, unreachable-trail,
/// emit-no-awaiter.
const PassRegistry& default_registry();

struct LintOptions {
    /// When non-empty, only these pass ids run.
    std::vector<std::string> only;
    /// Pass ids to skip.
    std::vector<std::string> disable;
};

/// Runs the (enabled) passes of `reg` over `cp`. Findings are ordered by
/// pass registration order, then source location.
std::vector<Finding> run_lints(const flat::CompiledProgram& cp, const LintOptions& opt = {},
                               const PassRegistry& reg = default_registry());

/// Converts a temporal-analysis conflict into a Finding (pass "temporal",
/// severity Error, witness attached).
Finding conflict_finding(const dfa::Conflict& c);

/// The Finding emitted when exploration exhausts its state budget.
Finding incomplete_finding(size_t explored, size_t max_states);

}  // namespace ceu::analysis
