#include "analysis/explore.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>

#if defined(__linux__)
#include <sched.h>
#endif

namespace ceu::analysis {

namespace {

/// Pins the calling thread to the idx-th CPU the process is allowed on
/// (cpuset-aware). Best effort; no-op off Linux.
void pin_self_to_allowed_cpu(size_t idx) {
#if defined(__linux__)
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof allowed, &allowed) != 0) return;
    std::vector<int> cpus;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &allowed)) cpus.push_back(c);
    }
    if (cpus.empty()) return;
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(cpus[idx % cpus.size()], &one);
    (void)sched_setaffinity(0, sizeof one, &one);
#else
    (void)idx;
#endif
}

using dfa::Conflict;
using dfa::ConflictSet;
using dfa::MachineState;
using dfa::ReactionOutcome;
using dfa::Trigger;
using dfa::WitnessStep;

/// One reachable state during parallel exploration. Owned by the shard its
/// key hashes into; `out` is written only by the (single) worker that
/// dequeued the node for expansion, `executed`/`has_conflict` are merged
/// under the owning shard's mutex, everything else is immutable after
/// creation.
struct Node {
    int id = 0;
    MachineState state;
    std::set<std::string> executed;
    std::vector<dfa::DfaTransition> out;
    bool has_conflict = false;
    bool terminal = false;
    int pred = -1;
    WitnessStep pred_step;
};

/// A conflict recorded mid-exploration; the witness chain is reconstructed
/// from predecessor links once all workers have drained.
struct PendingConflict {
    Conflict c;
    int src = -1;
    WitnessStep step;
};

constexpr size_t kShardCount = 64;

class ParallelExplorer {
  public:
    ParallelExplorer(const flat::CompiledProgram& cp, const ExploreOptions& opt)
        : cp_(cp), opt_(opt) {}

    dfa::Dfa run() {
        // Boot reaction on the calling thread seeds the frontier.
        Trigger boot;
        boot.kind = Trigger::Kind::Boot;
        boot.boot_pcs = opt_.boot_pcs;
        WitnessStep boot_step = dfa::witness_step(cp_, boot);
        std::vector<PendingConflict> boot_pending;
        for (ReactionOutcome& o : dfa::abstract_react(cp_, dfa::initial_state(cp_), boot)) {
            for (const Conflict& c : o.conflicts) {
                boot_pending.push_back({c, -1, boot_step});
            }
            std::string key = o.next.key();
            intern(key, std::move(o.next), o.executed, !o.conflicts.empty(), -1,
                   boot_step, nullptr);
        }
        {
            std::lock_guard lk(pending_mu_);
            pending_.insert(pending_.end(), boot_pending.begin(), boot_pending.end());
            if (!boot_pending.empty()) conflict_seen_.store(true, std::memory_order_relaxed);
        }
        if (opt_.stop_at_first_conflict && conflict_seen_.load()) {
            stop_.store(true);
            incomplete_.store(true);
        }

        int jobs = std::clamp(opt_.jobs, 1, 64);
        jobs_ = static_cast<size_t>(jobs);
        std::vector<std::thread> workers;
        workers.reserve(static_cast<size_t>(jobs));
        for (int i = 0; i < jobs; ++i) {
            workers.emplace_back([this, i] {
                if (opt_.pin_threads) pin_self_to_allowed_cpu(static_cast<size_t>(i));
                worker();
            });
        }
        for (std::thread& t : workers) t.join();
        return finalize();
    }

  private:
    struct Shard {
        std::mutex mu;
        std::unordered_map<std::string, std::unique_ptr<Node>> nodes;
    };

    const flat::CompiledProgram& cp_;
    const ExploreOptions& opt_;
    size_t jobs_ = 1;
    Shard shards_[kShardCount];
    std::atomic<int> next_id_{0};
    std::atomic<bool> stop_{false};
    std::atomic<bool> incomplete_{false};
    std::atomic<bool> conflict_seen_{false};

    std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<Node*> queue_;
    size_t active_ = 0;

    std::mutex pending_mu_;
    std::vector<PendingConflict> pending_;

    /// Interns `ms` (whose precomputed key is `key`), merging `executed`/
    /// `conflicted` into the node. When the state is new its node is
    /// appended to `fresh` (or, when fresh is null, enqueued directly — the
    /// boot path). Returns the node's id, or -1 if the state budget is
    /// exhausted.
    int intern(const std::string& key, MachineState ms,
               const std::vector<std::string>& executed, bool conflicted,
               int pred, const WitnessStep& step, std::vector<Node*>* fresh) {
        Shard& shard = shards_[std::hash<std::string>{}(key) % kShardCount];
        Node* node = nullptr;
        bool created = false;
        {
            std::lock_guard lk(shard.mu);
            auto it = shard.nodes.find(key);
            if (it == shard.nodes.end()) {
                // Mirror the serial budget: exploration becomes incomplete
                // once the state count would exceed max_states.
                int id = next_id_.fetch_add(1, std::memory_order_relaxed);
                if (static_cast<size_t>(id) >= opt_.max_states) {
                    next_id_.fetch_sub(1, std::memory_order_relaxed);
                    incomplete_.store(true, std::memory_order_relaxed);
                    stop_.store(true, std::memory_order_relaxed);
                    queue_cv_.notify_all();
                    return -1;
                }
                auto fresh_node = std::make_unique<Node>();
                fresh_node->id = id;
                fresh_node->terminal = !ms.has_active_gate();
                fresh_node->state = std::move(ms);
                fresh_node->pred = pred;
                fresh_node->pred_step = step;
                node = fresh_node.get();
                shard.nodes.emplace(key, std::move(fresh_node));
                created = true;
            } else {
                node = it->second.get();
            }
            for (const std::string& s : executed) node->executed.insert(s);
            node->has_conflict = node->has_conflict || conflicted;
        }
        if (created) {
            if (fresh != nullptr) {
                fresh->push_back(node);
            } else {
                std::lock_guard lk(queue_mu_);
                queue_.push_back(node);
                queue_cv_.notify_one();
            }
        }
        return node->id;
    }

    void expand(Node* n, std::vector<Node*>& fresh,
                std::vector<PendingConflict>& local_pending,
                std::unordered_map<std::string, int>& seen_cache) {
        const MachineState& state = n->state;
        for (const Trigger& t : dfa::enumerate_triggers(cp_, state)) {
            std::string label = t.label(cp_);
            WitnessStep step = dfa::witness_step(cp_, t);
            for (ReactionOutcome& o : dfa::abstract_react(cp_, state, t)) {
                for (const Conflict& c : o.conflicts) {
                    local_pending.push_back({c, n->id, step});
                }
                bool conflicted = !o.conflicts.empty();
                std::string key = o.next.key();
                // Repeat states dominate dense graphs; the worker-local
                // cache resolves them without touching the shard mutex.
                // Only safe when there is nothing to merge into the node
                // (intern folds executed/has_conflict under the shard
                // lock); otherwise fall through to the shared path.
                if (o.executed.empty() && !conflicted) {
                    auto it = seen_cache.find(key);
                    if (it != seen_cache.end()) {
                        n->out.push_back({label, it->second});
                        continue;
                    }
                }
                int target = intern(key, std::move(o.next), o.executed, conflicted,
                                    n->id, step, &fresh);
                if (target >= 0) {
                    n->out.push_back({label, target});
                    seen_cache.emplace(std::move(key), target);
                }
            }
        }
    }

    void worker() {
        // Each worker runs a *local* frontier: fresh states from its own
        // expansions are expanded directly (LIFO — the children are still
        // cache-warm) without ever touching the shared queue, and the
        // queue lock is taken only to refill an empty local frontier, to
        // share surplus, or to flush conflicts. `active_` counts workers
        // holding unexpanded work — local frontiers included — which keeps
        // the termination condition (shared frontier empty, nothing in
        // flight anywhere) intact.
        //
        // Refills are adaptive: an empty worker takes ~1/jobs of the
        // shared queue (capped), so early rounds spread the frontier
        // across the pool instead of letting one worker vacuum it. A
        // worker whose local frontier outgrows kShareAt gives the oldest
        // (breadth-most) half back, so siblings starved by a deep subtree
        // get work without per-node handoff traffic.
        constexpr size_t kMaxBatch = 32;
        constexpr size_t kShareAt = 48;
        std::vector<Node*> local;
        std::vector<PendingConflict> local_pending;
        std::unordered_map<std::string, int> seen_cache;
        bool holding = false;  // is this worker counted in active_?
        for (;;) {
            if (local.empty() || stop_.load(std::memory_order_relaxed)) {
                std::unique_lock lk(queue_mu_);
                if (holding) {
                    holding = false;
                    --active_;
                }
                queue_cv_.wait(lk, [this] {
                    return stop_.load() || !queue_.empty() || active_ == 0;
                });
                if (stop_.load() || queue_.empty()) {
                    // Either a stop was requested or every frontier
                    // drained with no expansion in flight: exploration is
                    // over.
                    queue_cv_.notify_all();
                    break;
                }
                size_t take = std::clamp(queue_.size() / jobs_, size_t{1}, kMaxBatch);
                for (size_t i = 0; i < take; ++i) {
                    local.push_back(queue_.front());
                    queue_.pop_front();
                }
                holding = true;
                ++active_;
            }

            Node* n = local.back();
            local.pop_back();
            expand(n, local, local_pending, seen_cache);

            if (local.size() > kShareAt) {
                size_t give = local.size() / 2;
                {
                    std::lock_guard lk(queue_mu_);
                    queue_.insert(queue_.end(), local.begin(),
                                  local.begin() + static_cast<std::ptrdiff_t>(give));
                }
                local.erase(local.begin(),
                            local.begin() + static_cast<std::ptrdiff_t>(give));
                queue_cv_.notify_all();
            }

            if (!local_pending.empty()) {
                {
                    std::lock_guard lk(pending_mu_);
                    pending_.insert(pending_.end(), local_pending.begin(),
                                    local_pending.end());
                }
                local_pending.clear();
                conflict_seen_.store(true, std::memory_order_relaxed);
                if (opt_.stop_at_first_conflict) {
                    incomplete_.store(true, std::memory_order_relaxed);
                    stop_.store(true, std::memory_order_relaxed);
                    queue_cv_.notify_all();
                }
            }
        }
    }

    dfa::Dfa finalize() {
        // Collect nodes from all shards and renumber them by state key so
        // the assembled Dfa is deterministic regardless of thread timing.
        std::vector<std::pair<std::string, Node*>> keyed;
        for (Shard& s : shards_) {
            for (auto& [key, node] : s.nodes) keyed.emplace_back(key, node.get());
        }
        std::sort(keyed.begin(), keyed.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        std::vector<int> remap(keyed.size());
        for (size_t i = 0; i < keyed.size(); ++i) {
            remap[static_cast<size_t>(keyed[i].second->id)] = static_cast<int>(i);
        }

        std::vector<dfa::DfaStateNode> states(keyed.size());
        for (size_t i = 0; i < keyed.size(); ++i) {
            Node* n = keyed[i].second;
            dfa::DfaStateNode& out = states[i];
            out.id = static_cast<int>(i);
            out.state = std::move(n->state);
            out.executed.assign(n->executed.begin(), n->executed.end());
            out.has_conflict = n->has_conflict;
            out.terminal = n->terminal;
            out.pred = n->pred >= 0 ? remap[static_cast<size_t>(n->pred)] : -1;
            out.pred_step = n->pred_step;
            out.out = std::move(n->out);
            for (dfa::DfaTransition& t : out.out) {
                t.target = remap[static_cast<size_t>(t.target)];
            }
        }

        auto witness_into = [&states](int id) {
            std::vector<WitnessStep> chain;
            while (id >= 0) {
                const dfa::DfaStateNode& s = states[static_cast<size_t>(id)];
                chain.push_back(s.pred_step);
                id = s.pred;
            }
            std::reverse(chain.begin(), chain.end());
            return chain;
        };

        ConflictSet cset;
        for (PendingConflict& p : pending_) {
            int src = p.src >= 0 ? remap[static_cast<size_t>(p.src)] : -1;
            p.c.witness = witness_into(src);
            p.c.witness.push_back(p.step);
            cset.add(std::move(p.c));
        }
        return dfa::Dfa::assemble(std::move(states), cset.take(), !incomplete_.load());
    }
};

}  // namespace

dfa::Dfa explore(const flat::CompiledProgram& cp, const ExploreOptions& opt) {
    if (opt.jobs <= 1) {
        dfa::DfaOptions dopt;
        dopt.max_states = opt.max_states;
        dopt.stop_at_first_conflict = opt.stop_at_first_conflict;
        dopt.boot_pcs = opt.boot_pcs;
        return dfa::Dfa::build(cp, dopt);
    }
    return ParallelExplorer(cp, opt).run();
}

}  // namespace ceu::analysis
