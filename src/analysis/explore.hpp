// Parallel, memoized DFA exploration (the tentpole of the analysis
// subsystem): a worklist over the reachable-state frontier sharded across a
// thread pool, with MachineState::key() hashed into a concurrent seen-set.
// Results are order-normalized identical to the serial explorer
// (dfa::Dfa::build): same state set, same transition structure, same
// deduplicated conflict set — compare with dfa::Dfa::signature().
#pragma once

#include "codegen/flatten.hpp"
#include "dfa/dfa.hpp"

namespace ceu::analysis {

struct ExploreOptions {
    size_t max_states = 20000;
    bool stop_at_first_conflict = false;
    /// Worker threads; <= 1 runs the serial reference explorer.
    int jobs = 1;
    /// Pin worker i to the i-th CPU the process is allowed on (cpuset-
    /// aware; Linux only, ignored elsewhere). Benchmarks use this to stop
    /// the OS from migrating workers mid-measurement.
    bool pin_threads = false;
    /// Boot at these entry pcs (one concurrent root track each) instead of
    /// pc 0 — the modular analysis explores a par-arm group in isolation
    /// this way. Empty = whole program.
    std::vector<flat::Pc> boot_pcs;
};

/// Runs the temporal analysis with `opt.jobs` workers. With jobs <= 1 this
/// delegates to dfa::Dfa::build, so callers get one entry point for both.
dfa::Dfa explore(const flat::CompiledProgram& cp, const ExploreOptions& opt = {});

}  // namespace ceu::analysis
