#include "analysis/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "runtime/snapshot.hpp"

namespace ceu::analysis::cache {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'U', 'L', 'I', 'N', 'T', '1'};

std::string hex64(uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

/// (ordinal, delta) encoding of one conflict location against the member
/// spans: lines inside a member are stored relative to its anchor so they
/// survive whole-module shifts; lines outside every member (or invalid
/// locations) are stored absolute with ordinal -1.
void encode_loc(rt::snap::ByteWriter& w, const SourceLoc& loc,
                const std::vector<MemberSpan>& members) {
    int64_t ordinal = -1;
    int64_t delta = static_cast<int64_t>(loc.line);
    for (size_t i = 0; i < members.size(); ++i) {
        const MemberSpan& m = members[i];
        if (static_cast<int>(loc.line) >= m.line_begin &&
            static_cast<int>(loc.line) <= m.line_end) {
            ordinal = static_cast<int64_t>(i);
            delta = static_cast<int64_t>(loc.line) - m.anchor_line;
            break;
        }
    }
    w.i64(ordinal);
    w.i64(delta);
    w.u32(loc.col);
}

SourceLoc decode_loc(rt::snap::ByteReader& r, const std::vector<MemberSpan>& members) {
    int64_t ordinal = r.i64();
    int64_t delta = r.i64();
    uint32_t col = r.u32();
    SourceLoc loc;
    loc.col = col;
    if (ordinal >= 0 && static_cast<size_t>(ordinal) < members.size()) {
        int64_t line = members[static_cast<size_t>(ordinal)].anchor_line + delta;
        if (line < 0) throw rt::snap::SnapshotError("negative rebased line");
        loc.line = static_cast<uint32_t>(line);
    } else {
        if (delta < 0) throw rt::snap::SnapshotError("negative absolute line");
        loc.line = static_cast<uint32_t>(delta);
    }
    return loc;
}

}  // namespace

uint64_t fnv1a(const std::string& s, uint64_t seed) {
    uint64_t h = seed;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t fnv1a_u64(uint64_t v, uint64_t seed) {
    uint64_t h = seed;
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffU;
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t entry_key(const std::vector<uint64_t>& member_hashes, uint32_t max_states,
                   bool stop_at_first_conflict) {
    uint64_t h = fnv1a("ceulint-group-v1");
    for (uint64_t m : member_hashes) h = fnv1a_u64(m, h);
    h = fnv1a_u64(max_states, h);
    h = fnv1a_u64(stop_at_first_conflict ? 1 : 0, h);
    return h;
}

DfaCache::DfaCache(std::string dir) : dir_(std::move(dir)) {
    if (dir_.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) dir_.clear();  // unusable directory: run uncached
}

std::string DfaCache::path_for(uint64_t key) const {
    return dir_ + "/" + hex64(key) + ".dfa";
}

std::vector<uint8_t> DfaCache::serialize(uint64_t key, const Entry& e) {
    std::vector<uint8_t> blob;
    rt::snap::ByteWriter w(blob);
    w.bytes(reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic));
    w.u64(key);
    w.u32(static_cast<uint32_t>(e.members.size()));
    for (const MemberSpan& m : e.members) {
        w.u64(m.hash);
        w.i64(m.line_begin);
        w.i64(m.line_end);
        w.i64(m.anchor_line);
    }
    w.u32(e.max_states);
    w.u8(e.stop_at_first_conflict ? 1 : 0);
    w.u64(e.state_count);
    w.u8(e.complete ? 1 : 0);
    w.u64(e.sub_signature);
    w.u32(static_cast<uint32_t>(e.conflicts.size()));
    for (const dfa::Conflict& c : e.conflicts) {
        w.u8(static_cast<uint8_t>(c.kind));
        w.str(c.what);
        w.str(c.trigger);
        encode_loc(w, c.loc_a, e.members);
        encode_loc(w, c.loc_b, e.members);
        w.u32(static_cast<uint32_t>(c.occurrences));
        w.u32(static_cast<uint32_t>(c.witness.size()));
        for (const dfa::WitnessStep& s : c.witness) {
            w.u8(static_cast<uint8_t>(s.kind));
            w.str(s.event);
            w.i64(s.advance);
        }
    }
    return blob;
}

bool DfaCache::deserialize(const std::vector<uint8_t>& blob, uint64_t key, Entry* out) {
    try {
        rt::snap::ByteReader r(blob.data(), blob.size());
        char magic[sizeof(kMagic)];
        for (char& m : magic) m = static_cast<char>(r.u8());
        if (std::string_view(magic, sizeof(magic)) !=
            std::string_view(kMagic, sizeof(kMagic))) {
            return false;
        }
        if (r.u64() != key) return false;
        Entry e;
        uint32_t nm = r.count(8 * 4);
        e.members.resize(nm);
        for (MemberSpan& m : e.members) {
            m.hash = r.u64();
            m.line_begin = static_cast<int>(r.i64());
            m.line_end = static_cast<int>(r.i64());
            m.anchor_line = static_cast<int>(r.i64());
        }
        e.max_states = r.u32();
        e.stop_at_first_conflict = r.u8() != 0;
        e.state_count = r.u64();
        e.complete = r.u8() != 0;
        e.sub_signature = r.u64();
        uint32_t nc = r.count(1);
        e.conflicts.resize(nc);
        for (dfa::Conflict& c : e.conflicts) {
            uint8_t kind = r.u8();
            if (kind > static_cast<uint8_t>(dfa::Conflict::Kind::Escape)) return false;
            c.kind = static_cast<dfa::Conflict::Kind>(kind);
            c.what = r.str();
            c.trigger = r.str();
            c.loc_a = decode_loc(r, e.members);
            c.loc_b = decode_loc(r, e.members);
            c.occurrences = static_cast<int>(r.u32());
            uint32_t nw = r.count(1);
            c.witness.resize(nw);
            for (dfa::WitnessStep& s : c.witness) {
                uint8_t sk = r.u8();
                if (sk > static_cast<uint8_t>(dfa::WitnessStep::Kind::AsyncDone)) {
                    return false;
                }
                s.kind = static_cast<dfa::WitnessStep::Kind>(sk);
                s.event = r.str();
                s.advance = r.i64();
            }
        }
        if (!r.done()) return false;  // trailing garbage: corrupt
        *out = std::move(e);
        return true;
    } catch (const rt::snap::SnapshotError&) {
        return false;
    }
}

bool DfaCache::load(uint64_t key, const Entry& expect, Entry* out) {
    if (!enabled()) {
        ++stats_.misses;
        return false;
    }
    std::ifstream in(path_for(key), std::ios::binary);
    if (!in) {
        ++stats_.misses;
        return false;
    }
    std::vector<uint8_t> blob((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    Entry e;
    if (!deserialize(blob, key, &e)) {
        ++stats_.rejected;
        return false;
    }
    // Identity check: the entry must describe exactly this group under
    // exactly these options (defends against key collisions and any
    // hand-edited/stale file).
    bool match = e.members.size() == expect.members.size() &&
                 e.max_states == expect.max_states &&
                 e.stop_at_first_conflict == expect.stop_at_first_conflict;
    for (size_t i = 0; match && i < e.members.size(); ++i) {
        match = e.members[i].hash == expect.members[i].hash;
    }
    if (!match) {
        ++stats_.rejected;
        return false;
    }
    // Rebase conflict locations into the *current* program's coordinates:
    // decode_loc resolved (ordinal, delta) against the *stored* anchors, so
    // a line inside old member i shifts by (current anchor - stored anchor).
    for (dfa::Conflict& c : e.conflicts) {
        for (SourceLoc* loc : {&c.loc_a, &c.loc_b}) {
            for (size_t i = 0; i < e.members.size(); ++i) {
                const MemberSpan& old_m = e.members[i];
                if (static_cast<int>(loc->line) < old_m.line_begin ||
                    static_cast<int>(loc->line) > old_m.line_end) {
                    continue;
                }
                int shifted = static_cast<int>(loc->line) - old_m.anchor_line +
                              expect.members[i].anchor_line;
                if (shifted >= 0) loc->line = static_cast<uint32_t>(shifted);
                break;
            }
        }
    }
    e.members = expect.members;
    *out = std::move(e);
    ++stats_.hits;
    return true;
}

void DfaCache::store(uint64_t key, const Entry& e) {
    if (!enabled()) return;
    std::vector<uint8_t> blob = serialize(key, e);
    std::string final_path = path_for(key);
    std::string tmp_path = final_path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out) return;
        out.write(reinterpret_cast<const char*>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
        if (!out) return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (!ec) ++stats_.stores;
}

}  // namespace ceu::analysis::cache
