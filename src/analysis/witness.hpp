// Witness traces as replayable artifacts: the DFA explorers record, for
// every conflict, the boot->...->trigger input chain that reaches the
// conflicting reaction. This module prints that chain as a human-readable
// path and converts it into an env::Script (the `ceuc --run` protocol) so
// `ceuc --explain` output can drive the runtime straight into the conflict.
#pragma once

#include <string>
#include <vector>

#include "dfa/abstract.hpp"
#include "env/script.hpp"

namespace ceu::analysis {

/// "boot -> A -> A -> TIME+10ms" (empty witness: "(no witness)").
std::string witness_chain(const std::vector<dfa::WitnessStep>& w);

/// The witness as `ceuc --run` script text, one command per line:
/// events as `E <name>`, time as `T <us>`, async completions as `A`.
/// Unknown-duration timer steps cannot be replayed exactly and are emitted
/// as a `T 0` with an explanatory comment.
std::string witness_script_text(const std::vector<dfa::WitnessStep>& w);

/// The witness as an in-memory Script (tests replay this directly).
env::Script witness_script(const std::vector<dfa::WitnessStep>& w);

}  // namespace ceu::analysis
