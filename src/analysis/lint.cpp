#include "analysis/lint.hpp"

#include <algorithm>
#include <sstream>

namespace ceu::analysis {

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

}  // namespace

std::string Finding::str(const std::string& file) const {
    std::ostringstream os;
    if (!file.empty()) os << file << ":";
    if (loc.valid()) os << loc.str() << ": ";
    else if (!file.empty()) os << " ";
    os << severity_name(severity) << ": [" << pass << "] " << message;
    return os.str();
}

std::string Finding::json(const std::string& file) const {
    std::ostringstream os;
    os << "{\"pass\":";
    json_escape(os, pass);
    os << ",\"severity\":\"" << severity_name(severity) << "\",\"file\":";
    json_escape(os, file);
    os << ",\"line\":" << loc.line << ",\"col\":" << loc.col << ",\"message\":";
    json_escape(os, message);
    if (!witness.empty()) {
        os << ",\"witness\":[";
        for (size_t i = 0; i < witness.size(); ++i) {
            if (i) os << ",";
            json_escape(os, witness[i].label());
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

const Pass* PassRegistry::find(const std::string& id) const {
    for (const auto& p : passes_) {
        if (p->id() == id) return p.get();
    }
    return nullptr;
}

std::vector<Finding> run_lints(const flat::CompiledProgram& cp, const LintOptions& opt,
                               const PassRegistry& reg) {
    auto listed = [](const std::vector<std::string>& ids, const std::string& id) {
        return std::find(ids.begin(), ids.end(), id) != ids.end();
    };
    std::vector<Finding> out;
    for (const auto& pass : reg.passes()) {
        if (!opt.only.empty() && !listed(opt.only, pass->id())) continue;
        if (listed(opt.disable, pass->id())) continue;
        size_t before = out.size();
        pass->run(cp, out);
        std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
                  [](const Finding& a, const Finding& b) {
                      return std::tie(a.loc.line, a.loc.col, a.message) <
                             std::tie(b.loc.line, b.loc.col, b.message);
                  });
    }
    return out;
}

Finding conflict_finding(const dfa::Conflict& c) {
    Finding f;
    f.pass = "temporal";
    f.severity = Severity::Error;
    f.loc = c.loc_a;
    f.message = c.str();
    f.witness = c.witness;
    return f;
}

Finding incomplete_finding(size_t explored, size_t max_states) {
    Finding f;
    f.pass = "temporal";
    f.severity = Severity::Warning;
    f.message = "temporal analysis incomplete (state budget exhausted: " +
                std::to_string(explored) +
                " states explored, --analysis.max-states=" +
                std::to_string(max_states) + "); determinism NOT proven";
    return f;
}

}  // namespace ceu::analysis
