#include "analysis/witness.hpp"

#include <sstream>

namespace ceu::analysis {

using dfa::WitnessStep;

std::string witness_chain(const std::vector<WitnessStep>& w) {
    if (w.empty()) return "(no witness)";
    std::string out;
    for (size_t i = 0; i < w.size(); ++i) {
        if (i) out += " -> ";
        out += w[i].label();
    }
    return out;
}

std::string witness_script_text(const std::vector<WitnessStep>& w) {
    std::ostringstream os;
    for (const WitnessStep& s : w) {
        switch (s.kind) {
            case WitnessStep::Kind::Boot:
                os << "# boot (implicit)\n";
                break;
            case WitnessStep::Kind::Event:
                os << "E " << s.event << "\n";
                break;
            case WitnessStep::Kind::Time:
                if (s.advance > 0) {
                    os << "T " << s.advance << "\n";
                } else {
                    os << "# unknown-duration timer (await (expr)) fires here;\n"
                       << "# the static analysis cannot name the concrete instant\n"
                       << "T 0\n";
                }
                break;
            case WitnessStep::Kind::AsyncDone:
                os << "A\n";
                break;
        }
    }
    return os.str();
}

env::Script witness_script(const std::vector<WitnessStep>& w) {
    env::Script s;
    for (const WitnessStep& step : w) {
        switch (step.kind) {
            case WitnessStep::Kind::Boot:
                break;  // the driver boots before feeding items
            case WitnessStep::Kind::Event:
                s.event(step.event);
                break;
            case WitnessStep::Kind::Time:
                s.advance(step.advance);
                break;
            case WitnessStep::Kind::AsyncDone:
                s.settle_asyncs();
                break;
        }
    }
    return s;
}

}  // namespace ceu::analysis
