// The built-in lint passes.
//
//   uninit-read       abstract interpretation (must-be-initialized forward
//                     dataflow) over the flow graph: reads that some path
//                     reaches before any write
//   unused            variables never read; internal events never used, or
//                     awaited but never emitted
//   unreachable-trail code after an await in a `par/or` branch whose
//                     sibling always terminates in the reaction it starts
//                     (the region is killed before the trail can resume)
//   emit-no-awaiter   `emit` on an internal event no trail ever awaits
#include <functional>
#include <map>
#include <set>

#include "analysis/lint.hpp"
#include "flow/flowgraph.hpp"

namespace ceu::analysis {

namespace {

using flat::FlatProgram;
using flat::Instr;
using flat::IOp;
using flat::Pc;

// -- shared read/write extraction (mirrors the abstract machine's) -----------

struct Access {
    std::vector<std::pair<int, SourceLoc>> reads;  // decl_id, site
    std::vector<int> writes;
};

void collect_reads(const ast::Expr& e, Access& out) {
    ast::walk_exprs(e, [&](const ast::Expr& x) {
        if (x.kind == ast::ExprKind::Var) {
            const auto& v = static_cast<const ast::VarExpr&>(x);
            if (v.decl_id >= 0) out.reads.emplace_back(v.decl_id, x.loc);
        }
    });
}

void collect_write(const ast::Expr& lhs, Access& out) {
    const ast::Expr* root = &lhs;
    while (root->kind == ast::ExprKind::Index) {
        const auto& ix = static_cast<const ast::IndexExpr&>(*root);
        collect_reads(*ix.index, out);
        root = ix.base.get();
    }
    if (root->kind == ast::ExprKind::Var) {
        const auto& v = static_cast<const ast::VarExpr&>(*root);
        if (v.decl_id >= 0) out.writes.push_back(v.decl_id);
    } else if (root->kind == ast::ExprKind::Unop) {
        collect_reads(*static_cast<const ast::UnopExpr&>(*root).sub, out);
    }
}

Access instr_access(const Instr& I) {
    Access a;
    switch (I.op) {
        case IOp::Eval:
        case IOp::IfNot:
        case IOp::AwaitDyn:
            collect_reads(*I.e1, a);
            break;
        case IOp::Assign:
            collect_write(*I.e1, a);
            collect_reads(*I.e2, a);
            break;
        case IOp::AssignWake:
        case IOp::AssignSlot:
            collect_write(*I.e1, a);
            break;
        case IOp::EmitInt:
        case IOp::EmitOutput:
        case IOp::EmitExtAsync:
        case IOp::Escape:
        case IOp::ProgReturn:
            if (I.e1 != nullptr) collect_reads(*I.e1, a);
            break;
        default:
            break;
    }
    return a;
}

// -- uninit-read --------------------------------------------------------------

class UninitReadPass final : public Pass {
  public:
    [[nodiscard]] std::string id() const override { return "uninit-read"; }
    [[nodiscard]] std::string description() const override {
        return "variable reads some execution path reaches before any write";
    }

    void run(const flat::CompiledProgram& cp, std::vector<Finding>& out) const override {
        const FlatProgram& fp = cp.flat;
        size_t n = fp.code.size();
        size_t nvars = cp.sema.vars.size();
        if (n == 0 || nvars == 0) return;
        size_t words = (nvars + 63) / 64;

        std::vector<Access> access(n);
        for (size_t pc = 0; pc < n; ++pc) access[pc] = instr_access(fp.code[pc]);

        std::vector<std::vector<int>> succs = flow::build_flow_graph(cp).successors();

        // Must-be-initialized sets: entry starts empty, everything else at
        // TOP (all ones) so unreachable code produces no findings.
        std::vector<std::vector<uint64_t>> in(n, std::vector<uint64_t>(words, ~0ull));
        std::fill(in[0].begin(), in[0].end(), 0ull);
        std::vector<uint8_t> queued(n, 0);
        std::vector<size_t> worklist{0};
        queued[0] = 1;
        while (!worklist.empty()) {
            size_t pc = worklist.back();
            worklist.pop_back();
            queued[pc] = 0;
            std::vector<uint64_t> outset = in[pc];
            for (int d : access[pc].writes) {
                outset[static_cast<size_t>(d) / 64] |= 1ull << (d % 64);
            }
            for (int s : succs[pc]) {
                auto& target = in[static_cast<size_t>(s)];
                bool changed = false;
                for (size_t w = 0; w < words; ++w) {
                    uint64_t met = target[w] & outset[w];
                    if (met != target[w]) {
                        target[w] = met;
                        changed = true;
                    }
                }
                if (changed && !queued[static_cast<size_t>(s)]) {
                    queued[static_cast<size_t>(s)] = 1;
                    worklist.push_back(static_cast<size_t>(s));
                }
            }
        }

        std::set<std::pair<int, std::pair<uint32_t, uint32_t>>> reported;
        for (size_t pc = 0; pc < n; ++pc) {
            for (const auto& [d, loc] : access[pc].reads) {
                if (in[pc][static_cast<size_t>(d) / 64] & (1ull << (d % 64))) continue;
                if (!reported.insert({d, {loc.line, loc.col}}).second) continue;
                Finding f;
                f.pass = id();
                f.severity = severity();
                f.loc = loc;
                f.message = "variable '" + cp.sema.vars[static_cast<size_t>(d)].name +
                            "' may be read before initialization";
                out.push_back(std::move(f));
            }
        }
    }
};

// -- unused -------------------------------------------------------------------

class UnusedPass final : public Pass {
  public:
    [[nodiscard]] std::string id() const override { return "unused"; }
    [[nodiscard]] std::string description() const override {
        return "variables never read; internal events never emitted/awaited";
    }

    void run(const flat::CompiledProgram& cp, std::vector<Finding>& out) const override {
        const FlatProgram& fp = cp.flat;
        std::set<int> read, written, emitted;
        for (const Instr& I : fp.code) {
            Access a = instr_access(I);
            for (const auto& [d, loc] : a.reads) read.insert(d);
            for (int d : a.writes) written.insert(d);
            if (I.op == IOp::EmitInt) emitted.insert(I.a);
        }

        auto finding = [&](SourceLoc loc, std::string msg) {
            Finding f;
            f.pass = id();
            f.severity = severity();
            f.loc = loc;
            f.message = std::move(msg);
            out.push_back(std::move(f));
        };

        for (size_t d = 0; d < cp.sema.vars.size(); ++d) {
            const VarInfo& v = cp.sema.vars[d];
            if (read.count(static_cast<int>(d))) continue;
            if (written.count(static_cast<int>(d))) {
                finding(v.loc, "variable '" + v.name + "' is written but never read");
            } else {
                finding(v.loc, "variable '" + v.name + "' is never used");
            }
        }
        for (size_t e = 0; e < cp.sema.internals.size(); ++e) {
            const EventInfo& ev = cp.sema.internals[e];
            bool is_emitted = emitted.count(static_cast<int>(e)) > 0;
            bool is_awaited = !fp.int_gates[e].empty();
            if (!is_emitted && !is_awaited) {
                finding(ev.loc, "internal event '" + ev.name + "' is never used");
            } else if (is_awaited && !is_emitted) {
                finding(ev.loc, "internal event '" + ev.name +
                                    "' is awaited but never emitted: those awaits "
                                    "can never fire");
            }
        }
    }
};

// -- unreachable-trail --------------------------------------------------------

class UnreachableTrailPass final : public Pass {
  public:
    [[nodiscard]] std::string id() const override { return "unreachable-trail"; }
    [[nodiscard]] std::string description() const override {
        return "code after an await that a sibling par/or branch always preempts";
    }

    void run(const flat::CompiledProgram& cp, std::vector<Finding>& out) const override {
        const FlatProgram& fp = cp.flat;
        for (size_t p = 0; p < fp.pars.size(); ++p) {
            const flat::ParInfo& par = fp.pars[p];
            if (par.kind != ast::ParKind::ParOr) continue;

            int sync_branch = -1;
            for (size_t b = 0; b < par.branches.size(); ++b) {
                if (always_sync_exit(cp, static_cast<int>(p), b)) {
                    sync_branch = static_cast<int>(b);
                    break;
                }
            }
            if (sync_branch < 0) continue;

            for (size_t b = 0; b < par.branches.size(); ++b) {
                if (static_cast<int>(b) == sync_branch) continue;
                std::set<Pc> visited;
                std::vector<Pc> awaits;
                first_awaits(fp, static_cast<int>(p), par.branches[b],
                             par.branch_ranges[b], visited, awaits);
                for (Pc a : awaits) {
                    Finding f;
                    f.pass = id();
                    f.severity = severity();
                    f.loc = fp.code[static_cast<size_t>(a)].loc;
                    f.message =
                        "code after this await never runs: a sibling branch of the "
                        "`par/or` at line " +
                        std::to_string(par.loc.line) +
                        " always terminates in the reaction it starts, killing "
                        "this trail before it can resume";
                    out.push_back(std::move(f));
                }
            }
        }
    }

  private:
    /// True if every path from the branch entry reaches this par's rejoin
    /// (or escapes past the par entirely) without crossing an await.
    static bool always_sync_exit(const flat::CompiledProgram& cp, int par_idx,
                                 size_t branch) {
        const FlatProgram& fp = cp.flat;
        const flat::ParInfo& par = fp.pars[static_cast<size_t>(par_idx)];
        auto [lo, hi] = par.branch_ranges[branch];
        std::map<Pc, int> color;  // 1 = in progress, 2 = true, 3 = false
        std::function<bool(Pc)> visit = [&](Pc pc) -> bool {
            if (pc < lo || pc >= hi) return true;  // left the branch: escaped
            auto it = color.find(pc);
            if (it != color.end()) return it->second == 2;  // cycle -> false
            color[pc] = 1;
            bool r = [&]() -> bool {
                const Instr& I = fp.code[static_cast<size_t>(pc)];
                switch (I.op) {
                    case IOp::AwaitExt:
                    case IOp::AwaitInt:
                    case IOp::AwaitTime:
                    case IOp::AwaitDyn:
                    case IOp::AwaitForever:
                    case IOp::AsyncRun:
                    case IOp::Halt:
                    case IOp::ParSpawn:  // conservative: nested par may await
                        return false;
                    case IOp::BranchEnd:
                        return I.a == par_idx;
                    case IOp::ProgReturn:
                        return true;
                    case IOp::Escape: {
                        const flat::EscapeInfo& esc =
                            fp.escapes[static_cast<size_t>(I.a)];
                        return visit(esc.cont);
                    }
                    case IOp::IfNot:
                        return visit(pc + 1) && visit(I.a);
                    case IOp::Jump:
                        return visit(I.a);
                    default:
                        return visit(pc + 1);
                }
            }();
            color[pc] = r ? 2 : 3;
            return r;
        };
        return visit(par.branches[branch]);
    }

    /// Collects the first await (or async spawn) on every path from `pc`,
    /// descending into nested pars (their trails die with the region too).
    static void first_awaits(const FlatProgram& fp, int par_idx, Pc pc,
                             std::pair<Pc, Pc> range, std::set<Pc>& visited,
                             std::vector<Pc>& awaits) {
        auto [lo, hi] = range;
        if (pc < lo || pc >= hi) return;
        if (!visited.insert(pc).second) return;
        const Instr& I = fp.code[static_cast<size_t>(pc)];
        switch (I.op) {
            case IOp::AwaitExt:
            case IOp::AwaitInt:
            case IOp::AwaitTime:
            case IOp::AwaitDyn:
            case IOp::AwaitForever:
            case IOp::AsyncRun:
                awaits.push_back(pc);
                return;
            case IOp::BranchEnd:
                if (I.a == par_idx) return;
                return;
            case IOp::ProgReturn:
            case IOp::Halt:
                return;
            case IOp::Escape: {
                const flat::EscapeInfo& esc = fp.escapes[static_cast<size_t>(I.a)];
                first_awaits(fp, par_idx, esc.cont, range, visited, awaits);
                return;
            }
            case IOp::IfNot:
                first_awaits(fp, par_idx, pc + 1, range, visited, awaits);
                first_awaits(fp, par_idx, I.a, range, visited, awaits);
                return;
            case IOp::Jump:
                first_awaits(fp, par_idx, I.a, range, visited, awaits);
                return;
            case IOp::ParSpawn: {
                const flat::ParInfo& nested = fp.pars[static_cast<size_t>(I.a)];
                for (Pc b : nested.branches) {
                    first_awaits(fp, par_idx, b, range, visited, awaits);
                }
                return;
            }
            default:
                first_awaits(fp, par_idx, pc + 1, range, visited, awaits);
                return;
        }
    }
};

// -- emit-no-awaiter ----------------------------------------------------------

class EmitNoAwaiterPass final : public Pass {
  public:
    [[nodiscard]] std::string id() const override { return "emit-no-awaiter"; }
    [[nodiscard]] std::string description() const override {
        return "emissions of internal events that no trail ever awaits";
    }

    void run(const flat::CompiledProgram& cp, std::vector<Finding>& out) const override {
        const FlatProgram& fp = cp.flat;
        for (const Instr& I : fp.code) {
            if (I.op != IOp::EmitInt) continue;
            if (!fp.int_gates[static_cast<size_t>(I.a)].empty()) continue;
            Finding f;
            f.pass = id();
            f.severity = severity();
            f.loc = I.loc;
            f.message = "emit on internal event '" +
                        cp.sema.internals[static_cast<size_t>(I.a)].name +
                        "' that no trail ever awaits (the emission is a no-op)";
            out.push_back(std::move(f));
        }
    }
};

}  // namespace

const PassRegistry& default_registry() {
    static const PassRegistry* reg = [] {
        auto* r = new PassRegistry;
        r->add(std::make_unique<UninitReadPass>());
        r->add(std::make_unique<UnusedPass>());
        r->add(std::make_unique<UnreachableTrailPass>());
        r->add(std::make_unique<EmitNoAwaiterPass>());
        return r;
    }();
    return *reg;
}

}  // namespace ceu::analysis
