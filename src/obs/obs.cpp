#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/trace_format.hpp"

namespace ceu::obs {

namespace {
uint64_t now_ns() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

size_t count_records(const ReactionSpan& s, SpanRecord::Type t) {
    return static_cast<size_t>(
        std::count_if(s.records.begin(), s.records.end(),
                      [t](const SpanRecord& r) { return r.type == t; }));
}
}  // namespace

size_t ReactionSpan::wakes() const { return count_records(*this, SpanRecord::Type::Wake); }
size_t ReactionSpan::emits() const { return count_records(*this, SpanRecord::Type::Emit); }
size_t ReactionSpan::timer_fires() const {
    return count_records(*this, SpanRecord::Type::TimerFire);
}

double ProcessStats::reactions_per_sec() const {
    if (wall_ns == 0) return 0.0;
    return static_cast<double>(reactions) * 1e9 / static_cast<double>(wall_ns);
}

void ProcessStats::merge(const ProcessStats& other) {
    reactions += other.reactions;
    for (size_t k = 0; k < reactions_by_kind.size(); ++k) {
        reactions_by_kind[k] += other.reactions_by_kind[k];
    }
    wakes += other.wakes;
    emits += other.emits;
    timer_fires += other.timer_fires;
    instructions += other.instructions;
    max_reaction_instructions =
        std::max(max_reaction_instructions, other.max_reaction_instructions);
    allocations += other.allocations;
    max_emit_depth = std::max(max_emit_depth, other.max_emit_depth);
    wall_ns += other.wall_ns;
    max_reaction_wall_ns = std::max(max_reaction_wall_ns, other.max_reaction_wall_ns);
    queue_peak = std::max(queue_peak, other.queue_peak);
    timers_peak = std::max(timers_peak, other.timers_peak);
    faults += other.faults;
    fault_injections += other.fault_injections;
    terminations += other.terminations;
    checkpoints += other.checkpoints;
    restores += other.restores;
    supervised_restarts += other.supervised_restarts;
    quarantines += other.quarantines;
    sheds += other.sheds;
    steals += other.steals;
    steal_failures += other.steal_failures;
    arena_bytes += other.arena_bytes;
    for (size_t k = 0; k < phase_ns.size(); ++k) phase_ns[k] += other.phase_ns[k];
}

void ProcessStats::clear_measured() {
    wall_ns = 0;
    max_reaction_wall_ns = 0;
    // Scheduler diagnostics: who stole what, how many slabs each shard
    // grew, how long each phase ran — all functions of worker count and
    // thread timing, none of the input sequence.
    steals = 0;
    steal_failures = 0;
    arena_bytes = 0;
    phase_ns = {0, 0, 0, 0};
}

std::string ProcessStats::to_json() const {
    // Keys sorted, no whitespace: the rendering is part of the BENCH_*.json
    // schema and diffed across CI runs.
    std::ostringstream os;
    os << "{";
    os << "\"allocations\":" << allocations;
    os << ",\"arena_bytes\":" << arena_bytes;
    os << ",\"checkpoints\":" << checkpoints;
    os << ",\"emits\":" << emits;
    os << ",\"fault_injections\":" << fault_injections;
    os << ",\"faults\":" << faults;
    os << ",\"instructions\":" << instructions;
    os << ",\"max_emit_depth\":" << max_emit_depth;
    os << ",\"max_reaction_instructions\":" << max_reaction_instructions;
    os << ",\"max_reaction_wall_ns\":" << max_reaction_wall_ns;
    os << ",\"phase_ns\":{\"restarts\":" << phase_ns[0]
       << ",\"events\":" << phase_ns[1] << ",\"timers\":" << phase_ns[2]
       << ",\"asyncs\":" << phase_ns[3] << "}";
    os << ",\"quarantines\":" << quarantines;
    os << ",\"queue_peak\":" << queue_peak;
    os << ",\"reactions\":" << reactions;
    os << ",\"reactions_by_kind\":{\"boot\":" << reactions_by_kind[0]
       << ",\"event\":" << reactions_by_kind[1]
       << ",\"timer\":" << reactions_by_kind[2]
       << ",\"async\":" << reactions_by_kind[3] << "}";
    char rps[32];
    std::snprintf(rps, sizeof rps, "%.1f", reactions_per_sec());
    os << ",\"reactions_per_sec\":" << rps;
    os << ",\"restores\":" << restores;
    os << ",\"sheds\":" << sheds;
    os << ",\"steal_failures\":" << steal_failures;
    os << ",\"steals\":" << steals;
    os << ",\"supervised_restarts\":" << supervised_restarts;
    os << ",\"terminations\":" << terminations;
    os << ",\"timer_fires\":" << timer_fires;
    os << ",\"timers_peak\":" << timers_peak;
    os << ",\"wakes\":" << wakes;
    os << ",\"wall_ns\":" << wall_ns;
    os << "}";
    return os.str();
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

void Recorder::begin(ReactionKind kind, int id, const char* name, Micros ts) {
    // Chains never nest (§5); a begin while open means the previous chain
    // unwound through an untrapped error — close it defensively.
    if (open_) end(static_cast<int>(EndStatus::Running), 0, 0);
    open_ = true;
    span_.kind = kind;
    span_.id = id;
    span_.name = (name != nullptr) ? name : "";
    span_.ts = ts;
    span_.seq = seq_;
    span_.records.clear();
    span_.end_status = static_cast<int>(EndStatus::Running);
    span_.result = 0;
    span_.wall_ns = 0;
    span_.instructions = 0;
    span_.allocations = 0;
    span_.max_emit_depth = 0;
    t0_ns_ = timing_enabled_ ? now_ns() : 0;
}

void Recorder::wake(int gate) {
    if (!open_) return;
    if (spans_enabled_) span_.records.push_back({SpanRecord::Type::Wake, gate, 0});
    ++stats_.wakes;
}

void Recorder::emit(int event_id, int depth) {
    if (!open_) return;
    if (spans_enabled_) span_.records.push_back({SpanRecord::Type::Emit, event_id, depth});
    ++stats_.emits;
    span_.max_emit_depth = std::max(span_.max_emit_depth, depth);
}

void Recorder::timer_fire(int gate, Micros residual) {
    if (!open_) return;
    if (spans_enabled_) {
        span_.records.push_back({SpanRecord::Type::TimerFire, gate, residual});
    }
    ++stats_.timer_fires;
}

void Recorder::end(int status, int64_t result, uint64_t instructions) {
    if (!open_) return;
    open_ = false;
    span_.end_status = status;
    span_.result = result;
    span_.instructions = instructions;
    span_.wall_ns = timing_enabled_ ? now_ns() - t0_ns_ : 0;
    ++seq_;

    ++stats_.reactions;
    ++stats_.reactions_by_kind[static_cast<size_t>(span_.kind)];
    stats_.instructions += instructions;
    stats_.max_reaction_instructions =
        std::max(stats_.max_reaction_instructions, instructions);
    stats_.allocations += span_.allocations;
    stats_.max_emit_depth = std::max(stats_.max_emit_depth, span_.max_emit_depth);
    stats_.wall_ns += span_.wall_ns;
    stats_.max_reaction_wall_ns = std::max(stats_.max_reaction_wall_ns, span_.wall_ns);
    if (status == static_cast<int>(EndStatus::Faulted)) ++stats_.faults;
    if (status == static_cast<int>(EndStatus::Terminated)) ++stats_.terminations;

    if (spans_enabled_) {
        for (Sink* s : sinks_) s->on_reaction(span_);
        last_ = span_;
    }
}

void Recorder::gauge_queue_depth(size_t depth) {
    stats_.queue_peak = std::max(stats_.queue_peak, depth);
}

void Recorder::gauge_timer_count(size_t count) {
    stats_.timers_peak = std::max(stats_.timers_peak, count);
}

void Recorder::finish() {
    for (Sink* s : sinks_) s->finish(stats_);
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

void ChromeTraceSink::put_record(const char* rendered) {
    if (!header_done_) {
        out_ += kTraceHeader;
        header_done_ = true;
    }
    if (!first_record_) out_ += kTraceSep;
    first_record_ = false;
    out_ += rendered;
}

void ChromeTraceSink::on_reaction(const ReactionSpan& span) {
    char buf[256];
    const long long ts = static_cast<long long>(span.ts);
    std::snprintf(buf, sizeof buf, kFmtReactionBegin, ts,
                  kReactionKindNames[static_cast<size_t>(span.kind)], span.id,
                  span.name.c_str(), static_cast<unsigned long long>(span.seq));
    put_record(buf);
    for (const SpanRecord& r : span.records) {
        switch (r.type) {
            case SpanRecord::Type::Wake:
                std::snprintf(buf, sizeof buf, kFmtWake, ts, r.a);
                break;
            case SpanRecord::Type::Emit:
                std::snprintf(buf, sizeof buf, kFmtEmit, ts, r.a,
                              static_cast<int>(r.b));
                break;
            case SpanRecord::Type::TimerFire:
                std::snprintf(buf, sizeof buf, kFmtTimerFire, ts, r.a,
                              static_cast<long long>(r.b));
                break;
        }
        put_record(buf);
    }
    if (span.end_status == static_cast<int>(EndStatus::Terminated)) {
        std::snprintf(buf, sizeof buf, kFmtReactionEndResult, ts, span.end_status,
                      static_cast<long long>(span.result));
    } else {
        std::snprintf(buf, sizeof buf, kFmtReactionEnd, ts, span.end_status);
    }
    put_record(buf);
}

void ChromeTraceSink::finish(const ProcessStats&) {
    if (finished_) return;
    finished_ = true;
    if (!header_done_) {
        out_ += kTraceHeader;
        header_done_ = true;
    }
    out_ += kTraceFooter;
}

// ---------------------------------------------------------------------------
// RingBufferSink
// ---------------------------------------------------------------------------

RingBufferSink::RingBufferSink(size_t capacity) : ring_(std::max<size_t>(capacity, 1)) {}

void RingBufferSink::push(const Record& r) {
    if (count_ == ring_.size()) ++dropped_;
    else ++count_;
    ring_[head_] = r;
    head_ = (head_ + 1) % ring_.size();
}

void RingBufferSink::on_reaction(const ReactionSpan& span) {
    push({Record::Type::Begin, static_cast<uint8_t>(span.kind), span.id,
          static_cast<int64_t>(span.seq), span.ts});
    for (const SpanRecord& r : span.records) {
        Record::Type t = r.type == SpanRecord::Type::Wake ? Record::Type::Wake
                         : r.type == SpanRecord::Type::Emit
                             ? Record::Type::Emit
                             : Record::Type::TimerFire;
        push({t, 0, r.a, r.b, span.ts});
    }
    push({Record::Type::End, static_cast<uint8_t>(span.end_status), 0, span.result,
          span.ts});
}

std::vector<RingBufferSink::Record> RingBufferSink::snapshot() const {
    std::vector<Record> out;
    out.reserve(count_);
    size_t start = (head_ + ring_.size() - count_) % ring_.size();
    for (size_t i = 0; i < count_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

}  // namespace ceu::obs
