// The reaction-trace wire format, shared by the interpreter-side
// ChromeTraceSink and the cgen-emitted C writer. Both serializers print
// with exactly these printf format strings, so a compiled program and the
// interpreter produce byte-identical trace files for the same reaction
// history — the property the conformance suite asserts on fixed seeds.
//
// The format is the Chrome trace_event JSON array form (load via
// chrome://tracing or https://ui.perfetto.dev): one "B"/"E" duration pair
// per reaction chain plus instant events ("ph":"i") for each woken trail,
// internal emit and timer expiry inside the chain. Timestamps are the
// *logical* time of the reaction (§2.3), so the trace is a pure function
// of the input script — wall-clock measurements never appear here (the
// stats snapshot carries those).
//
// Integer arguments are printed as long long / unsigned long long; callers
// cast explicitly on both sides.
#pragma once

namespace ceu::obs {

inline constexpr const char* kTraceHeader = "[\n";
inline constexpr const char* kTraceSep = ",\n";
inline constexpr const char* kTraceFooter = "\n]\n";

/// kind string ("boot"/"event"/"timer"/"async"), id, name, seq, ts.
inline constexpr const char* kFmtReactionBegin =
    "{\"name\":\"reaction\",\"cat\":\"ceu\",\"ph\":\"B\",\"pid\":1,\"tid\":1,"
    "\"ts\":%lld,\"args\":{\"kind\":\"%s\",\"id\":%d,\"name\":\"%s\",\"seq\":%llu}}";

/// ts, gate.
inline constexpr const char* kFmtWake =
    "{\"name\":\"wake\",\"cat\":\"ceu\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
    "\"tid\":1,\"ts\":%lld,\"args\":{\"gate\":%d}}";

/// ts, internal event id, emit-stack depth.
inline constexpr const char* kFmtEmit =
    "{\"name\":\"emit\",\"cat\":\"ceu\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
    "\"tid\":1,\"ts\":%lld,\"args\":{\"event\":%d,\"depth\":%d}}";

/// ts, gate, residual delta (now - deadline, §2.3).
inline constexpr const char* kFmtTimerFire =
    "{\"name\":\"timer\",\"cat\":\"ceu\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
    "\"tid\":1,\"ts\":%lld,\"args\":{\"gate\":%d,\"residual\":%lld}}";

/// ts, status (1 running / 2 terminated / 3 faulted).
inline constexpr const char* kFmtReactionEnd =
    "{\"name\":\"reaction\",\"cat\":\"ceu\",\"ph\":\"E\",\"pid\":1,\"tid\":1,"
    "\"ts\":%lld,\"args\":{\"status\":%d}}";

/// ts, status, program result — used instead of kFmtReactionEnd when the
/// reaction terminated the program (status 2).
inline constexpr const char* kFmtReactionEndResult =
    "{\"name\":\"reaction\",\"cat\":\"ceu\",\"ph\":\"E\",\"pid\":1,\"tid\":1,"
    "\"ts\":%lld,\"args\":{\"status\":%d,\"result\":%lld}}";

inline constexpr const char* kReactionKindNames[4] = {"boot", "event", "timer",
                                                      "async"};

}  // namespace ceu::obs
