// Reaction-level observability (zero overhead when off).
//
// The paper's core guarantee — every external input triggers one bounded,
// run-to-completion reaction chain (§2.2, §2.5) — gives reactions a natural
// span structure. This module makes it visible: the engine (and, through
// the same hook names, cgen-compiled programs) reports the begin/end of
// every reaction chain plus the trail wakes, internal emits (with emit-
// stack depth) and timer expiries (with residual delta) inside it.
//
// Layering: obs depends only on util/. The runtime holds a nullable
// `Recorder*` and guards every hook with one pointer test, so a program
// running without observers pays a single predictable branch per hook site
// (the "<1% when off" budget asserted by the test suite). Sinks are only
// consulted at reaction end, never inside the chain.
//
//   Recorder  — builds the current ReactionSpan from hook calls, keeps the
//               process-level counters, fans finished spans out to sinks.
//   Sink      — consumer interface (one callback per finished reaction).
//   ChromeTraceSink — deterministic Chrome trace_event JSON, byte-identical
//               with the cgen-emitted writer (see trace_format.hpp).
//   RingBufferSink  — compact fixed-capacity binary records for embedded
//               targets: newest N events, constant memory, no allocation
//               after construction.
//   ProcessStats    — counters snapshot with a stable JSON rendering; the
//               bench/ exporters write BENCH_*.json from it.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/timeval.hpp"

namespace ceu::obs {

enum class ReactionKind : uint8_t { Boot = 0, Event = 1, Timer = 2, Async = 3 };

/// Engine status at the end of a reaction, as reported to sinks. Matches
/// the generated C's ceu_status encoding, extended with Faulted (which the
/// generated C cannot reach — faults are an interpreter-side feature).
enum class EndStatus : int { Running = 1, Terminated = 2, Faulted = 3 };

/// One intra-reaction happening, in hook-call order.
struct SpanRecord {
    enum class Type : uint8_t { Wake, Emit, TimerFire };
    Type type = Type::Wake;
    int a = 0;       // Wake/TimerFire: gate; Emit: internal event id
    int64_t b = 0;   // Emit: emit-stack depth; TimerFire: residual delta
};

/// One reaction chain. The deterministic fields (everything above wall_ns)
/// are a pure function of the input sequence; the timing/allocation fields
/// are measured and excluded from the deterministic exporters.
struct ReactionSpan {
    ReactionKind kind = ReactionKind::Boot;
    int id = 0;          // Event: input id; Timer: #expired entries; Async: idx
    std::string name;    // input event name; empty otherwise
    Micros ts = 0;       // logical time of the chain (§2.3)
    uint64_t seq = 0;    // reaction ordinal (0-based)
    std::vector<SpanRecord> records;
    int end_status = static_cast<int>(EndStatus::Running);
    int64_t result = 0;  // meaningful when end_status == Terminated

    // Measured extras (interpreter only; not part of the trace contract).
    uint64_t wall_ns = 0;       // steady-clock time inside the chain
    uint64_t instructions = 0;  // flat-program instructions executed
    uint64_t allocations = 0;   // container growth events during the chain
    int max_emit_depth = 0;     // §2.2 internal-event stack high-water

    [[nodiscard]] size_t wakes() const;
    [[nodiscard]] size_t emits() const;
    [[nodiscard]] size_t timer_fires() const;
};

/// Process-level counters, aggregated by the Recorder across every span it
/// sees plus the gauges the host pushes (queue depths, timer occupancy,
/// fault-layer injections).
struct ProcessStats {
    uint64_t reactions = 0;
    std::array<uint64_t, 4> reactions_by_kind = {0, 0, 0, 0};
    uint64_t wakes = 0;
    uint64_t emits = 0;
    uint64_t timer_fires = 0;
    uint64_t instructions = 0;
    uint64_t max_reaction_instructions = 0;
    uint64_t allocations = 0;
    int max_emit_depth = 0;
    uint64_t wall_ns = 0;              // total time inside reaction chains
    uint64_t max_reaction_wall_ns = 0;
    size_t queue_peak = 0;             // trail high-water mark
    size_t timers_peak = 0;            // TimerWheel occupancy high-water
    uint64_t faults = 0;               // reactions that ended Faulted
    uint64_t fault_injections = 0;     // fault-layer events (host-reported)
    uint64_t terminations = 0;

    // Supervision counters (reactor-reported; distinct from raw faults so
    // fleet stats separate "things went wrong" from "the supervisor acted").
    uint64_t checkpoints = 0;          // engine snapshots taken
    uint64_t restores = 0;             // restarts served from a checkpoint
    uint64_t supervised_restarts = 0;  // supervisor-initiated reboots+restores
    uint64_t quarantines = 0;          // members benched after repeated faults
    uint64_t sheds = 0;                // envelopes rejected by inbox backpressure

    // Scheduler counters (reactor-reported, like the supervision block):
    // work-stealing traffic, per-shard arena footprint, and per-phase round
    // time. All of them depend on worker count and thread timing, so
    // clear_measured() zeroes them — they are diagnostics, not part of the
    // deterministic contract — and the per-instance checkpoint format does
    // not carry them (they are fleet-level, stamped at fleet_stats time).
    uint64_t steals = 0;           // items executed by a non-owning worker
    uint64_t steal_failures = 0;   // empty-handed victim scans
    uint64_t arena_bytes = 0;      // bytes reserved by shard arenas
    std::array<uint64_t, 4> phase_ns = {0, 0, 0, 0};  // restarts/events/timers/asyncs

    /// Reactions per wall second spent inside chains (0 if unmeasured).
    [[nodiscard]] double reactions_per_sec() const;

    /// Folds another process's counters into this one: sums the additive
    /// counters, maxes the high-water marks. The reactor uses this to
    /// aggregate per-instance snapshots into per-shard and fleet-level
    /// stats; merging is commutative and associative, so the fleet total
    /// is identical for any shard/worker layout.
    void merge(const ProcessStats& other);

    /// Zeroes the measured (non-deterministic) fields — wall-clock times —
    /// leaving only counters that are a pure function of the input
    /// sequence. The reactor determinism suite compares snapshots across
    /// worker counts after this.
    void clear_measured();

    /// Stable one-object JSON rendering (sorted keys, no whitespace) — the
    /// schema bench/ writes into BENCH_*.json.
    [[nodiscard]] std::string to_json() const;
};

/// Consumer of finished reaction spans. on_reaction runs synchronously at
/// the end of each chain (outside the chain itself); keep it cheap.
class Sink {
  public:
    virtual ~Sink() = default;
    virtual void on_reaction(const ReactionSpan& span) = 0;
    /// Flush / finalize (e.g. close the JSON array). Called by the host
    /// when observation stops; must be idempotent.
    virtual void finish(const ProcessStats& stats) { (void)stats; }
};

/// Receives the engine's hook calls, assembles spans, aggregates stats and
/// dispatches to sinks. Non-reentrant by construction: reaction chains
/// never nest (§5 forbids interleaving the entry points).
class Recorder {
  public:
    /// Sinks are not owned and must outlive the recorder (the host facade
    /// owns both and manages lifetime).
    void add_sink(Sink* sink) { sinks_.push_back(sink); }
    [[nodiscard]] bool has_sinks() const { return !sinks_.empty(); }

    /// When false (default true), spans are not materialized for sinks and
    /// only ProcessStats accumulate — the cheap always-on profile.
    void set_spans_enabled(bool on) { spans_enabled_ = on; }

    /// When false (default true), begin/end skip the steady-clock samples
    /// that feed wall_ns / max_reaction_wall_ns (both then stay 0). Two
    /// clock_gettime calls per reaction are ~10% of a small reaction's
    /// cost; fleets that only want deterministic counters turn this off
    /// (ReactorConfig::time_reactions).
    void set_timing_enabled(bool on) { timing_enabled_ = on; }

    // -- hook surface (mirrors the cgen ceu_obs_* symbols) -------------------
    void begin(ReactionKind kind, int id, const char* name, Micros ts);
    void wake(int gate);
    void emit(int event_id, int depth);
    void timer_fire(int gate, Micros residual);
    void end(int status, int64_t result, uint64_t instructions);

    // -- gauges / counters pushed by the host ---------------------------------
    void count_allocation() { ++span_.allocations; }
    void gauge_queue_depth(size_t depth);
    void gauge_timer_count(size_t count);
    void count_fault_injection() { ++stats_.fault_injections; }

    /// Flush every sink (idempotent at the sink level).
    void finish();

    [[nodiscard]] const ProcessStats& stats() const { return stats_; }
    /// The last finished span (tests / snapshot debugging).
    [[nodiscard]] const ReactionSpan& last_span() const { return last_; }

    // -- checkpoint / restore -------------------------------------------------

    /// Reaction-span ordinal the next begin() will take. Serialized by the
    /// instance checkpoint so restored spans continue the saved numbering.
    [[nodiscard]] uint64_t seq() const { return seq_; }
    /// Reinstates counters and span numbering captured by a checkpoint. Any
    /// half-open span is abandoned (checkpoints are only taken between
    /// reactions, so there is never a legitimate one).
    void restore(const ProcessStats& stats, uint64_t seq) {
        stats_ = stats;
        seq_ = seq;
        open_ = false;
    }

  private:
    std::vector<Sink*> sinks_;
    bool spans_enabled_ = true;
    bool timing_enabled_ = true;
    bool open_ = false;
    uint64_t seq_ = 0;
    uint64_t t0_ns_ = 0;
    ReactionSpan span_;
    ReactionSpan last_;
    ProcessStats stats_;
};

/// Adapts a plain callable into a Sink — the bridge between the obs layer's
/// virtual-interface world and std::function subscribers. The serve layer
/// (and any embedder using host::Instance::add_span_sink) streams spans
/// through one of these without writing a Sink subclass.
class CallbackSink : public Sink {
  public:
    using Fn = std::function<void(const ReactionSpan&)>;
    explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}
    void on_reaction(const ReactionSpan& span) override {
        if (fn_) fn_(span);
    }

  private:
    Fn fn_;
};

/// Deterministic Chrome trace_event JSON writer. Byte-identical with the
/// writer cgen emits into compiled programs (trace_format.hpp is the single
/// source of truth for the record formats).
class ChromeTraceSink : public Sink {
  public:
    void on_reaction(const ReactionSpan& span) override;
    void finish(const ProcessStats& stats) override;

    /// The accumulated trace text. Complete (footer included) only after
    /// finish(); bytes so far otherwise.
    [[nodiscard]] const std::string& text() const { return out_; }

  private:
    void put_record(const char* rendered);
    std::string out_;
    bool header_done_ = false;
    bool first_record_ = true;
    bool finished_ = false;
};

/// Compact binary ring buffer: the newest `capacity` records, constant
/// memory, for embedded-style targets where a JSON stream is unaffordable.
/// Reaction begin/end are folded into the same 24-byte record shape as the
/// intra-reaction events.
class RingBufferSink : public Sink {
  public:
    struct Record {
        enum class Type : uint8_t { Begin, Wake, Emit, TimerFire, End };
        Type type;
        uint8_t kind;    // Begin: ReactionKind; End: end_status
        int32_t a;       // Begin: id; Wake/TimerFire: gate; Emit: event id
        int64_t b;       // Emit: depth; TimerFire: residual; End: result
        Micros ts;
    };
    static_assert(sizeof(Record) == 24, "ring records are fixed 24-byte cells");

    explicit RingBufferSink(size_t capacity);
    void on_reaction(const ReactionSpan& span) override;

    /// Records oldest-to-newest (at most `capacity`).
    [[nodiscard]] std::vector<Record> snapshot() const;
    [[nodiscard]] size_t dropped() const { return dropped_; }
    [[nodiscard]] size_t capacity() const { return ring_.size(); }

  private:
    void push(const Record& r);
    std::vector<Record> ring_;
    size_t head_ = 0;   // next write position
    size_t count_ = 0;  // live records (<= capacity)
    size_t dropped_ = 0;
};

}  // namespace ceu::obs
