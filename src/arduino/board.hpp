// Arduino board simulator (paper §3.2): bare-metal-style I/O — analog pins
// fed by scripted sources (modeling the ship demo's analog keypad,
// including bouncing), digital pins, and a virtual clock owned by the
// hosting driver.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "util/timeval.hpp"

namespace ceu::arduino {

class Board {
  public:
    static constexpr int kAnalogPins = 6;
    static constexpr int kDigitalPins = 14;

    /// Analog sources map the current time to a raw reading (0..1023).
    using AnalogSource = std::function<int64_t(Micros now)>;

    void set_analog_source(int pin, AnalogSource src) {
        analog_sources_[pin] = std::move(src);
    }

    [[nodiscard]] int64_t analog_read(int pin, Micros now) const {
        auto it = analog_sources_.find(pin);
        return it == analog_sources_.end() ? 0 : it->second(now);
    }

    void digital_write(int pin, bool level, Micros now) {
        digital_[pin] = level;
        digital_history_.push_back({now, pin, level});
    }
    [[nodiscard]] bool digital_read(int pin) const {
        auto it = digital_.find(pin);
        return it != digital_.end() && it->second;
    }

    struct DigitalEdge {
        Micros at;
        int pin;
        bool level;
    };
    [[nodiscard]] const std::vector<DigitalEdge>& digital_history() const {
        return digital_history_;
    }

    /// Helper: a keypad source that emits `raw` during [from, to) and the
    /// idle level elsewhere, with `bounce` microseconds of alternating
    /// noise at the edges (what the demo's 50ms double-read filters out).
    static AnalogSource keypad_press(int64_t raw, Micros from, Micros to,
                                     Micros bounce = 2 * kMs, int64_t idle = 1023);

    /// Combines sources: the last one returning a non-idle value wins.
    static AnalogSource combine(std::vector<AnalogSource> sources, int64_t idle = 1023);

  private:
    std::map<int, AnalogSource> analog_sources_;
    std::map<int, bool> digital_;
    std::vector<DigitalEdge> digital_history_;
};

}  // namespace ceu::arduino
