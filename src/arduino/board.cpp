#include "arduino/board.hpp"

namespace ceu::arduino {

Board::AnalogSource Board::keypad_press(int64_t raw, Micros from, Micros to,
                                        Micros bounce, int64_t idle) {
    return [=](Micros now) -> int64_t {
        if (now < from || now >= to) return idle;
        // Edge bounce: alternate between the key level and idle every 500us
        // within the bounce window — two reads 50ms apart see through it.
        bool near_edge = (now - from) < bounce || (to - now) < bounce;
        if (near_edge && ((now / 500) % 2 == 0)) return idle;
        return raw;
    };
}

Board::AnalogSource Board::combine(std::vector<AnalogSource> sources, int64_t idle) {
    return [sources = std::move(sources), idle](Micros now) -> int64_t {
        int64_t v = idle;
        for (const auto& s : sources) {
            int64_t r = s(now);
            if (r != idle) v = r;
        }
        return v;
    };
}

}  // namespace ceu::arduino
