// Two-row character LCD simulator (the ship demo's display).
#pragma once

#include <string>
#include <vector>

#include "util/timeval.hpp"

namespace ceu::arduino {

class Lcd {
  public:
    static constexpr int kRows = 2;
    static constexpr int kCols = 16;

    Lcd() { clear(); }

    void clear();
    void set_cursor(int col, int row);
    void write(char c);
    void print(const std::string& s);

    [[nodiscard]] char at(int row, int col) const {
        return grid_[static_cast<size_t>(row)][static_cast<size_t>(col)];
    }
    [[nodiscard]] std::string row(int r) const {
        return std::string(grid_[static_cast<size_t>(r)].begin(),
                           grid_[static_cast<size_t>(r)].end());
    }
    /// The full screen as two lines (test assertions, console rendering).
    [[nodiscard]] std::string render() const { return row(0) + "\n" + row(1); }

    /// Every full-screen snapshot taken via `snapshot()` (frame history).
    void snapshot(Micros at) { frames_.push_back({at, render()}); }
    struct Frame {
        Micros at;
        std::string screen;
    };
    [[nodiscard]] const std::vector<Frame>& frames() const { return frames_; }

    uint64_t writes = 0;

  private:
    std::vector<std::vector<char>> grid_;
    int cur_row_ = 0;
    int cur_col_ = 0;
    std::vector<Frame> frames_;
};

}  // namespace ceu::arduino
