#include "arduino/binding.hpp"

namespace ceu::arduino {

using rt::CBindings;
using rt::Engine;
using rt::Value;

CBindings make_arduino_bindings(Board& board, Lcd& lcd) {
    CBindings c;

    c.constant("KEY_NONE", kKeyNone);
    c.constant("KEY_UP", kKeyUp);
    c.constant("KEY_DOWN", kKeyDown);
    c.constant("HIGH", 1);
    c.constant("LOW", 0);

    c.fn("analogRead", [&board](Engine& eng, std::span<const Value> args) {
        int pin = args.empty() ? 0 : static_cast<int>(args[0].as_int());
        return Value::integer(board.analog_read(pin, eng.logical_now()));
    });

    c.fn("analog2key", [](Engine&, std::span<const Value> args) {
        int64_t raw = args.empty() ? kRawIdle : args[0].as_int();
        if (raw < (kRawUp + kRawDown) / 2) return Value::integer(kKeyUp);
        if (raw < (kRawDown + kRawIdle) / 2) return Value::integer(kKeyDown);
        return Value::integer(kKeyNone);
    });

    c.fn("digitalWrite", [&board](Engine& eng, std::span<const Value> args) {
        if (args.size() >= 2) {
            board.digital_write(static_cast<int>(args[0].as_int()),
                                args[1].truthy(), eng.logical_now());
        }
        return Value::integer(0);
    });

    c.fn("pinMode", [](Engine&, std::span<const Value>) { return Value::integer(0); });

    c.fn("lcd.setCursor", [&lcd](Engine&, std::span<const Value> args) {
        if (args.size() >= 2) {
            lcd.set_cursor(static_cast<int>(args[0].as_int()),
                           static_cast<int>(args[1].as_int()));
        }
        return Value::integer(0);
    });
    c.fn("lcd.write", [&lcd](Engine&, std::span<const Value> args) {
        if (!args.empty()) lcd.write(static_cast<char>(args[0].as_int()));
        return Value::integer(0);
    });
    c.fn("lcd.print", [&lcd](Engine&, std::span<const Value> args) {
        if (!args.empty()) {
            if (args[0].kind == Value::Kind::Str && args[0].s != nullptr) {
                lcd.print(args[0].s);
            } else {
                lcd.print(std::to_string(args[0].as_int()));
            }
        }
        return Value::integer(0);
    });
    c.fn("lcd.clear", [&lcd](Engine&, std::span<const Value>) {
        lcd.clear();
        return Value::integer(0);
    });

    return c;
}

}  // namespace ceu::arduino
