#include "arduino/lcd.hpp"

namespace ceu::arduino {

void Lcd::clear() {
    grid_.assign(kRows, std::vector<char>(kCols, ' '));
    cur_row_ = 0;
    cur_col_ = 0;
}

void Lcd::set_cursor(int col, int row) {
    cur_col_ = col < 0 ? 0 : (col >= kCols ? kCols - 1 : col);
    cur_row_ = row < 0 ? 0 : (row >= kRows ? kRows - 1 : row);
}

void Lcd::write(char c) {
    grid_[static_cast<size_t>(cur_row_)][static_cast<size_t>(cur_col_)] = c;
    ++writes;
    if (++cur_col_ >= kCols) {
        cur_col_ = 0;
        cur_row_ = (cur_row_ + 1) % kRows;
    }
}

void Lcd::print(const std::string& s) {
    for (char c : s) write(c);
}

}  // namespace ceu::arduino
