// C bindings exposing the Arduino board and LCD to Céu programs:
//   _analogRead(pin)            raw keypad reading at the current time
//   _analog2key(raw)            raw -> _KEY_NONE/_KEY_UP/_KEY_DOWN
//   _digitalWrite(pin, level)   drive a digital pin
//   _pinMode(pin, mode)         accepted, no-op in simulation
//   _lcd.setCursor(col,row), _lcd.write(ch), _lcd.print(str), _lcd.clear()
//   constants: _KEY_NONE, _KEY_UP, _KEY_DOWN, _HIGH, _LOW
#pragma once

#include "arduino/board.hpp"
#include "arduino/lcd.hpp"
#include "runtime/cbind.hpp"
#include "runtime/engine.hpp"

namespace ceu::arduino {

// Raw analog levels of the (simulated) keypad ladder.
constexpr int64_t kRawIdle = 1023;
constexpr int64_t kRawUp = 100;
constexpr int64_t kRawDown = 300;

constexpr int64_t kKeyNone = 0;
constexpr int64_t kKeyUp = 1;
constexpr int64_t kKeyDown = 2;

/// Builds bindings over `board` and `lcd` (both must outlive the engine).
rt::CBindings make_arduino_bindings(Board& board, Lcd& lcd);

}  // namespace ceu::arduino
