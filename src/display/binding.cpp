#include "display/binding.hpp"

namespace ceu::display {

using rt::CBindings;
using rt::Engine;
using rt::Value;

CBindings make_sdl_bindings(Display& disp) {
    CBindings c;

    c.constant("SDL_KEYDOWN", kEventKeyDown);

    c.fn("SDL_PollEvent", [&disp](Engine&, std::span<const Value> args) {
        int64_t e = disp.poll_event();
        if (!args.empty() && args[0].is_ptr() && args[0].p != nullptr) {
            *args[0].p = e;
        }
        return Value::integer(e == kEventNone ? 0 : 1);
    });

    // `event.type` on a `_SDL_Event event` variable: the slot holds the
    // event code written by SDL_PollEvent.
    c.fn("SDL_Event.type", [](Engine&, std::span<const Value> args) {
        if (!args.empty() && args[0].is_ptr() && args[0].p != nullptr) {
            return Value::integer(*args[0].p);
        }
        return Value::integer(kEventNone);
    });

    c.fn("SDL_Delay", [&disp](Engine&, std::span<const Value> args) {
        // SDL_Delay takes milliseconds.
        disp.delay((args.empty() ? 0 : args[0].as_int()) * kMs);
        return Value::integer(0);
    });

    c.fn("redraw", [&disp](Engine&, std::span<const Value> args) {
        Display::Scene s{0, 0, 0, 0};
        if (args.size() >= 4) {
            s = {args[0].as_int(), args[1].as_int(), args[2].as_int(),
                 args[3].as_int()};
        }
        disp.redraw(s);
        return Value::integer(0);
    });

    c.fn("redraw_on", [&disp](Engine&, std::span<const Value> args) {
        disp.set_redraw(args.empty() || args[0].truthy());
        return Value::integer(0);
    });

    return c;
}

}  // namespace ceu::display
