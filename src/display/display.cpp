// Display is header-only; this TU anchors the module.
#include "display/display.hpp"

namespace ceu::display {
static_assert(kEventKeyDown != kEventNone);
}  // namespace ceu::display
