// C bindings exposing the display to Céu programs, SDL-flavored:
//   _SDL_PollEvent(&event)  pops one pending event into `event`; 1 if any
//   event.type              field accessor for `_SDL_Event event` variables
//   _SDL_KEYDOWN            event-type constant
//   _SDL_Delay(ms)          virtual delay
//   _redraw(mx,my,tx,ty)    draws a scene (honors _redraw_on)
//   _redraw_on(flag)        toggles drawing (backwards replay)
#pragma once

#include "display/display.hpp"
#include "runtime/cbind.hpp"
#include "runtime/engine.hpp"

namespace ceu::display {

/// `disp` must outlive the engine.
rt::CBindings make_sdl_bindings(Display& disp);

}  // namespace ceu::display
