// SDL-like display/input simulator (paper §3.3, the Mario demo): a polled
// key-event queue, a delay call, and a scene whose redraws can be switched
// off — exactly what the backwards-replay trick needs.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "util/timeval.hpp"

namespace ceu::display {

constexpr int64_t kEventNone = 0;
constexpr int64_t kEventKeyDown = 2;  // matches the demo's _SDL_KEYDOWN use

class Display {
  public:
    // -- input -----------------------------------------------------------------

    /// Scripted key press: becomes visible to poll_event() in FIFO order.
    void push_key() { pending_keys_.push_back(kEventKeyDown); }
    [[nodiscard]] size_t pending() const { return pending_keys_.size(); }

    /// SDL_PollEvent: pops one pending event; returns kEventNone if empty.
    int64_t poll_event() {
        if (pending_keys_.empty()) return kEventNone;
        int64_t e = pending_keys_.front();
        pending_keys_.pop_front();
        return e;
    }

    // -- output ----------------------------------------------------------------

    void set_redraw(bool on) { redraw_on_ = on; }
    [[nodiscard]] bool redraw_enabled() const { return redraw_on_; }

    struct Scene {
        int64_t mario_x, mario_y, turtle_x, turtle_y;
        bool operator==(const Scene&) const = default;
    };

    /// Records a frame iff redraws are enabled (backwards replay shows only
    /// the final scene of each re-execution). The last scene is remembered
    /// either way so `mark_frame` can surface it.
    void redraw(const Scene& s) {
        ++redraw_calls_;
        last_scene_ = s;
        if (redraw_on_) frames_.push_back(s);
    }

    /// Pushes the most recent scene into the frame history regardless of
    /// the redraw switch (the backwards-replay "show the final scene" hook).
    void mark_frame() { frames_.push_back(last_scene_); }
    [[nodiscard]] const Scene& last_scene() const { return last_scene_; }

    [[nodiscard]] const std::vector<Scene>& frames() const { return frames_; }
    [[nodiscard]] uint64_t redraw_calls() const { return redraw_calls_; }
    void clear_frames() { frames_.clear(); }

    /// SDL_Delay: virtual; accumulates so tests can assert pacing.
    void delay(Micros us) { delayed_ += us; }
    [[nodiscard]] Micros total_delay() const { return delayed_; }

  private:
    std::deque<int64_t> pending_keys_;
    Scene last_scene_{0, 0, 0, 0};
    bool redraw_on_ = true;
    std::vector<Scene> frames_;
    uint64_t redraw_calls_ = 0;
    Micros delayed_ = 0;
};

}  // namespace ceu::display
