// Runtime values. Céu's data model is deliberately small: integers (which
// also cover characters and booleans), pointers (into memory slots or host
// buffers exposed by C bindings), and string literals (passed to C calls).
#pragma once

#include <cstdint>
#include <string>

namespace ceu::rt {

struct Value {
    enum class Kind : uint8_t { Int, Ptr, Str };

    Kind kind = Kind::Int;
    int64_t i = 0;
    int64_t* p = nullptr;
    const char* s = nullptr;

    static Value integer(int64_t v) {
        Value x;
        x.kind = Kind::Int;
        x.i = v;
        return x;
    }
    static Value pointer(int64_t* ptr) {
        Value x;
        x.kind = Kind::Ptr;
        x.p = ptr;
        return x;
    }
    static Value str(const char* text) {
        Value x;
        x.kind = Kind::Str;
        x.s = text;
        return x;
    }

    [[nodiscard]] bool is_int() const { return kind == Kind::Int; }
    [[nodiscard]] bool is_ptr() const { return kind == Kind::Ptr; }

    /// Numeric view; pointers convert to their address (C semantics).
    [[nodiscard]] int64_t as_int() const {
        if (kind == Kind::Ptr) return reinterpret_cast<int64_t>(p);
        return i;
    }

    [[nodiscard]] bool truthy() const {
        switch (kind) {
            case Kind::Int: return i != 0;
            case Kind::Ptr: return p != nullptr;
            case Kind::Str: return s != nullptr;
        }
        return false;
    }

    [[nodiscard]] std::string str_repr() const {
        switch (kind) {
            case Kind::Int: return std::to_string(i);
            case Kind::Ptr: return p ? "<ptr>" : "null";
            case Kind::Str: return s ? std::string("\"") + s + "\"" : "\"\"";
        }
        return "?";
    }

    friend bool operator==(const Value& a, const Value& b) {
        if (a.kind != b.kind) return a.as_int() == b.as_int();
        switch (a.kind) {
            case Kind::Int: return a.i == b.i;
            case Kind::Ptr: return a.p == b.p;
            case Kind::Str: return a.s == b.s;
        }
        return false;
    }
};

}  // namespace ceu::rt
