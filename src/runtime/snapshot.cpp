// Engine checkpoint/restore: the versioned binary serialization behind
// host::Instance::save()/load() and the reactor's restart-from-checkpoint
// supervision policy.
//
// Scope. A snapshot captures the engine's complete *dynamic* state — the
// same set of members reset() clears, plus the clocks and lifetime counters
// reset() preserves. The *static* state (compiled program, bindings,
// options) is not serialized; instead the blob carries a structural
// fingerprint of the flat code and load() refuses blobs taken from a
// different program or under different scheduling options. A successful
// load therefore reproduces the saved engine exactly: every subsequent
// reaction — wakes, priorities, timer expiry order, async round-robin
// position — is byte-identical to the uninterrupted run.
//
// Values. Int is trivial. Str is serialized by content and rehydrated into
// an engine-owned string pool (AST literal addresses don't survive across
// processes; all consumers read content). Ptr is split three ways: null;
// *internal* (into the engine's own slot vector — the array-decay case) is
// rebased to a byte offset and relocated on load; *external* (host memory
// exposed by C bindings) is kept verbatim and documented as same-process
// only — a cross-process restore of a program holding live host pointers is
// the embedder's contract to avoid.
#include <algorithm>
#include <cstring>

#include "runtime/engine.hpp"
#include "runtime/snapshot.hpp"

namespace ceu::rt {

namespace {

constexpr char kMagic[8] = {'C', 'E', 'U', 'E', 'N', 'G', '0', '1'};

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(uint64_t& h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

void fnv_str(uint64_t& h, const std::string& s) {
    fnv(h, s.size());
    for (char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= kFnvPrime;
    }
}

// Value kind tags in the snapshot stream (never reorder: format v1).
enum : uint8_t {
    kValInt = 0,
    kValPtrNull = 1,
    kValPtrInternal = 2,   // byte offset into the slot vector
    kValPtrExternal = 3,   // raw address; same-process restores only
    kValStrNull = 4,
    kValStr = 5,           // by content, into the engine's string pool
};

}  // namespace

uint64_t program_fingerprint(const flat::CompiledProgram& cp) {
    const flat::FlatProgram& fp_ = cp.flat;
    const auto& cp_ = cp;
    uint64_t h = kFnvOffset;
    fnv(h, fp_.code.size());
    for (const flat::Instr& I : fp_.code) {
        fnv(h, static_cast<uint64_t>(I.op));
        fnv(h, static_cast<uint64_t>(static_cast<int64_t>(I.a)));
        fnv(h, static_cast<uint64_t>(static_cast<int64_t>(I.b)));
        fnv(h, static_cast<uint64_t>(I.us));
        fnv(h, I.loc.line);
        fnv(h, I.loc.col);
    }
    fnv(h, fp_.gates.size());
    for (const flat::GateInfo& g : fp_.gates) {
        fnv(h, static_cast<uint64_t>(g.kind));
        fnv(h, static_cast<uint64_t>(static_cast<int64_t>(g.event)));
        fnv(h, static_cast<uint64_t>(static_cast<int64_t>(g.cont)));
        fnv(h, static_cast<uint64_t>(g.us));
    }
    fnv(h, static_cast<uint64_t>(fp_.data_size));
    fnv(h, fp_.regions.size());
    fnv(h, fp_.pars.size());
    fnv(h, fp_.escapes.size());
    fnv(h, fp_.asyncs.size());
    for (const EventInfo& e : cp_.sema.inputs) fnv_str(h, e.name);
    for (const EventInfo& e : cp_.sema.internals) fnv_str(h, e.name);
    for (const EventInfo& e : cp_.sema.outputs) fnv_str(h, e.name);
    return h;
}

uint64_t Engine::program_fingerprint() const { return rt::program_fingerprint(cp_); }

// ---------------------------------------------------------------------------
// save
// ---------------------------------------------------------------------------

namespace {

void write_value(snap::ByteWriter& w, const Value& v, const std::vector<Value>& data) {
    switch (v.kind) {
        case Value::Kind::Int:
            w.u8(kValInt);
            w.i64(v.i);
            return;
        case Value::Kind::Ptr: {
            if (v.p == nullptr) {
                w.u8(kValPtrNull);
                return;
            }
            const char* base = reinterpret_cast<const char*>(data.data());
            const char* addr = reinterpret_cast<const char*>(v.p);
            size_t span = data.size() * sizeof(Value);
            if (addr >= base && addr < base + span) {
                w.u8(kValPtrInternal);
                w.u64(static_cast<uint64_t>(addr - base));
            } else {
                w.u8(kValPtrExternal);
                w.u64(reinterpret_cast<uint64_t>(v.p));
            }
            return;
        }
        case Value::Kind::Str:
            if (v.s == nullptr) {
                w.u8(kValStrNull);
            } else {
                w.u8(kValStr);
                w.str(v.s);
            }
            return;
    }
}

}  // namespace

void Engine::save(std::vector<uint8_t>& out) const {
    check_not_reentrant("save");
    snap::ByteWriter w(out);
    w.bytes(reinterpret_cast<const uint8_t*>(kMagic), sizeof kMagic);
    w.u64(program_fingerprint());
    // Scheduling options are part of the determinism contract: a blob saved
    // under Lifo tie-break must not silently restore into a Fifo engine.
    w.u8(static_cast<uint8_t>(opt_.tie_break));
    w.u8(static_cast<uint8_t>(opt_.internal_events));

    w.u8(static_cast<uint8_t>(status_code()));
    w.u8(fault_.has_value() ? 1 : 0);
    if (fault_.has_value()) {
        w.str(fault_->message);
        w.u32(fault_->loc.line);
        w.u32(fault_->loc.col);
        w.u64(fault_->at_reaction);
    }
    write_value(w, result_, data_);

    w.i64(now_);
    w.i64(logical_now_);
    w.u64(seq_);
    w.u64(reactions_);
    w.u64(instructions_);
    w.u64(max_reaction_);
    w.u64(queue_peak_);
    w.u64(binding_prng);
    w.i64(cur_prio_);
    w.u64(async_rr_);

    w.u32(static_cast<uint32_t>(data_.size()));
    for (const Value& v : data_) write_value(w, v, data_);

    w.u32(static_cast<uint32_t>(gate_active_.size()));
    w.bytes(gate_active_.data(), gate_active_.size());

    w.u32(static_cast<uint32_t>(queue_.size()));
    for (const Track& t : queue_) {
        w.i64(t.pc);
        w.i64(t.prio);
        w.u64(t.seq);
        write_value(w, t.wake, data_);
    }

    w.u32(static_cast<uint32_t>(stack_.size()));
    for (const EmitFrame& f : stack_) {
        w.i64(f.resume);
        w.i64(f.prio);
        w.u8(f.dead ? 1 : 0);
    }

    const std::vector<TimerWheel::Entry>& timers = timers_.entries();
    w.u32(static_cast<uint32_t>(timers.size()));
    for (const TimerWheel::Entry& e : timers) {
        w.i64(e.gate);
        w.i64(e.deadline);
        w.u64(e.seq);
    }
    w.u64(timers_.next_seq());

    w.u32(static_cast<uint32_t>(asyncs_.size()));
    for (const AsyncCtx& a : asyncs_) {
        w.i64(a.async_idx);
        w.i64(a.pc);
        w.u8(a.alive ? 1 : 0);
    }
}

// ---------------------------------------------------------------------------
// load
// ---------------------------------------------------------------------------

namespace {

/// Transient string storage while parsing: strings land in the pool first;
/// Values are only retargeted at it on commit (so a late parse error leaves
/// the engine untouched).
struct PendingValue {
    Value v;
    int64_t str_pool_idx = -1;   // >= 0: v.s comes from the pool
    int64_t ptr_offset = -1;     // >= 0: v.p is `offset` bytes into data_
};

PendingValue read_value(snap::ByteReader& r, size_t data_span,
                        std::deque<std::string>& pool) {
    PendingValue out;
    uint8_t tag = r.u8();
    switch (tag) {
        case kValInt:
            out.v = Value::integer(r.i64());
            return out;
        case kValPtrNull:
            out.v = Value::pointer(nullptr);
            return out;
        case kValPtrInternal: {
            uint64_t off = r.u64();
            if (off >= data_span) {
                throw snap::SnapshotError("internal pointer offset out of range");
            }
            out.v = Value::pointer(nullptr);
            out.ptr_offset = static_cast<int64_t>(off);
            return out;
        }
        case kValPtrExternal:
            out.v = Value::pointer(reinterpret_cast<int64_t*>(r.u64()));
            return out;
        case kValStrNull:
            out.v = Value::str(nullptr);
            return out;
        case kValStr:
            pool.push_back(r.str());
            out.v = Value::str(nullptr);
            out.str_pool_idx = static_cast<int64_t>(pool.size()) - 1;
            return out;
        default:
            throw snap::SnapshotError("unknown value tag " + std::to_string(tag));
    }
}

}  // namespace

void Engine::load(const uint8_t* data, size_t size) {
    check_not_reentrant("load");
    snap::ByteReader r(data, size);

    uint8_t magic[sizeof kMagic];
    for (uint8_t& b : magic) b = r.u8();
    if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
        throw snap::SnapshotError("bad magic (not a CEUENG01 engine snapshot)");
    }
    if (r.u64() != program_fingerprint()) {
        throw snap::SnapshotError("program fingerprint mismatch (snapshot was "
                                  "taken from a different program)");
    }
    if (r.u8() != static_cast<uint8_t>(opt_.tie_break) ||
        r.u8() != static_cast<uint8_t>(opt_.internal_events)) {
        throw snap::SnapshotError("scheduling options differ from the saving engine");
    }

    // Parse everything into temporaries first: the engine is only mutated
    // after the whole blob has validated.
    uint8_t status_byte = r.u8();
    if (status_byte > 3) throw snap::SnapshotError("bad status byte");
    std::optional<FaultInfo> fault;
    if (r.u8() != 0) {
        FaultInfo fi;
        fi.message = r.str();
        fi.loc.line = r.u32();
        fi.loc.col = r.u32();
        fi.at_reaction = r.u64();
        fault = std::move(fi);
    }

    const size_t data_span = data_.size() * sizeof(Value);
    std::deque<std::string> pool;
    PendingValue result = read_value(r, data_span, pool);

    Micros now = r.i64();
    Micros logical_now = r.i64();
    uint64_t seq = r.u64();
    uint64_t reactions = r.u64();
    uint64_t instructions = r.u64();
    uint64_t max_reaction = r.u64();
    uint64_t queue_peak = r.u64();
    uint64_t prng = r.u64();
    int64_t cur_prio = r.i64();
    uint64_t async_rr = r.u64();

    uint32_t n_data = r.count(1);
    if (n_data != data_.size()) {
        throw snap::SnapshotError("slot count mismatch");
    }
    std::vector<PendingValue> slots;
    slots.reserve(n_data);
    for (uint32_t i = 0; i < n_data; ++i) slots.push_back(read_value(r, data_span, pool));

    uint32_t n_gates = r.count(1);
    if (n_gates != gate_active_.size()) {
        throw snap::SnapshotError("gate count mismatch");
    }
    std::vector<uint8_t> gates(n_gates);
    for (uint32_t i = 0; i < n_gates; ++i) {
        uint8_t g = r.u8();
        if (g > 1) throw snap::SnapshotError("bad gate flag");
        gates[i] = g;
    }

    const int64_t code_size = static_cast<int64_t>(fp_.code.size());
    uint32_t n_queue = r.count(25);
    std::vector<Track> queue;
    std::vector<PendingValue> wakes;
    queue.reserve(n_queue);
    wakes.reserve(n_queue);
    for (uint32_t i = 0; i < n_queue; ++i) {
        Track t;
        int64_t pc = r.i64();
        if (pc < 0 || pc >= code_size) throw snap::SnapshotError("track pc out of range");
        t.pc = static_cast<flat::Pc>(pc);
        t.prio = static_cast<int>(r.i64());
        t.seq = r.u64();
        wakes.push_back(read_value(r, data_span, pool));
        queue.push_back(t);
    }

    uint32_t n_stack = r.count(17);
    std::vector<EmitFrame> stack;
    stack.reserve(n_stack);
    for (uint32_t i = 0; i < n_stack; ++i) {
        EmitFrame f;
        int64_t pc = r.i64();
        if (pc < 0 || pc >= code_size) {
            throw snap::SnapshotError("emit-frame pc out of range");
        }
        f.resume = static_cast<flat::Pc>(pc);
        f.prio = static_cast<int>(r.i64());
        f.dead = r.u8() != 0;
        stack.push_back(f);
    }

    uint32_t n_timers = r.count(24);
    std::vector<TimerWheel::Entry> timers;
    timers.reserve(n_timers);
    for (uint32_t i = 0; i < n_timers; ++i) {
        TimerWheel::Entry e;
        int64_t gate = r.i64();
        if (gate < 0 || static_cast<size_t>(gate) >= gate_active_.size()) {
            throw snap::SnapshotError("timer gate out of range");
        }
        e.gate = static_cast<TimerWheel::GateId>(gate);
        e.deadline = r.i64();
        e.seq = r.u64();
        timers.push_back(e);
    }
    uint64_t timer_seq = r.u64();

    uint32_t n_asyncs = r.count(17);
    std::vector<AsyncCtx> asyncs;
    asyncs.reserve(n_asyncs);
    for (uint32_t i = 0; i < n_asyncs; ++i) {
        AsyncCtx a;
        int64_t idx = r.i64();
        if (idx < 0 || static_cast<size_t>(idx) >= fp_.asyncs.size()) {
            throw snap::SnapshotError("async index out of range");
        }
        a.async_idx = static_cast<int>(idx);
        int64_t pc = r.i64();
        if (pc < 0 || pc >= code_size) throw snap::SnapshotError("async pc out of range");
        a.pc = static_cast<flat::Pc>(pc);
        a.alive = r.u8() != 0;
        asyncs.push_back(a);
    }
    if (!r.done()) {
        throw snap::SnapshotError("trailing bytes after engine state");
    }

    // -- commit (nothing below throws) ---------------------------------------

    snapshot_strings_ = std::move(pool);
    char* base = reinterpret_cast<char*>(data_.data());
    auto finalize = [&](PendingValue& pv) -> Value {
        if (pv.str_pool_idx >= 0) {
            pv.v.s = snapshot_strings_[static_cast<size_t>(pv.str_pool_idx)].c_str();
        }
        if (pv.ptr_offset >= 0) {
            pv.v.p = reinterpret_cast<int64_t*>(base + pv.ptr_offset);
        }
        return pv.v;
    };

    switch (status_byte) {
        case 0: status_ = Status::Loaded; break;
        case 1: status_ = Status::Running; break;
        case 2: status_ = Status::Terminated; break;
        case 3: status_ = Status::Faulted; break;
    }
    fault_ = std::move(fault);
    result_ = finalize(result);
    for (size_t i = 0; i < slots.size(); ++i) data_[i] = finalize(slots[i]);
    gate_active_ = std::move(gates);
    for (size_t i = 0; i < queue.size(); ++i) queue[i].wake = finalize(wakes[i]);
    queue_ = std::move(queue);
    stack_ = std::move(stack);
    // Re-apply the constructor's storage pooling: a freshly parsed vector
    // sized to its contents would grow on the next enqueue, and that
    // growth is observable (the recorder counts allocation events — a
    // restored run must report the same stats as an uninterrupted one).
    queue_.reserve(std::max<size_t>(8, fp_.gates.size() + 1));
    stack_.reserve(8);
    timers_.restore(std::move(timers), timer_seq);
    asyncs_ = std::move(asyncs);

    now_ = now;
    logical_now_ = logical_now;
    seq_ = seq;
    reactions_ = reactions;
    instructions_ = instructions;
    max_reaction_ = max_reaction;
    queue_peak_ = static_cast<size_t>(queue_peak);
    binding_prng = prng;
    cur_prio_ = static_cast<int>(cur_prio);
    async_rr_ = static_cast<size_t>(async_rr);
    in_reaction_ = false;
    reaction_instr_ = 0;
}

}  // namespace ceu::rt
