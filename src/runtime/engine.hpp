// The Céu reactive engine: executes a FlatProgram under the synchronous
// model of §2 and the implementation scheme of §4/§5.
//
// The external API mirrors the paper's four C entry points:
//   go_init()          boot reaction
//   go_event(id, v)    reaction to one external input event
//   go_time(now)       wall-clock advance; runs one reaction per expiring
//                      deadline group, with residual-delta compensation
//   go_async()         one round-robin slice of one asynchronous block
//
// A reaction chain drains a priority queue of *tracks* (continuation pcs).
// Freshly awakened tracks run at the highest priority; rejoin continuations
// (par/or, par/and, loop escapes) run at their construct's nesting depth —
// outer rejoins last (glitch avoidance, §4.1). Internal events use a stack:
// `emit` suspends the emitter until all awaiting trails completely react
// (§2.2). Trail destruction clears contiguous gate ranges (§4.3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "runtime/cbind.hpp"
#include "runtime/timerwheel.hpp"
#include "runtime/value.hpp"

namespace ceu::obs {
class Recorder;
}

namespace ceu::rt {

/// Raised on dynamic errors (unbound C symbol, bad dereference). The
/// temporal analysis cannot rule these out — they live behind the "C hat".
/// Carries the location and bare message separately so error paths
/// (env::Driver, the engine's fault trap) can report structured
/// diagnostics instead of a pre-formatted string.
class RuntimeError : public std::runtime_error {
  public:
    RuntimeError(SourceLoc loc, const std::string& msg)
        : std::runtime_error(loc.valid() ? loc.str() + ": " + msg : msg),
          loc_(loc),
          msg_(msg) {}

    [[nodiscard]] SourceLoc loc() const { return loc_; }
    [[nodiscard]] const std::string& message() const { return msg_; }

  private:
    SourceLoc loc_;
    std::string msg_;
};

/// Scheduling knobs. The defaults implement the paper's semantics; the
/// alternatives exist to *validate* the temporal analysis (a program the
/// DFA accepts must behave identically under any legal tie-break) and to
/// ablate the internal-event stack policy of §2.2.
struct EngineOptions {
    /// Order among same-priority tracks. Both are legal serializations of
    /// the unspecified scheduler order (§2).
    enum class TieBreak { Fifo, Lifo };
    TieBreak tie_break = TieBreak::Fifo;

    /// §2.2 ablation: Stack = the paper's policy (emitter halts until
    /// awaiting trails completely react); Queue = broadcast-and-continue
    /// (the emitter proceeds; awakened trails run later). The queue policy
    /// re-introduces dataflow cycles: mutual dependencies ping-pong forever
    /// inside one reaction.
    enum class InternalEvents { Stack, Queue };
    InternalEvents internal_events = InternalEvents::Stack;

    /// Safety net for unbounded reactions (only reachable via the Queue
    /// ablation or buggy C bindings): instruction budget per reaction.
    uint64_t reaction_budget = 50'000'000;

    /// Fault policy for dynamic errors (unbound C symbols, bad derefs,
    /// budget exhaustion). `false` preserves the historical behavior:
    /// RuntimeError propagates out of the go_* entry point. `true` makes
    /// environmental faults *recoverable*: the engine traps the error,
    /// abandons the reaction, moves to Status::Faulted, invokes `on_fault`,
    /// and can be returned to a bootable state with `reset()`.
    bool trap_faults = false;

    /// Runs the engine invariant checker after every reaction (stuck
    /// tracks, gate/timer consistency). Costs O(gates + timers) per
    /// reaction, so it defaults on only in debug builds; soak tests enable
    /// it explicitly.
    bool check_invariants =
#ifndef NDEBUG
        true;
#else
        false;
#endif
};

class Engine {
  public:
    enum class Status { Loaded, Running, Faulted, Terminated };
    using Options = EngineOptions;

    /// What went wrong when a trapped fault moved the engine to
    /// Status::Faulted.
    struct FaultInfo {
        std::string message;
        SourceLoc loc;
        uint64_t at_reaction = 0;  // value of reactions() when it tripped
    };

    /// `cp` and `bindings` must outlive the engine. The bindings are read-
    /// only to the engine, so one immutable set can be shared by a whole
    /// fleet of engines (binding closures that need per-engine state keep
    /// it on the engine — see `binding_prng`).
    Engine(const flat::CompiledProgram& cp, const CBindings& bindings,
           Options opt = Options());

    // -- the four-entry reactive API (paper §5) ------------------------------

    void go_init();
    void go_event(int event_id, Value v = Value::integer(0));
    /// Thin resolve-once wrapper over go_event: interns `name` to its dense
    /// EventId (O(1) against the sema index) and delivers by id. Returns
    /// false if the name is unknown. Hot paths should resolve once and
    /// call go_event directly.
    bool go_event_by_name(const std::string& name, Value v = Value::integer(0));
    void go_time(Micros now);
    /// Runs one slice of the current async (round-robin). Returns true if
    /// asynchronous work remains afterwards.
    bool go_async();

    /// Seeds the wall-clock of a not-yet-booted engine: the boot reaction
    /// (and every timer it arms) is stamped `t` instead of 0. go_time
    /// deliberately ignores pre-boot instants (a Loaded engine has no
    /// reactions to run), so late joiners in a fleet need this to boot at
    /// the fleet instant rather than at the epoch. Clocks never rewind;
    /// no-op unless Loaded.
    void set_boot_clock(Micros t) {
        if (status_ == Status::Loaded) now_ = std::max(now_, t);
    }

    /// Power-cycle: discards every piece of dynamic state — tracks, emit
    /// stack, timers, asyncs, gate flags, data slots — by the same
    /// clear-everything discipline §4.3 uses for trail destruction, and
    /// returns the engine to Status::Loaded so `go_init()` can boot it
    /// again. Wall-clock time (`now()`) persists: reboots don't travel
    /// back in time. Cumulative counters (reactions, instructions) persist
    /// too. Callable from Running, Faulted or Terminated.
    void reset();

    [[nodiscard]] bool has_async_work() const { return alive_asyncs() > 0; }
    [[nodiscard]] Status status() const { return status_; }
    [[nodiscard]] Value result() const { return result_; }
    /// Set while status() == Faulted; cleared by reset().
    [[nodiscard]] const std::optional<FaultInfo>& fault() const { return fault_; }
    [[nodiscard]] Micros now() const { return now_; }
    /// The timestamp attributed to the current reaction chain (§2.3): the
    /// expired deadline for timer reactions, the arrival instant for
    /// events. C bindings that model the physical world must use this, not
    /// `now()` — a late `go_time` batch serves several logical instants.
    [[nodiscard]] Micros logical_now() const { return logical_now_; }

    // -- checkpoint / restore (snapshot.cpp) ----------------------------------

    /// Serializes the complete dynamic state — status, data slots, gate
    /// flags, track queue, emit stack, armed timers (with their expiry
    /// sequence), asyncs, clocks and lifetime counters — as a versioned
    /// little-endian blob appended to `out`. Only callable between
    /// reactions (a mid-reaction engine has live C stack frames no byte
    /// format can capture). Str values are serialized by content; Ptr
    /// values into the engine's own slot vector are rebased to offsets
    /// (restorable anywhere), while pointers into host memory are kept
    /// verbatim and only survive a same-process restore.
    void save(std::vector<uint8_t>& out) const;

    /// Restores state previously captured by save(). The engine must have
    /// been constructed over a structurally identical program (validated
    /// via program_fingerprint()) with the same scheduling options; after
    /// a successful load the engine behaves byte-identically to the one
    /// that was saved. Throws snap::SnapshotError on any mismatch,
    /// truncation or corruption, leaving the engine untouched.
    void load(const uint8_t* data, size_t size);
    void load(const std::vector<uint8_t>& blob) { load(blob.data(), blob.size()); }

    /// FNV-1a hash of the flat code structure (instructions, gates, slot
    /// layout, event vocabularies). Two programs with equal fingerprints
    /// execute identically for snapshot purposes even when compiled in
    /// different processes — the cross-process restore contract.
    /// Delegates to the free rt::program_fingerprint below.
    [[nodiscard]] uint64_t program_fingerprint() const;

    // -- introspection (tests, benches) ---------------------------------------

    [[nodiscard]] int active_gate_count() const;
    [[nodiscard]] uint64_t reactions() const { return reactions_; }
    [[nodiscard]] uint64_t instructions_executed() const { return instructions_; }
    /// Largest reaction chain observed, in instructions — the §2.5 bounded-
    /// execution property made measurable.
    [[nodiscard]] uint64_t max_reaction_instructions() const { return max_reaction_; }
    [[nodiscard]] size_t pending_timers() const { return timers_.size(); }
    /// Earliest armed wall-clock deadline, or -1 if no timer is pending.
    [[nodiscard]] Micros next_timer_deadline() const {
        return timers_.empty() ? -1 : timers_.next_deadline();
    }
    [[nodiscard]] const std::vector<Value>& data() const { return data_; }
    [[nodiscard]] Value slot(int s) const { return data_[static_cast<size_t>(s)]; }
    /// Value of a named program variable (outermost declaration wins).
    [[nodiscard]] std::optional<Value> var(const std::string& name) const;

    /// Most tracks ever queued at once — the trail high-water mark.
    [[nodiscard]] size_t queue_peak() const { return queue_peak_; }

    /// Attaches (or detaches, with nullptr) a reaction-span recorder. The
    /// recorder must outlive the engine or be detached first. When null —
    /// the default — every observability hook is one pointer test; this is
    /// the zero-overhead-when-off contract the obs tests assert.
    void set_recorder(obs::Recorder* rec) { obs_ = rec; }
    [[nodiscard]] obs::Recorder* recorder() const { return obs_; }

    /// Modeled RAM of the static runtime state, in bytes: the slot vector,
    /// gate flags, timer entries and track-queue capacity. Used by the
    /// Table 1 reproduction.
    [[nodiscard]] size_t ram_model_bytes() const;

    /// Engine self-checks, run after every reaction when
    /// options.check_invariants is on: no stuck tracks or live suspended
    /// emitters outside a reaction, every armed timer points at an active
    /// in-range gate, and a Running engine has something left to wake.
    /// Returns the list of violations (empty = healthy).
    [[nodiscard]] std::vector<std::string> verify_invariants() const;

    /// Trace hook: receives one line per `_trace`-style binding call; the
    /// env module wires `_printf` and friends into it.
    std::function<void(const std::string&)> on_trace;
    void trace(const std::string& line) {
        if (on_trace) on_trace(line);
    }

    /// Fault hook: invoked (if set) when a trapped fault moves the engine
    /// to Status::Faulted. The engine is safe to `reset()` from inside the
    /// hook's caller, but not from the hook itself (the reaction frame is
    /// still unwinding).
    std::function<void(const FaultInfo&)> on_fault;

    /// Per-engine PRNG state for the standard `_srand`/`_rand` bindings.
    /// Lives on the engine (not in the binding closure) so one immutable
    /// CBindings set can serve many engines without sharing generator
    /// state across instances. Survives reset()/power-cycles, matching the
    /// historical per-instance closure behavior.
    uint64_t binding_prng = 0x9e3779b97f4a7c15ULL;

  private:
    struct Track {
        flat::Pc pc = 0;
        int prio = flat::kNormalPrio;
        uint64_t seq = 0;
        Value wake = Value::integer(0);
    };
    struct EmitFrame {
        flat::Pc resume = 0;
        int prio = flat::kNormalPrio;
        bool dead = false;
    };
    struct AsyncCtx {
        int async_idx = -1;
        flat::Pc pc = 0;
        bool alive = true;
    };

    /// Either a slot lvalue (full Value) or a raw host int64 lvalue, or an
    /// indexed C array.
    struct LRef {
        enum class Kind { Slot, Raw, CArray, CGlobal } kind = Kind::Slot;
        Value* slot = nullptr;
        int64_t* raw = nullptr;
        const CBindings::ArrayBinding* arr = nullptr;
        std::vector<int64_t> indices;
        SourceLoc loc;
    };

    const flat::CompiledProgram& cp_;
    const flat::FlatProgram& fp_;
    const CBindings& c_;
    Options opt_;
    uint64_t reaction_instr_ = 0;  // instructions in the current reaction
    uint64_t max_reaction_ = 0;
    bool in_reaction_ = false;

    Status status_ = Status::Loaded;
    std::optional<FaultInfo> fault_;
    Value result_ = Value::integer(0);
    std::vector<Value> data_;
    std::vector<uint8_t> gate_active_;
    std::vector<Track> queue_;   // priority queue (max prio, then FIFO)
    std::vector<EmitFrame> stack_;
    TimerWheel timers_;
    std::vector<AsyncCtx> asyncs_;
    size_t async_rr_ = 0;

    /// Backing store for Str values rehydrated from a snapshot: the source
    /// blob serializes strings by content, and restored Values point here
    /// (AST literal pointers don't survive across processes). A deque so
    /// c_str() stays stable as later strings arrive. Cleared on reset().
    std::deque<std::string> snapshot_strings_;

    // Pooled hot-path scratch: gate snapshots taken while firing events /
    // timers. Reused across reactions so steady-state delivery allocates
    // nothing. Two buffers because a timer batch (expired_scratch_) runs
    // reactions that may themselves snapshot emit targets (firing_scratch_).
    std::vector<int> firing_scratch_;
    std::vector<int> expired_scratch_;

    Micros now_ = 0;          // latest wall-clock timestamp seen
    Micros logical_now_ = 0;  // timestamp attributed to the current reaction
    uint64_t seq_ = 0;
    uint64_t reactions_ = 0;
    uint64_t instructions_ = 0;
    int cur_prio_ = flat::kNormalPrio;
    size_t queue_peak_ = 0;
    obs::Recorder* obs_ = nullptr;

    // -- scheduling -----------------------------------------------------------

    void enqueue(flat::Pc pc, int prio, Value wake = Value::integer(0));
    bool queue_empty() const { return queue_.empty(); }
    Track pop_track();
    void run_reaction();
    void run_reaction_impl();
    void enter_fault(const RuntimeError& e);
    void check_invariants() const;
    void wake_gate(int gate, Value v);
    void exec(Track t);
    void exec_async(AsyncCtx& ctx);
    void kill_region(int region_idx);
    void check_termination();
    void check_not_reentrant(const char* api) const;
    [[nodiscard]] int status_code() const;
    [[nodiscard]] size_t alive_asyncs() const;

    // -- expression evaluation --------------------------------------------------

    Value eval(const ast::Expr& e);
    LRef lvalue(const ast::Expr& e);
    void store(const LRef& ref, Value v);
    Value call_c(const ast::CallExpr& call);
    std::string callee_name(const ast::Expr& fn, Value* self, bool* has_self);
};

/// Structural fingerprint of a compiled program, engine-independent: the
/// same hash Engine::program_fingerprint() reports, so cgen can bake it
/// into AOT descriptors and loaders can validate a `.so` against the
/// program it claims to implement.
[[nodiscard]] uint64_t program_fingerprint(const flat::CompiledProgram& cp);

}  // namespace ceu::rt
