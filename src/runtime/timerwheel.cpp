#include "runtime/timerwheel.hpp"

#include <algorithm>
#include <limits>

namespace ceu::rt {

void TimerWheel::disarm_range(GateId lo, GateId hi) {
    std::erase_if(entries_, [lo, hi](const Entry& e) {
        return e.gate >= lo && e.gate < hi;
    });
}

Micros TimerWheel::next_deadline() const {
    Micros best = std::numeric_limits<Micros>::max();
    for (const Entry& e : entries_) best = std::min(best, e.deadline);
    return best;
}

std::vector<TimerWheel::GateId> TimerWheel::armed_gates() const {
    std::vector<GateId> gates;
    gates.reserve(entries_.size());
    for (const Entry& e : entries_) gates.push_back(e.gate);
    return gates;
}

std::vector<TimerWheel::GateId> TimerWheel::pop_expired(Micros now, Micros* fired_deadline) {
    std::vector<GateId> gates;
    pop_expired_into(now, fired_deadline, gates);
    return gates;
}

bool TimerWheel::pop_expired_into(Micros now, Micros* fired_deadline,
                                  std::vector<GateId>& out) {
    out.clear();
    if (entries_.empty()) return false;
    Micros min = next_deadline();
    if (min > now) return false;

    std::erase_if(entries_, [&](const Entry& e) {
        if (e.deadline == min) {
            out.push_back(e.gate);
            return true;
        }
        return false;
    });
    // Trails awaking together are ordered by gate id, i.e. program order —
    // the same policy external events use when traversing gate lists.
    std::sort(out.begin(), out.end());
    if (fired_deadline != nullptr) *fired_deadline = min;
    return true;
}

}  // namespace ceu::rt
