#include "runtime/engine.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"

namespace ceu::rt {

using flat::GateInfo;
using flat::Instr;
using flat::IOp;
using flat::kNormalPrio;
using flat::Pc;

Engine::Engine(const flat::CompiledProgram& cp, const CBindings& bindings, Options opt)
    : cp_(cp), fp_(cp.flat), c_(bindings), opt_(opt) {
    data_.assign(static_cast<size_t>(fp_.data_size), Value::integer(0));
    gate_active_.assign(fp_.gates.size(), 0);
    // Pool the track/emit-frame storage up front: queue occupancy is
    // bounded by the program's static trail count (§4), so after this the
    // scheduler never allocates on a steady-state reaction path.
    queue_.reserve(std::max<size_t>(8, fp_.gates.size() + 1));
    stack_.reserve(8);
    firing_scratch_.reserve(std::max<size_t>(4, fp_.gates.size()));
    expired_scratch_.reserve(std::max<size_t>(4, fp_.gates.size()));
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void Engine::enqueue(Pc pc, int prio, Value wake) {
    if (obs_ != nullptr && queue_.size() == queue_.capacity()) {
        obs_->count_allocation();
    }
    queue_.push_back({pc, prio, seq_++, wake});
    queue_peak_ = std::max(queue_peak_, queue_.size());
    if (obs_ != nullptr) obs_->gauge_queue_depth(queue_.size());
}

Engine::Track Engine::pop_track() {
    // Highest priority first; FIFO among equals. Queues are tiny (paper §4:
    // sizes are statically bounded), so a linear scan is appropriate.
    // Selection depends only on (prio, seq) — seqs are unique — so the
    // vector's element order is irrelevant and the winner can be removed
    // with an O(1) swap-pop instead of an erase shift.
    const bool lifo = opt_.tie_break == Options::TieBreak::Lifo;
    size_t best = 0;
    for (size_t i = 1; i < queue_.size(); ++i) {
        bool tie = queue_[i].prio == queue_[best].prio;
        bool newer = queue_[i].seq > queue_[best].seq;
        if (queue_[i].prio > queue_[best].prio || (tie && (lifo ? newer : !newer))) {
            best = i;
        }
    }
    Track t = queue_[best];
    queue_[best] = queue_.back();
    queue_.pop_back();
    return t;
}

void Engine::wake_gate(int gate, Value v) {
    gate_active_[static_cast<size_t>(gate)] = 0;
    enqueue(fp_.gates[static_cast<size_t>(gate)].cont, kNormalPrio, v);
}

int Engine::status_code() const {
    switch (status_) {
        case Status::Loaded: return 0;
        case Status::Running: return 1;
        case Status::Terminated: return 2;
        case Status::Faulted: return 3;
    }
    return 0;
}

void Engine::run_reaction() {
    if (!opt_.trap_faults) {
        run_reaction_impl();
    } else {
        try {
            run_reaction_impl();
        } catch (const RuntimeError& e) {
            enter_fault(e);
        }
    }
    if (obs_ != nullptr) obs_->end(status_code(), result_.as_int(), reaction_instr_);
    if (opt_.check_invariants) check_invariants();
}

void Engine::run_reaction_impl() {
    // Drain tracks; when the queue is empty, resume the most recent
    // suspended emitter (stack policy for internal events, §2.2).
    //
    // The flag must drop even when a RuntimeError unwinds with trap_faults
    // off — otherwise the engine looks permanently mid-reaction and a later
    // reset() is rejected as reentrant, leaving armed timers stranded.
    struct ReactionFlag {
        bool& flag;
        explicit ReactionFlag(bool& f) : flag(f) { flag = true; }
        ~ReactionFlag() { flag = false; }
    } guard(in_reaction_);
    reaction_instr_ = 0;
    for (;;) {
        if (!queue_.empty()) {
            exec(pop_track());
        } else if (!stack_.empty()) {
            EmitFrame f = stack_.back();
            stack_.pop_back();
            if (f.dead) continue;
            exec({f.resume, f.prio, seq_++, Value::integer(0)});
        } else {
            break;
        }
    }
    max_reaction_ = std::max(max_reaction_, reaction_instr_);
    ++reactions_;
    check_termination();
}

void Engine::enter_fault(const RuntimeError& e) {
    // The reaction is abandoned: queued tracks and suspended emitters
    // belong to the instant that just failed, so they are dropped (gates
    // and timers stay — reset() is the path back to a clean program).
    in_reaction_ = false;
    max_reaction_ = std::max(max_reaction_, reaction_instr_);
    ++reactions_;
    queue_.clear();
    stack_.clear();
    status_ = Status::Faulted;
    fault_ = FaultInfo{e.message(), e.loc(), reactions_};
    if (on_fault) on_fault(*fault_);
}

void Engine::reset() {
    check_not_reentrant("reset");
    // §4.3 generalized to the whole program: deactivate every gate, disarm
    // every timer, drop queued tracks, suspended emitters and asyncs, and
    // zero the data slots — a reboot must find no residue of the old run.
    std::fill(gate_active_.begin(), gate_active_.end(), uint8_t{0});
    timers_.clear();
    queue_.clear();
    stack_.clear();
    asyncs_.clear();
    async_rr_ = 0;
    data_.assign(data_.size(), Value::integer(0));
    snapshot_strings_.clear();  // no Value can reference the pool anymore
    result_ = Value::integer(0);
    fault_.reset();
    logical_now_ = now_;  // wall-clock persists: reboots don't rewind time
    status_ = Status::Loaded;
}

std::vector<std::string> Engine::verify_invariants() const {
    std::vector<std::string> v;
    if (!in_reaction_) {
        if (!queue_.empty()) {
            v.push_back("stuck tracks: " + std::to_string(queue_.size()) +
                        " queued outside a reaction");
        }
        for (const EmitFrame& f : stack_) {
            if (!f.dead) {
                v.push_back("suspended emitter (pc " + std::to_string(f.resume) +
                            ") survived the reaction");
            }
        }
    }
    for (TimerWheel::GateId g : timers_.armed_gates()) {
        if (g < 0 || static_cast<size_t>(g) >= gate_active_.size()) {
            v.push_back("timer armed on out-of-range gate " + std::to_string(g));
        } else if (!gate_active_[static_cast<size_t>(g)]) {
            v.push_back("timer armed on inactive gate " + std::to_string(g));
        }
    }
    if (status_ == Status::Running && active_gate_count() == 0 && alive_asyncs() == 0) {
        v.push_back("running with no awaiting trails (termination missed)");
    }
    if (status_ == Status::Loaded &&
        (active_gate_count() != 0 || !timers_.empty() || !queue_.empty())) {
        v.push_back("loaded engine carries residual state");
    }
    return v;
}

void Engine::check_invariants() const {
    std::vector<std::string> v = verify_invariants();
    if (v.empty()) return;
    std::string all = "engine invariant violated";
    for (const std::string& s : v) all += "; " + s;
    // An invariant breach is an engine bug, not a program error: it must
    // not be trappable as an environmental fault.
    throw std::logic_error(all);
}

void Engine::check_termination() {
    if (status_ != Status::Running) return;
    for (uint8_t g : gate_active_) {
        if (g) return;
    }
    // "If there are no remaining awaiting trails, the program terminates."
    status_ = Status::Terminated;
}

size_t Engine::alive_asyncs() const {
    size_t n = 0;
    for (const AsyncCtx& a : asyncs_) {
        if (a.alive) ++n;
    }
    return n;
}

void Engine::check_not_reentrant(const char* api) const {
    if (in_reaction_) {
        // Paper §5: "a binding must never interleave or run multiple of
        // these functions in parallel. This would break the sequential/
        // discrete semantics of time."
        throw RuntimeError({}, std::string(api) +
                                   " called while a reaction chain is running "
                                   "(reentrant API use breaks discrete time)");
    }
}

int Engine::active_gate_count() const {
    int n = 0;
    for (uint8_t g : gate_active_) n += g;
    return n;
}

std::optional<Value> Engine::var(const std::string& name) const {
    for (size_t d = 0; d < cp_.sema.vars.size(); ++d) {
        if (cp_.sema.vars[d].name == name) {
            int s = fp_.var_slot[d];
            if (s >= 0) return data_[static_cast<size_t>(s)];
        }
    }
    return std::nullopt;
}

size_t Engine::ram_model_bytes() const {
    // A 16/32-bit-MCU-flavored model: 4 bytes per slot, 2 per gate (active
    // flag + list link), 6 per armed timer, plus fixed queue headers.
    return static_cast<size_t>(fp_.data_size) * 4 + fp_.gates.size() * 2 +
           timers_.size() * 6 + 32;
}

// ---------------------------------------------------------------------------
// The four-entry API
// ---------------------------------------------------------------------------

void Engine::go_init() {
    assert(status_ == Status::Loaded);
    status_ = Status::Running;
    logical_now_ = now_;
    if (obs_ != nullptr) obs_->begin(obs::ReactionKind::Boot, 0, "", logical_now_);
    enqueue(0, kNormalPrio);
    run_reaction();
}

void Engine::go_event(int event_id, Value v) {
    if (status_ != Status::Running) return;
    if (event_id < 0 || static_cast<size_t>(event_id) >= fp_.ext_gates.size()) return;
    check_not_reentrant("go_event");
    logical_now_ = now_;
    if (obs_ != nullptr) {
        obs_->begin(obs::ReactionKind::Event, event_id,
                    cp_.sema.inputs[static_cast<size_t>(event_id)].name.c_str(),
                    logical_now_);
    }
    // Snapshot: trails that re-await the same event during this reaction
    // must not see this occurrence again. The snapshot buffer is pooled —
    // it is fully consumed before run_reaction() can reuse it for emits.
    firing_scratch_.clear();
    for (int g : fp_.ext_gates[static_cast<size_t>(event_id)]) {
        if (gate_active_[static_cast<size_t>(g)]) firing_scratch_.push_back(g);
    }
    for (int g : firing_scratch_) {
        if (obs_ != nullptr) obs_->wake(g);
        wake_gate(g, v);
    }
    // Even a discarded occurrence is a (trivial) reaction chain.
    run_reaction();
}

bool Engine::go_event_by_name(const std::string& name, Value v) {
    int id = cp_.sema.input_id(name);
    if (id < 0) return false;
    go_event(id, v);
    return true;
}

void Engine::go_time(Micros now) {
    if (status_ != Status::Running) return;
    check_not_reentrant("go_time");
    now_ = std::max(now_, now);
    for (;;) {
        Micros fired = 0;
        if (!timers_.pop_expired_into(now_, &fired, expired_scratch_)) break;
        const std::vector<int>& gates = expired_scratch_;
        // The reaction is attributed the *deadline*, not the (possibly
        // late) wall-clock instant: residual deltas carry into timers armed
        // by the awakened code (§2.3).
        logical_now_ = fired;
        Micros delta = now_ - fired;
        if (obs_ != nullptr) {
            obs_->begin(obs::ReactionKind::Timer, static_cast<int>(gates.size()),
                        "", logical_now_);
        }
        for (int g : gates) {
            if (gate_active_[static_cast<size_t>(g)]) {
                if (obs_ != nullptr) {
                    obs_->timer_fire(g, delta);
                    obs_->wake(g);
                }
                wake_gate(g, Value::integer(delta));
            }
        }
        run_reaction();
        if (status_ != Status::Running) break;
    }
}

bool Engine::go_async() {
    if (status_ != Status::Running) return false;
    size_t n = asyncs_.size();
    for (size_t k = 0; k < n; ++k) {
        size_t i = (async_rr_ + k) % n;
        if (asyncs_[i].alive) {
            async_rr_ = i + 1;
            if (!opt_.trap_faults) {
                exec_async(asyncs_[i]);
            } else {
                // Faults raised by the async's own expressions are trapped
                // here; faults inside a nested go_event/go_time reaction
                // are already trapped by run_reaction and never rethrow.
                try {
                    exec_async(asyncs_[i]);
                } catch (const RuntimeError& e) {
                    enter_fault(e);
                }
            }
            return alive_asyncs() > 0 && status_ == Status::Running;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Trail destruction (paper §4.3)
// ---------------------------------------------------------------------------

void Engine::kill_region(int region_idx) {
    const flat::RegionInfo& r = fp_.regions[static_cast<size_t>(region_idx)];
    // Destroying a trail == deactivating its gates (a contiguous range).
    for (int g = r.gate_begin; g < r.gate_end; ++g) {
        gate_active_[static_cast<size_t>(g)] = 0;
    }
    timers_.disarm_range(r.gate_begin, r.gate_end);
    std::erase_if(queue_, [&](const Track& t) {
        return t.pc >= r.pc_begin && t.pc < r.pc_end;
    });
    for (EmitFrame& f : stack_) {
        if (f.resume >= r.pc_begin && f.resume < r.pc_end) f.dead = true;
    }
    for (AsyncCtx& a : asyncs_) {
        if (!a.alive) continue;
        int g = fp_.asyncs[static_cast<size_t>(a.async_idx)].gate;
        if (g >= r.gate_begin && g < r.gate_end) a.alive = false;
    }
}

// ---------------------------------------------------------------------------
// Track execution
// ---------------------------------------------------------------------------

void Engine::exec(Track t) {
    Pc pc = t.pc;
    cur_prio_ = t.prio;
    const Value wake = t.wake;
    for (;;) {
        const Instr& I = fp_.code[static_cast<size_t>(pc)];
        ++instructions_;
        if (++reaction_instr_ > opt_.reaction_budget) {
            throw RuntimeError(I.loc,
                               "reaction chain exceeded its instruction budget "
                               "(internal-event cycle under the Queue ablation, or "
                               "a looping C binding)");
        }
        switch (I.op) {
            case IOp::Nop:
                ++pc;
                break;
            case IOp::Eval:
                (void)eval(*I.e1);
                ++pc;
                break;
            case IOp::Assign:
                store(lvalue(*I.e1), eval(*I.e2));
                ++pc;
                break;
            case IOp::AssignWake:
                store(lvalue(*I.e1), wake);
                ++pc;
                break;
            case IOp::AssignSlot:
                store(lvalue(*I.e1), data_[static_cast<size_t>(I.b)]);
                ++pc;
                break;
            case IOp::IfNot:
                pc = eval(*I.e1).truthy() ? pc + 1 : I.a;
                break;
            case IOp::Jump:
                pc = I.a;
                break;

            case IOp::AwaitExt:
            case IOp::AwaitInt:
            case IOp::AwaitForever:
                gate_active_[static_cast<size_t>(I.b)] = 1;
                return;
            case IOp::AwaitTime: {
                gate_active_[static_cast<size_t>(I.b)] = 1;
                timers_.arm(I.b, logical_now_ + I.us);
                if (obs_ != nullptr) obs_->gauge_timer_count(timers_.size());
                return;
            }
            case IOp::AwaitDyn: {
                Micros dur = eval(*I.e1).as_int();
                gate_active_[static_cast<size_t>(I.b)] = 1;
                timers_.arm(I.b, logical_now_ + dur);
                if (obs_ != nullptr) obs_->gauge_timer_count(timers_.size());
                return;
            }

            case IOp::EmitInt: {
                Value v = I.e1 ? eval(*I.e1) : Value::integer(0);
                // Pooled snapshot buffer: consumed completely below, before
                // any other emit or event delivery can refill it.
                std::vector<int>& firing = firing_scratch_;
                firing.clear();
                for (int g : fp_.int_gates[static_cast<size_t>(I.a)]) {
                    if (gate_active_[static_cast<size_t>(g)]) firing.push_back(g);
                }
                if (firing.empty()) {
                    ++pc;  // no awaiting trails: the event is discarded
                    break;
                }
                if (opt_.internal_events == Options::InternalEvents::Queue) {
                    // Ablation: broadcast-and-continue. The emitter keeps
                    // running; awakened trails are merely enqueued.
                    if (obs_ != nullptr) {
                        obs_->emit(I.a, static_cast<int>(stack_.size()));
                    }
                    for (int g : firing) {
                        if (obs_ != nullptr) obs_->wake(g);
                        wake_gate(g, v);
                    }
                    ++pc;
                    break;
                }
                // Stack policy (§2.2): the emitter halts until every
                // awaiting trail completely reacts.
                stack_.push_back({pc + 1, cur_prio_, false});
                if (obs_ != nullptr) obs_->emit(I.a, static_cast<int>(stack_.size()));
                for (int g : firing) {
                    if (obs_ != nullptr) obs_->wake(g);
                    wake_gate(g, v);
                }
                return;
            }

            case IOp::ParSpawn: {
                const flat::ParInfo& par = fp_.pars[static_cast<size_t>(I.a)];
                if (par.counter_slot >= 0) {
                    data_[static_cast<size_t>(par.counter_slot)] =
                        Value::integer(static_cast<int64_t>(par.branches.size()));
                }
                data_[static_cast<size_t>(par.sched_slot)] = Value::integer(0);
                for (Pc b : par.branches) enqueue(b, kNormalPrio);
                return;
            }

            case IOp::BranchEnd: {
                const flat::ParInfo& par = fp_.pars[static_cast<size_t>(I.a)];
                switch (par.kind) {
                    case ast::ParKind::Par:
                        return;  // never rejoins; the trail halts forever
                    case ast::ParKind::ParAnd: {
                        Value& cnt = data_[static_cast<size_t>(par.counter_slot)];
                        cnt = Value::integer(cnt.i - 1);
                        if (cnt.i > 0) return;
                        break;  // all branches done: fall through to schedule
                    }
                    case ast::ParKind::ParOr:
                        break;
                }
                Value& sched = data_[static_cast<size_t>(par.sched_slot)];
                if (sched.truthy()) return;  // rejoin already scheduled
                sched = Value::integer(1);
                enqueue(par.cont, par.prio);
                return;
            }

            case IOp::KillRegion:
                kill_region(I.a);
                ++pc;
                break;

            case IOp::Escape: {
                const flat::EscapeInfo& esc = fp_.escapes[static_cast<size_t>(I.a)];
                Value& sched = data_[static_cast<size_t>(esc.sched_slot)];
                if (sched.truthy()) return;  // a sibling escaped first
                sched = Value::integer(1);
                if (esc.result_slot >= 0) {
                    data_[static_cast<size_t>(esc.result_slot)] =
                        I.e1 ? eval(*I.e1) : Value::integer(0);
                }
                enqueue(esc.cont, esc.prio);
                return;
            }

            case IOp::ClearSlot:
                data_[static_cast<size_t>(I.b)] = Value::integer(0);
                ++pc;
                break;
            case IOp::Once: {
                Value& flag = data_[static_cast<size_t>(I.b)];
                if (flag.truthy()) return;
                flag = Value::integer(1);
                ++pc;
                break;
            }

            case IOp::ProgReturn:
                result_ = I.e1 ? eval(*I.e1) : Value::integer(0);
                status_ = Status::Terminated;
                queue_.clear();
                stack_.clear();
                timers_.clear();
                return;

            case IOp::AsyncRun: {
                const flat::AsyncInfo& ai = fp_.asyncs[static_cast<size_t>(I.a)];
                gate_active_[static_cast<size_t>(I.b)] = 1;
                asyncs_.push_back({I.a, ai.begin, true});
                return;
            }

            case IOp::EmitOutput: {
                // Extension: notify the environment through the registered
                // handler; unhandled outputs are traced and dropped.
                Value v = I.e1 ? eval(*I.e1) : Value::integer(0);
                const std::string& name =
                    cp_.sema.outputs[static_cast<size_t>(I.a)].name;
                if (const CBindings::OutputFn* f = c_.find_output(name)) {
                    (*f)(*this, v);
                } else {
                    trace("output " + name + " = " + v.str_repr());
                }
                ++pc;
                break;
            }

            case IOp::AsyncYield:
            case IOp::AsyncEnd:
            case IOp::EmitExtAsync:
            case IOp::EmitTimeAsync:
                throw RuntimeError(I.loc, "asynchronous instruction reached by a "
                                          "synchronous trail (compiler bug)");

            case IOp::Halt:
                return;
        }
    }
}

// ---------------------------------------------------------------------------
// Asynchronous execution (paper §2.7/§2.8)
// ---------------------------------------------------------------------------

void Engine::exec_async(AsyncCtx& ctx) {
    for (;;) {
        if (!ctx.alive || status_ != Status::Running) return;
        const Instr& I = fp_.code[static_cast<size_t>(ctx.pc)];
        ++instructions_;
        switch (I.op) {
            case IOp::Nop:
            case IOp::ClearSlot:
                if (I.op == IOp::ClearSlot) {
                    data_[static_cast<size_t>(I.b)] = Value::integer(0);
                }
                ++ctx.pc;
                break;
            case IOp::Eval:
                (void)eval(*I.e1);
                ++ctx.pc;
                break;
            case IOp::Assign:
                store(lvalue(*I.e1), eval(*I.e2));
                ++ctx.pc;
                break;
            case IOp::IfNot:
                ctx.pc = eval(*I.e1).truthy() ? ctx.pc + 1 : I.a;
                break;
            case IOp::Jump:
                ctx.pc = I.a;
                break;
            case IOp::AsyncYield:
                // End of one go_async slice ("a single loop iteration", §5).
                ++ctx.pc;
                return;
            case IOp::EmitExtAsync: {
                // Input events emitted by asyncs take the same path as real
                // ones; synchronous code has priority, so the reaction runs
                // now and the async yields (§2.8 walkthrough).
                Value v = I.e1 ? eval(*I.e1) : Value::integer(0);
                ++ctx.pc;
                go_event(I.a, v);
                return;
            }
            case IOp::EmitTimeAsync: {
                ++ctx.pc;
                go_time(now_ + I.us);
                return;
            }
            case IOp::AsyncEnd: {
                Value v = I.e1 ? eval(*I.e1) : Value::integer(0);
                ctx.alive = false;
                int g = fp_.asyncs[static_cast<size_t>(I.a)].gate;
                if (gate_active_[static_cast<size_t>(g)]) {
                    if (obs_ != nullptr) {
                        obs_->begin(obs::ReactionKind::Async, I.a, "", logical_now_);
                        obs_->wake(g);
                    }
                    wake_gate(g, v);
                    run_reaction();
                }
                return;
            }
            default:
                throw RuntimeError(I.loc,
                                   "synchronous instruction inside an async block "
                                   "(compiler bug)");
        }
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

namespace {
int64_t apply_binop(Tok op, int64_t a, int64_t b, SourceLoc loc) {
    switch (op) {
        case Tok::OrOr: return (a != 0 || b != 0) ? 1 : 0;
        case Tok::AndAnd: return (a != 0 && b != 0) ? 1 : 0;
        case Tok::Or: return a | b;
        case Tok::Xor: return a ^ b;
        case Tok::And: return a & b;
        case Tok::Ne: return a != b ? 1 : 0;
        case Tok::EqEq: return a == b ? 1 : 0;
        case Tok::Le: return a <= b ? 1 : 0;
        case Tok::Ge: return a >= b ? 1 : 0;
        case Tok::Lt: return a < b ? 1 : 0;
        case Tok::Gt: return a > b ? 1 : 0;
        case Tok::Shl: return a << b;
        case Tok::Shr: return a >> b;
        case Tok::Plus: return a + b;
        case Tok::Minus: return a - b;
        case Tok::Star: return a * b;
        case Tok::Slash:
            if (b == 0) throw RuntimeError(loc, "division by zero");
            return a / b;
        case Tok::Percent:
            if (b == 0) throw RuntimeError(loc, "modulo by zero");
            return a % b;
        default:
            throw RuntimeError(loc, "unsupported binary operator");
    }
}
}  // namespace

Value Engine::eval(const ast::Expr& e) {
    using ast::ExprKind;
    switch (e.kind) {
        case ExprKind::Num:
            return Value::integer(static_cast<const ast::NumExpr&>(e).value);
        case ExprKind::Str:
            return Value::str(static_cast<const ast::StrExpr&>(e).value.c_str());
        case ExprKind::Null:
            return Value::pointer(nullptr);

        case ExprKind::Var: {
            const auto& n = static_cast<const ast::VarExpr&>(e);
            if (n.decl_id < 0) throw RuntimeError(e.loc, "unresolved variable");
            int slot = fp_.var_slot[static_cast<size_t>(n.decl_id)];
            const VarInfo& vi = cp_.sema.vars[static_cast<size_t>(n.decl_id)];
            if (vi.array_size > 0) {
                // Arrays decay to a pointer to their first element.
                return Value::pointer(&data_[static_cast<size_t>(slot)].i);
            }
            return data_[static_cast<size_t>(slot)];
        }

        case ExprKind::CSym: {
            const auto& n = static_cast<const ast::CSymExpr&>(e);
            if (int64_t* g = c_.find_global(n.name)) return Value::integer(*g);
            Value v;
            if (c_.get_constant(n.name, &v)) return v;
            throw RuntimeError(e.loc, "unbound C symbol '_" + n.name + "'");
        }

        case ExprKind::Unop: {
            const auto& n = static_cast<const ast::UnopExpr&>(e);
            switch (n.op) {
                case Tok::Not: return Value::integer(eval(*n.sub).truthy() ? 0 : 1);
                case Tok::Tilde: return Value::integer(~eval(*n.sub).as_int());
                case Tok::Minus: return Value::integer(-eval(*n.sub).as_int());
                case Tok::Plus: return eval(*n.sub);
                case Tok::Star: {
                    Value v = eval(*n.sub);
                    if (!v.is_ptr() || v.p == nullptr) {
                        throw RuntimeError(e.loc, "dereference of a non-pointer");
                    }
                    return Value::integer(*v.p);
                }
                case Tok::And: {
                    LRef ref = lvalue(*n.sub);
                    switch (ref.kind) {
                        case LRef::Kind::Slot: return Value::pointer(&ref.slot->i);
                        case LRef::Kind::Raw:
                        case LRef::Kind::CGlobal: return Value::pointer(ref.raw);
                        case LRef::Kind::CArray:
                            throw RuntimeError(e.loc,
                                               "cannot take the address of a C array "
                                               "element binding");
                    }
                    return Value::pointer(nullptr);
                }
                default:
                    throw RuntimeError(e.loc, "unsupported unary operator");
            }
        }

        case ExprKind::Binop: {
            const auto& n = static_cast<const ast::BinopExpr&>(e);
            // Short-circuit like C.
            if (n.op == Tok::AndAnd) {
                if (!eval(*n.lhs).truthy()) return Value::integer(0);
                return Value::integer(eval(*n.rhs).truthy() ? 1 : 0);
            }
            if (n.op == Tok::OrOr) {
                if (eval(*n.lhs).truthy()) return Value::integer(1);
                return Value::integer(eval(*n.rhs).truthy() ? 1 : 0);
            }
            Value a = eval(*n.lhs);
            Value b = eval(*n.rhs);
            return Value::integer(apply_binop(n.op, a.as_int(), b.as_int(), e.loc));
        }

        case ExprKind::Index: {
            LRef ref = lvalue(e);
            switch (ref.kind) {
                case LRef::Kind::Slot: return *ref.slot;
                case LRef::Kind::Raw:
                case LRef::Kind::CGlobal: return Value::integer(*ref.raw);
                case LRef::Kind::CArray: return ref.arr->get(ref.indices);
            }
            return Value::integer(0);
        }

        case ExprKind::Call:
            return call_c(static_cast<const ast::CallExpr&>(e));

        case ExprKind::Cast:
            return eval(*static_cast<const ast::CastExpr&>(e).sub);

        case ExprKind::SizeOf: {
            const auto& n = static_cast<const ast::SizeOfExpr&>(e);
            return Value::integer(n.type.pointer_depth > 0 ? 8 : 4);
        }

        case ExprKind::Field: {
            const auto& n = static_cast<const ast::FieldExpr&>(e);
            Value self;
            bool has_self = false;
            std::string name = callee_name(e, &self, &has_self);
            if (const CBindings::Fn* f = c_.find_fn(name)) {
                if (has_self) {
                    Value args[1] = {self};
                    return (*f)(*this, std::span<const Value>(args, 1));
                }
                return (*f)(*this, {});
            }
            (void)n;
            throw RuntimeError(e.loc, "unbound C field accessor '" + name + "'");
        }
    }
    throw RuntimeError(e.loc, "unsupported expression");
}

std::string Engine::callee_name(const ast::Expr& fn, Value* self, bool* has_self) {
    *has_self = false;
    using ast::ExprKind;
    if (fn.kind == ExprKind::CSym) {
        return static_cast<const ast::CSymExpr&>(fn).name;
    }
    if (fn.kind == ExprKind::Field) {
        const auto& f = static_cast<const ast::FieldExpr&>(fn);
        if (f.base->kind == ExprKind::CSym) {
            // `_lcd.setCursor(...)` -> key "lcd.setCursor"
            return static_cast<const ast::CSymExpr&>(*f.base).name + "." + f.field;
        }
        if (f.base->kind == ExprKind::Var) {
            // `event.type` on a C-typed variable -> key "SDL_Event.type",
            // with a pointer to the variable's slot as implicit argument.
            const auto& v = static_cast<const ast::VarExpr&>(*f.base);
            if (v.decl_id >= 0) {
                const VarInfo& vi = cp_.sema.vars[static_cast<size_t>(v.decl_id)];
                int slot = fp_.var_slot[static_cast<size_t>(v.decl_id)];
                *self = Value::pointer(&data_[static_cast<size_t>(slot)].i);
                *has_self = true;
                return vi.type.name + "." + f.field;
            }
        }
    }
    throw RuntimeError(fn.loc, "uncallable expression");
}

Value Engine::call_c(const ast::CallExpr& call) {
    Value self;
    bool has_self = false;
    std::string name = callee_name(*call.fn, &self, &has_self);
    const CBindings::Fn* f = c_.find_fn(name);
    if (f == nullptr) throw RuntimeError(call.loc, "unbound C function '_" + name + "'");
    std::vector<Value> args;
    args.reserve(call.args.size() + 1);
    if (has_self) args.push_back(self);
    for (const auto& a : call.args) args.push_back(eval(*a));
    return (*f)(*this, args);
}

Engine::LRef Engine::lvalue(const ast::Expr& e) {
    using ast::ExprKind;
    LRef ref;
    ref.loc = e.loc;
    switch (e.kind) {
        case ExprKind::Var: {
            const auto& n = static_cast<const ast::VarExpr&>(e);
            if (n.decl_id < 0) throw RuntimeError(e.loc, "unresolved variable");
            ref.kind = LRef::Kind::Slot;
            ref.slot = &data_[static_cast<size_t>(fp_.var_slot[static_cast<size_t>(n.decl_id)])];
            return ref;
        }
        case ExprKind::CSym: {
            const auto& n = static_cast<const ast::CSymExpr&>(e);
            if (int64_t* g = c_.find_global(n.name)) {
                ref.kind = LRef::Kind::CGlobal;
                ref.raw = g;
                return ref;
            }
            throw RuntimeError(e.loc, "assignment to unbound C symbol '_" + n.name + "'");
        }
        case ExprKind::Unop: {
            const auto& n = static_cast<const ast::UnopExpr&>(e);
            if (n.op != Tok::Star) {
                throw RuntimeError(e.loc, "expression is not assignable");
            }
            Value v = eval(*n.sub);
            if (!v.is_ptr() || v.p == nullptr) {
                throw RuntimeError(e.loc, "dereference of a non-pointer");
            }
            ref.kind = LRef::Kind::Raw;
            ref.raw = v.p;
            return ref;
        }
        case ExprKind::Index: {
            // Collect the index chain; the root decides the addressing mode.
            const ast::Expr* root = &e;
            std::vector<const ast::Expr*> idx_exprs;
            while (root->kind == ExprKind::Index) {
                const auto& ix = static_cast<const ast::IndexExpr&>(*root);
                idx_exprs.push_back(ix.index.get());
                root = ix.base.get();
            }
            std::reverse(idx_exprs.begin(), idx_exprs.end());
            std::vector<int64_t> idx;
            idx.reserve(idx_exprs.size());
            for (const ast::Expr* ie : idx_exprs) idx.push_back(eval(*ie).as_int());

            if (root->kind == ExprKind::Var) {
                const auto& v = static_cast<const ast::VarExpr&>(*root);
                if (v.decl_id < 0) throw RuntimeError(e.loc, "unresolved variable");
                const VarInfo& vi = cp_.sema.vars[static_cast<size_t>(v.decl_id)];
                int slot = fp_.var_slot[static_cast<size_t>(v.decl_id)];
                if (vi.array_size > 0 && idx.size() == 1) {
                    if (idx[0] < 0 || idx[0] >= vi.array_size) {
                        throw RuntimeError(e.loc, "array index " + std::to_string(idx[0]) +
                                                      " out of bounds [0," +
                                                      std::to_string(vi.array_size) + ")");
                    }
                    ref.kind = LRef::Kind::Slot;
                    ref.slot = &data_[static_cast<size_t>(slot + idx[0])];
                    return ref;
                }
                // Pointer variable indexed like a C array.
                Value base = data_[static_cast<size_t>(slot)];
                if (base.is_ptr() && base.p != nullptr && idx.size() == 1) {
                    ref.kind = LRef::Kind::Raw;
                    ref.raw = base.p + idx[0];
                    return ref;
                }
                throw RuntimeError(e.loc, "invalid indexed access");
            }
            if (root->kind == ExprKind::CSym) {
                const auto& cs = static_cast<const ast::CSymExpr&>(*root);
                if (const CBindings::ArrayBinding* ab = c_.find_array(cs.name)) {
                    ref.kind = LRef::Kind::CArray;
                    ref.arr = ab;
                    ref.indices = std::move(idx);
                    return ref;
                }
                throw RuntimeError(e.loc, "unbound C array '_" + cs.name + "'");
            }
            // Arbitrary pointer expression indexed once.
            Value base = eval(*root);
            if (base.is_ptr() && base.p != nullptr && idx.size() == 1) {
                ref.kind = LRef::Kind::Raw;
                ref.raw = base.p + idx[0];
                return ref;
            }
            throw RuntimeError(e.loc, "invalid indexed access");
        }
        default:
            throw RuntimeError(e.loc, "expression is not assignable");
    }
}

void Engine::store(const LRef& ref, Value v) {
    switch (ref.kind) {
        case LRef::Kind::Slot:
            *ref.slot = v;
            return;
        case LRef::Kind::Raw:
        case LRef::Kind::CGlobal:
            *ref.raw = v.as_int();
            return;
        case LRef::Kind::CArray:
            if (!ref.arr->set) {
                throw RuntimeError(ref.loc, "C array binding is read-only");
            }
            ref.arr->set(ref.indices, v);
            return;
    }
}

}  // namespace ceu::rt
