// Intentionally small: Value is header-only; this TU anchors the module.
#include "runtime/value.hpp"

namespace ceu::rt {
static_assert(sizeof(Value) <= 32, "Value should stay small; it is copied freely");
}  // namespace ceu::rt
