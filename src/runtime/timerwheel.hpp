// Timer container implementing the paper's wall-clock semantics (§2.3):
// deadlines are absolute microsecond timestamps derived from the *logical*
// time of the arming reaction, so residual deltas compensate automatically,
// and timers armed with equal accumulated deadlines expire in the same
// reaction (time is a physical quantity: 50ms+49ms < 100ms, always).
#pragma once

#include <cstdint>
#include <vector>

#include "util/timeval.hpp"

namespace ceu::rt {

class TimerWheel {
  public:
    using GateId = int;

    /// One armed timer. Public so the engine snapshot can serialize the
    /// wheel verbatim: `seq` is part of the expiry order contract (entries
    /// sharing a deadline fire in arming order), so a restored wheel must
    /// reproduce both the entries and the next sequence number.
    struct Entry {
        GateId gate;
        Micros deadline;
        uint64_t seq;
    };

    void arm(GateId gate, Micros deadline) {
        entries_.push_back({gate, deadline, seq_++});
    }

    /// Removes timers whose gate lies in [lo, hi) — trail destruction.
    void disarm_range(GateId lo, GateId hi);

    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] size_t size() const { return entries_.size(); }

    /// Earliest pending deadline; only valid when !empty().
    [[nodiscard]] Micros next_deadline() const;

    /// If the earliest deadline is <= now, removes *all* entries sharing
    /// that deadline (they expire together, in one reaction) and returns
    /// their gates in arming order. Otherwise returns empty.
    std::vector<GateId> pop_expired(Micros now, Micros* fired_deadline);

    /// Allocation-free variant: fills `out` (cleared first) instead of
    /// returning a fresh vector, so a hot caller can reuse one buffer for
    /// the life of the engine. Returns true if anything expired.
    bool pop_expired_into(Micros now, Micros* fired_deadline, std::vector<GateId>& out);

    /// Gates of every armed entry, in arming order — the engine's
    /// invariant checker cross-checks them against the gate flags.
    [[nodiscard]] std::vector<GateId> armed_gates() const;

    void clear() { entries_.clear(); }

    // -- checkpoint / restore -------------------------------------------------

    /// Armed entries in arming order (snapshot serialization).
    [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
    /// Sequence number the next arm() will take.
    [[nodiscard]] uint64_t next_seq() const { return seq_; }
    /// Reinstates a saved wheel: entries verbatim, next arm() continues at
    /// `next_seq`. The caller (Engine::load) validates gate ranges.
    void restore(std::vector<Entry> entries, uint64_t next_seq) {
        entries_ = std::move(entries);
        seq_ = next_seq;
    }

  private:
    std::vector<Entry> entries_;
    uint64_t seq_ = 0;
};

}  // namespace ceu::rt
