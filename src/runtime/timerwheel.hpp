// Timer container implementing the paper's wall-clock semantics (§2.3):
// deadlines are absolute microsecond timestamps derived from the *logical*
// time of the arming reaction, so residual deltas compensate automatically,
// and timers armed with equal accumulated deadlines expire in the same
// reaction (time is a physical quantity: 50ms+49ms < 100ms, always).
#pragma once

#include <cstdint>
#include <vector>

#include "util/timeval.hpp"

namespace ceu::rt {

class TimerWheel {
  public:
    using GateId = int;

    void arm(GateId gate, Micros deadline) {
        entries_.push_back({gate, deadline, seq_++});
    }

    /// Removes timers whose gate lies in [lo, hi) — trail destruction.
    void disarm_range(GateId lo, GateId hi);

    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] size_t size() const { return entries_.size(); }

    /// Earliest pending deadline; only valid when !empty().
    [[nodiscard]] Micros next_deadline() const;

    /// If the earliest deadline is <= now, removes *all* entries sharing
    /// that deadline (they expire together, in one reaction) and returns
    /// their gates in arming order. Otherwise returns empty.
    std::vector<GateId> pop_expired(Micros now, Micros* fired_deadline);

    /// Allocation-free variant: fills `out` (cleared first) instead of
    /// returning a fresh vector, so a hot caller can reuse one buffer for
    /// the life of the engine. Returns true if anything expired.
    bool pop_expired_into(Micros now, Micros* fired_deadline, std::vector<GateId>& out);

    /// Gates of every armed entry, in arming order — the engine's
    /// invariant checker cross-checks them against the gate flags.
    [[nodiscard]] std::vector<GateId> armed_gates() const;

    void clear() { entries_.clear(); }

  private:
    struct Entry {
        GateId gate;
        Micros deadline;
        uint64_t seq;
    };
    std::vector<Entry> entries_;
    uint64_t seq_ = 0;
};

}  // namespace ceu::rt
