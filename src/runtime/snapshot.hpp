// Byte-level helpers for the engine checkpoint format (snapshot.cpp).
//
// Snapshots are explicit little-endian byte streams — never memcpy'd
// structs — so a blob written on one build is readable on any other
// (different compiler, padding, or endianness). Readers bounds-check every
// access and throw SnapshotError instead of reading past the blob: a
// truncated or corrupted checkpoint must fail loudly, not deserialize into
// a subtly wrong engine.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ceu::rt::snap {

/// Raised by Engine::load / host::Instance::load when a blob is malformed,
/// truncated, produced by a different snapshot version, or taken from a
/// different program (fingerprint mismatch).
class SnapshotError : public std::runtime_error {
  public:
    explicit SnapshotError(const std::string& msg)
        : std::runtime_error("snapshot: " + msg) {}
};

class ByteWriter {
  public:
    explicit ByteWriter(std::vector<uint8_t>& out) : out_(out) {}

    void u8(uint8_t v) { out_.push_back(v); }
    void u32(uint32_t v) {
        for (int i = 0; i < 4; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void u64(uint64_t v) {
        for (int i = 0; i < 8; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void str(const std::string& s) {
        u32(static_cast<uint32_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }
    void bytes(const uint8_t* data, size_t n) { out_.insert(out_.end(), data, data + n); }

  private:
    std::vector<uint8_t>& out_;
};

class ByteReader {
  public:
    ByteReader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}

    uint8_t u8() {
        need(1);
        return *p_++;
    }
    uint32_t u32() {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(*p_++) << (8 * i);
        return v;
    }
    uint64_t u64() {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(*p_++) << (8 * i);
        return v;
    }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    std::string str() {
        uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(p_), n);
        p_ += n;
        return s;
    }
    /// A count about to drive a loop of >= `elem_bytes`-sized reads; reject
    /// counts the remaining bytes cannot possibly satisfy, so a corrupted
    /// length prefix fails before (not after) a giant allocation.
    uint32_t count(size_t elem_bytes) {
        uint32_t n = u32();
        if (elem_bytes > 0 && static_cast<size_t>(end_ - p_) / elem_bytes < n) {
            throw SnapshotError("count exceeds remaining blob size");
        }
        return n;
    }

    [[nodiscard]] bool done() const { return p_ == end_; }
    [[nodiscard]] size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  private:
    void need(size_t n) {
        if (static_cast<size_t>(end_ - p_) < n) {
            throw SnapshotError("truncated blob");
        }
    }
    const uint8_t* p_;
    const uint8_t* end_;
};

}  // namespace ceu::rt::snap
