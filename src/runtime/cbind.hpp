// C bindings: the runtime counterpart of Céu's `_underscore` identifiers.
//
// The paper's compiler repasses `_f(...)` to the host C compiler; our
// interpreter routes them through this registry instead. Platform bindings
// (console, WSN, Arduino, display) register functions, constants, mutable
// globals, indexed arrays (`_MAP[i][j]`), and field accessors
// (`event.type` on C-typed variables, keyed "Type.field").
#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_map>

#include "runtime/value.hpp"

namespace ceu::rt {

class Engine;

class CBindings {
  public:
    using Fn = std::function<Value(Engine&, std::span<const Value>)>;
    using ArrayGet = std::function<Value(std::span<const int64_t>)>;
    using ArraySet = std::function<void(std::span<const int64_t>, Value)>;

    /// Registers `_name(...)`; dotted names ("lcd.setCursor") bind method
    /// syntax on C objects; "Type.field" binds field access on C-typed vars.
    void fn(const std::string& name, Fn f) { fns_[name] = std::move(f); }

    /// Registers a read-only constant (`_KEY_UP`, `_FINISH`, ...).
    void constant(const std::string& name, int64_t v) {
        consts_[name] = Value::integer(v);
    }
    void constant_value(const std::string& name, Value v) { consts_[name] = v; }

    /// Registers a mutable C global backed by host storage.
    void global(const std::string& name, int64_t* storage) { globals_[name] = storage; }

    /// Registers an indexed host array (`_MAP[ship][step]`).
    void array(const std::string& name, ArrayGet get, ArraySet set = nullptr) {
        arrays_[name] = {std::move(get), std::move(set)};
    }

    /// Registers a handler for an output event (extension: the paper's
    /// future-work `output` events; `emit O = v` invokes it).
    using OutputFn = std::function<void(Engine&, Value)>;
    void output(const std::string& name, OutputFn f) { outputs_[name] = std::move(f); }
    [[nodiscard]] const OutputFn* find_output(const std::string& name) const {
        auto it = outputs_.find(name);
        return it == outputs_.end() ? nullptr : &it->second;
    }

    // -- lookup (used by the engine) -----------------------------------------

    [[nodiscard]] const Fn* find_fn(const std::string& name) const {
        auto it = fns_.find(name);
        return it == fns_.end() ? nullptr : &it->second;
    }
    [[nodiscard]] bool get_constant(const std::string& name, Value* out) const {
        auto it = consts_.find(name);
        if (it == consts_.end()) return false;
        *out = it->second;
        return true;
    }
    [[nodiscard]] int64_t* find_global(const std::string& name) const {
        auto it = globals_.find(name);
        return it == globals_.end() ? nullptr : it->second;
    }
    struct ArrayBinding {
        ArrayGet get;
        ArraySet set;
    };
    [[nodiscard]] const ArrayBinding* find_array(const std::string& name) const {
        auto it = arrays_.find(name);
        return it == arrays_.end() ? nullptr : &it->second;
    }

    /// Merges another binding set (later registrations win). Lets platform
    /// bindings compose: console + WSN + app-specific.
    void merge(const CBindings& other);

  private:
    std::unordered_map<std::string, Fn> fns_;
    std::unordered_map<std::string, Value> consts_;
    std::unordered_map<std::string, int64_t*> globals_;
    std::unordered_map<std::string, ArrayBinding> arrays_;
    std::unordered_map<std::string, OutputFn> outputs_;
};

}  // namespace ceu::rt
