#include "runtime/cbind.hpp"

namespace ceu::rt {

void CBindings::merge(const CBindings& other) {
    for (const auto& [k, v] : other.fns_) fns_[k] = v;
    for (const auto& [k, v] : other.consts_) consts_[k] = v;
    for (const auto& [k, v] : other.globals_) globals_[k] = v;
    for (const auto& [k, v] : other.arrays_) arrays_[k] = v;
    for (const auto& [k, v] : other.outputs_) outputs_[k] = v;
}

}  // namespace ceu::rt
