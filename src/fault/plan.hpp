// Declarative fault plans: a seed plus a schedule of environmental faults
// to inject into a deterministic simulation. The paper's evaluation ran on
// physical micaz motes with lossy radios, node resets and drifting clocks;
// a FaultPlan reintroduces those conditions into the simulator *without*
// giving up replayability — the plan (seed included) fully determines every
// fault decision.
//
// A plan is pure data. The runtime side (PRNG streams, due-action cursor)
// lives in fault::Session; the network substrate consumes both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/diag.hpp"
#include "util/timeval.hpp"

namespace ceu::fault {

/// One scheduled fault at an absolute virtual-clock instant. `a`/`b` are
/// mote ids (for link actions: the directed endpoints).
struct Action {
    enum class Kind {
        LinkDown,   // block the directed link a -> b
        LinkUp,     // restore it
        RadioDown,  // administratively kill mote a's radio (both directions)
        RadioUp,
        Crash,   // power-fail mote a (volatile state lost)
        Reboot,  // power mote a back up (boot from clean state)
    };
    Kind kind = Kind::LinkDown;
    Micros at = 0;
    int a = -1;
    int b = -1;

    [[nodiscard]] std::string str() const;
};

/// Per-link probabilistic loss override; from/to == -1 matches any mote.
struct LinkNoise {
    int from = -1;
    int to = -1;
    double drop = 0.0;
};

/// Per-mote clock fault: a constant drift (parts per million of elapsed
/// virtual time) plus a bounded per-reaction jitter drawn from the seed.
struct ClockFault {
    int mote = -1;
    double drift_ppm = 0.0;
    Micros jitter = 0;
};

class FaultPlan {
  public:
    explicit FaultPlan(uint64_t seed = 1) : seed_(seed) {}

    // -- probabilistic knobs (checked on every transmission) -----------------

    /// Global drop probability in [0,1] applied to every send.
    FaultPlan& drop(double p);
    /// Per-link override (takes precedence over the global probability).
    FaultPlan& drop(int from, int to, double p);
    /// Probability of flipping one random payload word of a delivered packet.
    FaultPlan& corrupt(double p);
    /// Probability of delivering a packet twice (second copy re-jittered).
    FaultPlan& duplicate(double p);
    /// Extra per-packet latency drawn uniformly from [0, max]; with enough
    /// spread this reorders packets that share a link.
    FaultPlan& jitter(Micros max_extra);

    // -- scheduled faults -----------------------------------------------------

    /// Block the directed link from->to during [at, until). until < 0 means
    /// forever.
    FaultPlan& link_down(int from, int to, Micros at, Micros until = -1);
    /// Both directions.
    FaultPlan& bidi_link_down(int a, int b, Micros at, Micros until = -1);
    /// Link flapping: starting at `first`, take the (bidirectional) link
    /// down for `down_for` once every `period`, `count` times.
    FaultPlan& flap(int a, int b, Micros first, Micros down_for, Micros period,
                    int count);
    /// Kill mote `m`'s radio during [at, until).
    FaultPlan& radio_down(int m, Micros at, Micros until = -1);
    /// Partition the motes in `side_a` from those in `side_b` (all pairwise
    /// links blocked, both directions) during [at, until).
    FaultPlan& partition(const std::vector<int>& side_a, const std::vector<int>& side_b,
                         Micros at, Micros until = -1);
    /// Power-fail mote `m` at `at`; power it back up at `reboot_at`
    /// (reboot_at < 0: never).
    FaultPlan& crash(int m, Micros at, Micros reboot_at = -1);
    /// Give mote `m` a drifting/jittery local clock.
    FaultPlan& clock_drift(int m, double drift_ppm, Micros jitter = 0);

    // -- accessors ------------------------------------------------------------

    [[nodiscard]] uint64_t seed() const { return seed_; }
    [[nodiscard]] double drop_for(int from, int to) const;
    [[nodiscard]] double corrupt_prob() const { return corrupt_; }
    [[nodiscard]] double duplicate_prob() const { return duplicate_; }
    [[nodiscard]] Micros jitter_max() const { return jitter_; }
    /// Schedule sorted by time (stable: insertion order breaks ties).
    [[nodiscard]] std::vector<Action> schedule() const;
    [[nodiscard]] const std::vector<ClockFault>& clocks() const { return clocks_; }

    /// Canonical human-readable rendering of the whole plan — what the soak
    /// harness prints so that "different seeds produce different fault
    /// schedules" is directly observable.
    [[nodiscard]] std::string describe() const;

  private:
    uint64_t seed_;
    double global_drop_ = 0.0;
    std::vector<LinkNoise> link_noise_;
    double corrupt_ = 0.0;
    double duplicate_ = 0.0;
    Micros jitter_ = 0;
    std::vector<Action> actions_;
    std::vector<ClockFault> clocks_;
};

/// Parses the textual fault-plan DSL (one command per line, `#` comments).
/// This is the language behind the driver scripts' `fault ...` lines and
/// the soak harness's reproduce-a-seed workflow:
///
///   seed 42
///   drop 0.15            | drop 1 2 0.5
///   corrupt 0.05
///   duplicate 0.02
///   jitter 3ms
///   link down 0 1 @ 200ms until 900ms
///   radio down 2 @ 1s until 2s
///   crash mote 2 @ 300ms reboot @ 900ms
///   drift mote 1 ppm 250 jitter 2ms
///   flap 0 1 @ 1s down 100ms period 400ms count 5
///   partition 0 1 | 2 3 @ 1s until 2s
///
/// Reports malformed lines through `diags` and returns false.
bool parse_plan(const std::string& text, FaultPlan* out, Diagnostics& diags);

}  // namespace ceu::fault
