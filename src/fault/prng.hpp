// Seed-pure PRNG for the fault-injection layer. Every fault decision —
// drop, corrupt, duplicate, jitter — must come from one of these streams so
// that two runs with the same seed replay byte-identically, and a failing
// soak seed can be handed around as a bug report.
#pragma once

#include <cstdint>

namespace ceu::fault {

/// splitmix64 (Steele/Lea/Flood): tiny state, full-period, and — unlike
/// std::mt19937 — identical across standard libraries, which the
/// determinism guarantee depends on.
class Prng {
  public:
    explicit Prng(uint64_t seed) : state_(seed) {}

    uint64_t next() {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Uniform integer in [0, n); returns 0 for n == 0.
    uint64_t below(uint64_t n) { return n == 0 ? 0 : next() % n; }

    /// Derives an independent stream. Each fault concern (loss, corruption,
    /// duplication, jitter) draws from its own fork so that enabling one
    /// knob does not shift the decisions of the others.
    [[nodiscard]] Prng fork(uint64_t stream) const {
        return Prng(state_ ^ (0xbf58476d1ce4e5b9ULL * (stream + 1)));
    }

  private:
    uint64_t state_;
};

}  // namespace ceu::fault
