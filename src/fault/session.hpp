// Runtime side of a FaultPlan: the PRNG streams and the due-action cursor.
// A Session is consumed by the network substrate — one transmission makes a
// fixed sequence of draws (drop, corrupt, duplicate, jitter) from four
// independent streams, so enabling one fault class never perturbs the
// decisions of another, and the whole run replays from the plan's seed.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "fault/prng.hpp"

namespace ceu::fault {

class Session {
  public:
    explicit Session(FaultPlan plan);

    [[nodiscard]] const FaultPlan& plan() const { return plan_; }

    // -- per-transmission draws (call order per send is fixed) ---------------

    bool roll_drop(int from, int to);
    bool roll_corrupt();
    bool roll_duplicate();
    /// Extra latency in [0, jitter_max]; 0 when jitter is off.
    Micros roll_jitter();
    /// Which payload word to damage and the (nonzero) bits to flip.
    uint64_t corrupt_word(uint64_t payload_words);
    int64_t corrupt_mask();

    // -- the scheduled-fault cursor ------------------------------------------

    /// Instant of the next unapplied scheduled action; -1 when exhausted.
    [[nodiscard]] Micros next_action_at() const;
    /// Removes and returns every action due at or before `now`.
    std::vector<Action> pop_due(Micros now);

    // -- injection accounting (what the soak harness reports) ----------------

    uint64_t injected_drops = 0;
    uint64_t injected_corruptions = 0;
    uint64_t injected_duplicates = 0;

  private:
    FaultPlan plan_;
    Prng drop_rng_, corrupt_rng_, dup_rng_, jitter_rng_;
    std::vector<Action> schedule_;
    size_t next_ = 0;
};

}  // namespace ceu::fault
