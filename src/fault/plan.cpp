#include "fault/plan.hpp"

#include <algorithm>
#include <sstream>

namespace ceu::fault {

namespace {
const char* kind_name(Action::Kind k) {
    switch (k) {
        case Action::Kind::LinkDown: return "link-down";
        case Action::Kind::LinkUp: return "link-up";
        case Action::Kind::RadioDown: return "radio-down";
        case Action::Kind::RadioUp: return "radio-up";
        case Action::Kind::Crash: return "crash";
        case Action::Kind::Reboot: return "reboot";
    }
    return "?";
}
}  // namespace

std::string Action::str() const {
    std::string s = kind_name(kind);
    s += " " + std::to_string(a);
    if (b >= 0) s += "->" + std::to_string(b);
    s += " @ " + format_micros(at);
    return s;
}

FaultPlan& FaultPlan::drop(double p) {
    global_drop_ = p;
    return *this;
}

FaultPlan& FaultPlan::drop(int from, int to, double p) {
    link_noise_.push_back({from, to, p});
    return *this;
}

FaultPlan& FaultPlan::corrupt(double p) {
    corrupt_ = p;
    return *this;
}

FaultPlan& FaultPlan::duplicate(double p) {
    duplicate_ = p;
    return *this;
}

FaultPlan& FaultPlan::jitter(Micros max_extra) {
    jitter_ = max_extra;
    return *this;
}

FaultPlan& FaultPlan::link_down(int from, int to, Micros at, Micros until) {
    actions_.push_back({Action::Kind::LinkDown, at, from, to});
    if (until >= 0) actions_.push_back({Action::Kind::LinkUp, until, from, to});
    return *this;
}

FaultPlan& FaultPlan::bidi_link_down(int a, int b, Micros at, Micros until) {
    link_down(a, b, at, until);
    link_down(b, a, at, until);
    return *this;
}

FaultPlan& FaultPlan::flap(int a, int b, Micros first, Micros down_for, Micros period,
                           int count) {
    for (int i = 0; i < count; ++i) {
        Micros at = first + static_cast<Micros>(i) * period;
        bidi_link_down(a, b, at, at + down_for);
    }
    return *this;
}

FaultPlan& FaultPlan::radio_down(int m, Micros at, Micros until) {
    actions_.push_back({Action::Kind::RadioDown, at, m, -1});
    if (until >= 0) actions_.push_back({Action::Kind::RadioUp, until, m, -1});
    return *this;
}

FaultPlan& FaultPlan::partition(const std::vector<int>& side_a,
                                const std::vector<int>& side_b, Micros at,
                                Micros until) {
    for (int a : side_a) {
        for (int b : side_b) bidi_link_down(a, b, at, until);
    }
    return *this;
}

FaultPlan& FaultPlan::crash(int m, Micros at, Micros reboot_at) {
    actions_.push_back({Action::Kind::Crash, at, m, -1});
    if (reboot_at >= 0) actions_.push_back({Action::Kind::Reboot, reboot_at, m, -1});
    return *this;
}

FaultPlan& FaultPlan::clock_drift(int m, double drift_ppm, Micros jitter) {
    clocks_.push_back({m, drift_ppm, jitter});
    return *this;
}

double FaultPlan::drop_for(int from, int to) const {
    // Most specific match wins: exact pair, then one-sided wildcards, then
    // the global probability.
    double best = global_drop_;
    int best_score = -1;
    for (const LinkNoise& n : link_noise_) {
        bool from_ok = n.from < 0 || n.from == from;
        bool to_ok = n.to < 0 || n.to == to;
        if (!from_ok || !to_ok) continue;
        int score = (n.from >= 0 ? 1 : 0) + (n.to >= 0 ? 1 : 0);
        if (score > best_score) {
            best_score = score;
            best = n.drop;
        }
    }
    return best;
}

std::vector<Action> FaultPlan::schedule() const {
    std::vector<Action> s = actions_;
    std::stable_sort(s.begin(), s.end(),
                     [](const Action& x, const Action& y) { return x.at < y.at; });
    return s;
}

std::string FaultPlan::describe() const {
    std::ostringstream os;
    os << "fault plan (seed " << seed_ << ")\n";
    if (global_drop_ > 0) os << "  drop " << global_drop_ << "\n";
    for (const LinkNoise& n : link_noise_) {
        os << "  drop " << n.from << "->" << n.to << " " << n.drop << "\n";
    }
    if (corrupt_ > 0) os << "  corrupt " << corrupt_ << "\n";
    if (duplicate_ > 0) os << "  duplicate " << duplicate_ << "\n";
    if (jitter_ > 0) os << "  jitter " << format_micros(jitter_) << "\n";
    for (const ClockFault& c : clocks_) {
        os << "  drift mote " << c.mote << " " << c.drift_ppm << "ppm jitter "
           << format_micros(c.jitter) << "\n";
    }
    for (const Action& a : schedule()) os << "  " << a.str() << "\n";
    return os.str();
}

// ---------------------------------------------------------------------------
// The textual DSL
// ---------------------------------------------------------------------------

namespace {

/// Tokenizer state for one plan line.
struct Line {
    std::vector<std::string> tok;
    size_t pos = 0;
    SourceLoc loc;

    [[nodiscard]] bool done() const { return pos >= tok.size(); }
    [[nodiscard]] const std::string& peek() const {
        static const std::string empty;
        return done() ? empty : tok[pos];
    }
    std::string take() { return done() ? std::string() : tok[pos++]; }
    bool accept(const std::string& word) {
        if (peek() == word) {
            ++pos;
            return true;
        }
        return false;
    }
};

bool take_int(Line& ln, int* out) {
    const std::string t = ln.take();
    if (t.empty()) return false;
    try {
        size_t used = 0;
        *out = std::stoi(t, &used);
        return used == t.size();
    } catch (...) {
        return false;
    }
}

bool take_u64(Line& ln, uint64_t* out) {
    const std::string t = ln.take();
    if (t.empty()) return false;
    try {
        size_t used = 0;
        *out = std::stoull(t, &used);
        return used == t.size();
    } catch (...) {
        return false;
    }
}

bool take_prob(Line& ln, double* out) {
    const std::string t = ln.take();
    if (t.empty()) return false;
    try {
        size_t used = 0;
        *out = std::stod(t, &used);
        return used == t.size() && *out >= 0.0 && *out <= 1.0;
    } catch (...) {
        return false;
    }
}

/// Accepts either a Céu time literal ("300ms", "1s500ms") or a raw
/// microsecond count.
bool take_time(Line& ln, Micros* out) {
    const std::string t = ln.take();
    if (t.empty()) return false;
    if (parse_time_literal(t, out)) return true;
    try {
        size_t used = 0;
        *out = std::stoll(t, &used);
        return used == t.size();
    } catch (...) {
        return false;
    }
}

/// `@ TIME [until TIME]`; `*until` stays -1 when absent.
bool take_window(Line& ln, Micros* at, Micros* until) {
    if (!ln.accept("@")) return false;
    if (!take_time(ln, at)) return false;
    *until = -1;
    if (ln.accept("until")) return take_time(ln, until);
    return true;
}

/// Mote ids until `|` or end-of-line.
bool take_group(Line& ln, std::vector<int>* out) {
    while (!ln.done() && ln.peek() != "|" && ln.peek() != "@") {
        int m = 0;
        if (!take_int(ln, &m)) return false;
        out->push_back(m);
    }
    return !out->empty();
}

}  // namespace

bool parse_plan(const std::string& text, FaultPlan* out, Diagnostics& diags) {
    FaultPlan plan = *out;  // allow incremental extension of an existing plan
    std::istringstream is(text);
    std::string raw;
    uint32_t lineno = 0;
    bool ok = true;

    auto fail = [&](SourceLoc loc, const std::string& msg) {
        diags.error(loc, "fault plan: " + msg);
        ok = false;
    };

    while (std::getline(is, raw)) {
        ++lineno;
        if (size_t hash = raw.find('#'); hash != std::string::npos) {
            raw.resize(hash);
        }
        Line ln;
        ln.loc = {lineno, 1};
        std::istringstream ls(raw);
        std::string t;
        while (ls >> t) ln.tok.push_back(t);
        if (ln.tok.empty()) continue;

        std::string cmd = ln.take();
        if (cmd == "seed") {
            uint64_t s = 0;
            if (!take_u64(ln, &s)) {
                fail(ln.loc, "usage: seed N");
                continue;
            }
            plan = FaultPlan(s);  // the seed opens a plan: earlier knobs reset
        } else if (cmd == "drop") {
            // Either `drop P` or `drop FROM TO P`.
            if (ln.tok.size() == 2) {
                double p = 0;
                if (!take_prob(ln, &p)) {
                    fail(ln.loc, "usage: drop P (0..1)");
                    continue;
                }
                plan.drop(p);
            } else {
                int from = 0, to = 0;
                double p = 0;
                if (!take_int(ln, &from) || !take_int(ln, &to) || !take_prob(ln, &p)) {
                    fail(ln.loc, "usage: drop FROM TO P");
                    continue;
                }
                plan.drop(from, to, p);
            }
        } else if (cmd == "corrupt" || cmd == "duplicate") {
            double p = 0;
            if (!take_prob(ln, &p)) {
                fail(ln.loc, "usage: " + cmd + " P (0..1)");
                continue;
            }
            if (cmd == "corrupt") plan.corrupt(p);
            else plan.duplicate(p);
        } else if (cmd == "jitter") {
            Micros us = 0;
            if (!take_time(ln, &us)) {
                fail(ln.loc, "usage: jitter TIME");
                continue;
            }
            plan.jitter(us);
        } else if (cmd == "link") {
            int a = 0, b = 0;
            Micros at = 0, until = -1;
            if (!ln.accept("down") || !take_int(ln, &a) || !take_int(ln, &b) ||
                !take_window(ln, &at, &until)) {
                fail(ln.loc, "usage: link down A B @ TIME [until TIME]");
                continue;
            }
            plan.bidi_link_down(a, b, at, until);
        } else if (cmd == "radio") {
            int m = 0;
            Micros at = 0, until = -1;
            if (!ln.accept("down") || !take_int(ln, &m) ||
                !take_window(ln, &at, &until)) {
                fail(ln.loc, "usage: radio down M @ TIME [until TIME]");
                continue;
            }
            plan.radio_down(m, at, until);
        } else if (cmd == "crash") {
            int m = 0;
            Micros at = 0, reboot = -1;
            ln.accept("mote");
            if (!take_int(ln, &m) || !ln.accept("@") || !take_time(ln, &at)) {
                fail(ln.loc, "usage: crash mote M @ TIME [reboot @ TIME]");
                continue;
            }
            if (ln.accept("reboot")) {
                if (!ln.accept("@") || !take_time(ln, &reboot)) {
                    fail(ln.loc, "crash: expected `reboot @ TIME`");
                    continue;
                }
            }
            plan.crash(m, at, reboot);
        } else if (cmd == "drift") {
            int m = 0;
            double ppm = 0;
            Micros jit = 0;
            ln.accept("mote");
            if (!take_int(ln, &m) || !ln.accept("ppm")) {
                fail(ln.loc, "usage: drift mote M ppm N [jitter TIME]");
                continue;
            }
            try {
                ppm = std::stod(ln.take());
            } catch (...) {
                fail(ln.loc, "drift: bad ppm value");
                continue;
            }
            if (ln.accept("jitter") && !take_time(ln, &jit)) {
                fail(ln.loc, "drift: bad jitter time");
                continue;
            }
            plan.clock_drift(m, ppm, jit);
        } else if (cmd == "flap") {
            int a = 0, b = 0, count = 0;
            Micros first = 0, down_for = 0, period = 0;
            if (!take_int(ln, &a) || !take_int(ln, &b) || !ln.accept("@") ||
                !take_time(ln, &first) || !ln.accept("down") ||
                !take_time(ln, &down_for) || !ln.accept("period") ||
                !take_time(ln, &period) || !ln.accept("count") || !take_int(ln, &count)) {
                fail(ln.loc,
                     "usage: flap A B @ TIME down TIME period TIME count N");
                continue;
            }
            plan.flap(a, b, first, down_for, period, count);
        } else if (cmd == "partition") {
            std::vector<int> side_a, side_b;
            Micros at = 0, until = -1;
            if (!take_group(ln, &side_a) || !ln.accept("|") || !take_group(ln, &side_b) ||
                !take_window(ln, &at, &until)) {
                fail(ln.loc, "usage: partition A... | B... @ TIME [until TIME]");
                continue;
            }
            plan.partition(side_a, side_b, at, until);
        } else {
            fail(ln.loc, "unknown command '" + cmd + "'");
        }
        if (ok && !ln.done()) {
            fail(ln.loc, "trailing tokens after '" + cmd + "' command");
        }
    }
    if (ok) *out = plan;
    return ok;
}

}  // namespace ceu::fault
