#include "fault/session.hpp"

namespace ceu::fault {

Session::Session(FaultPlan plan)
    : plan_(std::move(plan)),
      drop_rng_(Prng(plan_.seed()).fork(1)),
      corrupt_rng_(Prng(plan_.seed()).fork(2)),
      dup_rng_(Prng(plan_.seed()).fork(3)),
      jitter_rng_(Prng(plan_.seed()).fork(4)),
      schedule_(plan_.schedule()) {}

bool Session::roll_drop(int from, int to) {
    double p = plan_.drop_for(from, to);
    // Always draw: the stream must advance identically whether or not this
    // particular link is noisy, or per-link overrides would reshuffle every
    // later decision.
    bool hit = drop_rng_.uniform() < p;
    if (hit) ++injected_drops;
    return hit;
}

bool Session::roll_corrupt() {
    bool hit = corrupt_rng_.uniform() < plan_.corrupt_prob();
    if (hit) ++injected_corruptions;
    return hit;
}

bool Session::roll_duplicate() {
    bool hit = dup_rng_.uniform() < plan_.duplicate_prob();
    if (hit) ++injected_duplicates;
    return hit;
}

Micros Session::roll_jitter() {
    Micros max = plan_.jitter_max();
    if (max <= 0) return 0;
    return static_cast<Micros>(jitter_rng_.below(static_cast<uint64_t>(max) + 1));
}

uint64_t Session::corrupt_word(uint64_t payload_words) {
    return corrupt_rng_.below(payload_words);
}

int64_t Session::corrupt_mask() {
    uint64_t m = corrupt_rng_.next();
    if (m == 0) m = 1;  // flipping nothing would make corruption a no-op
    return static_cast<int64_t>(m);
}

Micros Session::next_action_at() const {
    return next_ < schedule_.size() ? schedule_[next_].at : -1;
}

std::vector<Action> Session::pop_due(Micros now) {
    std::vector<Action> due;
    while (next_ < schedule_.size() && schedule_[next_].at <= now) {
        due.push_back(schedule_[next_++]);
    }
    return due;
}

}  // namespace ceu::fault
