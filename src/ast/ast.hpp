// Abstract syntax tree for Céu (paper Appendix A).
//
// Ownership: every node is held by `std::unique_ptr` from its parent; a
// `Program` owns the root block. Nodes carry the `SourceLoc` of their first
// token for diagnostics. Sema fills in the small number of annotation
// fields (declaration ids); all other phases treat the tree as read-only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lexer/lexer.hpp"
#include "util/source.hpp"
#include "util/timeval.hpp"

namespace ceu::ast {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

/// A (very small) type: a named base type plus pointer depth.
/// `void`, `int`, and C types (e.g. `_message_t`) all fit this mold.
struct Type {
    std::string name;       // "int", "void", "message_t" (C types w/o '_'), ...
    int pointer_depth = 0;  // `int*` -> 1
    bool is_c = false;      // came from an ID_c

    [[nodiscard]] bool is_void() const { return name == "void" && pointer_depth == 0; }
    [[nodiscard]] std::string str() const {
        std::string s = (is_c ? "_" : "") + name;
        for (int i = 0; i < pointer_depth; ++i) s += "*";
        return s;
    }
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
    Num, Str, Null, Var, CSym, Unop, Binop, Index, Call, Cast, SizeOf, Field,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    ExprKind kind;
    SourceLoc loc;

    explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
    virtual ~Expr() = default;
    Expr(const Expr&) = delete;
    Expr& operator=(const Expr&) = delete;
};

struct NumExpr final : Expr {
    int64_t value;
    NumExpr(int64_t v, SourceLoc l) : Expr(ExprKind::Num, l), value(v) {}
};

struct StrExpr final : Expr {
    std::string value;
    StrExpr(std::string v, SourceLoc l) : Expr(ExprKind::Str, l), value(std::move(v)) {}
};

struct NullExpr final : Expr {
    explicit NullExpr(SourceLoc l) : Expr(ExprKind::Null, l) {}
};

/// Reference to a Céu variable (ID_int). Sema resolves `decl_id`.
struct VarExpr final : Expr {
    std::string name;
    int decl_id = -1;  // index into sema's variable table
    VarExpr(std::string n, SourceLoc l) : Expr(ExprKind::Var, l), name(std::move(n)) {}
};

/// Reference to a C symbol (ID_c), stored without the leading underscore.
struct CSymExpr final : Expr {
    std::string name;
    CSymExpr(std::string n, SourceLoc l) : Expr(ExprKind::CSym, l), name(std::move(n)) {}
};

struct UnopExpr final : Expr {
    Tok op;  // Not, And(address-of), Minus, Plus, Tilde, Star(deref)
    ExprPtr sub;
    UnopExpr(Tok o, ExprPtr s, SourceLoc l)
        : Expr(ExprKind::Unop, l), op(o), sub(std::move(s)) {}
};

struct BinopExpr final : Expr {
    Tok op;
    ExprPtr lhs, rhs;
    BinopExpr(Tok o, ExprPtr a, ExprPtr b, SourceLoc l)
        : Expr(ExprKind::Binop, l), op(o), lhs(std::move(a)), rhs(std::move(b)) {}
};

struct IndexExpr final : Expr {
    ExprPtr base, index;
    IndexExpr(ExprPtr b, ExprPtr i, SourceLoc l)
        : Expr(ExprKind::Index, l), base(std::move(b)), index(std::move(i)) {}
};

struct CallExpr final : Expr {
    ExprPtr fn;  // typically CSymExpr or Field chain rooted in a CSym
    std::vector<ExprPtr> args;
    CallExpr(ExprPtr f, std::vector<ExprPtr> a, SourceLoc l)
        : Expr(ExprKind::Call, l), fn(std::move(f)), args(std::move(a)) {}
};

struct CastExpr final : Expr {
    Type type;
    ExprPtr sub;
    CastExpr(Type t, ExprPtr s, SourceLoc l)
        : Expr(ExprKind::Cast, l), type(std::move(t)), sub(std::move(s)) {}
};

struct SizeOfExpr final : Expr {
    Type type;
    SizeOfExpr(Type t, SourceLoc l) : Expr(ExprKind::SizeOf, l), type(std::move(t)) {}
};

/// `base.field` / `base->field` (only meaningful on C objects).
struct FieldExpr final : Expr {
    ExprPtr base;
    std::string field;
    bool arrow;
    FieldExpr(ExprPtr b, std::string f, bool a, SourceLoc l)
        : Expr(ExprKind::Field, l), base(std::move(b)), field(std::move(f)), arrow(a) {}
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
    Nothing,
    DeclInput,    // input <type> Evt, Evt2
    DeclInternal, // internal <type> evt, evt2
    DeclOutput,   // output <type> Evt (extension: the paper's future work)
    DeclVar,      // <type>[N]? v = e, w
    CBlock,       // C do ... end
    Pure,         // pure _f, _g
    Deterministic,// deterministic _f, _g
    AwaitExt, AwaitInt, AwaitTime, AwaitDyn, AwaitForever,
    EmitInt, EmitExt, EmitTime,
    If, Loop, Break,
    Par,
    ExprStmt,     // call / side-effecting expression
    Assign,       // lhs = SetExp
    Return,
    Block,        // do ... end
    Async,        // async do ... end
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A `;`-separated sequence of statements.
struct BlockBody {
    std::vector<StmtPtr> stmts;
};

struct Stmt {
    StmtKind kind;
    SourceLoc loc;

    explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
    virtual ~Stmt() = default;
    Stmt(const Stmt&) = delete;
    Stmt& operator=(const Stmt&) = delete;
};

struct NothingStmt final : Stmt {
    explicit NothingStmt(SourceLoc l) : Stmt(StmtKind::Nothing, l) {}
};

struct DeclInputStmt final : Stmt {
    Type type;
    std::vector<std::string> names;
    DeclInputStmt(SourceLoc l) : Stmt(StmtKind::DeclInput, l) {}
};

struct DeclInternalStmt final : Stmt {
    Type type;
    std::vector<std::string> names;
    DeclInternalStmt(SourceLoc l) : Stmt(StmtKind::DeclInternal, l) {}
};

/// Extension (paper §7 future work): output events let a program notify
/// its environment (`emit O = v` invokes a host-registered handler).
struct DeclOutputStmt final : Stmt {
    Type type;
    std::vector<std::string> names;
    DeclOutputStmt(SourceLoc l) : Stmt(StmtKind::DeclOutput, l) {}
};

struct DeclVarStmt final : Stmt {
    struct Var {
        std::string name;
        int64_t array_size = 0;  // 0 = scalar
        ExprPtr init;            // optional plain-expression initializer
        StmtPtr init_stmt;       // optional SetExp initializer (await/block)
        SourceLoc loc;
        int decl_id = -1;        // filled by sema
    };
    Type type;
    std::vector<Var> vars;
    DeclVarStmt(SourceLoc l) : Stmt(StmtKind::DeclVar, l) {}
};

struct CBlockStmt final : Stmt {
    std::string code;
    CBlockStmt(std::string c, SourceLoc l) : Stmt(StmtKind::CBlock, l), code(std::move(c)) {}
};

struct PureStmt final : Stmt {
    std::vector<std::string> names;  // without underscore
    PureStmt(SourceLoc l) : Stmt(StmtKind::Pure, l) {}
};

struct DeterministicStmt final : Stmt {
    std::vector<std::string> names;  // without underscore
    DeterministicStmt(SourceLoc l) : Stmt(StmtKind::Deterministic, l) {}
};

struct AwaitExtStmt final : Stmt {
    std::string event;
    int event_id = -1;  // sema
    AwaitExtStmt(std::string e, SourceLoc l)
        : Stmt(StmtKind::AwaitExt, l), event(std::move(e)) {}
};

struct AwaitIntStmt final : Stmt {
    std::string event;
    int event_id = -1;  // sema
    AwaitIntStmt(std::string e, SourceLoc l)
        : Stmt(StmtKind::AwaitInt, l), event(std::move(e)) {}
};

struct AwaitTimeStmt final : Stmt {
    Micros us;
    AwaitTimeStmt(Micros t, SourceLoc l) : Stmt(StmtKind::AwaitTime, l), us(t) {}
};

/// `await (expr)` — duration computed at runtime, in microseconds.
struct AwaitDynStmt final : Stmt {
    ExprPtr us;
    AwaitDynStmt(ExprPtr e, SourceLoc l) : Stmt(StmtKind::AwaitDyn, l), us(std::move(e)) {}
};

struct AwaitForeverStmt final : Stmt {
    explicit AwaitForeverStmt(SourceLoc l) : Stmt(StmtKind::AwaitForever, l) {}
};

struct EmitIntStmt final : Stmt {
    std::string event;
    ExprPtr value;  // optional
    int event_id = -1;  // sema
    EmitIntStmt(std::string e, SourceLoc l)
        : Stmt(StmtKind::EmitInt, l), event(std::move(e)) {}
};

/// `emit Evt [= e]` — an *input* emission (only legal inside async blocks,
/// simulation §2.8) or an *output* emission (extension; any synchronous
/// context). Sema resolves which one and sets `is_output`.
struct EmitExtStmt final : Stmt {
    std::string event;
    ExprPtr value;  // optional
    int event_id = -1;  // sema
    bool is_output = false;  // sema
    EmitExtStmt(std::string e, SourceLoc l)
        : Stmt(StmtKind::EmitExt, l), event(std::move(e)) {}
};

/// `emit 1h35min` — only legal inside async blocks (simulation).
struct EmitTimeStmt final : Stmt {
    Micros us;
    EmitTimeStmt(Micros t, SourceLoc l) : Stmt(StmtKind::EmitTime, l), us(t) {}
};

struct IfStmt final : Stmt {
    ExprPtr cond;
    BlockBody then_body;
    BlockBody else_body;  // may be empty
    bool has_else = false;
    IfStmt(SourceLoc l) : Stmt(StmtKind::If, l) {}
};

struct LoopStmt final : Stmt {
    BlockBody body;
    LoopStmt(SourceLoc l) : Stmt(StmtKind::Loop, l) {}
};

struct BreakStmt final : Stmt {
    explicit BreakStmt(SourceLoc l) : Stmt(StmtKind::Break, l) {}
};

enum class ParKind { Par, ParAnd, ParOr };

struct ParStmt final : Stmt {
    ParKind par_kind;
    std::vector<BlockBody> branches;
    ParStmt(ParKind k, SourceLoc l) : Stmt(StmtKind::Par, l), par_kind(k) {}
};

struct ExprStmtStmt final : Stmt {
    ExprPtr expr;
    ExprStmtStmt(ExprPtr e, SourceLoc l)
        : Stmt(StmtKind::ExprStmt, l), expr(std::move(e)) {}
};

/// `lhs = SetExp` where SetExp is a plain expression OR a statement that
/// produces a value (`await X`, `par do .. return e .. end`, `do .. end`,
/// `async do .. return e .. end`).
struct AssignStmt final : Stmt {
    ExprPtr lhs;
    ExprPtr rhs_expr;  // exactly one of rhs_expr / rhs_stmt is set
    StmtPtr rhs_stmt;
    AssignStmt(SourceLoc l) : Stmt(StmtKind::Assign, l) {}
};

struct ReturnStmt final : Stmt {
    ExprPtr value;  // optional
    ReturnStmt(SourceLoc l) : Stmt(StmtKind::Return, l) {}
};

struct BlockStmt final : Stmt {
    BlockBody body;
    BlockStmt(SourceLoc l) : Stmt(StmtKind::Block, l) {}
};

struct AsyncStmt final : Stmt {
    BlockBody body;
    int async_id = -1;  // sema/flatten
    AsyncStmt(SourceLoc l) : Stmt(StmtKind::Async, l) {}
};

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

struct Program {
    BlockBody body;
    std::string name = "program";
};

/// Walks every statement in the block (pre-order), including nested bodies.
/// `fn` returning false prunes the subtree.
void walk_stmts(const BlockBody& body, const std::function<bool(const Stmt&)>& fn);

/// Walks every sub-expression of `e` (pre-order), including `e` itself.
void walk_exprs(const Expr& e, const std::function<void(const Expr&)>& fn);

}  // namespace ceu::ast
