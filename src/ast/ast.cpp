#include "ast/ast.hpp"

namespace ceu::ast {

namespace {

void walk_stmt(const Stmt& s, const std::function<bool(const Stmt&)>& fn);

void walk_body(const BlockBody& body, const std::function<bool(const Stmt&)>& fn) {
    for (const auto& s : body.stmts) walk_stmt(*s, fn);
}

void walk_stmt(const Stmt& s, const std::function<bool(const Stmt&)>& fn) {
    if (!fn(s)) return;
    switch (s.kind) {
        case StmtKind::If: {
            const auto& n = static_cast<const IfStmt&>(s);
            walk_body(n.then_body, fn);
            walk_body(n.else_body, fn);
            break;
        }
        case StmtKind::Loop:
            walk_body(static_cast<const LoopStmt&>(s).body, fn);
            break;
        case StmtKind::Par:
            for (const auto& b : static_cast<const ParStmt&>(s).branches) walk_body(b, fn);
            break;
        case StmtKind::Block:
            walk_body(static_cast<const BlockStmt&>(s).body, fn);
            break;
        case StmtKind::Async:
            walk_body(static_cast<const AsyncStmt&>(s).body, fn);
            break;
        case StmtKind::Assign: {
            const auto& n = static_cast<const AssignStmt&>(s);
            if (n.rhs_stmt) walk_stmt(*n.rhs_stmt, fn);
            break;
        }
        case StmtKind::DeclVar: {
            const auto& n = static_cast<const DeclVarStmt&>(s);
            for (const auto& v : n.vars) {
                if (v.init_stmt) walk_stmt(*v.init_stmt, fn);
            }
            break;
        }
        default:
            break;
    }
}

}  // namespace

void walk_stmts(const BlockBody& body, const std::function<bool(const Stmt&)>& fn) {
    walk_body(body, fn);
}

void walk_exprs(const Expr& e, const std::function<void(const Expr&)>& fn) {
    fn(e);
    switch (e.kind) {
        case ExprKind::Unop:
            walk_exprs(*static_cast<const UnopExpr&>(e).sub, fn);
            break;
        case ExprKind::Binop: {
            const auto& n = static_cast<const BinopExpr&>(e);
            walk_exprs(*n.lhs, fn);
            walk_exprs(*n.rhs, fn);
            break;
        }
        case ExprKind::Index: {
            const auto& n = static_cast<const IndexExpr&>(e);
            walk_exprs(*n.base, fn);
            walk_exprs(*n.index, fn);
            break;
        }
        case ExprKind::Call: {
            const auto& n = static_cast<const CallExpr&>(e);
            walk_exprs(*n.fn, fn);
            for (const auto& a : n.args) walk_exprs(*a, fn);
            break;
        }
        case ExprKind::Cast:
            walk_exprs(*static_cast<const CastExpr&>(e).sub, fn);
            break;
        case ExprKind::Field:
            walk_exprs(*static_cast<const FieldExpr&>(e).base, fn);
            break;
        default:
            break;
    }
}

}  // namespace ceu::ast
