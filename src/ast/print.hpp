// AST pretty-printer: renders expressions/statements back as Céu-ish source.
// Used for diagnostics, DFA state labels (paper Fig. 2 shows the statements
// each DFA state executes) and golden tests.
#pragma once

#include <string>

#include "ast/ast.hpp"

namespace ceu::ast {

std::string print_expr(const Expr& e);

/// Single-line summary of a statement (no nested bodies), e.g. `v = v + 1`
/// or `await A`. Matches the labels in the paper's DFA figure.
std::string summarize_stmt(const Stmt& s);

/// Full multi-line pretty-print of a block with `indent` leading spaces.
std::string print_block(const BlockBody& body, int indent = 0);

/// Full multi-line pretty-print of one statement (nested bodies included),
/// terminated like a block member. Used by the modular analysis to render
/// prelude/branch slices into round-trip-stable hash input.
std::string print_stmt(const Stmt& s, int indent = 0);

}  // namespace ceu::ast
