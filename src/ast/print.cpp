#include "ast/print.hpp"

#include <sstream>

namespace ceu::ast {

namespace {

const char* binop_str(Tok op) {
    switch (op) {
        case Tok::OrOr: return "||";
        case Tok::AndAnd: return "&&";
        case Tok::Or: return "|";
        case Tok::Xor: return "^";
        case Tok::And: return "&";
        case Tok::Ne: return "!=";
        case Tok::EqEq: return "==";
        case Tok::Le: return "<=";
        case Tok::Ge: return ">=";
        case Tok::Lt: return "<";
        case Tok::Gt: return ">";
        case Tok::Shl: return "<<";
        case Tok::Shr: return ">>";
        case Tok::Plus: return "+";
        case Tok::Minus: return "-";
        case Tok::Star: return "*";
        case Tok::Slash: return "/";
        case Tok::Percent: return "%";
        default: return "?";
    }
}

const char* unop_str(Tok op) {
    switch (op) {
        case Tok::Not: return "!";
        case Tok::And: return "&";
        case Tok::Minus: return "-";
        case Tok::Plus: return "+";
        case Tok::Tilde: return "~";
        case Tok::Star: return "*";
        default: return "?";
    }
}

void print_expr_to(const Expr& e, std::ostringstream& os) {
    switch (e.kind) {
        case ExprKind::Num:
            os << static_cast<const NumExpr&>(e).value;
            break;
        case ExprKind::Str: {
            // The lexer unescaped the literal; re-escape so the printed
            // source lexes back (and survives verbatim inclusion in C).
            os << '"';
            for (char c : static_cast<const StrExpr&>(e).value) {
                switch (c) {
                    case '\n': os << "\\n"; break;
                    case '\t': os << "\\t"; break;
                    case '\r': os << "\\r"; break;
                    case '\\': os << "\\\\"; break;
                    case '"': os << "\\\""; break;
                    default: os << c;
                }
            }
            os << '"';
            break;
        }
        case ExprKind::Null:
            os << "null";
            break;
        case ExprKind::Var:
            os << static_cast<const VarExpr&>(e).name;
            break;
        case ExprKind::CSym:
            os << '_' << static_cast<const CSymExpr&>(e).name;
            break;
        case ExprKind::Unop: {
            const auto& n = static_cast<const UnopExpr&>(e);
            os << unop_str(n.op);
            print_expr_to(*n.sub, os);
            break;
        }
        case ExprKind::Binop: {
            const auto& n = static_cast<const BinopExpr&>(e);
            os << '(';
            print_expr_to(*n.lhs, os);
            os << ' ' << binop_str(n.op) << ' ';
            print_expr_to(*n.rhs, os);
            os << ')';
            break;
        }
        case ExprKind::Index: {
            const auto& n = static_cast<const IndexExpr&>(e);
            print_expr_to(*n.base, os);
            os << '[';
            print_expr_to(*n.index, os);
            os << ']';
            break;
        }
        case ExprKind::Call: {
            const auto& n = static_cast<const CallExpr&>(e);
            print_expr_to(*n.fn, os);
            os << '(';
            for (size_t i = 0; i < n.args.size(); ++i) {
                if (i) os << ", ";
                print_expr_to(*n.args[i], os);
            }
            os << ')';
            break;
        }
        case ExprKind::Cast: {
            const auto& n = static_cast<const CastExpr&>(e);
            os << '<' << n.type.str() << '>';
            print_expr_to(*n.sub, os);
            break;
        }
        case ExprKind::SizeOf:
            os << "sizeof<" << static_cast<const SizeOfExpr&>(e).type.str() << '>';
            break;
        case ExprKind::Field: {
            const auto& n = static_cast<const FieldExpr&>(e);
            print_expr_to(*n.base, os);
            os << (n.arrow ? "->" : ".") << n.field;
            break;
        }
    }
}

void print_stmt(const Stmt& s, std::ostringstream& os, int indent);

void print_body(const BlockBody& body, std::ostringstream& os, int indent) {
    for (const auto& st : body.stmts) print_stmt(*st, os, indent);
}

std::string pad(int indent) { return std::string(static_cast<size_t>(indent), ' '); }

void print_stmt(const Stmt& s, std::ostringstream& os, int indent) {
    const std::string p = pad(indent);
    switch (s.kind) {
        case StmtKind::If: {
            const auto& n = static_cast<const IfStmt&>(s);
            os << p << "if " << print_expr(*n.cond) << " then\n";
            print_body(n.then_body, os, indent + 3);
            if (n.has_else) {
                os << p << "else\n";
                print_body(n.else_body, os, indent + 3);
            }
            os << p << "end;\n";
            break;
        }
        case StmtKind::Loop: {
            os << p << "loop do\n";
            print_body(static_cast<const LoopStmt&>(s).body, os, indent + 3);
            os << p << "end;\n";
            break;
        }
        case StmtKind::Par: {
            const auto& n = static_cast<const ParStmt&>(s);
            const char* kw = n.par_kind == ParKind::Par ? "par"
                             : n.par_kind == ParKind::ParAnd ? "par/and"
                                                             : "par/or";
            os << p << kw << " do\n";
            for (size_t i = 0; i < n.branches.size(); ++i) {
                if (i) os << p << "with\n";
                print_body(n.branches[i], os, indent + 3);
            }
            os << p << "end;\n";
            break;
        }
        case StmtKind::Block: {
            os << p << "do\n";
            print_body(static_cast<const BlockStmt&>(s).body, os, indent + 3);
            os << p << "end;\n";
            break;
        }
        case StmtKind::Async: {
            os << p << "async do\n";
            print_body(static_cast<const AsyncStmt&>(s).body, os, indent + 3);
            os << p << "end;\n";
            break;
        }
        case StmtKind::Assign: {
            // `v = par do .. end` / `v = do .. end` / `v = async do .. end`
            // must print their full bodies to stay re-parseable; simple
            // SetExps (`v = e`, `v = await X`) keep the one-line form.
            const auto& n = static_cast<const AssignStmt&>(s);
            if (n.rhs_stmt != nullptr &&
                (n.rhs_stmt->kind == StmtKind::Par || n.rhs_stmt->kind == StmtKind::Block ||
                 n.rhs_stmt->kind == StmtKind::Async)) {
                os << p << print_expr(*n.lhs) << " =\n";
                print_stmt(*n.rhs_stmt, os, indent + 3);
                break;
            }
            os << p << summarize_stmt(s) << ";\n";
            break;
        }
        case StmtKind::DeclVar: {
            const auto& n = static_cast<const DeclVarStmt&>(s);
            if (n.vars.size() == 1 && n.vars[0].init_stmt != nullptr &&
                (n.vars[0].init_stmt->kind == StmtKind::Par ||
                 n.vars[0].init_stmt->kind == StmtKind::Block ||
                 n.vars[0].init_stmt->kind == StmtKind::Async)) {
                os << p << n.type.str() << ' ' << n.vars[0].name << " =\n";
                print_stmt(*n.vars[0].init_stmt, os, indent + 3);
                break;
            }
            os << p << summarize_stmt(s) << ";\n";
            break;
        }
        default:
            os << p << summarize_stmt(s) << ";\n";
            break;
    }
}

}  // namespace

std::string print_expr(const Expr& e) {
    std::ostringstream os;
    print_expr_to(e, os);
    return os.str();
}

std::string summarize_stmt(const Stmt& s) {
    std::ostringstream os;
    switch (s.kind) {
        case StmtKind::Nothing:
            os << "nothing";
            break;
        case StmtKind::DeclInput: {
            const auto& n = static_cast<const DeclInputStmt&>(s);
            os << "input " << n.type.str();
            for (size_t i = 0; i < n.names.size(); ++i) os << (i ? ", " : " ") << n.names[i];
            break;
        }
        case StmtKind::DeclInternal: {
            const auto& n = static_cast<const DeclInternalStmt&>(s);
            os << "internal " << n.type.str();
            for (size_t i = 0; i < n.names.size(); ++i) os << (i ? ", " : " ") << n.names[i];
            break;
        }
        case StmtKind::DeclOutput: {
            const auto& n = static_cast<const DeclOutputStmt&>(s);
            os << "output " << n.type.str();
            for (size_t i = 0; i < n.names.size(); ++i) os << (i ? ", " : " ") << n.names[i];
            break;
        }
        case StmtKind::DeclVar: {
            const auto& n = static_cast<const DeclVarStmt&>(s);
            os << n.type.str();
            for (size_t i = 0; i < n.vars.size(); ++i) {
                os << (i ? ", " : " ") << n.vars[i].name;
                if (n.vars[i].array_size) os << "[" << n.vars[i].array_size << "]";
                if (n.vars[i].init) os << " = " << print_expr(*n.vars[i].init);
                else if (n.vars[i].init_stmt) os << " = " << summarize_stmt(*n.vars[i].init_stmt);
            }
            break;
        }
        case StmtKind::CBlock:
            os << "C do ... end";
            break;
        case StmtKind::Pure: {
            const auto& n = static_cast<const PureStmt&>(s);
            os << "pure";
            for (size_t i = 0; i < n.names.size(); ++i) os << (i ? ", _" : " _") << n.names[i];
            break;
        }
        case StmtKind::Deterministic: {
            const auto& n = static_cast<const DeterministicStmt&>(s);
            os << "deterministic";
            for (size_t i = 0; i < n.names.size(); ++i) os << (i ? ", _" : " _") << n.names[i];
            break;
        }
        case StmtKind::AwaitExt:
            os << "await " << static_cast<const AwaitExtStmt&>(s).event;
            break;
        case StmtKind::AwaitInt:
            os << "await " << static_cast<const AwaitIntStmt&>(s).event;
            break;
        case StmtKind::AwaitTime:
            os << "await " << format_micros(static_cast<const AwaitTimeStmt&>(s).us);
            break;
        case StmtKind::AwaitDyn:
            os << "await (" << print_expr(*static_cast<const AwaitDynStmt&>(s).us) << ")";
            break;
        case StmtKind::AwaitForever:
            os << "await forever";
            break;
        case StmtKind::EmitInt: {
            const auto& n = static_cast<const EmitIntStmt&>(s);
            os << "emit " << n.event;
            if (n.value) os << " = " << print_expr(*n.value);
            break;
        }
        case StmtKind::EmitExt: {
            const auto& n = static_cast<const EmitExtStmt&>(s);
            os << "emit " << n.event;
            if (n.value) os << " = " << print_expr(*n.value);
            break;
        }
        case StmtKind::EmitTime:
            os << "emit " << format_micros(static_cast<const EmitTimeStmt&>(s).us);
            break;
        case StmtKind::If:
            os << "if " << print_expr(*static_cast<const IfStmt&>(s).cond) << " then ...";
            break;
        case StmtKind::Loop:
            os << "loop do ... end";
            break;
        case StmtKind::Break:
            os << "break";
            break;
        case StmtKind::Par:
            os << "par do ... end";
            break;
        case StmtKind::ExprStmt:
            os << print_expr(*static_cast<const ExprStmtStmt&>(s).expr);
            break;
        case StmtKind::Assign: {
            const auto& n = static_cast<const AssignStmt&>(s);
            os << print_expr(*n.lhs) << " = ";
            if (n.rhs_expr) {
                os << print_expr(*n.rhs_expr);
            } else if (n.rhs_stmt) {
                os << summarize_stmt(*n.rhs_stmt);
            }
            break;
        }
        case StmtKind::Return: {
            const auto& n = static_cast<const ReturnStmt&>(s);
            os << "return";
            if (n.value) os << " " << print_expr(*n.value);
            break;
        }
        case StmtKind::Block:
            os << "do ... end";
            break;
        case StmtKind::Async:
            os << "async do ... end";
            break;
    }
    return os.str();
}

std::string print_block(const BlockBody& body, int indent) {
    std::ostringstream os;
    print_body(body, os, indent);
    return os.str();
}

std::string print_stmt(const Stmt& s, int indent) {
    std::ostringstream os;
    print_stmt(s, os, indent);
    return os.str();
}

}  // namespace ceu::ast
