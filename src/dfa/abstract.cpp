#include "dfa/abstract.hpp"

#include <algorithm>
#include <sstream>

#include "ast/print.hpp"
#include "flow/flowgraph.hpp"

namespace ceu::dfa {

using flat::FlatProgram;
using flat::GateInfo;
using flat::Instr;
using flat::IOp;
using flat::kNormalPrio;
using flat::Pc;

// ---------------------------------------------------------------------------
// MachineState
// ---------------------------------------------------------------------------

std::string MachineState::key() const {
    std::ostringstream os;
    for (uint8_t g : gates) os << (g ? '1' : '0');
    os << '|';
    std::vector<std::pair<int, Micros>> t = timers;
    std::sort(t.begin(), t.end());
    for (const auto& [g, rem] : t) os << g << ':' << rem << ',';
    os << '|';
    for (const auto& [par, cnt] : counters) os << par << '=' << cnt << ',';
    return os.str();
}

bool MachineState::has_active_gate() const {
    for (uint8_t g : gates) {
        if (g) return true;
    }
    return false;
}

std::string WitnessStep::label() const {
    switch (kind) {
        case Kind::Boot: return "boot";
        case Kind::Event: return event;
        case Kind::Time:
            return advance > 0 ? "TIME+" + format_micros(advance) : "TIME+?";
        case Kind::AsyncDone: return "async#" + event;
    }
    return "?";
}

std::string Conflict::str() const {
    std::ostringstream os;
    switch (kind) {
        case Kind::Variable: os << "variable '" << what << "'"; break;
        case Kind::InternalEvent: os << "internal event '" << what << "'"; break;
        case Kind::CCall: os << "C call(s) " << what; break;
        case Kind::Escape: os << "block exit/return (" << what << ")"; break;
    }
    os << " accessed concurrently (" << loc_a.str() << " vs " << loc_b.str()
       << ") on " << trigger;
    if (occurrences > 1) os << " [x" << occurrences << "]";
    return os.str();
}

std::string Trigger::label(const flat::CompiledProgram& cp) const {
    switch (kind) {
        case Kind::Boot: return "boot";
        case Kind::Ext: return cp.sema.inputs[static_cast<size_t>(event)].name;
        case Kind::Time: {
            std::string l = "TIME";
            if (advance > 0) l += "+" + format_micros(advance);
            if (advance == 0) l += "+?";
            return l;
        }
        case Kind::AsyncDone: return "async#" + std::to_string(event);
    }
    return "?";
}

WitnessStep witness_step(const flat::CompiledProgram& cp, const Trigger& t) {
    WitnessStep s;
    switch (t.kind) {
        case Trigger::Kind::Boot:
            s.kind = WitnessStep::Kind::Boot;
            break;
        case Trigger::Kind::Ext:
            s.kind = WitnessStep::Kind::Event;
            s.event = cp.sema.inputs[static_cast<size_t>(t.event)].name;
            break;
        case Trigger::Kind::Time:
            s.kind = WitnessStep::Kind::Time;
            s.advance = t.advance;
            break;
        case Trigger::Kind::AsyncDone:
            s.kind = WitnessStep::Kind::AsyncDone;
            s.event = std::to_string(t.event);
            break;
    }
    return s;
}

MachineState initial_state(const flat::CompiledProgram& cp) {
    MachineState ms;
    ms.gates.assign(cp.flat.gates.size(), 0);
    return ms;
}

// ---------------------------------------------------------------------------
// Abstract machine
// ---------------------------------------------------------------------------

namespace {

struct Seg {
    std::set<int> reads, writes;       // variable decl ids
    std::set<int> emits, arrivals;     // internal event ids
    std::vector<std::pair<std::string, SourceLoc>> ccalls;
    std::map<int, SourceLoc> var_loc;  // representative location per var
    std::map<int, SourceLoc> evt_loc;  // representative location per event
    std::map<int, SourceLoc> escapes;  // escape index (-1: program return)
    Pc entry = -1;                     // pc the segment started at
};

struct AbsTrack {
    Pc pc = 0;
    int prio = kNormalPrio;
    uint64_t seq = 0;
    int parent_seg = -1;
    // A par/and rejoin is ordered after *every* branch end, not only the
    // one that scheduled it.
    std::vector<int> extra_parents;
};

struct AbsFrame {
    Pc resume = 0;
    int prio = kNormalPrio;
    bool dead = false;
    int seg = -1;
    size_t seg_watermark = 0;  // segments created before the push
};

struct Machine {
    std::vector<uint8_t> gates;
    std::vector<std::pair<int, Micros>> timers;
    std::map<int, int64_t> counters;      // par idx -> remaining branches
    std::map<int, int64_t> flags;         // hidden slot -> value (transient)
    std::map<int, std::vector<int>> branch_ends;  // par idx -> segments
    std::vector<AbsTrack> queue;
    std::vector<AbsFrame> stack;
    std::vector<Seg> segs;
    std::vector<std::pair<int, int>> hb;  // happens-before edges
    std::set<std::string> executed;
    uint64_t seq = 0;
    bool terminated = false;  // a ProgReturn ran this reaction
};

class AbstractExec {
  public:
    AbstractExec(const flat::CompiledProgram& cp, const Trigger& trigger)
        : cp_(cp), fp_(cp.flat), trigger_(trigger) {}

    std::vector<ReactionOutcome> run(const MachineState& from) {
        Machine m;
        m.gates = from.gates;
        m.timers = from.timers;
        m.counters = from.counters;

        // Apply the trigger: advance timers, wake fired gates (one root
        // segment each — concurrent by construction).
        if (trigger_.kind == Trigger::Kind::Time && trigger_.advance > 0) {
            for (auto& [g, rem] : m.timers) {
                if (rem != kUnknownRemainder) rem -= trigger_.advance;
            }
        }
        if (trigger_.kind == Trigger::Kind::Boot) {
            if (trigger_.boot_pcs.empty()) {
                m.queue.push_back({0, kNormalPrio, m.seq++, -1, {}});
            } else {
                // Modular boot: each entry is its own parentless root track,
                // so the arms are pairwise unordered — the same concurrency
                // structure ParSpawn creates when the whole program boots
                // (the spawner segment orders the prelude before every arm,
                // never the arms against each other).
                for (Pc b : trigger_.boot_pcs) {
                    m.queue.push_back({b, kNormalPrio, m.seq++, -1, {}});
                }
            }
        } else {
            for (int g : trigger_.gates) {
                if (!m.gates[static_cast<size_t>(g)]) continue;
                m.gates[static_cast<size_t>(g)] = 0;
                std::erase_if(m.timers,
                              [g](const std::pair<int, Micros>& t) { return t.first == g; });
                m.queue.push_back({fp_.gates[static_cast<size_t>(g)].cont, kNormalPrio,
                                   m.seq++, -1, {}});
            }
        }
        explore(std::move(m));
        return std::move(outcomes_);
    }

  private:
    const flat::CompiledProgram& cp_;
    const FlatProgram& fp_;
    const Trigger& trigger_;
    std::vector<ReactionOutcome> outcomes_;

    // -- operation recording ---------------------------------------------------

    void record_reads(Machine& m, int seg, const ast::Expr& e) {
        ast::walk_exprs(e, [&](const ast::Expr& x) {
            if (x.kind == ast::ExprKind::Var) {
                const auto& v = static_cast<const ast::VarExpr&>(x);
                if (v.decl_id >= 0) {
                    m.segs[static_cast<size_t>(seg)].reads.insert(v.decl_id);
                    m.segs[static_cast<size_t>(seg)].var_loc.emplace(v.decl_id, x.loc);
                }
            } else if (x.kind == ast::ExprKind::Call) {
                record_ccall(m, seg, static_cast<const ast::CallExpr&>(x));
            }
        });
    }

    void record_ccall(Machine& m, int seg, const ast::CallExpr& call) {
        std::string name;
        if (call.fn->kind == ast::ExprKind::CSym) {
            name = static_cast<const ast::CSymExpr&>(*call.fn).name;
        } else if (call.fn->kind == ast::ExprKind::Field) {
            const auto& f = static_cast<const ast::FieldExpr&>(*call.fn);
            if (f.base->kind == ast::ExprKind::CSym) {
                name = static_cast<const ast::CSymExpr&>(*f.base).name + "." + f.field;
            } else {
                name = f.field;
            }
        }
        if (!name.empty()) {
            m.segs[static_cast<size_t>(seg)].ccalls.emplace_back(name, call.loc);
        }
    }

    void record_write(Machine& m, int seg, const ast::Expr& lhs) {
        // Peel indices: `a[i] = ...` writes a, reads i.
        const ast::Expr* root = &lhs;
        while (root->kind == ast::ExprKind::Index) {
            const auto& ix = static_cast<const ast::IndexExpr&>(*root);
            record_reads(m, seg, *ix.index);
            root = ix.base.get();
        }
        if (root->kind == ast::ExprKind::Var) {
            const auto& v = static_cast<const ast::VarExpr&>(*root);
            if (v.decl_id >= 0) {
                m.segs[static_cast<size_t>(seg)].writes.insert(v.decl_id);
                m.segs[static_cast<size_t>(seg)].var_loc.emplace(v.decl_id, root->loc);
            }
        } else if (root->kind == ast::ExprKind::Unop) {
            // `*p = ...`: pointer-mediated; behind the "C hat" (unchecked,
            // like the paper's compiler). Still read the pointer itself.
            record_reads(m, seg, *static_cast<const ast::UnopExpr&>(*root).sub);
        } else if (root->kind == ast::ExprKind::CSym) {
            // Writing a C global is equivalent to a C call on it.
            m.segs[static_cast<size_t>(seg)].ccalls.emplace_back(
                static_cast<const ast::CSymExpr&>(*root).name + "=", root->loc);
        }
    }

    void note_executed(Machine& m, const Instr& i) {
        std::string l = flow::instr_label(cp_, i);
        if (!l.empty()) m.executed.insert(l);
    }

    // -- exploration -------------------------------------------------------------

    void explore(Machine m) {
        for (;;) {
            if (!m.queue.empty()) {
                size_t best = 0;
                for (size_t i = 1; i < m.queue.size(); ++i) {
                    if (m.queue[i].prio > m.queue[best].prio ||
                        (m.queue[i].prio == m.queue[best].prio &&
                         m.queue[i].seq < m.queue[best].seq)) {
                        best = i;
                    }
                }
                AbsTrack t = m.queue[best];
                m.queue.erase(m.queue.begin() + static_cast<std::ptrdiff_t>(best));
                int seg = static_cast<int>(m.segs.size());
                m.segs.emplace_back();
                m.segs.back().entry = t.pc;
                if (t.parent_seg >= 0) m.hb.emplace_back(t.parent_seg, seg);
                for (int p : t.extra_parents) m.hb.emplace_back(p, seg);
                if (!exec(m, t.pc, t.prio, seg)) return;  // forked; children finish
            } else if (!m.stack.empty()) {
                AbsFrame f = m.stack.back();
                m.stack.pop_back();
                if (f.dead) continue;
                int seg = static_cast<int>(m.segs.size());
                m.segs.emplace_back();
                m.segs.back().entry = f.resume;
                // Everything the nested reaction ran precedes the resume.
                if (f.seg >= 0) m.hb.emplace_back(f.seg, seg);
                for (size_t s = f.seg_watermark; s + 1 < m.segs.size(); ++s) {
                    m.hb.emplace_back(static_cast<int>(s), seg);
                }
                if (!exec(m, f.resume, f.prio, seg)) return;
            } else {
                break;
            }
        }
        finish(std::move(m));
    }

    /// Executes one track in segment `seg`. Returns false if the machine
    /// forked (ownership passed to recursive explorations).
    bool exec(Machine& m, Pc pc, int prio, int seg) {
        for (;;) {
            const Instr& I = fp_.code[static_cast<size_t>(pc)];
            switch (I.op) {
                case IOp::Nop:
                    ++pc;
                    break;
                case IOp::Eval:
                    note_executed(m, I);
                    record_reads(m, seg, *I.e1);
                    ++pc;
                    break;
                case IOp::Assign:
                    note_executed(m, I);
                    record_write(m, seg, *I.e1);
                    record_reads(m, seg, *I.e2);
                    ++pc;
                    break;
                case IOp::AssignWake:
                case IOp::AssignSlot:
                    note_executed(m, I);
                    record_write(m, seg, *I.e1);
                    ++pc;
                    break;

                case IOp::IfNot: {
                    note_executed(m, I);
                    record_reads(m, seg, *I.e1);
                    // Unknown condition: fork (the DFA covers all paths).
                    Machine m2 = m;
                    // m  -> condition true  (fall through)
                    // m2 -> condition false (jump)
                    Pc t_pc = pc + 1;
                    Pc f_pc = I.a;
                    if (exec(m2, f_pc, prio, seg)) explore(std::move(m2));
                    pc = t_pc;
                    break;
                }

                case IOp::Jump:
                    pc = I.a;
                    break;

                case IOp::AwaitExt:
                case IOp::AwaitForever:
                    note_executed(m, I);
                    m.gates[static_cast<size_t>(I.b)] = 1;
                    return true;
                case IOp::AwaitInt:
                    note_executed(m, I);
                    m.segs[static_cast<size_t>(seg)].arrivals.insert(I.a);
                    m.segs[static_cast<size_t>(seg)].evt_loc.emplace(I.a, I.loc);
                    m.gates[static_cast<size_t>(I.b)] = 1;
                    return true;
                case IOp::AwaitTime:
                    note_executed(m, I);
                    m.gates[static_cast<size_t>(I.b)] = 1;
                    m.timers.emplace_back(I.b, I.us);
                    return true;
                case IOp::AwaitDyn:
                    note_executed(m, I);
                    record_reads(m, seg, *I.e1);
                    m.gates[static_cast<size_t>(I.b)] = 1;
                    m.timers.emplace_back(I.b, kUnknownRemainder);
                    return true;

                case IOp::EmitOutput: {
                    note_executed(m, I);
                    if (I.e1 != nullptr) record_reads(m, seg, *I.e1);
                    // Concurrent emissions of the same output are order-
                    // sensitive at the environment boundary: model them as
                    // an annotatable C call named after the event, so
                    // `deterministic _O, _O;` (or `pure _O;`) admits them.
                    m.segs[static_cast<size_t>(seg)].ccalls.emplace_back(
                        cp_.sema.outputs[static_cast<size_t>(I.a)].name, I.loc);
                    ++pc;
                    break;
                }

                case IOp::EmitInt: {
                    note_executed(m, I);
                    if (I.e1 != nullptr) record_reads(m, seg, *I.e1);
                    m.segs[static_cast<size_t>(seg)].emits.insert(I.a);
                    m.segs[static_cast<size_t>(seg)].evt_loc.emplace(I.a, I.loc);
                    std::vector<int> firing;
                    for (int g : fp_.int_gates[static_cast<size_t>(I.a)]) {
                        if (m.gates[static_cast<size_t>(g)]) firing.push_back(g);
                    }
                    if (firing.empty()) {
                        ++pc;
                        break;
                    }
                    m.stack.push_back({pc + 1, prio, false, seg, m.segs.size()});
                    for (int g : firing) {
                        m.gates[static_cast<size_t>(g)] = 0;
                        m.queue.push_back({fp_.gates[static_cast<size_t>(g)].cont,
                                           kNormalPrio, m.seq++, seg, {}});
                    }
                    return true;
                }

                case IOp::ParSpawn: {
                    const flat::ParInfo& par = fp_.pars[static_cast<size_t>(I.a)];
                    if (par.counter_slot >= 0) {
                        m.counters[I.a] = static_cast<int64_t>(par.branches.size());
                    }
                    m.flags[par.sched_slot] = 0;
                    for (Pc b : par.branches) {
                        m.queue.push_back({b, kNormalPrio, m.seq++, seg, {}});
                    }
                    return true;
                }

                case IOp::BranchEnd: {
                    const flat::ParInfo& par = fp_.pars[static_cast<size_t>(I.a)];
                    switch (par.kind) {
                        case ast::ParKind::Par:
                            return true;
                        case ast::ParKind::ParAnd: {
                            m.branch_ends[I.a].push_back(seg);
                            int64_t& cnt = m.counters[I.a];
                            if (--cnt > 0) return true;
                            m.counters.erase(I.a);
                            break;
                        }
                        case ast::ParKind::ParOr:
                            break;
                    }
                    int64_t& sched = m.flags[par.sched_slot];
                    if (sched != 0) return true;
                    sched = 1;
                    AbsTrack cont{par.cont, par.prio, m.seq++, seg, {}};
                    if (par.kind == ast::ParKind::ParAnd) {
                        // Ordered after every branch that completed.
                        cont.extra_parents = m.branch_ends[I.a];
                        m.branch_ends.erase(I.a);
                    }
                    m.queue.push_back(std::move(cont));
                    return true;
                }

                case IOp::KillRegion: {
                    const flat::RegionInfo& r = fp_.regions[static_cast<size_t>(I.a)];
                    for (int g = r.gate_begin; g < r.gate_end; ++g) {
                        m.gates[static_cast<size_t>(g)] = 0;
                    }
                    std::erase_if(m.timers, [&](const std::pair<int, Micros>& t) {
                        return t.first >= r.gate_begin && t.first < r.gate_end;
                    });
                    std::erase_if(m.queue, [&](const AbsTrack& t) {
                        return t.pc >= r.pc_begin && t.pc < r.pc_end;
                    });
                    for (AbsFrame& f : m.stack) {
                        if (f.resume >= r.pc_begin && f.resume < r.pc_end) f.dead = true;
                    }
                    // Kill par/and counters belonging to killed pars.
                    for (size_t p = 0; p < fp_.pars.size(); ++p) {
                        const auto& pi = fp_.pars[p];
                        if (!pi.branches.empty() && pi.branches.front() >= r.pc_begin &&
                            pi.branches.front() < r.pc_end) {
                            m.counters.erase(static_cast<int>(p));
                        }
                    }
                    ++pc;
                    break;
                }

                case IOp::Escape: {
                    note_executed(m, I);
                    // Recorded even when the exit was already scheduled by
                    // a sibling: that second arrival IS the race.
                    m.segs[static_cast<size_t>(seg)].escapes.emplace(I.a, I.loc);
                    const flat::EscapeInfo& esc = fp_.escapes[static_cast<size_t>(I.a)];
                    int64_t& sched = m.flags[esc.sched_slot];
                    if (sched != 0) return true;
                    sched = 1;
                    if (I.e1 != nullptr) record_reads(m, seg, *I.e1);
                    m.queue.push_back({esc.cont, esc.prio, m.seq++, seg, {}});
                    return true;
                }

                case IOp::ClearSlot:
                    m.flags[I.b] = 0;
                    ++pc;
                    break;
                case IOp::Once: {
                    int64_t& v = m.flags[I.b];
                    if (v != 0) return true;
                    v = 1;
                    ++pc;
                    break;
                }

                case IOp::ProgReturn:
                    note_executed(m, I);
                    m.segs[static_cast<size_t>(seg)].escapes.emplace(-1, I.loc);
                    if (I.e1 != nullptr) record_reads(m, seg, *I.e1);
                    // Don't clear the queue: tracks already scheduled would
                    // have run *before* the return under another tie-break,
                    // so they ghost-run (as killed siblings do for Escape)
                    // and the conflict check sees their effects. The
                    // terminal wipe happens in finish().
                    m.terminated = true;
                    return true;

                case IOp::AsyncRun:
                    note_executed(m, I);
                    m.gates[static_cast<size_t>(I.b)] = 1;
                    return true;

                case IOp::AsyncYield:
                case IOp::AsyncEnd:
                case IOp::EmitExtAsync:
                case IOp::EmitTimeAsync:
                    // Async bodies run outside the synchronous reaction; the
                    // analysis treats their completion as an input. Nothing
                    // inside them participates in a reaction chain.
                    return true;

                case IOp::Halt:
                    return true;
            }
        }
    }

    // -- conflict detection at reaction end -----------------------------------------

    void finish(Machine m) {
        if (m.terminated) {
            // Program returned: nothing awaits any more.
            std::fill(m.gates.begin(), m.gates.end(), 0);
            m.timers.clear();
            m.counters.clear();
        }
        ReactionOutcome out;
        out.next.gates = std::move(m.gates);
        out.next.timers = std::move(m.timers);
        out.next.counters = std::move(m.counters);
        out.executed.assign(m.executed.begin(), m.executed.end());

        // Transitive closure of happens-before over the (small) segment set.
        size_t n = m.segs.size();
        std::vector<std::vector<uint8_t>> reach(n, std::vector<uint8_t>(n, 0));
        for (const auto& [a, b] : m.hb) {
            if (a >= 0 && b >= 0) reach[static_cast<size_t>(a)][static_cast<size_t>(b)] = 1;
        }
        for (size_t k = 0; k < n; ++k) {
            for (size_t i = 0; i < n; ++i) {
                if (!reach[i][k]) continue;
                for (size_t j = 0; j < n; ++j) {
                    if (reach[k][j]) reach[i][j] = 1;
                }
            }
        }

        const std::string trig = trigger_.label(cp_);
        auto var_name = [&](int d) { return cp_.sema.vars[static_cast<size_t>(d)].name; };
        auto evt_name = [&](int e) {
            return cp_.sema.internals[static_cast<size_t>(e)].name;
        };

        for (size_t i = 0; i < n; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
                if (reach[i][j] || reach[j][i]) continue;  // ordered
                const Seg& a = m.segs[i];
                const Seg& b = m.segs[j];

                // Variables: write in one, read-or-write in the other.
                auto var_conflicts = [&](const Seg& w, const Seg& r) {
                    for (int d : w.writes) {
                        if (r.reads.count(d) || r.writes.count(d)) {
                            Conflict c;
                            c.kind = Conflict::Kind::Variable;
                            c.what = var_name(d);
                            c.loc_a = w.var_loc.count(d) ? w.var_loc.at(d) : SourceLoc{};
                            c.loc_b = r.var_loc.count(d) ? r.var_loc.at(d) : SourceLoc{};
                            c.trigger = trig;
                            out.conflicts.push_back(c);
                        }
                    }
                };
                var_conflicts(a, b);
                var_conflicts(b, a);

                // Internal events: emit in one, emit-or-await in the other.
                auto evt_conflicts = [&](const Seg& e, const Seg& o) {
                    for (int ev : e.emits) {
                        if (o.emits.count(ev) || o.arrivals.count(ev)) {
                            Conflict c;
                            c.kind = Conflict::Kind::InternalEvent;
                            c.what = evt_name(ev);
                            c.loc_a = e.evt_loc.count(ev) ? e.evt_loc.at(ev) : SourceLoc{};
                            c.loc_b = o.evt_loc.count(ev) ? o.evt_loc.at(ev) : SourceLoc{};
                            c.trigger = trig;
                            out.conflicts.push_back(c);
                        }
                    }
                };
                evt_conflicts(a, b);
                evt_conflicts(b, a);

                // Block exits / program returns. Two unordered exits of
                // the same target race for the result value and the
                // continuation; an exit also kills every unfinished trail
                // of its region, so racing an *effectful* trail inside the
                // region means those effects happen-or-not by order.
                auto has_effects = [](const Seg& s) {
                    return !s.writes.empty() || !s.emits.empty() || !s.ccalls.empty() ||
                           !s.escapes.empty();
                };
                auto effect_loc = [](const Seg& s) {
                    if (!s.ccalls.empty()) return s.ccalls.front().second;
                    if (!s.var_loc.empty()) return s.var_loc.begin()->second;
                    if (!s.evt_loc.empty()) return s.evt_loc.begin()->second;
                    if (!s.escapes.empty()) return s.escapes.begin()->second;
                    return SourceLoc{};
                };
                auto esc_conflicts = [&](const Seg& e, const Seg& o) {
                    for (const auto& [idx, eloc] : e.escapes) {
                        SourceLoc oloc;
                        bool collide = false;
                        auto same = o.escapes.find(idx);
                        if (same != o.escapes.end()) {
                            collide = true;
                            oloc = same->second;
                        } else if (has_effects(o)) {
                            bool in_region = idx < 0;  // return kills all
                            if (idx >= 0) {
                                const flat::RegionInfo& r =
                                    fp_.regions[static_cast<size_t>(
                                        fp_.escapes[static_cast<size_t>(idx)].region)];
                                in_region = o.entry >= r.pc_begin && o.entry < r.pc_end;
                            }
                            if (in_region) {
                                collide = true;
                                oloc = effect_loc(o);
                            }
                        }
                        if (collide) {
                            Conflict c;
                            c.kind = Conflict::Kind::Escape;
                            c.what = idx < 0 ? "return" : "break/return";
                            c.loc_a = eloc;
                            c.loc_b = oloc;
                            c.trigger = trig;
                            out.conflicts.push_back(c);
                        }
                    }
                };
                esc_conflicts(a, b);
                esc_conflicts(b, a);

                // C calls: every unordered pair must be annotation-allowed.
                for (const auto& [f, floc] : a.ccalls) {
                    for (const auto& [g, gloc] : b.ccalls) {
                        if (!cp_.sema.ccalls.allowed(f, g)) {
                            Conflict c;
                            c.kind = Conflict::Kind::CCall;
                            c.what = "_" + f + " / _" + g;
                            c.loc_a = floc;
                            c.loc_b = gloc;
                            c.trigger = trig;
                            out.conflicts.push_back(c);
                        }
                    }
                }
            }
        }
        outcomes_.push_back(std::move(out));
    }
};

}  // namespace

std::vector<ReactionOutcome> abstract_react(const flat::CompiledProgram& cp,
                                            const MachineState& from,
                                            const Trigger& trigger) {
    return AbstractExec(cp, trigger).run(from);
}

std::vector<Trigger> enumerate_triggers(const flat::CompiledProgram& cp,
                                        const MachineState& state) {
    const FlatProgram& fp = cp.flat;
    std::vector<Trigger> out;

    // External input events with at least one active await.
    for (size_t evt = 0; evt < fp.ext_gates.size(); ++evt) {
        Trigger t;
        t.kind = Trigger::Kind::Ext;
        t.event = static_cast<int>(evt);
        for (int g : fp.ext_gates[evt]) {
            if (state.gates[static_cast<size_t>(g)]) t.gates.push_back(g);
        }
        if (!t.gates.empty()) out.push_back(std::move(t));
    }

    // Async completions.
    for (size_t a = 0; a < fp.asyncs.size(); ++a) {
        int g = fp.asyncs[a].gate;
        if (state.gates[static_cast<size_t>(g)]) {
            Trigger t;
            t.kind = Trigger::Kind::AsyncDone;
            t.event = static_cast<int>(a);
            t.gates.push_back(g);
            out.push_back(std::move(t));
        }
    }

    // Wall-clock time: the earliest known deadline group fires together;
    // unknown-duration timers (await (expr)) may fire before it, with it,
    // or after it — all orderings are explored (this is what forces the
    // ship demo's `pure`/`deterministic` annotations).
    std::vector<int> known_min_gates;
    Micros min_rem = -1;
    std::vector<int> unknown_gates;
    for (const auto& [g, rem] : state.timers) {
        if (!state.gates[static_cast<size_t>(g)]) continue;
        if (rem == kUnknownRemainder) {
            unknown_gates.push_back(g);
        } else if (min_rem < 0 || rem < min_rem) {
            min_rem = rem;
            known_min_gates.assign(1, g);
        } else if (rem == min_rem) {
            known_min_gates.push_back(g);
        }
    }
    if (!known_min_gates.empty()) {
        Trigger t;
        t.kind = Trigger::Kind::Time;
        t.advance = min_rem;
        t.gates = known_min_gates;
        out.push_back(t);
        for (int u : unknown_gates) {
            Trigger together = t;
            together.gates.push_back(u);
            out.push_back(std::move(together));
        }
    }
    for (int u : unknown_gates) {
        Trigger t;
        t.kind = Trigger::Kind::Time;
        t.advance = 0;
        t.gates.push_back(u);
        out.push_back(std::move(t));
    }
    // Pairs of unknown timers may coincide.
    for (size_t i = 0; i < unknown_gates.size(); ++i) {
        for (size_t j = i + 1; j < unknown_gates.size(); ++j) {
            Trigger t;
            t.kind = Trigger::Kind::Time;
            t.advance = 0;
            t.gates = {unknown_gates[i], unknown_gates[j]};
            out.push_back(std::move(t));
        }
    }
    return out;
}

}  // namespace ceu::dfa
