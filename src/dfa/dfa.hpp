// Temporal analysis: builds the deterministic-finite-automaton covering
// every reachable reaction of a program (paper §2.6, Figure 2), detecting
// the three sources of nondeterminism:
//   1. concurrent access to variables,
//   2. concurrent access to internal events (emit vs emit/await),
//   3. concurrent C calls not allowed by `pure`/`deterministic` annotations.
//
// The conversion is exponential in the worst case (a theoretical lower
// bound the paper acknowledges, §7); `DfaOptions::max_states` bounds the
// exploration, and `complete()` reports whether the cover is exhaustive.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dfa/abstract.hpp"

namespace ceu::dfa {

struct DfaOptions {
    size_t max_states = 20000;
    bool stop_at_first_conflict = false;
    /// Boot the exploration at these entry pcs (one concurrent root track
    /// each) instead of pc 0. Used by the modular analysis to explore a
    /// subset of top-level par arms in isolation. Empty = whole program.
    std::vector<flat::Pc> boot_pcs;
};

struct DfaTransition {
    std::string label;  // triggering input ("A", "TIME+10ms", "async#0")
    int target = -1;
};

struct DfaStateNode {
    int id = 0;
    MachineState state;
    std::vector<DfaTransition> out;
    std::vector<std::string> executed;  // stmts run by reactions *entering* it
    bool has_conflict = false;          // some entering reaction conflicts
    bool terminal = false;              // no awaiting trails: program over
    // Witness bookkeeping: the first-discovered predecessor and the input
    // that led from it into this state (pred < 0: entered by boot).
    int pred = -1;
    WitnessStep pred_step;
};

/// Deduplicates conflicts across DFA states: the same (kind, what, loc
/// pair) reached via many states/triggers is reported once with an
/// occurrence count; the (a, b)/(b, a) orderings are normalized. Keeps the
/// shortest (then lexicographically smallest) witness so reports stay
/// deterministic regardless of exploration order. Occurrence counts SUM on
/// merge, so composing per-module ConflictSets (each already counted)
/// reports the same totals as one set fed every raw discovery.
class ConflictSet {
  public:
    void add(Conflict c);
    /// Sorted (by kind, name, locations) final conflict list.
    [[nodiscard]] std::vector<Conflict> take();
    [[nodiscard]] bool empty() const { return by_key_.empty(); }

    /// The normalization/dedup key (also used by Dfa::signature()).
    static std::string key(const Conflict& c);

  private:
    std::map<std::string, Conflict> by_key_;
};

/// Rebasing context for `Dfa::signature(scope)`: renders a module-group
/// exploration in module-local coordinates (gate ordinals within the
/// group's gate ranges, par/async ordinals, source lines relative to each
/// module's anchor line) so the signature is invariant under edits to
/// *other* modules — the property the persistent analysis cache keys on.
struct SignatureScope {
    /// Global gate-id ranges [begin, end) owned by the group, sorted.
    /// A gate is rendered as its offset in the concatenation of the ranges.
    std::vector<std::pair<int, int>> gate_ranges;
    std::map<int, int> par_remap;    // global par index -> local ordinal
    std::map<int, int> async_remap;  // global async index -> local ordinal
    /// Source-line rebasing: a line within [begin, end] renders as
    /// `ordinal@line-anchor`; lines outside every range render verbatim.
    struct LineRange {
        int begin = 0, end = 0;  // inclusive source-line span of one module
        int anchor = 0;          // the module's first source line
        int ordinal = 0;         // module position within the group
    };
    std::vector<LineRange> lines;

    [[nodiscard]] int gate_local(int gate) const;
    [[nodiscard]] std::string line_str(int line) const;
};

class Dfa {
  public:
    static Dfa build(const flat::CompiledProgram& cp, DfaOptions opt = {});

    /// Assembles a Dfa from externally-explored parts (the parallel
    /// explorer in analysis/explore.cpp). `states` must already carry
    /// dense ids matching their indices; `conflicts` should come from a
    /// ConflictSet so they are deduplicated and sorted.
    static Dfa assemble(std::vector<DfaStateNode> states, std::vector<Conflict> conflicts,
                        bool complete);

    /// True iff no reachable reaction exhibits nondeterminism.
    [[nodiscard]] bool deterministic() const { return conflicts_.empty(); }
    [[nodiscard]] const std::vector<Conflict>& conflicts() const { return conflicts_; }
    [[nodiscard]] size_t state_count() const { return states_.size(); }
    [[nodiscard]] const std::vector<DfaStateNode>& states() const { return states_; }
    /// False if exploration hit `max_states` (analysis then incomplete).
    [[nodiscard]] bool complete() const { return complete_; }

    /// Graphviz export in the spirit of the paper's Figure 2: one node per
    /// state, labeled with the statements its entering reactions execute;
    /// conflicting states are outlined.
    [[nodiscard]] std::string to_dot(const std::string& title = "dfa") const;

    /// Human-readable conflict report (empty when deterministic).
    [[nodiscard]] std::string report() const;

    /// The input chain (boot first) that reaches `state_id` from the
    /// initial state, following first-discovered predecessors.
    [[nodiscard]] std::vector<WitnessStep> witness_into(int state_id) const;

    /// Order-normalized canonical form: independent of state ids and
    /// exploration order, so a serial and a parallel exploration of the
    /// same program compare equal iff they found the same state set, the
    /// same transition structure, and the same conflict set.
    [[nodiscard]] std::string signature() const;

    /// `signature()` rebased into module-local coordinates (see
    /// SignatureScope): the canonical form of a sub-automaton explored for
    /// one module group, stable under edits to other modules.
    [[nodiscard]] std::string signature(const SignatureScope& scope) const;

  private:
    std::vector<DfaStateNode> states_;
    std::vector<Conflict> conflicts_;
    bool complete_ = true;
};

/// Convenience: full pipeline check as the Céu compiler would run it —
/// returns the conflicts (empty = program accepted).
std::vector<Conflict> temporal_analysis(const flat::CompiledProgram& cp,
                                        DfaOptions opt = {});

}  // namespace ceu::dfa
