// Abstract reaction execution — the front half of the temporal analysis
// (paper §2.6/§4.1).
//
// A reaction chain is re-executed *abstractly*: variable values are unknown
// (every `if` forks the machine), but the control machinery — gates, par
// counters, rejoin scheduling flags, the internal-event stack — is tracked
// concretely, exactly as the runtime would. Each scheduled track execution
// is a *segment*; happens-before edges connect spawner→spawned,
// emitter→awakened, and nested-reaction→emitter-resume. Two segments with
// no path between them ran concurrently: their recorded operations (reads,
// writes, internal-event emits/await-arrivals, C calls) are checked
// pairwise for the paper's three sources of nondeterminism.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "codegen/flatten.hpp"

namespace ceu::dfa {

/// Remainder value meaning "duration unknown until runtime" (await (expr)).
constexpr Micros kUnknownRemainder = -1;

/// Inter-reaction machine state: what must be remembered between reactions
/// for the exploration to be exact. Hidden scheduling flags are transient
/// (reset on construct re-entry) and deliberately excluded.
struct MachineState {
    std::vector<uint8_t> gates;                       // active flags per gate
    std::vector<std::pair<int, Micros>> timers;       // gate -> remainder
    std::map<int, int64_t> counters;                  // par/and counters

    [[nodiscard]] std::string key() const;
    [[nodiscard]] bool has_active_gate() const;
};

/// One step of a witness trace: an input the environment must produce to
/// move the program one reaction further along the path to a conflict.
/// The chain boot -> step -> ... -> step is replayable as an env::Script
/// (see analysis/witness.hpp).
struct WitnessStep {
    enum class Kind { Boot, Event, Time, AsyncDone };
    Kind kind = Kind::Boot;
    std::string event;   // Event: input event name
    Micros advance = 0;  // Time: clock advance (0 = unknown-duration timer)

    [[nodiscard]] std::string label() const;
};

/// One detected source of nondeterminism. `Escape` extends the paper's
/// three sources: concurrent exits of the same block (two par/or branches
/// breaking, two value-par branches returning, two program returns) — or a
/// block exit racing an effectful trail it would kill — leave the winner,
/// and thus the observable behaviour, to scheduling order. (Found by the
/// differential conformance harness, tests/corpus/.)
struct Conflict {
    enum class Kind { Variable, InternalEvent, CCall, Escape };
    Kind kind = Kind::Variable;
    std::string what;   // variable/event/function name(s)
    SourceLoc loc_a, loc_b;
    std::string trigger;  // the input that provoked the concurrent reaction

    /// Concrete input sequence (boot first) whose last step provokes the
    /// conflicting reaction. Filled by the DFA explorers.
    std::vector<WitnessStep> witness;
    /// How many distinct (DFA state, trigger) discoveries reported this
    /// same (kind, what, loc pair); see ConflictSet.
    int occurrences = 1;

    [[nodiscard]] std::string str() const;
};

/// Result of abstractly executing one reaction from one machine state.
struct ReactionOutcome {
    MachineState next;
    std::vector<Conflict> conflicts;
    std::vector<std::string> executed;  // statement summaries (DFA labels)
};

/// The triggering input of a reaction.
struct Trigger {
    enum class Kind { Boot, Ext, Time, AsyncDone };
    Kind kind = Kind::Boot;
    int event = -1;             // Ext: input event id; AsyncDone: async idx
    std::vector<int> gates;     // gates fired by this trigger
    Micros advance = 0;         // Time: amount subtracted from remainders
    /// Boot only: entry pcs to spawn as concurrent root tracks instead of
    /// pc 0. The modular analysis boots a par-arm subset this way — each pc
    /// is one arm's entry, mutually unordered exactly as ParSpawn would
    /// leave them. Empty = whole program (boot at pc 0).
    std::vector<flat::Pc> boot_pcs;

    [[nodiscard]] std::string label(const flat::CompiledProgram& cp) const;
};

/// Runs one abstract reaction. Forks on unknown conditions, so several
/// outcomes may be produced; all are exact covers of runtime possibilities.
std::vector<ReactionOutcome> abstract_react(const flat::CompiledProgram& cp,
                                            const MachineState& from,
                                            const Trigger& trigger);

/// Enumerates the triggers applicable in `state` (awaited external events,
/// expiring timer groups with unknown-duration forks, async completions).
std::vector<Trigger> enumerate_triggers(const flat::CompiledProgram& cp,
                                        const MachineState& state);

/// The replayable witness step corresponding to a trigger.
WitnessStep witness_step(const flat::CompiledProgram& cp, const Trigger& t);

/// Initial machine state (everything inactive) sized for `cp`.
MachineState initial_state(const flat::CompiledProgram& cp);

}  // namespace ceu::dfa
