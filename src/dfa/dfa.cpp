#include "dfa/dfa.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <sstream>
#include <unordered_map>

namespace ceu::dfa {

// ---------------------------------------------------------------------------
// ConflictSet
// ---------------------------------------------------------------------------

std::string ConflictSet::key(const Conflict& c) {
    // The pair is symmetric: order the locations so (a, b) and (b, a)
    // produce the same key.
    SourceLoc lo = c.loc_a;
    SourceLoc hi = c.loc_b;
    if (hi.line < lo.line || (hi.line == lo.line && hi.col < lo.col)) {
        std::swap(lo, hi);
    }
    std::ostringstream os;
    os << static_cast<int>(c.kind) << '|' << c.what << '|' << lo.line << ':'
       << lo.col << '|' << hi.line << ':' << hi.col;
    return os.str();
}

void ConflictSet::add(Conflict c) {
    // Normalize the symmetric pair so the stored conflict matches its key.
    if (c.loc_b.line < c.loc_a.line ||
        (c.loc_b.line == c.loc_a.line && c.loc_b.col < c.loc_a.col)) {
        std::swap(c.loc_a, c.loc_b);
    }
    std::string k = key(c);
    auto it = by_key_.find(k);
    if (it == by_key_.end()) {
        by_key_.emplace(std::move(k), std::move(c));
        return;
    }
    Conflict& have = it->second;
    // Sum, don't increment: `c` may itself be a merged conflict carrying
    // the discovery count of a whole module exploration (composition).
    have.occurrences += c.occurrences;
    // Prefer the shortest witness; break ties lexicographically so the
    // merged result is independent of discovery order.
    auto witness_rank = [](const Conflict& x) {
        std::string joined;
        for (const WitnessStep& s : x.witness) joined += s.label() + ";";
        return std::make_pair(x.witness.size(), joined);
    };
    if (witness_rank(c) < witness_rank(have)) {
        have.witness = std::move(c.witness);
        have.trigger = std::move(c.trigger);
    }
}

std::vector<Conflict> ConflictSet::take() {
    std::vector<Conflict> out;
    out.reserve(by_key_.size());
    for (auto& [k, c] : by_key_) out.push_back(std::move(c));
    by_key_.clear();
    return out;
}

// ---------------------------------------------------------------------------
// Serial exploration (the reference explorer)
// ---------------------------------------------------------------------------

Dfa Dfa::build(const flat::CompiledProgram& cp, DfaOptions opt) {
    Dfa dfa;
    std::unordered_map<std::string, int> index;
    std::deque<int> worklist;
    ConflictSet cset;
    // Conflicts keep only the source state until exploration ends; the
    // witness chain is reconstructed from predecessor links afterwards.
    struct Pending {
        Conflict c;
        int src = -1;  // state the conflicting reaction left from (-1: boot)
        WitnessStep step;
    };
    std::vector<Pending> pending;
    bool any_conflict = false;

    auto intern = [&](MachineState ms, const std::vector<std::string>& executed,
                      bool conflicted, int pred, const WitnessStep& step) -> int {
        std::string key = ms.key();
        auto it = index.find(key);
        int id;
        if (it == index.end()) {
            id = static_cast<int>(dfa.states_.size());
            index.emplace(std::move(key), id);
            DfaStateNode node;
            node.id = id;
            node.terminal = !ms.has_active_gate();
            node.state = std::move(ms);
            node.pred = pred;
            node.pred_step = step;
            dfa.states_.push_back(std::move(node));
            worklist.push_back(id);
        } else {
            id = it->second;
        }
        DfaStateNode& node = dfa.states_[static_cast<size_t>(id)];
        for (const std::string& s : executed) {
            bool seen = false;
            for (const std::string& have : node.executed) {
                if (have == s) {
                    seen = true;
                    break;
                }
            }
            if (!seen) node.executed.push_back(s);
        }
        node.has_conflict = node.has_conflict || conflicted;
        return id;
    };

    // Boot reaction.
    Trigger boot;
    boot.kind = Trigger::Kind::Boot;
    boot.boot_pcs = opt.boot_pcs;
    WitnessStep boot_step = witness_step(cp, boot);
    for (ReactionOutcome& o : abstract_react(cp, initial_state(cp), boot)) {
        for (const Conflict& c : o.conflicts) {
            pending.push_back({c, -1, boot_step});
            any_conflict = true;
        }
        intern(std::move(o.next), o.executed, !o.conflicts.empty(), -1, boot_step);
    }

    while (!worklist.empty()) {
        if (dfa.states_.size() > opt.max_states) {
            dfa.complete_ = false;
            break;
        }
        if (opt.stop_at_first_conflict && any_conflict) {
            dfa.complete_ = false;
            break;
        }
        int id = worklist.front();
        worklist.pop_front();

        // NOTE: take a copy — `intern` may grow the vector and invalidate
        // references into it.
        MachineState state = dfa.states_[static_cast<size_t>(id)].state;
        for (const Trigger& t : enumerate_triggers(cp, state)) {
            std::string label = t.label(cp);
            WitnessStep step = witness_step(cp, t);
            for (ReactionOutcome& o : abstract_react(cp, state, t)) {
                for (const Conflict& c : o.conflicts) {
                    pending.push_back({c, id, step});
                    any_conflict = true;
                }
                int target = intern(std::move(o.next), o.executed, !o.conflicts.empty(),
                                    id, step);
                dfa.states_[static_cast<size_t>(id)].out.push_back({label, target});
            }
        }
    }

    for (Pending& p : pending) {
        p.c.witness = dfa.witness_into(p.src);
        p.c.witness.push_back(p.step);
        cset.add(std::move(p.c));
    }
    dfa.conflicts_ = cset.take();
    return dfa;
}

Dfa Dfa::assemble(std::vector<DfaStateNode> states, std::vector<Conflict> conflicts,
                  bool complete) {
    Dfa dfa;
    dfa.states_ = std::move(states);
    dfa.conflicts_ = std::move(conflicts);
    dfa.complete_ = complete;
    return dfa;
}

std::vector<WitnessStep> Dfa::witness_into(int state_id) const {
    std::vector<WitnessStep> chain;
    if (state_id < 0) {
        // A boot-reaction conflict: the path is just "boot" (appended by
        // the caller as the provoking step).
        return chain;
    }
    int at = state_id;
    while (at >= 0) {
        const DfaStateNode& n = states_[static_cast<size_t>(at)];
        chain.push_back(n.pred_step);
        at = n.pred;
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

std::string Dfa::signature() const {
    // Map ids to state keys so transitions are expressed id-independently.
    std::vector<std::string> keys(states_.size());
    for (size_t i = 0; i < states_.size(); ++i) keys[i] = states_[i].state.key();

    std::vector<std::string> lines;
    lines.reserve(states_.size());
    for (const DfaStateNode& s : states_) {
        std::ostringstream os;
        os << "S " << keys[static_cast<size_t>(s.id)];
        os << " conflict=" << (s.has_conflict ? 1 : 0)
           << " terminal=" << (s.terminal ? 1 : 0);
        std::vector<std::string> ex(s.executed.begin(), s.executed.end());
        std::sort(ex.begin(), ex.end());
        for (const std::string& e : ex) os << " !" << e;
        std::vector<std::string> outs;
        outs.reserve(s.out.size());
        for (const DfaTransition& t : s.out) {
            outs.push_back(t.label + " -> " + keys[static_cast<size_t>(t.target)]);
        }
        std::sort(outs.begin(), outs.end());
        for (const std::string& o : outs) os << " [" << o << "]";
        lines.push_back(os.str());
    }
    std::sort(lines.begin(), lines.end());

    std::ostringstream os;
    for (const std::string& l : lines) os << l << "\n";
    os << "-- conflicts --\n";
    for (const Conflict& c : conflicts_) {
        os << ConflictSet::key(c) << " x" << c.occurrences << "\n";
    }
    os << "complete=" << (complete_ ? 1 : 0) << "\n";
    return os.str();
}

int SignatureScope::gate_local(int gate) const {
    int base = 0;
    for (const auto& [begin, end] : gate_ranges) {
        if (gate >= begin && gate < end) return base + (gate - begin);
        base += end - begin;
    }
    return -1;  // outside the scope (inactive by construction)
}

std::string SignatureScope::line_str(int line) const {
    for (const LineRange& r : lines) {
        if (line >= r.begin && line <= r.end) {
            return std::to_string(r.ordinal) + "@" + std::to_string(line - r.anchor);
        }
    }
    return std::to_string(line);
}

std::string Dfa::signature(const SignatureScope& scope) const {
    // Same canonical form as signature(), but every group-owned identifier
    // is rebased: gates to their ordinal within the scope's ranges, par
    // counters and async transition labels to local ordinals, conflict
    // source lines to module-relative offsets. Two explorations of the same
    // module group embedded in *different* surrounding programs then
    // compare equal.
    auto rebased_key = [&](const MachineState& ms) {
        size_t width = 0;
        for (const auto& [begin, end] : scope.gate_ranges) {
            width += static_cast<size_t>(end - begin);
        }
        std::string bits(width, '0');
        for (size_t g = 0; g < ms.gates.size(); ++g) {
            if (!ms.gates[g]) continue;
            int local = scope.gate_local(static_cast<int>(g));
            if (local >= 0) bits[static_cast<size_t>(local)] = '1';
        }
        std::ostringstream os;
        os << bits << '|';
        std::vector<std::pair<int, Micros>> t;
        t.reserve(ms.timers.size());
        for (const auto& [g, rem] : ms.timers) t.emplace_back(scope.gate_local(g), rem);
        std::sort(t.begin(), t.end());
        for (const auto& [g, rem] : t) os << g << ':' << rem << ',';
        os << '|';
        for (const auto& [par, cnt] : ms.counters) {
            auto it = scope.par_remap.find(par);
            os << (it != scope.par_remap.end() ? it->second : par) << '=' << cnt << ',';
        }
        return os.str();
    };
    auto rebased_label = [&](const std::string& label) {
        if (label.rfind("async#", 0) != 0) return label;
        int idx = std::atoi(label.c_str() + 6);
        auto it = scope.async_remap.find(idx);
        if (it == scope.async_remap.end()) return label;
        return "async#" + std::to_string(it->second);
    };
    auto rebased_conflict_key = [&](const Conflict& c) {
        SourceLoc lo = c.loc_a;
        SourceLoc hi = c.loc_b;
        if (hi.line < lo.line || (hi.line == lo.line && hi.col < lo.col)) {
            std::swap(lo, hi);
        }
        std::ostringstream os;
        os << static_cast<int>(c.kind) << '|' << c.what << '|'
           << scope.line_str(static_cast<int>(lo.line)) << ':' << lo.col << '|'
           << scope.line_str(static_cast<int>(hi.line)) << ':' << hi.col;
        return os.str();
    };

    std::vector<std::string> keys(states_.size());
    for (size_t i = 0; i < states_.size(); ++i) keys[i] = rebased_key(states_[i].state);

    std::vector<std::string> lines;
    lines.reserve(states_.size());
    for (const DfaStateNode& s : states_) {
        std::ostringstream os;
        os << "S " << keys[static_cast<size_t>(s.id)];
        os << " conflict=" << (s.has_conflict ? 1 : 0)
           << " terminal=" << (s.terminal ? 1 : 0);
        std::vector<std::string> ex(s.executed.begin(), s.executed.end());
        std::sort(ex.begin(), ex.end());
        for (const std::string& e : ex) os << " !" << e;
        std::vector<std::string> outs;
        outs.reserve(s.out.size());
        for (const DfaTransition& t : s.out) {
            outs.push_back(rebased_label(t.label) + " -> " +
                           keys[static_cast<size_t>(t.target)]);
        }
        std::sort(outs.begin(), outs.end());
        for (const std::string& o : outs) os << " [" << o << "]";
        lines.push_back(os.str());
    }
    std::sort(lines.begin(), lines.end());

    std::ostringstream os;
    for (const std::string& l : lines) os << l << "\n";
    os << "-- conflicts --\n";
    std::vector<std::string> ckeys;
    ckeys.reserve(conflicts_.size());
    for (const Conflict& c : conflicts_) {
        ckeys.push_back(rebased_conflict_key(c) + " x" + std::to_string(c.occurrences));
    }
    std::sort(ckeys.begin(), ckeys.end());
    for (const std::string& k : ckeys) os << k << "\n";
    os << "complete=" << (complete_ ? 1 : 0) << "\n";
    return os.str();
}

std::string Dfa::to_dot(const std::string& title) const {
    std::ostringstream os;
    os << "digraph \"" << title << "\" {\n  rankdir=TB;\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";
    for (const DfaStateNode& s : states_) {
        os << "  s" << s.id << " [label=\"DFA #" << s.id;
        for (const std::string& line : s.executed) {
            std::string esc;
            for (char c : line) {
                if (c == '"' || c == '\\') esc += '\\';
                esc += c;
            }
            os << "\\n" << esc;
        }
        os << "\"";
        if (s.has_conflict) os << ", color=red, penwidth=2";
        if (s.terminal) os << ", peripheries=2";
        os << "];\n";
    }
    for (const DfaStateNode& s : states_) {
        for (const DfaTransition& t : s.out) {
            os << "  s" << s.id << " -> s" << t.target << " [label=\"" << t.label
               << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

std::string Dfa::report() const {
    std::ostringstream os;
    for (const Conflict& c : conflicts_) os << c.str() << "\n";
    return os.str();
}

std::vector<Conflict> temporal_analysis(const flat::CompiledProgram& cp, DfaOptions opt) {
    return Dfa::build(cp, opt).conflicts();
}

}  // namespace ceu::dfa
