#include "dfa/dfa.hpp"

#include <deque>
#include <set>
#include <sstream>
#include <unordered_map>

namespace ceu::dfa {

Dfa Dfa::build(const flat::CompiledProgram& cp, DfaOptions opt) {
    Dfa dfa;
    std::unordered_map<std::string, int> index;
    std::deque<int> worklist;
    std::set<std::string> conflict_keys;

    auto add_conflict = [&](Conflict c) {
        // Normalize the symmetric pair so each conflict reports once.
        if (c.loc_b.line < c.loc_a.line ||
            (c.loc_b.line == c.loc_a.line && c.loc_b.col < c.loc_a.col)) {
            std::swap(c.loc_a, c.loc_b);
        }
        if (conflict_keys.insert(c.str()).second) dfa.conflicts_.push_back(c);
    };

    auto intern = [&](MachineState ms, const std::vector<std::string>& executed,
                      bool conflicted) -> int {
        std::string key = ms.key();
        auto it = index.find(key);
        int id;
        if (it == index.end()) {
            id = static_cast<int>(dfa.states_.size());
            index.emplace(std::move(key), id);
            DfaStateNode node;
            node.id = id;
            node.terminal = !ms.has_active_gate();
            node.state = std::move(ms);
            dfa.states_.push_back(std::move(node));
            worklist.push_back(id);
        } else {
            id = it->second;
        }
        DfaStateNode& node = dfa.states_[static_cast<size_t>(id)];
        for (const std::string& s : executed) {
            bool seen = false;
            for (const std::string& have : node.executed) {
                if (have == s) {
                    seen = true;
                    break;
                }
            }
            if (!seen) node.executed.push_back(s);
        }
        node.has_conflict = node.has_conflict || conflicted;
        return id;
    };

    // Boot reaction.
    Trigger boot;
    boot.kind = Trigger::Kind::Boot;
    for (ReactionOutcome& o : abstract_react(cp, initial_state(cp), boot)) {
        for (const Conflict& c : o.conflicts) add_conflict(c);
        intern(std::move(o.next), o.executed, !o.conflicts.empty());
    }

    while (!worklist.empty()) {
        if (dfa.states_.size() > opt.max_states) {
            dfa.complete_ = false;
            break;
        }
        if (opt.stop_at_first_conflict && !dfa.conflicts_.empty()) {
            dfa.complete_ = false;
            break;
        }
        int id = worklist.front();
        worklist.pop_front();

        // NOTE: take a copy — `intern` may grow the vector and invalidate
        // references into it.
        MachineState state = dfa.states_[static_cast<size_t>(id)].state;
        for (const Trigger& t : enumerate_triggers(cp, state)) {
            std::string label = t.label(cp);
            for (ReactionOutcome& o : abstract_react(cp, state, t)) {
                for (const Conflict& c : o.conflicts) add_conflict(c);
                int target = intern(std::move(o.next), o.executed, !o.conflicts.empty());
                dfa.states_[static_cast<size_t>(id)].out.push_back({label, target});
            }
        }
    }
    return dfa;
}

std::string Dfa::to_dot(const std::string& title) const {
    std::ostringstream os;
    os << "digraph \"" << title << "\" {\n  rankdir=TB;\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";
    for (const DfaStateNode& s : states_) {
        os << "  s" << s.id << " [label=\"DFA #" << s.id;
        for (const std::string& line : s.executed) {
            std::string esc;
            for (char c : line) {
                if (c == '"' || c == '\\') esc += '\\';
                esc += c;
            }
            os << "\\n" << esc;
        }
        os << "\"";
        if (s.has_conflict) os << ", color=red, penwidth=2";
        if (s.terminal) os << ", peripheries=2";
        os << "];\n";
    }
    for (const DfaStateNode& s : states_) {
        for (const DfaTransition& t : s.out) {
            os << "  s" << s.id << " -> s" << t.target << " [label=\"" << t.label
               << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

std::string Dfa::report() const {
    std::ostringstream os;
    for (const Conflict& c : conflicts_) os << c.str() << "\n";
    return os.str();
}

std::vector<Conflict> temporal_analysis(const flat::CompiledProgram& cp, DfaOptions opt) {
    return Dfa::build(cp, opt).conflicts();
}

}  // namespace ceu::dfa
