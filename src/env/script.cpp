#include "env/script.hpp"

#include <sstream>

namespace ceu::env {

namespace {

/// Time argument: a raw microsecond count or a Céu time literal ("500ms").
bool parse_time_arg(const std::string& t, Micros* out) {
    if (t.empty()) return false;
    if (parse_time_literal(t, out)) return true;
    try {
        size_t used = 0;
        *out = std::stoll(t, &used);
        return used == t.size();
    } catch (...) {
        return false;
    }
}

}  // namespace

bool Script::parse(const std::string& text, Script* out, Diagnostics& diags) {
    Script script;
    std::istringstream is(text);
    std::string raw;
    uint32_t lineno = 0;
    bool ok = true;

    while (std::getline(is, raw)) {
        ++lineno;
        SourceLoc loc{lineno, 1};
        if (size_t hash = raw.find('#'); hash != std::string::npos) {
            raw.resize(hash);
        }
        std::istringstream ls(raw);
        std::vector<std::string> tok;
        std::string t;
        while (ls >> t) tok.push_back(t);
        if (tok.empty()) continue;

        const std::string& cmd = tok[0];
        if (cmd == "E" || cmd == "event") {
            if (tok.size() < 2 || tok.size() > 3) {
                diags.error(loc, "script: usage: event NAME [value]");
                ok = false;
                continue;
            }
            int64_t v = 0;
            if (tok.size() == 3) {
                try {
                    v = std::stoll(tok[2]);
                } catch (...) {
                    diags.error(loc, "script: bad event value '" + tok[2] + "'");
                    ok = false;
                    continue;
                }
            }
            script.event(tok[1], v);
        } else if (cmd == "T" || cmd == "advance") {
            Micros us = 0;
            if (tok.size() != 2 || !parse_time_arg(tok[1], &us)) {
                diags.error(loc, "script: usage: advance TIME");
                ok = false;
                continue;
            }
            script.advance(us);
        } else if (cmd == "A" || cmd == "settle") {
            script.settle_asyncs();
        } else if (cmd == "C" || cmd == "crash") {
            script.crash();
        } else if (cmd == "Q" || cmd == "quit") {
            break;
        } else if (cmd == "fault") {
            // Strip the keyword; the rest of the line is one fault-plan
            // command, validated later by fault::parse_plan (which knows
            // the plan grammar and reports with its own line numbers).
            size_t at = raw.find("fault");
            script.fault_plan_text_ += raw.substr(at + 5);
            script.fault_plan_text_ += '\n';
        } else {
            diags.error(loc, "script: unknown command '" + cmd + "'");
            ok = false;
        }
    }
    if (ok) *out = std::move(script);
    return ok;
}

}  // namespace ceu::env
