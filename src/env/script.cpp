// Script is header-only; this TU anchors the module for the build.
#include "env/script.hpp"

namespace ceu::env {
static_assert(sizeof(ScriptItem) > 0);
}  // namespace ceu::env
