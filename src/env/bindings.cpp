#include "env/bindings.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "runtime/engine.hpp"
#include "util/timeval.hpp"

namespace ceu::env {

using rt::CBindings;
using rt::Engine;
using rt::Value;

std::string format_printf(const std::string& fmt, std::span<const Value> args) {
    std::string out;
    size_t arg = 0;
    for (size_t i = 0; i < fmt.size(); ++i) {
        char ch = fmt[i];
        if (ch != '%') {
            out += ch;
            continue;
        }
        if (i + 1 >= fmt.size()) break;
        // Consume length modifiers (l, ll, z) silently.
        size_t j = i + 1;
        while (j < fmt.size() && (fmt[j] == 'l' || fmt[j] == 'z')) ++j;
        char conv = j < fmt.size() ? fmt[j] : '%';
        i = j;
        if (conv == '%') {
            out += '%';
            continue;
        }
        Value v = arg < args.size() ? args[arg++] : Value::integer(0);
        switch (conv) {
            case 'd':
            case 'i':
            case 'u':
                out += std::to_string(v.as_int());
                break;
            case 'x': {
                char buf[32];
                std::snprintf(buf, sizeof buf, "%" PRIx64, v.as_int());
                out += buf;
                break;
            }
            case 'c':
                out += static_cast<char>(v.as_int());
                break;
            case 's':
                out += (v.kind == Value::Kind::Str && v.s) ? v.s : v.str_repr();
                break;
            default:
                out += conv;
                break;
        }
    }
    return out;
}

CBindings make_standard_bindings() {
    CBindings c;

    c.fn("printf", [](Engine& eng, std::span<const Value> args) {
        std::string fmt = (args.empty() || args[0].kind != Value::Kind::Str || !args[0].s)
                              ? ""
                              : args[0].s;
        std::string line = format_printf(fmt, args.subspan(args.empty() ? 0 : 1));
        // Strip one trailing newline: each call is one trace entry.
        if (!line.empty() && line.back() == '\n') line.pop_back();
        eng.trace(line);
        return Value::integer(static_cast<int64_t>(line.size()));
    });

    c.fn("trace", [](Engine& eng, std::span<const Value> args) {
        std::string line;
        for (size_t i = 0; i < args.size(); ++i) {
            if (i) line += " ";
            line += args[i].kind == Value::Kind::Str && args[i].s
                        ? std::string(args[i].s)
                        : std::to_string(args[i].as_int());
        }
        eng.trace(line);
        return Value::integer(0);
    });

    // Deterministic fault lever for supervision tests. The interpreter
    // raises a recoverable RuntimeError (trapped into Status::Faulted when
    // the engine runs with trap_faults); cgen output compiles `_ceu_trip()`
    // to a fault flag plus a scheduler drain. Unlike a division by zero —
    // which is UB in compiled C — this trips both backends without
    // undefined behavior. The compiled flavor finishes the current track up
    // to its next await, so programs place the trip right before one.
    c.fn("ceu_trip", [](Engine&, std::span<const Value>) -> Value {
        throw rt::RuntimeError({}, "_ceu_trip() reached");
    });

    c.fn("assert", [](Engine& eng, std::span<const Value> args) {
        bool ok = !args.empty() && args[0].truthy();
        if (!ok) {
            eng.trace("ASSERTION FAILED");
            throw rt::RuntimeError({}, "_assert(0) reached");
        }
        return Value::integer(1);
    });

    c.fn("abs", [](Engine&, std::span<const Value> args) {
        int64_t v = args.empty() ? 0 : args[0].as_int();
        return Value::integer(v < 0 ? -v : v);
    });

    // Deterministic PRNG: the paper's Mario demo relies on `_srand(seed)`
    // making replays reproducible, so the generator must be seed-pure. The
    // state lives on the engine (Engine::binding_prng), not in this
    // closure, so one immutable binding set can serve a whole fleet of
    // instances without cross-instance generator coupling.
    c.fn("srand", [](Engine& eng, std::span<const Value> args) {
        eng.binding_prng =
            args.empty() ? 1 : static_cast<uint64_t>(args[0].as_int()) * 2654435761u + 1;
        return Value::integer(0);
    });
    c.fn("rand", [](Engine& eng, std::span<const Value>) {
        // xorshift64*
        uint64_t x = eng.binding_prng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        eng.binding_prng = x;
        return Value::integer(static_cast<int64_t>((x * 0x2545F4914F6CDD1DULL) >> 33));
    });

    // `_time(0)` — virtual epoch; deterministic by design (simulation).
    c.fn("time", [](Engine& eng, std::span<const Value>) {
        return Value::integer(eng.logical_now() / kSec + 42);
    });

    return c;
}

}  // namespace ceu::env
