// The standard C bindings every host gets, split out of the driver so the
// ceu::host embedding facade can build an engine without pulling in the
// script-driving layer (driver.hpp includes host/instance.hpp; this header
// sits below both).
#pragma once

#include <span>
#include <string>

#include "runtime/cbind.hpp"
#include "runtime/value.hpp"

namespace ceu::env {

/// Standard C bindings every test/demo gets: `_printf`, `_assert`,
/// `_trace`, `_abs`, and a deterministic `_srand`/`_rand`/`_time`.
/// Trace-producing calls are routed to the engine's `on_trace` hook.
rt::CBindings make_standard_bindings();

/// Formats `fmt` with printf-style directives (%d %ld %u %x %c %s %%)
/// against Céu values. Shared by the console binding and the substrates.
std::string format_printf(const std::string& fmt, std::span<const rt::Value> args);

}  // namespace ceu::env
