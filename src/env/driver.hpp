// Environment driver: owns an Engine, feeds it a Script, collects traces.
// Plays the role of the platform binding described in §5 — it decides the
// order in which the four API entry points are called, and it never
// interleaves them (which would break the discrete semantics of time).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "env/script.hpp"
#include "runtime/engine.hpp"

namespace ceu::env {

/// Standard C bindings every test/demo gets: `_printf`, `_assert`,
/// `_trace`, `_abs`, and a deterministic `_srand`/`_rand`/`_time`.
/// Trace-producing calls are routed to the engine's `on_trace` hook.
rt::CBindings make_standard_bindings();

/// Formats `fmt` with printf-style directives (%d %ld %u %x %c %s %%)
/// against Céu values. Shared by the console binding and the substrates.
std::string format_printf(const std::string& fmt, std::span<const rt::Value> args);

class Driver {
  public:
    /// `cp` must outlive the driver. Extra bindings are merged over the
    /// standard ones (platform bindings win on conflicts).
    explicit Driver(const flat::CompiledProgram& cp,
                    const rt::CBindings* extra = nullptr);

    /// Boot + run the whole script + drain asyncs. Returns final status.
    /// Dynamic errors (rt::RuntimeError) propagate to the caller.
    rt::Engine::Status run(const Script& script);

    /// Like run(), but catches rt::RuntimeError and reports it as a
    /// structured diagnostic (source location + bare message) instead of
    /// letting it unwind — the CLI's error path. Returns the engine status
    /// at the point of failure (Faulted when the engine traps faults,
    /// otherwise whatever state the error interrupted).
    rt::Engine::Status run(const Script& script, Diagnostics& diags);

    /// Step API for tests that interleave with engine inspection.
    void boot();
    void feed(const ScriptItem& item);
    /// Runs asyncs until idle (or the slice cap trips — a test safety net).
    void settle_asyncs(uint64_t max_slices = 10'000'000);

    [[nodiscard]] rt::Engine& engine() { return *engine_; }
    [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }
    [[nodiscard]] std::string trace_text() const;
    [[nodiscard]] Micros clock() const { return clock_; }

  private:
    rt::CBindings bindings_;
    std::unique_ptr<rt::Engine> engine_;
    std::vector<std::string> trace_;
    Micros clock_ = 0;
};

/// One-shot helper: compile, run `script`, return the trace lines.
/// Throws CompileError / RuntimeError on failure.
std::vector<std::string> run_and_trace(const std::string& source, const Script& script,
                                       const rt::CBindings* extra = nullptr);

}  // namespace ceu::env
