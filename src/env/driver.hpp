// Environment driver: the historical script-running front end, now a thin
// shim over ceu::host::Instance (the single embedding facade). Kept for the
// large body of tests written against it; new hosts should embed
// host::Instance directly — see docs/EMBEDDING.md.
#pragma once

#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "env/bindings.hpp"
#include "env/script.hpp"
#include "host/instance.hpp"
#include "runtime/engine.hpp"

namespace ceu::env {

class Driver {
  public:
    /// `cp` must outlive the driver. Extra bindings are merged over the
    /// standard ones (platform bindings win on conflicts).
    explicit Driver(const flat::CompiledProgram& cp,
                    const rt::CBindings* extra = nullptr)
        : inst_(cp, make_config(extra)) {}

    /// Boot + run the whole script + drain asyncs. Returns final status.
    /// Dynamic errors (rt::RuntimeError) propagate to the caller.
    rt::Engine::Status run(const Script& script) { return inst_.run(script); }

    /// Like run(), but catches rt::RuntimeError and reports it as a
    /// structured diagnostic (source location + bare message) instead of
    /// letting it unwind — the CLI's error path.
    rt::Engine::Status run(const Script& script, Diagnostics& diags) {
        return inst_.run(script, diags);
    }

    /// Step API for tests that interleave with engine inspection.
    void boot() { inst_.boot(); }
    void feed(const ScriptItem& item) { inst_.feed(item); }
    /// Runs asyncs until idle (or the slice cap trips — a test safety net).
    void settle_asyncs(uint64_t max_slices = 10'000'000) { inst_.settle(max_slices); }

    [[nodiscard]] rt::Engine& engine() { return inst_.engine(); }
    [[nodiscard]] const std::vector<std::string>& trace() const { return inst_.trace(); }
    [[nodiscard]] std::string trace_text() const { return inst_.trace_text(); }
    [[nodiscard]] Micros clock() const { return inst_.clock(); }

    /// The wrapped facade, for callers migrating off the shim.
    [[nodiscard]] host::Instance& instance() { return inst_; }

  private:
    static host::Config make_config(const rt::CBindings* extra) {
        host::Config cfg;
        cfg.bindings = extra;
        return cfg;
    }
    host::Instance inst_;
};

/// One-shot helper: compile, run `script`, return the trace lines.
/// Throws CompileError / RuntimeError on failure.
std::vector<std::string> run_and_trace(const std::string& source, const Script& script,
                                       const rt::CBindings* extra = nullptr);

}  // namespace ceu::env
