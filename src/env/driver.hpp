// Environment driver: the historical script-running front end, now a thin
// shim over ceu::host::Instance (the single embedding facade). Kept for the
// large body of tests written against it; new hosts should embed
// host::Instance directly — see docs/EMBEDDING.md.
#pragma once

#include <string>
#include <vector>

#include "codegen/flatten.hpp"
#include "env/bindings.hpp"
#include "env/script.hpp"
#include "host/instance.hpp"
#include "runtime/engine.hpp"

namespace ceu::env {

class Driver {
  public:
    /// `cp` must outlive the driver. Extra bindings are merged over the
    /// standard ones (platform bindings win on conflicts).
    ///
    /// The driver is itself written against the facade's embedder-sink
    /// surface: it turns off the instance's internal trace buffer and
    /// collects lines through add_output_sink — the same subscription any
    /// external embedder (the serve layer included) uses. One stream, one
    /// code path.
    explicit Driver(const flat::CompiledProgram& cp,
                    const rt::CBindings* extra = nullptr)
        : inst_(cp, make_config(extra)) {
        inst_.add_output_sink(
            [this](const std::string& line) { trace_.push_back(line); });
    }

    /// Boot + run the whole script + drain asyncs. Returns final status.
    /// Dynamic errors (rt::RuntimeError) propagate to the caller.
    rt::Engine::Status run(const Script& script) { return inst_.run(script); }

    /// Like run(), but catches rt::RuntimeError and reports it as a
    /// structured diagnostic (source location + bare message) instead of
    /// letting it unwind — the CLI's error path.
    rt::Engine::Status run(const Script& script, Diagnostics& diags) {
        return inst_.run(script, diags);
    }

    /// Step API for tests that interleave with engine inspection.
    void boot() { inst_.boot(); }
    void feed(const ScriptItem& item) { inst_.feed(item); }
    /// Runs asyncs until idle (or the slice cap trips — a test safety net).
    void settle_asyncs(uint64_t max_slices = 10'000'000) { inst_.settle(max_slices); }

    [[nodiscard]] rt::Engine& engine() { return inst_.engine(); }
    [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }
    [[nodiscard]] std::string trace_text() const {
        std::string out;
        for (const auto& line : trace_) {
            out += line;
            out += '\n';
        }
        return out;
    }
    [[nodiscard]] Micros clock() const { return inst_.clock(); }

    /// The wrapped facade, for callers migrating off the shim.
    [[nodiscard]] host::Instance& instance() { return inst_; }

  private:
    static host::Config make_config(const rt::CBindings* extra) {
        host::Config cfg;
        cfg.bindings = extra;
        cfg.collect_trace = false;  // the driver subscribes; no double buffer
        return cfg;
    }
    host::Instance inst_;
    std::vector<std::string> trace_;
};

/// One-shot helper: compile, run `script`, return the trace lines.
/// Throws CompileError / RuntimeError on failure.
std::vector<std::string> run_and_trace(const std::string& source, const Script& script,
                                       const rt::CBindings* extra = nullptr);

}  // namespace ceu::env
