#include "env/driver.hpp"

namespace ceu::env {

std::vector<std::string> run_and_trace(const std::string& source, const Script& script,
                                       const rt::CBindings* extra) {
    flat::CompiledProgram cp = flat::compile(source);
    Driver d(cp, extra);
    d.run(script);
    return d.trace();
}

}  // namespace ceu::env
