// Input scripts: a deterministic description of what the environment does
// to a program — occurrences of input events and the passage of wall-clock
// time. The paper's reactive premise (§2.8) is that a program execution is
// a function of its input sequence alone; scripts make that sequence a
// first-class, replayable artifact for tests and benches.
//
// The fault layer extends the vocabulary: a script can power-cycle the
// engine (`crash`) and carry a fault plan (`fault ...` lines, parsed by
// fault::parse_plan) for harnesses that drive a simulated network.
#pragma once

#include <string>
#include <vector>

#include "runtime/value.hpp"
#include "util/diag.hpp"
#include "util/timeval.hpp"

namespace ceu::env {

struct ScriptItem {
    enum class Kind {
        Event,      // deliver an input event (optionally valued)
        Advance,    // advance wall-clock time by `us`
        AsyncIdle,  // let asynchronous blocks run until they go idle
        Crash,      // power-cycle the engine: reset + go_init (time persists)
    };
    Kind kind = Kind::Event;
    std::string event;
    rt::Value value = rt::Value::integer(0);
    Micros us = 0;
};

class Script {
  public:
    Script& event(std::string name) {
        items_.push_back({ScriptItem::Kind::Event, std::move(name), rt::Value::integer(0), 0});
        return *this;
    }
    Script& event(std::string name, int64_t v) {
        items_.push_back(
            {ScriptItem::Kind::Event, std::move(name), rt::Value::integer(v), 0});
        return *this;
    }
    Script& advance(Micros us) {
        items_.push_back({ScriptItem::Kind::Advance, "", rt::Value::integer(0), us});
        return *this;
    }
    Script& settle_asyncs() {
        items_.push_back({ScriptItem::Kind::AsyncIdle, "", rt::Value::integer(0), 0});
        return *this;
    }
    Script& crash() {
        items_.push_back({ScriptItem::Kind::Crash, "", rt::Value::integer(0), 0});
        return *this;
    }

    [[nodiscard]] const std::vector<ScriptItem>& items() const { return items_; }

    /// Fault-plan lines accumulated from `fault ...` script commands, in
    /// the DSL of fault::parse_plan. Empty when the script injects no
    /// faults. Consumed by network-level harnesses; the single-engine
    /// driver ignores it.
    [[nodiscard]] const std::string& fault_plan_text() const { return fault_plan_text_; }

    /// Parses the textual script protocol (ceuc --run; docs/LANGUAGE.md):
    ///
    ///   E <event> [v]      | event <name> [v]     deliver an input event
    ///   T <micros|TIME>    | advance <time>       advance the clock
    ///   A                  | settle               drain async blocks
    ///   C                  | crash                power-cycle the engine
    ///   Q                  | quit                 stop reading the script
    ///   fault <plan-line>                         accumulate a fault plan
    ///
    /// One command per line; `#` starts a comment. Malformed lines are
    /// reported through `diags` and make the parse return false.
    static bool parse(const std::string& text, Script* out, Diagnostics& diags);

  private:
    std::vector<ScriptItem> items_;
    std::string fault_plan_text_;
};

}  // namespace ceu::env
