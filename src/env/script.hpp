// Input scripts: a deterministic description of what the environment does
// to a program — occurrences of input events and the passage of wall-clock
// time. The paper's reactive premise (§2.8) is that a program execution is
// a function of its input sequence alone; scripts make that sequence a
// first-class, replayable artifact for tests and benches.
#pragma once

#include <string>
#include <vector>

#include "runtime/value.hpp"
#include "util/timeval.hpp"

namespace ceu::env {

struct ScriptItem {
    enum class Kind {
        Event,      // deliver an input event (optionally valued)
        Advance,    // advance wall-clock time by `us`
        AsyncIdle,  // let asynchronous blocks run until they go idle
    };
    Kind kind = Kind::Event;
    std::string event;
    rt::Value value = rt::Value::integer(0);
    Micros us = 0;
};

class Script {
  public:
    Script& event(std::string name) {
        items_.push_back({ScriptItem::Kind::Event, std::move(name), rt::Value::integer(0), 0});
        return *this;
    }
    Script& event(std::string name, int64_t v) {
        items_.push_back(
            {ScriptItem::Kind::Event, std::move(name), rt::Value::integer(v), 0});
        return *this;
    }
    Script& advance(Micros us) {
        items_.push_back({ScriptItem::Kind::Advance, "", rt::Value::integer(0), us});
        return *this;
    }
    Script& settle_asyncs() {
        items_.push_back({ScriptItem::Kind::AsyncIdle, "", rt::Value::integer(0), 0});
        return *this;
    }

    [[nodiscard]] const std::vector<ScriptItem>& items() const { return items_; }

  private:
    std::vector<ScriptItem> items_;
};

}  // namespace ceu::env
