// Static memory-slot layout (paper §4.2): all data lives in one fixed
// vector whose size is the maximum the program needs at any instant.
// Sequential constructs *reuse* slots; parallel branches *coexist*.
#pragma once

#include <algorithm>

namespace ceu::flat {

class SlotAllocator {
  public:
    /// Allocates `n` consecutive slots at the current watermark.
    int alloc(int n) {
        int s = cur_;
        cur_ += n;
        peak_ = std::max(peak_, cur_);
        return s;
    }

    /// Current watermark; `restore` rewinds it when a sequential scope ends
    /// so that following statements reuse the space.
    [[nodiscard]] int save() const { return cur_; }
    void restore(int mark) { cur_ = mark; }

    /// Runs `body` measuring the *local* peak from the current watermark.
    /// Used to stack parallel branches: branch i+1 starts where branch i's
    /// local peak ended, so their slots coexist.
    template <typename Fn>
    int with_local_peak(Fn&& body) {
        int saved_peak = peak_;
        peak_ = cur_;
        body();
        int local = peak_;
        peak_ = std::max(saved_peak, local);
        return local;
    }

    /// Total slots the program ever needs simultaneously.
    [[nodiscard]] int peak() const { return peak_; }

  private:
    int cur_ = 0;
    int peak_ = 0;
};

}  // namespace ceu::flat
