// Disassembler for FlatProgram (debugging aid + golden tests). The layout
// allocator itself is header-only (layout.hpp).
#include <sstream>

#include "ast/print.hpp"
#include "codegen/flatten.hpp"
#include "codegen/layout.hpp"

namespace ceu::flat {

namespace {
const char* iop_name(IOp op) {
    switch (op) {
        case IOp::Nop: return "nop";
        case IOp::Eval: return "eval";
        case IOp::Assign: return "assign";
        case IOp::AssignWake: return "assign_wake";
        case IOp::AssignSlot: return "assign_slot";
        case IOp::IfNot: return "ifnot";
        case IOp::Jump: return "jump";
        case IOp::AwaitExt: return "await_ext";
        case IOp::AwaitInt: return "await_int";
        case IOp::AwaitTime: return "await_time";
        case IOp::AwaitDyn: return "await_dyn";
        case IOp::AwaitForever: return "await_forever";
        case IOp::EmitInt: return "emit_int";
        case IOp::EmitExtAsync: return "emit_ext";
        case IOp::EmitOutput: return "emit_output";
        case IOp::EmitTimeAsync: return "emit_time";
        case IOp::ParSpawn: return "par_spawn";
        case IOp::BranchEnd: return "branch_end";
        case IOp::KillRegion: return "kill_region";
        case IOp::Escape: return "escape";
        case IOp::ClearSlot: return "clear_slot";
        case IOp::Once: return "once";
        case IOp::ProgReturn: return "prog_return";
        case IOp::AsyncRun: return "async_run";
        case IOp::AsyncYield: return "async_yield";
        case IOp::AsyncEnd: return "async_end";
        case IOp::Halt: return "halt";
    }
    return "?";
}
}  // namespace

std::string disassemble(const FlatProgram& fp) {
    std::ostringstream os;
    os << "; data_size=" << fp.data_size << " gates=" << fp.gates.size()
       << " pars=" << fp.pars.size() << " regions=" << fp.regions.size() << "\n";
    for (size_t pc = 0; pc < fp.code.size(); ++pc) {
        const Instr& i = fp.code[pc];
        os << pc << ":\t" << iop_name(i.op);
        if (i.a >= 0) os << " a=" << i.a;
        if (i.b >= 0) os << " b=" << i.b;
        if (i.us != 0) os << " t=" << format_micros(i.us);
        if (i.e1 != nullptr) os << "  " << ast::print_expr(*i.e1);
        if (i.e2 != nullptr) os << " := " << ast::print_expr(*i.e2);
        os << "\n";
    }
    for (size_t g = 0; g < fp.gates.size(); ++g) {
        const GateInfo& gi = fp.gates[g];
        os << "; gate " << g << ": kind=" << static_cast<int>(gi.kind)
           << " event=" << gi.event << " cont=" << gi.cont;
        if (gi.us != 0) os << " t=" << format_micros(gi.us);
        os << "\n";
    }
    return os.str();
}

}  // namespace ceu::flat
