// Flattening: AST -> FlatProgram, the executable form mirroring the paper's
// code generation (§4):
//
//  * code is a linear instruction array; `await` splits straight-line code
//    into *tracks* (instruction ranges entered at a continuation pc);
//  * every await owns a *gate* holding whether it is active; gates are
//    allocated in flattening order, so every syntactic region (par branch,
//    loop body) owns a contiguous gate range and can be destroyed with a
//    single range-clear — the paper's `memset` trick (§4.3);
//  * variables live in statically laid-out *memory slots*: slots of
//    parallel branches coexist, slots of sequential statements are reused
//    (§4.2); layout happens in layout.cpp during flattening;
//  * rejoin continuations (par/or, par/and, loop break, value-block return)
//    carry a *priority* = construct nesting depth: inner rejoins run before
//    outer ones, the glitch-avoidance scheme of §4.1.
//
// The FlatProgram is consumed by the interpreter (runtime/engine.cpp), the
// temporal analysis (dfa/), the flow-graph exporter (flow/) and the C
// emitter (cgen/).
#pragma once

#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "sema/sema.hpp"
#include "util/diag.hpp"

namespace ceu::flat {

using Pc = int;      // index into FlatProgram::code
using GateId = int;  // index into FlatProgram::gates
using SlotId = int;  // index into the runtime data vector

/// Priority of freshly-awakened / spawned tracks (always runs before any
/// rejoin continuation).
constexpr int kNormalPrio = 1'000'000'000;

enum class IOp {
    Nop,
    Eval,          // e1: evaluate for side effects (C calls)
    Assign,        // e1 = lvalue, e2 = rvalue
    AssignWake,    // e1 = lvalue; assigns the value the track was woken with
    AssignSlot,    // e1 = lvalue; assigns data[b] (value-block results)
    IfNot,         // e1 = cond; jump to a when false
    Jump,          // jump to a
    AwaitExt,      // a = input event id, b = gate
    AwaitInt,      // a = internal event id, b = gate
    AwaitTime,     // us = duration, b = gate
    AwaitDyn,      // e1 = duration expr (microseconds), b = gate
    AwaitForever,  // b = gate (never fires)
    EmitInt,       // a = internal event id, e1 = value (optional)
    EmitExtAsync,  // a = input event id, e1 = value (optional); async only
    EmitOutput,    // a = output event id, e1 = value (optional); extension
    EmitTimeAsync, // us = duration; async only
    ParSpawn,      // a = par index: enqueue branch tracks, halt
    BranchEnd,     // a = par index: rejoin bookkeeping, halt
    KillRegion,    // a = region index: clear gates/timers/tracks of region
    Escape,        // a = escape index, e1 = optional value: break / block-return
    ClearSlot,     // b = slot: data[b] = 0 (resets hidden flags on re-entry)
    Once,          // b = slot: halt if data[b] already set, else set and continue
    ProgReturn,    // e1 = optional value: terminate the program
    AsyncRun,      // a = async index, b = completion gate: start + await
    AsyncYield,    // async loop back-edge: end of one go_async slice
    AsyncEnd,      // a = async index, e1 = optional value: async returns
    Halt,          // trail terminates (plain-par branch or root body end)
};

struct Instr {
    IOp op = IOp::Nop;
    int a = -1;
    int b = -1;
    const ast::Expr* e1 = nullptr;
    const ast::Expr* e2 = nullptr;
    Micros us = 0;
    SourceLoc loc;
};

struct GateInfo {
    enum class Kind { Ext, Int, Time, Dyn, Forever, Async };
    Kind kind = Kind::Ext;
    int event = -1;   // Ext/Int: event id
    Pc cont = -1;     // pc to enqueue when the gate fires
    Micros us = 0;    // Time: duration
    SourceLoc loc;
};

/// A contiguous syntactic region: the unit of destruction (§4.3).
struct RegionInfo {
    Pc pc_begin = 0, pc_end = 0;       // [begin, end)
    GateId gate_begin = 0, gate_end = 0;
};

struct ParInfo {
    ast::ParKind kind = ast::ParKind::Par;
    std::vector<Pc> branches;      // entry pc of each branch
    std::vector<std::pair<Pc, Pc>> branch_ranges;
    int region = -1;               // covering all branches
    Pc cont = -1;                  // pc after the par (-1: plain par, no value)
    int prio = 0;                  // rejoin priority (= nesting depth)
    SlotId counter_slot = -1;      // par/and: branches still running
    SlotId sched_slot = -1;        // rejoin-already-scheduled flag
    SourceLoc loc;
};

/// Target of a `break` (loops) or block `return` (value par/do blocks).
struct EscapeInfo {
    int region = -1;
    Pc cont = -1;
    int prio = 0;
    SlotId result_slot = -1;  // -1: no value (break)
    SlotId sched_slot = -1;
    SourceLoc loc;
};

struct AsyncInfo {
    Pc begin = 0;
    int region = -1;
    GateId gate = -1;  // completion gate awaited by the spawning trail
    SourceLoc loc;
};

struct FlatProgram {
    // The FlatProgram borrows expression nodes from the AST; both are kept
    // alive together by CompiledProgram (see below). Lvalues synthesized by
    // the flattener (declaration initializers) are owned here.
    std::vector<std::unique_ptr<ast::Expr>> owned_exprs;
    std::vector<Instr> code;
    std::vector<GateInfo> gates;
    std::vector<RegionInfo> regions;
    std::vector<ParInfo> pars;
    std::vector<EscapeInfo> escapes;
    std::vector<AsyncInfo> asyncs;

    std::vector<SlotId> var_slot;   // decl_id -> first slot
    int data_size = 0;              // total slots (the static RAM vector, §4.2)
    int max_depth = 0;              // deepest construct nesting

    std::vector<std::vector<GateId>> ext_gates;  // per input event
    std::vector<std::vector<GateId>> int_gates;  // per internal event

    [[nodiscard]] size_t rom_footprint() const { return code.size() * sizeof(Instr); }
};

/// A fully compiled program: source AST + sema results + flat code, with
/// lifetimes tied together.
struct CompiledProgram {
    ast::Program ast;
    SemaInfo sema;
    FlatProgram flat;
};

/// Flattens a sema-checked program. `diags` receives structural errors
/// (e.g. `emit TIME` outside async reaching this phase).
FlatProgram flatten(const ast::Program& prog, const SemaInfo& sema, Diagnostics& diags);

/// One-stop compilation: lex + parse + sema + bounded check + flatten.
/// Throws CompileError (with all diagnostics) if any phase fails.
CompiledProgram compile(const std::string& source, const std::string& name = "<memory>");

/// Like `compile` but reports problems through `diags` instead of throwing.
/// Returns true on success.
bool compile_checked(const std::string& source, CompiledProgram* out, Diagnostics& diags,
                     const std::string& name = "<memory>");

/// Human-readable disassembly of the flat code (tests, debugging).
std::string disassemble(const FlatProgram& fp);

}  // namespace ceu::flat
