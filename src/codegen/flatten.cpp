#include "codegen/flatten.hpp"

#include "codegen/layout.hpp"
#include "parser/parser.hpp"

namespace ceu::flat {

using namespace ast;

namespace {

/// Per-loop flattening context. Inside asyncs there is no track machinery,
/// so `break` compiles to a plain jump patched at loop end.
struct LoopCtx {
    bool in_async = false;
    int escape_idx = -1;              // sync loops
    std::vector<Pc> break_jumps;      // async loops: pcs of Jump placeholders
};

/// Where `return` goes: the program, an enclosing value block, or the
/// enclosing async.
struct RetTarget {
    enum class Kind { Program, Block, Async };
    Kind kind = Kind::Program;
    int escape_idx = -1;
    int async_idx = -1;
};

class Flattener {
  public:
    Flattener(const Program& prog, const SemaInfo& sema, Diagnostics& diags)
        : prog_(prog), sema_(sema), diags_(diags) {}

    FlatProgram run() {
        fp_.var_slot.assign(sema_.vars.size(), -1);
        ret_targets_.push_back({RetTarget::Kind::Program, -1, -1});
        flat_body(prog_.body);
        emit({IOp::Halt, -1, -1, nullptr, nullptr, 0, {}});
        finish();
        return std::move(fp_);
    }

  private:
    const Program& prog_;
    const SemaInfo& sema_;
    Diagnostics& diags_;
    FlatProgram fp_;
    SlotAllocator slots_;
    std::vector<RetTarget> ret_targets_;
    std::vector<LoopCtx> loops_;
    int depth_ = 0;
    bool in_async_ = false;

    // -- emission helpers ----------------------------------------------------

    Pc emit(Instr i) {
        fp_.code.push_back(i);
        return static_cast<Pc>(fp_.code.size() - 1);
    }
    [[nodiscard]] Pc here() const { return static_cast<Pc>(fp_.code.size()); }
    void patch(Pc at, Pc target) { fp_.code[static_cast<size_t>(at)].a = target; }

    GateId new_gate(GateInfo g) {
        fp_.gates.push_back(g);
        return static_cast<GateId>(fp_.gates.size() - 1);
    }
    [[nodiscard]] GateId gate_mark() const { return static_cast<GateId>(fp_.gates.size()); }

    int new_region() {
        fp_.regions.push_back({});
        return static_cast<int>(fp_.regions.size() - 1);
    }

    Expr* synth_var(int decl_id, SourceLoc loc) {
        auto e = std::make_unique<VarExpr>(sema_.vars[static_cast<size_t>(decl_id)].name, loc);
        e->decl_id = decl_id;
        Expr* raw = e.get();
        fp_.owned_exprs.push_back(std::move(e));
        return raw;
    }

    void bump_depth() {
        ++depth_;
        fp_.max_depth = std::max(fp_.max_depth, depth_);
    }

    // -- bodies --------------------------------------------------------------

    void flat_body(const BlockBody& body) {
        for (const auto& s : body.stmts) flat_stmt(*s);
    }

    /// Sequential child scope: slots are reused after it ends.
    void flat_scoped_body(const BlockBody& body) {
        int mark = slots_.save();
        flat_body(body);
        slots_.restore(mark);
    }

    void flat_stmt(const Stmt& s) {
        switch (s.kind) {
            case StmtKind::Nothing:
            case StmtKind::CBlock:   // emitted verbatim by the C backend only
            case StmtKind::Pure:
            case StmtKind::Deterministic:
            case StmtKind::DeclInput:
            case StmtKind::DeclInternal:
            case StmtKind::DeclOutput:
                break;

            case StmtKind::DeclVar: flat_decl_var(static_cast<const DeclVarStmt&>(s)); break;

            case StmtKind::AwaitExt: {
                const auto& n = static_cast<const AwaitExtStmt&>(s);
                GateId g = new_gate({GateInfo::Kind::Ext, n.event_id, -1, 0, s.loc});
                emit({IOp::AwaitExt, n.event_id, g, nullptr, nullptr, 0, s.loc});
                fp_.gates[static_cast<size_t>(g)].cont = here();
                break;
            }
            case StmtKind::AwaitInt: {
                const auto& n = static_cast<const AwaitIntStmt&>(s);
                GateId g = new_gate({GateInfo::Kind::Int, n.event_id, -1, 0, s.loc});
                emit({IOp::AwaitInt, n.event_id, g, nullptr, nullptr, 0, s.loc});
                fp_.gates[static_cast<size_t>(g)].cont = here();
                break;
            }
            case StmtKind::AwaitTime: {
                const auto& n = static_cast<const AwaitTimeStmt&>(s);
                GateId g = new_gate({GateInfo::Kind::Time, -1, -1, n.us, s.loc});
                emit({IOp::AwaitTime, -1, g, nullptr, nullptr, n.us, s.loc});
                fp_.gates[static_cast<size_t>(g)].cont = here();
                break;
            }
            case StmtKind::AwaitDyn: {
                const auto& n = static_cast<const AwaitDynStmt&>(s);
                GateId g = new_gate({GateInfo::Kind::Dyn, -1, -1, 0, s.loc});
                emit({IOp::AwaitDyn, -1, g, n.us.get(), nullptr, 0, s.loc});
                fp_.gates[static_cast<size_t>(g)].cont = here();
                break;
            }
            case StmtKind::AwaitForever: {
                GateId g = new_gate({GateInfo::Kind::Forever, -1, -1, 0, s.loc});
                emit({IOp::AwaitForever, -1, g, nullptr, nullptr, 0, s.loc});
                fp_.gates[static_cast<size_t>(g)].cont = here();  // unreachable
                break;
            }

            case StmtKind::EmitInt: {
                const auto& n = static_cast<const EmitIntStmt&>(s);
                emit({IOp::EmitInt, n.event_id, -1, n.value.get(), nullptr, 0, s.loc});
                break;
            }
            case StmtKind::EmitExt: {
                const auto& n = static_cast<const EmitExtStmt&>(s);
                emit({n.is_output ? IOp::EmitOutput : IOp::EmitExtAsync, n.event_id, -1,
                      n.value.get(), nullptr, 0, s.loc});
                break;
            }
            case StmtKind::EmitTime: {
                const auto& n = static_cast<const EmitTimeStmt&>(s);
                emit({IOp::EmitTimeAsync, -1, -1, nullptr, nullptr, n.us, s.loc});
                break;
            }

            case StmtKind::If: {
                const auto& n = static_cast<const IfStmt&>(s);
                Pc branch = emit({IOp::IfNot, -1, -1, n.cond.get(), nullptr, 0, s.loc});
                flat_scoped_body(n.then_body);
                if (n.has_else || !n.else_body.stmts.empty()) {
                    Pc skip = emit({IOp::Jump, -1, -1, nullptr, nullptr, 0, s.loc});
                    patch(branch, here());
                    flat_scoped_body(n.else_body);
                    patch(skip, here());
                } else {
                    patch(branch, here());
                }
                break;
            }

            case StmtKind::Loop: flat_loop(static_cast<const LoopStmt&>(s)); break;

            case StmtKind::Break: {
                if (loops_.empty()) break;  // sema already reported
                LoopCtx& lc = loops_.back();
                if (lc.in_async) {
                    lc.break_jumps.push_back(
                        emit({IOp::Jump, -1, -1, nullptr, nullptr, 0, s.loc}));
                } else {
                    emit({IOp::Escape, lc.escape_idx, -1, nullptr, nullptr, 0, s.loc});
                }
                break;
            }

            case StmtKind::Par: flat_par(static_cast<const ParStmt&>(s), nullptr); break;

            case StmtKind::ExprStmt:
                emit({IOp::Eval, -1, -1,
                      static_cast<const ExprStmtStmt&>(s).expr.get(), nullptr, 0, s.loc});
                break;

            case StmtKind::Assign: flat_assign(static_cast<const AssignStmt&>(s)); break;

            case StmtKind::Return: {
                const auto& n = static_cast<const ReturnStmt&>(s);
                const RetTarget& t = ret_targets_.back();
                switch (t.kind) {
                    case RetTarget::Kind::Program:
                        emit({IOp::ProgReturn, -1, -1, n.value.get(), nullptr, 0, s.loc});
                        break;
                    case RetTarget::Kind::Block:
                        emit({IOp::Escape, t.escape_idx, -1, n.value.get(), nullptr, 0,
                              s.loc});
                        break;
                    case RetTarget::Kind::Async:
                        emit({IOp::AsyncEnd, t.async_idx, -1, n.value.get(), nullptr, 0,
                              s.loc});
                        break;
                }
                break;
            }

            case StmtKind::Block:
                // A plain do-block is purely lexical.
                flat_scoped_body(static_cast<const BlockStmt&>(s).body);
                break;

            case StmtKind::Async: flat_async(static_cast<const AsyncStmt&>(s), nullptr); break;
        }
    }

    // -- declarations ---------------------------------------------------------

    void flat_decl_var(const DeclVarStmt& n) {
        for (const auto& v : n.vars) {
            int size = v.array_size > 0 ? static_cast<int>(v.array_size) : 1;
            SlotId slot = slots_.alloc(size);
            fp_.var_slot[static_cast<size_t>(v.decl_id)] = slot;
            if (v.init) {
                emit({IOp::Assign, -1, -1, synth_var(v.decl_id, v.loc), v.init.get(), 0,
                      v.loc});
            } else if (v.init_stmt) {
                flat_setexp(*v.init_stmt, synth_var(v.decl_id, v.loc), v.loc);
            }
        }
    }

    // -- assignments and value blocks ------------------------------------------

    void flat_assign(const AssignStmt& n) {
        if (n.rhs_expr) {
            emit({IOp::Assign, -1, -1, n.lhs.get(), n.rhs_expr.get(), 0, n.loc});
            return;
        }
        flat_setexp(*n.rhs_stmt, n.lhs.get(), n.loc);
    }

    /// Flattens `lhs = <stmt>` for stmt in {await, par, do, async}.
    void flat_setexp(const Stmt& rhs, const Expr* lhs, SourceLoc loc) {
        switch (rhs.kind) {
            case StmtKind::AwaitExt:
            case StmtKind::AwaitInt:
            case StmtKind::AwaitTime:
            case StmtKind::AwaitDyn:
                flat_stmt(rhs);  // halts; wakes carrying the event value
                emit({IOp::AssignWake, -1, -1, lhs, nullptr, 0, loc});
                break;
            case StmtKind::Async:
                flat_async(static_cast<const AsyncStmt&>(rhs), lhs);
                break;
            case StmtKind::Par:
                flat_par(static_cast<const ParStmt&>(rhs), lhs);
                break;
            case StmtKind::Block:
                flat_value_do(static_cast<const BlockStmt&>(rhs), lhs);
                break;
            default:
                diags_.error(loc, "unsupported value-producing statement");
                break;
        }
    }

    // -- loops -------------------------------------------------------------------

    void flat_loop(const LoopStmt& n) {
        if (in_async_) {
            loops_.push_back({/*in_async=*/true, -1, {}});
            Pc back = here();
            int mark = slots_.save();
            flat_body(n.body);
            slots_.restore(mark);
            emit({IOp::AsyncYield, -1, -1, nullptr, nullptr, 0, n.loc});
            emit({IOp::Jump, back, -1, nullptr, nullptr, 0, n.loc});
            for (Pc j : loops_.back().break_jumps) patch(j, here());
            loops_.pop_back();
            return;
        }

        int hidden_mark = slots_.save();
        int region = new_region();
        SlotId sched = slots_.alloc(1);
        int esc = static_cast<int>(fp_.escapes.size());
        fp_.escapes.push_back({region, -1, depth_, -1, sched, n.loc});
        loops_.push_back({/*in_async=*/false, esc, {}});

        // The scheduled-flag resets once per loop *statement* entry.
        emit({IOp::ClearSlot, -1, sched, nullptr, nullptr, 0, n.loc});
        Pc back = here();
        GateId g0 = gate_mark();
        bump_depth();
        int mark = slots_.save();
        flat_body(n.body);
        slots_.restore(mark);
        --depth_;
        emit({IOp::Jump, back, -1, nullptr, nullptr, 0, n.loc});

        Pc cont = here();
        emit({IOp::KillRegion, region, -1, nullptr, nullptr, 0, n.loc});
        fp_.regions[static_cast<size_t>(region)] = {back, cont, g0, gate_mark()};
        fp_.escapes[static_cast<size_t>(esc)].cont = cont;
        loops_.pop_back();
        slots_.restore(hidden_mark);
    }

    // -- parallel compositions ----------------------------------------------------

    void flat_par(const ParStmt& n, const Expr* lhs) {
        // Hidden bookkeeping slots (counter, sched flags, value-block
        // result) live only while the par is active: scope them so
        // sequential siblings reuse the space (paper 4.2).
        int hidden_mark = slots_.save();
        int region = new_region();
        int par_idx = static_cast<int>(fp_.pars.size());
        {
            ParInfo pi;
            pi.kind = n.par_kind;
            pi.region = region;
            pi.prio = depth_;
            pi.loc = n.loc;
            if (n.par_kind == ParKind::ParAnd) pi.counter_slot = slots_.alloc(1);
            pi.sched_slot = slots_.alloc(1);
            fp_.pars.push_back(std::move(pi));
        }

        // Value pars escape through `return`; set up the target (and the
        // once-guard funneling both the rejoin and the escape) up front.
        int esc = -1;
        SlotId result_slot = -1;
        SlotId once_slot = -1;
        if (lhs != nullptr) {
            result_slot = slots_.alloc(1);
            once_slot = slots_.alloc(1);
            esc = static_cast<int>(fp_.escapes.size());
            fp_.escapes.push_back({region, -1, depth_, result_slot, slots_.alloc(1), n.loc});
            ret_targets_.push_back({RetTarget::Kind::Block, esc, -1});
            emit({IOp::ClearSlot, -1, once_slot, nullptr, nullptr, 0, n.loc});
            emit({IOp::ClearSlot, -1, fp_.escapes[static_cast<size_t>(esc)].sched_slot,
                  nullptr, nullptr, 0, n.loc});
        }

        Pc spawn = emit({IOp::ParSpawn, par_idx, -1, nullptr, nullptr, 0, n.loc});
        GateId g0 = gate_mark();

        bump_depth();
        int base = slots_.save();
        int running = base;
        for (const auto& branch : n.branches) {
            slots_.restore(running);
            Pc bpc = here();
            running = slots_.with_local_peak([&] { flat_body(branch); });
            emit({IOp::BranchEnd, par_idx, -1, nullptr, nullptr, 0, n.loc});
            fp_.pars[static_cast<size_t>(par_idx)].branches.push_back(bpc);
            fp_.pars[static_cast<size_t>(par_idx)].branch_ranges.emplace_back(bpc, here());
        }
        slots_.restore(base);
        --depth_;

        // Rejoin continuation (par/and, par/or): kills what is left of the
        // branches (paper §2.1: awaiting trails are simply set inactive).
        Pc region_end;
        if (n.par_kind != ParKind::Par) {
            Pc rejoin = here();
            emit({IOp::KillRegion, region, -1, nullptr, nullptr, 0, n.loc});
            fp_.pars[static_cast<size_t>(par_idx)].cont = rejoin;
            region_end = rejoin;
        } else {
            region_end = here();
        }

        if (lhs != nullptr) {
            // Normal rejoin falls through; returns land on the escape
            // continuation. Both funnel into the once-guarded assignment.
            Pc skip = emit({IOp::Jump, -1, -1, nullptr, nullptr, 0, n.loc});
            Pc esc_cont = here();
            emit({IOp::KillRegion, region, -1, nullptr, nullptr, 0, n.loc});
            patch(skip, here());
            emit({IOp::Once, -1, once_slot, nullptr, nullptr, 0, n.loc});
            emit({IOp::AssignSlot, -1, result_slot, lhs, nullptr, 0, n.loc});
            fp_.escapes[static_cast<size_t>(esc)].cont = esc_cont;
            ret_targets_.pop_back();
            if (n.par_kind == ParKind::Par) region_end = esc_cont;
        }

        fp_.regions[static_cast<size_t>(region)] = {spawn, region_end, g0, gate_mark()};
        slots_.restore(hidden_mark);
    }

    // -- value do-blocks -----------------------------------------------------------

    void flat_value_do(const BlockStmt& n, const Expr* lhs) {
        int hidden_mark = slots_.save();
        int region = new_region();
        SlotId result_slot = slots_.alloc(1);
        SlotId once_slot = slots_.alloc(1);
        int esc = static_cast<int>(fp_.escapes.size());
        fp_.escapes.push_back({region, -1, depth_, result_slot, slots_.alloc(1), n.loc});
        ret_targets_.push_back({RetTarget::Kind::Block, esc, -1});

        emit({IOp::ClearSlot, -1, once_slot, nullptr, nullptr, 0, n.loc});
        emit({IOp::ClearSlot, -1, fp_.escapes[static_cast<size_t>(esc)].sched_slot, nullptr,
              nullptr, 0, n.loc});
        Pc begin = here();
        GateId g0 = gate_mark();
        bump_depth();
        int mark = slots_.save();
        flat_body(n.body);
        slots_.restore(mark);
        --depth_;
        Pc skip = emit({IOp::Jump, -1, -1, nullptr, nullptr, 0, n.loc});
        Pc esc_cont = here();
        emit({IOp::KillRegion, region, -1, nullptr, nullptr, 0, n.loc});
        patch(skip, here());
        emit({IOp::Once, -1, once_slot, nullptr, nullptr, 0, n.loc});
        emit({IOp::AssignSlot, -1, result_slot, lhs, nullptr, 0, n.loc});

        fp_.escapes[static_cast<size_t>(esc)].cont = esc_cont;
        fp_.regions[static_cast<size_t>(region)] = {begin, esc_cont, g0, gate_mark()};
        ret_targets_.pop_back();
        slots_.restore(hidden_mark);
    }

    // -- asyncs ---------------------------------------------------------------------

    void flat_async(const AsyncStmt& n, const Expr* lhs) {
        int region = new_region();
        int async_idx = static_cast<int>(fp_.asyncs.size());
        GateId g = new_gate({GateInfo::Kind::Async, async_idx, -1, 0, n.loc});
        fp_.asyncs.push_back({-1, region, g, n.loc});

        Pc run = emit({IOp::AsyncRun, async_idx, g, nullptr, nullptr, 0, n.loc});
        Pc begin = here();
        fp_.asyncs[static_cast<size_t>(async_idx)].begin = begin;

        in_async_ = true;
        ret_targets_.push_back({RetTarget::Kind::Async, -1, async_idx});
        int mark = slots_.save();
        flat_body(n.body);
        slots_.restore(mark);
        emit({IOp::AsyncEnd, async_idx, -1, nullptr, nullptr, 0, n.loc});
        ret_targets_.pop_back();
        in_async_ = false;

        Pc cont = here();
        fp_.gates[static_cast<size_t>(g)].cont = cont;
        fp_.regions[static_cast<size_t>(region)] = {run, cont, g, gate_mark()};
        if (lhs != nullptr) {
            emit({IOp::AssignWake, -1, -1, lhs, nullptr, 0, n.loc});
        }
    }

    // -- finalization -----------------------------------------------------------------

    void finish() {
        fp_.data_size = slots_.peak();
        fp_.ext_gates.assign(sema_.inputs.size(), {});
        fp_.int_gates.assign(sema_.internals.size(), {});
        for (size_t g = 0; g < fp_.gates.size(); ++g) {
            const GateInfo& gi = fp_.gates[g];
            if (gi.kind == GateInfo::Kind::Ext && gi.event >= 0) {
                fp_.ext_gates[static_cast<size_t>(gi.event)].push_back(
                    static_cast<GateId>(g));
            } else if (gi.kind == GateInfo::Kind::Int && gi.event >= 0) {
                fp_.int_gates[static_cast<size_t>(gi.event)].push_back(
                    static_cast<GateId>(g));
            }
        }
    }
};

}  // namespace

FlatProgram flatten(const Program& prog, const SemaInfo& sema, Diagnostics& diags) {
    return Flattener(prog, sema, diags).run();
}

CompiledProgram compile(const std::string& source, const std::string& name) {
    auto cp = std::make_unique<CompiledProgram>();
    Diagnostics diags;
    if (!compile_checked(source, cp.get(), diags, name)) {
        throw CompileError(diags.str());
    }
    return std::move(*cp);
}

bool compile_checked(const std::string& source, CompiledProgram* out, Diagnostics& diags,
                     const std::string& name) {
    out->ast = parse_source(source, diags, name);
    if (!diags.ok()) return false;
    out->sema = analyze(out->ast, diags);
    if (!diags.ok()) return false;
    out->flat = flatten(out->ast, out->sema, diags);
    return diags.ok();
}

}  // namespace ceu::flat
