#include "cgen/cgen.hpp"

#include <sstream>

#include "cgen/aot_abi.hpp"
#include "obs/trace_format.hpp"
#include "runtime/engine.hpp"

namespace ceu::cgen {

using flat::FlatProgram;
using flat::Instr;
using flat::IOp;
using flat::Pc;

namespace {

class Emitter {
  public:
    Emitter(const flat::CompiledProgram& cp, const CgenOptions& opt)
        : cp_(cp), fp_(cp.flat), opt_(opt), re_(opt.reentrant) {}

    std::string run() {
        prelude();
        // In reentrant mode the weak ceu_obs_* file machinery only backs the
        // default host of the deprecated single-instance wrappers; a pure
        // shared-object TU routes observability through its host vtable.
        if (!re_ || opt_.with_main) obs_hooks();
        tables();
        runtime_core();
        track_dispatch();
        async_dispatch();
        api();
        if (re_) reentrant_epilogue();
        if (opt_.with_main) main_harness();
        return os_.str();
    }

  private:
    const flat::CompiledProgram& cp_;
    const FlatProgram& fp_;
    const CgenOptions& opt_;
    const bool re_;
    std::ostringstream os_;

    // -- expressions -----------------------------------------------------------

    std::string slot_ref(int slot) { return "DATA[" + std::to_string(slot) + "]"; }

    std::string var_slot_ref(int decl_id) {
        return slot_ref(fp_.var_slot[static_cast<size_t>(decl_id)]);
    }

    static std::string c_escape(const std::string& s) {
        std::string out;
        for (char c : s) {
            switch (c) {
                case '\n': out += "\\n"; break;
                case '\t': out += "\\t"; break;
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                default: out += c; break;
            }
        }
        return out;
    }

    static const char* binop_c(Tok op) {
        switch (op) {
            case Tok::OrOr: return "||";
            case Tok::AndAnd: return "&&";
            case Tok::Or: return "|";
            case Tok::Xor: return "^";
            case Tok::And: return "&";
            case Tok::Ne: return "!=";
            case Tok::EqEq: return "==";
            case Tok::Le: return "<=";
            case Tok::Ge: return ">=";
            case Tok::Lt: return "<";
            case Tok::Gt: return ">";
            case Tok::Shl: return "<<";
            case Tok::Shr: return ">>";
            case Tok::Plus: return "+";
            case Tok::Minus: return "-";
            case Tok::Star: return "*";
            case Tok::Slash: return "/";
            case Tok::Percent: return "%";
            default: return "?";
        }
    }

    std::string expr(const ast::Expr& e) {
        using ast::ExprKind;
        switch (e.kind) {
            case ExprKind::Num:
                return "INT64_C(" +
                       std::to_string(static_cast<const ast::NumExpr&>(e).value) + ")";
            case ExprKind::Str:
                return "(int64_t)(intptr_t)\"" +
                       c_escape(static_cast<const ast::StrExpr&>(e).value) + "\"";
            case ExprKind::Null:
                return "INT64_C(0)";
            case ExprKind::Var: {
                const auto& n = static_cast<const ast::VarExpr&>(e);
                const VarInfo& vi = cp_.sema.vars[static_cast<size_t>(n.decl_id)];
                if (vi.array_size > 0) {
                    return "(int64_t)(intptr_t)&" + var_slot_ref(n.decl_id);
                }
                return var_slot_ref(n.decl_id);
            }
            case ExprKind::CSym: {
                // Repassed as-is with the underscore removed (paper §2.4).
                const auto& n = static_cast<const ast::CSymExpr&>(e);
                return "(int64_t)(" + n.name + ")";
            }
            case ExprKind::Unop: {
                const auto& n = static_cast<const ast::UnopExpr&>(e);
                switch (n.op) {
                    case Tok::Not: return "(!" + expr(*n.sub) + ")";
                    case Tok::Tilde: return "(~" + expr(*n.sub) + ")";
                    case Tok::Minus: return "(-" + expr(*n.sub) + ")";
                    case Tok::Plus: return "(+" + expr(*n.sub) + ")";
                    case Tok::Star:
                        return "(*(int64_t*)(intptr_t)" + expr(*n.sub) + ")";
                    case Tok::And: return addr_of(*n.sub);
                    default: return "0";
                }
            }
            case ExprKind::Binop: {
                const auto& n = static_cast<const ast::BinopExpr&>(e);
                return "(" + expr(*n.lhs) + " " + binop_c(n.op) + " " + expr(*n.rhs) + ")";
            }
            case ExprKind::Index: return lvalue(e);
            case ExprKind::Call: {
                const auto& n = static_cast<const ast::CallExpr&>(e);
                std::string out = "(int64_t)" + callee(*n.fn) + "(";
                for (size_t i = 0; i < n.args.size(); ++i) {
                    if (i) out += ", ";
                    out += expr(*n.args[i]);
                }
                return out + ")";
            }
            case ExprKind::Cast:
                return "(int64_t)(" + expr(*static_cast<const ast::CastExpr&>(e).sub) + ")";
            case ExprKind::SizeOf: {
                const auto& n = static_cast<const ast::SizeOfExpr&>(e);
                return "(int64_t)sizeof(" + ctype(n.type) + ")";
            }
            case ExprKind::Field: {
                const auto& n = static_cast<const ast::FieldExpr&>(e);
                return expr(*n.base) + (n.arrow ? "->" : ".") + n.field;
            }
        }
        return "0";
    }

    /// A call evaluated purely for effect: no int64_t cast (the callee may
    /// return void).
    std::string stmt_expr(const ast::Expr& e) {
        if (e.kind == ast::ExprKind::Call) {
            const auto& n = static_cast<const ast::CallExpr&>(e);
            std::string out = callee(*n.fn) + "(";
            for (size_t i = 0; i < n.args.size(); ++i) {
                if (i) out += ", ";
                out += expr(*n.args[i]);
            }
            return out + ")";
        }
        return "(void)(" + expr(e) + ")";
    }

    static std::string ctype(const ast::Type& t) {
        std::string s = t.name;
        for (int i = 0; i < t.pointer_depth; ++i) s += "*";
        return s;
    }

    std::string addr_of(const ast::Expr& e) {
        using ast::ExprKind;
        if (e.kind == ExprKind::Var) {
            const auto& n = static_cast<const ast::VarExpr&>(e);
            return "(int64_t)(intptr_t)&" + var_slot_ref(n.decl_id);
        }
        return "(int64_t)(intptr_t)&(" + lvalue(e) + ")";
    }

    std::string callee(const ast::Expr& fn) {
        using ast::ExprKind;
        if (fn.kind == ExprKind::CSym) {
            return static_cast<const ast::CSymExpr&>(fn).name;
        }
        if (fn.kind == ExprKind::Field) {
            const auto& f = static_cast<const ast::FieldExpr&>(fn);
            return expr(*f.base) + (f.arrow ? "->" : ".") + f.field;
        }
        return "/*uncallable*/0";
    }

    std::string lvalue(const ast::Expr& e) {
        using ast::ExprKind;
        switch (e.kind) {
            case ExprKind::Var:
                return var_slot_ref(static_cast<const ast::VarExpr&>(e).decl_id);
            case ExprKind::CSym:
                return static_cast<const ast::CSymExpr&>(e).name;
            case ExprKind::Unop: {
                const auto& n = static_cast<const ast::UnopExpr&>(e);
                return "(*(int64_t*)(intptr_t)" + expr(*n.sub) + ")";
            }
            case ExprKind::Index: {
                const auto& n = static_cast<const ast::IndexExpr&>(e);
                const ast::Expr* root = n.base.get();
                if (root->kind == ExprKind::Var) {
                    const auto& v = static_cast<const ast::VarExpr&>(*root);
                    const VarInfo& vi = cp_.sema.vars[static_cast<size_t>(v.decl_id)];
                    if (vi.array_size > 0) {
                        return "DATA[" +
                               std::to_string(fp_.var_slot[static_cast<size_t>(v.decl_id)]) +
                               " + (" + expr(*n.index) + ")]";
                    }
                    // pointer variable indexed
                    return "((int64_t*)(intptr_t)" + var_slot_ref(v.decl_id) + ")[" +
                           expr(*n.index) + "]";
                }
                if (root->kind == ExprKind::CSym) {
                    return static_cast<const ast::CSymExpr&>(*root).name + "[" +
                           expr(*n.index) + "]";
                }
                // nested index (e.g. _MAP[i][j]) or pointer expression
                return lvalue(*root) + "[" + expr(*n.index) + "]";
            }
            case ExprKind::Field: {
                const auto& n = static_cast<const ast::FieldExpr&>(e);
                return expr(*n.base) + (n.arrow ? "->" : ".") + n.field;
            }
            default:
                return "/*not-an-lvalue*/DATA[0]";
        }
    }

    // -- sections ----------------------------------------------------------------

    void prelude() {
        os_ << "/* Generated by ceu-cpp from '" << opt_.program_name
            << "'. Single-threaded C in the scheme of the paper, section 4. */\n"
            << "#include <stdint.h>\n#include <string.h>\n";
        if (opt_.with_libc) {
            os_ << "#include <stdio.h>\n#include <stdlib.h>\n#include <assert.h>\n"
                << "#include <time.h>\n";
        }
        if (re_) os_ << "#include <stdarg.h>\n#include <stddef.h>\n";
        // Output-event hooks: the environment implements these (weakly
        // defaulted to a stdout note when libc is available). A pure
        // shared-object TU skips them: output events route through the host
        // vtable, never through link-time hooks.
        if (!re_ || opt_.with_main) {
            for (const auto& o : cp_.sema.outputs) {
                os_ << "void ceu_output_" << o.name << "(int64_t v)";
                if (opt_.with_libc) {
                    os_ << " __attribute__((weak));\n"
                        << "void ceu_output_" << o.name
                        << "(int64_t v) { printf(\"output " << o.name
                        << " = %lld\\n\", (long long)v); }\n";
                } else {
                    os_ << ";\n";
                }
            }
        }
        os_ << "\n/* ---- user C blocks (repassed verbatim) ---- */\n";
        for (const std::string& blk : cp_.sema.c_blocks) os_ << blk << "\n";
        os_ << "\n";
        if (re_) os_ << kAotAbiC << "\n";
    }

    void obs_hooks() {
        os_ << "/* ---- reaction-trace hooks (ceu_obs_*, weak: the embedder may\n"
               " * relink them). The defaults are no-ops until ceu_obs_open()\n"
               " * arms a file; they then stream Chrome trace_event JSON with\n"
               " * the exact format strings of src/obs/trace_format.hpp, so a\n"
               " * traced run is byte-identical with the interpreter's\n"
               " * ChromeTraceSink on the same input script. ---- */\n";
        if (!opt_.with_libc) {
            // Freestanding target: keep the hook symbols (a platform layer
            // can relink them) but default them to empty stubs.
            os_ << "__attribute__((weak)) void ceu_obs_open(const char* path) { (void)path; }\n"
                << "__attribute__((weak)) void ceu_obs_close(void) {}\n"
                << "__attribute__((weak)) void ceu_obs_begin(int kind, int id, const char* name, int64_t ts) { (void)kind; (void)id; (void)name; (void)ts; }\n"
                << "__attribute__((weak)) void ceu_obs_wake(int gate) { (void)gate; }\n"
                << "__attribute__((weak)) void ceu_obs_emit(int evt, int depth) { (void)evt; (void)depth; }\n"
                << "__attribute__((weak)) void ceu_obs_timer(int gate, int64_t residual) { (void)gate; (void)residual; }\n"
                << "__attribute__((weak)) void ceu_obs_end(int status, int64_t result) { (void)status; (void)result; }\n\n";
            return;
        }
        os_ << "static FILE* ceu_obs_f;\n"
            << "static int ceu_obs_first, ceu_obs_span;\n"
            << "static unsigned long long ceu_obs_seq;\n"
            << "static long long ceu_obs_ts;\n"
            << "__attribute__((weak)) void ceu_obs_open(const char* path) {\n"
            << "    ceu_obs_f = fopen(path, \"w\");\n"
            << "    if (ceu_obs_f) { fputs(\"" << c_escape(obs::kTraceHeader)
            << "\", ceu_obs_f); ceu_obs_first = 1; }\n"
            << "}\n"
            << "static void ceu_obs_sep(void) {\n"
            << "    if (!ceu_obs_first) fputs(\"" << c_escape(obs::kTraceSep)
            << "\", ceu_obs_f);\n"
            << "    ceu_obs_first = 0;\n"
            << "}\n"
            << "__attribute__((weak)) void ceu_obs_begin(int kind, int id, const char* name, int64_t ts) {\n"
            << "    static const char* K[4] = {\"boot\", \"event\", \"timer\", \"async\"};\n"
            << "    if (!ceu_obs_f) return;\n"
            << "    ceu_obs_ts = (long long)ts; ceu_obs_span = 1;\n"
            << "    ceu_obs_sep();\n"
            << "    fprintf(ceu_obs_f, \"" << c_escape(obs::kFmtReactionBegin)
            << "\", ceu_obs_ts, K[kind], id, name, ceu_obs_seq++);\n"
            << "}\n"
            << "__attribute__((weak)) void ceu_obs_wake(int gate) {\n"
            << "    if (!ceu_obs_f || !ceu_obs_span) return;\n"
            << "    ceu_obs_sep();\n"
            << "    fprintf(ceu_obs_f, \"" << c_escape(obs::kFmtWake)
            << "\", ceu_obs_ts, gate);\n"
            << "}\n"
            << "__attribute__((weak)) void ceu_obs_emit(int evt, int depth) {\n"
            << "    if (!ceu_obs_f || !ceu_obs_span) return;\n"
            << "    ceu_obs_sep();\n"
            << "    fprintf(ceu_obs_f, \"" << c_escape(obs::kFmtEmit)
            << "\", ceu_obs_ts, evt, depth);\n"
            << "}\n"
            << "__attribute__((weak)) void ceu_obs_timer(int gate, int64_t residual) {\n"
            << "    if (!ceu_obs_f || !ceu_obs_span) return;\n"
            << "    ceu_obs_sep();\n"
            << "    fprintf(ceu_obs_f, \"" << c_escape(obs::kFmtTimerFire)
            << "\", ceu_obs_ts, gate, (long long)residual);\n"
            << "}\n"
            << "__attribute__((weak)) void ceu_obs_end(int status, int64_t result) {\n"
            << "    if (!ceu_obs_f || !ceu_obs_span) return;\n"
            << "    ceu_obs_span = 0;\n"
            << "    ceu_obs_sep();\n"
            << "    if (status == 2)\n"
            << "        fprintf(ceu_obs_f, \"" << c_escape(obs::kFmtReactionEndResult)
            << "\", ceu_obs_ts, status, (long long)result);\n"
            << "    else\n"
            << "        fprintf(ceu_obs_f, \"" << c_escape(obs::kFmtReactionEnd)
            << "\", ceu_obs_ts, status);\n"
            << "}\n"
            << "__attribute__((weak)) void ceu_obs_close(void) {\n"
            << "    if (!ceu_obs_f) return;\n"
            << "    fputs(\"" << c_escape(obs::kTraceFooter) << "\", ceu_obs_f);\n"
            << "    fclose(ceu_obs_f); ceu_obs_f = 0;\n"
            << "}\n\n";
    }

    void tables() {
        os_ << "/* ---- static memory layout (paper 4.2) ---- */\n"
            << "#define CEU_DATA_N " << (fp_.data_size > 0 ? fp_.data_size : 1) << "\n"
            << "#define CEU_GATES_N " << (fp_.gates.empty() ? 1 : fp_.gates.size())
            << "\n"
            << "#define CEU_NORMAL_PRIO 1000000000\n";
        if (!re_) {
            // Reentrant mode keeps DATA/GATES inside ceu_ctx_t instead.
            os_ << "static int64_t DATA[CEU_DATA_N];\n"
                << "static uint8_t GATES[CEU_GATES_N];\n";
        }
        os_ << "static const int GATE_CONT[CEU_GATES_N] = {";
        for (size_t g = 0; g < fp_.gates.size(); ++g) {
            if (g) os_ << ", ";
            os_ << fp_.gates[g].cont;
        }
        if (fp_.gates.empty()) os_ << "0";
        os_ << "};\n\n";
    }

    void runtime_core() {
        // Queue capacities are static bounds derived from the program, as
        // the paper's temporal analysis prescribes (§4.1): a track queue can
        // hold at most one continuation per gate plus the rejoin
        // continuations; each `emit` site occupies the stack at most once;
        // timers are bounded by the timed-await sites.
        size_t timer_gates = 0;
        for (const auto& g : fp_.gates) {
            if (g.kind == flat::GateInfo::Kind::Time ||
                g.kind == flat::GateInfo::Kind::Dyn) {
                ++timer_gates;
            }
        }
        size_t emit_sites = 0;
        for (const auto& i : fp_.code) {
            if (i.op == IOp::EmitInt) ++emit_sites;
        }
        os_ << "#define CEU_QCAP "
            << (fp_.gates.size() + fp_.pars.size() + fp_.escapes.size() + 4) << "\n"
            << "#define CEU_TCAP " << (timer_gates + 1) << "\n"
            << "#define CEU_SCAP " << (emit_sites + 1) << "\n"
            << "#define CEU_ACAP " << (fp_.asyncs.size() + 1) << "\n";
        os_ << R"(/* ---- runtime bookkeeping (statically bounded queues) ---- */
typedef struct { int pc; int prio; unsigned long seq; int64_t wake; } ceu_track_t;
typedef struct { int gate; int64_t deadline; } ceu_timer_t;
typedef struct { int resume; int prio; int dead; } ceu_frame_t;
typedef struct { int idx; int pc; int alive; } ceu_async_t;
)";
        if (re_) {
            reentrant_state();
        } else {
            os_ << R"(static ceu_track_t Q[CEU_QCAP]; static int qn;
static ceu_timer_t TM[CEU_TCAP]; static int tn;
static ceu_frame_t ST[CEU_SCAP]; static int sn;
static ceu_async_t AS[CEU_ACAP]; static int an; static int arr;
static unsigned long ceu_seq;
static int64_t ceu_now, ceu_logical;
static int ceu_status;           /* 0=loaded 1=running 2=terminated 3=faulted */
static int64_t ceu_result;
/* Deterministic fault lever (the interpreter's `_ceu_trip` binding throws a
 * recoverable RuntimeError): mark the instance faulted and drain the
 * scheduler. The current track still runs to its next await, so callers
 * place the trip immediately before one. */
__attribute__((unused)) static int64_t ceu_trip(void) {
    if (ceu_status == 1) { ceu_status = 3; qn = 0; sn = 0; }
    return 0;
}
)";
        }
        // The scheduler bodies below are shared between the two modes: in
        // reentrant mode every identifier they touch is a macro over `C`.
        if (re_) {
            os_ << "static void ceu_enqueue_fn(ceu_ctx_t* C, int pc, int prio, int64_t wake) {\n";
        } else {
            os_ << "static void ceu_enqueue(int pc, int prio, int64_t wake) {\n";
        }
        os_ << R"(    if (qn < CEU_QCAP) { Q[qn].pc = pc; Q[qn].prio = prio; Q[qn].seq = ceu_seq++; Q[qn].wake = wake; qn++; }
}
)";
        if (re_) {
            os_ << "static int ceu_pop_fn(ceu_ctx_t* C, ceu_track_t* out) {\n";
        } else {
            os_ << "static int ceu_pop(ceu_track_t* out) {\n";
        }
        os_ << R"(    int best = 0, i;
    if (qn == 0) return 0;
    for (i = 1; i < qn; i++)
        if (Q[i].prio > Q[best].prio || (Q[i].prio == Q[best].prio && Q[i].seq < Q[best].seq)) best = i;
    *out = Q[best];
    for (i = best; i + 1 < qn; i++) Q[i] = Q[i + 1];
    qn--;
    return 1;
}
)";
        if (re_) {
            os_ << "static void ceu_wake_fn(ceu_ctx_t* C, int gate, int64_t v) "
                   "{ GATES[gate] = 0; ceu_enqueue(GATE_CONT[gate], CEU_NORMAL_PRIO, v); }\n"
                << "static void ceu_arm_fn(ceu_ctx_t* C, int gate, int64_t deadline) {\n";
        } else {
            os_ << "static void ceu_wake(int gate, int64_t v) "
                   "{ GATES[gate] = 0; ceu_enqueue(GATE_CONT[gate], CEU_NORMAL_PRIO, v); }\n"
                << "static void ceu_arm(int gate, int64_t deadline) {\n";
        }
        os_ << R"(    if (tn < CEU_TCAP) { TM[tn].gate = gate; TM[tn].deadline = deadline; tn++; }
}
)";
        if (re_) {
            os_ << "static void ceu_reaction_fn(ceu_ctx_t* C) {\n"
                   "    C->ceu_reactions++;\n";
        } else {
            os_ << "static void exec_track(int pc, int prio, int64_t wake);\n"
                << "static void ceu_reaction(void) {\n";
        }
        os_ << R"(    for (;;) {
        ceu_track_t t;
        if (ceu_pop(&t)) { exec_track(t.pc, t.prio, t.wake); }
        else if (sn > 0) {
            ceu_frame_t f = ST[--sn];
            if (f.dead) continue;
            exec_track(f.resume, f.prio, 0);
        } else break;
    }
    if (ceu_status == 1) {
        int g, any = 0;
        for (g = 0; g < CEU_GATES_N; g++) any |= GATES[g];
        if (!any) ceu_status = 2;
    }
    ceu_obs_end(ceu_status, ceu_result);
}
)";
        if (re_) {
            os_ << "static void ceu_kill_fn(ceu_ctx_t* C, int pc0, int pc1, int g0, int g1) {\n";
        } else {
            os_ << "static void ceu_kill(int pc0, int pc1, int g0, int g1) {\n";
        }
        os_ << R"(    int i, j;
    memset(GATES + g0, 0, (size_t)(g1 - g0));   /* paper 4.3: range clear */
    for (i = 0; i < tn;) { if (TM[i].gate >= g0 && TM[i].gate < g1) { TM[i] = TM[--tn]; } else i++; }
    j = 0;
    for (i = 0; i < qn; i++) if (!(Q[i].pc >= pc0 && Q[i].pc < pc1)) Q[j++] = Q[i];
    qn = j;
    for (i = 0; i < sn; i++) if (ST[i].resume >= pc0 && ST[i].resume < pc1) ST[i].dead = 1;
    for (i = 0; i < an; i++) {
)";
        // async gate-range kill (needs the per-async gate table)
        os_ << "        static const int ASYNC_GATE[] = {";
        for (size_t a = 0; a < fp_.asyncs.size(); ++a) {
            if (a) os_ << ", ";
            os_ << fp_.asyncs[a].gate;
        }
        if (fp_.asyncs.empty()) os_ << "-1";
        os_ << "};\n"
            << "        if (AS[i].alive && ASYNC_GATE[AS[i].idx] >= g0 && "
               "ASYNC_GATE[AS[i].idx] < g1) AS[i].alive = 0;\n"
            << "    }\n}\n\n";
    }

    /// Reentrant mode: the per-instance context type, the thread-local
    /// current-instance pointer, host-vtable shims, the default host used by
    /// the deprecated wrappers, and the macro layer that retargets the shared
    /// scheduler text at `C`.
    void reentrant_state() {
        os_ << R"(/* ---- per-instance context: every mutable word of program state.
 * POD on purpose — a snapshot is a memcpy of this struct (the host
 * pointer is re-fixed on restore). ---- */
typedef struct ceu_ctx {
    const ceu_host_api_t* host;
    int64_t DATA[CEU_DATA_N];
    uint8_t GATES[CEU_GATES_N];
    ceu_track_t Q[CEU_QCAP]; int qn;
    ceu_timer_t TM[CEU_TCAP]; int tn;
    ceu_frame_t ST[CEU_SCAP]; int sn;
    ceu_async_t AS[CEU_ACAP]; int an; int arr;
    unsigned long ceu_seq;
    int64_t ceu_now, ceu_logical;
    int ceu_status;              /* 0=loaded 1=running 2=terminated 3=faulted */
    int64_t ceu_result;
    unsigned long long ceu_reactions;
} ceu_ctx_t;
/* The instance whose reaction is on this thread's stack: free-form user C
 * (`_printf`, `_ceu_trip`) reaches the right context through it without
 * threading a parameter through every generated expression. */
static _Thread_local ceu_ctx_t* ceu_cur;
/* `_printf` lands here: one call becomes one host trace line (a single
 * trailing newline is stripped) and the stripped length is returned,
 * matching the interpreter's `_printf` binding exactly. */
__attribute__((unused)) static int ceu_aot_printf(int64_t fmt_i, ...) {
    const char* fmt = (const char*)(intptr_t)fmt_i;
    char buf[1024];
    va_list ap; int n;
    va_start(ap, fmt_i);
    n = vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    if (n < 0) return n;
    if (n >= (int)sizeof buf) n = (int)sizeof buf - 1;
    if (n > 0 && buf[n - 1] == '\n') buf[--n] = 0;
    if (ceu_cur && ceu_cur->host && ceu_cur->host->trace_line)
        ceu_cur->host->trace_line(ceu_cur->host->user, buf, n);
    return n;
}
/* Deterministic fault lever (the interpreter's `_ceu_trip` binding throws a
 * recoverable RuntimeError): mark the instance faulted and drain the
 * scheduler. The current track still runs to its next await, so callers
 * place the trip immediately before one. */
__attribute__((unused)) static int64_t ceu_trip(void) {
    ceu_ctx_t* C = ceu_cur;
    if (C && C->ceu_status == 1) { C->ceu_status = 3; C->qn = 0; C->sn = 0; }
    return 0;
}
static void ceu_hobs_begin(ceu_ctx_t* C, int kind, int id, const char* name, int64_t ts) {
    if (C->host && C->host->obs_begin) C->host->obs_begin(C->host->user, kind, id, name, ts);
}
static void ceu_hobs_wake(ceu_ctx_t* C, int gate) {
    if (C->host && C->host->obs_wake) C->host->obs_wake(C->host->user, gate);
}
static void ceu_hobs_emit(ceu_ctx_t* C, int evt, int depth) {
    if (C->host && C->host->obs_emit) C->host->obs_emit(C->host->user, evt, depth);
}
static void ceu_hobs_timer(ceu_ctx_t* C, int gate, int64_t residual) {
    if (C->host && C->host->obs_timer) C->host->obs_timer(C->host->user, gate, residual);
}
static void ceu_hobs_end(ceu_ctx_t* C, int status, int64_t result) {
    if (C->host && C->host->obs_end) C->host->obs_end(C->host->user, status, result);
}
)";
        if (!cp_.sema.outputs.empty()) {
            os_ << "static void ceu_hout(ceu_ctx_t* C, int idx, const char* name, int64_t v) {\n"
                   "    if (C->host && C->host->output) C->host->output(C->host->user, idx, name, v);\n"
                   "}\n";
        }
        if (opt_.with_main) default_host();
        os_ << R"(static void ceu_enqueue_fn(ceu_ctx_t* C, int pc, int prio, int64_t wake);
static int ceu_pop_fn(ceu_ctx_t* C, ceu_track_t* out);
static void ceu_wake_fn(ceu_ctx_t* C, int gate, int64_t v);
static void ceu_arm_fn(ceu_ctx_t* C, int gate, int64_t deadline);
static void ceu_reaction_fn(ceu_ctx_t* C);
static void ceu_kill_fn(ceu_ctx_t* C, int pc0, int pc1, int g0, int g1);
static void exec_track_fn(ceu_ctx_t* C, int pc, int prio, int64_t wake);
static void ceu_async_done_fn(ceu_ctx_t* C, int idx, int64_t v);
static int exec_async_fn(ceu_ctx_t* C, ceu_async_t* a);
static void ceu_api_init(ceu_ctx_t* C);
static void ceu_api_event(ceu_ctx_t* C, int evt, int64_t val);
static void ceu_api_time(ceu_ctx_t* C, int64_t now);
static int ceu_api_async(ceu_ctx_t* C);
/* ---- instance-context redirection: everything from here to the #undef
 * block is the same emitter text as the process-global build, reading and
 * writing the context through these macros. ---- */
#define DATA (C->DATA)
#define GATES (C->GATES)
#define Q (C->Q)
#define qn (C->qn)
#define TM (C->TM)
#define tn (C->tn)
#define ST (C->ST)
#define sn (C->sn)
#define AS (C->AS)
#define an (C->an)
#define arr (C->arr)
#define ceu_seq (C->ceu_seq)
#define ceu_now (C->ceu_now)
#define ceu_logical (C->ceu_logical)
#define ceu_status (C->ceu_status)
#define ceu_result (C->ceu_result)
#define ceu_enqueue(p, r, w) ceu_enqueue_fn(C, (p), (r), (w))
#define ceu_pop(o) ceu_pop_fn(C, (o))
#define ceu_wake(g, v) ceu_wake_fn(C, (g), (v))
#define ceu_arm(g, d) ceu_arm_fn(C, (g), (d))
#define ceu_reaction() ceu_reaction_fn(C)
#define ceu_kill(a, b, c, d) ceu_kill_fn(C, (a), (b), (c), (d))
#define exec_track(p, r, w) exec_track_fn(C, (p), (r), (w))
#define ceu_async_done(i, v) ceu_async_done_fn(C, (i), (v))
#define exec_async(a) exec_async_fn(C, (a))
#define ceu_go_event(e, v) ceu_api_event(C, (e), (v))
#define ceu_go_time(t) ceu_api_time(C, (t))
#define ceu_obs_begin(k, i, n, t) ceu_hobs_begin(C, (k), (i), (n), (t))
#define ceu_obs_wake(g) ceu_hobs_wake(C, (g))
#define ceu_obs_emit(e, d) ceu_hobs_emit(C, (e), (d))
#define ceu_obs_timer(g, r) ceu_hobs_timer(C, (g), (r))
#define ceu_obs_end(s, r) ceu_hobs_end(C, (s), (r))
#define printf ceu_aot_printf
)";
        for (size_t i = 0; i < cp_.sema.outputs.size(); ++i) {
            const auto& o = cp_.sema.outputs[i];
            os_ << "#define ceu_output_" << o.name << "(v) ceu_hout(C, " << i
                << ", \"" << c_escape(o.name) << "\", (v))\n";
        }
        os_ << "\n";
    }

    /// Host vtable used by the deprecated wrappers and the scripted harness:
    /// trace lines to stdout, obs spans and outputs to the weak link-time
    /// hooks, so a reentrant binary's stdout and Chrome trace stay
    /// byte-identical with the process-global build.
    void default_host() {
        os_ << "static void ceu_def_trace(void* u, const char* line, int32_t n) {\n"
               "    (void)u; fwrite(line, 1, (size_t)n, stdout); fputc('\\n', stdout);\n"
               "}\n"
               "static void ceu_def_obs_begin(void* u, int32_t kind, int32_t id, const char* name, int64_t ts) { (void)u; ceu_obs_begin((int)kind, (int)id, name, ts); }\n"
               "static void ceu_def_obs_wake(void* u, int32_t gate) { (void)u; ceu_obs_wake((int)gate); }\n"
               "static void ceu_def_obs_emit(void* u, int32_t evt, int32_t depth) { (void)u; ceu_obs_emit((int)evt, (int)depth); }\n"
               "static void ceu_def_obs_timer(void* u, int32_t gate, int64_t residual) { (void)u; ceu_obs_timer((int)gate, residual); }\n"
               "static void ceu_def_obs_end(void* u, int32_t status, int64_t result) { (void)u; ceu_obs_end((int)status, result); }\n"
               "static void ceu_def_output(void* u, int32_t idx, const char* name, int64_t v) {\n"
               "    (void)u; (void)name;\n"
               "    switch (idx) {\n";
        for (size_t i = 0; i < cp_.sema.outputs.size(); ++i) {
            os_ << "    case " << i << ": ceu_output_" << cp_.sema.outputs[i].name
                << "(v); break;\n";
        }
        os_ << "    default: break;\n    }\n}\n"
               "static const ceu_host_api_t ceu_default_host = {\n"
               "    0, ceu_def_trace, ceu_def_obs_begin, ceu_def_obs_wake,\n"
               "    ceu_def_obs_emit, ceu_def_obs_timer, ceu_def_obs_end, ceu_def_output,\n"
               "};\n";
    }

    void emit_instr(Pc pc, const Instr& I) {
        os_ << "        case " << pc << ":\n";
        switch (I.op) {
            case IOp::Nop:
                break;
            case IOp::Eval:
                os_ << "            " << stmt_expr(*I.e1) << ";\n";
                break;
            case IOp::Assign:
                os_ << "            " << lvalue(*I.e1) << " = " << expr(*I.e2) << ";\n";
                break;
            case IOp::AssignWake:
                os_ << "            " << lvalue(*I.e1) << " = wake;\n";
                break;
            case IOp::AssignSlot:
                os_ << "            " << lvalue(*I.e1) << " = DATA[" << I.b << "];\n";
                break;
            case IOp::IfNot:
                os_ << "            if (!(" << expr(*I.e1) << ")) { pc = " << I.a
                    << "; continue; }\n";
                break;
            case IOp::Jump:
                os_ << "            pc = " << I.a << "; continue;\n";
                break;
            case IOp::AwaitExt:
            case IOp::AwaitInt:
            case IOp::AwaitForever:
                os_ << "            GATES[" << I.b << "] = 1; return;\n";
                break;
            case IOp::AwaitTime:
                os_ << "            GATES[" << I.b << "] = 1; ceu_arm(" << I.b
                    << ", ceu_logical + INT64_C(" << I.us << ")); return;\n";
                break;
            case IOp::AwaitDyn:
                os_ << "            GATES[" << I.b << "] = 1; ceu_arm(" << I.b
                    << ", ceu_logical + (" << expr(*I.e1) << ")); return;\n";
                break;
            case IOp::EmitInt: {
                // Fire currently-active gates of the internal event; stack
                // policy: push our continuation, then return to the scheduler.
                os_ << "            {\n                int64_t v = "
                    << (I.e1 ? expr(*I.e1) : std::string("0")) << ";\n"
                    << "                int fired = 0;\n";
                for (int g : fp_.int_gates[static_cast<size_t>(I.a)]) {
                    os_ << "                if (GATES[" << g
                        << "]) { fired = 1; }\n";
                }
                os_ << "                if (fired) {\n"
                    << "                    if (sn < CEU_SCAP) { ST[sn].resume = " << pc + 1
                    << "; ST[sn].prio = prio; ST[sn].dead = 0; sn++; }\n"
                    << "                    ceu_obs_emit(" << I.a << ", sn);\n";
                for (int g : fp_.int_gates[static_cast<size_t>(I.a)]) {
                    os_ << "                    if (GATES[" << g << "]) { ceu_obs_wake("
                        << g << "); ceu_wake(" << g << ", v); }\n";
                }
                os_ << "                    return;\n                }\n            }\n";
                break;
            }
            case IOp::ParSpawn: {
                const auto& par = fp_.pars[static_cast<size_t>(I.a)];
                if (par.counter_slot >= 0) {
                    os_ << "            " << slot_ref(par.counter_slot) << " = "
                        << par.branches.size() << ";\n";
                }
                os_ << "            " << slot_ref(par.sched_slot) << " = 0;\n";
                for (Pc b : par.branches) {
                    os_ << "            ceu_enqueue(" << b << ", CEU_NORMAL_PRIO, 0);\n";
                }
                os_ << "            return;\n";
                break;
            }
            case IOp::BranchEnd: {
                const auto& par = fp_.pars[static_cast<size_t>(I.a)];
                switch (par.kind) {
                    case ast::ParKind::Par:
                        os_ << "            return;\n";
                        break;
                    case ast::ParKind::ParAnd:
                        os_ << "            if (--" << slot_ref(par.counter_slot)
                            << " > 0) return;\n"
                            << "            if (" << slot_ref(par.sched_slot)
                            << ") return;\n"
                            << "            " << slot_ref(par.sched_slot) << " = 1;\n"
                            << "            ceu_enqueue(" << par.cont << ", " << par.prio
                            << ", 0); return;\n";
                        break;
                    case ast::ParKind::ParOr:
                        os_ << "            if (" << slot_ref(par.sched_slot)
                            << ") return;\n"
                            << "            " << slot_ref(par.sched_slot) << " = 1;\n"
                            << "            ceu_enqueue(" << par.cont << ", " << par.prio
                            << ", 0); return;\n";
                        break;
                }
                break;
            }
            case IOp::KillRegion: {
                const auto& r = fp_.regions[static_cast<size_t>(I.a)];
                os_ << "            ceu_kill(" << r.pc_begin << ", " << r.pc_end << ", "
                    << r.gate_begin << ", " << r.gate_end << ");\n";
                break;
            }
            case IOp::Escape: {
                const auto& esc = fp_.escapes[static_cast<size_t>(I.a)];
                os_ << "            if (" << slot_ref(esc.sched_slot) << ") return;\n"
                    << "            " << slot_ref(esc.sched_slot) << " = 1;\n";
                if (esc.result_slot >= 0) {
                    os_ << "            " << slot_ref(esc.result_slot) << " = "
                        << (I.e1 ? expr(*I.e1) : std::string("0")) << ";\n";
                }
                os_ << "            ceu_enqueue(" << esc.cont << ", " << esc.prio
                    << ", 0); return;\n";
                break;
            }
            case IOp::ClearSlot:
                os_ << "            DATA[" << I.b << "] = 0;\n";
                break;
            case IOp::Once:
                os_ << "            if (DATA[" << I.b << "]) return; DATA[" << I.b
                    << "] = 1;\n";
                break;
            case IOp::ProgReturn:
                os_ << "            ceu_result = "
                    << (I.e1 ? expr(*I.e1) : std::string("0")) << ";\n"
                    << "            ceu_status = 2; qn = 0; sn = 0; tn = 0;\n"
                    << "            memset(GATES, 0, sizeof GATES); return;\n";
                break;
            case IOp::AsyncRun: {
                const auto& ai = fp_.asyncs[static_cast<size_t>(I.a)];
                os_ << "            GATES[" << I.b << "] = 1;\n"
                    << "            if (an < CEU_ACAP) { AS[an].idx = " << I.a
                    << "; AS[an].pc = " << ai.begin << "; AS[an].alive = 1; an++; }\n"
                    << "            return;\n";
                break;
            }
            case IOp::EmitOutput:
                os_ << "            ceu_output_"
                    << cp_.sema.outputs[static_cast<size_t>(I.a)].name << "("
                    << (I.e1 ? expr(*I.e1) : std::string("0")) << ");\n";
                break;
            case IOp::AsyncYield:
            case IOp::AsyncEnd:
            case IOp::EmitExtAsync:
            case IOp::EmitTimeAsync:
                // Only reachable from the async dispatcher.
                os_ << "            return;\n";
                break;
            case IOp::Halt:
                os_ << "            return;\n";
                break;
        }
    }

    void track_dispatch() {
        os_ << "/* ---- track dispatch (paper 4.4: labels become cases) ---- */\n";
        if (re_) {
            os_ << "static void exec_track_fn(ceu_ctx_t* C, int pc, int prio, int64_t wake) {\n"
                << "    (void)C; (void)prio; (void)wake;\n";
        } else {
            os_ << "static void exec_track(int pc, int prio, int64_t wake) {\n"
                << "    (void)prio; (void)wake;\n";
        }
        os_ << "    for (;;) switch (pc) {\n";
        for (size_t pc = 0; pc < fp_.code.size(); ++pc) {
            emit_instr(static_cast<Pc>(pc), fp_.code[pc]);
        }
        os_ << "        default: return;\n    }\n}\n\n";
    }

    void async_dispatch() {
        os_ << "/* ---- asynchronous blocks (round robin; one slice per call) ---- */\n";
        if (re_) {
            os_ << "static void ceu_async_done_fn(ceu_ctx_t* C, int idx, int64_t v) {\n";
        } else {
            os_ << "static void ceu_async_done(int idx, int64_t v) {\n";
        }
        os_ << "    static const int ASYNC_GATE[] = {";
        for (size_t a = 0; a < fp_.asyncs.size(); ++a) {
            if (a) os_ << ", ";
            os_ << fp_.asyncs[a].gate;
        }
        if (fp_.asyncs.empty()) os_ << "-1";
        os_ << "};\n"
            << "    int g = ASYNC_GATE[idx];\n"
            << "    if (g >= 0 && GATES[g]) {\n"
            << "        ceu_obs_begin(3, idx, \"\", ceu_logical);\n"
            << "        ceu_obs_wake(g);\n"
            << "        ceu_wake(g, v); ceu_reaction();\n"
            << "    }\n"
            << "}\n";
        if (re_) {
            os_ << "static int exec_async_fn(ceu_ctx_t* C, ceu_async_t* a) {\n"
                << "    (void)C;\n";
        } else {
            os_ << "void ceu_go_event(int evt, int64_t val);\n"
                << "void ceu_go_time(int64_t now);\n"
                << "static int exec_async(ceu_async_t* a) {\n";
        }
        os_ << "    int pc = a->pc;\n"
            << "    for (;;) switch (pc) {\n";
        // Emit only the async regions' instructions with async semantics.
        std::vector<uint8_t> in_async(fp_.code.size(), 0);
        for (const auto& ai : fp_.asyncs) {
            const auto& r = fp_.regions[static_cast<size_t>(ai.region)];
            for (Pc p = ai.begin; p < r.pc_end; ++p) in_async[static_cast<size_t>(p)] = 1;
        }
        for (size_t pc = 0; pc < fp_.code.size(); ++pc) {
            if (!in_async[pc]) continue;
            const Instr& I = fp_.code[pc];
            os_ << "        case " << pc << ":\n";
            switch (I.op) {
                case IOp::Nop:
                    break;
                case IOp::ClearSlot:
                    os_ << "            DATA[" << I.b << "] = 0;\n";
                    break;
                case IOp::Eval:
                    os_ << "            " << stmt_expr(*I.e1) << ";\n";
                    break;
                case IOp::Assign:
                    os_ << "            " << lvalue(*I.e1) << " = " << expr(*I.e2)
                        << ";\n";
                    break;
                case IOp::IfNot:
                    os_ << "            if (!(" << expr(*I.e1) << ")) { pc = " << I.a
                        << "; continue; }\n";
                    break;
                case IOp::Jump:
                    os_ << "            pc = " << I.a << "; continue;\n";
                    break;
                case IOp::AsyncYield:
                    os_ << "            a->pc = " << pc + 1 << "; return 1;\n";
                    break;
                case IOp::EmitExtAsync:
                    os_ << "            { int64_t v = "
                        << (I.e1 ? expr(*I.e1) : std::string("0")) << "; a->pc = "
                        << pc + 1 << "; ceu_go_event(" << I.a << ", v); return 1; }\n";
                    break;
                case IOp::EmitTimeAsync:
                    os_ << "            a->pc = " << pc + 1
                        << "; ceu_go_time(ceu_now + INT64_C(" << I.us
                        << ")); return 1;\n";
                    break;
                case IOp::AsyncEnd:
                    os_ << "            a->alive = 0; ceu_async_done(" << I.a << ", "
                        << (I.e1 ? expr(*I.e1) : std::string("0")) << "); return 0;\n";
                    break;
                default:
                    os_ << "            return 0; /* unsupported in async */\n";
                    break;
            }
        }
        os_ << "        default: a->alive = 0; return 0;\n    }\n}\n\n";
    }

    void api() {
        os_ << "/* ---- the four-entry reactive API (paper 5) ---- */\n"
            << "static const char* CEU_INPUT_NAME[] = {";
        for (size_t e = 0; e < cp_.sema.inputs.size(); ++e) {
            if (e) os_ << ", ";
            os_ << "\"" << c_escape(cp_.sema.inputs[e].name) << "\"";
        }
        if (cp_.sema.inputs.empty()) os_ << "\"\"";
        os_ << "};\n";
        if (re_) {
            os_ << "static void ceu_api_init(ceu_ctx_t* C) {\n"
                << "    ceu_cur = C;\n";
        } else {
            os_ << "void ceu_go_init(void) {\n";
        }
        os_ << "    ceu_status = 1; ceu_logical = ceu_now;\n"
            << "    ceu_obs_begin(0, 0, \"\", ceu_logical);\n"
            << "    ceu_enqueue(0, CEU_NORMAL_PRIO, 0);\n"
            << "    ceu_reaction();\n}\n\n";
        if (re_) {
            os_ << "static void ceu_api_event(ceu_ctx_t* C, int evt, int64_t val) {\n"
                << "    ceu_cur = C;\n";
        } else {
            os_ << "void ceu_go_event(int evt, int64_t val) {\n";
        }
        os_ << "    if (ceu_status != 1) return;\n"
            << "    ceu_logical = ceu_now;\n"
            << "    if (evt >= 0 && evt < " << fp_.ext_gates.size() << ")\n"
            << "        ceu_obs_begin(1, evt, CEU_INPUT_NAME[evt], ceu_logical);\n"
            << "    {\n        int fired[CEU_GATES_N]; int nf = 0, i;\n";
        os_ << "        switch (evt) {\n";
        for (size_t e = 0; e < fp_.ext_gates.size(); ++e) {
            os_ << "        case " << e << ":\n";
            for (int g : fp_.ext_gates[e]) {
                os_ << "            if (GATES[" << g << "]) fired[nf++] = " << g << ";\n";
            }
            os_ << "            break;\n";
        }
        os_ << "        default: break;\n        }\n"
            << "        for (i = 0; i < nf; i++) { ceu_obs_wake(fired[i]); "
               "ceu_wake(fired[i], val); }\n"
            << "    }\n    ceu_reaction();\n}\n\n";
        if (re_) {
            os_ << "static void ceu_api_time(ceu_ctx_t* C, int64_t now) {\n"
                << "    ceu_cur = C;\n";
        } else {
            os_ << "void ceu_go_time(int64_t now) {\n";
        }
        os_ << R"(    if (ceu_status != 1) return;
    if (now > ceu_now) ceu_now = now;
    for (;;) {
        int64_t min = 0; int any = 0, i;
        for (i = 0; i < tn; i++) if (!any || TM[i].deadline < min) { min = TM[i].deadline; any = 1; }
        if (!any || min > ceu_now) break;
        ceu_logical = min;
        {
            int fired[CEU_TCAP]; int nf = 0;
            for (i = 0; i < tn;) {
                if (TM[i].deadline == min) { fired[nf++] = TM[i].gate; TM[i] = TM[--tn]; }
                else i++;
            }
            /* wake in gate (program) order */
            for (i = 0; i < nf; i++) {
                int j, best = i;
                for (j = i + 1; j < nf; j++) if (fired[j] < fired[best]) best = j;
                j = fired[i]; fired[i] = fired[best]; fired[best] = j;
            }
            ceu_obs_begin(2, nf, "", ceu_logical);
            for (i = 0; i < nf; i++) if (GATES[fired[i]]) {
                ceu_obs_timer(fired[i], ceu_now - min);
                ceu_obs_wake(fired[i]);
                ceu_wake(fired[i], ceu_now - min);
            }
        }
        ceu_reaction();
        if (ceu_status != 1) break;
    }
}

)";
        if (re_) {
            os_ << "static int ceu_api_async(ceu_ctx_t* C) {\n"
                << "    ceu_cur = C;\n";
        } else {
            os_ << "int ceu_go_async(void) {\n";
        }
        os_ << R"(    int k;
    if (ceu_status != 1) return 0;
    for (k = 0; k < an; k++) {
        int i = (arr + k) % (an ? an : 1);
        if (AS[i].alive) {
            arr = i + 1;
            exec_async(&AS[i]);
            goto done;
        }
    }
    return 0;
done:
    for (k = 0; k < an; k++) if (AS[k].alive) return ceu_status == 1;
    return 0;
}
)";
        if (!re_) {
            os_ << "\nint ceu_status_get(void) { return ceu_status; }\n"
                << "int64_t ceu_result_get(void) { return ceu_result; }\n";
        }
    }

    /// After the shared scheduler text: drop the redirection macros, emit the
    /// exported descriptor, and (with_main) the deprecated process-global
    /// wrappers the scripted harness drives.
    void reentrant_epilogue() {
        os_ << "/* ---- end of context-redirected text ---- */\n"
               "#undef DATA\n#undef GATES\n#undef Q\n#undef qn\n#undef TM\n#undef tn\n"
               "#undef ST\n#undef sn\n#undef AS\n#undef an\n#undef arr\n#undef ceu_seq\n"
               "#undef ceu_now\n#undef ceu_logical\n#undef ceu_status\n#undef ceu_result\n"
               "#undef ceu_enqueue\n#undef ceu_pop\n#undef ceu_wake\n#undef ceu_arm\n"
               "#undef ceu_reaction\n#undef ceu_kill\n#undef exec_track\n"
               "#undef ceu_async_done\n#undef exec_async\n#undef ceu_go_event\n"
               "#undef ceu_go_time\n#undef ceu_obs_begin\n#undef ceu_obs_wake\n"
               "#undef ceu_obs_emit\n#undef ceu_obs_timer\n#undef ceu_obs_end\n"
               "#undef printf\n";
        for (const auto& o : cp_.sema.outputs) {
            os_ << "#undef ceu_output_" << o.name << "\n";
        }
        os_ << R"(
/* ---- exported AOT descriptor (the TU's only non-static symbol) ---- */
static void* ceu_aot_create(const ceu_host_api_t* host) {
    ceu_ctx_t* C = (ceu_ctx_t*)calloc(1, sizeof(ceu_ctx_t));
    if (C) C->host = host;
    return C;
}
static void ceu_aot_destroy(void* vc) {
    if (ceu_cur == (ceu_ctx_t*)vc) ceu_cur = 0;
    free(vc);
}
static void ceu_aot_reset(void* vc) {
    /* Engine::reset parity: drop all dynamic state, keep the clock and the
     * cumulative reaction count. */
    ceu_ctx_t* C = (ceu_ctx_t*)vc;
    const ceu_host_api_t* h = C->host;
    int64_t now = C->ceu_now;
    unsigned long long r = C->ceu_reactions;
    memset(C, 0, sizeof *C);
    C->host = h; C->ceu_now = now; C->ceu_reactions = r;
}
static void ceu_aot_set_boot_clock(void* vc, int64_t us) {
    ceu_ctx_t* C = (ceu_ctx_t*)vc;
    if (C->ceu_status == 0 && us > C->ceu_now) C->ceu_now = us;
}
static void ceu_aot_go_init(void* vc) { ceu_api_init((ceu_ctx_t*)vc); }
static void ceu_aot_go_event(void* vc, int32_t evt, int64_t val) { ceu_api_event((ceu_ctx_t*)vc, (int)evt, val); }
static void ceu_aot_go_time(void* vc, int64_t now) { ceu_api_time((ceu_ctx_t*)vc, now); }
static int32_t ceu_aot_go_async(void* vc) { return (int32_t)ceu_api_async((ceu_ctx_t*)vc); }
static int32_t ceu_aot_go_async_n(void* vc, int64_t n) {
    /* One ABI crossing for a whole per-round slice budget. */
    ceu_ctx_t* C = (ceu_ctx_t*)vc;
    int32_t more = 0;
    while (n-- > 0) {
        more = (int32_t)ceu_api_async(C);
        if (!more) break;
    }
    return more;
}
static int32_t ceu_aot_status(void* vc) { return (int32_t)((ceu_ctx_t*)vc)->ceu_status; }
static int64_t ceu_aot_result(void* vc) { return ((ceu_ctx_t*)vc)->ceu_result; }
static int64_t ceu_aot_now(void* vc) { return ((ceu_ctx_t*)vc)->ceu_now; }
static int64_t ceu_aot_next_deadline(void* vc) {
    ceu_ctx_t* C = (ceu_ctx_t*)vc;
    int64_t best = -1; int i;
    for (i = 0; i < C->tn; i++)
        if (best < 0 || C->TM[i].deadline < best) best = C->TM[i].deadline;
    return best;
}
static int32_t ceu_aot_has_async(void* vc) {
    ceu_ctx_t* C = (ceu_ctx_t*)vc; int i;
    for (i = 0; i < C->an; i++) if (C->AS[i].alive) return 1;
    return 0;
}
static uint64_t ceu_aot_reactions(void* vc) { return (uint64_t)((ceu_ctx_t*)vc)->ceu_reactions; }
static int32_t ceu_aot_resolve_input(const char* name) {
    int i;
    for (i = 0; i < (int)(sizeof CEU_INPUT_NAME / sizeof CEU_INPUT_NAME[0]); i++)
        if (!strcmp(name, CEU_INPUT_NAME[i])) return i;
    return -1;
}
static void ceu_aot_snapshot(void* vc, void* buf) { memcpy(buf, vc, sizeof(ceu_ctx_t)); }
static int32_t ceu_aot_restore(void* vc, const void* buf, size_t len) {
    ceu_ctx_t* C = (ceu_ctx_t*)vc;
    const ceu_host_api_t* h = C->host;
    if (len != sizeof(ceu_ctx_t)) return 0;
    memcpy(C, buf, sizeof(ceu_ctx_t));
    C->host = h;
    return 1;
}
)";
        os_ << "const ceu_aot_program_t " << opt_.aot_symbol << " = {\n"
            << "    " << kAotAbiVersion << "u,\n"
            << "    UINT64_C(" << rt::program_fingerprint(cp_) << "),\n"
            << "    \"" << c_escape(opt_.program_name) << "\",\n"
            << "    sizeof(ceu_ctx_t),\n"
            << "    ceu_aot_create, ceu_aot_destroy, ceu_aot_reset, ceu_aot_set_boot_clock,\n"
            << "    ceu_aot_go_init, ceu_aot_go_event, ceu_aot_go_time, ceu_aot_go_async,\n"
            << "    ceu_aot_go_async_n,\n"
            << "    ceu_aot_status, ceu_aot_result, ceu_aot_now, ceu_aot_next_deadline,\n"
            << "    ceu_aot_has_async, ceu_aot_reactions, ceu_aot_resolve_input,\n"
            << "    ceu_aot_snapshot, ceu_aot_restore,\n"
            << "};\n";
        if (opt_.with_main) {
            os_ << R"(
/* ---- deprecated process-global entry points ----
 * One implicit instance per process, kept so existing embedders and the
 * scripted harness keep linking. New code should bind the exported
 * ceu_aot_program_t descriptor and create explicit contexts. */
static ceu_ctx_t ceu_single;
void ceu_go_init(void) { ceu_single.host = &ceu_default_host; ceu_api_init(&ceu_single); }
void ceu_go_event(int evt, int64_t val) { ceu_single.host = &ceu_default_host; ceu_api_event(&ceu_single, evt, val); }
void ceu_go_time(int64_t now) { ceu_single.host = &ceu_default_host; ceu_api_time(&ceu_single, now); }
int ceu_go_async(void) { ceu_single.host = &ceu_default_host; return ceu_api_async(&ceu_single); }
int ceu_status_get(void) { return ceu_single.ceu_status; }
int64_t ceu_result_get(void) { return ceu_single.ceu_result; }
)";
        }
    }

    void main_harness() {
        os_ << "\n/* ---- scripted-input harness (integration tests) ---- */\n"
            << "int main(void) {\n"
            << "    char op; char name[128]; long long v;\n"
            << "    { const char* tp = getenv(\"CEU_TRACE\"); "
               "if (tp && *tp) ceu_obs_open(tp); }\n"
            << "    ceu_go_init();\n"
            << "    while (scanf(\" %c\", &op) == 1) {\n"
            << "        if (op == 'E') {\n"
            << "            if (scanf(\"%127s %lld\", name, &v) != 2) break;\n";
        for (size_t e = 0; e < cp_.sema.inputs.size(); ++e) {
            os_ << "            if (!strcmp(name, \"" << cp_.sema.inputs[e].name
                << "\")) ceu_go_event(" << e << ", v);\n";
        }
        os_ << "        } else if (op == 'T') {\n"
            << "            if (scanf(\"%lld\", &v) != 1) break;\n"
            << "            ceu_go_time(" << (re_ ? "ceu_single.ceu_now" : "ceu_now")
            << " + v);\n"
            << "        } else if (op == 'A') {\n"
            << "            while (ceu_go_async()) {}\n"
            << "        } else if (op == 'Q') break;\n"
            << "        if (ceu_status_get() != 1) break;\n"
            << "    }\n"
            << "    while (ceu_status_get() == 1 && ceu_go_async()) {}\n"
            << "    ceu_obs_close();\n"
            << "    fflush(stdout);\n"
            << "    return (int)ceu_result_get();\n"
            << "}\n";
    }
};

}  // namespace

std::string emit_c(const flat::CompiledProgram& cp, const CgenOptions& opt) {
    return Emitter(cp, opt).run();
}

}  // namespace ceu::cgen
