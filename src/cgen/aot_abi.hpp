// The C ABI between cgen's re-entrant translation units and the in-process
// AOT loader (src/aot/). A re-entrant TU keeps every mutable word of
// program state in one POD `ceu_ctx_t` allocated per instance and exports
// exactly one symbol: a `ceu_aot_program_t` descriptor of entry points.
// The host talks to a context through the descriptor; the context talks
// back (trace lines, obs spans, output events) through the `ceu_host_api_t`
// vtable it was created with.
//
// The two representations below — the C++ struct declarations and the C
// source text cgen splices into every re-entrant TU — MUST stay field-for-
// field identical. `kAotAbiVersion` is bumped on any layout change and
// checked at dlopen time, so a stale .so fails loudly instead of calling
// through a skewed vtable.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" {

/// Host-side callbacks a compiled instance calls back into. `user` is the
/// owning host object (ceu::host::Instance in-tree). Null callbacks are
/// skipped — an instance with a null `trace_line` simply drops its trace.
typedef struct ceu_host_api {
    void* user;
    void (*trace_line)(void* user, const char* line, int32_t len);
    void (*obs_begin)(void* user, int32_t kind, int32_t id, const char* name,
                      int64_t ts);
    void (*obs_wake)(void* user, int32_t gate);
    void (*obs_emit)(void* user, int32_t event_id, int32_t depth);
    void (*obs_timer)(void* user, int32_t gate, int64_t residual);
    void (*obs_end)(void* user, int32_t status, int64_t result);
    void (*output)(void* user, int32_t output_id, const char* name, int64_t value);
} ceu_host_api_t;

/// One compiled program: fingerprint + context lifecycle + the paper's
/// four-entry reactive API, instance-context edition. Exported from each
/// TU as `ceu_aot_prog_<index>`; everything else in the TU is static.
typedef struct ceu_aot_program {
    uint32_t abi_version;   /* == kAotAbiVersion of the emitting build */
    uint64_t fingerprint;   /* rt::program_fingerprint of the flat program */
    const char* name;
    size_t ctx_size;        /* sizeof(ceu_ctx_t): also the snapshot size */
    void* (*create)(const ceu_host_api_t* host);
    void (*destroy)(void* ctx);
    void (*reset)(void* ctx);
    void (*set_boot_clock)(void* ctx, int64_t us);
    void (*go_init)(void* ctx);
    void (*go_event)(void* ctx, int32_t evt, int64_t val);
    void (*go_time)(void* ctx, int64_t now);
    int32_t (*go_async)(void* ctx);
    /* Run up to `n` async slices in one call (stops early when the program
     * leaves Running or the async queue drains). Semantically identical to
     * n consecutive go_async calls; exists so a reactor granting a per-round
     * slice budget pays one ABI crossing per round, not one per slice. */
    int32_t (*go_async_n)(void* ctx, int64_t n);
    int32_t (*status)(void* ctx);      /* 0 loaded, 1 running, 2 done, 3 faulted */
    int64_t (*result)(void* ctx);
    int64_t (*now)(void* ctx);
    int64_t (*next_deadline)(void* ctx); /* -1 when no timer armed */
    int32_t (*has_async)(void* ctx);
    uint64_t (*reactions)(void* ctx);
    int32_t (*resolve_input)(const char* name); /* dense id or -1 */
    void (*snapshot)(void* ctx, void* buf);     /* buf holds ctx_size bytes */
    int32_t (*restore)(void* ctx, const void* buf, size_t len);
} ceu_aot_program_t;

}  // extern "C"

namespace ceu::cgen {

inline constexpr uint32_t kAotAbiVersion = 1;

/// Prefix of every exported descriptor symbol; the per-TU index is appended
/// by the fleet builder (`ceu_aot_prog_0`, `ceu_aot_prog_1`, ...).
inline constexpr const char* kAotSymbolPrefix = "ceu_aot_prog_";

/// The same two typedefs as C source text (spliced verbatim into every
/// re-entrant TU so the emitted C stays a self-contained single file).
inline constexpr const char* kAotAbiC = R"(/* ---- AOT ABI (keep in sync with src/cgen/aot_abi.hpp, version 1) ---- */
typedef struct ceu_host_api {
    void* user;
    void (*trace_line)(void* user, const char* line, int32_t len);
    void (*obs_begin)(void* user, int32_t kind, int32_t id, const char* name, int64_t ts);
    void (*obs_wake)(void* user, int32_t gate);
    void (*obs_emit)(void* user, int32_t event_id, int32_t depth);
    void (*obs_timer)(void* user, int32_t gate, int64_t residual);
    void (*obs_end)(void* user, int32_t status, int64_t result);
    void (*output)(void* user, int32_t output_id, const char* name, int64_t value);
} ceu_host_api_t;
typedef struct ceu_aot_program {
    uint32_t abi_version;
    uint64_t fingerprint;
    const char* name;
    size_t ctx_size;
    void* (*create)(const ceu_host_api_t* host);
    void (*destroy)(void* ctx);
    void (*reset)(void* ctx);
    void (*set_boot_clock)(void* ctx, int64_t us);
    void (*go_init)(void* ctx);
    void (*go_event)(void* ctx, int32_t evt, int64_t val);
    void (*go_time)(void* ctx, int64_t now);
    int32_t (*go_async)(void* ctx);
    int32_t (*go_async_n)(void* ctx, int64_t n);
    int32_t (*status)(void* ctx);
    int64_t (*result)(void* ctx);
    int64_t (*now)(void* ctx);
    int64_t (*next_deadline)(void* ctx);
    int32_t (*has_async)(void* ctx);
    uint64_t (*reactions)(void* ctx);
    int32_t (*resolve_input)(const char* name);
    void (*snapshot)(void* ctx, void* buf);
    int32_t (*restore)(void* ctx, const void* buf, size_t len);
} ceu_aot_program_t;
)";

}  // namespace ceu::cgen
