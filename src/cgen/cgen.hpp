// C code generation (paper §4.4): emits a single-threaded, self-contained C
// translation of a compiled Céu program. The structure matches the paper:
// track labels become switch cases inside a dispatch loop, gates hold
// continuations, all data lives in a statically-sized vector, and trail
// destruction is a memset over a gate range. The file exposes the paper's
// four-entry API (ceu_go_init / ceu_go_event / ceu_go_time / ceu_go_async)
// and can optionally include a scripted-input main() used by integration
// tests (which diff the C binary's output against the interpreter's trace)
// and by the Table-1 ROM measurements.
#pragma once

#include <string>

#include "codegen/flatten.hpp"

namespace ceu::cgen {

struct CgenOptions {
    /// Emit a `main()` that reads a script from stdin:
    ///   E <event> <value>   deliver an input event
    ///   T <microseconds>    advance wall-clock time
    ///   A                   run asyncs until idle
    /// and prints `_printf` output to stdout.
    bool with_main = true;
    /// Include <stdio.h>/<assert.h> and map `_printf`/`_assert` to libc.
    bool with_libc = true;
    std::string program_name = "ceu_program";
};

/// Renders the complete C translation unit.
std::string emit_c(const flat::CompiledProgram& cp, const CgenOptions& opt = {});

}  // namespace ceu::cgen
