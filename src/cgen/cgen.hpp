// C code generation (paper §4.4): emits a single-threaded, self-contained C
// translation of a compiled Céu program. The structure matches the paper:
// track labels become switch cases inside a dispatch loop, gates hold
// continuations, all data lives in a statically-sized vector, and trail
// destruction is a memset over a gate range. The file exposes the paper's
// four-entry API (ceu_go_init / ceu_go_event / ceu_go_time / ceu_go_async)
// and can optionally include a scripted-input main() used by integration
// tests (which diff the C binary's output against the interpreter's trace)
// and by the Table-1 ROM measurements.
#pragma once

#include <string>

#include "codegen/flatten.hpp"

namespace ceu::cgen {

struct CgenOptions {
    /// Emit a `main()` that reads a script from stdin:
    ///   E <event> <value>   deliver an input event
    ///   T <microseconds>    advance wall-clock time
    ///   A                   run asyncs until idle
    /// and prints `_printf` output to stdout.
    bool with_main = true;
    /// Include <stdio.h>/<assert.h> and map `_printf`/`_assert` to libc.
    bool with_libc = true;
    /// Emit the re-entrant instance-context variant: all mutable state lives
    /// in a per-instance `ceu_ctx_t`, `_printf`/output/obs traffic routes
    /// through a `ceu_host_api_t` vtable, and the TU exports a single
    /// `ceu_aot_program_t` descriptor named `aot_symbol` (see aot_abi.hpp).
    /// With `with_main` the deprecated process-global entry points
    /// (`ceu_go_init` & co over one implicit instance) and the scripted
    /// harness are still emitted on top, so golden-trace tests can drive
    /// either entry point; without it the descriptor is the only exported
    /// symbol, which is what lets many programs share one shared object.
    /// Requires `with_libc`.
    bool reentrant = false;
    /// Exported descriptor symbol in reentrant mode.
    std::string aot_symbol = "ceu_aot_prog_0";
    std::string program_name = "ceu_program";
};

/// Renders the complete C translation unit.
std::string emit_c(const flat::CompiledProgram& cp, const CgenOptions& opt = {});

}  // namespace ceu::cgen
