// Lock-free MPSC mailbox for batched external-event injection.
//
// Producers (any thread) push envelopes with a single CAS loop; the owning
// shard worker grabs the whole batch with one exchange at the start of a
// scheduling round. Because the reactor sorts each drained batch by its
// global injection ticket before delivery, the grab order (LIFO) is
// irrelevant — a Treiber-style push list is sufficient and avoids the
// stub-node bookkeeping of linked MPSC FIFO queues.
//
// Memory: envelopes are heap nodes owned by the queue between push() and
// drain_into(); the drainer frees them after delivery. Producers never
// free, consumers never push, so there is no ABA window (the consumer
// takes the entire list at once and never re-links nodes).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/value.hpp"
#include "sema/sema.hpp"

namespace ceu::reactor {

/// Fleet-wide dense instance id (index into the reactor's instance table).
using InstanceId = uint32_t;

/// One external-event occurrence in flight from a producer thread to the
/// instance's shard. `ticket` is the global injection ordinal: draining
/// sorts by it, so delivery order per instance equals inject-call order
/// regardless of worker count or grab timing.
struct Envelope {
    InstanceId instance = 0;
    EventId event = kNoEvent;
    rt::Value value = rt::Value::integer(0);
    uint64_t ticket = 0;
    Envelope* next = nullptr;
};

class Mailbox {
  public:
    Mailbox() = default;
    Mailbox(const Mailbox&) = delete;
    Mailbox& operator=(const Mailbox&) = delete;
    ~Mailbox() {
        Envelope* e = head_.load(std::memory_order_relaxed);
        while (e != nullptr) {
            Envelope* n = e->next;
            delete e;
            e = n;
        }
    }

    /// Lock-free push from any thread. Takes ownership of `e`.
    void push(Envelope* e) {
        Envelope* old = head_.load(std::memory_order_relaxed);
        do {
            e->next = old;
        } while (!head_.compare_exchange_weak(old, e, std::memory_order_release,
                                              std::memory_order_relaxed));
    }

    /// Consumer side: atomically takes every queued envelope, appends them
    /// to `out` sorted by ascending ticket, and returns how many arrived.
    /// Ownership of the envelopes transfers to the caller.
    size_t drain_into(std::vector<Envelope*>& out) {
        Envelope* e = head_.exchange(nullptr, std::memory_order_acquire);
        size_t start = out.size();
        while (e != nullptr) {
            out.push_back(e);
            e = e->next;
        }
        // The push list is LIFO; tickets restore global injection order.
        std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
                  [](const Envelope* a, const Envelope* b) { return a->ticket < b->ticket; });
        return out.size() - start;
    }

    [[nodiscard]] bool empty() const {
        return head_.load(std::memory_order_acquire) == nullptr;
    }

  private:
    // Producers from every thread CAS this head; keep it off whatever the
    // embedding object packs around the mailbox (in the reactor: the
    // shard's scheduler state, read every round by the owner).
    alignas(64) std::atomic<Envelope*> head_{nullptr};
};

}  // namespace ceu::reactor
