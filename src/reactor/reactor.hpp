// ceu::reactor::Reactor — a sharded multi-instance scheduler: one process
// runs a fleet of host::Instances (100k is the design point) on a small
// worker pool, deterministically.
//
// Sharding. Instances are dealt round-robin to `workers` shards (shard =
// id % workers). Each shard owns its members exclusively: a per-shard run
// queue (the drained mailbox batch), a per-shard FleetTimerWheel indexing
// its members' earliest deadlines, and a per-shard async-live list. Workers
// never touch another shard's instances, so rounds need no locking beyond
// the start/finish barrier.
//
// Rounds. All scheduling happens in discrete *rounds* (run_round), each of
// which runs the same three phases on every shard:
//   1. events  — drain the shard mailbox (one atomic exchange), sort by
//                global injection ticket, and deliver each envelope after
//                lazily syncing the target's clock to the fleet instant
//                (due timers fire first, as they would have in real time);
//   2. timers  — collect due candidates from the fleet wheel, sorted by
//                (deadline, instance); stale candidates (the engine re- or
//                dis-armed since indexing) are dropped by re-checking the
//                engine's actual next deadline;
//   3. asyncs  — give every async-live member a bounded number of slices,
//                in the shard's seeded schedule order.
//
// Determinism. Per-instance traces are a pure function of that instance's
// input sequence (instances are independent; the engine is sequential).
// The reactor preserves each instance's injection order exactly — tickets
// are a global atomic sequence and every drained batch is replayed in
// ticket order — and delivers timer/async work at fleet instants that do
// not depend on shard layout. Hence per-instance traces and the aggregated
// fleet stats (ProcessStats::merge is commutative) are byte-identical at
// any worker count; the determinism suite asserts this at 1/2/8 workers.
// The seeded shuffle fixes the intra-round visit order *per seed*, so a
// given (seed, fleet, inputs) triple replays identically run-to-run too.
//
// Threading contract. Once the fleet is built, inject() is safe from any
// thread, including mid-round (lock-free mailbox push; it otherwise only
// reads the instance table and each target's immutable compiled program).
// It must NOT overlap add_instance(), which grows that table: start
// injector threads after the last add_instance, or quiesce them around
// construction. Everything else — add_instance, boot, advance, run_round,
// drain, instance(), fleet_stats — must be called from the one control
// thread, between rounds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "host/instance.hpp"
#include "reactor/fleet_wheel.hpp"
#include "reactor/mailbox.hpp"

namespace ceu::reactor {

struct ReactorConfig {
    /// Worker threads (== shards). 1 runs every round inline on the
    /// control thread — no pool, no synchronization, the baseline the
    /// determinism suite compares against.
    size_t workers = 1;
    /// Seeds the per-shard round schedule (the order members are visited
    /// for boot and async slices). Same seed => same schedule, always.
    uint64_t seed = 0;
    /// Level-0 tick width of the per-shard fleet timer wheels.
    Micros timer_granularity = 1024;
    /// Forwarded to every instance's host::Config. Fleets default traces
    /// off (100k instances of trace text is not a thing you want).
    bool collect_traces = false;
    /// Arm every instance's stats recorder so fleet_stats() covers the
    /// whole run.
    bool observe_stats = true;
    /// Async slices granted per async-live instance per round.
    uint64_t async_slices_per_round = 32;
    /// Engine options for instances added without an explicit host config.
    /// trap_faults defaults on: a fleet must contain a member's dynamic
    /// error (the engine parks Faulted), not unwind a worker thread.
    rt::EngineOptions engine = [] {
        rt::EngineOptions o;
        o.trap_faults = true;
        return o;
    }();
};

class Reactor {
  public:
    explicit Reactor(ReactorConfig cfg = ReactorConfig());
    ~Reactor();
    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    // -- fleet construction (control thread, before/between rounds) ----------

    /// Adds one instance of the shared program; returns its fleet id.
    /// The compiled program is co-owned, never copied: fleet memory scales
    /// with per-instance *state*, not code.
    InstanceId add_instance(std::shared_ptr<const flat::CompiledProgram> cp);
    /// Same, with an explicit per-instance host config (extra bindings,
    /// engine knobs). cfg.collect_trace is still forced by the reactor's
    /// collect_traces switch so trace policy stays fleet-uniform.
    InstanceId add_instance(std::shared_ptr<const flat::CompiledProgram> cp,
                            host::Config hcfg);

    /// Boots every not-yet-booted instance (shard-parallel, seeded order).
    /// Callable again after adding more instances: only new ones boot.
    void boot();

    // -- inputs (inject: any thread; advance: control thread) ----------------

    /// Queues one occurrence of input `event` for `id`. Lock-free; safe
    /// from any thread, including mid-round, but not concurrently with
    /// add_instance (see the threading contract above). Delivery happens
    /// in the next round, in global injection-ticket order. Returns the
    /// ticket.
    uint64_t inject(InstanceId id, EventId event,
                    rt::Value v = rt::Value::integer(0));
    /// Name-resolving variant (resolves against the instance's program —
    /// O(1) interned lookup). Returns false if `event` is not an input.
    bool inject(InstanceId id, const std::string& event,
                rt::Value v = rt::Value::integer(0));

    /// Advances the fleet clock by `delta` and runs one round (so due
    /// timers fire fleet-wide).
    void advance(Micros delta);

    /// Runs one scheduling round at the current fleet instant.
    void run_round();

    /// Rounds until quiescent: mailboxes empty, no timer due at the
    /// current instant, no async work. Returns rounds run. `max_rounds`
    /// bounds runaway async programs.
    size_t drain(size_t max_rounds = 1'000'000);

    // -- introspection (control thread) --------------------------------------

    [[nodiscard]] host::Instance& instance(InstanceId id);
    [[nodiscard]] const host::Instance& instance(InstanceId id) const;
    [[nodiscard]] size_t size() const { return slots_.size(); }
    [[nodiscard]] size_t workers() const { return shards_.size(); }
    [[nodiscard]] Micros now() const { return now_; }

    /// Fleet-level counters: every instance's snapshot merged in id order.
    /// Deterministic (after ProcessStats::clear_measured) for a given
    /// (seed, fleet, inputs), independent of worker count.
    [[nodiscard]] obs::ProcessStats fleet_stats() const;

    /// Last escaped error for `id` (empty if none). Only reachable when an
    /// instance runs with trap_faults off and a dynamic error unwinds a
    /// delivery — the reactor catches it at the shard boundary (a fleet
    /// member's fault must never take down a worker thread), records it
    /// here, and carries on with the rest of the shard.
    [[nodiscard]] const std::string& error(InstanceId id) const;

  private:
    struct Slot {
        std::unique_ptr<host::Instance> inst;
        Micros indexed_deadline = -1;  // deadline currently in the wheel
        bool async_listed = false;     // member of its shard's async_live
        bool booted = false;
        std::string error;             // first escaped rt::RuntimeError
    };

    struct Shard {
        Mailbox mailbox;
        FleetTimerWheel wheel{1024};
        std::vector<InstanceId> members;
        std::vector<InstanceId> schedule;     // seeded visit order
        bool schedule_dirty = false;
        std::vector<Envelope*> drained;       // round scratch
        std::vector<FleetTimerWheel::Due> due;
        std::vector<InstanceId> async_live;
        std::vector<InstanceId> async_scratch;
        bool work_left = false;               // set by the last round
    };

    enum class Cmd : uint8_t { Round, Boot, Exit };

    InstanceId add_slot(std::shared_ptr<const flat::CompiledProgram> cp,
                        host::Config hcfg);
    void dispatch(Cmd cmd);
    void worker_main(size_t shard_idx);
    void boot_shard(Shard& sh);
    void run_shard_round(Shard& sh);
    void refresh_schedule(Shard& sh, size_t shard_idx);
    /// Brings `id` to the fleet instant (due timers fire) — the lazy
    /// clock sync in front of every delivery.
    void sync_clock(Slot& sl);
    /// Post-reaction bookkeeping: re-index the engine's next deadline in
    /// the shard wheel, (re-)list the instance for async slices.
    void after_reaction(InstanceId id, Slot& sl, Shard& sh);

    ReactorConfig cfg_;
    std::vector<Slot> slots_;
    std::vector<Shard> shards_;
    Micros now_ = 0;
    std::atomic<uint64_t> ticket_{0};

    // Worker pool (empty when workers == 1): generation-counter barrier.
    std::vector<std::thread> threads_;
    std::mutex pool_mu_;
    std::condition_variable pool_cv_;   // control -> workers: new generation
    std::condition_variable done_cv_;   // workers -> control: all finished
    uint64_t generation_ = 0;
    Cmd cmd_ = Cmd::Round;
    size_t done_count_ = 0;
};

}  // namespace ceu::reactor
