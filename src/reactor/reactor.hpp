// ceu::reactor::Reactor — a sharded multi-instance scheduler: one process
// runs a fleet of host::Instances (100k is the design point) on a small
// worker pool, deterministically, and keeps the fleet alive: faulted
// members are restarted under per-instance supervision policies instead of
// parking forever.
//
// Sharding. Instances are dealt round-robin to `workers` shards (shard =
// id % workers). Each shard owns its members exclusively: a per-shard run
// queue (the drained mailbox batch), a per-shard FleetTimerWheel indexing
// its members' earliest deadlines, a per-shard async-live list, and a
// per-shard restart agenda. Workers never touch another shard's instances,
// so rounds need no locking beyond the start/finish barrier.
//
// Rounds. All scheduling happens in discrete *rounds* (run_round), each of
// which runs the same four phases on every shard:
//   0. restarts — supervised restarts whose backoff expired by the fleet
//                instant execute, sorted by (due, instance): restore the
//                latest checkpoint or reboot from scratch per the member's
//                SupervisorPolicy;
//   1. events  — drain the shard mailbox (one atomic exchange), sort by
//                global injection ticket, and deliver each envelope after
//                lazily syncing the target's clock to the fleet instant
//                (due timers fire first, as they would have in real time);
//   2. timers  — collect due candidates from the fleet wheel, sorted by
//                (deadline, instance); stale candidates (the engine re- or
//                dis-armed since indexing) are dropped by re-checking the
//                engine's actual next deadline;
//   3. asyncs  — give every async-live member a bounded number of slices,
//                in the shard's seeded schedule order.
//
// Determinism. Per-instance traces are a pure function of that instance's
// input sequence (instances are independent; the engine is sequential).
// The reactor preserves each instance's injection order exactly — tickets
// are a global atomic sequence and every drained batch is replayed in
// ticket order — and delivers timer/async/restart work at fleet instants
// that do not depend on shard layout. Supervision decisions (backoff,
// jitter, quarantine) hash (seed, id, fault ordinal), never thread timing.
// Hence per-instance traces and the aggregated fleet stats
// (ProcessStats::merge is commutative) are byte-identical at any worker
// count; the determinism suites assert this at 1/2/8 workers. The seeded
// shuffle fixes the intra-round visit order *per seed*, so a given
// (seed, fleet, inputs) triple replays identically run-to-run too.
//
// Backpressure. ReactorConfig::inbox_capacity bounds each instance's
// in-flight envelope count. An inject() over the cap is *shed*: the
// envelope is dropped deterministically at the producer (never silently
// queued), the verdict and consumed ticket are returned in InjectResult,
// and the shed is counted in fleet_stats(). 0 = unbounded (historical
// behavior).
//
// Threading contract. inject() is safe from any thread, including
// mid-round, and — new in the supervision PR — concurrently with
// add_instance()/retire(): the instance table is a chunked, pointer-stable
// structure whose size is published with release/acquire ordering, so a
// concurrent injector either sees a fully constructed slot or an
// out-of-range id. add_instance/retire themselves, and everything else —
// boot, advance, run_round, drain, instance(), set_policy, fleet_stats —
// must still be called from the one control thread, between rounds.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "host/instance.hpp"
#include "reactor/arena.hpp"
#include "reactor/fleet_wheel.hpp"
#include "reactor/mailbox.hpp"
#include "reactor/steal.hpp"
#include "reactor/supervise.hpp"
#include "reactor/verdict.hpp"

namespace ceu::reactor {

struct ReactorConfig {
    /// Worker threads (== shards). 1 runs every round inline on the
    /// control thread — no pool, no synchronization, the baseline the
    /// determinism suite compares against.
    size_t workers = 1;
    /// Seeds the per-shard round schedule (the order members are visited
    /// for boot and async slices) and the supervision backoff jitter.
    /// Same seed => same schedule and same restart instants, always.
    uint64_t seed = 0;
    /// Level-0 tick width of the per-shard fleet timer wheels; also the
    /// unit supervision backoff is measured in.
    Micros timer_granularity = 1024;
    /// Forwarded to every instance's host::Config. Fleets default traces
    /// off (100k instances of trace text is not a thing you want).
    bool collect_traces = false;
    /// Arm every instance's stats recorder so fleet_stats() covers the
    /// whole run.
    bool observe_stats = true;
    /// Async slices granted per async-live instance per round.
    uint64_t async_slices_per_round = 32;
    /// Per-instance inbox cap: an inject() that would push the in-flight
    /// envelope count past this is shed (InjectResult::Status::Shed).
    /// 0 = unbounded.
    uint32_t inbox_capacity = 0;
    /// Deterministic work stealing (multi-worker only): a worker that
    /// finishes its own round helps by stealing whole-instance work items
    /// (an instance's event batch, an instance's async slices) from the
    /// back of a victim shard's order. Execution moves threads; the
    /// owner's bookkeeping is still applied in the shard's fixed order, so
    /// traces and merged stats stay byte-identical. Off = strict shard
    /// ownership (the pre-stealing scheduler).
    bool steal = true;
    /// Pin worker i to the i-th CPU the process is allowed on (cpuset-
    /// aware; Linux only, ignored elsewhere and at workers == 1).
    bool pin_workers = false;
    /// Accumulate per-phase round wall time into fleet_stats().phase_ns
    /// (a handful of clock samples per shard round).
    bool profile_phases = true;
    /// Per-reaction wall-clock sampling on every member's recorder.
    /// Fleets default off: two clock_gettime calls per reaction — ~10% of
    /// a small interpreted reaction — for numbers the determinism suite
    /// clears anyway. Turn on to read reactions_per_sec off a fleet
    /// member's snapshot.
    bool time_reactions = false;
    /// Default supervision policy for members added without set_policy().
    /// The default default is Park — identical to the pre-supervision
    /// reactor.
    SupervisorPolicy supervise;
    /// Engine options for instances added without an explicit host config.
    /// trap_faults defaults on: a fleet must contain a member's dynamic
    /// error (the engine parks Faulted), not unwind a worker thread.
    rt::EngineOptions engine = [] {
        rt::EngineOptions o;
        o.trap_faults = true;
        return o;
    }();
};

// InjectResult (and the Verdict enum it carries) lives in
// reactor/verdict.hpp: the wire protocol's reply codes are the same enum.

class Reactor {
  public:
    explicit Reactor(ReactorConfig cfg = ReactorConfig());
    ~Reactor();
    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    // -- fleet construction (control thread; injectors may stay live) --------

    /// Adds one instance of the shared program; returns its fleet id.
    /// The compiled program is co-owned, never copied: fleet memory scales
    /// with per-instance *state*, not code. Safe while other threads
    /// inject(): the new slot is published to them atomically.
    InstanceId add_instance(std::shared_ptr<const flat::CompiledProgram> cp);
    /// Same, with an explicit per-instance host config (extra bindings,
    /// engine knobs). cfg.collect_trace is still forced by the reactor's
    /// collect_traces switch so trace policy stays fleet-uniform.
    InstanceId add_instance(std::shared_ptr<const flat::CompiledProgram> cp,
                            host::Config hcfg);

    /// Boots every not-yet-booted instance (shard-parallel, seeded order).
    /// Callable again after adding more instances: only new ones boot.
    void boot();

    /// Marks `id` retired: subsequent inject() calls return Retired,
    /// already-queued envelopes are dropped at delivery, and the member is
    /// skipped by every scheduling phase. The instance object (and its
    /// stats, which fleet_stats keeps merging) stays alive. Control
    /// thread, between rounds; safe while injector threads run.
    void retire(InstanceId id);
    [[nodiscard]] bool retired(InstanceId id) const;

    /// Overrides the supervision policy for one member (control thread,
    /// between rounds). Checkpoint cadence changes take effect from the
    /// member's next reaction.
    void set_policy(InstanceId id, const SupervisorPolicy& policy);
    /// Supervision bookkeeping for one member (fault/restart/checkpoint
    /// counters, quarantine flag) — test and dashboard introspection.
    [[nodiscard]] const MemberState& supervision(InstanceId id) const;

    // -- inputs (inject: any thread; advance: control thread) ----------------

    /// Queues one occurrence of input `event` for `id`. Lock-free; safe
    /// from any thread, including mid-round and concurrently with
    /// add_instance/retire. Delivery happens in the next round, in global
    /// injection-ticket order. Backpressure: over-capacity occurrences are
    /// shed here, not queued (see InjectResult). Unknown ids still throw:
    /// that is API misuse, not load.
    InjectResult inject(InstanceId id, EventId event,
                        rt::Value v = rt::Value::integer(0));
    /// Name-resolving variant (resolves against the instance's program —
    /// O(1) interned lookup). Returns UnknownEvent if `event` is not an
    /// input of the program.
    InjectResult inject(InstanceId id, const std::string& event,
                        rt::Value v = rt::Value::integer(0));

    /// Advances the fleet clock by `delta` and runs one round (so due
    /// timers fire and due restarts execute fleet-wide).
    void advance(Micros delta);

    /// Runs one scheduling round at the current fleet instant.
    void run_round();

    /// Host-commanded power-cycle of one member at the fleet instant:
    /// advance to now, crash-reset + reboot (the script vocabulary's
    /// `crash` item — the "[crash] engine power-cycled" line is traced),
    /// and re-index the member's timer/async state. Unlike supervised
    /// restarts this is unconditional: it does not require a Faulted
    /// member and does not count toward the supervision counters. Control
    /// thread only (like advance()/run_round()).
    void restart(InstanceId id);

    /// Retune the per-round async slice budget at run time (0 parks every
    /// async-live member until the budget is raised again). Hosts use this
    /// to hold background work during latency-sensitive bursts; the
    /// differential harness uses it to grant async progress only at the
    /// script's explicit idle points. Control thread only.
    void set_async_slices_per_round(uint64_t slices) {
        cfg_.async_slices_per_round = slices;
    }

    /// Rounds until quiescent: mailboxes empty, no timer or restart due at
    /// the current instant, no async work. Returns rounds run. Restarts
    /// whose backoff lies in the future do NOT hold drain() open — advance
    /// the clock (see next_restart_due) to reach them. `max_rounds` bounds
    /// runaway async programs.
    size_t drain(size_t max_rounds = 1'000'000);

    /// True while a round at the current instant would do work: queued
    /// envelopes, due timers or restarts, or async-live members. The
    /// serve front door polls this to decide whether to keep ticking or
    /// block on the network. Control thread, between rounds.
    [[nodiscard]] bool work_pending() const;

    /// Called on the control thread at the end of every run_round() (and
    /// thus once per drain() iteration). The serve layer uses it to flush
    /// per-session outbound frames between rounds, so a long drain streams
    /// its output instead of buffering it. May be empty.
    std::function<void()> on_round_end;

    /// One live member's checkpoint, as produced by graceful drain.
    struct DrainedMember {
        InstanceId id = 0;
        std::vector<uint8_t> snapshot;  ///< host::Instance::save() blob
    };

    /// Graceful drain: runs drain(max_rounds), then checkpoints every live
    /// member — booted, not retired, status Running or Faulted — in id
    /// order. Terminated members have nothing to resume and are skipped.
    /// The reactor keeps running afterwards; stopping the process (and
    /// later restoring the blobs via Instance::load / session resume) is
    /// the caller's business. Control thread only.
    std::vector<DrainedMember> drain_and_checkpoint(size_t max_rounds = 1'000'000);

    // -- introspection (control thread) --------------------------------------

    [[nodiscard]] host::Instance& instance(InstanceId id);
    [[nodiscard]] const host::Instance& instance(InstanceId id) const;
    [[nodiscard]] size_t size() const {
        return published_.load(std::memory_order_acquire);
    }
    [[nodiscard]] size_t workers() const { return shards_.size(); }
    [[nodiscard]] Micros now() const { return now_; }

    /// Earliest pending supervised-restart instant across all shards, or
    /// -1 when none is scheduled. Tests and drivers advance() past it to
    /// let backoffs expire deterministically.
    [[nodiscard]] Micros next_restart_due() const;

    /// Fleet-level counters: every instance's snapshot — stamped with its
    /// supervision counters (checkpoints, restores, supervised restarts,
    /// quarantines, sheds) — merged in id order. Deterministic (after
    /// ProcessStats::clear_measured) for a given (seed, fleet, inputs),
    /// independent of worker count.
    [[nodiscard]] obs::ProcessStats fleet_stats() const;

    /// Last escaped error for `id` (empty if none). Only reachable when an
    /// instance runs with trap_faults off and a dynamic error unwinds a
    /// delivery — the reactor catches it at the shard boundary (a fleet
    /// member's fault must never take down a worker thread), records it
    /// here, and carries on with the rest of the shard.
    [[nodiscard]] const std::string& error(InstanceId id) const;

  private:
    struct alignas(64) Slot {
        std::unique_ptr<host::Instance> inst;
        Micros indexed_deadline = -1;  // deadline currently in the wheel
        bool async_listed = false;     // member of its shard's async_live
        bool booted = false;
        std::string error;             // first escaped rt::RuntimeError

        // Supervision (owned by the member's shard / control thread).
        SupervisorPolicy policy;
        MemberState sup;

        // Any-thread state: producers race these against the owning shard
        // (and, with stealing, against an executing thief). They get their
        // own cache line — Slots are array elements, and producer traffic
        // on one member's inbox must not invalidate the scheduler-read
        // fields above or the neighboring Slot.
        alignas(64) std::atomic<uint32_t> inbox_depth{0};
        std::atomic<bool> retired{false};
        std::atomic<uint64_t> sheds{0};
    };

    /// Shard-structure mutation deferred out of a work item's execution:
    /// executing a stolen item may run on any worker, but the victim
    /// shard's wheel/async-list/agenda are owner-only, so executors record
    /// intents and the owner applies them in the shard's fixed item order.
    /// That order equals the 1-worker order, which is what keeps stealing
    /// inside the determinism contract.
    struct DeferredOp {
        enum class Kind : uint8_t { Wheel, AsyncList, Agenda };
        Kind kind;
        Micros at = 0;  // Wheel: deadline; Agenda: due instant
    };

    /// One stealable unit of round work: all of one instance's envelopes
    /// for this round (phase 1) or one instance's async slice budget
    /// (phase 3). Instance-exclusive by construction, so whoever claims it
    /// owns the engine for the duration.
    struct RoundItem {
        InstanceId id = 0;
        uint32_t env_begin = 0;  // phase 1: span in Shard::drained
        uint32_t env_end = 0;
        uint8_t phase = 0;       // 1 = events, 3 = asyncs
    };

    struct alignas(64) Shard {
        Mailbox mailbox;
        FleetTimerWheel wheel{1024};
        std::vector<InstanceId> members;
        std::vector<InstanceId> schedule;     // seeded visit order
        bool schedule_dirty = false;
        std::vector<Envelope*> drained;       // round scratch
        std::vector<FleetTimerWheel::Due> due;
        std::vector<InstanceId> async_live;
        std::vector<InstanceId> async_scratch;
        std::vector<RestartDue> agenda;       // pending supervised restarts
        std::vector<RestartDue> due_restarts; // round scratch
        bool work_left = false;               // set by the last round

        // Envelope memory: producers allocate here (inject), executors —
        // owner or thief — free here. Slab-backed, byte-exact accounting.
        ObjectPool<Envelope> pool;
        // Owner-thread-only arena backing the wheel's bucket storage (the
        // pool's arena is under the pool's lock and can't be shared).
        ShardArena wheel_arena;

        // Stealable-phase state. items/ops/done are indexed by the deque's
        // published indices; they are (re)sized only while the deque is
        // empty and no executor is in flight, and published to thieves by
        // the deque's release store.
        StealDeque deque;
        std::vector<RoundItem> items;
        std::vector<std::vector<DeferredOp>> ops;
        std::unique_ptr<std::atomic<uint8_t>[]> done;
        size_t done_cap = 0;
        std::vector<DeferredOp> local_ops;    // owner-context scratch
        std::vector<std::pair<uint32_t, uint32_t>> groups;  // phase-1 scratch

        // Scheduler diagnostics (fleet_stats stamps, clear_measured drops).
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> steal_failures{0};
        std::array<uint64_t, 4> phase_ns{};
    };

    enum class Cmd : uint8_t { Round, Boot, Exit };

    // Pointer-stable instance table: a fixed array of lazily allocated
    // chunks. Slots never move (atomics and worker-owned state live in
    // them), and a slot is visible to injector threads only after
    // `published_` covers it (release store after full construction).
    static constexpr size_t kChunkShift = 12;
    static constexpr size_t kChunkSize = size_t{1} << kChunkShift;  // 4096
    static constexpr size_t kChunkMask = kChunkSize - 1;
    static constexpr size_t kMaxChunks = 4096;  // ~16.7M instances

    [[nodiscard]] Slot& slot(InstanceId id) {
        return chunks_[id >> kChunkShift].load(std::memory_order_relaxed)
            [id & kChunkMask];
    }
    [[nodiscard]] const Slot& slot(InstanceId id) const {
        return chunks_[id >> kChunkShift].load(std::memory_order_relaxed)
            [id & kChunkMask];
    }
    void check_id(InstanceId id) const;

    InstanceId add_slot(std::shared_ptr<const flat::CompiledProgram> cp,
                        host::Config hcfg);
    void dispatch(Cmd cmd);
    void worker_main(size_t shard_idx);
    void boot_shard(Shard& sh);
    void run_shard_round(Shard& sh);
    void refresh_schedule(Shard& sh, size_t shard_idx);
    /// Brings `id` to the fleet instant (due timers fire) — the lazy
    /// clock sync in front of every delivery.
    void sync_clock(Slot& sl);
    /// Post-reaction bookkeeping: detect fresh faults (and record their
    /// supervised restart), take due checkpoints, record the engine's next
    /// deadline for wheel re-indexing, record async (re-)listing. The
    /// instance-local half runs inline (whoever executes the reaction owns
    /// the slot); the shard-structure half is returned in `ops` for the
    /// owner to apply in item order (apply_ops).
    void after_reaction(InstanceId id, Slot& sl, std::vector<DeferredOp>& ops);
    /// A fresh Faulted transition: quarantine or record a restart per the
    /// member's policy.
    void on_member_fault(InstanceId id, Slot& sl, std::vector<DeferredOp>& ops);
    /// Owner-only: applies a work item's deferred shard mutations.
    void apply_ops(Shard& sh, InstanceId id, const std::vector<DeferredOp>& ops);
    /// Runs sh.items[idx]'s engine work (any worker; instance-exclusive by
    /// deque claim) and publishes its done flag.
    void execute_item(Shard& sh, size_t idx);
    /// Runs the shard's published items: owner take()s from the front
    /// while thieves may steal from the back, then applies every item's
    /// ops in order (waiting on stolen items' done flags).
    void run_items(Shard& sh, size_t n);
    /// Help mode: a worker that finished its own round steals items from
    /// other shards until every shard's round work is done.
    void steal_loop(size_t self);
    /// Executes one due restart (phase 0): restore or reboot.
    void restart_member(InstanceId id, Shard& sh);
    [[nodiscard]] bool shard_has_due_restart(const Shard& sh) const;

    ReactorConfig cfg_;
    bool stealing_ = false;  // cfg.steal && workers > 1, fixed at ctor
    std::array<std::atomic<Slot*>, kMaxChunks> chunks_{};
    std::atomic<size_t> published_{0};
    std::vector<Shard> shards_;
    Micros now_ = 0;
    alignas(64) std::atomic<uint64_t> ticket_{0};

    // Workers that finished their own shard's round this generation;
    // thieves keep scanning until it covers every shard. Reset by the
    // control thread under pool_mu_ before each Round generation.
    alignas(64) std::atomic<size_t> round_fini_{0};

    // Worker pool (empty when workers == 1): generation-counter barrier.
    // The barrier state shares its line with nothing hot — ticket_ and
    // round_fini_ above are hammered by producers/workers mid-round.
    std::vector<std::thread> threads_;
    alignas(64) std::mutex pool_mu_;
    std::condition_variable pool_cv_;   // control -> workers: new generation
    std::condition_variable done_cv_;   // workers -> control: all finished
    uint64_t generation_ = 0;
    Cmd cmd_ = Cmd::Round;
    size_t done_count_ = 0;
};

}  // namespace ceu::reactor
