// Fleet supervision policies: what the reactor does when a member faults.
//
// PR 1 made single-engine faults recoverable (Status::Faulted + reset());
// the sharded reactor originally just *parked* a faulted member forever.
// This module supplies the recovery vocabulary: per-instance policies
// (park / reboot-from-boot / restore-from-checkpoint), deterministic
// seeded exponential backoff measured in fleet-wheel ticks, and a
// quarantine rule for members that fault repeatedly within a window.
//
// Determinism. Every decision here is a pure function of (policy, seed,
// instance id, fault ordinal, fleet instant) — never of worker count,
// thread timing or wall clock. Backoff jitter uses a splitmix64 hash of
// (seed ^ id ^ ordinal), so two runs of the same seeded fleet restart the
// same members at the same fleet instants no matter how the shards are
// laid out; the supervision determinism suite asserts exactly this at
// 1/2/8 workers.
#pragma once

#include <cstdint>
#include <vector>

#include "reactor/mailbox.hpp"
#include "util/timeval.hpp"

namespace ceu::reactor {

/// Per-instance recovery policy. The reactor default (ReactorConfig::
/// supervise) applies to every member unless overridden via set_policy().
struct SupervisorPolicy {
    enum class Restart : uint8_t {
        Park,     ///< historical behavior: a faulted member stays down
        Reboot,   ///< reset() + boot at the fleet instant (state lost)
        Restore,  ///< reload the latest checkpoint; falls back to Reboot
                  ///< when none has been taken yet
    };
    Restart restart = Restart::Park;

    /// Backoff before the k-th consecutive restart, in fleet-wheel ticks
    /// (tick = ReactorConfig::timer_granularity µs): delay doubles per
    /// fault, clamped to backoff_max_ticks.
    uint64_t backoff_initial_ticks = 1;
    uint64_t backoff_max_ticks = 64;
    /// ± jitter applied to the backoff, in permille of the clamped delay,
    /// derived deterministically from (seed, instance, fault ordinal).
    /// 0 = none; 250 spreads restarts ±25% to avoid thundering herds.
    uint32_t backoff_jitter_permille = 0;

    /// Quarantine (bench permanently, stop restarting) after this many
    /// faults within fault_window_ticks. 0 = never quarantine.
    uint32_t quarantine_after = 0;
    uint64_t fault_window_ticks = 256;

    /// Take an automatic checkpoint every N engine reactions (0 = never).
    /// Restore-policy members need a cadence > 0 to have something to
    /// restore from.
    uint64_t checkpoint_every = 0;
};

/// Supervision bookkeeping the reactor keeps per member. Mutated only by
/// the member's own shard (or the control thread between rounds), so no
/// synchronization is needed.
struct MemberState {
    uint64_t faults = 0;               ///< faults detected (raw, lifetime)
    uint64_t supervised_restarts = 0;  ///< restarts performed (reboot+restore)
    uint64_t restores = 0;             ///< restarts served from a checkpoint
    uint64_t checkpoints = 0;          ///< snapshots taken
    bool quarantined = false;
    bool fault_open = false;           ///< current fault awaiting a restart

    /// Fault instants (in fleet-wheel ticks) inside the rolling window;
    /// pruned by note_fault.
    std::vector<uint64_t> recent_fault_ticks;

    /// Latest checkpoint blob (empty = none yet).
    std::vector<uint8_t> checkpoint;
    /// Engine reactions() threshold that triggers the next automatic
    /// checkpoint (0 = not yet scheduled).
    uint64_t next_checkpoint_at = 0;
};

/// One pending supervised restart on a shard's agenda.
struct RestartDue {
    Micros due = 0;
    InstanceId instance = 0;
};

/// Deterministic backoff before restart number `fault_ordinal` (1-based):
/// initial << (ordinal-1) ticks, clamped to the max, ± seeded jitter,
/// converted to microseconds at `tick_us` per tick. Never returns < 0.
[[nodiscard]] Micros backoff_delay_us(const SupervisorPolicy& p, uint64_t seed,
                                      InstanceId id, uint64_t fault_ordinal,
                                      Micros tick_us);

/// Records a fault at fleet-wheel tick `tick` into the member's rolling
/// window and returns how many faults the window now holds (including this
/// one). The quarantine rule compares the result to quarantine_after.
size_t note_fault_tick(MemberState& m, const SupervisorPolicy& p, uint64_t tick);

}  // namespace ceu::reactor
