// Fleet-level timer index: which instances have a wall-clock deadline due?
//
// Each instance's engine keeps its own precise TimerWheel (§2.3 residual
// deltas and same-deadline grouping live there, untouched). At fleet scale
// the scheduler only needs a coarser question answered in O(1) per clock
// advance: *which of my 100k instances could have a timer due by `now`?*
//
// This wheel buckets (instance, deadline) pairs into 4 levels x 64 slots by
// deadline tick *relative to a rebased epoch* (level l covers
// granularity * 64^l per slot), so slot spread tracks remaining time, not
// absolute fleet time: without the epoch, a long-running fleet's deadlines
// would all collapse into the coarsest level's wrap-around slots once the
// clock exceeded 64^3 level-0 ticks. collect_due() re-buckets surviving
// entries against a fresh epoch once the clock has advanced a full level-1
// cycle (64^2 ticks) past the current one — O(live entries) per rebase,
// amortized O(1) per advance. Two summaries make advances cheap:
//   - a global minimum deadline: advancing the fleet clock to a point
//     before it is a single compare — the overwhelmingly common case when
//     most instances are quiescent;
//   - a per-slot minimum + occupancy bitmaps: when something is due, only
//     slots whose minimum is reached are partitioned, so the cost of an
//     expiry round is O(256 bitmap tests + entries actually touched), not
//     O(armed entries).
//
// Entries may be stale (the instance's engine disarmed or re-armed the
// underlying timer since scheduling) — the reactor re-checks each candidate
// against the engine's actual next_timer_deadline() before delivering a
// go_time, and simply reschedules. Expired candidates are reported sorted
// by (deadline, instance) so the delivery order is a pure function of the
// armed set, independent of bucketing or worker layout.
//
// Memory: bucket storage can be bound to a ShardArena (bind_arena). The
// epoch-relative bucketing means an advancing clock keeps landing re-armed
// deadlines in *fresh* slots until the next rebase, so with heap-backed
// buckets a long-running fleet pays allocator traffic for most of an epoch
// era even though total capacity is bounded. Arena-backed buckets turn
// that into bump allocation accounted by the shard's arena gauge — the
// reactor's steady-state rounds then never touch the global allocator.
// Unbound (tests, standalone use) the buckets fall back to the heap.
#pragma once

#include <cstdint>
#include <vector>

#include "reactor/arena.hpp"
#include "reactor/mailbox.hpp"
#include "util/timeval.hpp"

namespace ceu::reactor {

class FleetTimerWheel {
  public:
    struct Due {
        Micros deadline = 0;
        InstanceId instance = 0;
    };

    /// `granularity_us` is the level-0 tick width. Deadlines are *not*
    /// rounded — it only controls bucket spread; expiry is exact.
    explicit FleetTimerWheel(Micros granularity_us = 1024);
    ~FleetTimerWheel();
    FleetTimerWheel(const FleetTimerWheel&) = delete;
    FleetTimerWheel& operator=(const FleetTimerWheel&) = delete;

    /// Resets to an empty wheel with a new granularity, drawing all future
    /// bucket growth from `arena` (nullptr = global heap). The reactor
    /// calls this once per shard before any entry is scheduled; binding
    /// does not migrate buffers that already exist.
    void reset(Micros granularity_us, ShardArena* arena);

    /// Indexes `deadline` for `instance`. Duplicates are allowed (the
    /// reactor dedups by tracking each instance's scheduled deadline);
    /// stale entries are filtered by the caller on expiry.
    void schedule(InstanceId instance, Micros deadline);

    /// Appends every entry with deadline <= now to `out`, sorted by
    /// (deadline, instance), removing them from the wheel. Returns the
    /// number appended. O(1) when nothing is due.
    size_t collect_due(Micros now, std::vector<Due>& out);

    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] size_t size() const { return count_; }
    /// Earliest indexed deadline, or -1 when empty.
    [[nodiscard]] Micros next_deadline() const { return count_ == 0 ? -1 : min_; }

    void clear();

  private:
    static constexpr int kLevels = 4;
    static constexpr int kSlots = 64;  // per level; must stay 64 (bitmap word)

    struct Entry {
        Micros deadline;
        InstanceId instance;
    };

    /// Push-only bucket. Epoch-relative bucketing marches an advancing
    /// clock through *fresh* slots all era long, so per-slot capacity
    /// retention alone would grow memory for the whole first era (and
    /// allocate while doing it). Instead a bucket that empties donates its
    /// buffer to `spare_`, and growth shops there before allocating — the
    /// wheel's footprint tracks peak *concurrently live* buckets (usually
    /// one or two), and a warmed wheel re-arms timers with zero allocator
    /// traffic, arena or heap. `heap` tracks the buffer's origin so mixed
    /// histories free correctly.
    struct Bucket {
        Entry* data = nullptr;
        uint32_t size = 0;
        uint32_t cap = 0;
        bool heap = false;  // current buffer owned by the global allocator
    };

    void bucket_push(Bucket& b, Entry e);
    void bucket_release(Bucket& b);
    /// Moves an emptied bucket's buffer to the spare list (keeps nothing).
    void bucket_donate(Bucket& b);

    [[nodiscard]] size_t bucket_of(Micros deadline) const;
    /// Re-buckets every live entry against `now` once the clock has moved
    /// a full level-1 cycle past the current epoch.
    void maybe_rebase(Micros now);

    Micros gran_;
    Micros epoch_ = 0;                       // bucketing origin (rebased as time passes)
    Micros min_ = -1;                        // global earliest (valid when count_ > 0)
    size_t count_ = 0;
    ShardArena* arena_ = nullptr;            // bucket growth source (null = heap)
    uint64_t occupied_[kLevels] = {0, 0, 0, 0};
    Bucket slots_[kLevels * kSlots];
    Micros slot_min_[kLevels * kSlots];      // earliest deadline per slot
    std::vector<Entry> rebase_scratch_;      // keeps capacity across rebases
    std::vector<Bucket> spare_;              // recycled bucket buffers (size unused)
};

}  // namespace ceu::reactor
