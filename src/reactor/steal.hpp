// Chase-Lev work-stealing deque, specialized for the reactor's round
// protocol (Blumofe & Leiserson's Cilk discipline: the owner works one
// end, thieves the other).
//
// Usage shape: once per stealable phase the owning shard publishes a batch
// of item indices with one bulk push, then pops them from the *bottom*
// (front of the shard's order) while idle workers steal from the *top*
// (the back of the victim's seeded schedule — the work the owner would
// reach last). top/bottom increase monotonically across the deque's life,
// so there is no ABA across phase boundaries.
//
// Growth: the ring is resized by the owner only while the deque is empty
// (between publishes). A thief can still hold a stale ring pointer from a
// probe that started before the swap, so the ring is published through an
// atomic pointer, retired rings stay allocated until the deque dies, and
// ring slots are relaxed atomics: the stale thief's slot read is a benign
// racy load whose value is discarded when its top CAS fails (top must have
// advanced for the owner to have been allowed to swap rings at all).
//
// Memory model: this is the fence-free formulation — the classic
// algorithm's seq_cst fences are folded into seq_cst accesses on top_ and
// bottom_ at the two race points (owner's take vs thief's steal). That is
// marginally stronger than the minimal Le-et-al. mapping but keeps the
// structure exactly representable to TSan (which does not model
// standalone fences), so the steal path is verified, not waived, by the
// reactor TSan job.
//
// Determinism: stealing moves *execution* of an item to another thread;
// it never reorders the owner's bookkeeping, which is applied in item
// order after the item's done flag (see reactor.cpp). Hence who stole what
// affects wall-clock only — traces and merged stats stay byte-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ceu::reactor {

class StealDeque {
  public:
    StealDeque() = default;
    StealDeque(const StealDeque&) = delete;
    StealDeque& operator=(const StealDeque&) = delete;

    /// Owner only, deque empty: ensure the ring can hold `cap` items.
    /// The old ring (if any) is retired, not freed — a thief mid-probe may
    /// still read it (and then lose its claim CAS).
    void reserve(size_t cap) {
        size_t want = 1;
        while (want < cap) want <<= 1;
        Ring* cur = ring_.load(std::memory_order_relaxed);
        if (cur != nullptr && cur->mask + 1 >= want) return;
        auto next = std::make_unique<Ring>();
        next->mask = want - 1;
        next->slots = std::make_unique<std::atomic<uint32_t>[]>(want);
        // Publish the pointer before publish() writes entries; thieves
        // order their ring load after the bottom_ load that makes those
        // entries claimable, so they can never claim through the old ring.
        ring_.store(next.get(), std::memory_order_release);
        retired_.push_back(std::move(next));
    }

    /// Owner only: publishes items 0..n-1 in one shot. They are written
    /// back-to-front so take() yields 0,1,2,... (the shard's own order)
    /// while steal() yields n-1,n-2,... (the back of the schedule). The
    /// seq_cst store on bottom_ publishes the slot contents — and
    /// everything the owner wrote before calling (the items themselves) —
    /// to thieves.
    void publish(uint32_t n) {
        Ring* r = ring_.load(std::memory_order_relaxed);
        int64_t b = bottom_.load(std::memory_order_relaxed);
        for (uint32_t k = 0; k < n; ++k) {
            r->slots[static_cast<size_t>(b + k) & r->mask].store(
                n - 1 - k, std::memory_order_relaxed);
        }
        bottom_.store(b + n, std::memory_order_seq_cst);
    }

    /// Owner only: pops the next item from the bottom. Returns -1 when the
    /// deque is empty (every item claimed).
    int64_t take() {
        Ring* r = ring_.load(std::memory_order_relaxed);
        int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_seq_cst);
        int64_t t = top_.load(std::memory_order_seq_cst);
        if (t < b) {
            return r->slots[static_cast<size_t>(b) & r->mask].load(
                std::memory_order_relaxed);
        }
        if (t == b) {
            // Last item: race the thieves for it via top.
            int64_t item = r->slots[static_cast<size_t>(b) & r->mask].load(
                std::memory_order_relaxed);
            if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
                item = -1;  // a thief got there first
            }
            bottom_.store(b + 1, std::memory_order_relaxed);
            return item;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
        return -1;
    }

    /// Any thread: steals one item from the top. Returns -1 when empty or
    /// when the claim race was lost (callers just rescan).
    int64_t steal() {
        int64_t t = top_.load(std::memory_order_seq_cst);
        int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b) return -1;
        // Ring load ordered after the bottom_ load: seeing t < b means
        // seeing the publish that made index t claimable, and that publish
        // (or an earlier one) installed the ring it wrote into. A stale
        // ring here implies top has moved on, so the CAS below fails and
        // the garbage value is discarded.
        Ring* r = ring_.load(std::memory_order_acquire);
        int64_t item = r->slots[static_cast<size_t>(t) & r->mask].load(
            std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return -1;
        }
        return item;
    }

    /// Racy size hint (thief-side victim selection only).
    [[nodiscard]] int64_t size_hint() const {
        return bottom_.load(std::memory_order_relaxed) -
               top_.load(std::memory_order_relaxed);
    }

  private:
    struct Ring {
        size_t mask = 0;
        std::unique_ptr<std::atomic<uint32_t>[]> slots;
    };

    // Owner and thieves hammer opposite ends; keep the two indices off
    // each other's cache line (and off the ring pointer's).
    alignas(64) std::atomic<int64_t> top_{0};
    alignas(64) std::atomic<int64_t> bottom_{0};
    alignas(64) std::atomic<Ring*> ring_{nullptr};
    // Every ring ever allocated, newest last (owner-only). Growth is
    // geometric, so keeping them costs < 2x the final ring.
    std::vector<std::unique_ptr<Ring>> retired_;
};

}  // namespace ceu::reactor
